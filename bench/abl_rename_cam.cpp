/**
 * @file
 * Ablation (Section 4.1.1): RAM versus CAM register renaming. The
 * paper found the schemes comparable for its design space but the CAM
 * less scalable — its entry count equals the physical register count,
 * which grows with issue width.
 */

#include <cstdio>

#include "common/table.hpp"
#include "vlsi/rename_cam.hpp"
#include "vlsi/rename_delay.hpp"

using namespace cesp;
using namespace cesp::vlsi;

int
main()
{
    Table t("RAM vs CAM rename delay (ps)");
    t.header({"tech", "issue", "phys regs", "RAM", "CAM",
              "CAM/RAM"});
    for (Process p : allProcesses()) {
        RenameDelayModel ram(p);
        RenameCamDelayModel cam(p);
        for (auto [iw, regs] : {std::pair{4, 80}, std::pair{8, 128}}) {
            double r = ram.totalPs(iw);
            double c = cam.totalPs(iw, regs);
            t.row({technology(p).name, cell(iw), cell(regs), cell(r),
                   cell(c), cell(c / r, 2)});
        }
    }
    t.print();

    Table s("CAM scalability with physical register count (0.18um, "
            "8-way)");
    s.header({"phys regs", "RAM (ps)", "CAM (ps)"});
    RenameDelayModel ram18(Process::um0_18);
    RenameCamDelayModel cam18(Process::um0_18);
    for (int regs : {80, 128, 192, 256, 384, 512}) {
        s.row({cell(regs), cell(ram18.totalPs(8)),
               cell(cam18.totalPs(8, regs))});
    }
    s.print();
    std::puts("Paper: comparable for the design space studied; the "
              "RAM scheme scales better because the map table's size "
              "is fixed by the *logical* register count.");
    return 0;
}
