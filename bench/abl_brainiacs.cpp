/**
 * @file
 * Ablation (Section 1): "brainiacs" versus "speed demons". The
 * paper opens with the contention between complex wide out-of-order
 * implementations and simple fast-clocked ones, and proposes the
 * dependence-based machine as the complexity-effective middle. This
 * harness stages that debate: an in-order issue machine (no wakeup
 * CAM — clocked at the rename/bypass limit), the out-of-order window
 * machine (clocked at the window limit), and the dependence-based
 * machine, all compared in IPC and in delivered BIPS.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "vlsi/clock.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

namespace {

double
meanIpc(const uarch::SimConfig &cfg)
{
    Machine m(cfg);
    uint64_t instrs = 0, cycles = 0;
    for (const auto &w : workloads::allWorkloads()) {
        auto s = m.runWorkload(w.name);
        instrs += s.committed();
        cycles += s.cycles();
    }
    return static_cast<double>(instrs) / static_cast<double>(cycles);
}

} // namespace

int
main()
{
    using namespace cesp::vlsi;
    RenameDelayModel rename(Process::um0_18);
    WakeupDelayModel wakeup(Process::um0_18);
    SelectDelayModel select(Process::um0_18);
    BypassDelayModel bypass(Process::um0_18);
    ReservationDelayModel resv(Process::um0_18);

    struct Entry
    {
        std::string label;
        double ipc;
        double clock_ps;
    };
    std::vector<Entry> entries;

    {
        // Speed demon: 4-wide in-order issue. No window logic at
        // all; the clock is set by rename (bypass is short at 4
        // wide).
        uarch::SimConfig cfg = scaledBaseline(4);
        cfg.name = "inorder-4way";
        cfg.in_order_issue = true;
        entries.push_back({"in-order 4-way (speed demon)",
                           meanIpc(cfg),
                           std::max(rename.totalPs(4),
                                    bypass.totalPs(4))});
    }
    {
        // Brainiac: 8-way out-of-order, 64-entry window.
        entries.push_back(
            {"OoO 8-way/64 window (brainiac)",
             meanIpc(baseline8Way()),
             std::max({rename.totalPs(8),
                       wakeup.totalPs(8, 64) + select.totalPs(64),
                       bypass.totalPs(8)})});
    }
    {
        // Complexity-effective: 2x4 dependence-based.
        entries.push_back(
            {"2x4 dependence-based (complexity-effective)",
             meanIpc(clusteredDependence2x4()),
             std::max({rename.totalPs(8),
                       resv.totalPs(4, 120) + select.totalPs(4),
                       bypass.totalPs(4)})});
    }

    Table t("Brainiacs vs speed demons (0.18um, all workloads)");
    t.header({"machine", "mean IPC", "clock ps", "clock MHz",
              "BIPS"});
    for (const auto &e : entries) {
        double mhz = 1e6 / e.clock_ps;
        t.row({e.label, cell(e.ipc, 3), cell(e.clock_ps),
               cell(mhz, 0), cell(e.ipc * mhz / 1000.0, 2)});
    }
    t.print();
    std::puts("The dependence-based machine pairs (nearly) brainiac "
              "IPC with a speed-demon clock — the paper's "
              "complexity-effective thesis.");
    return 0;
}
