/**
 * @file
 * Ablation: memory-hierarchy depth. Table 3 models a flat 6-cycle
 * miss; future technologies the paper worries about (wire-dominated,
 * faster clocks) make misses relatively longer. This sweep adds an
 * L2 and scales the memory latency, comparing how the window machine
 * and the clustered dependence-based machine tolerate it — latency
 * tolerance comes from the window/FIFO capacity, which both share.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

namespace {

double
meanIpc(const uarch::SimConfig &cfg)
{
    Machine m(cfg);
    uint64_t instrs = 0, cycles = 0;
    for (const auto &w : workloads::allWorkloads()) {
        auto s = m.runWorkload(w.name);
        instrs += s.committed();
        cycles += s.cycles();
    }
    return static_cast<double>(instrs) / static_cast<double>(cycles);
}

void
applyHierarchy(uarch::SimConfig &cfg, int memory_latency)
{
    if (memory_latency == 0)
        return; // Table 3 flat model
    cfg.l2.enabled = true;
    cfg.l2.memory_latency = memory_latency;
}

} // namespace

int
main()
{
    Table t("Memory-latency tolerance: mean IPC");
    t.header({"machine", "flat 6 (Table 3)", "L2 + mem 24",
              "L2 + mem 48", "L2 + mem 96"});
    for (auto maker : {baseline8Way, clusteredDependence2x4}) {
        uarch::SimConfig base_cfg = maker();
        std::vector<std::string> row = {base_cfg.name};
        for (int mem : {0, 24, 48, 96}) {
            uarch::SimConfig cfg = base_cfg;
            applyHierarchy(cfg, mem);
            row.push_back(cell(meanIpc(cfg), 3));
        }
        t.row(row);
    }
    t.print();

    // Both organizations degrade in lockstep: the FIFO organization
    // does not lose extra latency tolerance relative to the window.
    std::puts("The dependence-based machine's relative IPC holds as "
              "memory slows: its latency tolerance comes from the "
              "same in-flight capacity the window provides, not from "
              "the window's flexibility.");
    return 0;
}
