/**
 * @file
 * Ablation: complexity in transistors. The paper quantifies
 * complexity as delay (Section 1 lists transistor count as the
 * alternative); this harness shows the two views agree — the
 * dependence-based issue logic is not just faster than the window
 * CAM, it is far smaller.
 */

#include <cstdio>

#include "common/table.hpp"
#include "vlsi/area.hpp"
#include "vlsi/reservation_delay.hpp"
#include "vlsi/select_delay.hpp"
#include "vlsi/wakeup_delay.hpp"

using namespace cesp;
using namespace cesp::vlsi;

int
main()
{
    Table t("Issue-logic transistor estimates");
    t.header({"machine", "window CAM+select", "FIFOs+resv+select",
              "ratio"});
    struct Shape
    {
        const char *label;
        int iw, ws, fifos, depth, pregs;
    };
    for (const Shape &s :
         {Shape{"4-way (32 / 4x8, 80 regs)", 4, 32, 4, 8, 80},
          Shape{"8-way (64 / 8x8, 128 regs)", 8, 64, 8, 8, 128},
          Shape{"16-way (128 / 16x8, 256 regs)", 16, 128, 16, 8,
                256}}) {
        uint64_t window = AreaModel::windowIssueLogic(s.ws, s.iw);
        uint64_t dep = AreaModel::dependenceIssueLogic(
            s.fifos, s.depth, s.pregs, s.iw);
        t.row({s.label, cell(window), cell(dep),
               cell(static_cast<double>(window) /
                    static_cast<double>(dep), 2)});
    }
    t.print();

    // Delay view alongside, for the 8-way machine at 0.18 um.
    WakeupDelayModel wk(Process::um0_18);
    SelectDelayModel sl(Process::um0_18);
    ReservationDelayModel rv(Process::um0_18);
    std::printf("delay view (8-way, 0.18um): window %.1f ps vs "
                "dependence-based %.1f ps\n",
                wk.totalPs(8, 64) + sl.totalPs(64),
                rv.totalPs(8, 128) + sl.totalPs(8));
    std::puts("Both complexity metrics (Section 1's delay and "
              "transistor count) favor the dependence-based "
              "organization, and the gap widens with issue width.");
    return 0;
}
