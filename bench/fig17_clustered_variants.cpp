/**
 * @file
 * Figure 17: the clustered design space — IPC (top graph) and
 * inter-cluster bypass frequency (bottom graph) for the five
 * organizations: ideal single-cluster window, 2-cluster FIFOs with
 * dispatch steering, 2-cluster windows with dispatch steering,
 * 2-cluster central window with execution-driven steering, and
 * 2-cluster windows with random steering. The paper's findings:
 * random steering degrades IPC 17-26%; execution-driven steering is
 * within 6% of ideal; both dispatch-steered organizations are
 * competitive; bypass frequency anticorrelates with IPC.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else
            fatal("usage: %s [--json FILE]", argv[0]);
    }

    std::vector<uarch::SimConfig> configs = figure17Configs();
    auto names = workloads::workloadNames();

    // stats[config][workload]
    std::vector<std::vector<uarch::SimStats>> stats;
    for (const auto &cfg : configs) {
        Machine m(cfg);
        std::vector<uarch::SimStats> row;
        for (const auto &w : names)
            row.push_back(m.runWorkload(w));
        stats.push_back(std::move(row));
    }

    Table t("Figure 17 (top): IPC of clustered microarchitectures");
    std::vector<std::string> hdr = {"benchmark"};
    for (const auto &cfg : configs)
        hdr.push_back(cfg.name);
    t.header(hdr);
    for (size_t w = 0; w < names.size(); ++w) {
        std::vector<std::string> row = {names[w]};
        for (size_t c = 0; c < configs.size(); ++c)
            row.push_back(cell(stats[c][w].ipc(), 3));
        t.row(row);
    }
    t.print();

    Table b("Figure 17 (bottom): inter-cluster bypass frequency (%)");
    b.header(hdr);
    for (size_t w = 0; w < names.size(); ++w) {
        std::vector<std::string> row = {names[w]};
        for (size_t c = 0; c < configs.size(); ++c)
            row.push_back(cell(stats[c][w].interClusterPct()));
        b.row(row);
    }
    b.print();

    Table d("IPC degradation vs the ideal 1-cluster window (%)");
    d.header(hdr);
    for (size_t w = 0; w < names.size(); ++w) {
        std::vector<std::string> row = {names[w]};
        for (size_t c = 0; c < configs.size(); ++c) {
            double deg = 100.0 *
                (1.0 - stats[c][w].ipc() / stats[0][w].ipc());
            row.push_back(cell(deg));
        }
        d.row(row);
    }
    d.print();
    std::puts("Paper: random steering degrades 17-26%; exec-driven "
              "within 6% of ideal; dispatch-steered FIFOs and windows "
              "competitive; higher bypass frequency <-> lower IPC.");

    if (!json_path.empty()) {
        std::vector<StatGroup> runs;
        StatGroup fig("cesp.fig17",
                      "clustered design space: IPC degradation vs "
                      "the ideal 1-cluster window");
        for (size_t c = 0; c < configs.size(); ++c) {
            for (size_t w = 0; w < names.size(); ++w) {
                StatGroup g = stats[c][w].group();
                g.label() = configs[c].name + " / " + names[w];
                runs.push_back(std::move(g));
                if (c > 0)
                    fig.addGauge(
                        configs[c].name + "." + names[w] +
                            ".degradation_pct", "%",
                        "IPC loss vs the ideal single-cluster window",
                        100.0 * (1.0 - stats[c][w].ipc() /
                                           stats[0][w].ipc()));
            }
        }
        std::string err;
        if (!writeTextOutput(json_path,
                             statGroupListJson(runs, {fig}), &err))
            fatal("%s", err.c_str());
    }
    return 0;
}
