/**
 * @file
 * Google-benchmark microbenchmarks of the library itself: delay-model
 * evaluation throughput, assembler and emulator speed, and simulated
 * instructions per host second for the main machine organizations.
 */

#include <benchmark/benchmark.h>

#include "asm/assembler.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "func/emulator.hpp"
#include "trace/synthetic.hpp"
#include "uarch/pipeline.hpp"
#include "vlsi/clock.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;

static void
BM_DelayModelEval(benchmark::State &state)
{
    vlsi::ClockEstimator est(vlsi::Process::um0_18);
    vlsi::ClockConfig cfg;
    int iw = 2;
    for (auto _ : state) {
        cfg.issue_width = iw;
        cfg.window_size = 8 * iw;
        benchmark::DoNotOptimize(est.delays(cfg).criticalPs());
        iw = iw == 16 ? 2 : iw * 2;
    }
}
BENCHMARK(BM_DelayModelEval);

static void
BM_Assembler(benchmark::State &state)
{
    const char *src = workloads::workload("compress").source;
    for (auto _ : state) {
        auto r = assembler::assemble(src);
        benchmark::DoNotOptimize(r.ok);
    }
}
BENCHMARK(BM_Assembler);

static void
BM_FunctionalEmulation(benchmark::State &state)
{
    assembler::Program p = assembler::assembleOrDie(
        workloads::workload("compress").source);
    for (auto _ : state) {
        func::Emulator emu(p);
        auto r = emu.run(400000);
        benchmark::DoNotOptimize(r.instructions);
        state.SetItemsProcessed(
            state.items_processed() +
            static_cast<int64_t>(r.instructions));
    }
}
BENCHMARK(BM_FunctionalEmulation);

static void
BM_TimingSim(benchmark::State &state, const uarch::SimConfig &cfg)
{
    trace::SyntheticParams sp;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 100000);
    for (auto _ : state) {
        auto stats = uarch::simulate(cfg, buf);
        benchmark::DoNotOptimize(stats.cycles);
        state.SetItemsProcessed(
            state.items_processed() +
            static_cast<int64_t>(stats.committed));
    }
}

static void
BM_TimingSim_Window(benchmark::State &state)
{
    BM_TimingSim(state, core::baseline8Way());
}
BENCHMARK(BM_TimingSim_Window);

static void
BM_TimingSim_Fifos(benchmark::State &state)
{
    BM_TimingSim(state, core::dependence8x8());
}
BENCHMARK(BM_TimingSim_Fifos);

static void
BM_TimingSim_Clustered(benchmark::State &state)
{
    BM_TimingSim(state, core::clusteredDependence2x4());
}
BENCHMARK(BM_TimingSim_Clustered);

BENCHMARK_MAIN();
