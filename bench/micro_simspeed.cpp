/**
 * @file
 * Google-benchmark microbenchmarks of the library itself: delay-model
 * evaluation throughput, assembler and emulator speed, and simulated
 * instructions per host second for the main machine organizations.
 */

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "asm/assembler.hpp"
#include "common/logging.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "func/emulator.hpp"
#include "trace/mmap_source.hpp"
#include "trace/synthetic.hpp"
#include "trace/tracefile.hpp"
#include "uarch/pipeline.hpp"
#include "vlsi/clock.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;

static void
BM_DelayModelEval(benchmark::State &state)
{
    vlsi::ClockEstimator est(vlsi::Process::um0_18);
    vlsi::ClockConfig cfg;
    int iw = 2;
    for (auto _ : state) {
        cfg.issue_width = iw;
        cfg.window_size = 8 * iw;
        benchmark::DoNotOptimize(est.delays(cfg).criticalPs());
        iw = iw == 16 ? 2 : iw * 2;
    }
}
BENCHMARK(BM_DelayModelEval);

static void
BM_Assembler(benchmark::State &state)
{
    const char *src = workloads::workload("compress").source;
    for (auto _ : state) {
        auto r = assembler::assemble(src);
        benchmark::DoNotOptimize(r.ok);
    }
}
BENCHMARK(BM_Assembler);

static void
BM_FunctionalEmulation(benchmark::State &state)
{
    assembler::Program p = assembler::assembleOrDie(
        workloads::workload("compress").source);
    for (auto _ : state) {
        func::Emulator emu(p);
        auto r = emu.run(400000);
        benchmark::DoNotOptimize(r.instructions);
        state.SetItemsProcessed(
            state.items_processed() +
            static_cast<int64_t>(r.instructions));
    }
}
BENCHMARK(BM_FunctionalEmulation);

static void
BM_TimingSim(benchmark::State &state, const uarch::SimConfig &cfg)
{
    // The timing benchmarks must exercise the issue window, not the
    // frontend: with the synthetic defaults (16 KB working set inside
    // a 32 KB L1, mean dependence distance 6) the 128-entry window
    // holds ~6 instructions and the benchmark measures fetch and
    // commit instead. A pointer-chasing profile — short dependence
    // chains over a working set far larger than the L1 — keeps the
    // window occupied and the wakeup/select loop on the critical
    // path.
    trace::SyntheticParams sp;
    sp.mean_dep_distance = 2.0;
    sp.working_set = 512 * 1024;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 100000);
    for (auto _ : state) {
        auto stats = uarch::simulate(cfg, buf);
        benchmark::DoNotOptimize(stats.cycles());
        state.SetItemsProcessed(
            state.items_processed() +
            static_cast<int64_t>(stats.committed()));
    }
}

static uarch::SimConfig
withModel(uarch::SimConfig cfg, uarch::IssueModel m)
{
    cfg.issue_model = m;
    return cfg;
}

/** 8-way issue over a 128-entry central window. */
static uarch::SimConfig
window8x128()
{
    uarch::SimConfig c = core::baseline8Way();
    c.window_size = 128;
    return c;
}

/** 8-way issue over 128 total FIFO entries (16 FIFOs of depth 8). */
static uarch::SimConfig
fifos8x128()
{
    uarch::SimConfig c = core::dependence8x8();
    c.fifos_per_cluster = 16;
    return c;
}

static void
BM_TimingSim_Window(benchmark::State &state)
{
    BM_TimingSim(state, window8x128());
}
BENCHMARK(BM_TimingSim_Window);

static void
BM_TimingSim_Window_LegacyScan(benchmark::State &state)
{
    BM_TimingSim(state, withModel(window8x128(),
                                  uarch::IssueModel::LegacyScan));
}
BENCHMARK(BM_TimingSim_Window_LegacyScan);

static void
BM_TimingSim_Fifos(benchmark::State &state)
{
    BM_TimingSim(state, fifos8x128());
}
BENCHMARK(BM_TimingSim_Fifos);

static void
BM_TimingSim_Fifos_LegacyScan(benchmark::State &state)
{
    BM_TimingSim(state, withModel(fifos8x128(),
                                  uarch::IssueModel::LegacyScan));
}
BENCHMARK(BM_TimingSim_Fifos_LegacyScan);

static void
BM_TimingSim_Clustered(benchmark::State &state)
{
    BM_TimingSim(state, core::clusteredDependence2x4());
}
BENCHMARK(BM_TimingSim_Clustered);

static void
BM_TimingSim_Clustered_LegacyScan(benchmark::State &state)
{
    BM_TimingSim(state, withModel(core::clusteredDependence2x4(),
                                  uarch::IssueModel::LegacyScan));
}
BENCHMARK(BM_TimingSim_Clustered_LegacyScan);

/**
 * Trace-load startup cost for a cached 8-workload sweep: the work a
 * harness process does before its first simulated cycle, measured
 * over three generations of the trace cache. DecodeV1 reads and
 * unpacks every record field-by-field (the pre-v2 cache format);
 * Load freads a v2 payload in bulk and checksums it; Mmap maps the
 * v2 file and verifies the CRC in place, copying nothing — that is
 * what core::cachedWorkloadTraceView does on a warm cache. One file
 * pair per pseudo-workload, written once.
 */
struct StartupFiles
{
    std::vector<std::string> v1, v2;
};

static const StartupFiles &
startupTraceFiles()
{
    static const StartupFiles files = [] {
        std::filesystem::path dir =
            std::filesystem::temp_directory_path() /
            strprintf("cesp-bench-traces-%d", getpid());
        std::filesystem::create_directories(dir);
        StartupFiles out;
        for (uint64_t w = 0; w < 8; ++w) {
            trace::SyntheticParams sp;
            sp.seed = 100 + w;
            trace::TraceBuffer buf =
                trace::generateSynthetic(sp, 1000000);
            std::string base =
                (dir / strprintf("w%llu",
                                 static_cast<unsigned long long>(w)))
                    .string();
            if (!trace::saveTraceV1(buf, base + ".v1.trc").ok() ||
                !trace::saveTrace(buf, base + ".v2.trc").ok())
                fatal("cannot write bench traces under %s",
                      dir.c_str());
            out.v1.push_back(base + ".v1.trc");
            out.v2.push_back(base + ".v2.trc");
        }
        return out;
    }();
    return files;
}

static void
loadStartupFiles(benchmark::State &state,
                 const std::vector<std::string> &files)
{
    int64_t records = 0;
    for (auto _ : state) {
        records = 0;
        for (const std::string &path : files) {
            trace::TraceBuffer buf;
            if (!trace::loadTrace(path, buf).ok())
                fatal("bench trace unreadable: %s", path.c_str());
            benchmark::DoNotOptimize(buf.ops().data());
            records += static_cast<int64_t>(buf.size());
        }
        state.SetItemsProcessed(state.items_processed() + records);
    }
}

static void
BM_TraceStartup_DecodeV1(benchmark::State &state)
{
    loadStartupFiles(state, startupTraceFiles().v1);
}
BENCHMARK(BM_TraceStartup_DecodeV1)->Unit(benchmark::kMillisecond);

static void
BM_TraceStartup_Load(benchmark::State &state)
{
    loadStartupFiles(state, startupTraceFiles().v2);
}
BENCHMARK(BM_TraceStartup_Load)->Unit(benchmark::kMillisecond);

static void
BM_TraceStartup_Mmap(benchmark::State &state)
{
    const auto &files = startupTraceFiles().v2;
    int64_t records = 0;
    for (auto _ : state) {
        records = 0;
        for (const std::string &path : files) {
            trace::MmapTraceSource src;
            if (!src.open(path).ok())
                fatal("bench trace unmappable: %s", path.c_str());
            benchmark::DoNotOptimize(src.view().records);
            records += static_cast<int64_t>(src.size());
        }
        state.SetItemsProcessed(state.items_processed() + records);
    }
}
BENCHMARK(BM_TraceStartup_Mmap)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
