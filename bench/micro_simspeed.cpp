/**
 * @file
 * Google-benchmark microbenchmarks of the library itself: delay-model
 * evaluation throughput, assembler and emulator speed, and simulated
 * instructions per host second for the main machine organizations.
 */

#include <benchmark/benchmark.h>

#include "asm/assembler.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "func/emulator.hpp"
#include "trace/synthetic.hpp"
#include "uarch/pipeline.hpp"
#include "vlsi/clock.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;

static void
BM_DelayModelEval(benchmark::State &state)
{
    vlsi::ClockEstimator est(vlsi::Process::um0_18);
    vlsi::ClockConfig cfg;
    int iw = 2;
    for (auto _ : state) {
        cfg.issue_width = iw;
        cfg.window_size = 8 * iw;
        benchmark::DoNotOptimize(est.delays(cfg).criticalPs());
        iw = iw == 16 ? 2 : iw * 2;
    }
}
BENCHMARK(BM_DelayModelEval);

static void
BM_Assembler(benchmark::State &state)
{
    const char *src = workloads::workload("compress").source;
    for (auto _ : state) {
        auto r = assembler::assemble(src);
        benchmark::DoNotOptimize(r.ok);
    }
}
BENCHMARK(BM_Assembler);

static void
BM_FunctionalEmulation(benchmark::State &state)
{
    assembler::Program p = assembler::assembleOrDie(
        workloads::workload("compress").source);
    for (auto _ : state) {
        func::Emulator emu(p);
        auto r = emu.run(400000);
        benchmark::DoNotOptimize(r.instructions);
        state.SetItemsProcessed(
            state.items_processed() +
            static_cast<int64_t>(r.instructions));
    }
}
BENCHMARK(BM_FunctionalEmulation);

static void
BM_TimingSim(benchmark::State &state, const uarch::SimConfig &cfg)
{
    // The timing benchmarks must exercise the issue window, not the
    // frontend: with the synthetic defaults (16 KB working set inside
    // a 32 KB L1, mean dependence distance 6) the 128-entry window
    // holds ~6 instructions and the benchmark measures fetch and
    // commit instead. A pointer-chasing profile — short dependence
    // chains over a working set far larger than the L1 — keeps the
    // window occupied and the wakeup/select loop on the critical
    // path.
    trace::SyntheticParams sp;
    sp.mean_dep_distance = 2.0;
    sp.working_set = 512 * 1024;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 100000);
    for (auto _ : state) {
        auto stats = uarch::simulate(cfg, buf);
        benchmark::DoNotOptimize(stats.cycles);
        state.SetItemsProcessed(
            state.items_processed() +
            static_cast<int64_t>(stats.committed));
    }
}

static uarch::SimConfig
withModel(uarch::SimConfig cfg, uarch::IssueModel m)
{
    cfg.issue_model = m;
    return cfg;
}

/** 8-way issue over a 128-entry central window. */
static uarch::SimConfig
window8x128()
{
    uarch::SimConfig c = core::baseline8Way();
    c.window_size = 128;
    return c;
}

/** 8-way issue over 128 total FIFO entries (16 FIFOs of depth 8). */
static uarch::SimConfig
fifos8x128()
{
    uarch::SimConfig c = core::dependence8x8();
    c.fifos_per_cluster = 16;
    return c;
}

static void
BM_TimingSim_Window(benchmark::State &state)
{
    BM_TimingSim(state, window8x128());
}
BENCHMARK(BM_TimingSim_Window);

static void
BM_TimingSim_Window_LegacyScan(benchmark::State &state)
{
    BM_TimingSim(state, withModel(window8x128(),
                                  uarch::IssueModel::LegacyScan));
}
BENCHMARK(BM_TimingSim_Window_LegacyScan);

static void
BM_TimingSim_Fifos(benchmark::State &state)
{
    BM_TimingSim(state, fifos8x128());
}
BENCHMARK(BM_TimingSim_Fifos);

static void
BM_TimingSim_Fifos_LegacyScan(benchmark::State &state)
{
    BM_TimingSim(state, withModel(fifos8x128(),
                                  uarch::IssueModel::LegacyScan));
}
BENCHMARK(BM_TimingSim_Fifos_LegacyScan);

static void
BM_TimingSim_Clustered(benchmark::State &state)
{
    BM_TimingSim(state, core::clusteredDependence2x4());
}
BENCHMARK(BM_TimingSim_Clustered);

static void
BM_TimingSim_Clustered_LegacyScan(benchmark::State &state)
{
    BM_TimingSim(state, withModel(core::clusteredDependence2x4(),
                                  uarch::IssueModel::LegacyScan));
}
BENCHMARK(BM_TimingSim_Clustered_LegacyScan);

BENCHMARK_MAIN();
