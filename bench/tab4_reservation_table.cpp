/**
 * @file
 * Table 4: delay of the dependence-based microarchitecture's
 * reservation table in 0.18 um technology (paper: 192.1 ps for a
 * 4-way/80-register machine, 251.7 ps for 8-way/128), compared with
 * the CAM wakeup it replaces.
 */

#include <cstdio>

#include "common/table.hpp"
#include "vlsi/reservation_delay.hpp"
#include "vlsi/wakeup_delay.hpp"

using namespace cesp;
using namespace cesp::vlsi;

int
main()
{
    ReservationDelayModel resv(Process::um0_18);
    Table t("Table 4: reservation table delay, 0.18um");
    t.header({"issue width", "phys regs", "table entries",
              "bits/entry", "delay (ps)"});
    for (auto [iw, regs] : {std::pair{4, 80}, std::pair{8, 128}}) {
        t.row({cell(iw), cell(regs),
               cell(ReservationDelayModel::tableEntries(regs)),
               cell(8), cell(resv.totalPs(iw, regs))});
    }
    t.print();

    WakeupDelayModel wake(Process::um0_18);
    Table c("Reservation table vs CAM wakeup (0.18um)");
    c.header({"machine", "reservation (ps)", "CAM wakeup (ps)"});
    c.row({"4-way (32-entry window)", cell(resv.totalPs(4, 80)),
           cell(wake.totalPs(4, 32))});
    c.row({"8-way (64-entry window)", cell(resv.totalPs(8, 128)),
           cell(wake.totalPs(8, 64))});
    c.print();
    std::puts("Paper: for both widths the reservation-table access is "
              "much faster than the 4-way, 32-entry CAM wakeup.");
    return 0;
}
