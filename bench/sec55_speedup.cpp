/**
 * @file
 * Section 5.3 / 5.5: the combined complexity-effectiveness result.
 *  - The window logic (wakeup+select) of the 8-way machine versus the
 *    4-way/32-entry machine gives the conservative clock ratio
 *    724.0 / 578.0 = 1.25 at 0.18 um.
 *  - Rename becomes the critical stage once window logic is
 *    simplified: up to ~39% clock improvement for a 4-way machine.
 *  - Combining the clock ratio with the clustered dependence-based
 *    IPC gives 10-22% overall speedup (paper average: 16%).
 */

#include <cstdio>
#include <cstring>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/report.hpp"
#include "vlsi/clock.hpp"

using namespace cesp;
using namespace cesp::core;
using namespace cesp::vlsi;

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else
            fatal("usage: %s [--json FILE]", argv[0]);
    }

    // Section 5.3: rename slack at 4 wide.
    RenameDelayModel rn(Process::um0_18);
    WakeupDelayModel wk(Process::um0_18);
    SelectDelayModel sl(Process::um0_18);
    double window4 = wk.totalPs(4, 32) + sl.totalPs(32);
    double rename4 = rn.totalPs(4);
    std::printf("Section 5.3 (0.18um): rename %.1f ps vs window "
                "%.1f ps -> rename is %.1f%% faster; simplifying the "
                "window can improve the 4-way clock by up to that "
                "margin (paper: ~39%%).\n\n",
                rename4, window4, 100.0 * (window4 - rename4) /
                    window4);

    SpeedupStudy s = runSpeedupStudy(Process::um0_18);
    std::printf("Section 5.5 clock ratio clk_dep/clk_win = "
                "%.4f (paper: 724.0/578.0 = 1.2526)\n\n",
                s.clock_ratio);

    Table t("Section 5.5: overall speedup of the 2x4-way "
            "dependence-based machine");
    t.header({"benchmark", "IPC window", "IPC dep 2x4", "IPC ratio",
              "x clock", "speedup %"});
    for (const auto &e : s.entries) {
        t.row({e.workload, cell(e.ipc_window, 3), cell(e.ipc_dep, 3),
               cell(e.ipcRatio(), 3), cell(e.clock_ratio, 3),
               cell(100.0 * (e.speedup - 1.0))});
    }
    t.print();
    std::printf("mean speedup %.1f%% (paper: 10-22%%, average 16%%)\n",
                100.0 * (s.mean_speedup - 1.0));

    if (!json_path.empty()) {
        StatGroup g = s.toGroup();
        g.addGauge("rename4_ps", "ps",
                   "4-wide rename delay at 0.18um", rename4);
        g.addGauge("window4_ps", "ps",
                   "4-wide/32-entry wakeup+select delay at 0.18um",
                   window4);
        g.addGauge("rename_slack_pct", "%",
                   "margin by which rename beats window logic "
                   "(Section 5.3 clock headroom)",
                   100.0 * (window4 - rename4) / window4);
        std::string err;
        if (!writeTextOutput(json_path, g.toJson(), &err))
            fatal("%s", err.c_str());
    }
    return 0;
}
