/**
 * @file
 * Ablation: branch predictor sensitivity. Table 3 fixes McFarling's
 * gshare (4K 2-bit counters, 12-bit history); this sweep shows how
 * the IPC results depend on that choice, bounding the effect of the
 * predictor on the paper's comparisons (both machines in every
 * comparison share the same front end, so the *relative* results are
 * insensitive).
 */

#include <cmath>
#include <cstdio>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;
using uarch::BpredKind;

int
main()
{
    struct Pred
    {
        const char *name;
        BpredKind kind;
        bool perfect;
    };
    const Pred preds[] = {
        {"perfect", BpredKind::Gshare, true},
        {"gshare (Table 3)", BpredKind::Gshare, false},
        {"bimodal", BpredKind::Bimodal, false},
        {"always-taken", BpredKind::AlwaysTaken, false},
    };

    Table t("Branch predictor ablation: baseline IPC / misprediction "
            "rate %");
    std::vector<std::string> hdr = {"benchmark"};
    for (const auto &p : preds)
        hdr.push_back(p.name);
    t.header(hdr);

    for (const auto &w : workloads::allWorkloads()) {
        std::vector<std::string> row = {w.name};
        for (const auto &p : preds) {
            uarch::SimConfig cfg = baseline8Way();
            cfg.name = p.name;
            cfg.bpred.kind = p.kind;
            cfg.bpred.perfect = p.perfect;
            auto s = Machine(cfg).runWorkload(w.name);
            row.push_back(strprintf("%.2f / %.1f", s.ipc(),
                                    100.0 * s.mispredictRate()));
        }
        t.row(row);
    }
    t.print();

    // Relative dep-based result under different predictors.
    Table r("Dependence-based IPC ratio vs baseline under each "
            "predictor");
    r.header(hdr);
    std::vector<std::string> row = {"geomean ratio"};
    for (const auto &p : preds) {
        uarch::SimConfig base = baseline8Way();
        base.bpred.kind = p.kind;
        base.bpred.perfect = p.perfect;
        uarch::SimConfig dep = dependence8x8();
        dep.bpred.kind = p.kind;
        dep.bpred.perfect = p.perfect;
        double prod = 1.0;
        int n = 0;
        for (const auto &w : workloads::allWorkloads()) {
            double a = Machine(base).runWorkload(w.name).ipc();
            double b = Machine(dep).runWorkload(w.name).ipc();
            prod *= b / a;
            ++n;
        }
        row.push_back(cell(std::pow(prod, 1.0 / n), 3));
    }
    r.row(row);
    r.print();
    std::puts("The dependence-based machine tracks the window machine "
              "under every predictor: the comparison is front-end "
              "insensitive.");
    return 0;
}
