/**
 * @file
 * Ablation: branch predictor sensitivity. Table 3 fixes McFarling's
 * gshare (4K 2-bit counters, 12-bit history); this sweep shows how
 * the IPC results depend on that choice, bounding the effect of the
 * predictor on the paper's comparisons (both machines in every
 * comparison share the same front end, so the *relative* results are
 * insensitive).
 *
 *   abl_bpred [--json FILE] [--jobs N]
 *
 * The per-workload results live in a StatGroup of gauges
 * (`<predictor>.ipc`, `<predictor>.mispredict_pct`), and the geomean
 * IPC ratios in a summary group, so --json exports exactly what the
 * tables print, in the standard schema-versioned document. The
 * (predictor x workload x machine) matrix runs on core::run.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/parse.hpp"
#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "core/sweep.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;
using uarch::BpredKind;

namespace {

struct Pred
{
    const char *name; //!< table column header
    const char *slug; //!< metric-name prefix in the export
    BpredKind kind;
    bool perfect;
};

const Pred kPreds[] = {
    {"perfect", "perfect", BpredKind::Gshare, true},
    {"gshare (Table 3)", "gshare", BpredKind::Gshare, false},
    {"bimodal", "bimodal", BpredKind::Bimodal, false},
    {"always-taken", "always_taken", BpredKind::AlwaysTaken, false},
};

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    unsigned jobs = 0; // 0 = defaultJobs()
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (a == "--jobs" && i + 1 < argc) {
            auto v = parseInt(argv[++i], 0, 65536);
            if (!v)
                fatal("invalid value '%s' for --jobs", argv[i]);
            jobs = static_cast<unsigned>(*v);
        } else {
            std::fprintf(stderr,
                         "usage: abl_bpred [--json FILE] [--jobs N]\n");
            return 2;
        }
    }
    const bool quiet = json_path == "-";

    // Resolve traces on the main thread (the workload cache is not
    // thread-safe), then fan the full matrix out: for each predictor
    // and workload, the baseline window machine and the
    // dependence-based machine.
    std::vector<std::string> names;
    std::vector<trace::TraceView> traces;
    for (const auto &w : workloads::allWorkloads()) {
        names.push_back(w.name);
        traces.push_back(cachedWorkloadTraceView(w.name));
    }

    std::vector<SweepTask> tasks;
    for (const Pred &p : kPreds) {
        for (const trace::TraceView &tv : traces) {
            uarch::SimConfig base = baseline8Way();
            base.bpred.kind = p.kind;
            base.bpred.perfect = p.perfect;
            uarch::SimConfig dep = dependence8x8();
            dep.bpred.kind = p.kind;
            dep.bpred.perfect = p.perfect;
            tasks.push_back({base, tv});
            tasks.push_back({dep, tv});
        }
    }
    RunOptions opt;
    opt.jobs = jobs;
    std::vector<uarch::SimStats> stats =
        std::move(run(tasks, opt).stats);
    // stats[((p * W) + w) * 2] is baseline, [... + 1] dependence.
    auto at = [&](size_t p, size_t w, bool dep) -> uarch::SimStats & {
        return stats[(p * names.size() + w) * 2 + (dep ? 1 : 0)];
    };

    std::vector<std::string> hdr = {"benchmark"};
    for (const Pred &p : kPreds)
        hdr.push_back(p.name);

    Table t("Branch predictor ablation: baseline IPC / misprediction "
            "rate %");
    t.header(hdr);
    std::vector<StatGroup> groups;
    for (size_t w = 0; w < names.size(); ++w) {
        StatGroup g("bpred_ablation", names[w]);
        std::vector<std::string> row = {names[w]};
        for (size_t p = 0; p < std::size(kPreds); ++p) {
            const uarch::SimStats &s = at(p, w, false);
            g.addGauge(std::string(kPreds[p].slug) + ".ipc",
                       "inst/cycle",
                       "Baseline IPC under this predictor", s.ipc());
            g.addGauge(std::string(kPreds[p].slug) +
                           ".mispredict_pct", "%",
                       "Conditional misprediction rate under this "
                       "predictor",
                       100.0 * s.mispredictRate());
            row.push_back(strprintf("%.2f / %.1f", s.ipc(),
                                    100.0 * s.mispredictRate()));
        }
        t.row(row);
        groups.push_back(std::move(g));
    }

    // Relative dep-based result under each predictor: the geomean
    // over workloads of dep IPC / baseline IPC.
    StatGroup summary("bpred_ablation.ratio",
                      "dep8x8 over baseline, geomean across "
                      "workloads");
    Table r("Dependence-based IPC ratio vs baseline under each "
            "predictor");
    hdr[0] = "";
    r.header(hdr);
    std::vector<std::string> row = {"geomean ratio"};
    for (size_t p = 0; p < std::size(kPreds); ++p) {
        double prod = 1.0;
        for (size_t w = 0; w < names.size(); ++w)
            prod *= at(p, w, true).ipc() / at(p, w, false).ipc();
        double geomean = std::pow(
            prod, 1.0 / static_cast<double>(names.size()));
        summary.addGauge(std::string(kPreds[p].slug) + ".ipc_ratio",
                         "ratio",
                         "Geomean dep8x8/baseline IPC ratio under "
                         "this predictor",
                         geomean);
        row.push_back(cell(geomean, 3));
    }
    r.row(row);

    if (!quiet) {
        t.print();
        r.print();
        std::puts("The dependence-based machine tracks the window "
                  "machine under every predictor: the comparison is "
                  "front-end insensitive.");
    }
    if (!json_path.empty()) {
        std::string err;
        if (!writeTextOutput(json_path,
                             statGroupListJson(groups, {summary}),
                             &err))
            fatal("%s", err.c_str());
    }
    return 0;
}
