/**
 * @file
 * Figure 6: wakeup delay components versus feature size for an 8-way,
 * 64-entry window. The wire-dominated components (tag drive + tag
 * match) scale worse than the logic-only match OR: their share of the
 * total grows from ~52% at 0.8 um to ~65% at 0.18 um.
 */

#include "common/table.hpp"
#include "vlsi/wakeup_delay.hpp"

using namespace cesp;
using namespace cesp::vlsi;

int
main()
{
    Table t("Figure 6: wakeup delay vs feature size, 8-way 64-entry "
            "(ps)");
    t.header({"tech", "tag drive", "tag match", "match OR", "total",
              "drive+match %"});
    for (Process p : allProcesses()) {
        WakeupDelayModel model(p);
        WakeupDelay d = model.delay(8, 64);
        t.row({technology(p).name, cell(d.tag_drive),
               cell(d.tag_match), cell(d.match_or), cell(d.total()),
               cell(100.0 * (d.tag_drive + d.tag_match) / d.total())});
    }
    t.print();
    std::puts("Paper: the tag drive + tag match fraction grows from "
              "52% (0.8um) to 65% (0.18um).");
    return 0;
}
