/**
 * @file
 * Figure 12: the paper's instruction steering example. The figure
 * walks a 15-instruction SPEC code segment through the Section 5.1
 * heuristic with four FIFOs and shows dependent chains stacking in
 * shared FIFOs while independent chains spread out. This harness
 * runs the same segment (register roles preserved) through the real
 * dependence-based pipeline and prints the FIFO assignment and issue
 * schedule.
 */

#include <cstdio>

#include <map>
#include <vector>

#include "common/table.hpp"
#include "func/emulator.hpp"
#include "isa/disasm.hpp"
#include "uarch/pipeline.hpp"

using namespace cesp;

namespace {

// The code segment of Figure 12, in PJ-RISC (same register roles:
// $18->s2, $2->a2, $4->a0, $20->s4, $16->s0, $19->s3, $3->v1,
// $23->s7, $17->s1, $28->gp).
const char *kFigure12 = R"ASM(
        .data
g:      .space 64
        .text
main:   add  s2, zero, a2       # 0: addu $18,$0,$2
        addi a2, zero, -1       # 1: addiu $2,$0,-1
        beq  s2, a2, skip       # 2: beq $18,$2,L2
skip:   lw   a0, 0(gp)          # 3: lw $4,-32768($28)
        sllv a2, s2, s4         # 4: sllv $2,$18,$20
        xor  s0, a2, s3         # 5: xor $16,$2,$19
        lw   v1, 4(gp)          # 6: lw $3,-32676($28)
        slli a2, s0, 2          # 7: sll $2,$16,0x2
        add  a2, a2, s7         # 8: addu $2,$2,$23
        lw   a2, 0(a2)          # 9: lw $2,0($2)
        sllv a0, s2, a0         # 10: sllv $4,$18,$4
        add  s1, a0, s3         # 11: addu $17,$4,$19
        addi v1, v1, 1          # 12: addiu $3,$3,1
        sw   v1, 4(gp)          # 13: sw $3,-32676($28)
        beq  a2, s1, out        # 14: beq $2,$17,L3
out:    halt
)ASM";

const char *kPaperText[] = {
    "addu $18,$0,$2", "addiu $2,$0,-1", "beq $18,$2,L2",
    "lw $4,-32768($28)", "sllv $2,$18,$20", "xor $16,$2,$19",
    "lw $3,-32676($28)", "sll $2,$16,0x2", "addu $2,$2,$23",
    "lw $2,0($2)", "sllv $4,$18,$4", "addu $17,$4,$19",
    "addiu $3,$3,1", "sw $3,-32676($28)", "beq $2,$17,L3",
};

} // namespace

int
main()
{
    trace::TraceBuffer buf;
    func::runProgram(kFigure12, 1000, &buf);

    uarch::SimConfig cfg;
    cfg.name = "fig12";
    cfg.style = uarch::IssueBufferStyle::Fifos;
    cfg.steering = uarch::SteeringPolicy::DependenceFifo;
    cfg.fifos_per_cluster = 4;
    cfg.fifo_depth = 8;
    cfg.issue_width = 4;
    cfg.fus_per_cluster = 4;

    uarch::Pipeline pipe(cfg, buf);
    std::map<uint64_t, uarch::DynInst> insts;
    pipe.setDispatchObserver([&](const uarch::DynInst &d) {
        insts[d.seq] = d;
    });
    pipe.setIssueObserver([&](const uarch::DynInst &d) {
        insts[d.seq].issue_cycle = d.issue_cycle;
    });
    uarch::SimStats stats = pipe.run();

    Table t("Figure 12: steering of the paper's code segment "
            "(4 FIFOs, 4-wide)");
    t.header({"#", "paper instruction", "fifo", "issue cycle"});
    uint64_t first_issue = UINT64_MAX;
    for (const auto &[seq, d] : insts)
        first_issue = std::min(first_issue, d.issue_cycle);
    for (const auto &[seq, d] : insts) {
        if (seq >= 15)
            break; // the trailing halt
        t.row({cell(seq),
               kPaperText[static_cast<size_t>(seq)],
               cell(d.fifo),
               cell(d.issue_cycle - first_issue)});
    }
    t.print();

    // The chain structure of the figure: {0,2}, {4,5,7,8,9},
    // {6,12,13}, {10,11}.
    auto fifo_of = [&](uint64_t s) { return insts.at(s).fifo; };
    std::printf("chains sharing a FIFO: {0,2}%s  {4,5,7,8,9}%s  "
                "{6,12,13}%s  {10,11}%s\n",
                fifo_of(2) == fifo_of(0) ? " ok" : " MISMATCH",
                (fifo_of(5) == fifo_of(4) && fifo_of(7) == fifo_of(4) &&
                 fifo_of(8) == fifo_of(4) && fifo_of(9) == fifo_of(4))
                    ? " ok" : " MISMATCH",
                (fifo_of(12) == fifo_of(6) &&
                 fifo_of(13) == fifo_of(6)) ? " ok" : " MISMATCH",
                fifo_of(11) == fifo_of(10) ? " ok" : " MISMATCH");
    std::printf("segment IPC %.2f over %llu cycles\n", stats.ipc(),
                (unsigned long long)stats.cycles());
    return 0;
}
