/**
 * @file
 * Ablation: inter-cluster interconnect topology and functional-unit
 * mix.
 *
 * Interconnect: Section 5.6.2 contrasts the paper's broadcast
 * assumption with PEWs' ring. With two clusters they coincide; at
 * four clusters the ring's multi-hop latency costs IPC — quantified
 * here on the 4x4 dependence-based machine.
 *
 * FU mix: Table 3 assumes 8 symmetric units; real machines type
 * their units. The sweep shows how far a typed mix can shrink before
 * structural hazards bite.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

namespace {

double
meanIpc(const uarch::SimConfig &cfg)
{
    Machine m(cfg);
    uint64_t instrs = 0, cycles = 0;
    for (const auto &w : workloads::allWorkloads()) {
        auto s = m.runWorkload(w.name);
        instrs += s.committed();
        cycles += s.cycles();
    }
    return static_cast<double>(instrs) / static_cast<double>(cycles);
}

} // namespace

int
main()
{
    Table t("Interconnect topology: 4x4-way dependence-based, "
            "mean IPC");
    t.header({"interconnect", "+1/hop", "+2/hop"});
    for (auto ic : {uarch::ClusterInterconnect::Broadcast,
                    uarch::ClusterInterconnect::Ring}) {
        std::vector<std::string> row = {
            ic == uarch::ClusterInterconnect::Broadcast
                ? "broadcast (paper)" : "ring (PEWs-style)"};
        for (int extra : {1, 2}) {
            uarch::SimConfig cfg = clusteredDependence4x4();
            cfg.name = "ic";
            cfg.interconnect = ic;
            cfg.inter_cluster_extra = extra;
            row.push_back(cell(meanIpc(cfg), 3));
        }
        t.row(row);
    }
    t.print();
    std::puts("With 4 clusters the ring's worst path is 2 hops; the "
              "broadcast the paper assumes is strictly better "
              "(Section 5.6.2's critique of PEWs).\n");

    struct Mix
    {
        const char *label;
        uarch::FuMix mix;
    };
    const Mix mixes[] = {
        {"8 symmetric (Table 3)", {}},
        {"5 alu / 4 mem / 2 br", {5, 4, 2}},
        {"4 alu / 3 mem / 2 br", {4, 3, 2}},
        {"4 alu / 2 mem / 1 br", {4, 2, 1}},
        {"2 alu / 2 mem / 1 br", {2, 2, 1}},
    };

    Table f("Functional-unit mix (8-way window machine)");
    std::vector<std::string> hdr = {"benchmark"};
    for (const auto &m : mixes)
        hdr.push_back(m.label);
    f.header(hdr);
    for (const auto &w : workloads::allWorkloads()) {
        std::vector<std::string> row = {w.name};
        for (const auto &m : mixes) {
            uarch::SimConfig cfg = baseline8Way();
            cfg.name = "mix";
            cfg.fu_mix = m.mix;
            row.push_back(
                cell(Machine(cfg).runWorkload(w.name).ipc(), 3));
        }
        f.row(row);
    }
    f.print();
    std::puts("A 5/4/2 typed mix matches the symmetric machine; the "
              "mix can halve before the ALU/branch units become the "
              "bottleneck.");
    return 0;
}
