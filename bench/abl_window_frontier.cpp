/**
 * @file
 * Ablation: the complexity-effectiveness frontier of the issue
 * window. IPC grows with window size while the wakeup+select delay
 * (and hence the clock) degrades; their product — billions of
 * instructions per second — peaks at a moderate window. This is the
 * paper's central tradeoff, swept explicitly.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "vlsi/clock.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

namespace {

double
meanIpc(const uarch::SimConfig &cfg)
{
    Machine m(cfg);
    uint64_t instrs = 0, cycles = 0;
    for (const auto &w : workloads::allWorkloads()) {
        auto s = m.runWorkload(w.name);
        instrs += s.committed();
        cycles += s.cycles();
    }
    return static_cast<double>(instrs) / static_cast<double>(cycles);
}

} // namespace

int
main()
{
    vlsi::WakeupDelayModel wakeup(vlsi::Process::um0_18);
    vlsi::SelectDelayModel select(vlsi::Process::um0_18);
    vlsi::RenameDelayModel rename(vlsi::Process::um0_18);
    vlsi::BypassDelayModel bypass(vlsi::Process::um0_18);

    Table t("Window-size frontier (8-way, 0.18um)");
    t.header({"window", "mean IPC", "wakeup+select ps",
              "clock ps", "clock MHz", "BIPS"});
    double best = 0.0;
    int best_ws = 0;
    for (int ws : {16, 32, 64, 128}) {
        uarch::SimConfig cfg = baseline8Way();
        cfg.name = "win" + std::to_string(ws);
        cfg.window_size = ws;
        double ipc = meanIpc(cfg);
        double wsdelay = wakeup.totalPs(8, ws) + select.totalPs(ws);
        double clock =
            std::max({wsdelay, rename.totalPs(8), bypass.totalPs(8)});
        double mhz = 1e6 / clock;
        double bips = ipc * mhz / 1000.0;
        if (bips > best) {
            best = bips;
            best_ws = ws;
        }
        t.row({cell(ws), cell(ipc, 3), cell(wsdelay), cell(clock),
               cell(mhz, 0), cell(bips, 2)});
    }
    t.print();
    std::printf("frontier peak at a %d-entry window (%.2f BIPS): "
                "bigger windows buy IPC the slower clock gives "
                "back.\n", best_ws, best);

    // The dependence-based alternative escapes the tradeoff: window
    // logic is a reservation-table access + 8-head select.
    vlsi::ClockEstimator est(vlsi::Process::um0_18);
    vlsi::ClockConfig dep;
    dep.org = vlsi::IssueOrganization::DependenceFifos;
    dep.issue_width = 8;
    dep.fifos_per_cluster = 8;
    double dep_ipc = meanIpc(dependence8x8());
    double dep_clock = est.delays(dep).criticalPs();
    std::printf("dependence-based 8x8: IPC %.3f at %.1f ps -> "
                "%.2f BIPS\n", dep_ipc, dep_clock,
                dep_ipc * 1e6 / dep_clock / 1000.0);
    return 0;
}
