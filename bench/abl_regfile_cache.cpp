/**
 * @file
 * Ablation (Section 2.1 / 4.4.4 / 5.4): the structures the paper
 * "considered elsewhere" — register file and data cache access
 * times. Two of the paper's side-claims are made quantitative here:
 *  - clustering halves the register file's port count per copy,
 *    making each copy faster (Section 5.4);
 *  - the Table 3 data cache fits the cycle implied by the
 *    window/bypass-limited clock (1-cycle hit), and unlike the
 *    window logic these structures can be pipelined if they do not.
 */

#include <cstdio>

#include "common/table.hpp"
#include "vlsi/cache_delay.hpp"
#include "vlsi/clock.hpp"
#include "vlsi/regfile_delay.hpp"

using namespace cesp;
using namespace cesp::vlsi;

int
main()
{
    Table r("Register file access time (120 physical registers)");
    r.header({"tech", "machine", "read ports", "write ports",
              "delay (ps)"});
    for (Process p : allProcesses()) {
        RegfileDelayModel m(p);
        r.row({technology(p).name, "8-way monolithic", cell(16),
               cell(8), cell(m.totalPs(120, 16, 8))});
        r.row({technology(p).name, "4-way cluster copy", cell(8),
               cell(4), cell(m.totalPs(120, 8, 4))});
    }
    r.print();

    RegfileDelayModel rf18(Process::um0_18);
    double mono = rf18.totalPs(120, 16, 8);
    double clus = rf18.totalPs(120, 8, 4);
    std::printf("clustering speeds each register file copy by "
                "%.0f%% (Section 5.4's third advantage)\n\n",
                100.0 * (mono - clus) / mono);

    Table c("Data cache access time vs geometry (0.18um)");
    c.header({"size KB", "assoc", "line B", "delay (ps)"});
    CacheDelayModel cm(Process::um0_18);
    for (uint32_t kb : {8u, 16u, 32u, 64u, 128u}) {
        for (int assoc : {1, 2, 4}) {
            c.row({cell(static_cast<int>(kb)), cell(assoc), cell(32),
                   cell(cm.totalPs(kb * 1024, assoc, 32))});
        }
    }
    c.print();

    ClockEstimator est(Process::um0_18);
    ClockConfig cfg;
    cfg.issue_width = 8;
    cfg.window_size = 64;
    double clock = est.delays(cfg).criticalPs();
    double dcache = cm.totalPs(32 * 1024, 2, 32);
    std::printf("Table 3 cache: %.1f ps vs the 8-way machine's "
                "%.1f ps clock -> %s (1-cycle hit %s)\n", dcache,
                clock, dcache <= clock ? "fits" : "does not fit",
                dcache <= clock ? "holds" : "needs pipelining");
    return 0;
}
