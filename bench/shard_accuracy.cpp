/**
 * @file
 * Accuracy and speedup of sharded trace simulation — the measurement
 * harness behind `cesp-sim --shards`. The longest bundled workload
 * (perl, ~1.18M trace records) is simulated monolithically and then
 * as K warmed-up shards; each benchmark's counters record the
 * merged-IPC relative error and two speedups:
 *
 *  - speedup_wall_clock: monolithic time over the sharded run's
 *    actual time on this host. On a single-CPU machine the shards
 *    time-slice one core, so this is honestly <= 1.
 *  - speedup_critical_path: monolithic time over the slowest single
 *    shard's serial time — the wall-clock a host with >= K cores
 *    would see, since the work-stealing pool runs one shard per
 *    core and the run ends when the longest shard does.
 *
 * Links into the micro_simspeed binary (google-benchmark registers
 * across translation units), so bench/run_bench.sh lands these rows
 * in BENCH_simspeed.json alongside the other microbenchmarks.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>

#include "core/machine.hpp"
#include "core/presets.hpp"
#include "core/sweep.hpp"
#include "trace/trace.hpp"
#include "uarch/pipeline.hpp"

using namespace cesp;

namespace {

constexpr const char *kWorkload = "perl";
constexpr uint64_t kWarmup = 50000;

/** Monolithic IPC and serial run time, computed once. */
struct MonoBaseline
{
    double ipc;
    double seconds;
};

const MonoBaseline &
monoBaseline()
{
    // Best of three runs: on a loaded single-CPU host a single
    // timing can absorb an arbitrary scheduling hiccup, and every
    // speedup counter divides by this number.
    static const MonoBaseline mono = [] {
        trace::TraceView tv = core::cachedWorkloadTraceView(kWorkload);
        uarch::SimConfig cfg = core::baseline8Way();
        MonoBaseline best{0.0, 0.0};
        for (int i = 0; i < 3; ++i) {
            auto t0 = std::chrono::steady_clock::now();
            trace::TraceCursor cur(tv);
            uarch::SimStats s = uarch::simulate(cfg, cur);
            auto t1 = std::chrono::steady_clock::now();
            double secs =
                std::chrono::duration<double>(t1 - t0).count();
            if (best.seconds == 0.0 || secs < best.seconds)
                best = {s.ipc(), secs};
        }
        return best;
    }();
    return mono;
}

} // namespace

static void
BM_ShardedWorkload(benchmark::State &state)
{
    const unsigned k = static_cast<unsigned>(state.range(0));
    trace::TraceView tv = core::cachedWorkloadTraceView(kWorkload);
    const uarch::SimConfig cfg = core::baseline8Way();
    const MonoBaseline &mono = monoBaseline();

    core::RunOptions opt;
    opt.jobs = k;
    opt.shards = k;
    opt.warmup = kWarmup;

    double merged_ipc = 0.0;
    for (auto _ : state) {
        core::RunResult run = core::run({{cfg, tv}}, opt);
        merged_ipc = run.groups[0].value("ipc");
        benchmark::DoNotOptimize(merged_ipc);
        state.SetItemsProcessed(
            state.items_processed() +
            static_cast<int64_t>(run.groups[0].counter("committed")));
    }

    // Honest wall clock for one sharded run on this host (jobs = K
    // threads, however many cores exist), then each shard serially
    // for the critical path a K-core host would pay.
    auto t0 = std::chrono::steady_clock::now();
    core::run({{cfg, tv}}, opt);
    auto t1 = std::chrono::steady_clock::now();
    const double sharded_secs =
        std::chrono::duration<double>(t1 - t0).count();

    double max_shard_secs = 0.0;
    for (const core::ShardSpec &s :
         core::planShards(tv.count, k, kWarmup)) {
        trace::TraceView slice = tv.slice(s.begin, s.end - s.begin);
        auto s0 = std::chrono::steady_clock::now();
        trace::TraceCursor cur(slice);
        uarch::SimStats st =
            uarch::simulate(cfg, cur, UINT64_MAX, s.warmup);
        auto s1 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(st.cycles());
        max_shard_secs = std::max(
            max_shard_secs,
            std::chrono::duration<double>(s1 - s0).count());
    }

    state.counters["ipc_error_pct"] =
        100.0 * std::fabs(merged_ipc - mono.ipc) / mono.ipc;
    state.counters["speedup_wall_clock"] = mono.seconds / sharded_secs;
    state.counters["speedup_critical_path"] =
        mono.seconds / max_shard_secs;
}
BENCHMARK(BM_ShardedWorkload)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
