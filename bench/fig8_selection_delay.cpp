/**
 * @file
 * Figure 8: selection logic delay versus window size (16-128) for the
 * three technologies, broken into request propagation, root cell, and
 * grant propagation. Delay grows with ceil(log4(window)) — equal for
 * 32 and 64 entries, and less than doubling across the 16->32 and
 * 64->128 boundaries because the root delay is size-independent.
 */

#include "common/table.hpp"
#include "vlsi/select_delay.hpp"

using namespace cesp;
using namespace cesp::vlsi;

int
main()
{
    Table t("Figure 8: selection delay vs window size (ps)");
    t.header({"tech", "window", "levels", "request prop", "root",
              "grant prop", "total"});
    for (Process p : allProcesses()) {
        SelectDelayModel model(p);
        for (int ws : {16, 32, 64, 128}) {
            SelectDelay d = model.delay(ws);
            t.row({technology(p).name, cell(ws),
                   cell(SelectDelayModel::levels(ws)),
                   cell(d.request_prop), cell(d.root),
                   cell(d.grant_prop), cell(d.total())});
        }
    }
    t.print();

    SelectDelayModel m18(Process::um0_18);
    Table g("Boundary growth at 0.18um (paper: < 100% per size "
            "doubling that adds a level)");
    g.header({"transition", "growth %"});
    g.row({"16 -> 32", cell(100.0 * (m18.totalPs(32) -
                                     m18.totalPs(16)) /
                            m18.totalPs(16))});
    g.row({"64 -> 128", cell(100.0 * (m18.totalPs(128) -
                                      m18.totalPs(64)) /
                             m18.totalPs(64))});
    g.print();
    return 0;
}
