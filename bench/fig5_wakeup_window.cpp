/**
 * @file
 * Figure 5: wakeup logic delay versus window size for 2-, 4-, and
 * 8-way issue at 0.18 um, plus the growth ratios the paper quotes
 * (~34% from 2- to 4-way and ~46% from 4- to 8-way at 64 entries).
 */

#include "common/table.hpp"
#include "vlsi/wakeup_delay.hpp"

using namespace cesp;
using namespace cesp::vlsi;

int
main()
{
    WakeupDelayModel model(Process::um0_18);

    Table t("Figure 5: wakeup delay vs window size, 0.18um (ps)");
    t.header({"window", "2-way", "4-way", "8-way"});
    for (int ws = 8; ws <= 64; ws += 8) {
        t.row({cell(ws), cell(model.totalPs(2, ws)),
               cell(model.totalPs(4, ws)),
               cell(model.totalPs(8, ws))});
    }
    t.print();

    double w2 = model.totalPs(2, 64);
    double w4 = model.totalPs(4, 64);
    double w8 = model.totalPs(8, 64);
    Table g("Issue-width growth at a 64-entry window "
            "(paper: ~34% and ~46%)");
    g.header({"transition", "delay growth %"});
    g.row({"2-way -> 4-way", cell(100.0 * (w4 - w2) / w2)});
    g.row({"4-way -> 8-way", cell(100.0 * (w8 - w4) / w4)});
    g.print();
    return 0;
}
