/**
 * @file
 * Table 2: overall delay results — rename, wakeup+select, and bypass
 * delays for a {4-way, 32-entry} and an {8-way, 64-entry} machine in
 * 0.8, 0.35, and 0.18 um technologies.
 */

#include <cstdio>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "vlsi/clock.hpp"

using namespace cesp;
using namespace cesp::vlsi;

int
main()
{
    Table t("Table 2: overall delay results (ps)");
    t.header({"tech", "issue", "window", "rename", "wakeup+select",
              "bypass"});
    for (Process p : allProcesses()) {
        RenameDelayModel rn(p);
        WakeupDelayModel wk(p);
        SelectDelayModel sl(p);
        BypassDelayModel bp(p);
        for (auto [iw, ws] : {std::pair{4, 32}, std::pair{8, 64}}) {
            t.row({technology(p).name, cell(iw), cell(ws),
                   cell(rn.totalPs(iw)),
                   cell(wk.totalPs(iw, ws) + sl.totalPs(ws)),
                   cell(bp.totalPs(iw))});
        }
    }
    t.print();

    // Critical-stage summary (Section 4.5).
    Table c("Critical pipeline stage per machine (clock estimator)");
    c.header({"tech", "machine", "rename", "window", "bypass",
              "critical", "clock MHz"});
    for (Process p : allProcesses()) {
        ClockEstimator est(p);
        for (auto [iw, ws] : {std::pair{4, 32}, std::pair{8, 64}}) {
            ClockConfig cfg;
            cfg.issue_width = iw;
            cfg.window_size = ws;
            StageDelays d = est.delays(cfg);
            c.row({technology(p).name,
                   strprintf("%d-way/%d", iw, ws), cell(d.rename),
                   cell(d.window()), cell(d.bypass),
                   d.criticalStage(), cell(d.clockMhz(), 0)});
        }
    }
    c.print();
    std::puts("Paper: window logic is critical for the 4-way machine; "
              "at 8 wide the bypass delay grows over 5x and exceeds "
              "wakeup+select.");
    return 0;
}
