/**
 * @file
 * Ablation: gshare history length. Table 3 fixes 12 bits of global
 * history over 4K counters; this sweep shows where that sits on each
 * workload's accuracy curve (0 history bits = a bimodal-style
 * pc-indexed table).
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

int
main()
{
    const int histories[] = {0, 4, 8, 12, 16};

    Table t("gshare history-length sweep: misprediction rate (%)");
    std::vector<std::string> hdr = {"benchmark"};
    for (int h : histories)
        hdr.push_back(h == 12 ? "12 (Table 3)" : std::to_string(h));
    t.header(hdr);

    for (const auto &w : workloads::allWorkloads()) {
        std::vector<std::string> row = {w.name};
        for (int h : histories) {
            uarch::SimConfig cfg = baseline8Way();
            cfg.name = "h" + std::to_string(h);
            cfg.bpred.history_bits = h;
            auto s = Machine(cfg).runWorkload(w.name);
            row.push_back(cell(100.0 * s.mispredictRate()));
        }
        t.row(row);
    }
    t.print();

    Table i("Resulting IPC");
    i.header(hdr);
    for (const auto &w : workloads::allWorkloads()) {
        std::vector<std::string> row = {w.name};
        for (int h : histories) {
            uarch::SimConfig cfg = baseline8Way();
            cfg.name = "h" + std::to_string(h);
            cfg.bpred.history_bits = h;
            row.push_back(
                cell(Machine(cfg).runWorkload(w.name).ipc(), 3));
        }
        i.row(row);
    }
    i.print();
    std::puts("History pays where outcomes correlate across branches "
              "(go's recursion: 26% -> 11%) and costs a little "
              "aliasing where they are data-dependent (gcc, vortex); "
              "Table 3's 12 bits sits at the knee of every curve.");
    return 0;
}
