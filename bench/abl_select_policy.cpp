/**
 * @file
 * Ablation (Section 4.3): selection-policy insensitivity. Butler and
 * Patt found overall performance largely independent of which ready
 * instruction the selection logic grants; the paper leans on that to
 * adopt the simple position-based (oldest-first) arbiter. This
 * harness checks the claim on our workloads.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;
using uarch::SelectPolicy;

int
main()
{
    struct Policy
    {
        const char *name;
        SelectPolicy policy;
    };
    const Policy policies[] = {
        {"oldest-first", SelectPolicy::OldestFirst},
        {"youngest-first", SelectPolicy::YoungestFirst},
        {"random", SelectPolicy::Random},
    };

    Table t("Selection policy ablation: IPC (8-way, 64-entry window)");
    t.header({"benchmark", "oldest-first", "youngest-first", "random",
              "spread %"});
    double worst_spread = 0.0;
    for (const auto &w : workloads::allWorkloads()) {
        double ipc[3];
        for (int i = 0; i < 3; ++i) {
            uarch::SimConfig cfg = baseline8Way();
            cfg.name = policies[i].name;
            cfg.select_policy = policies[i].policy;
            ipc[i] = Machine(cfg).runWorkload(w.name).ipc();
        }
        double lo = std::min({ipc[0], ipc[1], ipc[2]});
        double hi = std::max({ipc[0], ipc[1], ipc[2]});
        double spread = 100.0 * (hi - lo) / hi;
        worst_spread = std::max(worst_spread, spread);
        t.row({w.name, cell(ipc[0], 3), cell(ipc[1], 3),
               cell(ipc[2], 3), cell(spread)});
    }
    t.print();
    std::printf("worst spread across policies: %.1f%% "
                "(Butler & Patt: performance largely independent of "
                "the selection policy)\n", worst_spread);
    return 0;
}
