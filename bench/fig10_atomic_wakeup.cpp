/**
 * @file
 * Figure 10 / Section 4.5: wakeup and select form an atomic
 * operation. If the loop is pipelined over two stages, dependent
 * instructions can no longer issue in consecutive cycles (the
 * add/sub bubble of Figure 10). This harness quantifies the IPC cost
 * of pipelining the window logic — and then combines it with the
 * clock gain pipelining would buy, showing why the paper instead
 * simplifies the logic (the dependence-based microarchitecture).
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "vlsi/clock.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

int
main()
{
    Table t("Figure 10: IPC with atomic vs pipelined wakeup+select "
            "(8-way, 64-entry window)");
    t.header({"benchmark", "atomic (1 stage)", "pipelined (2 stages)",
              "pipelined (3 stages)", "loss 2-stage %"});

    double sum1 = 0, sum2 = 0;
    int n = 0;
    for (const auto &w : workloads::allWorkloads()) {
        double ipc[3];
        for (int stages = 1; stages <= 3; ++stages) {
            uarch::SimConfig cfg = baseline8Way();
            cfg.name = "ws" + std::to_string(stages);
            cfg.wakeup_select_stages = stages;
            ipc[stages - 1] = Machine(cfg).runWorkload(w.name).ipc();
        }
        sum1 += ipc[0];
        sum2 += ipc[1];
        ++n;
        t.row({w.name, cell(ipc[0], 3), cell(ipc[1], 3),
               cell(ipc[2], 3),
               cell(100.0 * (1.0 - ipc[1] / ipc[0]))});
    }
    t.print();

    // Would pipelining pay off? The 2-stage window halves the window
    // stage delay; compare delivered performance at both widths.
    vlsi::ClockEstimator est(vlsi::Process::um0_18);
    double ipc_ratio = (sum2 / n) / (sum1 / n);
    for (auto [iw, ws] : {std::pair{4, 32}, std::pair{8, 64}}) {
        vlsi::ClockConfig cc;
        cc.issue_width = iw;
        cc.window_size = ws;
        vlsi::StageDelays d = est.delays(cc);
        double clk_atomic = d.criticalPs();
        double window_half = d.window() / 2.0;
        double clk_pipe =
            std::max({d.rename, window_half, d.bypass});
        std::printf("\n%d-way/%d: clock atomic %.1f ps vs pipelined "
                    "%.1f ps (%.2fx); with the ~%.0f%% IPC loss the "
                    "net effect of pipelining is %.2fx\n",
                    iw, ws, clk_atomic, clk_pipe,
                    clk_atomic / clk_pipe,
                    100.0 * (1.0 - ipc_ratio),
                    ipc_ratio * clk_atomic / clk_pipe);
    }
    std::puts("Paper's point: the loop is atomic if dependent "
              "instructions are to execute in consecutive cycles; "
              "simplifying the logic (FIFOs + reservation table) "
              "beats pipelining it.");
    return 0;
}
