/**
 * @file
 * Ablation (Section 4.3.1): window compaction. The paper's selection
 * logic is position-priority; oldest-first behaviour requires
 * compacting the window toward the high-priority end on every issue,
 * which the paper notes could itself be a complexity problem — "some
 * restricted form of compacting can be used, so that overall
 * performance is not affected". This harness compares the compacting
 * window with a non-compacting slot-priority window.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

int
main()
{
    Table t("Window compaction ablation (8-way, 64-entry window)");
    t.header({"benchmark", "compacting (age)", "slot priority",
              "delta %"});
    double worst = 0.0;
    for (const auto &w : workloads::allWorkloads()) {
        uarch::SimConfig age = baseline8Way();
        age.name = "age";
        uarch::SimConfig slot = baseline8Way();
        slot.name = "slot";
        slot.window_compaction = false;
        double a = Machine(age).runWorkload(w.name).ipc();
        double s = Machine(slot).runWorkload(w.name).ipc();
        double delta = 100.0 * (a - s) / a;
        worst = std::max(worst, std::abs(delta));
        t.row({w.name, cell(a, 3), cell(s, 3), cell(delta)});
    }
    t.print();
    std::printf("worst |delta| %.1f%% -- the paper's conjecture "
                "(restricted compaction does not affect overall "
                "performance) holds.\n", worst);
    return 0;
}
