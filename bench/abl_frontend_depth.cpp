/**
 * @file
 * Ablation: front-end depth. Two of the paper's remarks hang on the
 * misprediction penalty growing with pipeline depth: deeper pipelines
 * motivate the complexity analysis (Section 1), and a more complex
 * steering heuristic "can be moved into a new pipestage — at the
 * cost of an increase in branch mispredict penalty" (Section 5.3).
 * This sweep measures that cost directly.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

int
main()
{
    const int depths[] = {1, 2, 3, 4, 6};

    Table t("Front-end depth ablation: baseline IPC vs fetch-to-"
            "rename latency");
    std::vector<std::string> hdr = {"benchmark"};
    for (int d : depths)
        hdr.push_back(std::to_string(d) + " stages");
    t.header(hdr);

    for (const auto &w : workloads::allWorkloads()) {
        std::vector<std::string> row = {w.name};
        for (int d : depths) {
            uarch::SimConfig cfg = baseline8Way();
            cfg.name = "fe" + std::to_string(d);
            cfg.frontend_latency = d;
            row.push_back(
                cell(Machine(cfg).runWorkload(w.name).ipc(), 3));
        }
        t.row(row);
    }
    t.print();

    // The steering-pipestage cost (Section 5.3): dependence-based
    // machine with one extra front-end stage.
    Table s("Extra steering pipestage on the dependence-based "
            "machine (Section 5.3)");
    s.header({"benchmark", "steer in rename", "steer +1 stage",
              "cost %"});
    double sum = 0.0;
    int n = 0;
    for (const auto &w : workloads::allWorkloads()) {
        uarch::SimConfig base = dependence8x8();
        uarch::SimConfig deep = dependence8x8();
        deep.name = "dep-deep";
        deep.frontend_latency = base.frontend_latency + 1;
        double a = Machine(base).runWorkload(w.name).ipc();
        double b = Machine(deep).runWorkload(w.name).ipc();
        sum += 100.0 * (a - b) / a;
        ++n;
        s.row({w.name, cell(a, 3), cell(b, 3),
               cell(100.0 * (a - b) / a)});
    }
    s.print();
    std::printf("mean cost of the extra steering stage: %.1f%% "
                "(the paper keeps steering inside rename to avoid "
                "it)\n", sum / n);
    return 0;
}
