/**
 * @file
 * Table 1: bypass result-wire length and delay for 4-way and 8-way
 * machines (paper: 20500 lambda / 184.9 ps and 49000 lambda /
 * 1056.4 ps, identical across technologies under the constant-wire-
 * delay scaling model).
 */

#include "common/table.hpp"
#include "vlsi/bypass_delay.hpp"

using namespace cesp;
using namespace cesp::vlsi;

int
main()
{
    Table t("Table 1: bypass delays");
    t.header({"issue width", "wire length (lambda)", "delay (ps)"});
    BypassDelayModel m(Process::um0_18);
    for (int iw : {4, 8}) {
        t.row({cell(iw),
               cell(BypassDelayModel::wireLengthLambda(iw), 0),
               cell(m.totalPs(iw))});
    }
    t.print();

    Table x("Technology independence of the bypass delay");
    x.header({"tech", "4-way (ps)", "8-way (ps)"});
    for (Process p : allProcesses()) {
        BypassDelayModel bm(p);
        x.row({technology(p).name, cell(bm.totalPs(4)),
               cell(bm.totalPs(8))});
    }
    x.print();

    Table g("Bypass path count (2-input FUs, S result pipestages)");
    g.header({"issue width", "S=1", "S=2", "S=3"});
    for (int iw : {2, 4, 8, 16}) {
        g.row({cell(iw),
               cell(BypassDelayModel::numBypassPaths(iw, 1)),
               cell(BypassDelayModel::numBypassPaths(iw, 2)),
               cell(BypassDelayModel::numBypassPaths(iw, 3))});
    }
    g.print();
    return 0;
}
