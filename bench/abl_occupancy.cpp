/**
 * @file
 * Ablation: issue-buffer occupancy and issue-width utilization. The
 * window's job is to hold enough not-yet-ready instructions to feed
 * the issue width; this harness shows how full the 64-entry window
 * actually runs, how often the full 8-wide issue is used, and how
 * the FIFO organization's occupancy compares.
 *
 *   abl_occupancy [--json FILE]
 *
 * The derived quantities live in a per-workload StatGroup (gauges
 * computed from the simulator's occupancy and issue-size
 * histograms), so --json exports the same numbers the table prints,
 * in the standard schema-versioned document.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

namespace {

/** The occupancy/utilization quantities of one workload as a
 *  self-describing group. */
StatGroup
occupancyGroup(const std::string &workload,
               const uarch::SimStats &win, const uarch::SimStats &dep)
{
    // Fraction of cycles the 64-entry window is (nearly) full.
    uint64_t full = 0;
    for (size_t b = 60; b < win.buffer_occupancy().buckets(); ++b)
        full += win.buffer_occupancy().bucket(b);
    double full_pct = 100.0 * static_cast<double>(full) /
        static_cast<double>(win.buffer_occupancy().total());

    double wide = 0.0;
    for (size_t b = 6; b < win.issue_sizes().buckets(); ++b)
        wide += win.issue_sizes().fraction(b);

    StatGroup g("occupancy", workload);
    g.addGauge("win_mean_occupancy", "instructions",
               "Mean occupancy of the 64-entry central window",
               win.buffer_occupancy().mean());
    g.addGauge("win_full_pct", "%",
               "Cycles the central window holds 60+ instructions",
               full_pct);
    g.addGauge("fifo_mean_occupancy", "instructions",
               "Mean total occupancy of the 8x8 FIFO organization",
               dep.buffer_occupancy().mean());
    g.addGauge("issue_zero_pct", "%",
               "Cycles issuing nothing on the window machine",
               100.0 * win.issue_sizes().fraction(0));
    g.addGauge("issue_wide_pct", "%",
               "Cycles issuing 6+ instructions on the window machine",
               100.0 * wide);
    return g;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: abl_occupancy [--json FILE]\n");
            return 2;
        }
    }
    const bool quiet = json_path == "-";

    Table t("Issue-buffer occupancy and issue utilization");
    t.header({"benchmark", "win mean occ", "win full %",
              "fifo mean occ", "issue=0 %", "issue>=6 %"});
    Machine win(baseline8Way());
    Machine dep(dependence8x8());
    std::vector<StatGroup> groups;
    for (const auto &w : workloads::allWorkloads()) {
        StatGroup g = occupancyGroup(w.name,
                                     win.runWorkload(w.name),
                                     dep.runWorkload(w.name));
        t.row({w.name, cell(g.value("win_mean_occupancy")),
               cell(g.value("win_full_pct")),
               cell(g.value("fifo_mean_occupancy")),
               cell(g.value("issue_zero_pct")),
               cell(g.value("issue_wide_pct"))});
        groups.push_back(std::move(g));
    }
    if (!quiet) {
        t.print();
        std::puts("The window runs far from full on most workloads "
                  "and 8-wide issue cycles are rare — the slack the "
                  "dependence-based organization exploits: a few FIFO "
                  "heads expose enough ready instructions.");
    }
    if (!json_path.empty()) {
        std::string err;
        if (!writeTextOutput(json_path, statGroupListJson(groups, {}),
                             &err))
            fatal("%s", err.c_str());
    }
    return 0;
}
