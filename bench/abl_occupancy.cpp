/**
 * @file
 * Ablation: issue-buffer occupancy and issue-width utilization. The
 * window's job is to hold enough not-yet-ready instructions to feed
 * the issue width; this harness shows how full the 64-entry window
 * actually runs, how often the full 8-wide issue is used, and how
 * the FIFO organization's occupancy compares.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

int
main()
{
    Table t("Issue-buffer occupancy and issue utilization");
    t.header({"benchmark", "win mean occ", "win full %",
              "fifo mean occ", "issue=0 %", "issue>=6 %"});
    Machine win(baseline8Way());
    Machine dep(dependence8x8());
    for (const auto &w : workloads::allWorkloads()) {
        auto sw = win.runWorkload(w.name);
        auto sd = dep.runWorkload(w.name);

        // Fraction of cycles the 64-entry window is (nearly) full.
        uint64_t full = 0;
        for (size_t b = 60; b < sw.buffer_occupancy().buckets(); ++b)
            full += sw.buffer_occupancy().bucket(b);
        double full_pct = 100.0 * static_cast<double>(full) /
            static_cast<double>(sw.buffer_occupancy().total());

        double wide = 0.0;
        for (size_t b = 6; b < sw.issue_sizes().buckets(); ++b)
            wide += sw.issue_sizes().fraction(b);

        t.row({w.name, cell(sw.buffer_occupancy().mean()),
               cell(full_pct), cell(sd.buffer_occupancy().mean()),
               cell(100.0 * sw.issue_sizes().fraction(0)),
               cell(100.0 * wide)});
    }
    t.print();
    std::puts("The window runs far from full on most workloads and "
              "8-wide issue cycles are rare — the slack the "
              "dependence-based organization exploits: a few FIFO "
              "heads expose enough ready instructions.");
    return 0;
}
