#!/bin/sh
# Run the micro_simspeed benchmark suite and record the results as
# JSON at the repo root (BENCH_simspeed.json), so successive commits
# can be compared with tools/compare.py from google-benchmark or
# plain jq.
#
# Usage: bench/run_bench.sh [build-dir] [extra benchmark args...]
#   bench/run_bench.sh                 # uses ./build
#   bench/run_bench.sh build-release --benchmark_filter=TimingSim
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

bin="$build_dir/bench/micro_simspeed"
if [ ! -x "$bin" ]; then
    echo "error: $bin not built (cmake --build $build_dir --target micro_simspeed)" >&2
    exit 1
fi

out="$repo_root/BENCH_simspeed.json"
"$bin" --benchmark_format=json \
       --benchmark_min_time=0.5 \
       --benchmark_out="$out" \
       --benchmark_out_format=json \
       "$@"
echo "wrote $out"
