/**
 * @file
 * Ablation: ILP limit study. Places the simulated machines against
 * the idealized dataflow schedule of each workload (unit latency,
 * perfect prediction and caches): how much of the achievable
 * parallelism does each organization capture, and how does the
 * window size gate it (Section 4.2.2's "a larger window is required
 * for finding more independent instructions")?
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "trace/analysis.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

int
main()
{
    Table t("Dataflow ILP limits vs realized IPC");
    t.header({"benchmark", "dataflow", "win=64 iw=8", "machine IPC",
              "dep-based IPC", "captured %"});
    for (const auto &w : workloads::workloadNames()) {
        trace::TraceBuffer &buf = cachedWorkloadTrace(w);
        auto unlimited = trace::dataflowSchedule(buf);
        trace::ScheduleLimits lim;
        lim.window = 64;
        lim.issue_width = 8;
        auto limited = trace::dataflowSchedule(buf, lim);
        double machine = Machine(baseline8Way()).runTrace(buf).ipc();
        double dep = Machine(dependence8x8()).runTrace(buf).ipc();
        t.row({w, cell(unlimited.ipc, 2), cell(limited.ipc, 2),
               cell(machine, 2), cell(dep, 2),
               cell(100.0 * machine / limited.ipc)});
    }
    t.print();

    Table g("Idealized IPC vs window size (issue width 8)");
    std::vector<std::string> hdr = {"benchmark"};
    for (int ws : {8, 16, 32, 64, 128, 256})
        hdr.push_back("w" + std::to_string(ws));
    g.header(hdr);
    for (const auto &w : workloads::workloadNames()) {
        trace::TraceBuffer &buf = cachedWorkloadTrace(w);
        std::vector<std::string> row = {w};
        for (int ws : {8, 16, 32, 64, 128, 256}) {
            trace::ScheduleLimits lim;
            lim.window = ws;
            lim.issue_width = 8;
            row.push_back(cell(trace::dataflowSchedule(buf, lim).ipc,
                               2));
        }
        g.row(row);
    }
    g.print();

    Table d("Dependence character (what the steering heuristic "
            "exploits)");
    d.header({"benchmark", "mean dep distance", "adjacent %",
              "independent %", "critical path"});
    for (const auto &w : workloads::workloadNames()) {
        trace::TraceBuffer &buf = cachedWorkloadTrace(w);
        auto dep = trace::analyzeDependences(buf);
        d.row({w, cell(dep.distance.mean(), 1),
               cell(100.0 * dep.adjacent_frac),
               cell(100.0 * dep.independent_frac),
               cell(dep.critical_path)});
    }
    d.print();
    std::puts("The realized IPC tracks the finite-window ideal; the "
              "residual gap is branch recovery and cache misses. "
              "High adjacent-producer fractions are what let the "
              "FIFO steering work.");
    return 0;
}
