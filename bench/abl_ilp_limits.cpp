/**
 * @file
 * Ablation: ILP limit study. Places the simulated machines against
 * the idealized dataflow schedule of each workload (unit latency,
 * perfect prediction and caches): how much of the achievable
 * parallelism does each organization capture, and how does the
 * window size gate it (Section 4.2.2's "a larger window is required
 * for finding more independent instructions")?
 *
 *   abl_ilp_limits [--json FILE]
 *
 * Every printed quantity lives in a per-workload StatGroup of
 * gauges, so --json exports the same numbers the tables print, in
 * the standard schema-versioned document.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "trace/analysis.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

namespace {

constexpr int kWindowSweep[] = {8, 16, 32, 64, 128, 256};

/** All the limit-study quantities of one workload. */
StatGroup
limitsGroup(const std::string &workload, trace::TraceBuffer &buf)
{
    auto unlimited = trace::dataflowSchedule(buf);
    trace::ScheduleLimits lim;
    lim.window = 64;
    lim.issue_width = 8;
    auto limited = trace::dataflowSchedule(buf, lim);
    double machine = Machine(baseline8Way()).runTrace(buf).ipc();
    double dep = Machine(dependence8x8()).runTrace(buf).ipc();
    auto deps = trace::analyzeDependences(buf);

    StatGroup g("ilp_limits", workload);
    g.addGauge("dataflow_ipc", "inst/cycle",
               "Unlimited dataflow-schedule IPC (unit latency, "
               "perfect prediction and caches)", unlimited.ipc);
    g.addGauge("ideal_w64_ipc", "inst/cycle",
               "Dataflow IPC limited to a 64-entry window, 8-wide",
               limited.ipc);
    g.addGauge("machine_ipc", "inst/cycle",
               "Realized IPC of the baseline window machine", machine);
    g.addGauge("dep_ipc", "inst/cycle",
               "Realized IPC of the dependence-based machine", dep);
    g.addGauge("captured_pct", "%",
               "Baseline IPC as a share of the finite-window ideal",
               100.0 * machine / limited.ipc);
    for (int ws : kWindowSweep) {
        trace::ScheduleLimits l;
        l.window = ws;
        l.issue_width = 8;
        g.addGauge("ideal_ipc_w" + std::to_string(ws), "inst/cycle",
                   "Idealized IPC with a " + std::to_string(ws) +
                       "-entry window, 8-wide",
                   trace::dataflowSchedule(buf, l).ipc);
    }
    g.addGauge("dep_distance_mean", "instructions",
               "Mean producer-consumer distance",
               deps.distance.mean());
    g.addGauge("adjacent_pct", "%",
               "Instructions whose producer is the previous "
               "instruction", 100.0 * deps.adjacent_frac);
    g.addGauge("independent_pct", "%",
               "Instructions with no in-window producer",
               100.0 * deps.independent_frac);
    g.addGauge("critical_path", "instructions",
               "Dataflow critical path length",
               static_cast<double>(deps.critical_path));
    return g;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: abl_ilp_limits [--json FILE]\n");
            return 2;
        }
    }
    const bool quiet = json_path == "-";

    std::vector<StatGroup> groups;
    for (const auto &w : workloads::workloadNames())
        groups.push_back(limitsGroup(w, cachedWorkloadTrace(w)));

    Table t("Dataflow ILP limits vs realized IPC");
    t.header({"benchmark", "dataflow", "win=64 iw=8", "machine IPC",
              "dep-based IPC", "captured %"});
    for (const StatGroup &g : groups)
        t.row({g.label(), cell(g.value("dataflow_ipc"), 2),
               cell(g.value("ideal_w64_ipc"), 2),
               cell(g.value("machine_ipc"), 2),
               cell(g.value("dep_ipc"), 2),
               cell(g.value("captured_pct"))});

    Table win("Idealized IPC vs window size (issue width 8)");
    std::vector<std::string> hdr = {"benchmark"};
    for (int ws : kWindowSweep)
        hdr.push_back("w" + std::to_string(ws));
    win.header(hdr);
    for (const StatGroup &g : groups) {
        std::vector<std::string> row = {g.label()};
        for (int ws : kWindowSweep)
            row.push_back(
                cell(g.value("ideal_ipc_w" + std::to_string(ws)), 2));
        win.row(row);
    }

    Table d("Dependence character (what the steering heuristic "
            "exploits)");
    d.header({"benchmark", "mean dep distance", "adjacent %",
              "independent %", "critical path"});
    for (const StatGroup &g : groups)
        d.row({g.label(), cell(g.value("dep_distance_mean"), 1),
               cell(g.value("adjacent_pct")),
               cell(g.value("independent_pct")),
               cell(g.value("critical_path"), 0)});

    if (!quiet) {
        t.print();
        win.print();
        d.print();
        std::puts("The realized IPC tracks the finite-window ideal; "
                  "the residual gap is branch recovery and cache "
                  "misses. High adjacent-producer fractions are what "
                  "let the FIFO steering work.");
    }
    if (!json_path.empty()) {
        std::string err;
        if (!writeTextOutput(json_path, statGroupListJson(groups, {}),
                             &err))
            fatal("%s", err.c_str());
    }
    return 0;
}
