/**
 * @file
 * Ablation: FIFO pool geometry for the dependence-based machine. The
 * paper picks eight 8-entry FIFOs for the 8-way machine; this sweep
 * shows how IPC responds to the number of FIFOs (parallel-chain
 * capacity) and their depth (chain length capacity), supporting that
 * choice.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

namespace {

double
meanIpc(const uarch::SimConfig &cfg)
{
    Machine m(cfg);
    uint64_t instrs = 0, cycles = 0;
    for (const auto &w : workloads::allWorkloads()) {
        auto s = m.runWorkload(w.name);
        instrs += s.committed();
        cycles += s.cycles();
    }
    return static_cast<double>(instrs) / static_cast<double>(cycles);
}

} // namespace

int
main()
{
    const int fifo_counts[] = {4, 6, 8, 12, 16};
    const int depths[] = {2, 4, 8, 16};

    Table t("FIFO geometry sweep: mean IPC over all workloads "
            "(8-way dependence-based, 1 cluster)");
    std::vector<std::string> hdr = {"fifos \\ depth"};
    for (int d : depths)
        hdr.push_back(std::to_string(d));
    t.header(hdr);

    double base_ipc = 0.0;
    for (int f : fifo_counts) {
        std::vector<std::string> row = {std::to_string(f)};
        for (int d : depths) {
            uarch::SimConfig cfg = dependence8x8();
            cfg.name = "fifo" + std::to_string(f) + "x" +
                std::to_string(d);
            cfg.fifos_per_cluster = f;
            cfg.fifo_depth = d;
            double ipc = meanIpc(cfg);
            if (f == 8 && d == 8)
                base_ipc = ipc;
            row.push_back(cell(ipc, 3));
        }
        t.row(row);
    }
    t.print();

    double window_ipc = meanIpc(baseline8Way());
    std::printf("paper's 8x8 point: %.3f IPC = %.1f%% of the 64-entry "
                "window machine (%.3f)\n", base_ipc,
                100.0 * base_ipc / window_ipc, window_ipc);
    std::puts("More FIFOs buy parallel-chain capacity; depth beyond "
              "~8 buys little (chains longer than the window's reach "
              "serialize anyway).");
    return 0;
}
