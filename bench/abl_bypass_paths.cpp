/**
 * @file
 * Ablation (Section 4.5, after Ahuja et al.): the cost of incomplete
 * bypassing. Removing same-cycle bypass paths delays even local
 * consumers by one or more cycles; the paper argues the bypass is an
 * atomic operation for exactly this reason, and that wide machines
 * must cluster rather than slow the local bypass.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

int
main()
{
    Table t("Incomplete-bypass ablation: IPC vs extra local result "
            "latency (8-way window)");
    t.header({"benchmark", "full bypass (+0)", "+1 cycle", "+2 cycles",
              "loss at +1 %"});
    double sum0 = 0, sum1 = 0;
    int n = 0;
    for (const auto &w : workloads::allWorkloads()) {
        double ipc[3];
        for (int extra = 0; extra <= 2; ++extra) {
            uarch::SimConfig cfg = baseline8Way();
            cfg.name = "bp" + std::to_string(extra);
            cfg.local_bypass_extra = extra;
            ipc[extra] = Machine(cfg).runWorkload(w.name).ipc();
        }
        sum0 += ipc[0];
        sum1 += ipc[1];
        ++n;
        t.row({w.name, cell(ipc[0], 3), cell(ipc[1], 3),
               cell(ipc[2], 3),
               cell(100.0 * (1.0 - ipc[1] / ipc[0]))});
    }
    t.print();
    std::printf("mean IPC loss from +1 cycle of local result latency: "
                "%.1f%%\n", 100.0 * (1.0 - (sum1 / n) / (sum0 / n)));
    std::puts("Compare: the clustered dependence-based machine pays "
              "this only on *inter-cluster* values (Figures 15/17), "
              "not on every dependence.");
    return 0;
}
