/**
 * @file
 * Ablation (Section 5.4's outlook): scaling the dependence-based
 * clustering to a 16-wide machine. A monolithic 16-way, 128-entry
 * window is hopeless on the clock side (wakeup+select and bypass
 * both blow up); four 4-way clusters keep the per-cluster structures
 * at the sweet spot while steering limits inter-cluster traffic.
 *
 *   abl_cluster_scaling [--json FILE]
 *
 * Per-machine aggregates come from core::mergedStats over the
 * workload runs — the merged registry's derived IPC is total
 * committed over total cycles (instruction-weighted, the same
 * aggregate every other harness reports) — with the delay-model
 * clock and BIPS attached as gauges. --json exports those merged
 * groups.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "core/sweep.hpp"
#include "vlsi/clock.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: abl_cluster_scaling [--json FILE]\n");
            return 2;
        }
    }
    const bool quiet = json_path == "-";

    struct Point
    {
        const char *label;
        uarch::SimConfig cfg;
        vlsi::ClockConfig clock;
    };

    vlsi::ClockConfig win8;
    win8.issue_width = 8;
    win8.window_size = 64;
    vlsi::ClockConfig win16;
    win16.issue_width = 16;
    win16.window_size = 128;
    vlsi::ClockConfig dep16;
    dep16.org = vlsi::IssueOrganization::DependenceFifos;
    dep16.issue_width = 16;
    dep16.num_clusters = 4;
    dep16.fifos_per_cluster = 4;

    std::vector<Point> points = {
        {"8-way window", baseline8Way(), win8},
        {"16-way window", baseline16Way(), win16},
        {"16-way 4x4 dep-based", clusteredDependence4x4(), dep16},
    };

    vlsi::ClockEstimator est(vlsi::Process::um0_18);

    Table t("Scaling to 16 wide (0.18um)");
    t.header({"machine", "mean IPC", "critical stage", "clock ps",
              "clock MHz", "BIPS", "x-cluster %"});
    std::vector<StatGroup> merged;
    for (auto &p : points) {
        Machine m(p.cfg);
        std::vector<uarch::SimStats> stats;
        for (const auto &w : workloads::allWorkloads())
            stats.push_back(m.runWorkload(w.name));
        StatGroup agg = mergedStats(stats);
        agg.label() = p.label;

        double ipc = agg.value("ipc");
        vlsi::StageDelays d = est.delays(p.clock);
        agg.addGauge("clock_mhz", "MHz",
                     "delay-model clock estimate for this "
                     "organization", d.clockMhz());
        agg.addGauge("bips", "BIPS",
                     "billions of instructions per second: IPC times "
                     "the clock estimate",
                     ipc * d.clockMhz() / 1000.0);

        t.row({p.label, cell(ipc, 3), d.criticalStage(),
               cell(d.criticalPs()),
               cell(d.clockMhz(), 0),
               cell(agg.value("bips"), 2),
               cell(agg.value("intercluster_pct"))});
        merged.push_back(std::move(agg));
    }
    if (!quiet) {
        t.print();
        std::puts("The 16-way window machine gains little IPC and "
                  "loses the clock to its bypass wires; the 4x4 "
                  "dependence-based machine delivers the width at a "
                  "4-way cluster's clock (the paper's 'machines with "
                  "issue widths greater than four' argument).");
    }
    if (!json_path.empty()) {
        std::string err;
        if (!writeTextOutput(json_path, statGroupListJson(merged, {}),
                             &err))
            fatal("%s", err.c_str());
    }
    return 0;
}
