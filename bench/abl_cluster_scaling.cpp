/**
 * @file
 * Ablation (Section 5.4's outlook): scaling the dependence-based
 * clustering to a 16-wide machine. A monolithic 16-way, 128-entry
 * window is hopeless on the clock side (wakeup+select and bypass
 * both blow up); four 4-way clusters keep the per-cluster structures
 * at the sweet spot while steering limits inter-cluster traffic.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "vlsi/clock.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

int
main()
{
    struct Point
    {
        const char *label;
        uarch::SimConfig cfg;
        vlsi::ClockConfig clock;
    };

    vlsi::ClockConfig win8;
    win8.issue_width = 8;
    win8.window_size = 64;
    vlsi::ClockConfig win16;
    win16.issue_width = 16;
    win16.window_size = 128;
    vlsi::ClockConfig dep16;
    dep16.org = vlsi::IssueOrganization::DependenceFifos;
    dep16.issue_width = 16;
    dep16.num_clusters = 4;
    dep16.fifos_per_cluster = 4;

    std::vector<Point> points = {
        {"8-way window", baseline8Way(), win8},
        {"16-way window", baseline16Way(), win16},
        {"16-way 4x4 dep-based", clusteredDependence4x4(), dep16},
    };

    vlsi::ClockEstimator est(vlsi::Process::um0_18);

    Table t("Scaling to 16 wide (0.18um)");
    t.header({"machine", "mean IPC", "critical stage", "clock ps",
              "clock MHz", "BIPS", "x-cluster %"});
    for (auto &p : points) {
        Machine m(p.cfg);
        uint64_t instrs = 0, cycles = 0;
        double bypass_sum = 0.0;
        int n = 0;
        for (const auto &w : workloads::allWorkloads()) {
            auto s = m.runWorkload(w.name);
            instrs += s.committed();
            cycles += s.cycles();
            bypass_sum += s.interClusterPct();
            ++n;
        }
        double ipc = static_cast<double>(instrs) /
            static_cast<double>(cycles);
        vlsi::StageDelays d = est.delays(p.clock);
        t.row({p.label, cell(ipc, 3), d.criticalStage(),
               cell(d.criticalPs()),
               cell(d.clockMhz(), 0),
               cell(ipc * d.clockMhz() / 1000.0, 2),
               cell(bypass_sum / n)});
    }
    t.print();
    std::puts("The 16-way window machine gains little IPC and loses "
              "the clock to its bypass wires; the 4x4 dependence-"
              "based machine delivers the width at a 4-way cluster's "
              "clock (the paper's 'machines with issue widths greater "
              "than four' argument).");
    return 0;
}
