/**
 * @file
 * Figure 13: IPC of the dependence-based microarchitecture (eight
 * 8-entry FIFOs) versus the baseline 8-way machine with a 64-entry
 * issue window, across the seven benchmark workloads. The paper
 * reports the dependence-based machine within 5% for five of seven
 * benchmarks with a worst case of 8% (li).
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else
            fatal("usage: %s [--json FILE]", argv[0]);
    }

    Machine base(baseline8Way());
    Machine dep(dependence8x8());

    Table t("Figure 13: IPC, baseline window vs dependence-based "
            "FIFOs (8-way)");
    t.header({"benchmark", "baseline IPC", "dep-based IPC",
              "degradation %"});
    std::vector<StatGroup> runs;
    StatGroup fig("cesp.fig13",
                  "IPC degradation, dep-based FIFOs vs window");
    double worst = 0.0, sum = 0.0;
    int n = 0;
    for (const auto &w : workloads::allWorkloads()) {
        auto sb = base.runWorkload(w.name);
        auto sd = dep.runWorkload(w.name);
        double deg = 100.0 * (1.0 - sd.ipc() / sb.ipc());
        worst = std::max(worst, deg);
        sum += deg;
        ++n;
        t.row({w.name, cell(sb.ipc(), 3), cell(sd.ipc(), 3),
               cell(deg)});
        if (!json_path.empty()) {
            StatGroup gb = sb.group();
            gb.label() = "baseline / " + w.name;
            runs.push_back(std::move(gb));
            StatGroup gd = sd.group();
            gd.label() = "dep8x8 / " + w.name;
            runs.push_back(std::move(gd));
            fig.addGauge(w.name + ".degradation_pct", "%",
                         "IPC loss of the dependence-based machine",
                         deg);
        }
    }
    t.print();
    std::printf("mean degradation %.1f%%, max %.1f%% "
                "(paper: within 5%% for 5 of 7, max 8%% on li)\n",
                sum / n, worst);
    if (!json_path.empty()) {
        fig.addGauge("mean_degradation_pct", "%",
                     "arithmetic mean over workloads", sum / n);
        fig.addGauge("max_degradation_pct", "%",
                     "worst workload", worst);
        std::string err;
        if (!writeTextOutput(json_path,
                             statGroupListJson(runs, {fig}), &err))
            fatal("%s", err.c_str());
    }
    return 0;
}
