/**
 * @file
 * Figure 13: IPC of the dependence-based microarchitecture (eight
 * 8-entry FIFOs) versus the baseline 8-way machine with a 64-entry
 * issue window, across the seven benchmark workloads. The paper
 * reports the dependence-based machine within 5% for five of seven
 * benchmarks with a worst case of 8% (li).
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

int
main()
{
    Machine base(baseline8Way());
    Machine dep(dependence8x8());

    Table t("Figure 13: IPC, baseline window vs dependence-based "
            "FIFOs (8-way)");
    t.header({"benchmark", "baseline IPC", "dep-based IPC",
              "degradation %"});
    double worst = 0.0, sum = 0.0;
    int n = 0;
    for (const auto &w : workloads::allWorkloads()) {
        auto sb = base.runWorkload(w.name);
        auto sd = dep.runWorkload(w.name);
        double deg = 100.0 * (1.0 - sd.ipc() / sb.ipc());
        worst = std::max(worst, deg);
        sum += deg;
        ++n;
        t.row({w.name, cell(sb.ipc(), 3), cell(sd.ipc(), 3),
               cell(deg)});
    }
    t.print();
    std::printf("mean degradation %.1f%%, max %.1f%% "
                "(paper: within 5%% for 5 of 7, max 8%% on li)\n",
                sum / n, worst);
    return 0;
}
