/**
 * @file
 * Figure 15: IPC of the clustered dependence-based microarchitecture
 * (2x4-way, 1-cycle local / 2-cycle inter-cluster bypass) versus the
 * conventional 8-way, 64-entry-window machine with uniform 1-cycle
 * bypass. The paper reports degradations near 12% (m88ksim) and 9%
 * (compress), attributed to the slow inter-cluster bypasses, and an
 * average IPC degradation of 6.3%.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else
            fatal("usage: %s [--json FILE]", argv[0]);
    }

    Machine base(baseline8Way());
    Machine dep(clusteredDependence2x4());

    Table t("Figure 15: IPC, 64-entry window 8-way vs 2-cluster "
            "dependence-based 8-way");
    t.header({"benchmark", "window IPC", "2x4 dep IPC",
              "degradation %", "inter-cluster bypass %"});
    std::vector<StatGroup> runs;
    StatGroup fig("cesp.fig15",
                  "clustered dependence-based vs ideal window");
    double sum = 0.0;
    int n = 0;
    for (const auto &w : workloads::allWorkloads()) {
        auto sb = base.runWorkload(w.name);
        auto sd = dep.runWorkload(w.name);
        double deg = 100.0 * (1.0 - sd.ipc() / sb.ipc());
        sum += deg;
        ++n;
        t.row({w.name, cell(sb.ipc(), 3), cell(sd.ipc(), 3),
               cell(deg), cell(sd.interClusterPct())});
        if (!json_path.empty()) {
            StatGroup gb = sb.group();
            gb.label() = "baseline / " + w.name;
            runs.push_back(std::move(gb));
            StatGroup gd = sd.group();
            gd.label() = "clustered2x4 / " + w.name;
            runs.push_back(std::move(gd));
            fig.addGauge(w.name + ".degradation_pct", "%",
                         "IPC loss of the clustered machine", deg);
            fig.addGauge(w.name + ".intercluster_pct", "%",
                         "instructions bypassing between clusters",
                         sd.interClusterPct());
        }
    }
    t.print();
    std::printf("mean IPC degradation %.1f%% (paper: 6.3%% average; "
                "worst cases m88ksim ~12%%, compress ~9%%)\n",
                sum / n);
    if (!json_path.empty()) {
        fig.addGauge("mean_degradation_pct", "%",
                     "arithmetic mean over workloads", sum / n);
        std::string err;
        if (!writeTextOutput(json_path,
                             statGroupListJson(runs, {fig}), &err))
            fatal("%s", err.c_str());
    }
    return 0;
}
