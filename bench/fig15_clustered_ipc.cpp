/**
 * @file
 * Figure 15: IPC of the clustered dependence-based microarchitecture
 * (2x4-way, 1-cycle local / 2-cycle inter-cluster bypass) versus the
 * conventional 8-way, 64-entry-window machine with uniform 1-cycle
 * bypass. The paper reports degradations near 12% (m88ksim) and 9%
 * (compress), attributed to the slow inter-cluster bypasses, and an
 * average IPC degradation of 6.3%.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

int
main()
{
    Machine base(baseline8Way());
    Machine dep(clusteredDependence2x4());

    Table t("Figure 15: IPC, 64-entry window 8-way vs 2-cluster "
            "dependence-based 8-way");
    t.header({"benchmark", "window IPC", "2x4 dep IPC",
              "degradation %", "inter-cluster bypass %"});
    double sum = 0.0;
    int n = 0;
    for (const auto &w : workloads::allWorkloads()) {
        auto sb = base.runWorkload(w.name);
        auto sd = dep.runWorkload(w.name);
        double deg = 100.0 * (1.0 - sd.ipc() / sb.ipc());
        sum += deg;
        ++n;
        t.row({w.name, cell(sb.ipc(), 3), cell(sd.ipc(), 3),
               cell(deg), cell(sd.interClusterPct())});
    }
    t.print();
    std::printf("mean IPC degradation %.1f%% (paper: 6.3%% average; "
                "worst cases m88ksim ~12%%, compress ~9%%)\n",
                sum / n);
    return 0;
}
