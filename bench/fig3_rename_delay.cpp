/**
 * @file
 * Figure 3: register rename delay versus issue width, with the
 * decoder / wordline / bitline / sense-amplifier breakdown, for
 * 0.8, 0.35, and 0.18 um technologies.
 */

#include <cstdio>

#include "common/table.hpp"
#include "vlsi/rename_delay.hpp"

using namespace cesp;
using namespace cesp::vlsi;

int
main()
{
    Table t("Figure 3: rename delay vs issue width (ps)");
    t.header({"tech", "issue", "decoder", "wordline", "bitline",
              "senseamp", "total"});
    for (Process p : allProcesses()) {
        RenameDelayModel model(p);
        for (int iw : {2, 4, 8}) {
            RenameDelay d = model.delay(iw);
            t.row({technology(p).name, cell(iw), cell(d.decode),
                   cell(d.wordline), cell(d.bitline),
                   cell(d.senseamp), cell(d.total())});
        }
    }
    t.print();

    // The scaling trend called out in Section 4.1.3: the bitline
    // delay increase from 2- to 8-wide worsens as features shrink.
    Table g("Bitline delay increase, 2-way -> 8-way (paper: 37% at "
            "0.8um rising to 53% at 0.18um)");
    g.header({"tech", "bitline(2)", "bitline(8)", "increase%"});
    for (Process p : allProcesses()) {
        RenameDelayModel model(p);
        double b2 = model.delay(2).bitline;
        double b8 = model.delay(8).bitline;
        g.row({technology(p).name, cell(b2), cell(b8),
               cell(100.0 * (b8 - b2) / b2)});
    }
    g.print();
    return 0;
}
