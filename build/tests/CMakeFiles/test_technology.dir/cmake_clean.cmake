file(REMOVE_RECURSE
  "CMakeFiles/test_technology.dir/test_technology.cpp.o"
  "CMakeFiles/test_technology.dir/test_technology.cpp.o.d"
  "test_technology"
  "test_technology.pdb"
  "test_technology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_technology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
