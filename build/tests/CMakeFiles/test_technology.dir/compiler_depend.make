# Empty compiler generated dependencies file for test_technology.
# This may be replaced when dependencies are built.
