# Empty compiler generated dependencies file for test_emulator.
# This may be replaced when dependencies are built.
