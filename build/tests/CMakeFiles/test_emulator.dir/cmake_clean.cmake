file(REMOVE_RECURSE
  "CMakeFiles/test_emulator.dir/test_emulator.cpp.o"
  "CMakeFiles/test_emulator.dir/test_emulator.cpp.o.d"
  "test_emulator"
  "test_emulator.pdb"
  "test_emulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
