file(REMOVE_RECURSE
  "CMakeFiles/test_interpolate.dir/test_interpolate.cpp.o"
  "CMakeFiles/test_interpolate.dir/test_interpolate.cpp.o.d"
  "test_interpolate"
  "test_interpolate.pdb"
  "test_interpolate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interpolate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
