# Empty compiler generated dependencies file for test_interpolate.
# This may be replaced when dependencies are built.
