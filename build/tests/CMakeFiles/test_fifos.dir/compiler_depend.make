# Empty compiler generated dependencies file for test_fifos.
# This may be replaced when dependencies are built.
