file(REMOVE_RECURSE
  "CMakeFiles/test_fifos.dir/test_fifos.cpp.o"
  "CMakeFiles/test_fifos.dir/test_fifos.cpp.o.d"
  "test_fifos"
  "test_fifos.pdb"
  "test_fifos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fifos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
