# Empty dependencies file for test_memory_hierarchy.
# This may be replaced when dependencies are built.
