file(REMOVE_RECURSE
  "CMakeFiles/test_memory_hierarchy.dir/test_memory_hierarchy.cpp.o"
  "CMakeFiles/test_memory_hierarchy.dir/test_memory_hierarchy.cpp.o.d"
  "test_memory_hierarchy"
  "test_memory_hierarchy.pdb"
  "test_memory_hierarchy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
