file(REMOVE_RECURSE
  "CMakeFiles/test_delay_models.dir/test_delay_models.cpp.o"
  "CMakeFiles/test_delay_models.dir/test_delay_models.cpp.o.d"
  "test_delay_models"
  "test_delay_models.pdb"
  "test_delay_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delay_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
