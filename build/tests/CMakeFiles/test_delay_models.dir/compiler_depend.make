# Empty compiler generated dependencies file for test_delay_models.
# This may be replaced when dependencies are built.
