# Empty compiler generated dependencies file for test_window_lsq.
# This may be replaced when dependencies are built.
