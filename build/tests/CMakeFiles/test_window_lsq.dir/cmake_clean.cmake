file(REMOVE_RECURSE
  "CMakeFiles/test_window_lsq.dir/test_window_lsq.cpp.o"
  "CMakeFiles/test_window_lsq.dir/test_window_lsq.cpp.o.d"
  "test_window_lsq"
  "test_window_lsq.pdb"
  "test_window_lsq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_window_lsq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
