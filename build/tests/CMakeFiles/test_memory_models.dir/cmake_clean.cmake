file(REMOVE_RECURSE
  "CMakeFiles/test_memory_models.dir/test_memory_models.cpp.o"
  "CMakeFiles/test_memory_models.dir/test_memory_models.cpp.o.d"
  "test_memory_models"
  "test_memory_models.pdb"
  "test_memory_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
