# Empty compiler generated dependencies file for test_pipeline_prop.
# This may be replaced when dependencies are built.
