file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_prop.dir/test_pipeline_prop.cpp.o"
  "CMakeFiles/test_pipeline_prop.dir/test_pipeline_prop.cpp.o.d"
  "test_pipeline_prop"
  "test_pipeline_prop.pdb"
  "test_pipeline_prop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_prop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
