# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_interpolate[1]_include.cmake")
include("/root/repo/build/tests/test_technology[1]_include.cmake")
include("/root/repo/build/tests/test_delay_models[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_emulator[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_bpred[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_rename[1]_include.cmake")
include("/root/repo/build/tests/test_fifos[1]_include.cmake")
include("/root/repo/build/tests/test_window_lsq[1]_include.cmake")
include("/root/repo/build/tests/test_steering[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_memory_models[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_prop[1]_include.cmake")
include("/root/repo/build/tests/test_memory_hierarchy[1]_include.cmake")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
