# Empty compiler generated dependencies file for cesp.
# This may be replaced when dependencies are built.
