
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asm/assembler.cpp" "src/CMakeFiles/cesp.dir/asm/assembler.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/asm/assembler.cpp.o.d"
  "/root/repo/src/bpred/bpred.cpp" "src/CMakeFiles/cesp.dir/bpred/bpred.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/bpred/bpred.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/cesp.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/cesp.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/cesp.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/common/table.cpp.o.d"
  "/root/repo/src/core/machine.cpp" "src/CMakeFiles/cesp.dir/core/machine.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/core/machine.cpp.o.d"
  "/root/repo/src/core/presets.cpp" "src/CMakeFiles/cesp.dir/core/presets.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/core/presets.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/cesp.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/core/report.cpp.o.d"
  "/root/repo/src/func/emulator.cpp" "src/CMakeFiles/cesp.dir/func/emulator.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/func/emulator.cpp.o.d"
  "/root/repo/src/func/memory.cpp" "src/CMakeFiles/cesp.dir/func/memory.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/func/memory.cpp.o.d"
  "/root/repo/src/isa/decode.cpp" "src/CMakeFiles/cesp.dir/isa/decode.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/isa/decode.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/CMakeFiles/cesp.dir/isa/disasm.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/isa/disasm.cpp.o.d"
  "/root/repo/src/isa/isa.cpp" "src/CMakeFiles/cesp.dir/isa/isa.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/isa/isa.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/cesp.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/mem/cache.cpp.o.d"
  "/root/repo/src/trace/analysis.cpp" "src/CMakeFiles/cesp.dir/trace/analysis.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/trace/analysis.cpp.o.d"
  "/root/repo/src/trace/synthetic.cpp" "src/CMakeFiles/cesp.dir/trace/synthetic.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/trace/synthetic.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/cesp.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/trace/trace.cpp.o.d"
  "/root/repo/src/trace/tracefile.cpp" "src/CMakeFiles/cesp.dir/trace/tracefile.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/trace/tracefile.cpp.o.d"
  "/root/repo/src/uarch/config.cpp" "src/CMakeFiles/cesp.dir/uarch/config.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/uarch/config.cpp.o.d"
  "/root/repo/src/uarch/fifos.cpp" "src/CMakeFiles/cesp.dir/uarch/fifos.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/uarch/fifos.cpp.o.d"
  "/root/repo/src/uarch/lsq.cpp" "src/CMakeFiles/cesp.dir/uarch/lsq.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/uarch/lsq.cpp.o.d"
  "/root/repo/src/uarch/pipeline.cpp" "src/CMakeFiles/cesp.dir/uarch/pipeline.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/uarch/pipeline.cpp.o.d"
  "/root/repo/src/uarch/rename.cpp" "src/CMakeFiles/cesp.dir/uarch/rename.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/uarch/rename.cpp.o.d"
  "/root/repo/src/uarch/steering.cpp" "src/CMakeFiles/cesp.dir/uarch/steering.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/uarch/steering.cpp.o.d"
  "/root/repo/src/uarch/window.cpp" "src/CMakeFiles/cesp.dir/uarch/window.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/uarch/window.cpp.o.d"
  "/root/repo/src/vlsi/area.cpp" "src/CMakeFiles/cesp.dir/vlsi/area.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/vlsi/area.cpp.o.d"
  "/root/repo/src/vlsi/bypass_delay.cpp" "src/CMakeFiles/cesp.dir/vlsi/bypass_delay.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/vlsi/bypass_delay.cpp.o.d"
  "/root/repo/src/vlsi/cache_delay.cpp" "src/CMakeFiles/cesp.dir/vlsi/cache_delay.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/vlsi/cache_delay.cpp.o.d"
  "/root/repo/src/vlsi/clock.cpp" "src/CMakeFiles/cesp.dir/vlsi/clock.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/vlsi/clock.cpp.o.d"
  "/root/repo/src/vlsi/interpolate.cpp" "src/CMakeFiles/cesp.dir/vlsi/interpolate.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/vlsi/interpolate.cpp.o.d"
  "/root/repo/src/vlsi/regfile_delay.cpp" "src/CMakeFiles/cesp.dir/vlsi/regfile_delay.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/vlsi/regfile_delay.cpp.o.d"
  "/root/repo/src/vlsi/rename_cam.cpp" "src/CMakeFiles/cesp.dir/vlsi/rename_cam.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/vlsi/rename_cam.cpp.o.d"
  "/root/repo/src/vlsi/rename_delay.cpp" "src/CMakeFiles/cesp.dir/vlsi/rename_delay.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/vlsi/rename_delay.cpp.o.d"
  "/root/repo/src/vlsi/reservation_delay.cpp" "src/CMakeFiles/cesp.dir/vlsi/reservation_delay.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/vlsi/reservation_delay.cpp.o.d"
  "/root/repo/src/vlsi/select_delay.cpp" "src/CMakeFiles/cesp.dir/vlsi/select_delay.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/vlsi/select_delay.cpp.o.d"
  "/root/repo/src/vlsi/technology.cpp" "src/CMakeFiles/cesp.dir/vlsi/technology.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/vlsi/technology.cpp.o.d"
  "/root/repo/src/vlsi/wakeup_delay.cpp" "src/CMakeFiles/cesp.dir/vlsi/wakeup_delay.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/vlsi/wakeup_delay.cpp.o.d"
  "/root/repo/src/workloads/compress.cpp" "src/CMakeFiles/cesp.dir/workloads/compress.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/workloads/compress.cpp.o.d"
  "/root/repo/src/workloads/gcc.cpp" "src/CMakeFiles/cesp.dir/workloads/gcc.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/workloads/gcc.cpp.o.d"
  "/root/repo/src/workloads/go.cpp" "src/CMakeFiles/cesp.dir/workloads/go.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/workloads/go.cpp.o.d"
  "/root/repo/src/workloads/ijpeg.cpp" "src/CMakeFiles/cesp.dir/workloads/ijpeg.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/workloads/ijpeg.cpp.o.d"
  "/root/repo/src/workloads/li.cpp" "src/CMakeFiles/cesp.dir/workloads/li.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/workloads/li.cpp.o.d"
  "/root/repo/src/workloads/m88ksim.cpp" "src/CMakeFiles/cesp.dir/workloads/m88ksim.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/workloads/m88ksim.cpp.o.d"
  "/root/repo/src/workloads/perl.cpp" "src/CMakeFiles/cesp.dir/workloads/perl.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/workloads/perl.cpp.o.d"
  "/root/repo/src/workloads/tomcatv.cpp" "src/CMakeFiles/cesp.dir/workloads/tomcatv.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/workloads/tomcatv.cpp.o.d"
  "/root/repo/src/workloads/vortex.cpp" "src/CMakeFiles/cesp.dir/workloads/vortex.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/workloads/vortex.cpp.o.d"
  "/root/repo/src/workloads/workloads.cpp" "src/CMakeFiles/cesp.dir/workloads/workloads.cpp.o" "gcc" "src/CMakeFiles/cesp.dir/workloads/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
