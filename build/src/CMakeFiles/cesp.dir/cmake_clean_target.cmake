file(REMOVE_RECURSE
  "libcesp.a"
)
