# Empty compiler generated dependencies file for steering_lab.
# This may be replaced when dependencies are built.
