file(REMOVE_RECURSE
  "CMakeFiles/steering_lab.dir/steering_lab.cpp.o"
  "CMakeFiles/steering_lab.dir/steering_lab.cpp.o.d"
  "steering_lab"
  "steering_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steering_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
