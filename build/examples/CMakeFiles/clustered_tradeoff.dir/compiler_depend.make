# Empty compiler generated dependencies file for clustered_tradeoff.
# This may be replaced when dependencies are built.
