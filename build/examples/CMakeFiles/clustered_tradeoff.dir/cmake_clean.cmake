file(REMOVE_RECURSE
  "CMakeFiles/clustered_tradeoff.dir/clustered_tradeoff.cpp.o"
  "CMakeFiles/clustered_tradeoff.dir/clustered_tradeoff.cpp.o.d"
  "clustered_tradeoff"
  "clustered_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustered_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
