file(REMOVE_RECURSE
  "CMakeFiles/complexity_report.dir/complexity_report.cpp.o"
  "CMakeFiles/complexity_report.dir/complexity_report.cpp.o.d"
  "complexity_report"
  "complexity_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complexity_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
