# Empty compiler generated dependencies file for complexity_report.
# This may be replaced when dependencies are built.
