# Empty dependencies file for abl_bypass_paths.
# This may be replaced when dependencies are built.
