file(REMOVE_RECURSE
  "../bench/abl_bypass_paths"
  "../bench/abl_bypass_paths.pdb"
  "CMakeFiles/abl_bypass_paths.dir/abl_bypass_paths.cpp.o"
  "CMakeFiles/abl_bypass_paths.dir/abl_bypass_paths.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bypass_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
