file(REMOVE_RECURSE
  "../bench/fig3_rename_delay"
  "../bench/fig3_rename_delay.pdb"
  "CMakeFiles/fig3_rename_delay.dir/fig3_rename_delay.cpp.o"
  "CMakeFiles/fig3_rename_delay.dir/fig3_rename_delay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_rename_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
