# Empty compiler generated dependencies file for fig3_rename_delay.
# This may be replaced when dependencies are built.
