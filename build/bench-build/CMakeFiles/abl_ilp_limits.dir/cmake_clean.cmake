file(REMOVE_RECURSE
  "../bench/abl_ilp_limits"
  "../bench/abl_ilp_limits.pdb"
  "CMakeFiles/abl_ilp_limits.dir/abl_ilp_limits.cpp.o"
  "CMakeFiles/abl_ilp_limits.dir/abl_ilp_limits.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ilp_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
