# Empty dependencies file for abl_ilp_limits.
# This may be replaced when dependencies are built.
