file(REMOVE_RECURSE
  "../bench/abl_rename_cam"
  "../bench/abl_rename_cam.pdb"
  "CMakeFiles/abl_rename_cam.dir/abl_rename_cam.cpp.o"
  "CMakeFiles/abl_rename_cam.dir/abl_rename_cam.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rename_cam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
