# Empty dependencies file for abl_rename_cam.
# This may be replaced when dependencies are built.
