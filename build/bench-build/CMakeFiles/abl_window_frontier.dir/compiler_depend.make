# Empty compiler generated dependencies file for abl_window_frontier.
# This may be replaced when dependencies are built.
