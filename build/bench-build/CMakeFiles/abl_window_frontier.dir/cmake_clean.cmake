file(REMOVE_RECURSE
  "../bench/abl_window_frontier"
  "../bench/abl_window_frontier.pdb"
  "CMakeFiles/abl_window_frontier.dir/abl_window_frontier.cpp.o"
  "CMakeFiles/abl_window_frontier.dir/abl_window_frontier.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_window_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
