# Empty dependencies file for abl_regfile_cache.
# This may be replaced when dependencies are built.
