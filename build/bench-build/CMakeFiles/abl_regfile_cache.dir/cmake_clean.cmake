file(REMOVE_RECURSE
  "../bench/abl_regfile_cache"
  "../bench/abl_regfile_cache.pdb"
  "CMakeFiles/abl_regfile_cache.dir/abl_regfile_cache.cpp.o"
  "CMakeFiles/abl_regfile_cache.dir/abl_regfile_cache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_regfile_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
