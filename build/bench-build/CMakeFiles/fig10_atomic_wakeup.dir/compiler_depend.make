# Empty compiler generated dependencies file for fig10_atomic_wakeup.
# This may be replaced when dependencies are built.
