file(REMOVE_RECURSE
  "../bench/fig10_atomic_wakeup"
  "../bench/fig10_atomic_wakeup.pdb"
  "CMakeFiles/fig10_atomic_wakeup.dir/fig10_atomic_wakeup.cpp.o"
  "CMakeFiles/fig10_atomic_wakeup.dir/fig10_atomic_wakeup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_atomic_wakeup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
