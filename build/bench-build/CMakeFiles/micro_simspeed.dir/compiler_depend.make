# Empty compiler generated dependencies file for micro_simspeed.
# This may be replaced when dependencies are built.
