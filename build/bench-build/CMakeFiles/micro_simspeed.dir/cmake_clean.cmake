file(REMOVE_RECURSE
  "../bench/micro_simspeed"
  "../bench/micro_simspeed.pdb"
  "CMakeFiles/micro_simspeed.dir/micro_simspeed.cpp.o"
  "CMakeFiles/micro_simspeed.dir/micro_simspeed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_simspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
