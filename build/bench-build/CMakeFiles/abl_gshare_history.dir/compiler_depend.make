# Empty compiler generated dependencies file for abl_gshare_history.
# This may be replaced when dependencies are built.
