file(REMOVE_RECURSE
  "../bench/abl_gshare_history"
  "../bench/abl_gshare_history.pdb"
  "CMakeFiles/abl_gshare_history.dir/abl_gshare_history.cpp.o"
  "CMakeFiles/abl_gshare_history.dir/abl_gshare_history.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gshare_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
