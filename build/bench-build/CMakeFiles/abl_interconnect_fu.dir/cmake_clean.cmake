file(REMOVE_RECURSE
  "../bench/abl_interconnect_fu"
  "../bench/abl_interconnect_fu.pdb"
  "CMakeFiles/abl_interconnect_fu.dir/abl_interconnect_fu.cpp.o"
  "CMakeFiles/abl_interconnect_fu.dir/abl_interconnect_fu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_interconnect_fu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
