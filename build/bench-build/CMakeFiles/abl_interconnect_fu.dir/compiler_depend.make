# Empty compiler generated dependencies file for abl_interconnect_fu.
# This may be replaced when dependencies are built.
