file(REMOVE_RECURSE
  "../bench/abl_brainiacs"
  "../bench/abl_brainiacs.pdb"
  "CMakeFiles/abl_brainiacs.dir/abl_brainiacs.cpp.o"
  "CMakeFiles/abl_brainiacs.dir/abl_brainiacs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_brainiacs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
