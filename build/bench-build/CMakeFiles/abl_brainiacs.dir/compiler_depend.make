# Empty compiler generated dependencies file for abl_brainiacs.
# This may be replaced when dependencies are built.
