file(REMOVE_RECURSE
  "../bench/fig13_dependence_ipc"
  "../bench/fig13_dependence_ipc.pdb"
  "CMakeFiles/fig13_dependence_ipc.dir/fig13_dependence_ipc.cpp.o"
  "CMakeFiles/fig13_dependence_ipc.dir/fig13_dependence_ipc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_dependence_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
