file(REMOVE_RECURSE
  "../bench/fig12_steering_example"
  "../bench/fig12_steering_example.pdb"
  "CMakeFiles/fig12_steering_example.dir/fig12_steering_example.cpp.o"
  "CMakeFiles/fig12_steering_example.dir/fig12_steering_example.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_steering_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
