# Empty compiler generated dependencies file for fig12_steering_example.
# This may be replaced when dependencies are built.
