# Empty dependencies file for tab4_reservation_table.
# This may be replaced when dependencies are built.
