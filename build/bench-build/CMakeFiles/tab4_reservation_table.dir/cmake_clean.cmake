file(REMOVE_RECURSE
  "../bench/tab4_reservation_table"
  "../bench/tab4_reservation_table.pdb"
  "CMakeFiles/tab4_reservation_table.dir/tab4_reservation_table.cpp.o"
  "CMakeFiles/tab4_reservation_table.dir/tab4_reservation_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_reservation_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
