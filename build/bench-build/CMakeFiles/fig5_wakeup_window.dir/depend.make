# Empty dependencies file for fig5_wakeup_window.
# This may be replaced when dependencies are built.
