file(REMOVE_RECURSE
  "../bench/fig5_wakeup_window"
  "../bench/fig5_wakeup_window.pdb"
  "CMakeFiles/fig5_wakeup_window.dir/fig5_wakeup_window.cpp.o"
  "CMakeFiles/fig5_wakeup_window.dir/fig5_wakeup_window.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_wakeup_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
