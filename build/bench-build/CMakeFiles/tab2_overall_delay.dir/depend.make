# Empty dependencies file for tab2_overall_delay.
# This may be replaced when dependencies are built.
