file(REMOVE_RECURSE
  "../bench/tab2_overall_delay"
  "../bench/tab2_overall_delay.pdb"
  "CMakeFiles/tab2_overall_delay.dir/tab2_overall_delay.cpp.o"
  "CMakeFiles/tab2_overall_delay.dir/tab2_overall_delay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_overall_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
