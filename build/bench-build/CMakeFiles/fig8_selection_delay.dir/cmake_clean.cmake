file(REMOVE_RECURSE
  "../bench/fig8_selection_delay"
  "../bench/fig8_selection_delay.pdb"
  "CMakeFiles/fig8_selection_delay.dir/fig8_selection_delay.cpp.o"
  "CMakeFiles/fig8_selection_delay.dir/fig8_selection_delay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_selection_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
