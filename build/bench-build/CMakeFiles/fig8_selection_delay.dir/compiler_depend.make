# Empty compiler generated dependencies file for fig8_selection_delay.
# This may be replaced when dependencies are built.
