file(REMOVE_RECURSE
  "../bench/abl_cluster_scaling"
  "../bench/abl_cluster_scaling.pdb"
  "CMakeFiles/abl_cluster_scaling.dir/abl_cluster_scaling.cpp.o"
  "CMakeFiles/abl_cluster_scaling.dir/abl_cluster_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cluster_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
