# Empty dependencies file for abl_cluster_scaling.
# This may be replaced when dependencies are built.
