file(REMOVE_RECURSE
  "../bench/abl_select_policy"
  "../bench/abl_select_policy.pdb"
  "CMakeFiles/abl_select_policy.dir/abl_select_policy.cpp.o"
  "CMakeFiles/abl_select_policy.dir/abl_select_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_select_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
