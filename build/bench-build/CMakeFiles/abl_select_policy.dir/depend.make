# Empty dependencies file for abl_select_policy.
# This may be replaced when dependencies are built.
