file(REMOVE_RECURSE
  "../bench/tab1_bypass_delay"
  "../bench/tab1_bypass_delay.pdb"
  "CMakeFiles/tab1_bypass_delay.dir/tab1_bypass_delay.cpp.o"
  "CMakeFiles/tab1_bypass_delay.dir/tab1_bypass_delay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_bypass_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
