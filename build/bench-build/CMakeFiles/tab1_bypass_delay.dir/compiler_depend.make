# Empty compiler generated dependencies file for tab1_bypass_delay.
# This may be replaced when dependencies are built.
