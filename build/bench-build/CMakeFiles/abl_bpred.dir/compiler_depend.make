# Empty compiler generated dependencies file for abl_bpred.
# This may be replaced when dependencies are built.
