file(REMOVE_RECURSE
  "../bench/abl_bpred"
  "../bench/abl_bpred.pdb"
  "CMakeFiles/abl_bpred.dir/abl_bpred.cpp.o"
  "CMakeFiles/abl_bpred.dir/abl_bpred.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
