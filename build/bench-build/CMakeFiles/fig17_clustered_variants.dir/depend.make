# Empty dependencies file for fig17_clustered_variants.
# This may be replaced when dependencies are built.
