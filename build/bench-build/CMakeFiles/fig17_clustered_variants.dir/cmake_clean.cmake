file(REMOVE_RECURSE
  "../bench/fig17_clustered_variants"
  "../bench/fig17_clustered_variants.pdb"
  "CMakeFiles/fig17_clustered_variants.dir/fig17_clustered_variants.cpp.o"
  "CMakeFiles/fig17_clustered_variants.dir/fig17_clustered_variants.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_clustered_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
