# Empty compiler generated dependencies file for fig6_wakeup_feature.
# This may be replaced when dependencies are built.
