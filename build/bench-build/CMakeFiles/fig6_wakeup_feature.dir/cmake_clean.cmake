file(REMOVE_RECURSE
  "../bench/fig6_wakeup_feature"
  "../bench/fig6_wakeup_feature.pdb"
  "CMakeFiles/fig6_wakeup_feature.dir/fig6_wakeup_feature.cpp.o"
  "CMakeFiles/fig6_wakeup_feature.dir/fig6_wakeup_feature.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_wakeup_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
