file(REMOVE_RECURSE
  "../bench/abl_frontend_depth"
  "../bench/abl_frontend_depth.pdb"
  "CMakeFiles/abl_frontend_depth.dir/abl_frontend_depth.cpp.o"
  "CMakeFiles/abl_frontend_depth.dir/abl_frontend_depth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_frontend_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
