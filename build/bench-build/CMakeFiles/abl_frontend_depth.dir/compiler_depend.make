# Empty compiler generated dependencies file for abl_frontend_depth.
# This may be replaced when dependencies are built.
