# Empty dependencies file for abl_occupancy.
# This may be replaced when dependencies are built.
