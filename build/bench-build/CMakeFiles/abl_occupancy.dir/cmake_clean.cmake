file(REMOVE_RECURSE
  "../bench/abl_occupancy"
  "../bench/abl_occupancy.pdb"
  "CMakeFiles/abl_occupancy.dir/abl_occupancy.cpp.o"
  "CMakeFiles/abl_occupancy.dir/abl_occupancy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
