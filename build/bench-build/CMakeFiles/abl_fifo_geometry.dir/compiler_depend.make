# Empty compiler generated dependencies file for abl_fifo_geometry.
# This may be replaced when dependencies are built.
