file(REMOVE_RECURSE
  "../bench/abl_fifo_geometry"
  "../bench/abl_fifo_geometry.pdb"
  "CMakeFiles/abl_fifo_geometry.dir/abl_fifo_geometry.cpp.o"
  "CMakeFiles/abl_fifo_geometry.dir/abl_fifo_geometry.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fifo_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
