file(REMOVE_RECURSE
  "../bench/fig15_clustered_ipc"
  "../bench/fig15_clustered_ipc.pdb"
  "CMakeFiles/fig15_clustered_ipc.dir/fig15_clustered_ipc.cpp.o"
  "CMakeFiles/fig15_clustered_ipc.dir/fig15_clustered_ipc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_clustered_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
