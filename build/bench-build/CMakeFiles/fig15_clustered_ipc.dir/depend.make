# Empty dependencies file for fig15_clustered_ipc.
# This may be replaced when dependencies are built.
