# Empty compiler generated dependencies file for abl_memory_latency.
# This may be replaced when dependencies are built.
