file(REMOVE_RECURSE
  "../bench/abl_memory_latency"
  "../bench/abl_memory_latency.pdb"
  "CMakeFiles/abl_memory_latency.dir/abl_memory_latency.cpp.o"
  "CMakeFiles/abl_memory_latency.dir/abl_memory_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_memory_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
