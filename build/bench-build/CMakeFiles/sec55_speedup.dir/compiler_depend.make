# Empty compiler generated dependencies file for sec55_speedup.
# This may be replaced when dependencies are built.
