file(REMOVE_RECURSE
  "../bench/sec55_speedup"
  "../bench/sec55_speedup.pdb"
  "CMakeFiles/sec55_speedup.dir/sec55_speedup.cpp.o"
  "CMakeFiles/sec55_speedup.dir/sec55_speedup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec55_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
