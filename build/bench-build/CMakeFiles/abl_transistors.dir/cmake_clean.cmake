file(REMOVE_RECURSE
  "../bench/abl_transistors"
  "../bench/abl_transistors.pdb"
  "CMakeFiles/abl_transistors.dir/abl_transistors.cpp.o"
  "CMakeFiles/abl_transistors.dir/abl_transistors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_transistors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
