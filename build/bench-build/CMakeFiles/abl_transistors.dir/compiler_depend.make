# Empty compiler generated dependencies file for abl_transistors.
# This may be replaced when dependencies are built.
