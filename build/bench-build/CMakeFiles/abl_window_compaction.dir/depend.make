# Empty dependencies file for abl_window_compaction.
# This may be replaced when dependencies are built.
