file(REMOVE_RECURSE
  "../bench/abl_window_compaction"
  "../bench/abl_window_compaction.pdb"
  "CMakeFiles/abl_window_compaction.dir/abl_window_compaction.cpp.o"
  "CMakeFiles/abl_window_compaction.dir/abl_window_compaction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_window_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
