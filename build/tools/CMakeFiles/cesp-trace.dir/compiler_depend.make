# Empty compiler generated dependencies file for cesp-trace.
# This may be replaced when dependencies are built.
