file(REMOVE_RECURSE
  "CMakeFiles/cesp-trace.dir/cesp_trace.cpp.o"
  "CMakeFiles/cesp-trace.dir/cesp_trace.cpp.o.d"
  "cesp-trace"
  "cesp-trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cesp-trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
