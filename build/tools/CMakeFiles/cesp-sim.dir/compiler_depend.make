# Empty compiler generated dependencies file for cesp-sim.
# This may be replaced when dependencies are built.
