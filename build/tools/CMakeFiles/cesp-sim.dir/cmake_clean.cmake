file(REMOVE_RECURSE
  "CMakeFiles/cesp-sim.dir/cesp_sim.cpp.o"
  "CMakeFiles/cesp-sim.dir/cesp_sim.cpp.o.d"
  "cesp-sim"
  "cesp-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cesp-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
