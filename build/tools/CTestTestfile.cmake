# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cesp_sim_list "/root/repo/build/tools/cesp-sim" "--list")
set_tests_properties(cesp_sim_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cesp_sim_synthetic "/root/repo/build/tools/cesp-sim" "--preset" "dep8x8" "--synthetic" "20000" "--tech" "0.18")
set_tests_properties(cesp_sim_synthetic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cesp_trace_roundtrip "/root/repo/build/tools/cesp-trace" "--capture" "go" "--out" "go_smoke.trc" "--list" "10")
set_tests_properties(cesp_trace_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
