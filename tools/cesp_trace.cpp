/**
 * @file
 * cesp-trace: inspect dynamic traces. Capture a workload or assembly
 * file to a binary .trc file, or analyze an existing one — mix,
 * dependence statistics, dataflow ILP limits, and an optional
 * disassembled listing of the first instructions.
 *
 *   cesp-trace --capture compress --out compress.trc
 *   cesp-trace --analyze compress.trc
 *   cesp-trace --capture-asm kernel.s --out k.trc --list 20
 *   cesp-trace --analyze k.trc --window 64 --issue 8
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "func/emulator.hpp"
#include "isa/disasm.hpp"
#include "trace/analysis.hpp"
#include "trace/tracefile.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;

namespace {

[[noreturn]] void
usage()
{
    std::puts(
        "usage: cesp-trace [options]\n"
        "  --capture NAME      capture a built-in workload's trace\n"
        "  --capture-asm FILE  assemble and capture FILE's trace\n"
        "  --out FILE          where to write the .trc (default\n"
        "                      trace.trc)\n"
        "  --analyze FILE      analyze an existing .trc\n"
        "  --window N          finite-window ILP limit (default 64)\n"
        "  --issue N           finite-width ILP limit (default 8)\n"
        "  --list N            print the first N instructions");
    std::exit(2);
}

void
analyze(const trace::TraceBuffer &buf, int window, int issue,
        int list)
{
    trace::TraceMix mix = trace::computeMix(buf);
    Table m("Instruction mix");
    m.header({"class", "count", "%"});
    m.row({"loads", cell(mix.loads), cell(100.0 * mix.frac(mix.loads))});
    m.row({"stores", cell(mix.stores),
           cell(100.0 * mix.frac(mix.stores))});
    m.row({"cond branches", cell(mix.cond_branches),
           cell(100.0 * mix.frac(mix.cond_branches))});
    m.row({"uncond control", cell(mix.uncond),
           cell(100.0 * mix.frac(mix.uncond))});
    m.row({"int alu", cell(mix.int_alu),
           cell(100.0 * mix.frac(mix.int_alu))});
    m.row({"other", cell(mix.other),
           cell(100.0 * mix.frac(mix.other))});
    m.print();

    trace::DependenceStats dep = trace::analyzeDependences(buf);
    auto unlimited = trace::dataflowSchedule(buf);
    trace::ScheduleLimits lim;
    lim.window = window;
    lim.issue_width = issue;
    auto limited = trace::dataflowSchedule(buf, lim);

    Table a("Dependence / ILP analysis");
    a.header({"quantity", "value"});
    a.row({"instructions", cell(dep.instructions)});
    a.row({"mean dependence distance", cell(dep.distance.mean(), 2)});
    a.row({"adjacent-producer %",
           cell(100.0 * dep.adjacent_frac)});
    a.row({"independent %", cell(100.0 * dep.independent_frac)});
    a.row({"critical path (ops)", cell(dep.critical_path)});
    a.row({"dataflow IPC (unbounded)", cell(unlimited.ipc, 2)});
    a.row({strprintf("dataflow IPC (win=%d, iw=%d)", window, issue),
           cell(limited.ipc, 2)});
    a.print();

    for (int i = 0; i < list && i < static_cast<int>(buf.size());
         ++i) {
        const trace::TraceOp &op = buf[static_cast<size_t>(i)];
        std::printf("%6d  %08x  %-8s%s%s\n", i, op.pc,
                    isa::opInfo(op.op).mnemonic,
                    op.isCondBranch()
                        ? (op.taken ? "  taken" : "  not-taken") : "",
                    op.isLoad() || op.isStore()
                        ? strprintf("  @0x%08x", op.mem_addr).c_str()
                        : "");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string capture, capture_asm, out = "trace.trc", analyze_file;
    int window = 64, issue = 8, list = 0;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--capture")
            capture = next();
        else if (a == "--capture-asm")
            capture_asm = next();
        else if (a == "--out")
            out = next();
        else if (a == "--analyze")
            analyze_file = next();
        else if (a == "--window")
            window = std::atoi(next().c_str());
        else if (a == "--issue")
            issue = std::atoi(next().c_str());
        else if (a == "--list")
            list = std::atoi(next().c_str());
        else
            usage();
    }

    if (!capture.empty() || !capture_asm.empty()) {
        trace::TraceBuffer buf;
        if (!capture.empty()) {
            buf = workloads::traceOf(workloads::workload(capture));
        } else {
            std::ifstream in(capture_asm);
            if (!in)
                fatal("cannot open '%s'", capture_asm.c_str());
            std::stringstream ss;
            ss << in.rdbuf();
            func::runProgram(ss.str(), 100000000ULL, &buf);
        }
        if (!trace::saveTrace(buf, out))
            fatal("cannot write '%s'", out.c_str());
        std::printf("wrote %zu instructions to %s\n", buf.size(),
                    out.c_str());
        analyze(buf, window, issue, list);
        return 0;
    }

    if (!analyze_file.empty()) {
        trace::TraceBuffer buf;
        if (!trace::loadTrace(analyze_file, buf))
            fatal("cannot read '%s'", analyze_file.c_str());
        std::printf("%s: %zu instructions\n", analyze_file.c_str(),
                    buf.size());
        analyze(buf, window, issue, list);
        return 0;
    }
    usage();
}
