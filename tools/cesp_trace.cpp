/**
 * @file
 * cesp-trace: inspect dynamic traces. Capture a workload or assembly
 * file to a binary .trc file (format v2), analyze an existing one —
 * mix, dependence statistics, dataflow ILP limits, and an optional
 * disassembled listing — or check and migrate trace files:
 *
 *   cesp-trace --capture compress --out compress.trc
 *   cesp-trace --analyze compress.trc
 *   cesp-trace --capture-asm kernel.s --out k.trc --list 20
 *   cesp-trace --analyze k.trc --window 64 --issue 8
 *   cesp-trace verify compress.trc     # header/CRC integrity check
 *   cesp-trace convert old.trc new.trc # rewrite (v1 or v2) as v2
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/parse.hpp"
#include "common/table.hpp"
#include "func/emulator.hpp"
#include "isa/disasm.hpp"
#include "trace/analysis.hpp"
#include "trace/mmap_source.hpp"
#include "trace/tracefile.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;

namespace {

[[noreturn]] void
usage()
{
    std::puts(
        "usage: cesp-trace [options]\n"
        "       cesp-trace verify FILE\n"
        "       cesp-trace convert IN OUT\n"
        "  --capture NAME      capture a built-in workload's trace\n"
        "  --capture-asm FILE  assemble and capture FILE's trace\n"
        "  --out FILE          where to write the .trc (default\n"
        "                      trace.trc)\n"
        "  --analyze FILE      analyze an existing .trc\n"
        "  --window N          finite-window ILP limit (default 64)\n"
        "  --issue N           finite-width ILP limit (default 8)\n"
        "  --list N            print the first N instructions\n"
        "  --json PATH         write the analysis as JSON ('-' = "
        "stdout)\n"
        "  --csv PATH          write the analysis as CSV ('-' = "
        "stdout)\n"
        "subcommands:\n"
        "  verify FILE         check header, record count, and (v2)\n"
        "                      payload CRC; exit 0 iff intact\n"
        "  convert IN OUT      rewrite a v1 or v2 trace as v2");
    std::exit(2);
}

/** Checked integer argument: reject atoi's silent-0 typo handling. */
int
intArg(const std::string &flag, const std::string &value, int min,
       int max)
{
    auto v = cesp::parseInt(value, min, max);
    if (!v)
        fatal("invalid value '%s' for %s (expected integer in "
              "[%d, %d])", value.c_str(), flag.c_str(), min, max);
    return static_cast<int>(*v);
}

/**
 * `cesp-trace verify FILE`: run the same integrity gate the
 * simulator's cache path runs, and say what failed. Exit status 0
 * only for an intact file.
 */
int
verifyCommand(const std::string &path)
{
    trace::MmapTraceSource src;
    trace::TraceIoResult r = src.open(path);
    if (r.ok()) {
        std::printf("%s: v2 OK, %zu records (%zu bytes), CRC valid\n",
                    path.c_str(), src.size(),
                    trace::kTraceV2HeaderBytes +
                        src.size() * trace::kTraceRecordBytes);
        return 0;
    }
    if (r.status == trace::TraceIoStatus::LegacyVersion) {
        trace::TraceBuffer buf;
        trace::TraceIoResult v1 = trace::loadTrace(path, buf);
        if (v1.ok()) {
            std::printf("%s: v1 OK, %zu records (no checksum; "
                        "`cesp-trace convert` upgrades to v2)\n",
                        path.c_str(), buf.size());
            return 0;
        }
        std::fprintf(stderr, "%s: CORRUPT: %s (%s)\n", path.c_str(),
                     trace::traceIoStatusName(v1.status),
                     v1.detail.c_str());
        return 1;
    }
    std::fprintf(stderr, "%s: CORRUPT: %s (%s)\n", path.c_str(),
                 trace::traceIoStatusName(r.status),
                 r.detail.c_str());
    return 1;
}

/** `cesp-trace convert IN OUT`: rewrite any readable trace as v2. */
int
convertCommand(const std::string &in, const std::string &out)
{
    trace::TraceBuffer buf;
    trace::TraceIoResult loaded = trace::loadTrace(in, buf);
    if (!loaded.ok())
        fatal("cannot read '%s': %s (%s)", in.c_str(),
              trace::traceIoStatusName(loaded.status),
              loaded.detail.c_str());
    trace::TraceIoResult saved = trace::saveTrace(buf, out);
    if (!saved.ok())
        fatal("cannot write '%s': %s (%s)", out.c_str(),
              trace::traceIoStatusName(saved.status),
              saved.detail.c_str());
    std::printf("wrote %zu records to %s (v2)\n", buf.size(),
                out.c_str());
    return 0;
}

/**
 * The full analysis as a metrics group: the instruction-mix
 * counters with derived percentages, the register-dependence
 * distance distribution, and the dataflow ILP limits. Same schema
 * conventions (and JSON/CSV exporters) as the simulator's group.
 */
StatGroup
analysisGroup(const trace::TraceBuffer &buf, int window, int issue,
              const std::string &label)
{
    trace::TraceMix mix = trace::computeMix(buf);
    trace::DependenceStats dep = trace::analyzeDependences(buf);
    auto unlimited = trace::dataflowSchedule(buf);
    trace::ScheduleLimits lim;
    lim.window = window;
    lim.issue_width = issue;
    auto limited = trace::dataflowSchedule(buf, lim);

    StatGroup g("cesp.trace_analysis", label);
    g.addCounter("instructions", "instructions",
                 "Dynamic instructions in the trace", mix.total);
    struct
    {
        const char *name;
        const char *desc;
        uint64_t count;
    } classes[] = {
        {"loads", "Load instructions", mix.loads},
        {"stores", "Store instructions", mix.stores},
        {"cond_branches", "Conditional branches", mix.cond_branches},
        {"uncond_control", "Unconditional control transfers",
         mix.uncond},
        {"int_alu", "Integer ALU operations", mix.int_alu},
        {"other", "All other instructions", mix.other},
    };
    for (const auto &c : classes) {
        g.addCounter(c.name, "instructions", c.desc, c.count);
        g.addDerived(std::string(c.name) + "_pct", "%",
                     std::string(c.desc) + " as a share of the trace",
                     c.name, "instructions", 100.0);
    }

    size_t dist = g.addSample(
        "dependence_distance", "instructions",
        "Distance from each source operand to its producer");
    g.sampleAt(dist) = dep.distance;
    g.addGauge("adjacent_pct", "%",
               "Instructions whose nearest producer is the "
               "immediately preceding instruction",
               100.0 * dep.adjacent_frac);
    g.addGauge("independent_pct", "%",
               "Instructions with no in-trace register producer",
               100.0 * dep.independent_frac);
    g.addCounter("critical_path", "ops",
                 "Longest register dependence chain",
                 dep.critical_path);
    g.addGauge("dataflow_ipc_unbounded", "inst/cycle",
               "Dataflow-limit IPC with no window or width bound",
               unlimited.ipc);
    g.addGauge(strprintf("dataflow_ipc_w%d_i%d", window, issue),
               "inst/cycle",
               strprintf("Dataflow IPC bounded by a %d-entry window "
                         "and %d-wide issue", window, issue),
               limited.ipc);
    return g;
}

void
analyze(const trace::TraceBuffer &buf, int window, int issue,
        int list)
{
    trace::TraceMix mix = trace::computeMix(buf);
    Table m("Instruction mix");
    m.header({"class", "count", "%"});
    m.row({"loads", cell(mix.loads), cell(100.0 * mix.frac(mix.loads))});
    m.row({"stores", cell(mix.stores),
           cell(100.0 * mix.frac(mix.stores))});
    m.row({"cond branches", cell(mix.cond_branches),
           cell(100.0 * mix.frac(mix.cond_branches))});
    m.row({"uncond control", cell(mix.uncond),
           cell(100.0 * mix.frac(mix.uncond))});
    m.row({"int alu", cell(mix.int_alu),
           cell(100.0 * mix.frac(mix.int_alu))});
    m.row({"other", cell(mix.other),
           cell(100.0 * mix.frac(mix.other))});
    m.print();

    trace::DependenceStats dep = trace::analyzeDependences(buf);
    auto unlimited = trace::dataflowSchedule(buf);
    trace::ScheduleLimits lim;
    lim.window = window;
    lim.issue_width = issue;
    auto limited = trace::dataflowSchedule(buf, lim);

    Table a("Dependence / ILP analysis");
    a.header({"quantity", "value"});
    a.row({"instructions", cell(dep.instructions)});
    a.row({"mean dependence distance", cell(dep.distance.mean(), 2)});
    a.row({"adjacent-producer %",
           cell(100.0 * dep.adjacent_frac)});
    a.row({"independent %", cell(100.0 * dep.independent_frac)});
    a.row({"critical path (ops)", cell(dep.critical_path)});
    a.row({"dataflow IPC (unbounded)", cell(unlimited.ipc, 2)});
    a.row({strprintf("dataflow IPC (win=%d, iw=%d)", window, issue),
           cell(limited.ipc, 2)});
    a.print();

    for (int i = 0; i < list && i < static_cast<int>(buf.size());
         ++i) {
        const trace::TraceOp &op = buf[static_cast<size_t>(i)];
        std::printf("%6d  %08x  %-8s%s%s\n", i, op.pc,
                    isa::opInfo(op.op).mnemonic,
                    op.isCondBranch()
                        ? (op.taken ? "  taken" : "  not-taken") : "",
                    op.isLoad() || op.isStore()
                        ? strprintf("  @0x%08x", op.mem_addr).c_str()
                        : "");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string capture, capture_asm, out = "trace.trc", analyze_file;
    std::string json_path, csv_path;
    int window = 64, issue = 8, list = 0;

    if (argc >= 2 && std::strcmp(argv[1], "verify") == 0) {
        if (argc != 3)
            usage();
        return verifyCommand(argv[2]);
    }
    if (argc >= 2 && std::strcmp(argv[1], "convert") == 0) {
        if (argc != 4)
            usage();
        return convertCommand(argv[2], argv[3]);
    }

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--capture")
            capture = next();
        else if (a == "--capture-asm")
            capture_asm = next();
        else if (a == "--out")
            out = next();
        else if (a == "--analyze")
            analyze_file = next();
        else if (a == "--window")
            window = intArg(a, next(), 1, 1000000);
        else if (a == "--issue")
            issue = intArg(a, next(), 1, 1024);
        else if (a == "--list")
            list = intArg(a, next(), 0, 1000000000);
        else if (a == "--json")
            json_path = next();
        else if (a == "--csv")
            csv_path = next();
        else
            usage();
    }

    // A stdout export must stay machine-parseable: suppress the
    // human-facing tables and progress lines.
    const bool quiet = json_path == "-" || csv_path == "-";
    auto exportAnalysis = [&](const trace::TraceBuffer &buf,
                              const std::string &label) {
        if (json_path.empty() && csv_path.empty())
            return;
        StatGroup g = analysisGroup(buf, window, issue, label);
        std::string err;
        if (!json_path.empty() &&
            !writeTextOutput(json_path, g.toJson(), &err))
            fatal("%s", err.c_str());
        if (!csv_path.empty() &&
            !writeTextOutput(csv_path, g.toCsv(), &err))
            fatal("%s", err.c_str());
    };

    if (!capture.empty() || !capture_asm.empty()) {
        trace::TraceBuffer buf;
        if (!capture.empty()) {
            buf = workloads::traceOf(workloads::workload(capture));
        } else {
            std::ifstream in(capture_asm);
            if (!in)
                fatal("cannot open '%s'", capture_asm.c_str());
            std::stringstream ss;
            ss << in.rdbuf();
            func::runProgram(ss.str(), 100000000ULL, &buf);
        }
        trace::TraceIoResult saved = trace::saveTrace(buf, out);
        if (!saved.ok())
            fatal("cannot write '%s': %s (%s)", out.c_str(),
                  trace::traceIoStatusName(saved.status),
                  saved.detail.c_str());
        if (!quiet) {
            std::printf("wrote %zu instructions to %s\n", buf.size(),
                        out.c_str());
            analyze(buf, window, issue, list);
        }
        exportAnalysis(buf,
                       capture.empty() ? capture_asm : capture);
        return 0;
    }

    if (!analyze_file.empty()) {
        trace::TraceBuffer buf;
        trace::TraceIoResult loaded =
            trace::loadTrace(analyze_file, buf);
        if (!loaded.ok())
            fatal("cannot read '%s': %s (%s)", analyze_file.c_str(),
                  trace::traceIoStatusName(loaded.status),
                  loaded.detail.c_str());
        if (!quiet) {
            std::printf("%s: %zu instructions\n",
                        analyze_file.c_str(), buf.size());
            analyze(buf, window, issue, list);
        }
        exportAnalysis(buf, analyze_file);
        return 0;
    }
    usage();
}
