/**
 * @file
 * cesp-sim: command-line driver for the library. Pick a machine
 * preset (optionally overriding its parameters), point it at a
 * built-in workload, an assembly file, or a synthetic trace, and get
 * the timing statistics — plus the delay-model clock estimate so a
 * run reports complexity-effectiveness (BIPS), not just IPC.
 *
 *   cesp-sim --list
 *   cesp-sim --preset dep8x8 --workload compress
 *   cesp-sim --preset baseline --all-workloads --tech 0.18
 *   cesp-sim --preset clustered2x4 --asm my_kernel.s
 *   cesp-sim --preset baseline --synthetic 1000000 --window 32
 *   cesp-sim --sweep --jobs 4
 *   cesp-sim --workload compress --shards 8 --warmup 50000
 *   cesp-sim --sweep --json-lines sweep.jsonl
 *   cesp-sim --workload perl --sample-every 50000 --json-lines -
 *   cesp-sim --compare before.jsonl after.jsonl --threshold 2%
 *
 * Multi-simulation runs (--sweep, --all-workloads) execute on the
 * parallel sweep engine (core::run); --jobs N picks the worker count
 * (default: all hardware threads). Output is identical for any
 * --jobs value.
 *
 * --shards K splits every trace into K contiguous windows simulated
 * in parallel and merges the measured stats; --warmup N gives each
 * window an N-record state-warming prefix drawn from the records
 * just before it, whose stats are discarded. Sharding composes with
 * every mode, including --sweep and --all-workloads (each (preset,
 * workload) pair is sharded and its shards load-balance on the same
 * pool). --shards 1 --warmup 0 (the default) is bit-identical to the
 * unsharded run.
 *
 * --json-lines FILE appends one self-describing JSON record per
 * finished run (and per shard / interval snapshot) as workers
 * complete, so arbitrarily long sweeps stream to disk in O(1)
 * memory; records carry task indices, not arrival order.
 * --sample-every N adds a statistics snapshot record every N
 * committed instructions without perturbing the simulation.
 *
 * --compare A B loads two exports (JSON documents or .jsonl
 * streams), prints the per-run delta, and exits 1 when the gating
 * metric (--metric, default ipc) regresses by more than --threshold
 * (e.g. '2%'), 2 on load/schema errors — a CI perf gate.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/parse.hpp"
#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "func/emulator.hpp"
#include "trace/synthetic.hpp"
#include "vlsi/clock.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;

namespace {

struct PresetEntry
{
    const char *name;
    const char *description;
    uarch::SimConfig (*make)();
};

const PresetEntry kPresets[] = {
    {"baseline", "8-way, 64-entry central window (Table 3)",
     core::baseline8Way},
    {"dep8x8", "dependence-based, 8 FIFOs x 8 (Figure 13)",
     core::dependence8x8},
    {"clustered2x4", "2x4-way clustered dependence-based (Figure 15)",
     core::clusteredDependence2x4},
    {"windows2x4", "2x 32-entry windows, dispatch steering",
     core::clusteredWindows2x4},
    {"execsteer", "central window, execution-driven steering",
     core::clusteredExecDriven2x4},
    {"random2x4", "2x 32-entry windows, random steering",
     core::clusteredRandom2x4},
    {"baseline16", "16-way, 128-entry central window",
     core::baseline16Way},
    {"dep4x4", "16-way, four 4-way dependence-based clusters",
     core::clusteredDependence4x4},
};

[[noreturn]] void
usage()
{
    std::puts(
        "usage: cesp-sim [options]\n"
        "  --list                 list presets and workloads\n"
        "  --preset NAME          machine preset (default baseline)\n"
        "  --workload NAME        run a built-in benchmark\n"
        "  --all-workloads        run every built-in benchmark\n"
        "  --sweep                run every preset over every "
        "benchmark\n"
        "  --jobs N               parallel simulations for "
        "--sweep/--all-workloads\n"
        "  --shards K             split each trace into K parallel "
        "windows\n"
        "  --warmup N             per-shard warmup records (stats "
        "discarded)\n"
        "  --asm FILE             assemble and run FILE\n"
        "  --synthetic N          run an N-instruction synthetic "
        "trace\n"
        "  --tech F               clock estimate feature size "
        "(0.8|0.35|0.18)\n"
        "  --window N             override window size\n"
        "  --fifos N --depth N    override FIFO shape\n"
        "  --issue N              override issue width\n"
        "  --stages N             wakeup+select pipeline stages\n"
        "  --perfect-bpred        oracle conditional prediction\n"
        "  --seed N               random-steering seed\n"
        "  --json PATH            write statistics as JSON ('-' = "
        "stdout)\n"
        "  --csv PATH             write statistics as CSV ('-' = "
        "stdout)\n"
        "  --json-lines PATH      stream one JSON record per "
        "run/shard/snapshot ('-' = stdout)\n"
        "  --sample-every N       snapshot stats every N committed "
        "instructions (needs --json-lines)\n"
        "  --compare A B          diff two exports; exit 1 on "
        "regression, 2 on schema mismatch\n"
        "  --metric NAME          gating metric for --compare "
        "(default ipc)\n"
        "  --threshold X[%]       tolerated relative regression for "
        "--compare (e.g. 2%)\n"
        "  --verbose              print occupancy histograms");
    std::exit(2);
}

/**
 * Parse @p value as the integer argument of @p flag, rejecting
 * typos ("x4", "4x", "") and out-of-range values with a usage error
 * instead of std::atoi's silent 0.
 */
long long
intArg(const std::string &flag, const std::string &value,
       long long min, long long max)
{
    auto v = parseInt(value, min, max);
    if (!v)
        fatal("invalid value '%s' for %s (expected integer in "
              "[%lld, %lld])", value.c_str(), flag.c_str(), min, max);
    return *v;
}

uarch::SimConfig
findPreset(const std::string &name)
{
    for (const auto &p : kPresets)
        if (name == p.name)
            return p.make();
    fatal("unknown preset '%s' (try --list)", name.c_str());
}

vlsi::Process
findTech(const std::string &f)
{
    if (f == "0.8")
        return vlsi::Process::um0_8;
    if (f == "0.35")
        return vlsi::Process::um0_35;
    if (f == "0.18")
        return vlsi::Process::um0_18;
    fatal("unknown technology '%s' (0.8, 0.35, or 0.18)", f.c_str());
}

/**
 * The run's statistics as a metrics group: the simulator's registry
 * plus, when a clock estimate exists, clock/BIPS gauges so the
 * complexity-effectiveness bottom line is part of the export.
 */
StatGroup
runGroup(StatGroup g, const std::string &label, double clock_mhz)
{
    double ipc = g.value("ipc");
    g.label() = label;
    if (clock_mhz > 0.0) {
        g.addGauge("clock_mhz", "MHz",
                   "delay-model clock estimate for this organization",
                   clock_mhz);
        g.addGauge("bips", "BIPS",
                   "billions of instructions per second: IPC times "
                   "the clock estimate",
                   ipc * clock_mhz / 1000.0);
    }
    return g;
}

void
printStats(const StatGroup &g, bool verbose)
{
    statTable(g).print();
    if (verbose)
        for (const Table &h : histogramTables(g))
            h.print();
}

/** Write @p text to @p path ('-' = stdout); fatal on I/O failure. */
void
writeExport(const std::string &path, const std::string &text)
{
    std::string err;
    if (!writeTextOutput(path, text, &err))
        fatal("%s", err.c_str());
}

/**
 * Parse a --threshold argument: a fraction ("0.02") or a percentage
 * with a trailing % ("2%"). Usage error on anything else.
 */
double
thresholdArg(const std::string &value)
{
    std::string num = value;
    double scale = 1.0;
    if (!num.empty() && num.back() == '%') {
        num.pop_back();
        scale = 0.01;
    }
    char *end = nullptr;
    double v = std::strtod(num.c_str(), &end);
    if (num.empty() || end != num.c_str() + num.size() || v < 0.0)
        fatal("invalid value '%s' for --threshold (expected a "
              "non-negative fraction or percentage, e.g. 0.02 or 2%%)",
              value.c_str());
    return v * scale;
}

/**
 * The scalar deltas (after minus before) of one compared pair as a
 * gauge group, so the comparison renders through statTable like any
 * other export.
 */
StatGroup
deltaGroup(const StatGroup &a, const StatGroup &b)
{
    StatGroup d("cesp.compare.delta",
                b.label().empty() ? a.label() : b.label());
    for (const StatEntry &e : a.entries()) {
        if (e.kind != StatKind::Counter && e.kind != StatKind::Gauge &&
            e.kind != StatKind::Derived)
            continue;
        d.addGauge(e.name, e.unit, "after minus before",
                   b.value(e.name) - a.value(e.name));
    }
    return d;
}

/**
 * The --compare mode: load two exports (single-group JSON, a
 * statGroupListJson document, or a .jsonl stream), pair the runs by
 * position, and gate on one metric. Exit 0 = within threshold, 1 =
 * regression, 2 = load or schema error.
 */
int
runCompare(const std::string &a_path, const std::string &b_path,
           const std::string &metric, double threshold, bool quiet,
           bool verbose)
{
    std::vector<StatGroup> before, after;
    std::string err;
    if (!loadStatGroups(a_path, before, &err)) {
        std::fprintf(stderr, "cesp-sim: %s\n", err.c_str());
        return 2;
    }
    if (!loadStatGroups(b_path, after, &err)) {
        std::fprintf(stderr, "cesp-sim: %s\n", err.c_str());
        return 2;
    }

    core::CompareOptions opt;
    opt.metric = metric;
    opt.threshold = threshold;
    core::CompareResult res = core::compareGroups(before, after, opt);
    if (!res.error.empty())
        std::fprintf(stderr, "cesp-sim: --compare: %s\n",
                     res.error.c_str());

    if (!quiet) {
        Table t("Compare " + a_path + " -> " + b_path +
                " (metric: " + metric + ", threshold " +
                cell(100.0 * threshold, 2) + "%)");
        t.header({"run", "before", "after", "delta", "delta %",
                  "changed", "verdict"});
        for (const core::CompareEntry &e : res.entries) {
            if (!e.schema_note.empty()) {
                t.row({e.label.empty() ? "?" : e.label, "-", "-", "-",
                       "-", "-", e.schema_note});
                continue;
            }
            t.row({e.label.empty() ? "?" : e.label, cell(e.before, 4),
                   cell(e.after, 4), cell(e.delta, 4),
                   cell(100.0 * e.rel, 2),
                   std::to_string(e.differing),
                   e.regressed ? "REGRESSED" : "ok"});
        }
        t.print();
        // A single pair gets the full per-metric delta table; sweeps
        // get it under --verbose (one table per run).
        if (res.schema_ok && res.error.empty())
            for (size_t i = 0; i < res.entries.size(); ++i)
                if (res.entries.size() == 1 || verbose)
                    statTable(deltaGroup(before[i], after[i])).print();
    }

    if (!res.schema_ok || !res.error.empty())
        return 2;
    return res.regressed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string preset = "baseline";
    std::string workload;
    std::string asm_file;
    std::string tech;
    uint64_t synthetic = 0;
    bool all = false;
    bool sweep = false;
    unsigned jobs = 0;   // 0 = defaultJobs()
    unsigned shards = 1; // 1 = unsharded
    uint64_t warmup = 0;
    bool verbose = false;
    std::string json_path;
    std::string csv_path;
    std::string jsonl_path;
    uint64_t sample_every = 0;
    std::string compare_a, compare_b;
    bool compare = false;
    std::string metric = "ipc";
    double threshold = 0.0;

    struct Override
    {
        const char *flag;
        int value;
        bool set = false;
    };
    Override window{"--window", 0}, fifos{"--fifos", 0},
        depth{"--depth", 0}, issue{"--issue", 0}, stages{"--stages", 0},
        seed{"--seed", 0};
    bool perfect = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--list") {
            std::puts("presets:");
            for (const auto &p : kPresets)
                std::printf("  %-14s %s\n", p.name, p.description);
            std::puts("workloads:");
            for (const auto &w : workloads::allWorkloads())
                std::printf("  %-14s %s\n", w.name.c_str(),
                            w.description.c_str());
            std::puts("extra workloads (beyond the paper's seven):");
            for (const auto &w : workloads::extraWorkloads())
                std::printf("  %-14s %s\n", w.name.c_str(),
                            w.description.c_str());
            return 0;
        } else if (a == "--preset") {
            preset = next();
        } else if (a == "--workload") {
            workload = next();
        } else if (a == "--asm") {
            asm_file = next();
        } else if (a == "--tech") {
            tech = next();
        } else if (a == "--synthetic") {
            synthetic = static_cast<uint64_t>(
                intArg(a, next(), 1, 1000000000000LL));
        } else if (a == "--all-workloads") {
            all = true;
        } else if (a == "--sweep") {
            sweep = true;
        } else if (a == "--jobs") {
            jobs = static_cast<unsigned>(intArg(a, next(), 0, 65536));
        } else if (a == "--shards") {
            shards = static_cast<unsigned>(
                intArg(a, next(), 1, 65536));
        } else if (a == "--warmup") {
            warmup = static_cast<uint64_t>(
                intArg(a, next(), 0, 1000000000000LL));
        } else if (a == "--perfect-bpred") {
            perfect = true;
        } else if (a == "--json") {
            json_path = next();
        } else if (a == "--csv") {
            csv_path = next();
        } else if (a == "--json-lines") {
            jsonl_path = next();
        } else if (a == "--sample-every") {
            sample_every = static_cast<uint64_t>(
                intArg(a, next(), 1, 1000000000000LL));
        } else if (a == "--compare") {
            compare = true;
            compare_a = next();
            compare_b = next();
        } else if (a == "--metric") {
            metric = next();
        } else if (a == "--threshold") {
            threshold = thresholdArg(next());
        } else if (a == "--verbose") {
            verbose = true;
        } else {
            bool matched = false;
            for (Override *o :
                 {&window, &fifos, &depth, &issue, &stages, &seed}) {
                if (a == o->flag) {
                    o->value = static_cast<int>(
                        intArg(a, next(), 0, 1000000000));
                    o->set = true;
                    matched = true;
                    break;
                }
            }
            if (!matched)
                usage();
        }
    }

    auto applyOverrides = [&](uarch::SimConfig &c) {
        if (window.set)
            c.window_size = window.value;
        if (fifos.set)
            c.fifos_per_cluster = fifos.value;
        if (depth.set)
            c.fifo_depth = depth.value;
        if (issue.set) {
            c.issue_width = issue.value;
            c.fetch_width = std::min(c.fetch_width, issue.value);
            c.rename_width = c.fetch_width;
        }
        if (stages.set)
            c.wakeup_select_stages = stages.value;
        if (seed.set)
            c.random_seed = static_cast<uint64_t>(seed.value);
        c.bpred.perfect = perfect;
        c.validate();
    };

    // Exporting to stdout must produce a machine-parseable document,
    // so the human-facing chatter (tables, clock line) is suppressed.
    const bool quiet = json_path == "-" || csv_path == "-" ||
        jsonl_path == "-";

    if (compare)
        return runCompare(compare_a, compare_b, metric, threshold,
                          quiet, verbose);

    uarch::SimConfig cfg = findPreset(preset);
    applyOverrides(cfg);

    const bool sharded = shards > 1 || warmup > 0;
    if (sample_every > 0 && jsonl_path.empty())
        fatal("--sample-every streams snapshots and needs "
              "--json-lines PATH ('-' = stdout)");

    // The one streaming sink every mode shares: run/shard/snapshot
    // records append (under a mutex) as workers finish.
    std::unique_ptr<StatStreamWriter> stream;
    if (!jsonl_path.empty()) {
        stream = std::make_unique<StatStreamWriter>(jsonl_path);
        if (!stream->ok())
            fatal("%s", stream->error().c_str());
    }

    // RunOptions shared by every simulation mode; tasks differ.
    // Each mode fills task_labels ("preset / workload") before
    // core::run so streamed records pair with the batch exports by
    // label, not just position.
    core::RunOptions ropt;
    ropt.jobs = jobs;
    ropt.shards = shards;
    ropt.warmup = warmup;
    ropt.sample_every = sample_every;
    std::vector<std::string> task_labels;
    if (stream) {
        ropt.on_result = [&](size_t task, const StatGroup &g) {
            StatStreamMeta meta;
            meta.kind = "run";
            meta.task = static_cast<int64_t>(task);
            if (task < task_labels.size()) {
                StatGroup labelled = g;
                labelled.label() = task_labels[task];
                stream->append(meta, labelled);
                return;
            }
            stream->append(meta, g);
        };
        if (sharded)
            ropt.on_shard = [&](size_t task, size_t shard,
                                const uarch::SimStats &s) {
                StatStreamMeta meta;
                meta.kind = "shard";
                meta.task = static_cast<int64_t>(task);
                meta.shard = static_cast<int64_t>(shard);
                stream->append(meta, s.group());
            };
        if (sample_every > 0)
            ropt.on_snapshot = [&](size_t task, size_t shard,
                                   const uarch::StatSnapshot &s) {
                StatStreamMeta meta;
                meta.kind = "snapshot";
                meta.task = static_cast<int64_t>(task);
                meta.shard =
                    sharded ? static_cast<int64_t>(shard) : -1;
                meta.interval = static_cast<int64_t>(s.index);
                stream->append(meta, s.cumulative, &s.delta);
            };
    }
    auto checkStream = [&]() {
        if (stream && !stream->ok())
            fatal("%s", stream->error().c_str());
    };

    if (sweep) {
        // Configuration sweep (the Fig. 13 comparison writ large):
        // every preset — with any command-line overrides applied —
        // over every built-in workload, or over one synthetic trace
        // when --synthetic N is given. Workload traces resolve on
        // the main thread (the cache is not thread-safe); the
        // simulations fan out over the worker pool. The table is
        // identical for every --jobs value.
        std::vector<uarch::SimConfig> machines;
        for (const auto &p : kPresets) {
            uarch::SimConfig c = p.make();
            applyOverrides(c);
            machines.push_back(c);
        }

        trace::TraceBuffer synth;
        std::vector<std::string> names;
        std::vector<trace::TraceView> traces;
        if (synthetic > 0) {
            trace::SyntheticParams sp;
            sp.seed = machines[0].random_seed;
            synth = trace::generateSynthetic(sp, synthetic);
            names.push_back("synthetic");
            traces.push_back(synth);
        } else {
            for (const auto &w : workloads::allWorkloads()) {
                names.push_back(w.name);
                traces.push_back(
                    core::cachedWorkloadTraceView(w.name));
            }
        }

        std::vector<core::SweepTask> tasks;
        for (size_t m = 0; m < machines.size(); ++m)
            for (size_t w = 0; w < traces.size(); ++w) {
                tasks.push_back({machines[m], traces[w]});
                task_labels.push_back(
                    std::string(kPresets[m].name) + " / " + names[w]);
            }

        // One group per (preset, workload) pair, in task order: the
        // run's registry as-is, or — sharded — the merge of its K
        // shard windows. When the only consumer is the JSON-lines
        // stream, nothing is retained at all: results flow straight
        // from the workers to the stream in O(1) memory.
        ropt.collect_results =
            !quiet || !json_path.empty() || !csv_path.empty();
        std::vector<StatGroup> groups =
            std::move(core::run(tasks, ropt).groups);
        checkStream();
        if (!ropt.collect_results)
            return 0;

        // Per-preset aggregate over its workloads via registry
        // merge; the merged group's derived IPC is total committed
        // over total cycles, i.e. the instruction-weighted mean.
        std::vector<StatGroup> runs;
        std::vector<StatGroup> merged;
        Table t("Preset sweep: IPC per workload");
        std::vector<std::string> hdr = {"preset"};
        hdr.insert(hdr.end(), names.begin(), names.end());
        hdr.push_back("mean");
        t.header(hdr);
        for (size_t m = 0; m < machines.size(); ++m) {
            std::vector<std::string> row = {kPresets[m].name};
            size_t first = m * traces.size();
            StatGroup agg = groups[first];
            for (size_t w = 0; w < traces.size(); ++w) {
                const StatGroup &g = groups[first + w];
                row.push_back(cell(g.value("ipc"), 3));
                runs.push_back(runGroup(
                    g, std::string(kPresets[m].name) + " / " +
                           names[w], 0.0));
                if (w > 0)
                    agg.merge(g);
            }
            agg.label() = std::string(kPresets[m].name) + " / all";
            row.push_back(cell(agg.value("ipc"), 3));
            merged.push_back(std::move(agg));
            t.row(row);
        }
        if (!quiet)
            t.print();
        if (!json_path.empty())
            writeExport(json_path, statGroupListJson(runs, merged));
        if (!csv_path.empty())
            writeExport(csv_path, statGroupListCsv(runs));
        return 0;
    }

    double clock_mhz = 0.0;
    if (!tech.empty()) {
        vlsi::ClockEstimator est(findTech(tech));
        vlsi::ClockConfig cc;
        cc.org = cfg.style == uarch::IssueBufferStyle::Fifos
            ? vlsi::IssueOrganization::DependenceFifos
            : vlsi::IssueOrganization::CentralWindow;
        cc.issue_width = cfg.issue_width;
        cc.window_size = cfg.window_size;
        cc.num_clusters = cfg.num_clusters;
        cc.fifos_per_cluster = cfg.fifos_per_cluster;
        cc.phys_regs = cfg.phys_int_regs;
        vlsi::StageDelays d = est.delays(cc);
        clock_mhz = d.clockMhz();
        if (!quiet)
            std::printf("clock estimate (%sum): %.1f ps "
                        "(%s-limited), %.0f MHz\n", tech.c_str(),
                        d.criticalPs(), d.criticalStage().c_str(),
                        clock_mhz);
        if (verbose && !quiet) {
            Table ct("Structure delays");
            ct.header({"structure", "delay (ps)", "pipelinable"});
            for (const auto &sd : est.fullReport(
                     cc, cfg.dcache.size_bytes,
                     cfg.dcache.associativity, cfg.dcache.line_bytes))
                ct.row({sd.name, cell(sd.ps),
                        sd.pipelinable ? "yes" : "no (atomic)"});
            ct.print();
        }
    }

    if (!quiet)
        std::printf("machine: %s\n", cfg.name.c_str());

    if (all) {
        // One task per benchmark, all on this machine; traces
        // resolve here on the main thread.
        std::vector<core::SweepTask> tasks;
        std::vector<std::string> names;
        for (const auto &w : workloads::allWorkloads()) {
            names.push_back(w.name);
            tasks.push_back(
                {cfg, core::cachedWorkloadTraceView(w.name)});
            task_labels.push_back(cfg.name + " / " + w.name);
        }
        ropt.collect_results =
            !quiet || !json_path.empty() || !csv_path.empty();
        std::vector<StatGroup> groups =
            std::move(core::run(tasks, ropt).groups);
        checkStream();
        if (!ropt.collect_results)
            return 0;

        Table t("All workloads on " + cfg.name);
        t.header({"benchmark", "IPC", "mispredict %", "dcache miss %",
                  "x-cluster %"});
        std::vector<StatGroup> runs;
        for (size_t i = 0; i < names.size(); ++i) {
            const StatGroup &g = groups[i];
            t.row({names[i], cell(g.value("ipc"), 3),
                   cell(100.0 * g.value("mispredict_rate")),
                   cell(100.0 * g.value("dcache_miss_rate")),
                   cell(g.value("intercluster_pct"))});
            runs.push_back(runGroup(
                g, cfg.name + " / " + names[i], clock_mhz));
        }
        if (!quiet)
            t.print();
        if (!json_path.empty() || !csv_path.empty()) {
            StatGroup agg = groups.front();
            for (size_t i = 1; i < groups.size(); ++i)
                agg.merge(groups[i]);
            agg.label() = cfg.name + " / all workloads";
            if (!json_path.empty())
                writeExport(json_path, statGroupListJson(runs, {agg}));
            if (!csv_path.empty())
                writeExport(csv_path, statGroupListCsv(runs));
        }
        return 0;
    }

    // Single-simulation modes: one task on core::run (so sharding,
    // sampling, and the JSON-lines stream all ride the same wiring
    // as the sweeps), then render the registry as a table and export
    // the same group (plus clock/BIPS gauges) on request. Sharded,
    // "run" means K parallel windows merged — with the default
    // --shards 1 --warmup 0 the two paths are bit-identical
    // (StatGroup::sameValues).
    auto runOne = [&](trace::TraceView tv, const std::string &label) {
        task_labels = {cfg.name + " / " + label};
        core::RunResult r = core::run({{cfg, tv}}, ropt);
        checkStream();
        StatGroup g = runGroup(r.groups.at(0),
                               cfg.name + " / " + label, clock_mhz);
        if (!quiet)
            printStats(g, verbose);
        if (!json_path.empty())
            writeExport(json_path, g.toJson());
        if (!csv_path.empty())
            writeExport(csv_path, g.toCsv());
    };

    if (!workload.empty()) {
        runOne(core::cachedWorkloadTraceView(workload), workload);
        return 0;
    }
    if (!asm_file.empty()) {
        std::ifstream in(asm_file);
        if (!in)
            fatal("cannot open '%s'", asm_file.c_str());
        std::stringstream ss;
        ss << in.rdbuf();
        trace::TraceBuffer buf;
        func::runProgram(ss.str(), 100000000ULL, &buf);
        runOne(buf, asm_file);
        return 0;
    }
    if (synthetic > 0) {
        trace::SyntheticParams sp;
        sp.seed = cfg.random_seed;
        trace::TraceBuffer buf =
            trace::generateSynthetic(sp, synthetic);
        runOne(buf, "synthetic");
        return 0;
    }
    usage();
}
