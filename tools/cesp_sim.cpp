/**
 * @file
 * cesp-sim: command-line driver for the library. Pick a machine
 * preset (optionally overriding its parameters), point it at a
 * built-in workload, an assembly file, or a synthetic trace, and get
 * the timing statistics — plus the delay-model clock estimate so a
 * run reports complexity-effectiveness (BIPS), not just IPC.
 *
 *   cesp-sim --list
 *   cesp-sim --preset dep8x8 --workload compress
 *   cesp-sim --preset baseline --all-workloads --tech 0.18
 *   cesp-sim --preset clustered2x4 --asm my_kernel.s
 *   cesp-sim --preset baseline --synthetic 1000000 --window 32
 *   cesp-sim --sweep --jobs 4
 *   cesp-sim --workload compress --shards 8 --warmup 50000
 *
 * Multi-simulation runs (--sweep, --all-workloads) execute on the
 * parallel sweep engine; --jobs N picks the worker count (default:
 * all hardware threads). Output is identical for any --jobs value.
 *
 * --shards K splits every trace into K contiguous windows simulated
 * in parallel and merges the measured stats (core::runSharded);
 * --warmup N gives each window an N-record state-warming prefix
 * drawn from the records just before it, whose stats are discarded.
 * Sharding composes with every mode, including --sweep and
 * --all-workloads (each (preset, workload) pair is sharded and its
 * shards load-balance on the same pool). --shards 1 --warmup 0 (the
 * default) is bit-identical to the unsharded run.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/parse.hpp"
#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "core/sweep.hpp"
#include "func/emulator.hpp"
#include "trace/synthetic.hpp"
#include "vlsi/clock.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;

namespace {

struct PresetEntry
{
    const char *name;
    const char *description;
    uarch::SimConfig (*make)();
};

const PresetEntry kPresets[] = {
    {"baseline", "8-way, 64-entry central window (Table 3)",
     core::baseline8Way},
    {"dep8x8", "dependence-based, 8 FIFOs x 8 (Figure 13)",
     core::dependence8x8},
    {"clustered2x4", "2x4-way clustered dependence-based (Figure 15)",
     core::clusteredDependence2x4},
    {"windows2x4", "2x 32-entry windows, dispatch steering",
     core::clusteredWindows2x4},
    {"execsteer", "central window, execution-driven steering",
     core::clusteredExecDriven2x4},
    {"random2x4", "2x 32-entry windows, random steering",
     core::clusteredRandom2x4},
    {"baseline16", "16-way, 128-entry central window",
     core::baseline16Way},
    {"dep4x4", "16-way, four 4-way dependence-based clusters",
     core::clusteredDependence4x4},
};

[[noreturn]] void
usage()
{
    std::puts(
        "usage: cesp-sim [options]\n"
        "  --list                 list presets and workloads\n"
        "  --preset NAME          machine preset (default baseline)\n"
        "  --workload NAME        run a built-in benchmark\n"
        "  --all-workloads        run every built-in benchmark\n"
        "  --sweep                run every preset over every "
        "benchmark\n"
        "  --jobs N               parallel simulations for "
        "--sweep/--all-workloads\n"
        "  --shards K             split each trace into K parallel "
        "windows\n"
        "  --warmup N             per-shard warmup records (stats "
        "discarded)\n"
        "  --asm FILE             assemble and run FILE\n"
        "  --synthetic N          run an N-instruction synthetic "
        "trace\n"
        "  --tech F               clock estimate feature size "
        "(0.8|0.35|0.18)\n"
        "  --window N             override window size\n"
        "  --fifos N --depth N    override FIFO shape\n"
        "  --issue N              override issue width\n"
        "  --stages N             wakeup+select pipeline stages\n"
        "  --perfect-bpred        oracle conditional prediction\n"
        "  --seed N               random-steering seed\n"
        "  --json PATH            write statistics as JSON ('-' = "
        "stdout)\n"
        "  --csv PATH             write statistics as CSV ('-' = "
        "stdout)\n"
        "  --verbose              print occupancy histograms");
    std::exit(2);
}

/**
 * Parse @p value as the integer argument of @p flag, rejecting
 * typos ("x4", "4x", "") and out-of-range values with a usage error
 * instead of std::atoi's silent 0.
 */
long long
intArg(const std::string &flag, const std::string &value,
       long long min, long long max)
{
    auto v = parseInt(value, min, max);
    if (!v)
        fatal("invalid value '%s' for %s (expected integer in "
              "[%lld, %lld])", value.c_str(), flag.c_str(), min, max);
    return *v;
}

uarch::SimConfig
findPreset(const std::string &name)
{
    for (const auto &p : kPresets)
        if (name == p.name)
            return p.make();
    fatal("unknown preset '%s' (try --list)", name.c_str());
}

vlsi::Process
findTech(const std::string &f)
{
    if (f == "0.8")
        return vlsi::Process::um0_8;
    if (f == "0.35")
        return vlsi::Process::um0_35;
    if (f == "0.18")
        return vlsi::Process::um0_18;
    fatal("unknown technology '%s' (0.8, 0.35, or 0.18)", f.c_str());
}

/**
 * The run's statistics as a metrics group: the simulator's registry
 * plus, when a clock estimate exists, clock/BIPS gauges so the
 * complexity-effectiveness bottom line is part of the export.
 */
StatGroup
runGroup(StatGroup g, const std::string &label, double clock_mhz)
{
    double ipc = g.value("ipc");
    g.label() = label;
    if (clock_mhz > 0.0) {
        g.addGauge("clock_mhz", "MHz",
                   "delay-model clock estimate for this organization",
                   clock_mhz);
        g.addGauge("bips", "BIPS",
                   "billions of instructions per second: IPC times "
                   "the clock estimate",
                   ipc * clock_mhz / 1000.0);
    }
    return g;
}

void
printStats(const StatGroup &g, bool verbose)
{
    statTable(g).print();
    if (verbose)
        for (const Table &h : histogramTables(g))
            h.print();
}

/** Write @p text to @p path ('-' = stdout); fatal on I/O failure. */
void
writeExport(const std::string &path, const std::string &text)
{
    std::string err;
    if (!writeTextOutput(path, text, &err))
        fatal("%s", err.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string preset = "baseline";
    std::string workload;
    std::string asm_file;
    std::string tech;
    uint64_t synthetic = 0;
    bool all = false;
    bool sweep = false;
    unsigned jobs = 0;   // 0 = defaultJobs()
    unsigned shards = 1; // 1 = unsharded
    uint64_t warmup = 0;
    bool verbose = false;
    std::string json_path;
    std::string csv_path;

    struct Override
    {
        const char *flag;
        int value;
        bool set = false;
    };
    Override window{"--window", 0}, fifos{"--fifos", 0},
        depth{"--depth", 0}, issue{"--issue", 0}, stages{"--stages", 0},
        seed{"--seed", 0};
    bool perfect = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--list") {
            std::puts("presets:");
            for (const auto &p : kPresets)
                std::printf("  %-14s %s\n", p.name, p.description);
            std::puts("workloads:");
            for (const auto &w : workloads::allWorkloads())
                std::printf("  %-14s %s\n", w.name.c_str(),
                            w.description.c_str());
            std::puts("extra workloads (beyond the paper's seven):");
            for (const auto &w : workloads::extraWorkloads())
                std::printf("  %-14s %s\n", w.name.c_str(),
                            w.description.c_str());
            return 0;
        } else if (a == "--preset") {
            preset = next();
        } else if (a == "--workload") {
            workload = next();
        } else if (a == "--asm") {
            asm_file = next();
        } else if (a == "--tech") {
            tech = next();
        } else if (a == "--synthetic") {
            synthetic = static_cast<uint64_t>(
                intArg(a, next(), 1, 1000000000000LL));
        } else if (a == "--all-workloads") {
            all = true;
        } else if (a == "--sweep") {
            sweep = true;
        } else if (a == "--jobs") {
            jobs = static_cast<unsigned>(intArg(a, next(), 0, 65536));
        } else if (a == "--shards") {
            shards = static_cast<unsigned>(
                intArg(a, next(), 1, 65536));
        } else if (a == "--warmup") {
            warmup = static_cast<uint64_t>(
                intArg(a, next(), 0, 1000000000000LL));
        } else if (a == "--perfect-bpred") {
            perfect = true;
        } else if (a == "--json") {
            json_path = next();
        } else if (a == "--csv") {
            csv_path = next();
        } else if (a == "--verbose") {
            verbose = true;
        } else {
            bool matched = false;
            for (Override *o :
                 {&window, &fifos, &depth, &issue, &stages, &seed}) {
                if (a == o->flag) {
                    o->value = static_cast<int>(
                        intArg(a, next(), 0, 1000000000));
                    o->set = true;
                    matched = true;
                    break;
                }
            }
            if (!matched)
                usage();
        }
    }

    auto applyOverrides = [&](uarch::SimConfig &c) {
        if (window.set)
            c.window_size = window.value;
        if (fifos.set)
            c.fifos_per_cluster = fifos.value;
        if (depth.set)
            c.fifo_depth = depth.value;
        if (issue.set) {
            c.issue_width = issue.value;
            c.fetch_width = std::min(c.fetch_width, issue.value);
            c.rename_width = c.fetch_width;
        }
        if (stages.set)
            c.wakeup_select_stages = stages.value;
        if (seed.set)
            c.random_seed = static_cast<uint64_t>(seed.value);
        c.bpred.perfect = perfect;
        c.validate();
    };

    uarch::SimConfig cfg = findPreset(preset);
    applyOverrides(cfg);

    // Exporting to stdout must produce a machine-parseable document,
    // so the human-facing chatter (tables, clock line) is suppressed.
    const bool quiet = json_path == "-" || csv_path == "-";
    const bool sharded = shards > 1 || warmup > 0;

    if (sweep) {
        // Configuration sweep (the Fig. 13 comparison writ large):
        // every preset — with any command-line overrides applied —
        // over every built-in workload, or over one synthetic trace
        // when --synthetic N is given. Workload traces resolve on
        // the main thread (the cache is not thread-safe); the
        // simulations fan out over the worker pool. The table is
        // identical for every --jobs value.
        std::vector<uarch::SimConfig> machines;
        for (const auto &p : kPresets) {
            uarch::SimConfig c = p.make();
            applyOverrides(c);
            machines.push_back(c);
        }

        trace::TraceBuffer synth;
        std::vector<std::string> names;
        std::vector<trace::TraceView> traces;
        if (synthetic > 0) {
            trace::SyntheticParams sp;
            sp.seed = machines[0].random_seed;
            synth = trace::generateSynthetic(sp, synthetic);
            names.push_back("synthetic");
            traces.push_back(synth);
        } else {
            for (const auto &w : workloads::allWorkloads()) {
                names.push_back(w.name);
                traces.push_back(
                    core::cachedWorkloadTraceView(w.name));
            }
        }

        std::vector<core::SweepTask> tasks;
        for (const uarch::SimConfig &m : machines)
            for (const trace::TraceView &t : traces)
                tasks.push_back({m, t});

        // One group per (preset, workload) pair, in task order: the
        // run's registry as-is, or — sharded — the merge of its K
        // shard windows.
        std::vector<StatGroup> groups;
        if (sharded) {
            groups = core::runShardedBatch(tasks, shards, warmup,
                                           jobs);
        } else {
            for (const uarch::SimStats &s :
                 core::runSweep(tasks, jobs))
                groups.push_back(s.group());
        }

        // Per-preset aggregate over its workloads via registry
        // merge; the merged group's derived IPC is total committed
        // over total cycles, i.e. the instruction-weighted mean.
        std::vector<StatGroup> runs;
        std::vector<StatGroup> merged;
        Table t("Preset sweep: IPC per workload");
        std::vector<std::string> hdr = {"preset"};
        hdr.insert(hdr.end(), names.begin(), names.end());
        hdr.push_back("mean");
        t.header(hdr);
        for (size_t m = 0; m < machines.size(); ++m) {
            std::vector<std::string> row = {kPresets[m].name};
            size_t first = m * traces.size();
            StatGroup agg = groups[first];
            for (size_t w = 0; w < traces.size(); ++w) {
                const StatGroup &g = groups[first + w];
                row.push_back(cell(g.value("ipc"), 3));
                runs.push_back(runGroup(
                    g, std::string(kPresets[m].name) + " / " +
                           names[w], 0.0));
                if (w > 0)
                    agg.merge(g);
            }
            agg.label() = std::string(kPresets[m].name) + " / all";
            row.push_back(cell(agg.value("ipc"), 3));
            merged.push_back(std::move(agg));
            t.row(row);
        }
        if (!quiet)
            t.print();
        if (!json_path.empty())
            writeExport(json_path, statGroupListJson(runs, merged));
        if (!csv_path.empty())
            writeExport(csv_path, statGroupListCsv(runs));
        return 0;
    }

    double clock_mhz = 0.0;
    if (!tech.empty()) {
        vlsi::ClockEstimator est(findTech(tech));
        vlsi::ClockConfig cc;
        cc.org = cfg.style == uarch::IssueBufferStyle::Fifos
            ? vlsi::IssueOrganization::DependenceFifos
            : vlsi::IssueOrganization::CentralWindow;
        cc.issue_width = cfg.issue_width;
        cc.window_size = cfg.window_size;
        cc.num_clusters = cfg.num_clusters;
        cc.fifos_per_cluster = cfg.fifos_per_cluster;
        cc.phys_regs = cfg.phys_int_regs;
        vlsi::StageDelays d = est.delays(cc);
        clock_mhz = d.clockMhz();
        if (!quiet)
            std::printf("clock estimate (%sum): %.1f ps "
                        "(%s-limited), %.0f MHz\n", tech.c_str(),
                        d.criticalPs(), d.criticalStage().c_str(),
                        clock_mhz);
        if (verbose && !quiet) {
            Table ct("Structure delays");
            ct.header({"structure", "delay (ps)", "pipelinable"});
            for (const auto &sd : est.fullReport(
                     cc, cfg.dcache.size_bytes,
                     cfg.dcache.associativity, cfg.dcache.line_bytes))
                ct.row({sd.name, cell(sd.ps),
                        sd.pipelinable ? "yes" : "no (atomic)"});
            ct.print();
        }
    }

    core::Machine machine(cfg);
    if (!quiet)
        std::printf("machine: %s\n", cfg.name.c_str());

    if (all) {
        // One task per benchmark, all on this machine; traces
        // resolve here on the main thread.
        std::vector<core::SweepTask> tasks;
        std::vector<std::string> names;
        for (const auto &w : workloads::allWorkloads()) {
            names.push_back(w.name);
            tasks.push_back(
                {cfg, core::cachedWorkloadTraceView(w.name)});
        }
        std::vector<StatGroup> groups;
        if (sharded) {
            groups = core::runShardedBatch(tasks, shards, warmup,
                                           jobs);
        } else {
            for (const uarch::SimStats &s :
                 core::runSweep(tasks, jobs))
                groups.push_back(s.group());
        }

        Table t("All workloads on " + cfg.name);
        t.header({"benchmark", "IPC", "mispredict %", "dcache miss %",
                  "x-cluster %"});
        std::vector<StatGroup> runs;
        for (size_t i = 0; i < names.size(); ++i) {
            const StatGroup &g = groups[i];
            t.row({names[i], cell(g.value("ipc"), 3),
                   cell(100.0 * g.value("mispredict_rate")),
                   cell(100.0 * g.value("dcache_miss_rate")),
                   cell(g.value("intercluster_pct"))});
            runs.push_back(runGroup(
                g, cfg.name + " / " + names[i], clock_mhz));
        }
        if (!quiet)
            t.print();
        if (!json_path.empty() || !csv_path.empty()) {
            StatGroup agg = groups.front();
            for (size_t i = 1; i < groups.size(); ++i)
                agg.merge(groups[i]);
            agg.label() = cfg.name + " / all workloads";
            if (!json_path.empty())
                writeExport(json_path, statGroupListJson(runs, {agg}));
            if (!csv_path.empty())
                writeExport(csv_path, statGroupListCsv(runs));
        }
        return 0;
    }

    // Single-simulation modes: run, render the registry as a table,
    // and export the same group (plus clock/BIPS gauges) on request.
    // Sharded, "run" means K parallel windows merged — with the
    // default --shards 1 --warmup 0 the two paths are bit-identical
    // (StatGroup::sameValues), so the sharded path serves both.
    auto finish = [&](const StatGroup &run,
                      const std::string &label) {
        StatGroup g = runGroup(run, cfg.name + " / " + label,
                               clock_mhz);
        if (!quiet)
            printStats(g, verbose);
        if (!json_path.empty())
            writeExport(json_path, g.toJson());
        if (!csv_path.empty())
            writeExport(csv_path, g.toCsv());
    };
    auto runView = [&](trace::TraceView tv) {
        return core::runSharded(cfg, tv, shards, warmup, jobs)
            .merged;
    };

    if (!workload.empty()) {
        if (sharded)
            finish(runView(core::cachedWorkloadTraceView(workload)),
                   workload);
        else
            finish(machine.runWorkload(workload).group(), workload);
        return 0;
    }
    if (!asm_file.empty()) {
        std::ifstream in(asm_file);
        if (!in)
            fatal("cannot open '%s'", asm_file.c_str());
        std::stringstream ss;
        ss << in.rdbuf();
        if (sharded) {
            trace::TraceBuffer buf;
            func::runProgram(ss.str(), 100000000ULL, &buf);
            finish(runView(buf), asm_file);
        } else {
            finish(machine.runProgram(ss.str(), 100000000ULL)
                       .group(), asm_file);
        }
        return 0;
    }
    if (synthetic > 0) {
        trace::SyntheticParams sp;
        sp.seed = cfg.random_seed;
        trace::TraceBuffer buf =
            trace::generateSynthetic(sp, synthetic);
        if (sharded)
            finish(runView(buf), "synthetic");
        else
            finish(machine.runTrace(buf).group(), "synthetic");
        return 0;
    }
    usage();
}
