/**
 * @file
 * Tests for the core API layer: presets, the Machine facade, the
 * trace cache, and the speedup-study report.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/machine.hpp"
#include "core/presets.hpp"
#include "core/report.hpp"
#include "trace/synthetic.hpp"

using namespace cesp;
using namespace cesp::core;

TEST(Presets, AllValidate)
{
    baseline8Way().validate();
    dependence8x8().validate();
    clusteredDependence2x4().validate();
    clusteredWindows2x4().validate();
    clusteredExecDriven2x4().validate();
    clusteredRandom2x4().validate();
    baseline16Way().validate();
    clusteredDependence4x4().validate();
    for (int iw : {2, 4, 8, 16}) {
        scaledBaseline(iw).validate();
        scaledDependence(iw).validate();
    }
}

TEST(Presets, Figure17OrderAndUniqueness)
{
    auto configs = figure17Configs();
    ASSERT_EQ(configs.size(), 5u);
    EXPECT_EQ(configs[0].name, "1-cluster.1window");
    EXPECT_EQ(configs[1].name, "2-cluster.fifos.dispatch_steer");
    EXPECT_EQ(configs[2].name, "2-cluster.windows.dispatch_steer");
    EXPECT_EQ(configs[3].name, "2-cluster.1window.exec_steer");
    EXPECT_EQ(configs[4].name, "2-cluster.windows.random_steer");
    std::set<std::string> names;
    for (const auto &c : configs)
        names.insert(c.name);
    EXPECT_EQ(names.size(), 5u);
}

TEST(Presets, Table3ParametersInBaseline)
{
    uarch::SimConfig c = baseline8Way();
    EXPECT_EQ(c.fetch_width, 8);
    EXPECT_EQ(c.issue_width, 8);
    EXPECT_EQ(c.retire_width, 16);
    EXPECT_EQ(c.window_size, 64);
    EXPECT_EQ(c.max_inflight, 128);
    EXPECT_EQ(c.fus_per_cluster, 8);
    EXPECT_EQ(c.ls_ports, 4);
    EXPECT_EQ(c.fu_latency, 1);
    EXPECT_EQ(c.phys_int_regs, 120);
    EXPECT_EQ(c.phys_fp_regs, 120);
    EXPECT_EQ(c.dcache.size_bytes, 32u * 1024u);
    EXPECT_EQ(c.dcache.associativity, 2);
    EXPECT_EQ(c.dcache.line_bytes, 32u);
    EXPECT_EQ(c.dcache.miss_latency, 6);
    EXPECT_EQ(c.bpred.table_entries, 4096);
    EXPECT_EQ(c.bpred.history_bits, 12);
}

TEST(Presets, PaperFifoShape)
{
    uarch::SimConfig d = dependence8x8();
    EXPECT_EQ(d.fifos_per_cluster, 8);
    EXPECT_EQ(d.fifo_depth, 8);
    EXPECT_EQ(d.totalFifoEntries(), 64); // same capacity as window

    uarch::SimConfig c = clusteredDependence2x4();
    EXPECT_EQ(c.num_clusters, 2);
    EXPECT_EQ(c.fifos_per_cluster, 4);
    EXPECT_EQ(c.fus_per_cluster, 4);
    EXPECT_EQ(c.inter_cluster_extra, 1); // 2-cycle total
}

TEST(Presets, ScaledKeepsProportions)
{
    uarch::SimConfig c = scaledBaseline(4);
    EXPECT_EQ(c.issue_width, 4);
    EXPECT_EQ(c.window_size, 32);
    EXPECT_EQ(c.fus_per_cluster, 4);
    uarch::SimConfig d = scaledDependence(2);
    EXPECT_EQ(d.fifos_per_cluster, 2);
    EXPECT_EQ(d.style, uarch::IssueBufferStyle::Fifos);
}

TEST(Machine, RunProgramProducesStats)
{
    Machine m(baseline8Way());
    auto s = m.runProgram("main: li t0, 1\n li t1, 2\n halt\n");
    EXPECT_EQ(s.committed(), 3u);
    EXPECT_GT(s.cycles(), 0u);
}

TEST(Machine, RunTraceUsesConfigName)
{
    trace::TraceBuffer buf;
    trace::TraceOp t;
    t.op = isa::Opcode::ADD;
    t.cls = isa::OpClass::IntAlu;
    t.dst = 1;
    buf.append(t);
    Machine m(dependence8x8());
    auto s = m.runTrace(buf);
    EXPECT_EQ(s.config_name(), "1-cluster.fifos.dispatch_steer");
}

TEST(Machine, TraceCacheReturnsSameBuffer)
{
    trace::TraceBuffer &a = cachedWorkloadTrace("go");
    trace::TraceBuffer &b = cachedWorkloadTrace("go");
    EXPECT_EQ(&a, &b);
    EXPECT_GT(a.size(), 0u);
    clearTraceCache();
    trace::TraceBuffer &c = cachedWorkloadTrace("go");
    EXPECT_GT(c.size(), 0u);
}

TEST(Machine, ReusableAcrossRuns)
{
    Machine m(baseline8Way());
    auto s1 = m.runProgram("main: li t0, 1\n halt\n");
    auto s2 = m.runProgram("main: li t0, 1\n halt\n");
    EXPECT_EQ(s1.cycles(), s2.cycles());
}

TEST(Report, SpeedupStudyShape)
{
    // Shallow check here (full numeric assertions live in the
    // integration suite): structure and clock ratio.
    SpeedupStudy s = runSpeedupStudy(vlsi::Process::um0_18);
    EXPECT_EQ(s.tech, vlsi::Process::um0_18);
    EXPECT_NEAR(s.clock_ratio, 1.2526, 0.001);
    ASSERT_EQ(s.entries.size(), 7u);
    for (const auto &e : s.entries) {
        EXPECT_GT(e.ipc_window, 0.0);
        EXPECT_GT(e.ipc_dep, 0.0);
        EXPECT_NEAR(e.speedup, e.ipcRatio() * e.clock_ratio, 1e-9);
    }
    EXPECT_GT(s.mean_speedup, 0.9);
}

TEST(Report, ClockRatioVariesByTechnology)
{
    SpeedupStudy s8 = runSpeedupStudy(vlsi::Process::um0_8);
    SpeedupStudy s18 = runSpeedupStudy(vlsi::Process::um0_18);
    EXPECT_GT(s8.clock_ratio, 1.0);
    EXPECT_GT(s18.clock_ratio, 1.0);
}

TEST(Presets, IpcMonotoneInScaledWidth)
{
    // On parallel code, wider scaled machines never lose IPC.
    trace::SyntheticParams sp;
    sp.mean_dep_distance = 10.0;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 20000);
    double prev = 0.0;
    for (int iw : {2, 4, 8}) {
        uarch::SimConfig cfg = scaledBaseline(iw);
        cfg.bpred.perfect = true;
        double ipc = uarch::simulate(cfg, buf).ipc();
        EXPECT_GE(ipc, prev - 1e-9) << iw;
        prev = ipc;
    }
}

TEST(Presets, ScaledDependenceTracksScaledBaseline)
{
    trace::SyntheticParams sp;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 20000);
    for (int iw : {2, 4, 8}) {
        double base =
            uarch::simulate(scaledBaseline(iw), buf).ipc();
        double dep =
            uarch::simulate(scaledDependence(iw), buf).ipc();
        EXPECT_GT(dep, 0.7 * base) << iw;
        EXPECT_LE(dep, base + 1e-9) << iw;
    }
}
