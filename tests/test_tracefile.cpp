/**
 * @file
 * Fault-injection tests of the trace file formats and the zero-copy
 * mmap reader: every way a file can be wrong — truncated header,
 * truncated payload, foreign magic, flipped payload byte, lying
 * record count, alien record size, impossible opcode — must map to
 * its own TraceIoStatus, and the workload trace cache must recover
 * from each by regenerating. Also proves the mmap view is
 * statistic-exact against TraceBuffer for every machine preset and
 * record-exact for every workload.
 *
 * The whole binary runs against a private CESP_TRACE_CACHE directory
 * (set before main() via a global test environment) so cache tests
 * never touch the user's shared cache.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/crc32.hpp"
#include "common/logging.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "trace/mmap_source.hpp"
#include "trace/synthetic.hpp"
#include "trace/tracefile.hpp"
#include "uarch/pipeline.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using trace::TraceIoStatus;

namespace {

std::filesystem::path g_dir; // private cache + scratch directory

/** Point CESP_TRACE_CACHE at a private directory for this process. */
class PrivateCacheEnv : public ::testing::Environment
{
  public:
    void SetUp() override
    {
        g_dir = std::filesystem::temp_directory_path() /
            strprintf("cesp-tracefile-test-%d", getpid());
        std::filesystem::create_directories(g_dir);
        ASSERT_EQ(setenv("CESP_TRACE_CACHE", g_dir.c_str(), 1), 0);
    }

    void TearDown() override
    {
        core::clearTraceCache(); // unmap before deleting the files
        std::error_code ec;
        std::filesystem::remove_all(g_dir, ec);
    }
};

const ::testing::Environment *const g_env =
    ::testing::AddGlobalTestEnvironment(new PrivateCacheEnv);

std::string
scratchFile(const std::string &name)
{
    return (g_dir / name).string();
}

std::vector<uint8_t>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << path;
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
}

/** Patch a v2 header's CRC field to match the (mutated) payload. */
void
recomputeCrc(std::vector<uint8_t> &bytes)
{
    ASSERT_GE(bytes.size(), trace::kTraceV2HeaderBytes);
    uint32_t c = crc32(bytes.data() + trace::kTraceV2HeaderBytes,
                       bytes.size() - trace::kTraceV2HeaderBytes);
    bytes[20] = static_cast<uint8_t>(c);
    bytes[21] = static_cast<uint8_t>(c >> 8);
    bytes[22] = static_cast<uint8_t>(c >> 16);
    bytes[23] = static_cast<uint8_t>(c >> 24);
}

trace::TraceBuffer
sampleTrace(size_t n = 5000, uint64_t seed = 11)
{
    trace::SyntheticParams sp;
    sp.seed = seed;
    return trace::generateSynthetic(sp, n);
}

bool
sameRecords(const trace::TraceView &a, const trace::TraceView &b)
{
    return a.count == b.count &&
        std::memcmp(a.records, b.records,
                    a.count * sizeof(trace::TraceOp)) == 0;
}

/** Both readers on one injected corruption, each status checked. */
void
expectCorrupt(const std::string &path, TraceIoStatus load_status,
              TraceIoStatus mmap_status)
{
    trace::TraceBuffer out;
    trace::TraceIoResult loaded = trace::loadTrace(path, out);
    EXPECT_EQ(loaded.status, load_status)
        << "loadTrace: " << loaded.detail;
    EXPECT_TRUE(out.empty()) << "failed load must not emit records";
    EXPECT_FALSE(loaded.detail.empty())
        << "failure must carry logged detail";

    trace::MmapTraceSource src;
    trace::TraceIoResult opened = src.open(path);
    EXPECT_EQ(opened.status, mmap_status)
        << "mmap: " << opened.detail;
    EXPECT_FALSE(src.mapped());
}

std::string
fingerprint(const uarch::SimStats &s)
{
    return s.group().toJson();
}

} // namespace

TEST(TraceFileV2, RoundTripPreservesEveryField)
{
    trace::TraceBuffer buf = sampleTrace();
    const std::string path = scratchFile("roundtrip.trc");
    ASSERT_TRUE(trace::saveTrace(buf, path).ok());

    trace::TraceBuffer loaded;
    trace::TraceIoResult r = trace::loadTrace(path, loaded);
    ASSERT_TRUE(r.ok()) << r.detail;
    ASSERT_TRUE(sameRecords(buf, loaded));

    // Spot-check the header against the documented layout.
    std::vector<uint8_t> bytes = readAll(path);
    ASSERT_EQ(bytes.size(), trace::kTraceV2HeaderBytes +
                  buf.size() * trace::kTraceRecordBytes);
    EXPECT_EQ(std::memcmp(bytes.data(), "CESPTRC2", 8), 0);
    EXPECT_EQ(bytes[16], trace::kTraceRecordBytes); // record size
}

TEST(TraceFileV2, EmptyTraceRoundTrips)
{
    trace::TraceBuffer empty;
    const std::string path = scratchFile("empty.trc");
    ASSERT_TRUE(trace::saveTrace(empty, path).ok());
    EXPECT_EQ(readAll(path).size(), trace::kTraceV2HeaderBytes);

    trace::TraceBuffer loaded = sampleTrace(10);
    ASSERT_TRUE(trace::loadTrace(path, loaded).ok());
    EXPECT_TRUE(loaded.empty());

    trace::MmapTraceSource src;
    ASSERT_TRUE(src.open(path).ok());
    EXPECT_EQ(src.size(), 0u);
}

TEST(TraceFileV2, SaveReportsUnwritablePath)
{
    trace::TraceBuffer buf = sampleTrace(100);
    trace::TraceIoResult r =
        trace::saveTrace(buf, (g_dir / "no-such-dir" / "x.trc")
                                  .string());
    EXPECT_EQ(r.status, TraceIoStatus::OpenFailed);
    EXPECT_FALSE(r.detail.empty());
}

TEST(TraceFileV1, RoundTripAndMmapRefusal)
{
    trace::TraceBuffer buf = sampleTrace(3000, 7);
    const std::string path = scratchFile("legacy.trc");
    ASSERT_TRUE(trace::saveTraceV1(buf, path).ok());

    // The buffered reader accepts v1 transparently...
    trace::TraceBuffer loaded;
    trace::TraceIoResult r = trace::loadTrace(path, loaded);
    ASSERT_TRUE(r.ok()) << r.detail;
    EXPECT_TRUE(sameRecords(buf, loaded));

    // ...but the zero-copy reader must refuse with LegacyVersion
    // (v1 records are packed; there is nothing to map verbatim).
    trace::MmapTraceSource src;
    EXPECT_EQ(src.open(path).status, TraceIoStatus::LegacyVersion);
}

TEST(TraceFileFaults, TruncatedHeader)
{
    trace::TraceBuffer buf = sampleTrace(500);
    const std::string path = scratchFile("trunchdr.trc");
    ASSERT_TRUE(trace::saveTrace(buf, path).ok());
    std::vector<uint8_t> bytes = readAll(path);

    for (size_t keep : {7u, 15u, 16u, 31u}) {
        writeAll(path, std::vector<uint8_t>(bytes.begin(),
                                            bytes.begin() + keep));
        expectCorrupt(path, TraceIoStatus::ShortRead,
                      TraceIoStatus::ShortRead);
    }
}

TEST(TraceFileFaults, ZeroLengthFileIsItsOwnStatus)
{
    // A zero-length file is the torn-create artifact (open(O_CREAT),
    // crash, nothing written) — not a truncated trace. Both readers
    // report EmptyFile, distinct from ShortRead, and mmap must
    // reject it before the map attempt (mmap of length 0 is EINVAL).
    const std::string path = scratchFile("empty.trc");
    writeAll(path, {});
    expectCorrupt(path, TraceIoStatus::EmptyFile,
                  TraceIoStatus::EmptyFile);
    EXPECT_STREQ(traceIoStatusName(TraceIoStatus::EmptyFile),
                 "empty-file");
}

TEST(TraceFileFaults, FailedOpensLeakNoFileDescriptors)
{
    // Every early-return path in MmapTraceSource::open closes its
    // fd; every reject path unmaps. Exercise each failure shape many
    // times and check the process's descriptor count is unchanged.
    auto fdCount = []() {
        size_t n = 0;
        for ([[maybe_unused]] const auto &e :
             std::filesystem::directory_iterator("/proc/self/fd"))
            ++n;
        return n;
    };

    trace::TraceBuffer buf = sampleTrace(300);
    const std::string good = scratchFile("fdleak-good.trc");
    ASSERT_TRUE(trace::saveTrace(buf, good).ok());
    std::vector<uint8_t> bytes = readAll(good);

    const std::string empty = scratchFile("fdleak-empty.trc");
    writeAll(empty, {});
    const std::string shorthdr = scratchFile("fdleak-short.trc");
    writeAll(shorthdr, std::vector<uint8_t>(bytes.begin(),
                                            bytes.begin() + 8));
    std::vector<uint8_t> badmagic = bytes;
    badmagic[0] = 'X';
    const std::string foreign = scratchFile("fdleak-magic.trc");
    writeAll(foreign, badmagic);

    const size_t before = fdCount();
    for (int i = 0; i < 32; ++i) {
        trace::MmapTraceSource src;
        EXPECT_EQ(src.open("/nonexistent/cesp-no-such-file").status,
                  TraceIoStatus::OpenFailed);
        EXPECT_EQ(src.open(empty).status, TraceIoStatus::EmptyFile);
        EXPECT_EQ(src.open(shorthdr).status,
                  TraceIoStatus::ShortRead);
        EXPECT_EQ(src.open(foreign).status, TraceIoStatus::BadMagic);
        // Success then replacement then destruction: the mapping
        // (the fd is already closed by then) must not accumulate.
        EXPECT_TRUE(src.open(good).ok());
        EXPECT_TRUE(src.open(good).ok());
    }
    EXPECT_EQ(fdCount(), before);
}

TEST(TraceFileFaults, TruncatedPayload)
{
    trace::TraceBuffer buf = sampleTrace(500);
    const std::string path = scratchFile("truncpay.trc");
    ASSERT_TRUE(trace::saveTrace(buf, path).ok());
    std::vector<uint8_t> bytes = readAll(path);

    // Chop mid-record: the stream reader hits EOF early; the mmap
    // reader sees a size that cannot hold the header's count.
    writeAll(path, std::vector<uint8_t>(bytes.begin(),
                                        bytes.end() - 13));
    expectCorrupt(path, TraceIoStatus::ShortRead,
                  TraceIoStatus::CountMismatch);

    // Chop whole records: both see a header/size disagreement.
    writeAll(path, std::vector<uint8_t>(
                       bytes.begin(),
                       bytes.end() - 5 * trace::kTraceRecordBytes));
    expectCorrupt(path, TraceIoStatus::ShortRead,
                  TraceIoStatus::CountMismatch);
}

TEST(TraceFileFaults, BadMagic)
{
    trace::TraceBuffer buf = sampleTrace(200);
    const std::string path = scratchFile("badmagic.trc");
    ASSERT_TRUE(trace::saveTrace(buf, path).ok());
    std::vector<uint8_t> bytes = readAll(path);
    bytes[0] = 'X';
    writeAll(path, bytes);
    expectCorrupt(path, TraceIoStatus::BadMagic,
                  TraceIoStatus::BadMagic);

    // A file of a plausible future version is also not ours.
    std::memcpy(bytes.data(), "CESPTRC9", 8);
    writeAll(path, bytes);
    expectCorrupt(path, TraceIoStatus::BadMagic,
                  TraceIoStatus::BadMagic);
}

TEST(TraceFileFaults, FlippedPayloadByteFailsCrc)
{
    trace::TraceBuffer buf = sampleTrace(800);
    const std::string path = scratchFile("badcrc.trc");
    ASSERT_TRUE(trace::saveTrace(buf, path).ok());
    std::vector<uint8_t> bytes = readAll(path);

    // Flip one bit in the middle and at both ends of the payload.
    for (size_t pos : {trace::kTraceV2HeaderBytes, bytes.size() / 2,
                       bytes.size() - 1}) {
        std::vector<uint8_t> mut = bytes;
        mut[pos] ^= 0x01;
        writeAll(path, mut);
        expectCorrupt(path, TraceIoStatus::CrcMismatch,
                      TraceIoStatus::CrcMismatch);
    }
}

TEST(TraceFileFaults, HeaderCountDisagreesWithFileSize)
{
    trace::TraceBuffer buf = sampleTrace(300);
    const std::string path = scratchFile("badcount.trc");
    ASSERT_TRUE(trace::saveTrace(buf, path).ok());
    std::vector<uint8_t> bytes = readAll(path);

    // Extra trailing records the header does not admit to.
    std::vector<uint8_t> longer = bytes;
    longer.insert(longer.end(), trace::kTraceRecordBytes, 0);
    writeAll(path, longer);
    expectCorrupt(path, TraceIoStatus::CountMismatch,
                  TraceIoStatus::CountMismatch);

    // A header count larger than the payload (fabricated, with a
    // huge value that would overflow a naive size computation).
    std::vector<uint8_t> lying = bytes;
    for (int i = 0; i < 8; ++i)
        lying[8 + i] = 0xff;
    writeAll(path, lying);
    expectCorrupt(path, TraceIoStatus::ShortRead,
                  TraceIoStatus::CountMismatch);
}

TEST(TraceFileFaults, ForeignRecordSize)
{
    trace::TraceBuffer buf = sampleTrace(100);
    const std::string path = scratchFile("badrecsize.trc");
    ASSERT_TRUE(trace::saveTrace(buf, path).ok());
    std::vector<uint8_t> bytes = readAll(path);
    bytes[16] = 24; // some other build's TraceOp
    writeAll(path, bytes);
    expectCorrupt(path, TraceIoStatus::BadRecordSize,
                  TraceIoStatus::BadRecordSize);
}

TEST(TraceFileFaults, ImpossibleOpcodeWithValidCrc)
{
    // A record can be bit-intact (CRC passes) yet decode to garbage —
    // e.g. written by a build with more opcodes. Must be BadRecord,
    // not silently accepted.
    trace::TraceBuffer buf = sampleTrace(100);
    const std::string path = scratchFile("badrecord.trc");
    ASSERT_TRUE(trace::saveTrace(buf, path).ok());
    std::vector<uint8_t> bytes = readAll(path);
    // Record 3's opcode byte (offset 12 within the record).
    bytes[trace::kTraceV2HeaderBytes + 3 * trace::kTraceRecordBytes +
          12] = 0xff;
    recomputeCrc(bytes);
    writeAll(path, bytes);
    expectCorrupt(path, TraceIoStatus::BadRecord,
                  TraceIoStatus::BadRecord);
}

TEST(MmapParity, RecordExactForEveryWorkload)
{
    // The cache-served view (mmap-backed when the disk cache is
    // healthy) must be byte-identical to a freshly emulated trace.
    for (const auto &w : workloads::allWorkloads()) {
        trace::TraceView view = core::cachedWorkloadTraceView(w.name);
        trace::TraceBuffer fresh = workloads::traceOf(w);
        EXPECT_TRUE(sameRecords(view, fresh)) << w.name;
    }
}

TEST(MmapParity, StatisticExactForEveryPreset)
{
    trace::TraceBuffer buf = sampleTrace(20000, 23);
    const std::string path = scratchFile("parity.trc");
    ASSERT_TRUE(trace::saveTrace(buf, path).ok());
    trace::MmapTraceSource src;
    ASSERT_TRUE(src.open(path).ok());
    ASSERT_TRUE(sameRecords(buf, src.view()));

    const std::vector<uarch::SimConfig> presets = {
        core::baseline8Way(),          core::dependence8x8(),
        core::clusteredDependence2x4(), core::clusteredWindows2x4(),
        core::clusteredExecDriven2x4(), core::clusteredRandom2x4(),
        core::baseline16Way(),         core::clusteredDependence4x4(),
    };
    for (const uarch::SimConfig &cfg : presets) {
        trace::TraceCursor from_buf(buf);
        trace::TraceCursor from_map(src.view());
        uarch::SimStats a = uarch::simulate(cfg, from_buf);
        uarch::SimStats b = uarch::simulate(cfg, from_map);
        EXPECT_EQ(fingerprint(a), fingerprint(b)) << cfg.name;
    }
}

namespace {

/** The cache file the trace cache published for @p workload. */
std::filesystem::path
cachedFileFor(const std::string &workload)
{
    for (const auto &e : std::filesystem::directory_iterator(g_dir)) {
        const std::string name = e.path().filename().string();
        if (name.rfind(workload + "-", 0) == 0 &&
            e.path().extension() == ".trc")
            return e.path();
    }
    return {};
}

} // namespace

TEST(TraceCacheRecovery, RegeneratesAfterEveryCorruption)
{
    const std::string w = "compress";
    core::clearTraceCache();
    trace::TraceView first = core::cachedWorkloadTraceView(w);
    ASSERT_GT(first.count, 0u);
    // The view dies with the cache entry; keep a private copy.
    std::vector<trace::TraceOp> golden(
        first.records, first.records + first.count);

    std::filesystem::path file = cachedFileFor(w);
    ASSERT_FALSE(file.empty()) << "cache did not publish a v2 file";
    const std::vector<uint8_t> pristine = readAll(file.string());

    using Mutator = void (*)(std::vector<uint8_t> &);
    const Mutator mutators[] = {
        [](std::vector<uint8_t> &b) { b.clear(); }, // torn create
        [](std::vector<uint8_t> &b) { b.resize(9); },
        [](std::vector<uint8_t> &b) { b.resize(b.size() - 7); },
        [](std::vector<uint8_t> &b) { b[4] = '?'; },
        [](std::vector<uint8_t> &b) {
            b[trace::kTraceV2HeaderBytes + 100] ^= 0x40;
        },
        [](std::vector<uint8_t> &b) {
            b.insert(b.end(), trace::kTraceRecordBytes, 0);
        },
    };
    for (const Mutator &mutate : mutators) {
        std::vector<uint8_t> bytes = pristine;
        mutate(bytes);
        core::clearTraceCache(); // drop the mapping, then corrupt
        writeAll(file.string(), bytes);

        trace::TraceView recovered = core::cachedWorkloadTraceView(w);
        ASSERT_EQ(recovered.count, golden.size());
        EXPECT_EQ(std::memcmp(recovered.records, golden.data(),
                              golden.size() * sizeof(trace::TraceOp)),
                  0);

        // The regeneration also republished an intact v2 file.
        trace::MmapTraceSource check;
        trace::TraceIoResult r = check.open(file.string());
        EXPECT_TRUE(r.ok()) << r.detail;
        EXPECT_EQ(check.size(), golden.size());
    }
}

TEST(TraceCacheRecovery, UpgradesV1FileInPlace)
{
    const std::string w = "compress";
    core::clearTraceCache();
    trace::TraceView first = core::cachedWorkloadTraceView(w);
    std::vector<trace::TraceOp> golden(
        first.records, first.records + first.count);

    std::filesystem::path file = cachedFileFor(w);
    ASSERT_FALSE(file.empty());

    // Rewrite the cache file in the legacy format, as a harness from
    // before the v2 migration would have left it.
    trace::TraceBuffer legacy;
    legacy.assign(golden);
    core::clearTraceCache();
    ASSERT_TRUE(trace::saveTraceV1(legacy, file.string()).ok());

    // The next request decodes v1 once and republishes v2 — no
    // re-emulation, and the file is mappable again afterwards.
    trace::TraceView upgraded = core::cachedWorkloadTraceView(w);
    ASSERT_EQ(upgraded.count, golden.size());
    EXPECT_EQ(std::memcmp(upgraded.records, golden.data(),
                          golden.size() * sizeof(trace::TraceOp)),
              0);
    trace::MmapTraceSource check;
    EXPECT_TRUE(check.open(file.string()).ok());
}
