/**
 * @file
 * Unit tests for the PJ-RISC ISA: opcode metadata, register naming,
 * encode/decode round trips for every opcode, and the disassembler.
 */

#include <gtest/gtest.h>

#include "isa/decode.hpp"
#include "isa/disasm.hpp"
#include "isa/isa.hpp"

using namespace cesp::isa;

TEST(OpInfo, TableIsCompleteAndOrdered)
{
    for (int i = 0; i < static_cast<int>(Opcode::NUM_OPCODES); ++i) {
        const OpInfo &info = opInfo(static_cast<Opcode>(i));
        EXPECT_EQ(static_cast<int>(info.op), i);
        EXPECT_NE(info.mnemonic, nullptr);
    }
}

TEST(OpInfo, MnemonicLookupRoundTrips)
{
    for (int i = 0; i < static_cast<int>(Opcode::NUM_OPCODES); ++i) {
        Opcode op = static_cast<Opcode>(i);
        Opcode found;
        ASSERT_TRUE(opcodeFromMnemonic(opInfo(op).mnemonic, found));
        EXPECT_EQ(found, op);
    }
    Opcode dummy;
    EXPECT_FALSE(opcodeFromMnemonic("bogus", dummy));
}

TEST(OpClassPredicates, ControlAndMem)
{
    EXPECT_TRUE(isControl(OpClass::BranchCond));
    EXPECT_TRUE(isControl(OpClass::BranchUncond));
    EXPECT_TRUE(isControl(OpClass::BranchInd));
    EXPECT_FALSE(isControl(OpClass::IntAlu));
    EXPECT_TRUE(isMem(OpClass::Load));
    EXPECT_TRUE(isMem(OpClass::Store));
    EXPECT_FALSE(isMem(OpClass::BranchCond));
}

TEST(Registers, NamesAndAliases)
{
    EXPECT_STREQ(intRegName(0), "zero");
    EXPECT_STREQ(intRegName(29), "sp");
    EXPECT_STREQ(intRegName(31), "ra");
    EXPECT_EQ(parseRegister("zero"), 0);
    EXPECT_EQ(parseRegister("r7"), 7);
    EXPECT_EQ(parseRegister("$7"), 7);
    EXPECT_EQ(parseRegister("t0"), 8);
    EXPECT_EQ(parseRegister("s0"), 16);
    EXPECT_EQ(parseRegister("a3"), 7);
    EXPECT_EQ(parseRegister("f5"), kFpRegBase + 5);
    EXPECT_EQ(parseRegister("nope"), kNoReg);
    EXPECT_EQ(regName(0), "zero");
    EXPECT_EQ(regName(kFpRegBase + 3), "f3");
}

// Encode/decode round trips for every R-type ALU opcode.
class RTypeRoundTrip : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(RTypeRoundTrip, FieldsSurvive)
{
    Opcode op = GetParam();
    uint32_t raw = encodeR(op, 5, 6, 7);
    Decoded d = decode(raw);
    EXPECT_EQ(d.op, op);
    EXPECT_EQ(d.dst, 5);
    EXPECT_EQ(d.src1, 6);
    EXPECT_EQ(d.src2, 7);
    EXPECT_EQ(d.cls, opInfo(op).cls);
}

INSTANTIATE_TEST_SUITE_P(
    IntAluOps, RTypeRoundTrip,
    ::testing::Values(Opcode::ADD, Opcode::SUB, Opcode::AND,
                      Opcode::OR, Opcode::XOR, Opcode::NOR,
                      Opcode::SLT, Opcode::SLTU, Opcode::SLLV,
                      Opcode::SRLV, Opcode::SRAV, Opcode::MUL,
                      Opcode::MULH, Opcode::DIV, Opcode::REM));

class ITypeAluRoundTrip : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(ITypeAluRoundTrip, FieldsSurvive)
{
    Opcode op = GetParam();
    uint32_t raw = encodeI(op, 9, 10, 0x1234);
    Decoded d = decode(raw);
    EXPECT_EQ(d.op, op);
    EXPECT_EQ(d.dst, 9);
    EXPECT_EQ(d.src1, 10);
    EXPECT_EQ(d.imm, 0x1234);
}

INSTANTIATE_TEST_SUITE_P(
    ImmOps, ITypeAluRoundTrip,
    ::testing::Values(Opcode::ADDI, Opcode::ANDI, Opcode::ORI,
                      Opcode::XORI, Opcode::SLTI, Opcode::SLTIU,
                      Opcode::SLLI, Opcode::SRLI, Opcode::SRAI));

TEST(Decode, SignExtensionRespectsOpcode)
{
    // ADDI sign-extends; ORI zero-extends.
    Decoded d1 = decode(encodeI(Opcode::ADDI, 1, 2, 0xffff));
    EXPECT_EQ(d1.imm, -1);
    Decoded d2 = decode(encodeI(Opcode::ORI, 1, 2, 0xffff));
    EXPECT_EQ(d2.imm, 0xffff);
}

TEST(Decode, Loads)
{
    Decoded d = decode(encodeI(Opcode::LW, 4, 29, 0xfff8));
    EXPECT_EQ(d.cls, OpClass::Load);
    EXPECT_EQ(d.dst, 4);
    EXPECT_EQ(d.src1, 29);
    EXPECT_EQ(d.imm, -8);
}

TEST(Decode, StoresHaveNoDest)
{
    Decoded d = decode(encodeI(Opcode::SW, 4, 29, 12));
    EXPECT_EQ(d.cls, OpClass::Store);
    EXPECT_EQ(d.dst, kNoReg);
    EXPECT_EQ(d.src1, 29); // base
    EXPECT_EQ(d.src2, 4);  // data
}

TEST(Decode, Branches)
{
    Decoded d = decode(encodeI(Opcode::BNE, 3, 2, 0xfffe));
    EXPECT_EQ(d.cls, OpClass::BranchCond);
    EXPECT_EQ(d.src1, 2);
    EXPECT_EQ(d.src2, 3);
    EXPECT_EQ(d.imm, -2);
    EXPECT_EQ(d.dst, kNoReg);
}

TEST(Decode, JumpsAndLinks)
{
    Decoded j = decode(encodeJ(Opcode::J, 0x4000));
    EXPECT_EQ(j.cls, OpClass::BranchUncond);
    EXPECT_EQ(j.jtarget, 0x4000u);
    EXPECT_EQ(j.dst, kNoReg);

    Decoded jal = decode(encodeJ(Opcode::JAL, 0x4000));
    EXPECT_EQ(jal.dst, 31);

    Decoded jr = decode(encodeR(Opcode::JR, 0, 31, 0));
    EXPECT_EQ(jr.cls, OpClass::BranchInd);
    EXPECT_EQ(jr.src1, 31);
    EXPECT_EQ(jr.dst, kNoReg);

    Decoded jalr = decode(encodeR(Opcode::JALR, 31, 8, 0));
    EXPECT_EQ(jalr.dst, 31);
    EXPECT_EQ(jalr.src1, 8);
}

TEST(Decode, FpOperandsUseFlatNumbering)
{
    Decoded d = decode(encodeR(Opcode::FADD, kFpRegBase + 1,
                               kFpRegBase + 2, kFpRegBase + 3));
    EXPECT_EQ(d.dst, kFpRegBase + 1);
    EXPECT_EQ(d.src1, kFpRegBase + 2);
    EXPECT_EQ(d.src2, kFpRegBase + 3);

    Decoded flw = decode(encodeI(Opcode::FLW, kFpRegBase + 4, 29, 8));
    EXPECT_EQ(flw.dst, kFpRegBase + 4);
    EXPECT_EQ(flw.src1, 29);

    Decoded fsw = decode(encodeI(Opcode::FSW, kFpRegBase + 4, 29, 8));
    EXPECT_EQ(fsw.src2, kFpRegBase + 4);
    EXPECT_EQ(fsw.src1, 29);
}

TEST(Decode, LuiHasNoSource)
{
    Decoded d = decode(encodeI(Opcode::LUI, 5, 0, 0x1000));
    EXPECT_EQ(d.dst, 5);
    EXPECT_EQ(d.src1, kNoReg);
}

TEST(Decode, InvalidOpcodeIsNop)
{
    uint32_t raw = 0xfc000000u; // opcode field 63
    EXPECT_FALSE(isValidEncoding(raw));
    Decoded d = decode(raw);
    EXPECT_EQ(d.op, Opcode::NOP);
}

TEST(Decode, HasDstIgnoresZeroRegister)
{
    Decoded d = decode(encodeR(Opcode::ADD, 0, 1, 2));
    EXPECT_FALSE(d.hasDst());
    Decoded d2 = decode(encodeR(Opcode::ADD, 3, 1, 2));
    EXPECT_TRUE(d2.hasDst());
}

TEST(Disasm, RendersRepresentativeForms)
{
    EXPECT_EQ(disassemble(encodeR(Opcode::ADD, 2, 4, 5), 0),
              "add v0, a0, a1");
    EXPECT_EQ(disassemble(encodeI(Opcode::LW, 8, 29, 8), 0),
              "lw t0, 8(sp)");
    EXPECT_EQ(disassemble(encodeI(Opcode::SW, 8, 29, 8), 0),
              "sw t0, 8(sp)");
    EXPECT_EQ(disassemble(encodeNone(Opcode::HALT), 0), "halt");
    EXPECT_EQ(disassemble(encodeR(Opcode::JR, 0, 31, 0), 0), "jr ra");
    // Branch target resolves relative to pc.
    std::string b =
        disassemble(encodeI(Opcode::BEQ, 9, 8, 0xffff), 0x1000);
    EXPECT_EQ(b, "beq t0, t1, 0x1000");
}
