/**
 * @file
 * Unit tests for the rename state: map-table initialization,
 * allocation/release, free-list exhaustion, and physical-register
 * readiness bookkeeping.
 */

#include <gtest/gtest.h>

#include "uarch/rename.hpp"

using namespace cesp;
using namespace cesp::uarch;

namespace {

SimConfig
cfg()
{
    return SimConfig{}; // 120 int / 120 fp physical registers
}

} // namespace

TEST(Rename, InitialIdentityMapping)
{
    RenameState rs(cfg());
    for (int i = 0; i < isa::kNumIntRegs; ++i)
        EXPECT_EQ(rs.mapOf(i), i);
    for (int i = 0; i < isa::kNumFpRegs; ++i)
        EXPECT_EQ(rs.mapOf(isa::kFpRegBase + i), 120 + i);
    EXPECT_EQ(rs.numPregs(), 240);
}

TEST(Rename, InitialFreeCounts)
{
    RenameState rs(cfg());
    EXPECT_EQ(rs.freeIntRegs(), 120u - 32u);
    EXPECT_EQ(rs.freeFpRegs(), 120u - 32u);
}

TEST(Rename, InitialRegistersAreReadyEverywhere)
{
    RenameState rs(cfg());
    const PhysReg &pr = rs.preg(rs.mapOf(5));
    EXPECT_FALSE(pr.outstanding(0));
    for (int c = 0; c < kMaxClusters; ++c)
        EXPECT_TRUE(pr.readyFor(c, 0));
}

TEST(Rename, AllocateUpdatesMapAndReturnsOld)
{
    RenameState rs(cfg());
    int old_mapping = rs.mapOf(7);
    auto r = rs.rename(7, 100);
    EXPECT_EQ(r.old_preg, old_mapping);
    EXPECT_NE(r.preg, old_mapping);
    EXPECT_EQ(rs.mapOf(7), r.preg);
    EXPECT_EQ(rs.freeIntRegs(), 87u);

    const PhysReg &pr = rs.preg(r.preg);
    EXPECT_TRUE(pr.outstanding(1000000));
    EXPECT_EQ(pr.producer_seq, 100u);
    EXPECT_FALSE(pr.readyFor(0, 1000000));
}

TEST(Rename, FpClassIsSeparate)
{
    RenameState rs(cfg());
    auto r = rs.rename(isa::kFpRegBase + 2, 1);
    EXPECT_GE(r.preg, 120);
    EXPECT_EQ(rs.freeIntRegs(), 88u);
    EXPECT_EQ(rs.freeFpRegs(), 87u);
}

TEST(Rename, ReleaseRecycles)
{
    RenameState rs(cfg());
    auto r = rs.rename(3, 1);
    rs.release(r.old_preg);
    EXPECT_EQ(rs.freeIntRegs(), 88u); // one taken, one returned
}

TEST(Rename, ExhaustionAndRecoveryCycle)
{
    RenameState rs(cfg());
    std::vector<int> olds;
    // 88 renames exhaust the integer pool.
    for (int i = 0; i < 88; ++i) {
        ASSERT_TRUE(rs.hasFreeFor(1));
        olds.push_back(rs.rename(1 + (i % 30), i).old_preg);
    }
    EXPECT_FALSE(rs.hasFreeFor(1));
    EXPECT_TRUE(rs.hasFreeFor(isa::kFpRegBase + 1)); // fp unaffected
    // Releasing old mappings (commit) frees capacity again.
    for (int old : olds)
        rs.release(old);
    EXPECT_TRUE(rs.hasFreeFor(1));
    EXPECT_EQ(rs.freeIntRegs(), 88u);
}

TEST(Rename, SequentialRenamesChainOldMappings)
{
    RenameState rs(cfg());
    auto r1 = rs.rename(9, 1);
    auto r2 = rs.rename(9, 2);
    EXPECT_EQ(r2.old_preg, r1.preg);
    EXPECT_EQ(rs.mapOf(9), r2.preg);
}

TEST(Rename, ReadinessTimestampsPerCluster)
{
    RenameState rs(cfg());
    auto r = rs.rename(4, 7);
    PhysReg &pr = rs.preg(r.preg);
    pr.ready_cycle[0] = 10;
    pr.ready_cycle[1] = 11;
    pr.computed_cycle = 10;
    EXPECT_TRUE(pr.readyFor(0, 10));
    EXPECT_FALSE(pr.readyFor(1, 10));
    EXPECT_TRUE(pr.readyFor(1, 11));
    EXPECT_FALSE(pr.outstanding(10));
    EXPECT_TRUE(pr.outstanding(9));
}

TEST(RenameDeathTest, InvalidUsePanics)
{
    RenameState rs(cfg());
    EXPECT_DEATH(rs.rename(0, 1), "destination");
    EXPECT_DEATH(rs.rename(64, 1), "destination");
    EXPECT_DEATH(rs.release(-1), "physical");
    EXPECT_DEATH(rs.release(240), "physical");
}
