/**
 * @file
 * Tests for the seven benchmark kernels: functional correctness
 * (golden checksums), trace properties, and per-benchmark character
 * (instruction mix signatures that make each kernel a stand-in for
 * its SPEC'95 counterpart).
 */

#include <gtest/gtest.h>

#include "func/emulator.hpp"
#include "trace/trace.hpp"
#include "uarch/pipeline.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::workloads;

TEST(Workloads, RegistryHasTheSevenBenchmarks)
{
    auto names = workloadNames();
    ASSERT_EQ(names.size(), 7u);
    EXPECT_EQ(names[0], "compress");
    EXPECT_EQ(names[1], "gcc");
    EXPECT_EQ(names[2], "go");
    EXPECT_EQ(names[3], "li");
    EXPECT_EQ(names[4], "m88ksim");
    EXPECT_EQ(names[5], "perl");
    EXPECT_EQ(names[6], "vortex");
}

TEST(Workloads, LookupByNameAndUnknownFatal)
{
    EXPECT_EQ(workload("li").name, "li");
    EXPECT_EXIT(workload("nope"), ::testing::ExitedWithCode(1),
                "unknown workload");
}

class WorkloadRun : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadRun, HaltsWithGoldenChecksum)
{
    const Workload &w = workload(GetParam());
    trace::TraceBuffer buf;
    func::ExecResult r =
        func::runProgram(w.source, w.max_instructions, &buf);
    EXPECT_TRUE(r.halted) << w.name;
    EXPECT_EQ(r.console, w.expected_console) << w.name;
    EXPECT_EQ(r.faults, 0u) << w.name;
    // Meaningful length: long enough to exercise the pipelines, short
    // enough to keep the harness fast.
    EXPECT_GT(buf.size(), 100000u) << w.name;
    EXPECT_LT(buf.size(), 3000000u) << w.name;
}

TEST_P(WorkloadRun, TraceIsWellFormed)
{
    const Workload &w = workload(GetParam());
    trace::TraceBuffer buf = traceOf(w);
    ASSERT_GT(buf.size(), 0u);
    uint64_t control_consistent = 0;
    for (size_t i = 0; i + 1 < buf.size(); ++i) {
        const trace::TraceOp &op = buf[i];
        // next_pc chains to the next dynamic instruction.
        EXPECT_EQ(op.next_pc, buf[i + 1].pc) << w.name << " @" << i;
        if (op.isLoad() || op.isStore()) {
            EXPECT_GT(op.mem_size, 0) << w.name;
            EXPECT_NE(op.mem_addr, 0u) << w.name;
        }
        if (op.isCondBranch()) {
            bool sequential = op.next_pc == op.pc + 4;
            EXPECT_EQ(op.taken, !sequential) << w.name << " @" << i;
            ++control_consistent;
        }
    }
    EXPECT_GT(control_consistent, 100u);
    // The final op is the halt.
    EXPECT_EQ(buf[buf.size() - 1].cls, isa::OpClass::Halt);
}

INSTANTIATE_TEST_SUITE_P(AllSeven, WorkloadRun,
                         ::testing::Values("compress", "gcc", "go",
                                           "li", "m88ksim", "perl",
                                           "vortex"));

// ---- per-benchmark character -----------------------------------------------

namespace {

trace::TraceMix
mixOf(const char *name)
{
    trace::TraceBuffer buf = traceOf(workload(name));
    return trace::computeMix(buf);
}

} // namespace

TEST(WorkloadCharacter, GoIsBranchy)
{
    trace::TraceMix m = mixOf("go");
    EXPECT_GT(m.frac(m.cond_branches), 0.2);
}

TEST(WorkloadCharacter, M88ksimHasFewConditionalBranches)
{
    trace::TraceMix m = mixOf("m88ksim");
    EXPECT_LT(m.frac(m.cond_branches), 0.08);
}

TEST(WorkloadCharacter, LiIsLoadDominated)
{
    trace::TraceMix m = mixOf("li");
    EXPECT_GT(m.frac(m.loads), 0.2);
}

TEST(WorkloadCharacter, VortexIsMemoryRich)
{
    trace::TraceMix m = mixOf("vortex");
    EXPECT_GT(m.frac(m.loads) + m.frac(m.stores), 0.3);
    EXPECT_GT(m.frac(m.stores), 0.08); // record copies
}

TEST(WorkloadCharacter, AllKernelsUseMemoryAndControl)
{
    for (const Workload &w : allWorkloads()) {
        trace::TraceBuffer buf = traceOf(w);
        trace::TraceMix m = trace::computeMix(buf);
        EXPECT_GT(m.frac(m.loads), 0.02) << w.name;
        EXPECT_GT(m.frac(m.cond_branches) + m.frac(m.uncond), 0.04)
            << w.name;
    }
}

TEST(ExtraWorkloads, RegisteredSeparately)
{
    // The paper's seven stay untouched; extras are additive.
    EXPECT_EQ(allWorkloads().size(), 7u);
    ASSERT_EQ(extraWorkloads().size(), 2u);
    EXPECT_EQ(extraWorkloads()[0].name, "tomcatv");
    EXPECT_EQ(extraWorkloads()[1].name, "ijpeg");
    EXPECT_EQ(workload("tomcatv").name, "tomcatv");
    EXPECT_EQ(workload("ijpeg").name, "ijpeg");
}

TEST(ExtraWorkloads, IjpegIsHighIlp)
{
    // The block transforms expose more parallelism than any of the
    // paper's seven: the wide machine should fly.
    trace::TraceBuffer buf = traceOf(workload("ijpeg"));
    uarch::SimConfig cfg; // 8-way window baseline
    cfg.name = "ijpeg-base";
    uarch::SimStats s = uarch::simulate(cfg, buf);
    EXPECT_GT(s.ipc(), 4.0);
}

TEST(ExtraWorkloads, TomcatvExercisesTheFpPipeline)
{
    trace::TraceBuffer buf = traceOf(workload("tomcatv"));
    uint64_t fp_ops = 0;
    for (size_t i = 0; i < buf.size(); ++i) {
        const trace::TraceOp &op = buf[i];
        if (op.dst >= isa::kFpRegBase || op.src1 >= isa::kFpRegBase ||
            op.src2 >= isa::kFpRegBase)
            ++fp_ops;
    }
    EXPECT_GT(static_cast<double>(fp_ops) /
              static_cast<double>(buf.size()), 0.3);
}

TEST(ExtraWorkloads, TomcatvHaltsWithGolden)
{
    const Workload &w = workload("tomcatv");
    func::ExecResult r =
        func::runProgram(w.source, w.max_instructions, nullptr);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.console, w.expected_console);
}

TEST(Workloads, TracesAreDeterministic)
{
    trace::TraceBuffer a = traceOf(workload("compress"));
    trace::TraceBuffer b = traceOf(workload("compress"));
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i += 1000) {
        EXPECT_EQ(a[i].pc, b[i].pc) << i;
        EXPECT_EQ(a[i].mem_addr, b[i].mem_addr) << i;
    }
}
