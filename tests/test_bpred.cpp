/**
 * @file
 * Unit tests for the branch predictors: gshare learning behaviour,
 * bimodal saturation, accuracy accounting, and configuration checks.
 */

#include <gtest/gtest.h>

#include "bpred/bpred.hpp"

using namespace cesp;
using namespace cesp::bpred;

namespace {

uarch::BpredConfig
table3Config()
{
    return uarch::BpredConfig{}; // 4K 2-bit counters, 12-bit history
}

/**
 * Train-and-measure helper. The first quarter of the repetitions is
 * warmup: gshare's global history must stabilize before the counters
 * it indexes stop moving (a cold all-taken branch walks through 12
 * fresh table entries while the history register fills).
 */
double
accuracyOn(BranchPredictor &bp, uint32_t pc,
           const std::vector<bool> &pattern, int reps)
{
    uint64_t correct = 0, total = 0;
    int warmup = reps / 4;
    for (int r = 0; r < reps; ++r) {
        for (bool taken : pattern) {
            bool pred = bp.predict(pc);
            if (r >= warmup) {
                ++total;
                correct += pred == taken;
            }
            bp.update(pc, taken);
        }
    }
    return static_cast<double>(correct) / static_cast<double>(total);
}

} // namespace

TEST(Gshare, LearnsStronglyBiasedBranch)
{
    Gshare g(table3Config());
    double acc = accuracyOn(g, 0x1000, {true}, 100);
    EXPECT_GT(acc, 0.99);
}

TEST(Gshare, LearnsAlternatingPatternViaHistory)
{
    // A strict T/N alternation is perfectly predictable with global
    // history (bimodal would achieve ~50%).
    Gshare g(table3Config());
    double acc = accuracyOn(g, 0x2000, {true, false}, 200);
    EXPECT_GT(acc, 0.95);
}

TEST(Gshare, LearnsShortLoopPattern)
{
    // taken,taken,taken,not-taken (a 4-iteration loop).
    Gshare g(table3Config());
    double acc =
        accuracyOn(g, 0x3000, {true, true, true, false}, 200);
    EXPECT_GT(acc, 0.9);
}

TEST(Gshare, RandomBranchIsHard)
{
    Gshare g(table3Config());
    // Deterministic pseudo-random outcome sequence.
    uint32_t x = 123456789;
    uint64_t correct = 0, total = 0;
    for (int i = 0; i < 20000; ++i) {
        x = x * 1664525 + 1013904223;
        bool taken = (x >> 30) & 1;
        bool pred = g.predict(0x4000);
        ++total;
        correct += pred == taken;
        g.update(0x4000, taken);
    }
    double acc = static_cast<double>(correct) /
        static_cast<double>(total);
    EXPECT_LT(acc, 0.65);
}

TEST(Gshare, HistoryDisambiguatesContexts)
{
    // The same branch behaves differently depending on the outcome
    // of a preceding branch; history-based prediction learns this.
    Gshare g(table3Config());
    uint64_t correct = 0, total = 0;
    for (int i = 0; i < 4000; ++i) {
        bool first = (i & 1) != 0;
        bool pred1 = g.predict(0x5000);
        (void)pred1;
        g.update(0x5000, first);
        bool second = first; // correlated
        bool pred2 = g.predict(0x6000);
        if (i > 200) {
            ++total;
            correct += pred2 == second;
        }
        g.update(0x6000, second);
    }
    EXPECT_GT(static_cast<double>(correct) /
              static_cast<double>(total), 0.95);
}

TEST(Gshare, AccuracyAccounting)
{
    Gshare g(table3Config());
    g.record(true, true);
    g.record(true, false);
    g.record(false, false);
    EXPECT_EQ(g.lookups(), 3u);
    EXPECT_EQ(g.mispredicts(), 1u);
    EXPECT_NEAR(g.accuracy(), 2.0 / 3.0, 1e-12);
}

TEST(Gshare, FreshPredictorFullAccuracy)
{
    Gshare g(table3Config());
    EXPECT_DOUBLE_EQ(g.accuracy(), 1.0);
}

TEST(GshareDeathTest, RejectsBadConfig)
{
    uarch::BpredConfig bad = table3Config();
    bad.table_entries = 1000; // not a power of two
    EXPECT_EXIT(Gshare{bad}, ::testing::ExitedWithCode(1), "power");
    uarch::BpredConfig bad2 = table3Config();
    bad2.counter_bits = 0;
    EXPECT_EXIT(Gshare{bad2}, ::testing::ExitedWithCode(1),
                "counter");
}

TEST(Bimodal, SaturatingCountersLearnBias)
{
    Bimodal b(1024);
    for (int i = 0; i < 10; ++i)
        b.update(0x100, true);
    EXPECT_TRUE(b.predict(0x100));
    // One contrary outcome does not flip a saturated counter.
    b.update(0x100, false);
    EXPECT_TRUE(b.predict(0x100));
    b.update(0x100, false);
    b.update(0x100, false);
    EXPECT_FALSE(b.predict(0x100));
}

TEST(Bimodal, SeparateCountersPerPc)
{
    Bimodal b(1024);
    for (int i = 0; i < 4; ++i) {
        b.update(0x100, true);
        b.update(0x200, false);
    }
    EXPECT_TRUE(b.predict(0x100));
    EXPECT_FALSE(b.predict(0x200));
}

TEST(StaticPredictors, FixedDirection)
{
    StaticTaken taken(true), never(false);
    EXPECT_TRUE(taken.predict(0x1234));
    EXPECT_FALSE(never.predict(0x1234));
    taken.update(0x1234, false); // no-op
    EXPECT_TRUE(taken.predict(0x1234));
}

TEST(MakePredictor, BuildsGshare)
{
    auto p = makePredictor(table3Config());
    ASSERT_NE(p, nullptr);
    EXPECT_NE(dynamic_cast<Gshare *>(p.get()), nullptr);
}
