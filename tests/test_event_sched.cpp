/**
 * @file
 * Equivalence tests between the event-driven issue model and the
 * reference per-cycle scan. The two must be cycle- and
 * statistic-exact for every machine organization: the event calendar
 * is a simulator implementation technique, not a model change.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/presets.hpp"
#include "trace/synthetic.hpp"
#include "uarch/pipeline.hpp"

using namespace cesp;
using uarch::IssueModel;
using uarch::SelectPolicy;
using uarch::SimConfig;
using uarch::SimStats;

namespace {

SimStats
runWith(SimConfig cfg, IssueModel model, uint64_t trace_seed,
        uint64_t instructions = 20000)
{
    cfg.issue_model = model;
    trace::SyntheticParams sp;
    sp.seed = trace_seed;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, instructions);
    return uarch::simulate(cfg, buf);
}

/**
 * Whole-stats equality through the metrics registry: sameValues
 * compares every registered counter, sample, and histogram bucket
 * (including per-cluster counters and histogram under/overflow), so
 * a statistic added to SimStats is automatically part of the
 * equivalence contract.
 */
void
expectExact(const SimConfig &cfg, uint64_t trace_seed)
{
    SimStats ev = runWith(cfg, IssueModel::EventDriven, trace_seed);
    SimStats scan = runWith(cfg, IssueModel::LegacyScan, trace_seed);
    EXPECT_TRUE(ev.group().sameValues(scan.group()))
        << "config " << cfg.name << " trace seed " << trace_seed
        << "\n" << ev.group().diff(scan.group());
}

} // namespace

/** The Figure 17 organization set plus the FIFO and scaled presets,
 *  three trace seeds each. */
TEST(EventSched, ExactAcrossPresetsAndSeeds)
{
    std::vector<SimConfig> configs = core::figure17Configs();
    configs.push_back(core::dependence8x8());
    configs.push_back(core::scaledBaseline(4));
    configs.push_back(core::scaledDependence(4));
    configs.push_back(core::baseline16Way());
    configs.push_back(core::clusteredDependence4x4());
    for (const SimConfig &cfg : configs)
        for (uint64_t seed : {1ULL, 7ULL, 99ULL})
            expectExact(cfg, seed);
}

/** Every select policy on windows and FIFOs (Random falls back to
 *  the scan internally; equality must still hold). */
TEST(EventSched, ExactAcrossSelectPolicies)
{
    for (SelectPolicy pol : {SelectPolicy::OldestFirst,
                             SelectPolicy::YoungestFirst,
                             SelectPolicy::Random}) {
        SimConfig w = core::baseline8Way();
        w.select_policy = pol;
        expectExact(w, 3);

        SimConfig f = core::dependence8x8();
        f.select_policy = pol;
        expectExact(f, 3);
    }
}

/** Both central-window orders (age-compacted and slot-priority). */
TEST(EventSched, ExactForBothWindowOrders)
{
    for (bool compaction : {true, false}) {
        SimConfig c = core::baseline8Way();
        c.window_compaction = compaction;
        expectExact(c, 11);
        c.select_policy = SelectPolicy::YoungestFirst;
        expectExact(c, 11);
    }
}

/** 1-, 2-, and 4-cluster machines across buffer styles. */
TEST(EventSched, ExactAcrossClusterCounts)
{
    expectExact(core::baseline8Way(), 5);
    expectExact(core::clusteredDependence2x4(), 5);
    expectExact(core::clusteredWindows2x4(), 5);
    expectExact(core::clusteredExecDriven2x4(), 5);
    expectExact(core::clusteredRandom2x4(), 5);
    expectExact(core::clusteredDependence4x4(), 5);
}

/** The acceptance configuration: 8-way over a 128-entry window. */
TEST(EventSched, ExactAt8Way128Entry)
{
    SimConfig c = core::baseline8Way();
    c.window_size = 128;
    for (uint64_t seed : {1ULL, 7ULL, 99ULL})
        expectExact(c, seed);
}

/** Deep wakeup/select pipelines and slow bypass networks. */
TEST(EventSched, ExactWithDelayedWakeupAndBypass)
{
    SimConfig c = core::clusteredDependence2x4();
    c.wakeup_select_stages = 2;
    c.inter_cluster_extra = 3;
    expectExact(c, 13);

    SimConfig b = core::baseline8Way();
    b.local_bypass_extra = 1;
    b.wakeup_select_stages = 3;
    expectExact(b, 13);
}

/** In-order issue uses the scan internally; results must not move. */
TEST(EventSched, ExactForInOrderIssue)
{
    SimConfig c = core::baseline8Way();
    c.in_order_issue = true;
    expectExact(c, 17);
}

/** Idle-cycle skipping around long memory latencies: an L2-backed
 *  machine with a tiny L1 forces multi-ten-cycle stalls where fetch
 *  is blocked and nothing is ready; the jump must not change any
 *  statistic (the skip adds the per-cycle histogram samples in
 *  bulk). */
TEST(EventSched, IdleSkipExactAroundMemoryLatencies)
{
    SimConfig c = core::baseline8Way();
    c.dcache.size_bytes = 1024; // thrash the L1
    c.dcache.miss_latency = 40;
    c.l2.enabled = true;
    c.l2.memory_latency = 80;
    for (uint64_t seed : {2ULL, 21ULL})
        expectExact(c, seed);
}

/** The skip must also be exact when fetch stalls on mispredicted
 *  branches resolved by long-latency producers. */
TEST(EventSched, IdleSkipExactAroundBranchStalls)
{
    SimConfig c = core::baseline8Way();
    c.bpred.kind = uarch::BpredKind::NeverTaken; // frequent stalls
    c.dcache.miss_latency = 30;
    expectExact(c, 23);
}
