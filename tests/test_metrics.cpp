/**
 * @file
 * Tests of the self-describing metrics registry: registration and
 * export ordering, the golden JSON schema, lossless round-trips,
 * the merge algebra (including the sweep-level property that merging
 * per-worker groups equals single-threaded accumulation), and the
 * per-cluster bounding of the simulator's registry.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "core/presets.hpp"
#include "core/sweep.hpp"
#include "trace/synthetic.hpp"
#include "uarch/pipeline.hpp"

using namespace cesp;
using uarch::SimStats;

namespace {

/** A small group exercising every StatKind. */
StatGroup
demoGroup()
{
    StatGroup g("demo", "cfg-a");
    g.addCounter("ticks", "cycles", "elapsed cycles", 40);
    g.addCounter("work", "ops", "operations completed", 10);
    g.addGauge("clock_mhz", "MHz", "estimated clock", 250.5);
    g.addDerived("rate", "ops/cycle", "work per cycle", "work",
                 "ticks");
    size_t s = g.addSample("latency", "cycles", "operation latency");
    g.sampleAt(s).add(2.0);
    g.sampleAt(s).add(6.0);
    size_t h = g.addHistogram("occupancy", "entries",
                              "buffer occupancy", 3, 1.0);
    g.histogramAt(h).add(0.5);
    g.histogramAt(h).add(1.5);
    g.histogramAt(h).add(5.0);  // overflow
    g.histogramAt(h).add(-1.0); // underflow
    return g;
}

SimStats
simulatePreset(const uarch::SimConfig &cfg, uint64_t seed,
               uint64_t instructions = 5000)
{
    trace::SyntheticParams sp;
    sp.seed = seed;
    trace::TraceBuffer buf =
        trace::generateSynthetic(sp, instructions);
    return uarch::simulate(cfg, buf);
}

} // namespace

TEST(StatGroup, RegistrationOrderIsExportOrder)
{
    StatGroup g = demoGroup();
    std::vector<std::string> names;
    for (const StatEntry &e : g.entries())
        names.push_back(e.name);
    std::vector<std::string> expect = {"ticks",   "work", "clock_mhz",
                                       "rate",    "latency",
                                       "occupancy"};
    EXPECT_EQ(names, expect);
    // Export is deterministic: two renderings are byte-identical.
    EXPECT_EQ(g.toJson(), g.toJson());
    EXPECT_EQ(g.toCsv(), g.toCsv());
}

TEST(StatGroup, NamedAccess)
{
    StatGroup g = demoGroup();
    EXPECT_EQ(g.counter("ticks"), 40u);
    EXPECT_DOUBLE_EQ(g.value("clock_mhz"), 250.5);
    EXPECT_DOUBLE_EQ(g.value("rate"), 0.25); // 10 / 40
    EXPECT_EQ(g.find("nope"), nullptr);
    ASSERT_NE(g.find("occupancy"), nullptr);
    EXPECT_EQ(g.find("occupancy")->kind, StatKind::Histogram);
}

/**
 * The golden export: any change to the document layout, key order,
 * or value formatting must be deliberate (bump kStatsSchemaVersion
 * when the schema changes shape).
 */
TEST(StatGroup, GoldenJson)
{
    const char *golden = R"({
  "schema": "cesp.statgroup",
  "schema_version": 1,
  "group": "demo",
  "label": "cfg-a",
  "metrics": [
    {
      "name": "ticks",
      "kind": "counter",
      "unit": "cycles",
      "desc": "elapsed cycles",
      "value": 40
    },
    {
      "name": "work",
      "kind": "counter",
      "unit": "ops",
      "desc": "operations completed",
      "value": 10
    },
    {
      "name": "clock_mhz",
      "kind": "gauge",
      "unit": "MHz",
      "desc": "estimated clock",
      "value": 250.5
    },
    {
      "name": "rate",
      "kind": "derived",
      "unit": "ops/cycle",
      "desc": "work per cycle",
      "num": "work",
      "den": "ticks",
      "scale": 1,
      "value": 0.25
    },
    {
      "name": "latency",
      "kind": "sample",
      "unit": "cycles",
      "desc": "operation latency",
      "count": 2,
      "sum": 8,
      "min": 2,
      "max": 6
    },
    {
      "name": "occupancy",
      "kind": "histogram",
      "unit": "entries",
      "desc": "buffer occupancy",
      "width": 1,
      "total": 4,
      "underflow": 1,
      "overflow": 1,
      "counts": [
        1,
        1,
        0
      ]
    }
  ]
})";
    EXPECT_EQ(demoGroup().toJson(), std::string(golden) + "\n");
}

TEST(StatGroup, JsonRoundTripSmallGroup)
{
    StatGroup g = demoGroup();
    StatGroup back;
    std::string err;
    ASSERT_TRUE(StatGroup::fromJson(g.toJson(), back, &err)) << err;
    EXPECT_TRUE(g.sameSchema(back));
    EXPECT_TRUE(g.sameValues(back)) << g.diff(back);
    EXPECT_EQ(g.toJson(), back.toJson());
}

TEST(StatGroup, JsonRoundTripSimulatorGroup)
{
    // The full simulator registry: 20+ counters, derived ratios with
    // irrational values, two histograms, per-cluster counters.
    SimStats s = simulatePreset(core::clusteredDependence2x4(), 7);
    const StatGroup &g = s.group();
    StatGroup back;
    std::string err;
    ASSERT_TRUE(StatGroup::fromJson(g.toJson(), back, &err)) << err;
    EXPECT_TRUE(g.sameValues(back)) << g.diff(back);
    EXPECT_EQ(g.toJson(), back.toJson());
}

TEST(StatGroup, FromJsonRejectsGarbage)
{
    StatGroup back;
    std::string err;
    EXPECT_FALSE(StatGroup::fromJson("{", back, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(StatGroup::fromJson("[1,2,3]", back, &err));
    // Wrong schema version must be refused, not misparsed.
    std::string doc = demoGroup().toJson();
    size_t at = doc.find("\"schema_version\": 1");
    ASSERT_NE(at, std::string::npos);
    doc.replace(at, 19, "\"schema_version\": 99");
    EXPECT_FALSE(StatGroup::fromJson(doc, back, &err));
}

TEST(StatGroup, ResetZeroesValuesKeepsSchema)
{
    StatGroup g = demoGroup();
    StatGroup zero = demoGroup();
    zero.reset();
    EXPECT_TRUE(g.sameSchema(zero));
    EXPECT_FALSE(g.sameValues(zero));
    EXPECT_EQ(zero.counter("ticks"), 0u);
    EXPECT_DOUBLE_EQ(zero.value("clock_mhz"), 0.0);
    ASSERT_NE(zero.find("occupancy"), nullptr);
    EXPECT_EQ(
        zero.histogramAt(zero.find("occupancy")->store).total(), 0u);
}

TEST(StatGroup, MergeAddsEveryKind)
{
    StatGroup a = demoGroup();
    a.merge(demoGroup());
    EXPECT_EQ(a.counter("ticks"), 80u);
    EXPECT_DOUBLE_EQ(a.value("clock_mhz"), 501.0);
    EXPECT_DOUBLE_EQ(a.value("rate"), 0.25); // recomputed, not added
    const StatEntry *h = a.find("occupancy");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(a.histogramAt(h->store).total(), 8u);
    EXPECT_EQ(a.histogramAt(h->store).underflow(), 2u);
    EXPECT_EQ(a.histogramAt(h->store).overflow(), 2u);
    const StatEntry *l = a.find("latency");
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(a.sampleAt(l->store).count(), 4u);
}

TEST(StatGroup, DiffNamesTheDifferingEntry)
{
    StatGroup a = demoGroup();
    StatGroup b = demoGroup();
    b.counterAt(0) += 5; // ticks
    std::string d = a.diff(b);
    EXPECT_NE(d.find("ticks"), std::string::npos);
    EXPECT_EQ(d.find("work"), std::string::npos);
}

TEST(StatGroup, SchemaDiffNamesTheFirstDifferingEntry)
{
    StatGroup a = demoGroup();
    EXPECT_EQ(a.schemaDiff(demoGroup()), "");

    // Extra entry: the counts differ.
    StatGroup extra = demoGroup();
    extra.addCounter("stalls", "cycles", "pipeline stalls");
    EXPECT_NE(a.schemaDiff(extra).find("entry count"),
              std::string::npos);

    // Same shape, different name at one position.
    StatGroup renamed("demo", "cfg-a");
    renamed.addCounter("ticks", "cycles", "elapsed cycles");
    renamed.addCounter("effort", "ops", "operations completed");
    StatGroup two("demo", "cfg-a");
    two.addCounter("ticks", "cycles", "elapsed cycles");
    two.addCounter("work", "ops", "operations completed");
    std::string d = two.schemaDiff(renamed);
    EXPECT_NE(d.find("entry 1"), std::string::npos);
    EXPECT_NE(d.find("work"), std::string::npos);
    EXPECT_NE(d.find("effort"), std::string::npos);

    // Same names, different histogram shape.
    StatGroup h1("demo");
    h1.addHistogram("occ", "entries", "occupancy", 4, 1.0);
    StatGroup h2("demo");
    h2.addHistogram("occ", "entries", "occupancy", 8, 1.0);
    std::string hd = h1.schemaDiff(h2);
    EXPECT_NE(hd.find("occ"), std::string::npos);
    EXPECT_NE(hd.find("histogram shape"), std::string::npos);
}

TEST(StatGroup, GrowableHistogramRoundTripsAndMergesAcrossSizes)
{
    // Two groups whose growable histogram grew differently: still one
    // schema (bucket counts are a value difference for growable), the
    // export carries the "growable" flag, and a merge is exact.
    auto makeGroup = [](double big_sample) {
        StatGroup g("demo", "cfg-a");
        g.addHistogram("occ", "entries", "occupancy", 4, 1.0,
                       /*growable=*/true);
        g.histogramAt(g.find("occ")->store).add(0.5);
        g.histogramAt(g.find("occ")->store).add(big_sample);
        return g;
    };
    StatGroup small = makeGroup(6.5);  // grew to 7 buckets
    StatGroup large = makeGroup(40.5); // grew to 41 buckets

    EXPECT_EQ(small.schemaDiff(large), "");

    std::string doc = large.toJson();
    EXPECT_NE(doc.find("\"growable\": true"), std::string::npos);
    StatGroup back;
    std::string err;
    ASSERT_TRUE(StatGroup::fromJson(doc, back, &err)) << err;
    EXPECT_TRUE(large.sameValues(back)) << large.diff(back);
    EXPECT_TRUE(
        back.histogramAt(back.find("occ")->store).growable());

    StatGroup merged = small;
    merged.merge(large);
    const Histogram &h = merged.histogramAt(merged.find("occ")->store);
    EXPECT_EQ(h.buckets(), 41u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(6), 1u);
    EXPECT_EQ(h.bucket(40), 1u);

    // deltaSince across growth: the delta holds only the new samples.
    StatGroup now = small;
    now.histogramAt(now.find("occ")->store).add(99.5);
    StatGroup delta = now.deltaSince(small);
    const Histogram &d = delta.histogramAt(delta.find("occ")->store);
    EXPECT_EQ(d.total(), 1u);
    EXPECT_EQ(d.bucket(99), 1u);
    EXPECT_EQ(d.bucket(0), 0u);

    // A growable histogram against a fixed one of the same shape is
    // still a schema mismatch.
    StatGroup fixed("demo", "cfg-a");
    fixed.addHistogram("occ", "entries", "occupancy", 4, 1.0);
    EXPECT_NE(small.schemaDiff(fixed).find("growable"),
              std::string::npos);
}

/**
 * Merging mismatched registries must fail loudly and say which entry
 * broke — a sharded or swept merge over runs from different machine
 * organizations (e.g. different cluster counts) is a harness bug,
 * and "schema mismatch" alone sent people diffing JSON by hand.
 */
TEST(StatGroupDeath, MergeMismatchNamesTheCulprit)
{
    StatGroup a = demoGroup();
    StatGroup extra = demoGroup();
    extra.addCounter("stalls", "cycles", "pipeline stalls");
    EXPECT_DEATH(a.merge(extra), "entry count 6 vs 7");

    StatGroup h1("demo", "left");
    h1.addHistogram("occ", "entries", "occupancy", 4, 1.0);
    StatGroup h2("demo", "right");
    h2.addHistogram("occ", "entries", "occupancy", 8, 1.0);
    EXPECT_DEATH(h1.merge(h2), "occ.*histogram shape");
    // The mismatch of per-cluster rows is the common real case:
    // merging a 1-cluster run into a 2-cluster run dies naming the
    // cluster counter, not with a generic size complaint.
    uarch::SimStats one(1), two(2);
    EXPECT_DEATH(one.group().merge(two.group()), "entry count");
}

/**
 * The sweep-level merge property: merging the per-task groups of a
 * parallel run equals merging those of the serial run, for any
 * worker count — registry merge commutes with how the work was
 * scheduled. This is what makes per-preset aggregates in `cesp-sim
 * --sweep --jobs N` independent of N.
 */
TEST(StatGroup, SweepMergeEqualsSerialAccumulation)
{
    trace::SyntheticParams sp;
    sp.seed = 11;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 4000);
    sp.seed = 12;
    sp.working_set = 256 * 1024;
    trace::TraceBuffer miss = trace::generateSynthetic(sp, 4000);

    std::vector<core::SweepTask> tasks;
    for (int i = 0; i < 6; ++i)
        tasks.push_back({core::clusteredDependence2x4(),
                         i % 2 ? miss : buf});

    core::RunOptions ropt;
    ropt.jobs = 1;
    std::vector<SimStats> serial = core::run(tasks, ropt).stats;
    StatGroup reference = core::mergedStats(serial);

    // Hand accumulation of a few counters checks mergedStats itself.
    uint64_t cycles = 0, committed = 0, hist_total = 0;
    for (const SimStats &s : serial) {
        cycles += s.cycles();
        committed += s.committed();
        hist_total += s.buffer_occupancy().total();
    }
    EXPECT_EQ(reference.counter("cycles"), cycles);
    EXPECT_EQ(reference.counter("committed"), committed);
    const StatEntry *h = reference.find("buffer_occupancy");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(reference.histogramAt(h->store).total(), hist_total);

    for (unsigned jobs : {2u, 4u}) {
        ropt.jobs = jobs;
        std::vector<SimStats> par = core::run(tasks, ropt).stats;
        StatGroup merged = core::mergedStats(par);
        EXPECT_TRUE(merged.sameValues(reference))
            << jobs << " workers\n" << merged.diff(reference);
    }
}

TEST(StatGroup, MergedStatsOfNothingIsEmptyGroup)
{
    StatGroup g = core::mergedStats({});
    EXPECT_EQ(g.counter("cycles"), 0u);
    EXPECT_EQ(g.find("issued_cluster1"), nullptr);
}

/**
 * Per-cluster counters exist only for configured clusters: a
 * 2-cluster machine exports issued_cluster0/1 and nothing more, so
 * reports and JSON carry no phantom always-zero clusters.
 */
TEST(SimStats, PerClusterCountersBoundedByConfig)
{
    SimStats two = simulatePreset(core::clusteredDependence2x4(), 3);
    EXPECT_NE(two.group().find("issued_cluster0"), nullptr);
    EXPECT_NE(two.group().find("issued_cluster1"), nullptr);
    EXPECT_EQ(two.group().find("issued_cluster2"), nullptr);
    EXPECT_EQ(two.group().toJson().find("issued_cluster2"),
              std::string::npos);
    EXPECT_EQ(two.numClusters(), 2);

    SimStats one = simulatePreset(core::baseline8Way(), 3);
    EXPECT_NE(one.group().find("issued_cluster0"), nullptr);
    EXPECT_EQ(one.group().find("issued_cluster1"), nullptr);
    const SimStats &cone = one;
    EXPECT_EQ(cone.issued_per_cluster(0), cone.issued());
    EXPECT_EQ(cone.issued_per_cluster(1), 0u); // const: safe read
}

TEST(SimStats, ExportCarriesEveryReportedMetric)
{
    // Everything cesp-sim prints must be in the export: the headline
    // derived metrics, the stall breakdown, and the occupancy
    // histogram with its out-of-range counts.
    SimStats s = simulatePreset(core::dependence8x8(), 5);
    std::string json = s.group().toJson();
    for (const char *key :
         {"\"ipc\"", "\"mispredict_rate\"", "\"intercluster_pct\"",
          "\"dcache_miss_rate\"", "\"dispatch_stall_buffer\"",
          "\"dispatch_stall_regs\"", "\"dispatch_stall_rob\"",
          "\"buffer_occupancy\"", "\"issue_sizes\"",
          "\"underflow\"", "\"overflow\"", "\"schema_version\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
}

TEST(StatGroup, CsvListsEveryMetric)
{
    StatGroup g = demoGroup();
    std::string csv = g.toCsv();
    EXPECT_NE(csv.find("# cesp.statgroup schema_version=1"),
              std::string::npos);
    EXPECT_NE(csv.find("ticks,counter,cycles,40"),
              std::string::npos);
    EXPECT_NE(csv.find("occupancy.underflow"), std::string::npos);
    EXPECT_NE(csv.find("occupancy.overflow"), std::string::npos);
    EXPECT_NE(csv.find("latency.sum"), std::string::npos);
}
