/**
 * @file
 * Unit tests for the issue window and the store queue.
 */

#include <gtest/gtest.h>

#include "uarch/lsq.hpp"
#include "uarch/window.hpp"

using namespace cesp::uarch;

TEST(IssueWindow, InsertRemoveOrdering)
{
    IssueWindow w(4);
    EXPECT_TRUE(w.empty());
    w.insert(10);
    w.insert(11);
    w.insert(15);
    EXPECT_EQ(w.size(), 3);
    ASSERT_EQ(w.entries().size(), 3u);
    EXPECT_EQ(w.entries()[0], 10u);
    EXPECT_EQ(w.entries()[2], 15u);

    w.remove(11); // middle removal keeps order
    EXPECT_EQ(w.entries()[0], 10u);
    EXPECT_EQ(w.entries()[1], 15u);
}

TEST(IssueWindow, FullAndCapacity)
{
    IssueWindow w(2);
    w.insert(1);
    EXPECT_FALSE(w.full());
    w.insert(2);
    EXPECT_TRUE(w.full());
    w.remove(1);
    EXPECT_FALSE(w.full());
    EXPECT_EQ(w.capacity(), 2);
}

TEST(IssueWindow, ClearEmpties)
{
    IssueWindow w(4);
    w.insert(1);
    w.clear();
    EXPECT_TRUE(w.empty());
}

TEST(IssueWindowSlot, FreedSlotsAreReusedOutOfAgeOrder)
{
    IssueWindow w(4, WindowOrder::SlotPriority);
    w.insert(10); // slot 0
    w.insert(11); // slot 1
    w.insert(12); // slot 2
    w.remove(11);
    w.insert(20); // reuses slot 1: priority ahead of 12
    ASSERT_EQ(w.entries().size(), 3u);
    EXPECT_EQ(w.entries()[0], 10u);
    EXPECT_EQ(w.entries()[1], 20u);
    EXPECT_EQ(w.entries()[2], 12u);
}

TEST(IssueWindowSlot, CapacityAndClear)
{
    IssueWindow w(2, WindowOrder::SlotPriority);
    w.insert(1);
    w.insert(2);
    EXPECT_TRUE(w.full());
    w.remove(1);
    EXPECT_FALSE(w.full());
    w.clear();
    EXPECT_TRUE(w.empty());
    EXPECT_TRUE(w.entries().empty());
}

TEST(IssueWindowSlot, AgeOrderWhenNoHoles)
{
    IssueWindow w(4, WindowOrder::SlotPriority);
    w.insert(5);
    w.insert(6);
    w.insert(7);
    EXPECT_EQ(w.entries()[0], 5u);
    EXPECT_EQ(w.entries()[2], 7u);
}

TEST(IssueWindowSlotDeathTest, MisusePanics)
{
    IssueWindow w(2, WindowOrder::SlotPriority);
    w.insert(5);
    EXPECT_DEATH(w.remove(99), "absent");
    w.insert(6);
    EXPECT_DEATH(w.insert(7), "full");
}

TEST(IssueWindowDeathTest, MisusePanics)
{
    IssueWindow w(2);
    w.insert(5);
    EXPECT_DEATH(w.insert(4), "out-of-order");
    EXPECT_DEATH(w.remove(99), "absent");
    w.insert(6);
    EXPECT_DEATH(w.insert(7), "full");
}

TEST(StoreQueue, OlderStoreGating)
{
    StoreQueue q;
    q.dispatch(5, 0x100);
    q.dispatch(9, 0x200);
    // A load younger than both is gated.
    EXPECT_TRUE(q.olderStoreUnissued(10));
    // A load older than both stores is not gated.
    EXPECT_FALSE(q.olderStoreUnissued(3));
    // A load between them is gated only by the older store.
    EXPECT_TRUE(q.olderStoreUnissued(7));
    q.markIssued(5);
    EXPECT_FALSE(q.olderStoreUnissued(7));
    EXPECT_TRUE(q.olderStoreUnissued(10));
    q.markIssued(9);
    EXPECT_FALSE(q.olderStoreUnissued(10));
}

TEST(StoreQueue, ForwardingFindsYoungestOlderMatch)
{
    StoreQueue q;
    q.dispatch(1, 0x100);
    q.dispatch(4, 0x100);
    q.dispatch(6, 0x300);
    q.markIssued(1);
    q.markIssued(4);
    q.markIssued(6);
    auto f = q.forwardFrom(10, 0x100);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(*f, 4u); // youngest older matching store
    // A load older than store 4 forwards from store 1.
    auto f2 = q.forwardFrom(3, 0x100);
    ASSERT_TRUE(f2.has_value());
    EXPECT_EQ(*f2, 1u);
    // No match for a different word.
    EXPECT_FALSE(q.forwardFrom(10, 0x200).has_value());
}

TEST(StoreQueue, ForwardingRequiresFullCoverage)
{
    // A store forwards only when it covers every byte of the load.
    StoreQueue q;
    q.dispatch(1, 0x100, 1); // byte store at 0x100
    q.markIssued(1);
    // A word load overlapping the byte store must NOT forward: three
    // of its four bytes would come from memory.
    EXPECT_FALSE(q.forwardFrom(5, 0x100, 4).has_value());
    // A byte load of the stored byte forwards.
    EXPECT_TRUE(q.forwardFrom(5, 0x100, 1).has_value());
    // A byte load of a neighboring byte does not.
    EXPECT_FALSE(q.forwardFrom(5, 0x101, 1).has_value());
}

TEST(StoreQueue, WiderStoreForwardsToNarrowerLoad)
{
    StoreQueue q;
    q.dispatch(1, 0x100, 4); // word store [0x100, 0x104)
    q.markIssued(1);
    // Any sub-range of the store forwards...
    EXPECT_TRUE(q.forwardFrom(5, 0x100, 4).has_value());
    EXPECT_TRUE(q.forwardFrom(5, 0x102, 2).has_value());
    EXPECT_TRUE(q.forwardFrom(5, 0x103, 1).has_value());
    // ...but a load straddling the store's end does not.
    EXPECT_FALSE(q.forwardFrom(5, 0x102, 4).has_value());
    // Nor does an adjacent word.
    EXPECT_FALSE(q.forwardFrom(5, 0x104, 4).has_value());
}

TEST(StoreQueue, PartialOverlapDoesNotForward)
{
    StoreQueue q;
    q.dispatch(1, 0x102, 2); // halfword store [0x102, 0x104)
    q.markIssued(1);
    // Word loads at 0x100 and 0x104 each overlap one end of the
    // store without being covered by it.
    EXPECT_FALSE(q.forwardFrom(5, 0x100, 4).has_value());
    EXPECT_FALSE(q.forwardFrom(5, 0x104, 4).has_value());
    // The exactly-covered halfword forwards.
    EXPECT_TRUE(q.forwardFrom(5, 0x102, 2).has_value());
}

TEST(StoreQueue, YoungestCoveringStoreWins)
{
    // With mixed widths the youngest *covering* store forwards, not
    // merely the youngest overlapping one.
    StoreQueue q;
    q.dispatch(1, 0x100, 4); // word store
    q.dispatch(4, 0x100, 1); // younger byte store over its low byte
    q.markIssued(1);
    q.markIssued(4);
    // A word load is only covered by store 1; store 4 overlaps but
    // holds just one of the four bytes. Forwarding from store 1
    // would be wrong (its low byte is stale), so the queue refuses.
    EXPECT_FALSE(q.forwardFrom(10, 0x100, 4).has_value());
    // A byte load of 0x100 is covered by both; the youngest wins.
    auto f = q.forwardFrom(10, 0x100, 1);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(*f, 4u);
}

TEST(StoreQueue, UnissuedStoresDoNotForward)
{
    StoreQueue q;
    q.dispatch(1, 0x100);
    EXPECT_FALSE(q.forwardFrom(5, 0x100).has_value());
}

TEST(StoreQueue, CommitRemovesInOrder)
{
    StoreQueue q;
    q.dispatch(1, 0x100);
    q.dispatch(2, 0x200);
    q.markIssued(1);
    q.markIssued(2);
    EXPECT_EQ(q.size(), 2u);
    q.commit(1);
    q.commit(2);
    EXPECT_EQ(q.size(), 0u);
    EXPECT_FALSE(q.forwardFrom(10, 0x100).has_value());
}

TEST(StoreQueue, ClearResets)
{
    StoreQueue q;
    q.dispatch(1, 0x100);
    q.clear();
    EXPECT_EQ(q.size(), 0u);
    EXPECT_FALSE(q.olderStoreUnissued(100));
}

TEST(StoreQueueDeathTest, ProtocolViolationsPanic)
{
    StoreQueue q;
    q.dispatch(5, 0x100);
    EXPECT_DEATH(q.dispatch(4, 0x200), "out-of-order");
    EXPECT_DEATH(q.markIssued(99), "unknown");
    EXPECT_DEATH(q.commit(5), "unissued");
}
