/**
 * @file
 * Tests of the parallel sweep runner: results must be identical for
 * any worker count (the simulator is a pure function of its config
 * and trace, and the runner must not introduce shared mutable
 * state). This suite carries the "tsan" ctest label so the
 * ThreadSanitizer preset re-runs it under race detection.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/presets.hpp"
#include "core/sweep.hpp"
#include "trace/synthetic.hpp"

using namespace cesp;
using core::SweepTask;
using uarch::SimStats;

namespace {

/** Whole-stats identity via the metrics registry: every counter,
 *  sample, and histogram bucket participates. */
std::string
fingerprint(const SimStats &s)
{
    return s.group().toJson();
}

/** A mixed task list: several organizations over two traces. */
std::vector<SweepTask>
mixedTasks(const trace::TraceBuffer &a, const trace::TraceBuffer &b)
{
    std::vector<uarch::SimConfig> configs = core::figure17Configs();
    configs.push_back(core::dependence8x8());
    configs.push_back(core::baseline16Way());

    std::vector<SweepTask> tasks;
    for (const uarch::SimConfig &cfg : configs) {
        tasks.push_back({cfg, a});
        tasks.push_back({cfg, b});
    }
    return tasks;
}

/** Plain parallel sweep through the core::run entrypoint. */
std::vector<SimStats>
sweep(const std::vector<SweepTask> &tasks, unsigned jobs)
{
    core::RunOptions opt;
    opt.jobs = jobs;
    return core::run(tasks, opt).stats;
}

/** Every config over one shared trace, like the old runSweep
 *  convenience overload. */
std::vector<SimStats>
sweep(const std::vector<uarch::SimConfig> &configs,
      const trace::TraceBuffer &buf, unsigned jobs)
{
    std::vector<SweepTask> tasks;
    for (const uarch::SimConfig &cfg : configs)
        tasks.push_back({cfg, buf});
    return sweep(tasks, jobs);
}

} // namespace

TEST(Sweep, IdenticalResultsForAnyThreadCount)
{
    trace::SyntheticParams pa;
    pa.seed = 3;
    trace::TraceBuffer a = trace::generateSynthetic(pa, 15000);
    trace::SyntheticParams pb;
    pb.seed = 8;
    pb.working_set = 256 * 1024; // cache-missing variant
    trace::TraceBuffer b = trace::generateSynthetic(pb, 15000);

    std::vector<SweepTask> tasks = mixedTasks(a, b);
    std::vector<SimStats> serial = sweep(tasks, 1);
    ASSERT_EQ(serial.size(), tasks.size());

    for (unsigned jobs : {2u, 4u, 7u}) {
        std::vector<SimStats> par = sweep(tasks, jobs);
        ASSERT_EQ(par.size(), serial.size());
        for (size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(fingerprint(par[i]), fingerprint(serial[i]))
                << "task " << i << " with " << jobs << " workers";
    }
}

TEST(Sweep, MatchesDirectSimulation)
{
    trace::SyntheticParams sp;
    sp.seed = 5;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 10000);

    std::vector<uarch::SimConfig> configs = {
        core::baseline8Way(), core::dependence8x8(),
        core::clusteredDependence2x4()};
    std::vector<SimStats> swept = sweep(configs, buf, 3);

    ASSERT_EQ(swept.size(), configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        trace::TraceCursor cur(buf);
        SimStats direct = uarch::simulate(configs[i], cur);
        EXPECT_EQ(fingerprint(swept[i]), fingerprint(direct))
            << configs[i].name;
    }
}

TEST(Sweep, CursorDoesNotDisturbOwningBuffer)
{
    trace::SyntheticParams sp;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 1000);

    // Partially consume the buffer's own cursor, run a simulation
    // through a TraceCursor view, and check the buffer's position is
    // untouched.
    trace::TraceOp op;
    ASSERT_TRUE(buf.next(op));
    ASSERT_TRUE(buf.next(op));
    const uint32_t third_pc = buf[2].pc;

    trace::TraceCursor view(buf);
    uarch::SimStats s = uarch::simulate(core::baseline8Way(), view);
    EXPECT_EQ(s.committed(), 1000u);

    ASSERT_TRUE(buf.next(op));
    EXPECT_EQ(op.pc, third_pc);
}

TEST(Sweep, MoreJobsThanTasks)
{
    trace::SyntheticParams sp;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 5000);

    std::vector<uarch::SimConfig> configs = {core::baseline8Way(),
                                             core::dependence8x8()};
    std::vector<SimStats> few = sweep(configs, buf, 16);
    std::vector<SimStats> one = sweep(configs, buf, 1);
    ASSERT_EQ(few.size(), 2u);
    for (size_t i = 0; i < few.size(); ++i)
        EXPECT_EQ(fingerprint(few[i]), fingerprint(one[i]));
}

TEST(Sweep, EmptyTaskList)
{
    std::vector<SweepTask> none;
    EXPECT_TRUE(sweep(none, 4).empty());
}

TEST(Sweep, DegenerateInputsClampDeterministically)
{
    // jobs == 0 means defaultJobs(): same results as serial, no
    // division by a zero worker count anywhere.
    trace::SyntheticParams sp;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 3000);
    std::vector<uarch::SimConfig> configs = {core::baseline8Way(),
                                             core::dependence8x8()};
    std::vector<SimStats> def = sweep(configs, buf, 0);
    std::vector<SimStats> one = sweep(configs, buf, 1);
    ASSERT_EQ(def.size(), 2u);
    for (size_t i = 0; i < def.size(); ++i)
        EXPECT_EQ(fingerprint(def[i]), fingerprint(one[i]));

    // The empty list is a no-op for every jobs value, including the
    // degenerate ones (0 would otherwise spawn defaultJobs() workers
    // with nothing to do; 65536 would try to spawn more threads than
    // tasks exist).
    std::vector<SweepTask> none;
    for (unsigned jobs : {0u, 1u, 16u, 65536u})
        EXPECT_TRUE(sweep(none, jobs).empty())
            << "jobs=" << jobs;

    // A single task swamped with workers clamps to one worker.
    std::vector<SweepTask> single = {{core::baseline8Way(), buf}};
    std::vector<SimStats> flood = sweep(single, 65536);
    ASSERT_EQ(flood.size(), 1u);
    EXPECT_EQ(fingerprint(flood[0]), fingerprint(one[0]));
}

TEST(Sweep, DefaultJobsIsPositive)
{
    EXPECT_GE(core::defaultJobs(), 1u);
}

namespace {

/** RAII install/uninstall of the sweep fault-injection hook. */
struct HookGuard
{
    explicit HookGuard(void (*hook)(size_t))
    {
        core::detail::sweep_task_hook = hook;
    }
    ~HookGuard() { core::detail::sweep_task_hook = nullptr; }
};

void
throwOnTaskThree(size_t index)
{
    if (index == 3)
        throw std::runtime_error("injected fault in task 3");
}

} // namespace

TEST(Sweep, WorkerExceptionRethrownOnCaller)
{
    // A throw inside a worker thread must not call std::terminate:
    // the runner captures the first exception, drains the remaining
    // tasks, joins, and rethrows here.
    trace::SyntheticParams sp;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 2000);
    std::vector<uarch::SimConfig> configs(8, core::baseline8Way());

    HookGuard guard(&throwOnTaskThree);
    for (unsigned jobs : {1u, 4u}) {
        try {
            sweep(configs, buf, jobs);
            FAIL() << "expected the injected fault to propagate "
                      "(jobs=" << jobs << ")";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "injected fault in task 3");
        }
    }
}

TEST(Sweep, DeprecatedWrappersDelegateToRun)
{
    // The legacy entrypoints survive as thin wrappers over core::run;
    // they must return exactly what the new API returns. This is the
    // only remaining in-tree caller, so it opts out of the
    // deprecation warning explicitly.
    trace::SyntheticParams sp;
    sp.seed = 11;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 4000);
    std::vector<SweepTask> tasks = {{core::baseline8Way(), buf},
                                    {core::dependence8x8(), buf}};
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    std::vector<SimStats> legacy = core::runSweep(tasks, 2);
    core::ShardedRun sharded =
        core::runSharded(core::baseline8Way(), buf, 3, 200, 2);
    std::vector<StatGroup> batch =
        core::runShardedBatch(tasks, 3, 200, 2);
#pragma GCC diagnostic pop

    std::vector<SimStats> fresh = sweep(tasks, 2);
    ASSERT_EQ(legacy.size(), fresh.size());
    for (size_t i = 0; i < legacy.size(); ++i)
        EXPECT_EQ(fingerprint(legacy[i]), fingerprint(fresh[i]));

    core::RunOptions opt;
    opt.jobs = 2;
    opt.shards = 3;
    opt.warmup = 200;
    core::RunResult direct = core::run(tasks, opt);
    ASSERT_EQ(batch.size(), direct.groups.size());
    for (size_t i = 0; i < batch.size(); ++i)
        EXPECT_TRUE(batch[i].sameValues(direct.groups[i]));
    ASSERT_EQ(sharded.shards.size(), 3u);
    EXPECT_TRUE(sharded.merged.sameValues(direct.groups[0]));
}

TEST(Sweep, RecoversAfterWorkerException)
{
    // The pool must wind down cleanly: a subsequent sweep on the
    // same traces works and produces correct results.
    trace::SyntheticParams sp;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 2000);
    std::vector<uarch::SimConfig> configs(8, core::baseline8Way());

    {
        HookGuard guard(&throwOnTaskThree);
        EXPECT_THROW(sweep(configs, buf, 4),
                     std::runtime_error);
    }
    std::vector<SimStats> after = sweep(configs, buf, 4);
    ASSERT_EQ(after.size(), configs.size());
    for (const SimStats &s : after)
        EXPECT_EQ(fingerprint(s), fingerprint(after[0]));
}
