/**
 * @file
 * Tests for the optional L2 level, a differential test of the cache
 * model against a reference implementation, and the machine-vs-
 * dataflow-bound invariant.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>

#include "core/machine.hpp"
#include "core/presets.hpp"
#include "common/rng.hpp"
#include "mem/cache.hpp"
#include "trace/analysis.hpp"
#include "uarch/pipeline.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::uarch;

// ---- L2 behaviour -----------------------------------------------------------

namespace {

/** Dependent loads striding through `lines` distinct cache lines. */
trace::TraceBuffer
strideLoads(int lines, uint32_t stride)
{
    trace::TraceBuffer buf;
    uint32_t pc = 0x1000;
    for (int i = 0; i < lines; ++i) {
        trace::TraceOp t;
        t.pc = pc;
        pc += 4;
        t.next_pc = pc;
        t.op = isa::Opcode::LW;
        t.cls = isa::OpClass::Load;
        t.dst = 1;
        t.src1 = static_cast<int8_t>(i == 0 ? -1 : 1);
        t.mem_addr = 0x100000 + static_cast<uint32_t>(i) * stride;
        t.mem_size = 4;
        buf.append(t);
    }
    return buf;
}

} // namespace

TEST(L2, ColdMissesPayMemoryLatency)
{
    trace::TraceBuffer buf = strideLoads(64, 4096);
    SimConfig flat;
    flat.name = "flat";
    SimConfig with_l2;
    with_l2.name = "l2";
    with_l2.l2.enabled = true;
    with_l2.l2.memory_latency = 24;

    SimStats f = simulate(flat, buf);
    SimStats l = simulate(with_l2, buf);
    // Cold misses that also miss the L2 pay 24 instead of 6 cycles.
    EXPECT_GT(l.cycles(), f.cycles() * 3);
    EXPECT_EQ(l.l2_accesses(), 64u);
    EXPECT_EQ(l.l2_misses(), 64u);
}

TEST(L2, CapacityMissesCaughtByL2)
{
    // Working set beyond L1 (32KB) but within L2 (256KB): two passes.
    // The second pass misses L1 (thrashes) but hits L2.
    trace::TraceBuffer buf;
    uint32_t pc = 0x1000;
    for (int pass = 0; pass < 2; ++pass) {
        for (int i = 0; i < 2048; ++i) { // 64KB / 32B lines
            trace::TraceOp t;
            t.pc = pc;
            pc += 4;
            t.next_pc = pc;
            t.op = isa::Opcode::LW;
            t.cls = isa::OpClass::Load;
            t.dst = static_cast<int8_t>(1 + i % 24);
            t.mem_addr = 0x100000 + static_cast<uint32_t>(i) * 32;
            t.mem_size = 4;
            buf.append(t);
        }
    }
    SimConfig cfg;
    cfg.name = "l2cap";
    cfg.l2.enabled = true;
    cfg.l2.memory_latency = 24;
    SimStats s = simulate(cfg, buf);
    EXPECT_GT(s.l2_accesses(), 2048u); // both passes miss L1
    // Second-pass accesses hit in the L2.
    EXPECT_LT(s.l2_misses(), s.l2_accesses());
    EXPECT_NEAR(static_cast<double>(s.l2_misses()), 2048.0, 64.0);
}

TEST(L2, DisabledByDefault)
{
    trace::TraceBuffer buf = strideLoads(8, 4096);
    SimStats s = simulate(SimConfig{}, buf);
    EXPECT_EQ(s.l2_accesses(), 0u);
}

TEST(L2DeathTest, MemoryLatencyMustCoverL2Hit)
{
    trace::TraceBuffer buf;
    SimConfig c;
    c.l2.enabled = true;
    c.l2.memory_latency = 2; // below the 6-cycle L2 hit
    EXPECT_EXIT(Pipeline(c, buf), ::testing::ExitedWithCode(1),
                "latency");
}

// ---- differential cache test -------------------------------------------------

namespace {

/** Reference model: per-set LRU lists over line addresses. */
class RefCache
{
  public:
    RefCache(uint32_t size, int assoc, uint32_t line)
        : assoc_(assoc), line_(line),
          sets_(size / (line * static_cast<uint32_t>(assoc)))
    {
    }

    bool
    access(uint32_t addr)
    {
        uint32_t lineaddr = addr / line_;
        uint32_t set = lineaddr % sets_;
        auto &lru = sets_lru_[set];
        for (auto it = lru.begin(); it != lru.end(); ++it) {
            if (*it == lineaddr) {
                lru.erase(it);
                lru.push_front(lineaddr);
                return true;
            }
        }
        lru.push_front(lineaddr);
        if (lru.size() > static_cast<size_t>(assoc_))
            lru.pop_back();
        return false;
    }

  private:
    int assoc_;
    uint32_t line_;
    uint32_t sets_;
    std::map<uint32_t, std::list<uint32_t>> sets_lru_;
};

} // namespace

TEST(CacheDifferential, MatchesReferenceLruModel)
{
    uarch::CacheConfig cfg;
    cfg.size_bytes = 4096;
    cfg.associativity = 2;
    cfg.line_bytes = 32;
    mem::Cache dut(cfg);
    RefCache ref(4096, 2, 32);

    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        // Mix of sequential and random accesses over 16KB.
        uint32_t addr = rng.chance(0.5)
            ? static_cast<uint32_t>(i % 4096) * 4
            : static_cast<uint32_t>(rng.below(16384)) & ~3u;
        bool ref_hit = ref.access(addr);
        bool dut_hit = dut.access(addr, rng.chance(0.3)).hit;
        ASSERT_EQ(dut_hit, ref_hit) << "access " << i << " @" << addr;
    }
}

// ---- machine <= idealized dataflow bound --------------------------------------

TEST(MachineBound, NeverExceedsFiniteWindowDataflowIpc)
{
    // The real pipeline adds front-end, branch, and memory penalties
    // on top of the idealized schedule with the same window and
    // width; it must never beat that bound.
    for (const char *wname : {"compress", "m88ksim", "vortex"}) {
        trace::TraceBuffer &buf = core::cachedWorkloadTrace(wname);
        trace::ScheduleLimits lim;
        lim.window = 64;
        lim.issue_width = 8;
        double bound = trace::dataflowSchedule(buf, lim).ipc;
        double machine =
            core::Machine(core::baseline8Way()).runTrace(buf).ipc();
        EXPECT_LE(machine, bound + 1e-9) << wname;
    }
}
