/**
 * @file
 * Unit tests for the Lagrange interpolation helpers used by the
 * calibrated delay models.
 */

#include <gtest/gtest.h>

#include "vlsi/interpolate.hpp"

using namespace cesp::vlsi;

TEST(Quad1D, ExactAtAnchors)
{
    Quad1D q({2.0, 4.0, 8.0}, {10.0, 20.0, 50.0});
    EXPECT_NEAR(q(2.0), 10.0, 1e-9);
    EXPECT_NEAR(q(4.0), 20.0, 1e-9);
    EXPECT_NEAR(q(8.0), 50.0, 1e-9);
}

TEST(Quad1D, ReproducesLinearData)
{
    // y = 3 + 2x has zero quadratic coefficient.
    Quad1D q({1.0, 2.0, 5.0}, {5.0, 7.0, 13.0});
    EXPECT_NEAR(q.coeffC(), 0.0, 1e-9);
    EXPECT_NEAR(q.coeffB(), 2.0, 1e-9);
    EXPECT_NEAR(q.coeffA(), 3.0, 1e-9);
    EXPECT_NEAR(q(10.0), 23.0, 1e-9);
}

TEST(Quad1D, ReproducesQuadraticData)
{
    // y = x^2.
    Quad1D q({1.0, 3.0, 7.0}, {1.0, 9.0, 49.0});
    EXPECT_NEAR(q(5.0), 25.0, 1e-9);
    EXPECT_NEAR(q.coeffC(), 1.0, 1e-9);
}

TEST(Quad1D, InterpolatesBetweenAnchors)
{
    Quad1D q({0.0, 1.0, 2.0}, {0.0, 1.0, 4.0}); // y = x^2
    EXPECT_NEAR(q(1.5), 2.25, 1e-9);
}

TEST(Quad1DDeathTest, DuplicateAnchorsPanic)
{
    EXPECT_DEATH(Quad1D({1.0, 1.0, 2.0}, {0.0, 0.0, 0.0}),
                 "distinct");
}

TEST(Quad2D, ExactAtAllNineAnchors)
{
    std::array<double, 3> xs = {2, 4, 8};
    std::array<double, 3> ys = {16, 32, 64};
    std::array<std::array<double, 3>, 3> zs = {{
        {10, 20, 30},
        {15, 28, 45},
        {25, 40, 70},
    }};
    Quad2D q(xs, ys, zs);
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_NEAR(q(xs[static_cast<size_t>(i)],
                          ys[static_cast<size_t>(j)]),
                        zs[static_cast<size_t>(i)]
                          [static_cast<size_t>(j)], 1e-9)
                << i << "," << j;
}

TEST(Quad2D, SeparableFunctionReproduced)
{
    // f(x, y) = x * y is a tensor-product polynomial of degree (1,1).
    std::array<double, 3> xs = {1, 2, 3};
    std::array<double, 3> ys = {1, 2, 4};
    std::array<std::array<double, 3>, 3> zs;
    for (size_t i = 0; i < 3; ++i)
        for (size_t j = 0; j < 3; ++j)
            zs[i][j] = xs[i] * ys[j];
    Quad2D q(xs, ys, zs);
    EXPECT_NEAR(q(1.5, 3.0), 4.5, 1e-9);
    EXPECT_NEAR(q(2.5, 1.5), 3.75, 1e-9);
}

TEST(Quad2D, MonotoneDataStaysOrderedAtMidpoints)
{
    // The wakeup-grid shape: increasing in both variables.
    std::array<double, 3> xs = {2, 4, 8};
    std::array<double, 3> ys = {16, 32, 64};
    std::array<std::array<double, 3>, 3> zs = {{
        {128, 150, 178.9},
        {160, 204, 239.7},
        {235, 270, 350},
    }};
    Quad2D q(xs, ys, zs);
    double prev = 0.0;
    for (double y = 16; y <= 64; y += 4) {
        double v = q(4.0, y);
        EXPECT_GT(v, prev);
        prev = v;
    }
}
