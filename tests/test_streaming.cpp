/**
 * @file
 * Tests of the streaming-observability stack: interval snapshots
 * (Pipeline::run sampling must not perturb the simulation, and the
 * delta series must sum back to the cumulative totals), the
 * JSON-lines stream writer/reader round-trip with its golden record
 * shape, the O(1)-memory callback mode of core::run (stream equals
 * batch for any worker count), the multi-format loadStatGroups
 * loader, and the compareGroups regression gate behind
 * `cesp-sim --compare`.
 *
 * This suite carries the "tsan" ctest label: the streaming callbacks
 * fire concurrently from the sweep pool's worker threads.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "core/presets.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "trace/synthetic.hpp"
#include "uarch/pipeline.hpp"

using namespace cesp;
using core::SweepTask;
using uarch::RunLimits;
using uarch::SimStats;
using uarch::StatSnapshot;

namespace {

trace::TraceBuffer
synthetic(uint64_t seed, uint64_t n)
{
    trace::SyntheticParams sp;
    sp.seed = seed;
    return trace::generateSynthetic(sp, n);
}

/** Private scratch directory, removed when the suite exits. */
std::filesystem::path g_dir;

class ScratchEnv : public ::testing::Environment
{
  public:
    void
    SetUp() override
    {
        g_dir = std::filesystem::temp_directory_path() /
            "cesp_streaming_test";
        std::filesystem::create_directories(g_dir);
    }
    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(g_dir, ec);
    }
};

const ::testing::Environment *const g_env =
    ::testing::AddGlobalTestEnvironment(new ScratchEnv);

std::string
scratchFile(const std::string &name)
{
    return (g_dir / name).string();
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

/** A tiny deterministic group for golden-record tests. */
StatGroup
tinyGroup()
{
    StatGroup g("demo", "cfg-a");
    g.addCounter("ticks", "cycles", "elapsed cycles", 40);
    g.addGauge("clock_mhz", "MHz", "estimated clock", 250.5);
    return g;
}

} // namespace

// ---------------------------------------------------------------------
// Interval sampling inside Pipeline::run

TEST(Sampling, FinalStatsBitIdenticalWithSamplingOnOrOff)
{
    trace::TraceBuffer buf = synthetic(51, 20000);
    for (const uarch::SimConfig &cfg :
         {core::baseline8Way(), core::dependence8x8(),
          core::clusteredDependence2x4()}) {
        trace::TraceCursor plain_cur(buf);
        SimStats plain = uarch::simulate(cfg, plain_cur);

        size_t snapshots = 0;
        RunLimits lim;
        lim.sample_every = 1000;
        lim.sampler = [&](const StatSnapshot &) { ++snapshots; };
        trace::TraceCursor sampled_cur(buf);
        SimStats sampled = uarch::simulate(cfg, sampled_cur, lim);

        EXPECT_EQ(snapshots, 20u) << cfg.name;
        // The acceptance contract: sampling only observes. sameValues
        // spans every counter, sample, and histogram bucket.
        EXPECT_TRUE(sampled.group().sameValues(plain.group()))
            << cfg.name << ":\n"
            << sampled.group().diff(plain.group());
    }
}

TEST(Sampling, SnapshotSeriesIsConsistent)
{
    trace::TraceBuffer buf = synthetic(52, 10000);
    std::vector<StatSnapshot> snaps;
    RunLimits lim;
    lim.sample_every = 1500;
    lim.sampler = [&](const StatSnapshot &s) { snaps.push_back(s); };
    trace::TraceCursor cur(buf);
    SimStats final = uarch::simulate(core::baseline8Way(), cur, lim);

    // 10000 commits / 1500 = 6 full intervals; the trailing partial
    // interval emits no snapshot (the end-of-run stats cover it).
    ASSERT_EQ(snaps.size(), 6u);
    uint64_t delta_cycles = 0, delta_committed = 0;
    for (size_t i = 0; i < snaps.size(); ++i) {
        const StatSnapshot &s = snaps[i];
        EXPECT_EQ(s.index, i);
        EXPECT_EQ(s.committed, (i + 1) * 1500);
        EXPECT_EQ(s.cumulative.counter("committed"), s.committed);
        EXPECT_EQ(s.cumulative.counter("cycles"), s.cycles);
        // The delta series telescopes back to the cumulative one.
        delta_cycles += s.delta.counter("cycles");
        delta_committed += s.delta.counter("committed");
        EXPECT_EQ(delta_cycles, s.cumulative.counter("cycles")) << i;
        EXPECT_EQ(delta_committed,
                  s.cumulative.counter("committed")) << i;
    }
    // Cumulative snapshots are monotone prefixes of the final stats.
    EXPECT_LE(snaps.back().cycles, final.cycles());
    EXPECT_LE(snaps.back().cumulative.counter("fetched"),
              final.fetched());
    // The first delta IS the first cumulative.
    EXPECT_TRUE(snaps[0].delta.sameValues(snaps[0].cumulative));
}

TEST(Sampling, CountsOnlyMeasuredCommitsAfterWarmup)
{
    trace::TraceBuffer buf = synthetic(53, 8000);
    std::vector<StatSnapshot> snaps;
    RunLimits lim;
    lim.warmup = 3000;
    lim.sample_every = 2000;
    lim.sampler = [&](const StatSnapshot &s) { snaps.push_back(s); };
    trace::TraceCursor cur(buf);
    SimStats s = uarch::simulate(core::baseline8Way(), cur, lim);

    // 5000 measured commits -> snapshots at 2000 and 4000.
    ASSERT_EQ(snaps.size(), 2u);
    EXPECT_EQ(snaps[0].committed, 2000u);
    EXPECT_EQ(snaps[1].committed, 4000u);
    EXPECT_EQ(s.committed(), 5000u);
    // And the warmup contract itself still holds bit-for-bit.
    trace::TraceCursor plain_cur(buf);
    RunLimits plain_lim;
    plain_lim.warmup = 3000;
    SimStats plain =
        uarch::simulate(core::baseline8Way(), plain_cur, plain_lim);
    EXPECT_TRUE(s.group().sameValues(plain.group()));
}

// ---------------------------------------------------------------------
// JSON-lines writer / reader

TEST(StatStream, GoldenRecordShape)
{
    // The golden stream record: any change to the record layout or
    // key order must be deliberate (bump the schema version when the
    // shape changes).
    std::string path = scratchFile("golden.jsonl");
    {
        StatStreamWriter w(path);
        ASSERT_TRUE(w.ok()) << w.error();
        StatStreamMeta meta;
        meta.kind = "run";
        meta.task = 3;
        EXPECT_TRUE(w.append(meta, tinyGroup()));
    }
    const char *golden =
        "{\"schema\":\"cesp.statgroup.jsonl\",\"schema_version\":1,"
        "\"seq\":0,\"kind\":\"run\",\"task\":3,\"stats\":"
        "{\"schema\":\"cesp.statgroup\",\"schema_version\":1,"
        "\"group\":\"demo\",\"label\":\"cfg-a\",\"metrics\":["
        "{\"name\":\"ticks\",\"kind\":\"counter\",\"unit\":\"cycles\","
        "\"desc\":\"elapsed cycles\",\"value\":40},"
        "{\"name\":\"clock_mhz\",\"kind\":\"gauge\",\"unit\":\"MHz\","
        "\"desc\":\"estimated clock\",\"value\":250.5}]}}\n";
    EXPECT_EQ(readAll(path), golden);
}

TEST(StatStream, RoundTripPreservesMetaAndValues)
{
    std::string path = scratchFile("roundtrip.jsonl");
    StatGroup cumulative = tinyGroup();
    StatGroup delta = tinyGroup();
    delta.counterAt(0) = 7;
    {
        StatStreamWriter w(path);
        ASSERT_TRUE(w.ok()) << w.error();
        StatStreamMeta run;
        run.kind = "run";
        run.task = 1;
        StatStreamMeta shard;
        shard.kind = "shard";
        shard.task = 1;
        shard.shard = 2;
        StatStreamMeta snap;
        snap.kind = "snapshot";
        snap.task = 0;
        snap.shard = 0;
        snap.interval = 4;
        EXPECT_TRUE(w.append(run, tinyGroup()));
        EXPECT_TRUE(w.append(shard, tinyGroup()));
        EXPECT_TRUE(w.append(snap, cumulative, &delta));
    }

    std::vector<StatStreamRecord> recs;
    std::string err;
    ASSERT_TRUE(readStatStream(readAll(path), recs, &err)) << err;
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0].seq, 0u);
    EXPECT_EQ(recs[0].kind, "run");
    EXPECT_EQ(recs[0].task, 1);
    EXPECT_EQ(recs[0].shard, -1);
    EXPECT_FALSE(recs[0].has_delta);
    EXPECT_TRUE(recs[0].stats.sameValues(tinyGroup()));
    EXPECT_EQ(recs[1].kind, "shard");
    EXPECT_EQ(recs[1].shard, 2);
    EXPECT_EQ(recs[2].kind, "snapshot");
    EXPECT_EQ(recs[2].interval, 4);
    ASSERT_TRUE(recs[2].has_delta);
    EXPECT_TRUE(recs[2].delta.sameValues(delta));
    EXPECT_EQ(recs[2].delta.counter("ticks"), 7u);
}

TEST(StatStream, MalformedLineFailsTheRead)
{
    std::vector<StatStreamRecord> recs;
    std::string err;
    EXPECT_FALSE(readStatStream("{\"schema\":\"wrong\"}\n", recs,
                                &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(readStatStream("not json\n", recs, &err));
}

TEST(StatStream, UnwritablePathReportsError)
{
    StatStreamWriter w("/nonexistent-dir/out.jsonl");
    EXPECT_FALSE(w.ok());
    EXPECT_FALSE(w.error().empty());
}

// ---------------------------------------------------------------------
// loadStatGroups: one loader for every export format

TEST(LoadStatGroups, ReadsSingleListAndStreamDocuments)
{
    StatGroup g = tinyGroup();
    std::string single = scratchFile("single.json");
    std::string list = scratchFile("list.json");
    std::string stream = scratchFile("stream.jsonl");
    std::string err;
    ASSERT_TRUE(writeTextOutput(single, g.toJson(), &err));
    ASSERT_TRUE(
        writeTextOutput(list, statGroupListJson({g, g}, {}), &err));
    {
        StatStreamWriter w(stream);
        // Arrival order scrambled: task 1 finishes before task 0, and
        // shard/snapshot records ride along. The loader must keep only
        // the "run" records and order them by task index.
        StatStreamMeta m;
        m.kind = "snapshot";
        m.task = 0;
        m.interval = 0;
        w.append(m, g);
        m = {};
        m.kind = "run";
        m.task = 1;
        w.append(m, g);
        m = {};
        m.kind = "shard";
        m.task = 0;
        m.shard = 1;
        w.append(m, g);
        StatGroup second = tinyGroup();
        second.counterAt(0) = 99;
        m = {};
        m.kind = "run";
        m.task = 0;
        w.append(m, second);
    }

    std::vector<StatGroup> out;
    ASSERT_TRUE(loadStatGroups(single, out, &err)) << err;
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].sameValues(g));

    out.clear();
    ASSERT_TRUE(loadStatGroups(list, out, &err)) << err;
    EXPECT_EQ(out.size(), 2u);

    out.clear();
    ASSERT_TRUE(loadStatGroups(stream, out, &err)) << err;
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].counter("ticks"), 99u); // task 0, despite arrival
    EXPECT_EQ(out[1].counter("ticks"), 40u); // task 1
}

TEST(LoadStatGroups, MissingFileAndGarbageFail)
{
    std::vector<StatGroup> out;
    std::string err;
    EXPECT_FALSE(
        loadStatGroups(scratchFile("nope.json"), out, &err));
    EXPECT_FALSE(err.empty());
    std::string garbage = scratchFile("garbage.json");
    ASSERT_TRUE(writeTextOutput(garbage, "not json at all", &err));
    EXPECT_FALSE(loadStatGroups(garbage, out, &err));
}

// ---------------------------------------------------------------------
// core::run streaming callbacks

TEST(RunStreaming, CallbacksMatchCollectedResultsForAnyJobs)
{
    trace::TraceBuffer a = synthetic(61, 6000);
    trace::TraceBuffer b = synthetic(62, 6000);
    std::vector<SweepTask> tasks;
    for (int i = 0; i < 6; ++i)
        tasks.push_back({i % 2 ? core::dependence8x8()
                               : core::baseline8Way(),
                         i % 2 ? b : a});

    core::RunOptions ref_opt;
    ref_opt.jobs = 1;
    core::RunResult reference = core::run(tasks, ref_opt);

    for (unsigned jobs : {1u, 4u}) {
        std::vector<StatGroup> streamed(tasks.size());
        std::vector<int> seen(tasks.size(), 0);
        std::mutex mu;
        core::RunOptions opt;
        opt.jobs = jobs;
        opt.on_result = [&](size_t task, const StatGroup &g) {
            std::lock_guard<std::mutex> lock(mu);
            streamed[task] = g;
            ++seen[task];
        };
        core::RunResult r = core::run(tasks, opt);
        for (size_t i = 0; i < tasks.size(); ++i) {
            EXPECT_EQ(seen[i], 1) << "task " << i;
            // The callback's group is the collected group is the
            // serial reference, for any worker count.
            EXPECT_TRUE(streamed[i].sameValues(r.groups[i])) << i;
            EXPECT_TRUE(
                streamed[i].sameValues(reference.groups[i])) << i;
            EXPECT_EQ(streamed[i].label(), tasks[i].cfg.name);
        }
    }
}

TEST(RunStreaming, ShardAndSnapshotCallbacksCoverThePlan)
{
    trace::TraceBuffer buf = synthetic(63, 9000);
    std::vector<SweepTask> tasks = {{core::baseline8Way(), buf},
                                    {core::dependence8x8(), buf}};
    core::RunOptions opt;
    opt.jobs = 2;
    opt.shards = 3;
    opt.warmup = 500;
    opt.sample_every = 1000;
    std::mutex mu;
    std::vector<std::vector<int>> shard_seen(
        tasks.size(), std::vector<int>(3, 0));
    size_t snapshots = 0;
    opt.on_shard = [&](size_t task, size_t shard, const SimStats &) {
        std::lock_guard<std::mutex> lock(mu);
        ++shard_seen[task][shard];
    };
    opt.on_snapshot = [&](size_t task, size_t shard,
                          const StatSnapshot &s) {
        std::lock_guard<std::mutex> lock(mu);
        ASSERT_LT(task, tasks.size());
        ASSERT_LT(shard, 3u);
        EXPECT_EQ(s.cumulative.counter("committed"), s.committed);
        ++snapshots;
    };
    core::RunResult r = core::run(tasks, opt);
    ASSERT_EQ(r.stats.size(), 6u);
    for (const auto &per_task : shard_seen)
        for (int n : per_task)
            EXPECT_EQ(n, 1);
    // 3000-commit measured windows, sampled every 1000: 3 snapshots
    // per shard, 3 shards per task, 2 tasks.
    EXPECT_EQ(snapshots, 18u);
}

TEST(RunStreaming, ThousandRunStreamingModeIsExactWithoutBuffering)
{
    // The O(1)-memory acceptance test: stream >1000 tiny runs with
    // collect_results off; every task index arrives exactly once and
    // carries exactly the stats the buffered mode would have
    // returned.
    trace::TraceBuffer buf = synthetic(64, 300);
    uarch::SimConfig cfg = core::baseline8Way();
    std::vector<SweepTask> tasks(1200, SweepTask{cfg, buf});

    core::RunOptions batch_opt;
    batch_opt.jobs = 4;
    core::RunResult batch = core::run(tasks, batch_opt);
    ASSERT_EQ(batch.groups.size(), tasks.size());

    std::vector<int> seen(tasks.size(), 0);
    size_t mismatches = 0;
    std::mutex mu;
    core::RunOptions opt;
    opt.jobs = 4;
    opt.collect_results = false;
    opt.on_result = [&](size_t task, const StatGroup &g) {
        std::lock_guard<std::mutex> lock(mu);
        ++seen[task];
        if (!g.sameValues(batch.groups[task]))
            ++mismatches;
    };
    core::RunResult r = core::run(tasks, opt);
    EXPECT_TRUE(r.stats.empty());
    EXPECT_TRUE(r.groups.empty());
    EXPECT_EQ(mismatches, 0u);
    for (size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "task " << i;
}

TEST(RunStreaming, ThrowingCallbackAbortsLikeAFailingTask)
{
    trace::TraceBuffer buf = synthetic(65, 1000);
    std::vector<SweepTask> tasks(8, SweepTask{core::baseline8Way(),
                                              buf});
    core::RunOptions opt;
    opt.jobs = 4;
    opt.on_result = [&](size_t task, const StatGroup &) {
        if (task == 5)
            throw std::runtime_error("sink exploded");
    };
    try {
        core::run(tasks, opt);
        FAIL() << "expected the callback exception to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "sink exploded");
    }
}

// ---------------------------------------------------------------------
// compareGroups: the regression gate

TEST(CompareGroups, FlagsOnlyRegressionsBeyondThreshold)
{
    StatGroup before("run", "a");
    before.addCounter("committed", "instructions", "commits", 1000);
    before.addCounter("cycles", "cycles", "cycles", 500);
    before.addDerived("ipc", "inst/cycle", "ipc", "committed",
                      "cycles");

    auto withCycles = [&](uint64_t cycles) {
        StatGroup g("run", "b");
        g.addCounter("committed", "instructions", "commits", 1000);
        g.addCounter("cycles", "cycles", "cycles", cycles);
        g.addDerived("ipc", "inst/cycle", "ipc", "committed",
                     "cycles");
        return g;
    };

    core::CompareOptions opt;
    opt.threshold = 0.02;

    // Improvement: never a regression.
    core::CompareResult up =
        core::compareGroups({before}, {withCycles(450)}, opt);
    ASSERT_EQ(up.entries.size(), 1u);
    EXPECT_TRUE(up.schema_ok);
    EXPECT_FALSE(up.regressed);
    EXPECT_GT(up.entries[0].delta, 0.0);

    // A 1% dip stays inside the 2% tolerance...
    EXPECT_FALSE(core::compareGroups({before}, {withCycles(505)}, opt)
                     .regressed);
    // ...a 9% dip does not.
    core::CompareResult down =
        core::compareGroups({before}, {withCycles(550)}, opt);
    EXPECT_TRUE(down.regressed);
    EXPECT_TRUE(down.entries[0].regressed);
    EXPECT_LT(down.entries[0].rel, -0.02);

    // lower_is_better flips the direction: fewer cycles regressing.
    core::CompareOptions cyc;
    cyc.metric = "cycles";
    cyc.threshold = 0.02;
    cyc.lower_is_better = true;
    EXPECT_TRUE(core::compareGroups({before}, {withCycles(550)}, cyc)
                    .regressed);
    EXPECT_FALSE(core::compareGroups({before}, {withCycles(450)}, cyc)
                     .regressed);
}

TEST(CompareGroups, SchemaAndPairingMismatchesClearSchemaOk)
{
    StatGroup a = tinyGroup();
    StatGroup other("demo", "cfg-b");
    other.addCounter("different", "cycles", "not the same schema", 1);

    core::CompareResult mismatch =
        core::compareGroups({a}, {other}, {});
    EXPECT_FALSE(mismatch.schema_ok);
    ASSERT_EQ(mismatch.entries.size(), 1u);
    EXPECT_FALSE(mismatch.entries[0].schema_note.empty());

    core::CompareResult counts = core::compareGroups({a, a}, {a}, {});
    EXPECT_FALSE(counts.schema_ok);
    EXPECT_FALSE(counts.error.empty());

    // A metric absent from the schema is a schema failure, not a
    // silent pass.
    core::CompareOptions opt;
    opt.metric = "ipc";
    core::CompareResult missing = core::compareGroups({a}, {a}, opt);
    EXPECT_FALSE(missing.schema_ok);
}
