/**
 * @file
 * Unit tests for the trace layer: buffer semantics, mix computation,
 * and the synthetic generator's statistical and determinism
 * properties.
 */

#include <gtest/gtest.h>

#include "trace/synthetic.hpp"
#include "trace/trace.hpp"

using namespace cesp;
using namespace cesp::trace;

TEST(TraceBuffer, AppendNextRewind)
{
    TraceBuffer buf;
    EXPECT_TRUE(buf.empty());
    TraceOp a;
    a.pc = 4;
    TraceOp b;
    b.pc = 8;
    buf.append(a);
    buf.append(b);
    EXPECT_EQ(buf.size(), 2u);

    TraceOp out;
    ASSERT_TRUE(buf.next(out));
    EXPECT_EQ(out.pc, 4u);
    ASSERT_TRUE(buf.next(out));
    EXPECT_EQ(out.pc, 8u);
    EXPECT_FALSE(buf.next(out));

    buf.rewind();
    ASSERT_TRUE(buf.next(out));
    EXPECT_EQ(out.pc, 4u);
}

TEST(TraceOp, Predicates)
{
    TraceOp t;
    t.cls = isa::OpClass::Load;
    EXPECT_TRUE(t.isLoad());
    EXPECT_FALSE(t.isStore());
    t.cls = isa::OpClass::Store;
    EXPECT_TRUE(t.isStore());
    t.cls = isa::OpClass::BranchCond;
    EXPECT_TRUE(t.isCondBranch());

    t.dst = 0;
    EXPECT_FALSE(t.hasDst()); // r0 is not a dependence
    t.dst = -1;
    EXPECT_FALSE(t.hasDst());
    t.dst = 5;
    EXPECT_TRUE(t.hasDst());
}

TEST(Synthetic, DeterministicForSameSeed)
{
    SyntheticParams p;
    p.seed = 42;
    TraceBuffer a = generateSynthetic(p, 5000);
    TraceBuffer b = generateSynthetic(p, 5000);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc) << i;
        EXPECT_EQ(a[i].cls, b[i].cls) << i;
        EXPECT_EQ(a[i].taken, b[i].taken) << i;
    }
}

TEST(Synthetic, RewindReproducesStream)
{
    SyntheticParams p;
    SyntheticTrace src(p, 1000);
    std::vector<TraceOp> first;
    TraceOp op;
    while (src.next(op))
        first.push_back(op);
    EXPECT_EQ(first.size(), 1000u);

    src.rewind();
    size_t i = 0;
    while (src.next(op)) {
        EXPECT_EQ(op.pc, first[i].pc) << i;
        EXPECT_EQ(op.cls, first[i].cls) << i;
        ++i;
    }
    EXPECT_EQ(i, 1000u);
}

TEST(Synthetic, MixMatchesParameters)
{
    SyntheticParams p;
    p.load_frac = 0.30;
    p.store_frac = 0.10;
    p.branch_frac = 0.20;
    TraceBuffer buf = generateSynthetic(p, 50000);
    TraceMix mix = computeMix(buf);
    EXPECT_NEAR(mix.frac(mix.loads), 0.30, 0.02);
    EXPECT_NEAR(mix.frac(mix.stores), 0.10, 0.02);
    EXPECT_NEAR(mix.frac(mix.cond_branches), 0.20, 0.02);
    EXPECT_NEAR(mix.frac(mix.int_alu), 0.40, 0.02);
}

TEST(Synthetic, TakenFractionOnNoisyBranches)
{
    SyntheticParams p;
    p.noisy_branch_frac = 1.0; // all branches random
    p.taken_frac = 0.7;
    TraceBuffer buf = generateSynthetic(p, 50000);
    uint64_t taken = 0, total = 0;
    for (const auto &op : buf.ops()) {
        if (op.isCondBranch()) {
            ++total;
            taken += op.taken;
        }
    }
    ASSERT_GT(total, 1000u);
    EXPECT_NEAR(static_cast<double>(taken) /
                static_cast<double>(total), 0.7, 0.03);
}

TEST(Synthetic, MemoryAddressesWithinWorkingSet)
{
    SyntheticParams p;
    p.working_set = 4096;
    TraceBuffer buf = generateSynthetic(p, 20000);
    for (const auto &op : buf.ops()) {
        if (op.isLoad() || op.isStore()) {
            EXPECT_GE(op.mem_addr, 0x10000000u);
            EXPECT_LT(op.mem_addr, 0x10000000u + 4096u);
            EXPECT_EQ(op.mem_addr % 4, 0u);
        }
    }
}

TEST(Synthetic, DependenceDistanceControlsSerialization)
{
    // Short mean dependence distance -> most sources name the most
    // recent destinations. Measure the mean distance directly.
    auto mean_dist = [](double mean_dep) {
        SyntheticParams p;
        p.mean_dep_distance = mean_dep;
        p.branch_frac = 0.0;
        p.load_frac = 0.0;
        p.store_frac = 0.0;
        TraceBuffer buf = generateSynthetic(p, 20000);
        // Reconstruct: track order of destination writes.
        std::vector<int> last_writer_pos(64, -1);
        double total = 0;
        uint64_t n = 0;
        int pos = 0;
        for (const auto &op : buf.ops()) {
            if (op.src1 > 0 && last_writer_pos[op.src1] >= 0) {
                total += pos - last_writer_pos[op.src1];
                ++n;
            }
            if (op.dst > 0)
                last_writer_pos[op.dst] = pos;
            ++pos;
        }
        return total / static_cast<double>(n);
    };
    double tight = mean_dist(1.0);
    double loose = mean_dist(12.0);
    EXPECT_LT(tight, 3.0);
    EXPECT_GT(loose, tight * 2.0);
}

TEST(Synthetic, BadParametersFatal)
{
    SyntheticParams p;
    p.load_frac = 0.6;
    p.store_frac = 0.5;
    EXPECT_EXIT(SyntheticTrace(p, 10), ::testing::ExitedWithCode(1),
                "mix");
    SyntheticParams q;
    q.mean_dep_distance = 0.5;
    EXPECT_EXIT(SyntheticTrace(q, 10), ::testing::ExitedWithCode(1),
                "dependence");
}

TEST(ComputeMix, CountsAllClasses)
{
    TraceBuffer buf;
    auto push = [&](isa::OpClass c) {
        TraceOp t;
        t.cls = c;
        buf.append(t);
    };
    push(isa::OpClass::Load);
    push(isa::OpClass::Store);
    push(isa::OpClass::BranchCond);
    push(isa::OpClass::BranchUncond);
    push(isa::OpClass::BranchInd);
    push(isa::OpClass::IntAlu);
    push(isa::OpClass::Halt);
    TraceMix m = computeMix(buf);
    EXPECT_EQ(m.total, 7u);
    EXPECT_EQ(m.loads, 1u);
    EXPECT_EQ(m.stores, 1u);
    EXPECT_EQ(m.cond_branches, 1u);
    EXPECT_EQ(m.uncond, 2u);
    EXPECT_EQ(m.int_alu, 1u);
    EXPECT_EQ(m.other, 1u);
}
