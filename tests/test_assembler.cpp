/**
 * @file
 * Unit tests for the two-pass assembler: syntax, directives, pseudo-
 * instruction expansion, symbol resolution, branch offsets, and
 * error diagnostics.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "isa/disasm.hpp"
#include "func/memory.hpp"
#include "isa/decode.hpp"

using namespace cesp;
using namespace cesp::assembler;
using cesp::isa::Opcode;

namespace {

/** Decode the n-th text instruction of a program. */
isa::Decoded
instAt(const Program &p, size_t n)
{
    func::Memory mem;
    mem.loadProgram(p);
    return isa::decode(
        mem.read32(kTextBase + static_cast<uint32_t>(n) * 4));
}

} // namespace

TEST(Assembler, MinimalProgram)
{
    auto r = assemble("main: halt\n");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.program.entry, kTextBase);
    EXPECT_EQ(r.program.segments.at(kTextBase).size(), 4u);
    EXPECT_EQ(instAt(r.program, 0).op, Opcode::HALT);
}

TEST(Assembler, EntryDefaultsToTextStartWithoutMain)
{
    auto r = assemble("start: nop\n halt\n");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.program.entry, kTextBase);
}

TEST(Assembler, CommentsAndBlankLines)
{
    auto r = assemble("# full comment\n\n  ; also comment\n"
                      "main: nop # trailing\n halt ; trailing\n");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.program.segments.at(kTextBase).size(), 8u);
}

TEST(Assembler, RTypeOperands)
{
    auto r = assemble("main: add t0, t1, t2\n halt\n");
    ASSERT_TRUE(r.ok) << r.error;
    isa::Decoded d = instAt(r.program, 0);
    EXPECT_EQ(d.op, Opcode::ADD);
    EXPECT_EQ(d.dst, 8);
    EXPECT_EQ(d.src1, 9);
    EXPECT_EQ(d.src2, 10);
}

TEST(Assembler, MemoryOperandForms)
{
    auto r = assemble(R"(
        .data
val:    .word 99
        .text
main:   lw  t0, 8(sp)
        lw  t1, (sp)
        sw  t0, -4(sp)
        halt
)");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(instAt(r.program, 0).imm, 8);
    EXPECT_EQ(instAt(r.program, 1).imm, 0);
    EXPECT_EQ(instAt(r.program, 2).imm, -4);
    EXPECT_EQ(r.program.segments.at(kTextBase).size(), 4 * 4u);
}

TEST(Assembler, BareSymbolMemOperandOutOfRangeIsError)
{
    // kDataBase (0x10000000) does not fit a signed 16-bit offset.
    auto r = assemble(R"(
        .data
big:    .word 1
        .text
main:   lw t0, big
        halt
)");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("16-bit"), std::string::npos);
}

TEST(Assembler, BranchOffsetsForwardAndBackward)
{
    auto r = assemble(R"(
main:   beq t0, t1, fwd
loop:   addi t0, t0, 1
        bne t0, t1, loop
fwd:    halt
)");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(instAt(r.program, 0).imm, 2);  // to fwd: skip 2
    EXPECT_EQ(instAt(r.program, 2).imm, -2); // back to loop
}

TEST(Assembler, BranchOutOfRangeError)
{
    std::string src = "main: beq t0, t1, far\n";
    for (int i = 0; i < 40000; ++i)
        src += " nop\n";
    src += "far: halt\n";
    auto r = assemble(src);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("range"), std::string::npos);
}

TEST(Assembler, LiExpansions)
{
    auto r = assemble(R"(
main:   li t0, 5
        li t1, -5
        li t2, 0x8001
        li t3, 0x12345678
        halt
)");
    ASSERT_TRUE(r.ok) << r.error;
    // small positive -> addi; small negative -> addi;
    // 16-bit with high bit -> ori; full 32-bit -> lui+ori.
    EXPECT_EQ(instAt(r.program, 0).op, Opcode::ADDI);
    EXPECT_EQ(instAt(r.program, 1).op, Opcode::ADDI);
    EXPECT_EQ(instAt(r.program, 2).op, Opcode::ORI);
    EXPECT_EQ(instAt(r.program, 3).op, Opcode::LUI);
    EXPECT_EQ(instAt(r.program, 4).op, Opcode::ORI);
}

TEST(Assembler, LaAlwaysTwoInstructions)
{
    auto r = assemble(R"(
        .data
x:      .word 1
        .text
main:   la t0, x
        la t1, x+8
        halt
)");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(instAt(r.program, 0).op, Opcode::LUI);
    EXPECT_EQ(instAt(r.program, 1).op, Opcode::ORI);
    // x+8 resolves with offset.
    EXPECT_EQ(instAt(r.program, 3).imm,
              static_cast<int32_t>((kDataBase + 8) & 0xffff));
}

TEST(Assembler, PseudoBranches)
{
    auto r = assemble(R"(
main:   beqz t0, out
        bnez t0, out
        bgt  t0, t1, out
        ble  t0, t1, out
        bgtu t0, t1, out
        bleu t0, t1, out
out:    halt
)");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(instAt(r.program, 0).op, Opcode::BEQ);
    EXPECT_EQ(instAt(r.program, 1).op, Opcode::BNE);
    // bgt a,b -> blt b,a: sources swapped.
    isa::Decoded d = instAt(r.program, 2);
    EXPECT_EQ(d.op, Opcode::BLT);
    EXPECT_EQ(d.src1, 9);
    EXPECT_EQ(d.src2, 8);
    EXPECT_EQ(instAt(r.program, 3).op, Opcode::BGE);
    EXPECT_EQ(instAt(r.program, 4).op, Opcode::BLTU);
    EXPECT_EQ(instAt(r.program, 5).op, Opcode::BGEU);
}

TEST(Assembler, MoveNotNegSubi)
{
    auto r = assemble(R"(
main:   move t0, t1
        not  t2, t3
        neg  t4, t5
        subi t6, t7, 3
        halt
)");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(instAt(r.program, 0).op, Opcode::ADD);
    EXPECT_EQ(instAt(r.program, 0).src2, 0);
    EXPECT_EQ(instAt(r.program, 1).op, Opcode::NOR);
    EXPECT_EQ(instAt(r.program, 2).op, Opcode::SUB);
    EXPECT_EQ(instAt(r.program, 2).src1, 0);
    EXPECT_EQ(instAt(r.program, 3).op, Opcode::ADDI);
    EXPECT_EQ(instAt(r.program, 3).imm, -3);
}

TEST(Assembler, DataDirectives)
{
    auto r = assemble(R"(
        .data
w:      .word 1, 2, -1
h:      .half 0x1234
b:      .byte 7, 'a', '\n'
s:      .asciiz "hi\n"
        .align 4
q:      .word 5
        .space 12
e:      .word 9
        .text
main:   halt
)");
    ASSERT_TRUE(r.ok) << r.error;
    const auto &sym = r.program.symbols;
    EXPECT_EQ(sym.at("w"), kDataBase);
    EXPECT_EQ(sym.at("h"), kDataBase + 12);
    EXPECT_EQ(sym.at("b"), kDataBase + 14);
    EXPECT_EQ(sym.at("s"), kDataBase + 17);
    EXPECT_EQ(sym.at("q") % 4, 0u);
    EXPECT_EQ(sym.at("e"), sym.at("q") + 4 + 12);

    func::Memory mem;
    mem.loadProgram(r.program);
    EXPECT_EQ(mem.read32(sym.at("w") + 8), 0xffffffffu);
    EXPECT_EQ(mem.read16(sym.at("h")), 0x1234u);
    EXPECT_EQ(mem.read8(sym.at("b") + 1), 'a');
    EXPECT_EQ(mem.read8(sym.at("b") + 2), '\n');
    EXPECT_EQ(mem.read8(sym.at("s")), 'h');
    EXPECT_EQ(mem.read8(sym.at("s") + 2), '\n');
    EXPECT_EQ(mem.read8(sym.at("s") + 3), 0); // NUL
}

TEST(Assembler, WordWithSymbolValues)
{
    auto r = assemble(R"(
        .data
tbl:    .word one, two
        .text
main:   halt
one:    nop
two:    nop
)");
    ASSERT_TRUE(r.ok) << r.error;
    func::Memory mem;
    mem.loadProgram(r.program);
    EXPECT_EQ(mem.read32(kDataBase), r.program.symbols.at("one"));
    EXPECT_EQ(mem.read32(kDataBase + 4), r.program.symbols.at("two"));
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    auto r = assemble("main: nop\n bogus t0\n");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("line 2"), std::string::npos);
    EXPECT_NE(r.error.find("bogus"), std::string::npos);
}

TEST(Assembler, DuplicateLabelError)
{
    auto r = assemble("x: nop\nx: nop\n");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("duplicate"), std::string::npos);
}

TEST(Assembler, UndefinedSymbolError)
{
    auto r = assemble("main: j nowhere\n");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("undefined"), std::string::npos);
}

TEST(Assembler, BadRegisterError)
{
    auto r = assemble("main: add q0, t0, t1\n");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("register"), std::string::npos);
}

TEST(Assembler, ImmediateRangeErrors)
{
    EXPECT_FALSE(assemble("main: addi t0, t1, 40000\n").ok);
    EXPECT_FALSE(assemble("main: addi t0, t1, -40000\n").ok);
    EXPECT_TRUE(assemble("main: addi t0, t1, -32768\n halt\n").ok);
    EXPECT_FALSE(assemble("main: andi t0, t1, -1\n").ok); // unsigned
    EXPECT_TRUE(assemble("main: andi t0, t1, 65535\n halt\n").ok);
}

TEST(Assembler, InstructionInDataSectionError)
{
    auto r = assemble(".data\nmain: add t0, t1, t2\n");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find(".text"), std::string::npos);
}

TEST(Assembler, UnterminatedStringError)
{
    auto r = assemble(".data\ns: .asciiz \"oops\n");
    EXPECT_FALSE(r.ok);
}

TEST(Assembler, LabelOnlyLineBindsToNextAddress)
{
    auto r = assemble(R"(
main:   nop
here:
        halt
)");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.program.symbols.at("here"), kTextBase + 4);
}

TEST(Assembler, DisassemblerRoundTripForDataOps)
{
    // Every non-control instruction's disassembly reassembles to the
    // identical encoding (control ops print absolute targets, which
    // need labels to reassemble).
    using cesp::isa::Format;
    using cesp::isa::OpClass;
    for (int i = 0;
         i < static_cast<int>(cesp::isa::Opcode::NUM_OPCODES); ++i) {
        Opcode op = static_cast<Opcode>(i);
        const cesp::isa::OpInfo &info = cesp::isa::opInfo(op);
        if (cesp::isa::isControl(info.cls))
            continue;
        // Canonical encodings: unused register fields are zero, as
        // the assembler emits them.
        uint32_t raw;
        switch (op) {
          case Opcode::LUI:
            raw = cesp::isa::encodeI(op, 5, 0, 0x10);
            break;
          case Opcode::FMVI:
            raw = cesp::isa::encodeR(op, 5, 6, 0);
            break;
          case Opcode::PUTC:
            raw = cesp::isa::encodeR(op, 0, 6, 0);
            break;
          default:
            switch (info.format) {
              case Format::R:
                raw = cesp::isa::encodeR(op, 5, 6, 7);
                break;
              case Format::I:
                raw = cesp::isa::encodeI(op, 5, 6, 0x10);
                break;
              case Format::None:
                raw = cesp::isa::encodeNone(op);
                break;
              default:
                continue;
            }
        }
        std::string text = cesp::isa::disassemble(raw, 0x1000);
        auto r = assemble("main: " + text + "\n halt\n");
        ASSERT_TRUE(r.ok) << info.mnemonic << ": " << text << ": "
                          << r.error;
        func::Memory mem;
        mem.loadProgram(r.program);
        EXPECT_EQ(mem.read32(kTextBase), raw)
            << info.mnemonic << ": " << text;
    }
}

TEST(AssemblerDeathTest, AssembleOrDieExitsOnError)
{
    EXPECT_EXIT(assembleOrDie("main: bogus\n"),
                ::testing::ExitedWithCode(1), "bogus");
}

TEST(Assembler, MoreDiagnostics)
{
    // Unbalanced memory operand.
    EXPECT_FALSE(assemble("main: lw t0, 4(sp\n").ok);
    // .align must be a power of two.
    auto r = assemble(".data\n .align 3\n");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("power"), std::string::npos);
    // li rejects symbols (la is for addresses).
    auto r2 = assemble("x: nop\nmain: li t0, x\n");
    ASSERT_FALSE(r2.ok);
    EXPECT_NE(r2.error.find("la"), std::string::npos);
    // Missing operands.
    EXPECT_FALSE(assemble("main: add t0, t1\n").ok);
    EXPECT_FALSE(assemble("main: lw t0\n").ok);
    // jr with a bad register.
    EXPECT_FALSE(assemble("main: jr 42x\n").ok);
}

TEST(Assembler, SpaceSizeLimits)
{
    EXPECT_FALSE(assemble(".data\nb: .space -4\n").ok);
    EXPECT_TRUE(assemble(".data\nb: .space 0\n.text\nmain: halt\n").ok);
}
