/**
 * @file
 * Unit tests for the common utilities: strprintf, RNG, statistics
 * accumulators, and the table printer.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/crc32.hpp"
#include "common/logging.hpp"
#include "common/parse.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace cesp;

TEST(Strprintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("x=%d", 42), "x=42");
    EXPECT_EQ(strprintf("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(Strprintf, HandlesLongStrings)
{
    std::string big(5000, 'x');
    EXPECT_EQ(strprintf("%s", big.c_str()).size(), 5000u);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(4);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(5);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng r(6);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(Sample, TracksMinMaxMeanCount)
{
    Sample s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    s.add(2.0);
    s.add(4.0);
    s.add(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Sample, SingleValue)
{
    Sample s;
    s.add(-7.5);
    EXPECT_DOUBLE_EQ(s.min(), -7.5);
    EXPECT_DOUBLE_EQ(s.max(), -7.5);
    EXPECT_DOUBLE_EQ(s.mean(), -7.5);
}

TEST(Histogram, BucketsAndOutOfRangeCounts)
{
    Histogram h(4, 1.0); // [0,1) [1,2) [2,3) [3,4)
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    h.add(100.0); // beyond the last bucket: counted as overflow
    h.add(-1.0);  // below zero: counted as underflow
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.inRange(), 3u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.4); // fractions of all samples
}

TEST(Histogram, MergeAddsBucketsAndOutOfRange)
{
    Histogram a(3, 1.0);
    a.add(0.5);
    a.add(-2.0);
    Histogram b(3, 1.0);
    b.add(0.5);
    b.add(2.5);
    b.add(7.0);
    a.merge(b);
    EXPECT_EQ(a.total(), 5u);
    EXPECT_EQ(a.bucket(0), 2u);
    EXPECT_EQ(a.bucket(2), 1u);
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_TRUE(a == a);
    EXPECT_FALSE(a == b);
}

TEST(HistogramDeath, MergeOfMismatchedShapesIsFatalWithDiagnostic)
{
    // Merging histograms of different bucket counts or widths would
    // silently misattribute samples; it must die naming both shapes
    // so the offending pair is identifiable from the log alone.
    Histogram a(3, 1.0);
    Histogram wrong_count(4, 1.0);
    EXPECT_DEATH(a.merge(wrong_count), "3 x 1.*4 x 1");
    Histogram wrong_width(3, 2.0);
    EXPECT_DEATH(a.merge(wrong_width), "shape mismatch");
}

TEST(Histogram, GrowableGrowsToTheLargestSampleSeen)
{
    Histogram h(3, 1.0, /*growable=*/true);
    h.add(0.5);
    h.add(10.5); // beyond the initial 3 buckets: grows, not overflow
    EXPECT_EQ(h.buckets(), 11u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(10), 1u);
    h.add(-1.0); // underflow still underflows
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.inRange(), 2u);
    h.reset(); // reset shrinks back to the configured base shape
    EXPECT_EQ(h.buckets(), 3u);
    EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, MergeOfDifferentlyGrownHistogramsIsExact)
{
    Histogram a(3, 1.0, true);
    a.add(0.5);
    a.add(20.5); // a grows to 21 buckets
    Histogram b(3, 1.0, true);
    b.add(0.5);
    b.add(5.5); // b grows to 6 buckets
    a.merge(b);
    EXPECT_EQ(a.buckets(), 21u);
    EXPECT_EQ(a.total(), 4u);
    EXPECT_EQ(a.bucket(0), 2u);
    EXPECT_EQ(a.bucket(5), 1u);
    EXPECT_EQ(a.bucket(20), 1u);
    // The small-into-large direction grows the destination.
    Histogram c(3, 1.0, true);
    c.add(0.5);
    c.merge(a);
    EXPECT_EQ(c.buckets(), 21u);
    EXPECT_EQ(c.bucket(0), 3u);
}

TEST(Histogram, EqualityTreatsMissingTrailingBucketsAsZero)
{
    Histogram grown(3, 1.0, true);
    grown.add(0.5);
    grown.add(9.5);
    Histogram compact(3, 1.0, true);
    compact.add(0.5);
    EXPECT_FALSE(grown == compact);
    compact.add(9.5);
    EXPECT_TRUE(grown == compact);
    // Same logical content at different physical sizes: restore a
    // copy with the trailing zeros dropped.
    Histogram trimmed(3, 1.0, true);
    trimmed.restore({1, 0, 0, 0, 0, 0, 0, 0, 0, 1}, 0, 0);
    EXPECT_TRUE(grown == trimmed);
}

TEST(Histogram, SubtractLeavesTheSamplesSinceTheSnapshot)
{
    Histogram h(3, 1.0, true);
    h.add(0.5);
    h.add(4.5);
    Histogram snap = h; // snapshot, then keep sampling
    h.add(0.5);
    h.add(12.5);
    h.add(-1.0);
    h.subtract(snap);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(4), 0u);
    EXPECT_EQ(h.bucket(12), 1u);
    EXPECT_EQ(h.underflow(), 1u);
}

TEST(HistogramDeath, MergeOfMixedGrowabilityIsFatal)
{
    // A growable and a fixed histogram of the same shape are NOT
    // mergeable: their overflow semantics differ, so the merge would
    // not be exact.
    Histogram fixed(3, 1.0);
    Histogram growable(3, 1.0, true);
    EXPECT_DEATH(fixed.merge(growable), "");
    EXPECT_DEATH(growable.merge(fixed), "");
}

TEST(Sample, MergeCombinesExtremes)
{
    Sample a;
    a.add(2.0);
    a.add(4.0);
    Sample b;
    b.add(-1.0);
    b.add(9.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.5);
    EXPECT_DOUBLE_EQ(a.min(), -1.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    Sample none;
    a.merge(none); // empty right-hand side is a no-op
    EXPECT_EQ(a.count(), 4u);
}

TEST(Histogram, MeanOfMidpoints)
{
    Histogram h(10, 2.0);
    h.add(1.0); // bucket 0, midpoint 1.0
    h.add(5.0); // bucket 2, midpoint 5.0
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Means, GeometricAndArithmetic)
{
    EXPECT_DOUBLE_EQ(geometricMean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_EQ(geometricMean({}), 0.0);
    EXPECT_EQ(arithmeticMean({}), 0.0);
}

TEST(Table, RendersAlignedRows)
{
    Table t("title");
    t.header({"name", "value"});
    t.row({"alpha", cell(1)});
    t.row({"b", cell(22.5, 1)});
    std::string s = t.render();
    EXPECT_NE(s.find("title"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22.5"), std::string::npos);
    // Header separator rules appear (at least three dashes rows).
    EXPECT_GE(std::count(s.begin(), s.end(), '\n'), 6);
}

TEST(Table, CellFormatters)
{
    EXPECT_EQ(cell(3.14159, 2), "3.14");
    EXPECT_EQ(cell(static_cast<int64_t>(-5)), "-5");
    EXPECT_EQ(cell(static_cast<uint64_t>(7)), "7");
    EXPECT_EQ(cell(0), "0");
}

TEST(Table, EmptyTableStillRenders)
{
    Table t;
    std::string s = t.render();
    EXPECT_FALSE(s.empty());
}

TEST(ParseInt, AcceptsPlainIntegers)
{
    EXPECT_EQ(parseInt("0", 0, 100), 0);
    EXPECT_EQ(parseInt("42", 0, 100), 42);
    EXPECT_EQ(parseInt("-7", -10, 10), -7);
    EXPECT_EQ(parseInt("100", 0, 100), 100); // bounds inclusive
}

TEST(ParseInt, RejectsWhatAtoiSilentlyAccepts)
{
    // atoi("x4") == 0, atoi("4x") == 4 — the bugs this replaces.
    EXPECT_FALSE(parseInt("x4", 0, 100).has_value());
    EXPECT_FALSE(parseInt("4x", 0, 100).has_value());
    EXPECT_FALSE(parseInt("", 0, 100).has_value());
    EXPECT_FALSE(parseInt(" 4", 0, 100).has_value());
    EXPECT_FALSE(parseInt("4 ", 0, 100).has_value());
    EXPECT_FALSE(parseInt("4.5", 0, 100).has_value());
    EXPECT_FALSE(parseInt("--4", -10, 10).has_value());
}

TEST(ParseInt, RejectsOutOfRange)
{
    EXPECT_FALSE(parseInt("101", 0, 100).has_value());
    EXPECT_FALSE(parseInt("-1", 0, 100).has_value());
    // Overflows long long entirely (ERANGE path).
    EXPECT_FALSE(
        parseInt("99999999999999999999", 0, 100).has_value());
    EXPECT_FALSE(
        parseInt("-99999999999999999999", -100, 100).has_value());
}

TEST(Crc32, MatchesKnownVectors)
{
    // The standard CRC-32C (Castagnoli) check value.
    EXPECT_EQ(crc32("123456789", 9), 0xE3069283u);
    EXPECT_EQ(crc32("", 0), 0x00000000u);
    // An incremental computation equals the one-shot result, for
    // every split point (the hardware path has aligned/unaligned
    // head, body, and tail phases — cross them all).
    for (size_t split = 0; split <= 9; ++split) {
        uint32_t inc = crc32("123456789", split);
        inc = crc32("123456789" + split, 9 - split, inc);
        EXPECT_EQ(inc, 0xE3069283u) << "split " << split;
    }
}

TEST(Crc32, HardwareAndPortablePathsAgree)
{
    // On x86 crc32() dispatches to the SSE4.2 instruction; it must
    // compute the same function as the table fallback for every
    // length and alignment (offset into the buffer).
    Rng rng(99);
    std::vector<uint8_t> buf(200000);
    for (auto &b : buf)
        b = static_cast<uint8_t>(rng.below(256));
    for (size_t off : {0u, 1u, 3u, 7u})
        for (size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 1000u}) {
            EXPECT_EQ(crc32(buf.data() + off, len),
                      detail::crc32Portable(buf.data() + off, len))
                << "off " << off << " len " << len;
        }
    // Lengths past the multi-stream threshold take the interleaved
    // path, whose partial CRCs are merged with a GF(2) shift
    // operator; it must still compute the same function, with and
    // without a nonzero seed, at lengths where the three streams
    // leave different tail remainders.
    for (size_t len : {24576u, 24577u, 100000u, 199999u})
        for (uint32_t seed : {0u, 0xDEADBEEFu}) {
            EXPECT_EQ(crc32(buf.data(), len, seed),
                      detail::crc32Portable(buf.data(), len, seed))
                << "len " << len << " seed " << seed;
        }
    // Chaining a small block into a large one crosses from the
    // single-stream into the multi-stream path mid-checksum.
    uint32_t chained = crc32(buf.data(), 100);
    chained = crc32(buf.data() + 100, buf.size() - 100, chained);
    EXPECT_EQ(chained, detail::crc32Portable(buf.data(), buf.size()));
}

TEST(Crc32, SensitiveToEveryByte)
{
    // Slice-by-8 processes 8-byte blocks; make sure a flip in any
    // position of a block-straddling buffer changes the sum.
    unsigned char buf[24] = {};
    for (size_t i = 0; i < sizeof(buf); ++i)
        buf[i] = static_cast<unsigned char>(i * 37 + 1);
    const uint32_t base = crc32(buf, sizeof(buf));
    for (size_t i = 0; i < sizeof(buf); ++i) {
        buf[i] ^= 0x80;
        EXPECT_NE(crc32(buf, sizeof(buf)), base) << "byte " << i;
        buf[i] ^= 0x80;
    }
    EXPECT_EQ(crc32(buf, sizeof(buf)), base);
}
