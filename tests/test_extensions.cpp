/**
 * @file
 * Tests for the extension features: pipelined wakeup+select
 * (Figure 10), incomplete local bypassing, selection policies,
 * predictor selection, the CAM rename model, and the 16-wide presets.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/presets.hpp"
#include "trace/synthetic.hpp"
#include "uarch/pipeline.hpp"
#include "vlsi/rename_cam.hpp"
#include "vlsi/rename_delay.hpp"

using namespace cesp;
using namespace cesp::uarch;

namespace {

/** Serial dependence chain of ALU ops. */
trace::TraceBuffer
serialChain(int n)
{
    trace::TraceBuffer buf;
    uint32_t pc = 0x1000;
    for (int i = 0; i < n; ++i) {
        trace::TraceOp t;
        t.pc = pc;
        pc += 4;
        t.next_pc = pc;
        t.op = isa::Opcode::ADD;
        t.cls = isa::OpClass::IntAlu;
        t.dst = 1;
        t.src1 = i == 0 ? -1 : 1;
        buf.append(t);
    }
    return buf;
}

std::map<uint64_t, uint64_t>
issueCycles(const SimConfig &cfg, trace::TraceBuffer &buf)
{
    std::map<uint64_t, uint64_t> cycles;
    Pipeline p(cfg, buf);
    p.setIssueObserver([&](const DynInst &d) {
        cycles[d.seq] = d.issue_cycle;
    });
    p.run();
    return cycles;
}

} // namespace

// ---- pipelined wakeup+select (Figure 10) -----------------------------------

class WakeupStages : public ::testing::TestWithParam<int>
{
};

TEST_P(WakeupStages, DependentIssueGapEqualsStageCount)
{
    int stages = GetParam();
    trace::TraceBuffer buf = serialChain(32);
    SimConfig cfg;
    cfg.name = "stages";
    cfg.wakeup_select_stages = stages;
    auto issue = issueCycles(cfg, buf);
    for (int i = 1; i < 32; ++i)
        EXPECT_EQ(issue[static_cast<uint64_t>(i)],
                  issue[static_cast<uint64_t>(i - 1)] +
                      static_cast<uint64_t>(stages))
            << "stage count " << stages << ", op " << i;
}

INSTANTIATE_TEST_SUITE_P(OneToThree, WakeupStages,
                         ::testing::Values(1, 2, 3));

TEST(WakeupStages, IndependentOpsUnaffected)
{
    // The bubble applies only to dependent instructions.
    trace::TraceBuffer buf;
    uint32_t pc = 0x1000;
    for (int i = 0; i < 400; ++i) {
        trace::TraceOp t;
        t.pc = pc;
        pc += 4;
        t.next_pc = pc;
        t.op = isa::Opcode::ADD;
        t.cls = isa::OpClass::IntAlu;
        t.dst = static_cast<int8_t>(1 + i % 24);
        buf.append(t);
    }
    SimConfig one;
    one.name = "s1";
    SimConfig two;
    two.name = "s2";
    two.wakeup_select_stages = 2;
    SimStats a = simulate(one, buf);
    SimStats b = simulate(two, buf);
    EXPECT_NEAR(a.ipc(), b.ipc(), 0.2);
}

// ---- incomplete local bypassing ---------------------------------------------

class LocalBypass : public ::testing::TestWithParam<int>
{
};

TEST_P(LocalBypass, DependentIssueGapGrowsWithMissingPaths)
{
    int extra = GetParam();
    trace::TraceBuffer buf = serialChain(32);
    SimConfig cfg;
    cfg.name = "bypass";
    cfg.local_bypass_extra = extra;
    auto issue = issueCycles(cfg, buf);
    for (int i = 1; i < 32; ++i)
        EXPECT_EQ(issue[static_cast<uint64_t>(i)],
                  issue[static_cast<uint64_t>(i - 1)] + 1 +
                      static_cast<uint64_t>(extra))
            << i;
}

INSTANTIATE_TEST_SUITE_P(ZeroToTwo, LocalBypass,
                         ::testing::Values(0, 1, 2));

// ---- selection policies ------------------------------------------------------

TEST(SelectPolicyTest, AllPoliciesCommitEverything)
{
    trace::SyntheticParams sp;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 20000);
    for (SelectPolicy pol :
         {SelectPolicy::OldestFirst, SelectPolicy::YoungestFirst,
          SelectPolicy::Random}) {
        SimConfig cfg;
        cfg.name = "pol";
        cfg.select_policy = pol;
        SimStats s = simulate(cfg, buf);
        EXPECT_EQ(s.committed(), 20000u);
    }
}

TEST(SelectPolicyTest, PerformanceLargelyInsensitive)
{
    // Butler & Patt's finding (paper Section 4.3).
    trace::SyntheticParams sp;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 50000);
    double ipc[3];
    int i = 0;
    for (SelectPolicy pol :
         {SelectPolicy::OldestFirst, SelectPolicy::YoungestFirst,
          SelectPolicy::Random}) {
        SimConfig cfg;
        cfg.name = "pol";
        cfg.select_policy = pol;
        ipc[i++] = simulate(cfg, buf).ipc();
    }
    double lo = std::min({ipc[0], ipc[1], ipc[2]});
    double hi = std::max({ipc[0], ipc[1], ipc[2]});
    EXPECT_LT((hi - lo) / hi, 0.15);
}

TEST(SelectPolicyTest, RandomPolicyIsDeterministic)
{
    trace::SyntheticParams sp;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 20000);
    SimConfig cfg;
    cfg.name = "rand";
    cfg.select_policy = SelectPolicy::Random;
    SimStats a = simulate(cfg, buf);
    SimStats b = simulate(cfg, buf);
    EXPECT_EQ(a.cycles(), b.cycles());
}

// ---- predictor selection ------------------------------------------------------

TEST(BpredKindTest, FactoryBuildsEachKind)
{
    BpredConfig cfg;
    cfg.kind = BpredKind::Gshare;
    EXPECT_NE(dynamic_cast<bpred::Gshare *>(
                  bpred::makePredictor(cfg).get()), nullptr);
    cfg.kind = BpredKind::Bimodal;
    EXPECT_NE(dynamic_cast<bpred::Bimodal *>(
                  bpred::makePredictor(cfg).get()), nullptr);
    cfg.kind = BpredKind::AlwaysTaken;
    EXPECT_TRUE(bpred::makePredictor(cfg)->predict(0x100));
    cfg.kind = BpredKind::NeverTaken;
    EXPECT_FALSE(bpred::makePredictor(cfg)->predict(0x100));
}

TEST(BpredKindTest, AlwaysTakenMispredictsNotTakenBranches)
{
    trace::TraceBuffer buf;
    uint32_t pc = 0x1000;
    for (int i = 0; i < 20; ++i) {
        trace::TraceOp t;
        t.pc = pc;
        pc += 4;
        t.next_pc = pc;
        if (i % 2 == 0) {
            t.op = isa::Opcode::BNE;
            t.cls = isa::OpClass::BranchCond;
            t.taken = false; // always-taken predicts wrong
        } else {
            t.op = isa::Opcode::ADD;
            t.cls = isa::OpClass::IntAlu;
            t.dst = 1;
        }
        buf.append(t);
    }
    SimConfig cfg;
    cfg.name = "at";
    cfg.bpred.kind = BpredKind::AlwaysTaken;
    SimStats s = simulate(cfg, buf);
    EXPECT_EQ(s.mispredicts(), 10u);
}

TEST(BpredKindTest, PerfectPredictionNeverStalls)
{
    trace::SyntheticParams sp;
    sp.noisy_branch_frac = 1.0;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 20000);
    SimConfig perfect;
    perfect.name = "perfect";
    perfect.bpred.perfect = true;
    SimConfig real;
    real.name = "real";
    SimStats sp1 = simulate(perfect, buf);
    SimStats sr = simulate(real, buf);
    EXPECT_EQ(sp1.mispredicts(), 0u);
    EXPECT_GT(sr.mispredicts(), 1000u);
    EXPECT_GT(sp1.ipc(), sr.ipc());
}

// ---- CAM rename model -----------------------------------------------------------

TEST(RenameCam, ComparableToRamAtDesignPoints)
{
    // Section 4.1.1: "for the design space we are interested in, the
    // performance was found to be comparable".
    vlsi::RenameDelayModel ram(vlsi::Process::um0_18);
    vlsi::RenameCamDelayModel cam(vlsi::Process::um0_18);
    double r4 = cam.totalPs(4, 80) / ram.totalPs(4);
    double r8 = cam.totalPs(8, 128) / ram.totalPs(8);
    EXPECT_GT(r4, 0.8);
    EXPECT_LT(r4, 1.2);
    EXPECT_GT(r8, 0.9);
    EXPECT_LT(r8, 1.2);
}

TEST(RenameCam, LessScalableThanRam)
{
    // CAM grows with the physical register count; the RAM does not.
    vlsi::RenameCamDelayModel cam(vlsi::Process::um0_18);
    EXPECT_GT(cam.totalPs(8, 256), cam.totalPs(8, 128) * 1.2);
    EXPECT_GT(cam.totalPs(8, 512), cam.totalPs(8, 256) * 1.2);
}

TEST(RenameCam, MonotoneInWidthAndComponentsPositive)
{
    for (vlsi::Process p : vlsi::allProcesses()) {
        vlsi::RenameCamDelayModel cam(p);
        double prev = 0.0;
        for (int iw : {2, 4, 8, 16}) {
            vlsi::RenameCamDelay d = cam.delay(iw, 128);
            EXPECT_GT(d.tag_drive, 0.0);
            EXPECT_GT(d.tag_match, 0.0);
            EXPECT_GT(d.read, 0.0);
            EXPECT_GT(d.total(), prev);
            prev = d.total();
        }
    }
}

TEST(RenameCam, ScalesWithTechnology)
{
    vlsi::RenameCamDelayModel c18(vlsi::Process::um0_18);
    vlsi::RenameCamDelayModel c8(vlsi::Process::um0_8);
    EXPECT_GT(c8.totalPs(4, 80), 3.0 * c18.totalPs(4, 80));
}

TEST(RenameCamDeathTest, RejectsBadParameters)
{
    vlsi::RenameCamDelayModel cam(vlsi::Process::um0_18);
    EXPECT_EXIT(cam.delay(0, 128), ::testing::ExitedWithCode(1),
                "issue");
    EXPECT_EXIT(cam.delay(4, 16), ::testing::ExitedWithCode(1),
                "registers");
}

// ---- 16-wide presets ---------------------------------------------------------

TEST(WidePresets, SixteenWideMachinesValidateAndRun)
{
    // Highly parallel, control-light code so the width is the
    // limiter (branch recovery otherwise caps IPC well below 16).
    trace::SyntheticParams sp;
    sp.mean_dep_distance = 30.0;
    sp.branch_frac = 0.02;
    sp.load_frac = 0.10;
    sp.store_frac = 0.05;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 30000);

    uarch::SimConfig win = core::baseline16Way();
    uarch::SimConfig dep = core::clusteredDependence4x4();
    win.bpred.perfect = true;
    dep.bpred.perfect = true;
    win.validate();
    dep.validate();

    SimStats sw = simulate(win, buf);
    SimStats sd = simulate(dep, buf);
    EXPECT_EQ(sw.committed(), 30000u);
    EXPECT_EQ(sd.committed(), 30000u);
    EXPECT_GT(sw.ipc(), 5.0); // wide machine on parallel code
    EXPECT_GT(sd.ipc(), 3.0);
    // Extra width never hurts IPC (and, per the paper's message,
    // barely helps: the win at 16 wide must come from the clock --
    // see bench/abl_cluster_scaling).
    uarch::SimConfig win8 = core::baseline8Way();
    win8.bpred.perfect = true;
    EXPECT_GE(sw.ipc() + 1e-9, simulate(win8, buf).ipc());
    EXPECT_LE(sd.ipc(), sw.ipc() + 0.01);
    // Four clusters all participate.
    int active = 0;
    for (int c = 0; c < kMaxClusters; ++c)
        active += sd.issued_per_cluster(c) > 0;
    EXPECT_EQ(active, 4);
}

// ---- in-order issue (the Section 1 "speed demon") --------------------------------

TEST(InOrderIssue, SerialChainUnchanged)
{
    trace::TraceBuffer buf = serialChain(64);
    SimConfig ooo;
    ooo.name = "ooo";
    SimConfig ino;
    ino.name = "ino";
    ino.in_order_issue = true;
    EXPECT_EQ(simulate(ooo, buf).cycles(), simulate(ino, buf).cycles());
}

TEST(InOrderIssue, IndependentOpsStillIssueWide)
{
    trace::TraceBuffer buf;
    uint32_t pc = 0x1000;
    for (int i = 0; i < 800; ++i) {
        trace::TraceOp t;
        t.pc = pc;
        pc += 4;
        t.next_pc = pc;
        t.op = isa::Opcode::ADD;
        t.cls = isa::OpClass::IntAlu;
        t.dst = static_cast<int8_t>(1 + i % 24);
        buf.append(t);
    }
    SimConfig cfg;
    cfg.name = "ino";
    cfg.in_order_issue = true;
    SimStats s = simulate(cfg, buf);
    EXPECT_GT(s.ipc(), 7.0); // still superscalar
}

TEST(InOrderIssue, StalledHeadBlocksYoungerReadyOps)
{
    // A load miss at the head: the in-order machine cannot issue the
    // independent ops behind it; the OoO machine can.
    trace::TraceBuffer buf;
    uint32_t pc = 0x1000;
    {
        trace::TraceOp t;
        t.pc = pc;
        pc += 4;
        t.next_pc = pc;
        t.op = isa::Opcode::LW;
        t.cls = isa::OpClass::Load;
        t.dst = 30;
        t.mem_addr = 0x40000;
        t.mem_size = 4;
        buf.append(t);
        trace::TraceOp u;
        u.pc = pc;
        pc += 4;
        u.next_pc = pc;
        u.op = isa::Opcode::ADD;
        u.cls = isa::OpClass::IntAlu;
        u.dst = 29;
        u.src1 = 30; // depends on the miss
        buf.append(u);
    }
    for (int i = 0; i < 64; ++i) {
        trace::TraceOp t;
        t.pc = pc;
        pc += 4;
        t.next_pc = pc;
        t.op = isa::Opcode::ADD;
        t.cls = isa::OpClass::IntAlu;
        t.dst = static_cast<int8_t>(1 + i % 20);
        buf.append(t);
    }
    SimConfig ooo;
    ooo.name = "ooo";
    SimConfig ino;
    ino.name = "ino";
    ino.in_order_issue = true;
    SimStats so = simulate(ooo, buf);
    SimStats si = simulate(ino, buf);
    EXPECT_GT(si.cycles(), so.cycles() + 3);
}

TEST(InOrderIssue, AlwaysSlowerOrEqualToOutOfOrder)
{
    trace::SyntheticParams sp;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 30000);
    SimConfig ooo;
    ooo.name = "ooo";
    SimConfig ino;
    ino.name = "ino";
    ino.in_order_issue = true;
    EXPECT_LE(simulate(ino, buf).ipc(),
              simulate(ooo, buf).ipc() + 1e-9);
}

TEST(InOrderIssueDeathTest, RequiresCentralWindowSingleCluster)
{
    trace::TraceBuffer buf;
    SimConfig c = core::clusteredDependence2x4();
    c.in_order_issue = true;
    EXPECT_EXIT(Pipeline(c, buf), ::testing::ExitedWithCode(1),
                "in-order");
}

// ---- typed functional units ------------------------------------------------------

TEST(FuMix, SymmetricDefaultUnchanged)
{
    trace::SyntheticParams sp;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 20000);
    SimConfig sym;
    sym.name = "sym";
    SimConfig typed;
    typed.name = "typed";
    typed.fu_mix = {8, 8, 8}; // generous typed mix: no new hazards
    double a = simulate(sym, buf).ipc();
    double b = simulate(typed, buf).ipc();
    EXPECT_NEAR(a, b, 0.02);
}

TEST(FuMix, BranchUnitBottleneck)
{
    // All-branch trace with a single branch unit: IPC caps at 1.
    trace::TraceBuffer buf;
    uint32_t pc = 0x1000;
    for (int i = 0; i < 2000; ++i) {
        trace::TraceOp t;
        t.pc = pc;
        pc += 4;
        t.next_pc = pc;
        t.op = isa::Opcode::BNE;
        t.cls = isa::OpClass::BranchCond;
        t.taken = false;
        buf.append(t);
    }
    SimConfig cfg;
    cfg.name = "br1";
    cfg.fu_mix = {4, 2, 1};
    SimStats s = simulate(cfg, buf);
    EXPECT_EQ(s.committed(), 2000u);
    EXPECT_LE(s.ipc(), 1.0 + 1e-9);
    EXPECT_GT(s.ipc(), 0.9);
}

TEST(FuMix, MemUnitBottleneck)
{
    trace::TraceBuffer buf;
    uint32_t pc = 0x1000;
    for (int i = 0; i < 2000; ++i) {
        trace::TraceOp t;
        t.pc = pc;
        pc += 4;
        t.next_pc = pc;
        t.op = isa::Opcode::LW;
        t.cls = isa::OpClass::Load;
        t.dst = static_cast<int8_t>(1 + i % 24);
        t.mem_addr = 0x2000;
        t.mem_size = 4;
        buf.append(t);
    }
    SimConfig cfg;
    cfg.name = "mem2";
    cfg.fu_mix = {4, 2, 1};
    cfg.ls_ports = 8; // the units, not the ports, are the limit
    SimStats s = simulate(cfg, buf);
    EXPECT_LE(s.ipc(), 2.0 + 1e-9);
    EXPECT_GT(s.ipc(), 1.8);
}

TEST(FuMixDeathTest, PartialMixRejected)
{
    trace::TraceBuffer buf;
    SimConfig c;
    c.fu_mix = {4, 0, 2}; // missing memory units
    EXPECT_EXIT(Pipeline(c, buf), ::testing::ExitedWithCode(1),
                "each");
}

// ---- ring interconnect (Section 5.6.2 / PEWs) -------------------------------------

TEST(RingInterconnect, TwoClustersMatchBroadcast)
{
    trace::SyntheticParams sp;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 20000);
    SimConfig bc = core::clusteredDependence2x4();
    SimConfig ring = core::clusteredDependence2x4();
    ring.name = "ring";
    ring.interconnect = ClusterInterconnect::Ring;
    SimStats a = simulate(bc, buf);
    SimStats b = simulate(ring, buf);
    EXPECT_EQ(a.cycles(), b.cycles()); // identical at 2 clusters
}

TEST(RingInterconnect, FourClustersRingIsSlower)
{
    trace::SyntheticParams sp;
    sp.mean_dep_distance = 10.0;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 30000);
    SimConfig bc = core::clusteredDependence4x4();
    bc.bpred.perfect = true;
    SimConfig ring = bc;
    ring.name = "ring4";
    ring.interconnect = ClusterInterconnect::Ring;
    double a = simulate(bc, buf).ipc();
    double b = simulate(ring, buf).ipc();
    EXPECT_LT(b, a); // multi-hop forwarding costs cycles
}

// ---- window compaction (Section 4.3.1) ----------------------------------------

TEST(WindowCompaction, SlotPriorityCommitsEverything)
{
    trace::SyntheticParams sp;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 20000);
    SimConfig cfg;
    cfg.name = "slot";
    cfg.window_compaction = false;
    SimStats s = simulate(cfg, buf);
    EXPECT_EQ(s.committed(), 20000u);
}

TEST(WindowCompaction, PerformanceCloseToCompacting)
{
    // Section 4.3.1: restricted compaction "so that overall
    // performance is not affected".
    trace::SyntheticParams sp;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 50000);
    SimConfig age;
    age.name = "age";
    SimConfig slot;
    slot.name = "slot";
    slot.window_compaction = false;
    double a = simulate(age, buf).ipc();
    double s = simulate(slot, buf).ipc();
    EXPECT_NEAR(s, a, 0.1 * a);
}

TEST(WindowCompactionDeathTest, OnlyCentralWindow)
{
    trace::TraceBuffer buf;
    SimConfig c;
    c.style = IssueBufferStyle::Fifos;
    c.steering = SteeringPolicy::DependenceFifo;
    c.window_compaction = false;
    EXPECT_EXIT(Pipeline(c, buf), ::testing::ExitedWithCode(1),
                "slot-priority");
}

// ---- config validation for the new knobs ---------------------------------------

TEST(ConfigValidation, RejectsBadExtensionParameters)
{
    trace::TraceBuffer buf;
    SimConfig c1;
    c1.wakeup_select_stages = 0;
    EXPECT_EXIT(Pipeline(c1, buf), ::testing::ExitedWithCode(1),
                "wakeup_select_stages");
    SimConfig c2;
    c2.local_bypass_extra = -1;
    EXPECT_EXIT(Pipeline(c2, buf), ::testing::ExitedWithCode(1),
                "bypass");
}

TEST(InOrderIssueDeathTest, RequiresOldestFirstSelection)
{
    trace::TraceBuffer buf;
    SimConfig c;
    c.in_order_issue = true;
    c.select_policy = SelectPolicy::Random;
    EXPECT_EXIT(Pipeline(c, buf), ::testing::ExitedWithCode(1),
                "oldest-first");
}

// ---- ring interconnect timing (unit level) ---------------------------------

TEST(RingInterconnect, HopLatencyOnFourClusters)
{
    // Force four serial chains into the four clusters (one per
    // cluster, via 16 chain starters exhausting every FIFO pool),
    // then time a consumer whose operand crosses a known hop count.
    auto consumer_issue = [](ClusterInterconnect ic) {
        trace::TraceBuffer buf;
        uint32_t pc = 0x1000;
        auto alu = [&](int dst, int src) {
            trace::TraceOp t;
            t.pc = pc;
            pc += 4;
            t.next_pc = pc;
            t.op = isa::Opcode::ADD;
            t.cls = isa::OpClass::IntAlu;
            t.dst = static_cast<int8_t>(dst);
            t.src1 = static_cast<int8_t>(src);
            buf.append(t);
        };
        // 9 chains of 3: chains 0..8 land in FIFOs 0..8, i.e. the
        // 9th chain (regs r9) sits in cluster 2 (4 FIFOs/cluster).
        for (int c = 0; c < 9; ++c)
            for (int i = 0; i < 3; ++i)
                alu(1 + c, i == 0 ? -1 : 1 + c);
        // Consumer of chain 1 (cluster 0) and chain 9 (cluster 2):
        // steered behind chain 1's tail into cluster 0; the other
        // operand crosses 2 ring hops (or 1 broadcast hop).
        alu(10, 1);
        const_cast<trace::TraceOp &>(buf[buf.size() - 1]).src2 = 9;

        uarch::SimConfig cfg = core::clusteredDependence4x4();
        cfg.name = "ringhop";
        cfg.interconnect = ic;
        std::map<uint64_t, uint64_t> issue;
        uarch::Pipeline p(cfg, buf);
        p.setIssueObserver([&](const DynInst &d) {
            issue[d.seq] = d.issue_cycle;
        });
        p.run();
        return issue.at(27); // the consumer
    };
    uint64_t broadcast =
        consumer_issue(ClusterInterconnect::Broadcast);
    uint64_t ring = consumer_issue(ClusterInterconnect::Ring);
    // Cluster 2 is two ring hops from cluster 0: one extra cycle
    // over the broadcast's uniform single hop.
    EXPECT_EQ(ring, broadcast + 1);
}
