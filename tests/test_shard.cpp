/**
 * @file
 * Tests of sharded trace simulation: the planShards partition
 * algebra, the warmup measurement boundary inside Pipeline::run, the
 * exactness contract (1 shard, no warmup == the monolithic run, bit
 * for bit), determinism across worker counts, and the convergence
 * property that makes sharding useful — K-shard merged IPC
 * approaches the monolithic IPC as the warmup prefix grows.
 *
 * This suite carries the "tsan" ctest label: sharded core::run fans
 * shard simulations out over the work-stealing pool, so the preset
 * re-runs it under race detection.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/presets.hpp"
#include "core/sweep.hpp"
#include "trace/synthetic.hpp"
#include "uarch/pipeline.hpp"

using namespace cesp;
using core::ShardSpec;
using core::SweepTask;
using uarch::SimStats;

namespace {

trace::TraceBuffer
synthetic(uint64_t seed, uint64_t n)
{
    trace::SyntheticParams sp;
    sp.seed = seed;
    return trace::generateSynthetic(sp, n);
}

SimStats
monolithic(const uarch::SimConfig &cfg, trace::TraceView tv,
           uint64_t warmup = 0)
{
    trace::TraceCursor cur(tv);
    uarch::RunLimits lim;
    lim.warmup = warmup;
    return uarch::simulate(cfg, cur, lim);
}

/** One (cfg, trace) pair sharded K ways through core::run: stats
 *  holds the per-shard windows in plan order, groups[0] their merge. */
core::RunResult
sharded(const uarch::SimConfig &cfg, trace::TraceView tv, unsigned k,
        uint64_t warmup, unsigned jobs)
{
    core::RunOptions opt;
    opt.jobs = jobs;
    opt.shards = k;
    opt.warmup = warmup;
    return core::run({{cfg, tv}}, opt);
}

/** Assert the plan's measured windows partition [0, count). */
void
expectPartition(const std::vector<ShardSpec> &plan, size_t count)
{
    ASSERT_FALSE(plan.empty());
    size_t expect_begin = 0;
    size_t max_len = 0, min_len = SIZE_MAX;
    for (const ShardSpec &s : plan) {
        size_t measure_begin = s.begin + s.warmup;
        EXPECT_EQ(measure_begin, expect_begin);
        ASSERT_GE(s.end, measure_begin);
        size_t len = s.end - measure_begin;
        max_len = std::max(max_len, len);
        min_len = std::min(min_len, len);
        expect_begin = s.end;
    }
    EXPECT_EQ(expect_begin, count);
    if (count) {
        EXPECT_LE(max_len - min_len, 1u);
    }
}

} // namespace

// ---------------------------------------------------------------------
// planShards

TEST(PlanShards, EvenContiguousPartition)
{
    for (size_t count : {1u, 7u, 64u, 1000u, 1001u}) {
        for (unsigned k : {1u, 2u, 3u, 8u, 63u}) {
            auto plan = core::planShards(count, k, 0);
            EXPECT_EQ(plan.size(),
                      std::min<size_t>(k ? k : 1, count));
            expectPartition(plan, count);
        }
    }
}

TEST(PlanShards, WarmupClampedToAvailablePrefix)
{
    auto plan = core::planShards(1000, 4, 300);
    ASSERT_EQ(plan.size(), 4u);
    // Shard 0 has nothing before it; shard 1's window starts at 250,
    // so only 250 records of prefix exist.
    EXPECT_EQ(plan[0].warmup, 0u);
    EXPECT_EQ(plan[0].begin, 0u);
    EXPECT_EQ(plan[1].warmup, 250u);
    EXPECT_EQ(plan[1].begin, 0u);
    EXPECT_EQ(plan[2].warmup, 300u);
    EXPECT_EQ(plan[2].begin, 200u);
    EXPECT_EQ(plan[3].warmup, 300u);
    EXPECT_EQ(plan[3].begin, 450u);
    expectPartition(plan, 1000);
}

TEST(PlanShards, DegenerateInputsClampDeterministically)
{
    // shards == 0 plans like 1.
    auto zero = core::planShards(100, 0, 0);
    ASSERT_EQ(zero.size(), 1u);
    EXPECT_EQ(zero[0].begin, 0u);
    EXPECT_EQ(zero[0].end, 100u);

    // More shards than records: one record per shard.
    auto many = core::planShards(5, 64, 0);
    ASSERT_EQ(many.size(), 5u);
    expectPartition(many, 5);

    // Empty trace: a single empty shard, not an empty plan.
    auto empty = core::planShards(0, 8, 1000);
    ASSERT_EQ(empty.size(), 1u);
    EXPECT_EQ(empty[0].begin, 0u);
    EXPECT_EQ(empty[0].end, 0u);
    EXPECT_EQ(empty[0].warmup, 0u);
}

// ---------------------------------------------------------------------
// TraceView slicing

TEST(TraceViewSlice, SharesStorageZeroCopy)
{
    trace::TraceBuffer buf = synthetic(11, 100);
    trace::TraceView whole(buf);
    trace::TraceView mid = whole.slice(40, 20);
    EXPECT_EQ(mid.count, 20u);
    EXPECT_EQ(mid.records, whole.records + 40);
    EXPECT_EQ(mid[0].pc, whole[40].pc);

    EXPECT_EQ(whole.slice(100, 0).count, 0u);
    EXPECT_EQ(whole.slice(0, 100).records, whole.records);
}

TEST(TraceViewSlice, OutOfRangeIsFatal)
{
    trace::TraceBuffer buf = synthetic(11, 10);
    trace::TraceView whole(buf);
    EXPECT_DEATH(whole.slice(0, 11), "outside");
    EXPECT_DEATH(whole.slice(11, 0), "outside");
    EXPECT_DEATH(whole.slice(6, 5), "outside");
}

TEST(TraceCursor, SeekAndPosition)
{
    trace::TraceBuffer buf = synthetic(3, 50);
    trace::TraceCursor cur{trace::TraceView(buf)};
    trace::TraceOp op;
    ASSERT_TRUE(cur.next(op));
    EXPECT_EQ(cur.position(), 1u);
    cur.seek(49);
    ASSERT_TRUE(cur.next(op));
    EXPECT_EQ(op.pc, buf[49].pc);
    EXPECT_FALSE(cur.next(op));
    cur.seek(1000); // past the end: exhausted, not an error
    EXPECT_FALSE(cur.next(op));
}

// ---------------------------------------------------------------------
// Warmup inside Pipeline::run

TEST(Warmup, ZeroWarmupIsBitIdentical)
{
    trace::TraceBuffer buf = synthetic(21, 8000);
    for (const uarch::SimConfig &cfg :
         {core::baseline8Way(), core::dependence8x8()}) {
        SimStats plain = monolithic(cfg, buf);
        SimStats warm0 = monolithic(cfg, buf, 0);
        EXPECT_TRUE(plain.group().sameValues(warm0.group()))
            << cfg.name << ":\n"
            << plain.group().diff(warm0.group());
    }
}

TEST(Warmup, MeasuresOnlyPostBoundaryCommits)
{
    trace::TraceBuffer buf = synthetic(22, 8000);
    SimStats s = monolithic(core::baseline8Way(), buf, 3000);
    EXPECT_EQ(s.committed(), 5000u);
    // The measured region is a strict suffix of the run.
    SimStats whole = monolithic(core::baseline8Way(), buf);
    EXPECT_LT(s.cycles(), whole.cycles());
    EXPECT_GT(s.cycles(), 0u);
    // Derived metrics recompute over the measured region only.
    EXPECT_NEAR(s.ipc(),
                5000.0 / static_cast<double>(s.cycles()), 1e-12);
}

TEST(Warmup, TargetBeyondTraceYieldsEmptyMeasurement)
{
    trace::TraceBuffer buf = synthetic(23, 1000);
    SimStats s = monolithic(core::baseline8Way(), buf, 5000);
    EXPECT_EQ(s.committed(), 0u);
    EXPECT_EQ(s.cycles(), 0u);
    EXPECT_EQ(s.fetched(), 0u);
}

// ---------------------------------------------------------------------
// Sharded core::run

TEST(Sharded, OneShardNoWarmupEqualsMonolithic)
{
    trace::TraceBuffer buf = synthetic(31, 10000);
    for (const uarch::SimConfig &cfg :
         {core::baseline8Way(), core::dependence8x8(),
          core::clusteredDependence2x4()}) {
        core::RunResult run = sharded(cfg, buf, 1, 0, 1);
        ASSERT_EQ(run.stats.size(), 1u);
        SimStats direct = monolithic(cfg, buf);
        // Bit-identity of the acceptance contract: sameValues spans
        // every counter, sample, and histogram bucket.
        EXPECT_TRUE(
            run.stats[0].group().sameValues(direct.group()))
            << cfg.name << ":\n"
            << run.stats[0].group().diff(direct.group());
        EXPECT_TRUE(run.groups[0].sameValues(direct.group()))
            << cfg.name;
    }
}

TEST(Sharded, MergedCommitCountIsExactForAnyShardingAndWarmup)
{
    trace::TraceBuffer buf = synthetic(32, 9001);
    for (unsigned k : {2u, 5u, 8u}) {
        for (uint64_t w : {0u, 100u, 5000u}) {
            core::RunResult run =
                sharded(core::baseline8Way(), buf, k, w, 2);
            ASSERT_EQ(run.stats.size(), k);
            // Measured windows partition the trace, so the merged
            // commit count is the whole trace regardless of K and W.
            EXPECT_EQ(run.groups[0].counter("committed"), 9001u)
                << "K=" << k << " W=" << w;
        }
    }
}

TEST(Sharded, DeterministicAcrossWorkerCounts)
{
    trace::TraceBuffer buf = synthetic(33, 12000);
    core::RunResult one =
        sharded(core::dependence8x8(), buf, 6, 500, 1);
    for (unsigned jobs : {2u, 4u}) {
        core::RunResult par =
            sharded(core::dependence8x8(), buf, 6, 500, jobs);
        ASSERT_EQ(par.stats.size(), one.stats.size());
        for (size_t i = 0; i < one.stats.size(); ++i)
            EXPECT_TRUE(par.stats[i].group().sameValues(
                one.stats[i].group()))
                << "shard " << i << " with " << jobs << " workers";
        EXPECT_TRUE(par.groups[0].sameValues(one.groups[0]));
    }
}

TEST(Sharded, BatchMatchesIndividualRuns)
{
    trace::TraceBuffer a = synthetic(34, 6000);
    trace::TraceBuffer b = synthetic(35, 6000);
    std::vector<SweepTask> pairs = {
        {core::baseline8Way(), a},
        {core::dependence8x8(), b},
    };
    core::RunOptions opt;
    opt.jobs = 2;
    opt.shards = 4;
    opt.warmup = 200;
    std::vector<StatGroup> merged =
        std::move(core::run(pairs, opt).groups);
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged[0].label(), core::baseline8Way().name);
    EXPECT_EQ(merged[1].label(), core::dependence8x8().name);
    for (size_t p = 0; p < pairs.size(); ++p) {
        core::RunResult solo =
            sharded(pairs[p].cfg, pairs[p].trace, 4, 200, 1);
        EXPECT_TRUE(merged[p].sameValues(solo.groups[0])) << p;
    }
}

TEST(Sharded, EmptyTraceYieldsZeroStats)
{
    core::RunResult run = sharded(
        core::baseline8Way(), trace::TraceView(), 8, 1000, 2);
    ASSERT_EQ(run.stats.size(), 1u);
    EXPECT_EQ(run.groups[0].counter("committed"), 0u);
}

// ---------------------------------------------------------------------
// The property that justifies the whole mechanism: sampled (sharded,
// warmed-up) simulation converges on the monolithic IPC.

TEST(ShardedConvergence, WarmupBoundsIpcError)
{
    trace::TraceBuffer buf = synthetic(41, 60000);
    const uarch::SimConfig cfg = core::baseline8Way();
    const double mono = monolithic(cfg, buf).ipc();
    ASSERT_GT(mono, 0.0);

    // Cold sharding errs badly (each window restarts bpred/caches/
    // rename from scratch; measured here, 6-21% depending on K). The
    // slowest-warming state is the data cache, which needs tens of
    // thousands of accesses to refill — so the warmed run uses a
    // warmup sized for that, not just for the branch predictor.
    for (unsigned k : {2u, 4u, 8u}) {
        double cold = std::fabs(
            sharded(cfg, buf, k, 0, 2)
                .groups[0].value("ipc") - mono) / mono;
        double warm = std::fabs(
            sharded(cfg, buf, k, 20000, 2)
                .groups[0].value("ipc") - mono) / mono;
        // 2% is the acceptance tolerance for the bundled workloads.
        EXPECT_LT(warm, 0.02) << "K=" << k;
        // Warming up must improve on cold sharding outright (the
        // margin is wide: cold is several times the tolerance).
        EXPECT_LT(warm, cold) << "K=" << k;
    }
}
