/**
 * @file
 * Property-based pipeline tests: random-but-valid machine
 * configurations crossed with varied synthetic traces, asserting the
 * invariants that must hold for *every* configuration — the
 * simulator equivalent of the delay models' trend tests.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "trace/synthetic.hpp"
#include "uarch/pipeline.hpp"

using namespace cesp;
using namespace cesp::uarch;

namespace {

/** Deterministically generate the i-th random valid configuration. */
SimConfig
randomConfig(uint64_t seed)
{
    Rng rng(seed);
    SimConfig c;
    c.name = "fuzz-" + std::to_string(seed);

    int style = static_cast<int>(rng.below(5));
    switch (style) {
      case 0: // central window, single cluster
        break;
      case 1: // dependence FIFOs, single cluster
        c.style = IssueBufferStyle::Fifos;
        c.steering = SteeringPolicy::DependenceFifo;
        c.fifos_per_cluster = 2 + static_cast<int>(rng.below(14));
        c.fifo_depth = 2 + static_cast<int>(rng.below(14));
        break;
      case 2: // clustered dependence FIFOs
        c.style = IssueBufferStyle::Fifos;
        c.steering = SteeringPolicy::DependenceFifo;
        c.num_clusters = 2;
        c.fifos_per_cluster = 2 + static_cast<int>(rng.below(6));
        c.fifo_depth = 2 + static_cast<int>(rng.below(14));
        c.fus_per_cluster = 4;
        break;
      case 3: // per-cluster windows, random or window-fifo steering
        c.style = IssueBufferStyle::PerClusterWindow;
        c.num_clusters = 2;
        c.window_size = 8 << rng.below(3);
        c.fus_per_cluster = 4;
        c.steering = rng.chance(0.5) ? SteeringPolicy::Random
                                     : SteeringPolicy::WindowFifo;
        break;
      default: // exec-driven central window
        c.steering = SteeringPolicy::ExecutionDriven;
        c.num_clusters = 2;
        c.fus_per_cluster = 4;
        break;
    }

    if (c.style == IssueBufferStyle::CentralWindow)
        c.window_size = 8 << rng.below(5); // 8..128

    c.fetch_width = 2 << rng.below(3);     // 2..8
    c.rename_width = c.fetch_width;
    c.issue_width = 2 << rng.below(3);
    c.retire_width = 4 << rng.below(3);
    c.max_inflight = 32 << rng.below(3);   // 32..128
    c.frontend_latency = 1 + static_cast<int>(rng.below(4));
    c.fetch_queue = c.fetch_width * 3;
    c.ls_ports = 1 + static_cast<int>(rng.below(4));
    c.inter_cluster_extra = static_cast<int>(rng.below(3));
    c.local_bypass_extra = static_cast<int>(rng.below(2));
    c.wakeup_select_stages = 1 + static_cast<int>(rng.below(2));
    c.select_policy = static_cast<SelectPolicy>(rng.below(3));
    if (c.style == IssueBufferStyle::CentralWindow)
        c.window_compaction = rng.chance(0.7);
    c.random_seed = seed;
    return c;
}

trace::TraceBuffer
randomTrace(uint64_t seed)
{
    Rng rng(seed * 977);
    trace::SyntheticParams p;
    p.seed = seed;
    p.load_frac = 0.05 + 0.25 * rng.uniform();
    p.store_frac = 0.02 + 0.15 * rng.uniform();
    p.branch_frac = 0.05 + 0.2 * rng.uniform();
    p.mean_dep_distance = 1.0 + 14.0 * rng.uniform();
    p.taken_frac = 0.3 + 0.5 * rng.uniform();
    p.noisy_branch_frac = rng.uniform();
    p.working_set = 1024u << rng.below(8);
    return trace::generateSynthetic(p, 15000);
}

} // namespace

class PipelineFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(PipelineFuzz, InvariantsHoldForRandomConfig)
{
    uint64_t seed = GetParam();
    SimConfig cfg = randomConfig(seed);
    ASSERT_NO_FATAL_FAILURE(cfg.validate());
    trace::TraceBuffer buf = randomTrace(seed);

    SimStats s = simulate(cfg, buf);

    // Conservation: everything fetched flows through every stage.
    EXPECT_EQ(s.committed(), buf.size()) << cfg.name;
    EXPECT_EQ(s.fetched(), s.committed()) << cfg.name;
    EXPECT_EQ(s.dispatched(), s.committed()) << cfg.name;
    EXPECT_EQ(s.issued(), s.committed()) << cfg.name;

    // Per-cluster issue accounting sums to the total. Reads go
    // through the const accessor, which returns zero for clusters
    // beyond the configured count (no registry row exists for them).
    const SimStats &cs = s;
    uint64_t per_cluster = 0;
    for (int c = 0; c < kMaxClusters; ++c) {
        if (c >= cfg.num_clusters) {
            EXPECT_EQ(cs.issued_per_cluster(c), 0u) << cfg.name;
        }
        per_cluster += cs.issued_per_cluster(c);
    }
    EXPECT_EQ(per_cluster, s.issued()) << cfg.name;

    // IPC bounded by the narrowest machine width.
    double width = std::min({cfg.fetch_width, cfg.issue_width,
                             cfg.retire_width});
    EXPECT_LE(s.ipc(), width + 1e-9) << cfg.name;
    EXPECT_GT(s.ipc(), 0.0) << cfg.name;

    // Branch accounting.
    EXPECT_LE(s.mispredicts(), s.cond_branches()) << cfg.name;

    // Single-cluster machines never use inter-cluster bypasses.
    if (cfg.num_clusters == 1) {
        EXPECT_EQ(s.intercluster_bypasses(), 0u) << cfg.name;
    }
    EXPECT_LE(s.intercluster_bypasses(), s.committed()) << cfg.name;

    // Histograms cover every simulated cycle.
    EXPECT_EQ(s.issue_sizes().total(), s.cycles()) << cfg.name;
    EXPECT_EQ(s.buffer_occupancy().total(), s.cycles()) << cfg.name;

    // Determinism.
    SimStats again = simulate(cfg, buf);
    EXPECT_EQ(again.cycles(), s.cycles()) << cfg.name;
    EXPECT_EQ(again.intercluster_bypasses(), s.intercluster_bypasses())
        << cfg.name;
}

INSTANTIATE_TEST_SUITE_P(FortySeeds, PipelineFuzz,
                         ::testing::Range<uint64_t>(1, 41));

TEST(PipelineFuzzExtra, TightResourceCornerCases)
{
    // Deliberately hostile shapes that stress stall paths.
    trace::SyntheticParams sp;
    sp.mean_dep_distance = 2.0;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 8000);

    {
        SimConfig c;
        c.name = "tiny-window";
        c.window_size = 2;
        SimStats s = simulate(c, buf);
        EXPECT_EQ(s.committed(), 8000u);
    }
    {
        SimConfig c;
        c.name = "one-fifo";
        c.style = IssueBufferStyle::Fifos;
        c.steering = SteeringPolicy::DependenceFifo;
        c.fifos_per_cluster = 1;
        c.fifo_depth = 1;
        SimStats s = simulate(c, buf);
        EXPECT_EQ(s.committed(), 8000u);
        EXPECT_LE(s.ipc(), 1.0 + 1e-9);
    }
    {
        SimConfig c;
        c.name = "min-regs";
        c.phys_int_regs = 33; // a single rename in flight per class
        c.phys_fp_regs = 33;
        SimStats s = simulate(c, buf);
        EXPECT_EQ(s.committed(), 8000u);
    }
    {
        SimConfig c;
        c.name = "one-port";
        c.ls_ports = 1;
        SimStats s = simulate(c, buf);
        EXPECT_EQ(s.committed(), 8000u);
    }
    {
        SimConfig c;
        c.name = "tiny-rob";
        c.max_inflight = 4;
        c.window_size = 4;
        c.fetch_queue = 8;
        SimStats s = simulate(c, buf);
        EXPECT_EQ(s.committed(), 8000u);
    }
}
