/**
 * @file
 * Unit tests for the FIFO set: allocation, push/pop/remove,
 * recycling, the two-free-list cluster policy (Section 5.5), and
 * tail queries used by the steering heuristic.
 */

#include <gtest/gtest.h>

#include "uarch/fifos.hpp"

using namespace cesp::uarch;

TEST(FifoSet, ShapeAndClusters)
{
    FifoSet f(2, 4, 8);
    EXPECT_EQ(f.numFifos(), 8);
    EXPECT_EQ(f.depth(), 8);
    EXPECT_EQ(f.clusterOf(0), 0);
    EXPECT_EQ(f.clusterOf(3), 0);
    EXPECT_EQ(f.clusterOf(4), 1);
    EXPECT_EQ(f.clusterOf(7), 1);
    EXPECT_EQ(f.freeCount(0), 4);
    EXPECT_EQ(f.freeCount(1), 4);
}

TEST(FifoSet, AllocatePushPop)
{
    FifoSet f(1, 8, 8);
    int id = f.allocate();
    ASSERT_GE(id, 0);
    EXPECT_TRUE(f.allocated(id));
    EXPECT_TRUE(f.empty(id));
    f.push(id, 10);
    f.push(id, 11);
    EXPECT_EQ(f.head(id), 10u);
    EXPECT_TRUE(f.isTail(id, 11));
    EXPECT_FALSE(f.isTail(id, 10));
    f.popHead(id);
    EXPECT_EQ(f.head(id), 11u);
    f.popHead(id);
    // Recycled on empty.
    EXPECT_FALSE(f.allocated(id));
    EXPECT_EQ(f.freeCount(0), 8);
}

TEST(FifoSet, FullDetection)
{
    FifoSet f(1, 2, 3);
    int id = f.allocate();
    f.push(id, 1);
    f.push(id, 2);
    EXPECT_FALSE(f.full(id));
    f.push(id, 3);
    EXPECT_TRUE(f.full(id));
}

TEST(FifoSet, RemoveFromMiddleConceptualMode)
{
    FifoSet f(1, 4, 4);
    int id = f.allocate();
    f.push(id, 5);
    f.push(id, 6);
    f.push(id, 7);
    f.remove(id, 6);
    EXPECT_EQ(f.head(id), 5u);
    EXPECT_TRUE(f.isTail(id, 7));
    f.remove(id, 5);
    f.remove(id, 7);
    EXPECT_FALSE(f.allocated(id)); // recycled
}

TEST(FifoSet, AllocationExhaustion)
{
    FifoSet f(1, 2, 4);
    int a = f.allocate();
    int b = f.allocate();
    EXPECT_GE(a, 0);
    EXPECT_GE(b, 0);
    EXPECT_NE(a, b);
    f.push(a, 1);
    f.push(b, 2);
    EXPECT_EQ(f.allocate(), -1);
    // Draining one FIFO makes it available again.
    f.popHead(a);
    EXPECT_EQ(f.allocate(), a);
}

TEST(FifoSet, TwoFreeListPolicyStaysOnCurrentCluster)
{
    // Section 5.5: consecutive allocations come from the current
    // cluster's pool until it empties, then switch.
    FifoSet f(2, 2, 4);
    int f1 = f.allocate();
    f.push(f1, 1);
    int f2 = f.allocate();
    f.push(f2, 2);
    EXPECT_EQ(f.clusterOf(f1), 0);
    EXPECT_EQ(f.clusterOf(f2), 0);
    int f3 = f.allocate();
    f.push(f3, 3);
    EXPECT_EQ(f.clusterOf(f3), 1); // cluster 0 exhausted
    int f4 = f.allocate();
    f.push(f4, 4);
    EXPECT_EQ(f.clusterOf(f4), 1);
    EXPECT_EQ(f.allocate(), -1);
}

TEST(FifoSet, CurrentClusterFollowsLastAllocation)
{
    FifoSet f(2, 2, 4);
    int f1 = f.allocate();
    f.push(f1, 1);
    int f2 = f.allocate();
    f.push(f2, 2); // cluster 0 now empty
    int f3 = f.allocate();
    f.push(f3, 3); // switched to cluster 1
    // Free a cluster-0 FIFO; current should remain cluster 1.
    f.popHead(f1);
    int f5 = f.allocate();
    EXPECT_EQ(f.clusterOf(f5), 1);
}

TEST(FifoSet, AllocateRespectsClusterFilter)
{
    FifoSet f(2, 2, 4);
    int id = f.allocate([](int c) { return c == 1; });
    ASSERT_GE(id, 0);
    EXPECT_EQ(f.clusterOf(id), 1);
    // No cluster acceptable -> -1.
    EXPECT_EQ(f.allocate([](int) { return false; }), -1);
}

TEST(FifoSet, HeadSeqsAcrossFifos)
{
    FifoSet f(2, 2, 4);
    int a = f.allocate();
    f.push(a, 30);
    f.push(a, 31);
    int b = f.allocate();
    f.push(b, 20);
    auto heads = f.headSeqs();
    ASSERT_EQ(heads.size(), 2u);
    EXPECT_TRUE((heads[0] == 30 && heads[1] == 20) ||
                (heads[0] == 20 && heads[1] == 30));
}

TEST(FifoSet, IsTailFalseForAbsentSeq)
{
    FifoSet f(1, 1, 4);
    int id = f.allocate();
    f.push(id, 1);
    EXPECT_FALSE(f.isTail(id, 99));
}

TEST(FifoSet, ClearResetsEverything)
{
    FifoSet f(2, 2, 4);
    int id = f.allocate();
    f.push(id, 1);
    f.clear();
    EXPECT_EQ(f.freeCount(0), 2);
    EXPECT_EQ(f.freeCount(1), 2);
    EXPECT_FALSE(f.allocated(id));
}

TEST(FifoSetDeathTest, MisusePanics)
{
    FifoSet f(1, 2, 2);
    EXPECT_DEATH(f.head(0), "empty");
    EXPECT_DEATH(f.push(0, 1), "unallocated");
    int id = f.allocate();
    f.push(id, 5);
    EXPECT_DEATH(f.push(id, 4), "out-of-order");
    f.push(id, 6);
    EXPECT_DEATH(f.push(id, 7), "full");
    EXPECT_DEATH(f.remove(id, 99), "absent");
    EXPECT_DEATH(f.clusterOf(9), "bad fifo");
}
