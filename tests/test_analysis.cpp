/**
 * @file
 * Tests for the trace-analysis module (dataflow scheduling,
 * dependence statistics) and the binary trace file format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/analysis.hpp"
#include "trace/synthetic.hpp"
#include "trace/tracefile.hpp"

using namespace cesp;
using namespace cesp::trace;

namespace {

TraceOp
aluOp(int dst, int src1 = -1, int src2 = -1)
{
    TraceOp t;
    t.op = isa::Opcode::ADD;
    t.cls = isa::OpClass::IntAlu;
    t.dst = static_cast<int8_t>(dst);
    t.src1 = static_cast<int8_t>(src1);
    t.src2 = static_cast<int8_t>(src2);
    return t;
}

} // namespace

TEST(DataflowSchedule, EmptyTrace)
{
    TraceBuffer buf;
    auto r = dataflowSchedule(buf);
    EXPECT_EQ(r.instructions, 0u);
    EXPECT_EQ(r.cycles, 0u);
}

TEST(DataflowSchedule, SerialChainHasIpcOne)
{
    TraceBuffer buf;
    buf.append(aluOp(1));
    for (int i = 0; i < 99; ++i)
        buf.append(aluOp(1, 1));
    auto r = dataflowSchedule(buf);
    EXPECT_EQ(r.cycles, 100u);
    EXPECT_DOUBLE_EQ(r.ipc, 1.0);
}

TEST(DataflowSchedule, IndependentOpsAreOneCycle)
{
    TraceBuffer buf;
    for (int i = 0; i < 100; ++i)
        buf.append(aluOp(1 + i % 24));
    auto r = dataflowSchedule(buf);
    EXPECT_EQ(r.cycles, 1u);
    EXPECT_DOUBLE_EQ(r.ipc, 100.0);
}

TEST(DataflowSchedule, IssueWidthCapsIpc)
{
    TraceBuffer buf;
    for (int i = 0; i < 100; ++i)
        buf.append(aluOp(1 + i % 24));
    ScheduleLimits lim;
    lim.issue_width = 4;
    auto r = dataflowSchedule(buf, lim);
    EXPECT_EQ(r.cycles, 25u);
    EXPECT_DOUBLE_EQ(r.ipc, 4.0);
}

TEST(DataflowSchedule, WindowSerializesDistantParallelism)
{
    // Two interleaved serial chains of length 50: unbounded window
    // -> IPC 2; window of 2 -> still 2 (neighbors are in different
    // chains); window of 1 -> in-order, IPC ~1.
    TraceBuffer buf;
    buf.append(aluOp(1));
    buf.append(aluOp(2));
    for (int i = 0; i < 49; ++i) {
        buf.append(aluOp(1, 1));
        buf.append(aluOp(2, 2));
    }
    EXPECT_NEAR(dataflowSchedule(buf).ipc, 2.0, 0.1);
    ScheduleLimits w1;
    w1.window = 1;
    EXPECT_NEAR(dataflowSchedule(buf, w1).ipc, 1.0, 0.05);
}

TEST(DataflowSchedule, MemoryDependencesRespected)
{
    // store to X (after a serial chain), then a load from X: with
    // memory deps the load waits; without, it issues at cycle 1.
    TraceBuffer buf;
    buf.append(aluOp(1));
    for (int i = 0; i < 9; ++i)
        buf.append(aluOp(1, 1));
    TraceOp st;
    st.op = isa::Opcode::SW;
    st.cls = isa::OpClass::Store;
    st.src1 = 1;
    st.mem_addr = 0x100;
    st.mem_size = 4;
    buf.append(st);
    TraceOp ld;
    ld.op = isa::Opcode::LW;
    ld.cls = isa::OpClass::Load;
    ld.dst = 5;
    ld.mem_addr = 0x100;
    ld.mem_size = 4;
    buf.append(ld);

    auto with = dataflowSchedule(buf);
    ScheduleLimits no_mem;
    no_mem.memory_deps = false;
    auto without = dataflowSchedule(buf, no_mem);
    EXPECT_GT(with.cycles, without.cycles);
    EXPECT_EQ(with.cycles, 12u); // chain 10 + store + load
}

TEST(DataflowSchedule, LimitsOnlyReduceIpc)
{
    SyntheticParams sp;
    TraceBuffer buf = generateSynthetic(sp, 20000);
    double unlimited = dataflowSchedule(buf).ipc;
    ScheduleLimits lim;
    lim.window = 64;
    double windowed = dataflowSchedule(buf, lim).ipc;
    lim.issue_width = 8;
    double both = dataflowSchedule(buf, lim).ipc;
    EXPECT_LE(windowed, unlimited + 1e-9);
    EXPECT_LE(both, windowed + 1e-9);
    EXPECT_LE(both, 8.0 + 1e-9);
}

TEST(DataflowSchedule, LargerWindowNeverHurts)
{
    SyntheticParams sp;
    TraceBuffer buf = generateSynthetic(sp, 20000);
    double prev = 0.0;
    for (int ws : {4, 8, 16, 32, 64, 128}) {
        ScheduleLimits lim;
        lim.window = ws;
        double ipc = dataflowSchedule(buf, lim).ipc;
        EXPECT_GE(ipc, prev - 1e-9) << ws;
        prev = ipc;
    }
}

TEST(AnalyzeDependences, SerialChain)
{
    TraceBuffer buf;
    buf.append(aluOp(1));
    for (int i = 0; i < 9; ++i)
        buf.append(aluOp(1, 1));
    auto d = analyzeDependences(buf);
    EXPECT_EQ(d.instructions, 10u);
    EXPECT_DOUBLE_EQ(d.distance.mean(), 1.0);
    EXPECT_NEAR(d.adjacent_frac, 0.9, 1e-9);
    EXPECT_NEAR(d.independent_frac, 0.1, 1e-9);
    EXPECT_EQ(d.critical_path, 10u);
}

TEST(AnalyzeDependences, InterleavedChainsHaveDistanceTwo)
{
    TraceBuffer buf;
    buf.append(aluOp(1));
    buf.append(aluOp(2));
    for (int i = 0; i < 20; ++i) {
        buf.append(aluOp(1, 1));
        buf.append(aluOp(2, 2));
    }
    auto d = analyzeDependences(buf);
    EXPECT_DOUBLE_EQ(d.distance.mean(), 2.0);
    EXPECT_DOUBLE_EQ(d.adjacent_frac, 0.0);
    EXPECT_EQ(d.critical_path, 21u);
}

TEST(AnalyzeDependences, SyntheticMeanTracksParameter)
{
    SyntheticParams sp;
    sp.mean_dep_distance = 8.0;
    sp.branch_frac = 0.0;
    sp.load_frac = 0.0;
    sp.store_frac = 0.0;
    TraceBuffer buf = generateSynthetic(sp, 30000);
    auto d = analyzeDependences(buf);
    EXPECT_NEAR(d.distance.mean(), 8.0, 2.0);
}

// ---- trace file I/O ----------------------------------------------------------

TEST(TraceFile, RoundTripsAllFields)
{
    SyntheticParams sp;
    TraceBuffer buf = generateSynthetic(sp, 5000);
    std::string path =
        (std::filesystem::temp_directory_path() /
         "cesp_test_trace.trc").string();
    ASSERT_TRUE(saveTrace(buf, path));

    TraceBuffer loaded;
    ASSERT_TRUE(loadTrace(path, loaded));
    ASSERT_EQ(loaded.size(), buf.size());
    for (size_t i = 0; i < buf.size(); ++i) {
        EXPECT_EQ(loaded[i].pc, buf[i].pc) << i;
        EXPECT_EQ(loaded[i].next_pc, buf[i].next_pc) << i;
        EXPECT_EQ(loaded[i].mem_addr, buf[i].mem_addr) << i;
        EXPECT_EQ(loaded[i].op, buf[i].op) << i;
        EXPECT_EQ(loaded[i].cls, buf[i].cls) << i;
        EXPECT_EQ(loaded[i].dst, buf[i].dst) << i;
        EXPECT_EQ(loaded[i].src1, buf[i].src1) << i;
        EXPECT_EQ(loaded[i].src2, buf[i].src2) << i;
        EXPECT_EQ(loaded[i].mem_size, buf[i].mem_size) << i;
        EXPECT_EQ(loaded[i].taken, buf[i].taken) << i;
    }
    std::remove(path.c_str());
}

TEST(TraceFile, MissingFileFails)
{
    TraceBuffer out;
    EXPECT_FALSE(loadTrace("/nonexistent/path/x.trc", out));
}

TEST(TraceFile, CorruptMagicFails)
{
    std::string path =
        (std::filesystem::temp_directory_path() /
         "cesp_bad_trace.trc").string();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTATRACE-------", f);
    std::fclose(f);
    TraceBuffer out;
    EXPECT_FALSE(loadTrace(path, out));
    std::remove(path.c_str());
}

TEST(TraceFile, TruncatedFileFails)
{
    SyntheticParams sp;
    TraceBuffer buf = generateSynthetic(sp, 100);
    std::string path =
        (std::filesystem::temp_directory_path() /
         "cesp_trunc_trace.trc").string();
    ASSERT_TRUE(saveTrace(buf, path));
    std::filesystem::resize_file(path, 16 + 50 * 20 - 3);
    TraceBuffer out;
    EXPECT_FALSE(loadTrace(path, out));
    std::remove(path.c_str());
}

TEST(TraceFile, EmptyTraceRoundTrips)
{
    TraceBuffer buf;
    std::string path =
        (std::filesystem::temp_directory_path() /
         "cesp_empty_trace.trc").string();
    ASSERT_TRUE(saveTrace(buf, path));
    TraceBuffer out;
    ASSERT_TRUE(loadTrace(path, out));
    EXPECT_EQ(out.size(), 0u);
    std::remove(path.c_str());
}
