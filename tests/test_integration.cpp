/**
 * @file
 * Integration tests: run the benchmark workloads through every
 * machine organization and assert the paper's cross-configuration
 * findings at the shape level (who wins, roughly by how much), plus
 * the combined Section 5.5 result. These are the claims EXPERIMENTS.md
 * records.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/machine.hpp"
#include "core/presets.hpp"
#include "core/report.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

namespace {

/** One shared run of every (config, workload) pair. */
class IntegrationData
{
  public:
    static IntegrationData &
    get()
    {
        static IntegrationData d;
        return d;
    }

    const uarch::SimStats &
    stats(const std::string &config, const std::string &workload) const
    {
        return stats_.at(config).at(workload);
    }

    double
    ipcRatio(const std::string &config,
             const std::string &workload) const
    {
        return stats(config, workload).ipc() /
            stats("1-cluster.1window", workload).ipc();
    }

    double
    meanIpcRatio(const std::string &config) const
    {
        double sum = 0.0;
        int n = 0;
        for (const auto &w : workloads::workloadNames()) {
            sum += ipcRatio(config, w);
            ++n;
        }
        return sum / n;
    }

  private:
    IntegrationData()
    {
        std::vector<uarch::SimConfig> configs = figure17Configs();
        configs.push_back(dependence8x8());
        for (const auto &cfg : configs) {
            Machine m(cfg);
            for (const auto &w : workloads::workloadNames())
                stats_[cfg.name][w] = m.runWorkload(w);
        }
    }

    std::map<std::string, std::map<std::string, uarch::SimStats>>
        stats_;
};

} // namespace

TEST(Integration, BaselineIpcInPlausibleSuperscalarRange)
{
    // Figure 13's baseline bars sit between ~2 and ~4 IPC.
    auto &d = IntegrationData::get();
    for (const auto &w : workloads::workloadNames()) {
        double ipc = d.stats("1-cluster.1window", w).ipc();
        EXPECT_GT(ipc, 1.0) << w;
        EXPECT_LT(ipc, 8.0) << w;
    }
}

TEST(Integration, Figure13DependenceBasedNearBaseline)
{
    // Paper: within 5% for five of seven, worst 8% (li). Our
    // synthetic kernels keep the shape (most benchmarks unaffected)
    // but the most parallel kernels (vortex/perl) lose up to ~16% to
    // FIFO-pool exhaustion: every benchmark within 18%, at least
    // five of seven within 5%, mean within 8%.
    auto &d = IntegrationData::get();
    int within5 = 0;
    for (const auto &w : workloads::workloadNames()) {
        double r = d.ipcRatio("1-cluster.fifos.dispatch_steer", w);
        EXPECT_GT(r, 0.82) << w;
        EXPECT_LT(r, 1.02) << w;
        if (r > 0.95)
            ++within5;
    }
    EXPECT_GE(within5, 5);
    EXPECT_GT(d.meanIpcRatio("1-cluster.fifos.dispatch_steer"), 0.92);
}

TEST(Integration, Figure15ClusteredDependenceDegradesModestly)
{
    // Paper: average 6.3% IPC degradation, worst ~12%.
    auto &d = IntegrationData::get();
    for (const auto &w : workloads::workloadNames()) {
        double r = d.ipcRatio("2-cluster.fifos.dispatch_steer", w);
        EXPECT_GT(r, 0.78) << w;
        EXPECT_LT(r, 1.02) << w;
    }
    double mean = d.meanIpcRatio("2-cluster.fifos.dispatch_steer");
    EXPECT_GT(mean, 0.85);
    EXPECT_LT(mean, 0.99);
}

TEST(Integration, Figure17RandomSteeringIsWorst)
{
    // Paper: 17-26% degradation, consistently the worst organization.
    auto &d = IntegrationData::get();
    double random = d.meanIpcRatio("2-cluster.windows.random_steer");
    EXPECT_LT(random,
              d.meanIpcRatio("2-cluster.fifos.dispatch_steer"));
    EXPECT_LT(random,
              d.meanIpcRatio("2-cluster.windows.dispatch_steer"));
    EXPECT_LT(random,
              d.meanIpcRatio("2-cluster.1window.exec_steer"));
    EXPECT_LT(random, 0.90); // at least ~10% degradation on average
}

TEST(Integration, Figure17ExecDrivenNearIdeal)
{
    // Paper: within 6% of the ideal central-window machine. Our
    // branchiest kernel (go) loses ~13% to the per-cluster FU split;
    // assert within 15% everywhere and within 8% on average.
    auto &d = IntegrationData::get();
    for (const auto &w : workloads::workloadNames())
        EXPECT_GT(d.ipcRatio("2-cluster.1window.exec_steer", w),
                  0.85) << w;
    EXPECT_GT(d.meanIpcRatio("2-cluster.1window.exec_steer"), 0.92);
}

TEST(Integration, Figure17DispatchSteeredWindowsCompetitive)
{
    auto &d = IntegrationData::get();
    double win = d.meanIpcRatio("2-cluster.windows.dispatch_steer");
    EXPECT_GT(win, 0.85);
}

TEST(Integration, Figure17BypassFrequencyAnticorrelatesWithIpc)
{
    // Paper: organizations with more inter-cluster traffic commit
    // fewer instructions per cycle; random steering is the extreme.
    auto &d = IntegrationData::get();
    auto mean_bypass = [&](const std::string &cfg) {
        double sum = 0.0;
        int n = 0;
        for (const auto &w : workloads::workloadNames()) {
            sum += d.stats(cfg, w).interClusterPct();
            ++n;
        }
        return sum / n;
    };
    double random = mean_bypass("2-cluster.windows.random_steer");
    double fifos = mean_bypass("2-cluster.fifos.dispatch_steer");
    double exec = mean_bypass("2-cluster.1window.exec_steer");
    EXPECT_GT(random, fifos);
    EXPECT_GT(random, exec);
    EXPECT_GT(random, 15.0); // paper: up to ~35%
    EXPECT_LT(exec, fifos);  // greedy issue-time choice minimizes it
}

TEST(Integration, IdealMachineHasNoInterClusterTraffic)
{
    auto &d = IntegrationData::get();
    for (const auto &w : workloads::workloadNames())
        EXPECT_EQ(d.stats("1-cluster.1window", w)
                      .intercluster_bypasses(), 0u) << w;
}

TEST(Integration, ClusteredVariantsDoNotBeatIdeal)
{
    auto &d = IntegrationData::get();
    for (const auto &cfg :
         {"2-cluster.fifos.dispatch_steer",
          "2-cluster.windows.dispatch_steer",
          "2-cluster.1window.exec_steer",
          "2-cluster.windows.random_steer"}) {
        for (const auto &w : workloads::workloadNames())
            EXPECT_LE(d.ipcRatio(cfg, w), 1.005) << cfg << " " << w;
    }
}

TEST(Integration, Section55SpeedupStudy)
{
    SpeedupStudy s = runSpeedupStudy(vlsi::Process::um0_18);
    EXPECT_NEAR(s.clock_ratio, 1.2526, 0.001);
    ASSERT_EQ(s.entries.size(), 7u);
    // Paper: 10-22% speedup per benchmark, 16% average. Our IPC
    // ratios differ; assert every benchmark gains and the mean gain
    // is substantial.
    for (const auto &e : s.entries) {
        EXPECT_GT(e.speedup, 1.0) << e.workload;
        EXPECT_LT(e.speedup, 1.3) << e.workload;
    }
    EXPECT_GT(s.mean_speedup, 1.08);
    EXPECT_LT(s.mean_speedup, 1.25);
}

TEST(Integration, MispredictionRatesAreSane)
{
    auto &d = IntegrationData::get();
    for (const auto &w : workloads::workloadNames()) {
        const auto &s = d.stats("1-cluster.1window", w);
        EXPECT_GT(s.cond_branches(), 1000u) << w;
        EXPECT_LT(s.mispredictRate(), 0.35) << w;
    }
}

TEST(Integration, CacheBehaviourIsSane)
{
    auto &d = IntegrationData::get();
    for (const auto &w : workloads::workloadNames()) {
        const auto &s = d.stats("1-cluster.1window", w);
        EXPECT_GT(s.dcache_accesses(), 1000u) << w;
        EXPECT_LT(s.dcacheMissRate(), 0.35) << w;
    }
}

TEST(Integration, MachineRunProgramEndToEnd)
{
    Machine m(baseline8Way());
    auto s = m.runProgram(R"(
main:   li  t0, 0
        li  t1, 100
loop:   addi t0, t0, 1
        blt t0, t1, loop
        halt
)");
    EXPECT_GT(s.committed(), 200u);
    EXPECT_GT(s.ipc(), 0.5);
}
