/**
 * @file
 * Calibration and property tests for the delay models: every number
 * the paper prints must be reproduced, and the stated trends must
 * hold across the whole parameter space.
 */

#include <gtest/gtest.h>

#include "vlsi/bypass_delay.hpp"
#include "vlsi/clock.hpp"
#include "vlsi/rename_delay.hpp"
#include "vlsi/reservation_delay.hpp"
#include "vlsi/select_delay.hpp"
#include "vlsi/wakeup_delay.hpp"

using namespace cesp::vlsi;

// ---- Table 2 calibration -------------------------------------------------

struct Table2Row
{
    Process tech;
    int iw;
    int ws;
    double rename;
    double wakeup_select;
    double bypass;
};

class Table2Test : public ::testing::TestWithParam<Table2Row>
{
};

TEST_P(Table2Test, ReproducesPaperNumbers)
{
    const Table2Row &r = GetParam();
    RenameDelayModel rn(r.tech);
    WakeupDelayModel wk(r.tech);
    SelectDelayModel sl(r.tech);
    BypassDelayModel bp(r.tech);
    EXPECT_NEAR(rn.totalPs(r.iw), r.rename, 0.05);
    EXPECT_NEAR(wk.totalPs(r.iw, r.ws) + sl.totalPs(r.ws),
                r.wakeup_select, 0.05);
    EXPECT_NEAR(bp.totalPs(r.iw), r.bypass, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable2, Table2Test,
    ::testing::Values(
        Table2Row{Process::um0_8, 4, 32, 1577.9, 2903.7, 184.9},
        Table2Row{Process::um0_8, 8, 64, 1710.5, 3369.4, 1056.4},
        Table2Row{Process::um0_35, 4, 32, 627.2, 1248.4, 184.9},
        Table2Row{Process::um0_35, 8, 64, 726.6, 1484.8, 1056.4},
        Table2Row{Process::um0_18, 4, 32, 351.0, 578.0, 184.9},
        Table2Row{Process::um0_18, 8, 64, 427.9, 724.0, 1056.4}));

// ---- Rename model (Section 4.1, Figure 3) --------------------------------

class RenameSweep : public ::testing::TestWithParam<Process>
{
};

TEST_P(RenameSweep, ComponentsPositiveAndTotalConsistent)
{
    RenameDelayModel m(GetParam());
    for (int iw = 1; iw <= 16; ++iw) {
        RenameDelay d = m.delay(iw);
        EXPECT_GT(d.decode, 0.0) << iw;
        EXPECT_GT(d.wordline, 0.0) << iw;
        EXPECT_GT(d.bitline, 0.0) << iw;
        EXPECT_GT(d.senseamp, 0.0) << iw;
        EXPECT_NEAR(d.total(),
                    d.decode + d.wordline + d.bitline + d.senseamp,
                    1e-9);
    }
}

TEST_P(RenameSweep, MonotoneInIssueWidth)
{
    RenameDelayModel m(GetParam());
    for (int iw = 2; iw <= 16; ++iw)
        EXPECT_GT(m.totalPs(iw), m.totalPs(iw - 1)) << iw;
}

TEST_P(RenameSweep, BitlineGrowsFasterThanWordline)
{
    RenameDelayModel m(GetParam());
    double wl = m.delay(8).wordline - m.delay(2).wordline;
    double bl = m.delay(8).bitline - m.delay(2).bitline;
    EXPECT_GT(bl, wl);
}

INSTANTIATE_TEST_SUITE_P(AllTech, RenameSweep,
                         ::testing::ValuesIn(allProcesses()));

TEST(RenameTrend, BitlineIncreaseWorsensWithSmallerFeature)
{
    // Section 4.1.3: 37% at 0.8um rising to 53% at 0.18um.
    auto growth = [](Process p) {
        RenameDelayModel m(p);
        double b2 = m.delay(2).bitline;
        double b8 = m.delay(8).bitline;
        return (b8 - b2) / b2;
    };
    EXPECT_NEAR(growth(Process::um0_8), 0.37, 0.02);
    EXPECT_NEAR(growth(Process::um0_18), 0.53, 0.02);
    EXPECT_GT(growth(Process::um0_35), growth(Process::um0_8));
    EXPECT_LT(growth(Process::um0_35), growth(Process::um0_18));
}

TEST(RenameTrend, DelayShrinksWithFeatureSize)
{
    RenameDelayModel m8(Process::um0_8), m35(Process::um0_35),
        m18(Process::um0_18);
    for (int iw : {2, 4, 8}) {
        EXPECT_GT(m8.totalPs(iw), m35.totalPs(iw));
        EXPECT_GT(m35.totalPs(iw), m18.totalPs(iw));
    }
}

TEST(RenameDependenceCheck, HiddenAtPaperWidthsEmergesAt16)
{
    // Section 4.1.1: for issue widths 2, 4, and 8 the dependence
    // check is faster than the map-table access and hides behind it.
    for (Process p : allProcesses()) {
        RenameDelayModel m(p);
        for (int iw : {2, 4, 8})
            EXPECT_TRUE(m.dependenceCheckHidden(iw))
                << technology(p).name << " " << iw;
        EXPECT_FALSE(m.dependenceCheckHidden(16))
            << technology(p).name;
    }
}

TEST(RenameDependenceCheck, QuadraticGrowth)
{
    RenameDelayModel m(Process::um0_18);
    double d2 = m.dependenceCheckPs(2);
    double d4 = m.dependenceCheckPs(4);
    double d8 = m.dependenceCheckPs(8);
    // Increments grow: comparator count is quadratic in the group.
    EXPECT_GT(d8 - d4, d4 - d2);
}

TEST(RenameDeathTest, RejectsOutOfRangeWidth)
{
    RenameDelayModel m(Process::um0_18);
    EXPECT_EXIT(m.delay(0), ::testing::ExitedWithCode(1), "issue");
    EXPECT_EXIT(m.delay(17), ::testing::ExitedWithCode(1), "issue");
}

// ---- Wakeup model (Section 4.2, Figures 5 and 6) --------------------------

class WakeupSweep : public ::testing::TestWithParam<Process>
{
};

TEST_P(WakeupSweep, MonotoneInWindowAndWidth)
{
    WakeupDelayModel m(GetParam());
    for (int iw : {2, 4, 8}) {
        for (int ws = 16; ws <= 64; ws += 8)
            EXPECT_GT(m.totalPs(iw, ws), m.totalPs(iw, ws - 8))
                << iw << " " << ws;
    }
    for (int ws : {16, 32, 64}) {
        EXPECT_GT(m.totalPs(4, ws), m.totalPs(2, ws));
        EXPECT_GT(m.totalPs(8, ws), m.totalPs(4, ws));
    }
}

TEST_P(WakeupSweep, ComponentsPositive)
{
    WakeupDelayModel m(GetParam());
    for (int iw : {2, 4, 8}) {
        for (int ws = 8; ws <= 128; ws *= 2) {
            WakeupDelay d = m.delay(iw, ws);
            EXPECT_GE(d.tag_drive, 0.0);
            EXPECT_GT(d.tag_match, 0.0);
            EXPECT_GT(d.match_or, 0.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllTech, WakeupSweep,
                         ::testing::ValuesIn(allProcesses()));

TEST(WakeupTrend, IssueWidthGrowthAt64Entries)
{
    // Section 4.2.3: +34% from 2- to 4-way, +46% from 4- to 8-way.
    WakeupDelayModel m(Process::um0_18);
    double w2 = m.totalPs(2, 64);
    double w4 = m.totalPs(4, 64);
    double w8 = m.totalPs(8, 64);
    EXPECT_NEAR((w4 - w2) / w2, 0.34, 0.01);
    EXPECT_NEAR((w8 - w4) / w4, 0.46, 0.01);
}

TEST(WakeupTrend, WireFractionGrowsAsFeatureShrinks)
{
    // Figure 6: tag drive + match share rises from ~52% to ~65%.
    auto frac = [](Process p) {
        WakeupDelay d = WakeupDelayModel(p).delay(8, 64);
        return (d.tag_drive + d.tag_match) / d.total();
    };
    EXPECT_NEAR(frac(Process::um0_8), 0.52, 0.01);
    EXPECT_NEAR(frac(Process::um0_18), 0.65, 0.01);
    EXPECT_GT(frac(Process::um0_35), frac(Process::um0_8));
    EXPECT_LT(frac(Process::um0_35), frac(Process::um0_18));
}

TEST(WakeupTrend, QuadraticWindowTermStrongerAtWiderIssue)
{
    // Tag drive's quadratic window dependence matters at 8-way: the
    // second difference over window size is larger than at 2-way.
    WakeupDelayModel m(Process::um0_18);
    auto second_diff = [&](int iw) {
        return (m.totalPs(iw, 64) - m.totalPs(iw, 32)) -
            (m.totalPs(iw, 32) - m.totalPs(iw, 16));
    };
    EXPECT_GT(second_diff(8), second_diff(2));
}

TEST(WakeupDeathTest, RejectsBadParameters)
{
    WakeupDelayModel m(Process::um0_18);
    EXPECT_EXIT(m.delay(0, 32), ::testing::ExitedWithCode(1), "issue");
    EXPECT_EXIT(m.delay(4, 4), ::testing::ExitedWithCode(1),
                "window");
    EXPECT_EXIT(m.delay(4, 256), ::testing::ExitedWithCode(1),
                "window");
}

// ---- Selection model (Section 4.3, Figure 8) -------------------------------

TEST(Select, LevelsAreCeilLog4)
{
    EXPECT_EQ(SelectDelayModel::levels(2), 1);
    EXPECT_EQ(SelectDelayModel::levels(4), 1);
    EXPECT_EQ(SelectDelayModel::levels(5), 2);
    EXPECT_EQ(SelectDelayModel::levels(16), 2);
    EXPECT_EQ(SelectDelayModel::levels(17), 3);
    EXPECT_EQ(SelectDelayModel::levels(32), 3);
    EXPECT_EQ(SelectDelayModel::levels(64), 3);
    EXPECT_EQ(SelectDelayModel::levels(65), 4);
    EXPECT_EQ(SelectDelayModel::levels(128), 4);
}

TEST(Select, EqualDelayFor32And64)
{
    for (Process p : allProcesses()) {
        SelectDelayModel m(p);
        EXPECT_DOUBLE_EQ(m.totalPs(32), m.totalPs(64));
    }
}

TEST(Select, SubDoublingGrowthAcrossLevelBoundaries)
{
    // Section 4.3.3: the root delay is size-independent, so adding a
    // level grows the delay by less than 100%.
    for (Process p : allProcesses()) {
        SelectDelayModel m(p);
        EXPECT_LT(m.totalPs(32) / m.totalPs(16), 2.0);
        EXPECT_LT(m.totalPs(128) / m.totalPs(64), 2.0);
        EXPECT_GT(m.totalPs(32), m.totalPs(16));
        EXPECT_GT(m.totalPs(128), m.totalPs(64));
    }
}

TEST(Select, PureLogicScalesWithFeature)
{
    // All components are logic delays; ratios track feature size.
    SelectDelayModel m8(Process::um0_8), m18(Process::um0_18);
    EXPECT_NEAR(m8.totalPs(64) / m18.totalPs(64), 2254.0 / 374.0,
                0.01);
}

TEST(Select, ComponentBreakdownConsistent)
{
    SelectDelayModel m(Process::um0_18);
    SelectDelay d = m.delay(64);
    EXPECT_DOUBLE_EQ(d.total(),
                     d.request_prop + d.root + d.grant_prop);
    EXPECT_GT(d.root, 0.0);
    // One level (window <= 4): only the root remains.
    SelectDelay tiny = m.delay(4);
    EXPECT_DOUBLE_EQ(tiny.request_prop, 0.0);
    EXPECT_DOUBLE_EQ(tiny.grant_prop, 0.0);
}

TEST(SelectDeathTest, RejectsTinyWindow)
{
    EXPECT_EXIT(SelectDelayModel::levels(1),
                ::testing::ExitedWithCode(1), "window");
}

// ---- Bypass model (Section 4.4, Table 1) -----------------------------------

TEST(Bypass, Table1WireLengths)
{
    EXPECT_DOUBLE_EQ(BypassDelayModel::wireLengthLambda(4), 20500.0);
    EXPECT_DOUBLE_EQ(BypassDelayModel::wireLengthLambda(8), 49000.0);
}

TEST(Bypass, Table1Delays)
{
    for (Process p : allProcesses()) {
        BypassDelayModel m(p);
        EXPECT_NEAR(m.totalPs(4), 184.9, 0.5);
        EXPECT_NEAR(m.totalPs(8), 1056.4, 3.0);
    }
}

TEST(Bypass, GrowsSuperQuadratically)
{
    BypassDelayModel m(Process::um0_18);
    // Length is quadratic-ish in width, delay quadratic in length.
    EXPECT_GT(m.totalPs(8) / m.totalPs(4), 4.0);
    EXPECT_GT(m.totalPs(16) / m.totalPs(8), 4.0);
}

TEST(Bypass, PathCountFormula)
{
    // 2 * IW^2 * S paths (Section 4.4).
    EXPECT_EQ(BypassDelayModel::numBypassPaths(4, 2), 64);
    EXPECT_EQ(BypassDelayModel::numBypassPaths(8, 2), 256);
    EXPECT_EQ(BypassDelayModel::numBypassPaths(8, 3), 384);
    EXPECT_EQ(BypassDelayModel::numBypassPaths(1, 0), 0);
}

// ---- Reservation table (Section 5.3, Table 4) ------------------------------

TEST(Reservation, Table4Numbers)
{
    ReservationDelayModel m(Process::um0_18);
    EXPECT_NEAR(m.totalPs(4, 80), 192.1, 0.1);
    EXPECT_NEAR(m.totalPs(8, 128), 251.7, 0.1);
}

TEST(Reservation, TableEntries)
{
    EXPECT_EQ(ReservationDelayModel::tableEntries(80), 10);
    EXPECT_EQ(ReservationDelayModel::tableEntries(128), 16);
    EXPECT_EQ(ReservationDelayModel::tableEntries(1), 1);
    EXPECT_EQ(ReservationDelayModel::tableEntries(9), 2);
}

TEST(Reservation, MuchFasterThanCamWakeup)
{
    // Section 5.3: for both widths, the reservation-table access is
    // smaller than the wakeup delay of a 4-way 32-entry window.
    ReservationDelayModel resv(Process::um0_18);
    WakeupDelayModel wake(Process::um0_18);
    EXPECT_LT(resv.totalPs(4, 80), wake.totalPs(4, 32));
    EXPECT_LT(resv.totalPs(8, 128), wake.totalPs(4, 32) * 2);
    // Also smaller than the corresponding rename delay.
    RenameDelayModel rn(Process::um0_18);
    EXPECT_LT(resv.totalPs(4, 80), rn.totalPs(4));
    EXPECT_LT(resv.totalPs(8, 128), rn.totalPs(8));
}

TEST(Reservation, ScalesAcrossTechnologies)
{
    ReservationDelayModel m18(Process::um0_18), m8(Process::um0_8);
    EXPECT_GT(m8.totalPs(4, 80), m18.totalPs(4, 80) * 3.0);
}

// ---- Clock estimator (Sections 4.5, 5.3, 5.5) ------------------------------

TEST(Clock, WindowIsCriticalAt4Wide018)
{
    ClockEstimator est(Process::um0_18);
    ClockConfig cfg;
    cfg.issue_width = 4;
    cfg.window_size = 32;
    StageDelays d = est.delays(cfg);
    EXPECT_EQ(d.criticalStage(), "window");
    EXPECT_NEAR(d.criticalPs(), 578.0, 0.1);
}

TEST(Clock, BypassWorstAt8WideIsNotCriticalButLarge)
{
    // Table 2: at 8-way the bypass (1056.4) exceeds wakeup+select
    // (724.0) in 0.18um.
    ClockEstimator est(Process::um0_18);
    ClockConfig cfg;
    cfg.issue_width = 8;
    cfg.window_size = 64;
    StageDelays d = est.delays(cfg);
    EXPECT_EQ(d.criticalStage(), "bypass");
    EXPECT_GT(d.bypass, d.window());
}

TEST(Clock, DependenceFifoMakesRenameCritical)
{
    // Section 5.3: with window logic reduced, rename becomes the
    // critical stage of a 4-way machine.
    ClockEstimator est(Process::um0_18);
    ClockConfig cfg;
    cfg.org = IssueOrganization::DependenceFifos;
    cfg.issue_width = 4;
    cfg.fifos_per_cluster = 4;
    cfg.phys_regs = 80;
    StageDelays d = est.delays(cfg);
    EXPECT_EQ(d.criticalStage(), "rename");
}

TEST(Clock, Paper39PercentRenameSlack)
{
    RenameDelayModel rn(Process::um0_18);
    WakeupDelayModel wk(Process::um0_18);
    SelectDelayModel sl(Process::um0_18);
    double window = wk.totalPs(4, 32) + sl.totalPs(32);
    double slack = (window - rn.totalPs(4)) / window;
    EXPECT_NEAR(slack, 0.39, 0.01);
}

TEST(Clock, Paper25PercentClockRatio)
{
    ClockEstimator est(Process::um0_18);
    EXPECT_NEAR(est.dependenceClockRatio(8, 64), 1.2526, 0.001);
}

TEST(Clock, ClusteredDependenceClocksFasterThanWindow8Way)
{
    ClockEstimator est(Process::um0_18);
    ClockConfig win;
    win.issue_width = 8;
    win.window_size = 64;
    ClockConfig dep;
    dep.org = IssueOrganization::DependenceFifos;
    dep.issue_width = 8;
    dep.num_clusters = 2;
    dep.fifos_per_cluster = 4;
    EXPECT_LT(est.delays(dep).criticalPs(),
              est.delays(win).criticalPs());
}
