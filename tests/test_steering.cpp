/**
 * @file
 * Tests for the dispatch-steering policies: the Section 5.1
 * dependence heuristic case by case (driven directly against the
 * Steering engine), the random policy, and a pipeline-level
 * reproduction of the paper's Figure 12 steering example.
 */

#include <gtest/gtest.h>

#include <map>

#include "func/emulator.hpp"
#include "uarch/pipeline.hpp"
#include "uarch/steering.hpp"

using namespace cesp;
using namespace cesp::uarch;

namespace {

/** Drives the dependence-FIFO steering like the dispatch stage. */
class DependenceSteerFixture : public ::testing::Test
{
  protected:
    DependenceSteerFixture()
    {
        cfg.style = IssueBufferStyle::Fifos;
        cfg.steering = SteeringPolicy::DependenceFifo;
        cfg.fifos_per_cluster = 4;
        cfg.fifo_depth = 3;
        fifos = std::make_unique<FifoSet>(1, cfg.fifos_per_cluster,
                                          cfg.fifo_depth);
        rename = std::make_unique<RenameState>(cfg);
        steer = std::make_unique<Steering>(cfg, fifos.get(), nullptr);
    }

    /**
     * Dispatch an instruction writing @p dst reading @p s1/@p s2
     * (architectural registers, 0 = none). Returns the FIFO id, or
     * -1 on a steering stall.
     */
    int
    dispatch(int dst, int s1 = 0, int s2 = 0)
    {
        DynInst d;
        d.seq = next_seq++;
        d.src1_preg = s1 > 0 ? rename->mapOf(s1) : -1;
        d.src2_preg = s2 > 0 ? rename->mapOf(s2) : -1;
        SteerDecision dec = steer->decide(
            d, *rename, now,
            [this](uint64_t s) -> const DynInst & {
                return rob.at(s);
            });
        if (!dec.ok)
            return -1;
        d.fifo = dec.fifo;
        d.cluster = dec.cluster;
        if (dst > 0)
            d.dst_preg = rename->rename(dst, d.seq).preg;
        fifos->push(d.fifo, d.seq);
        rob[d.seq] = d;
        return d.fifo;
    }

    /** Issue the head of a FIFO and mark its result computed. */
    void
    issueHead(int fifo)
    {
        uint64_t seq = fifos->head(fifo);
        fifos->popHead(fifo);
        DynInst &d = rob.at(seq);
        if (d.dst_preg >= 0) {
            PhysReg &pr = rename->preg(d.dst_preg);
            pr.computed_cycle = now; // computed immediately
            for (int c = 0; c < kMaxClusters; ++c)
                pr.ready_cycle[c] = now;
        }
    }

    SimConfig cfg;
    std::unique_ptr<FifoSet> fifos;
    std::unique_ptr<RenameState> rename;
    std::unique_ptr<Steering> steer;
    std::map<uint64_t, DynInst> rob;
    uint64_t next_seq = 0;
    uint64_t now = 5; // fresh architectural values are "computed"
};

} // namespace

TEST_F(DependenceSteerFixture, ReadyOperandsGetNewFifo)
{
    // Section 5.1 case 1: all operands in the register file.
    int f1 = dispatch(1, 0, 0);
    int f2 = dispatch(2, 3, 4); // sources are ready arch registers
    EXPECT_GE(f1, 0);
    EXPECT_GE(f2, 0);
    EXPECT_NE(f1, f2);
}

TEST_F(DependenceSteerFixture, SingleOutstandingFollowsProducer)
{
    // Section 5.1 case 2: one outstanding operand whose producer is
    // the FIFO tail.
    int fp = dispatch(1);        // producer of r1
    int fc = dispatch(2, 1, 0);  // consumer of r1
    EXPECT_EQ(fc, fp);
}

TEST_F(DependenceSteerFixture, InstructionBehindProducerForcesNewFifo)
{
    int fp = dispatch(1);       // producer
    int fc1 = dispatch(2, 1);   // behind producer
    EXPECT_EQ(fc1, fp);
    int fc2 = dispatch(3, 1);   // producer no longer the tail
    EXPECT_NE(fc2, fp);
    EXPECT_GE(fc2, 0);
}

TEST_F(DependenceSteerFixture, FullFifoForcesNewFifo)
{
    int fp = dispatch(1);
    dispatch(2, 1);
    dispatch(3, 2);             // depth 3 reached
    ASSERT_TRUE(fifos->full(fp));
    int fc = dispatch(4, 3);    // producer r3 is the tail but full
    EXPECT_NE(fc, fp);
    EXPECT_GE(fc, 0);
}

TEST_F(DependenceSteerFixture, IssuedProducerNoLongerSteersConsumer)
{
    int fp = dispatch(1);
    issueHead(fp); // producer issued; value computed at `now`
    ++now;         // value is now in the register file
    int fc = dispatch(2, 1);
    // Operand computed -> case 1 -> new FIFO (fp itself was recycled
    // and may be reused, but via the free list, not via SRC_FIFO).
    EXPECT_GE(fc, 0);
}

TEST_F(DependenceSteerFixture, InFlightIssuedProducerForcesNewFifo)
{
    int fp = dispatch(1);
    uint64_t seq = fifos->head(fp);
    fifos->popHead(fp);
    DynInst &d = rob.at(seq);
    // Issued but result not computed yet (multi-cycle load).
    PhysReg &pr = rename->preg(d.dst_preg);
    pr.computed_cycle = now + 10;
    int fc = dispatch(2, 1);
    EXPECT_GE(fc, 0); // steered to a fresh FIFO, no crash
}

TEST_F(DependenceSteerFixture, TwoOutstandingPrefersLeft)
{
    int fl = dispatch(1); // left producer
    int fr = dispatch(2); // right producer
    ASSERT_NE(fl, fr);
    int fc = dispatch(3, 1, 2);
    EXPECT_EQ(fc, fl);
}

TEST_F(DependenceSteerFixture, TwoOutstandingFallsBackToRight)
{
    dispatch(1);           // left producer
    dispatch(9, 1); // occupies the slot behind the left producer
    int fr = dispatch(2);
    int fc = dispatch(3, 1, 2); // left unsuitable -> right
    EXPECT_EQ(fc, fr);
}

TEST_F(DependenceSteerFixture, BothUnsuitableGetsNewFifo)
{
    int fl = dispatch(1);
    dispatch(9, 1);
    int fr = dispatch(2);
    dispatch(10, 2);
    int fc = dispatch(3, 1, 2);
    EXPECT_NE(fc, fl);
    EXPECT_NE(fc, fr);
    EXPECT_GE(fc, 0);
}

TEST_F(DependenceSteerFixture, NoFreeFifoStallsDispatch)
{
    dispatch(1);
    dispatch(2);
    dispatch(3);
    dispatch(4); // all four FIFOs allocated
    EXPECT_EQ(dispatch(5), -1);
    // Draining one FIFO unblocks dispatch.
    issueHead(0);
    EXPECT_GE(dispatch(5), 0);
}

TEST_F(DependenceSteerFixture, DecisionKindsReported)
{
    // Case 1: all operands ready -> NewFifo (and make it a producer
    // of r1 for the follow-on cases).
    DynInst p;
    p.seq = next_seq++;
    p.src1_preg = rename->mapOf(3);
    SteerDecision k1 = steer->decide(
        p, *rename, now,
        [this](uint64_t s) -> const DynInst & { return rob.at(s); });
    ASSERT_TRUE(k1.ok);
    EXPECT_EQ(k1.kind, SteerKind::NewFifo);
    p.fifo = k1.fifo;
    p.dst_preg = rename->rename(1, p.seq).preg;
    fifos->push(p.fifo, p.seq);
    rob[p.seq] = p;

    // Case 2: one outstanding operand at a FIFO tail -> ChainLeft.
    DynInst c;
    c.seq = next_seq++;
    c.src1_preg = rename->mapOf(1);
    SteerDecision k2 = steer->decide(
        c, *rename, now,
        [this](uint64_t s) -> const DynInst & { return rob.at(s); });
    ASSERT_TRUE(k2.ok);
    EXPECT_EQ(k2.kind, SteerKind::ChainLeft);
    c.fifo = k2.fifo;
    fifos->push(c.fifo, c.seq);
    rob[c.seq] = c;

    // Case 3: left producer buried, right producer at its tail ->
    // ChainRight.
    int fr = dispatch(2); // fresh right-operand producer
    ASSERT_GE(fr, 0);
    DynInst e;
    e.seq = next_seq++;
    e.src1_preg = rename->mapOf(1); // r1 producer no longer a tail
    e.src2_preg = rename->mapOf(2);
    SteerDecision k3 = steer->decide(
        e, *rename, now,
        [this](uint64_t s) -> const DynInst & { return rob.at(s); });
    ASSERT_TRUE(k3.ok);
    EXPECT_EQ(k3.kind, SteerKind::ChainRight);
    EXPECT_EQ(k3.fifo, fr);
}

TEST(SteeringStats, PipelineCountsCases)
{
    // Serial chain: nearly every instruction chains behind its
    // producer (left operand).
    trace::TraceBuffer chain;
    uint32_t pc = 0x1000;
    for (int i = 0; i < 200; ++i) {
        trace::TraceOp t;
        t.pc = pc;
        pc += 4;
        t.next_pc = pc;
        t.op = isa::Opcode::ADD;
        t.cls = isa::OpClass::IntAlu;
        t.dst = 1;
        t.src1 = static_cast<int8_t>(i == 0 ? -1 : 1);
        chain.append(t);
    }
    SimConfig cfg;
    cfg.name = "sc";
    cfg.style = IssueBufferStyle::Fifos;
    cfg.steering = SteeringPolicy::DependenceFifo;
    SimStats s = simulate(cfg, chain);
    EXPECT_GT(s.steer_chain_left(), 150u);
    EXPECT_EQ(s.steer_chain_left() + s.steer_chain_right() +
                  s.steer_new_fifo(),
              s.dispatched());

    // Independent ops: everything takes a new FIFO.
    trace::TraceBuffer indep;
    pc = 0x1000;
    for (int i = 0; i < 200; ++i) {
        trace::TraceOp t;
        t.pc = pc;
        pc += 4;
        t.next_pc = pc;
        t.op = isa::Opcode::ADD;
        t.cls = isa::OpClass::IntAlu;
        t.dst = static_cast<int8_t>(1 + i % 24);
        indep.append(t);
    }
    SimStats s2 = simulate(cfg, indep);
    EXPECT_EQ(s2.steer_chain_left(), 0u);
    EXPECT_EQ(s2.steer_new_fifo(), 200u);
}

TEST(RandomSteering, DistributesAndFallsBack)
{
    SimConfig cfg;
    cfg.style = IssueBufferStyle::PerClusterWindow;
    cfg.steering = SteeringPolicy::Random;
    cfg.num_clusters = 2;
    cfg.window_size = 4;
    cfg.fus_per_cluster = 4;

    std::vector<IssueWindow> windows;
    windows.emplace_back(cfg.window_size);
    windows.emplace_back(cfg.window_size);
    Steering steer(cfg, nullptr, &windows);

    RenameState rename(cfg);
    DynInst d;
    auto rob = [](uint64_t) -> const DynInst & {
        static DynInst dummy;
        return dummy;
    };

    int count[2] = {0, 0};
    for (int i = 0; i < 200; ++i) {
        SteerDecision dec = steer.decide(d, rename, 0, rob);
        ASSERT_TRUE(dec.ok);
        ASSERT_GE(dec.cluster, 0);
        ASSERT_LT(dec.cluster, 2);
        ++count[dec.cluster];
    }
    // Roughly balanced.
    EXPECT_GT(count[0], 50);
    EXPECT_GT(count[1], 50);

    // Cluster-0 window full: every decision lands on cluster 1.
    for (int i = 0; i < 4; ++i)
        windows[0].insert(static_cast<uint64_t>(i));
    for (int i = 0; i < 20; ++i) {
        SteerDecision dec = steer.decide(d, rename, 0, rob);
        ASSERT_TRUE(dec.ok);
        EXPECT_EQ(dec.cluster, 1);
    }
    // Both full: stall.
    for (int i = 0; i < 4; ++i)
        windows[1].insert(static_cast<uint64_t>(100 + i));
    SteerDecision dec = steer.decide(d, rename, 0, rob);
    EXPECT_FALSE(dec.ok);
}

// ---- Figure 12: the paper's steering example through the pipeline ---------

TEST(Figure12, DependenceChainsShareFifos)
{
    // The code segment of Figure 12 (register roles preserved):
    // chains {0,2}, {4,5,7,8,9}, {6,12,13}, {10,11} should each end
    // up in a single FIFO.
    static const char *kFigure12 = R"ASM(
        .data
g:      .space 64
        .text
main:   add  s2, zero, a2       # 0: addu $18,$0,$2
        addi a2, zero, -1       # 1: addiu $2,$0,-1
        beq  s2, a2, skip       # 2: beq $18,$2,L2
skip:   lw   a0, 0(gp)          # 3: lw $4,-32768($28)
        sllv a2, s2, s4         # 4: sllv $2,$18,$20
        xor  s0, a2, s3         # 5: xor $16,$2,$19
        lw   v1, 4(gp)          # 6: lw $3,-32676($28)
        slli a2, s0, 2          # 7: sll $2,$16,0x2
        add  a2, a2, s7         # 8: addu $2,$2,$23
        lw   a2, 0(a2)          # 9: lw $2,0($2)
        sllv a0, s2, a0         # 10: sllv $4,$18,$4
        add  s1, a0, s3         # 11: addu $17,$4,$19
        addi v1, v1, 1          # 12: addiu $3,$3,1
        sw   v1, 4(gp)          # 13: sw $3,-32676($28)
        beq  a2, s1, out        # 14: beq $2,$17,L3
out:    halt
)ASM";

    trace::TraceBuffer buf;
    func::runProgram(kFigure12, 1000, &buf);
    // gp must be valid for the loads; point it at the data segment.
    // (The emulator starts gp at 0, which reads zeros - fine.)

    SimConfig cfg;
    cfg.style = IssueBufferStyle::Fifos;
    cfg.steering = SteeringPolicy::DependenceFifo;
    cfg.fifos_per_cluster = 4;
    cfg.fifo_depth = 8;
    cfg.issue_width = 4;
    cfg.fus_per_cluster = 4;
    cfg.name = "fig12";

    Pipeline pipe(cfg, buf);
    std::map<uint64_t, int> fifo_of;
    pipe.setDispatchObserver([&](const DynInst &d) {
        fifo_of[d.seq] = d.fifo;
    });
    pipe.run();

    // Dynamic seq: the assembled program is straight-line, so seq n
    // is source line n (branches fall through / are not taken...
    // beq s2,a2 with s2=a2? s2 = a2(initial 0) = 0, then a2 = -1, so
    // not taken; beq a2,s1 outcome irrelevant, both paths reach out).
    ASSERT_GE(fifo_of.size(), 15u);

    EXPECT_EQ(fifo_of[2], fifo_of[0]);   // branch behind its producer
    EXPECT_EQ(fifo_of[5], fifo_of[4]);   // xor behind sllv
    EXPECT_NE(fifo_of[4], fifo_of[0]);   // 0 had 2 behind it
    EXPECT_EQ(fifo_of[7], fifo_of[4]);   // sll chain continues
    EXPECT_EQ(fifo_of[8], fifo_of[4]);
    EXPECT_EQ(fifo_of[9], fifo_of[4]);
    EXPECT_EQ(fifo_of[12], fifo_of[6]);  // addiu behind its load
    EXPECT_EQ(fifo_of[13], fifo_of[12]); // store behind addiu
    EXPECT_EQ(fifo_of[11], fifo_of[10]); // addu behind sllv
}
