/**
 * @file
 * Tests for the register file and cache access-time models.
 */

#include <gtest/gtest.h>

#include "vlsi/area.hpp"
#include "vlsi/cache_delay.hpp"
#include "vlsi/clock.hpp"
#include "vlsi/regfile_delay.hpp"

using namespace cesp::vlsi;

// ---- register file ---------------------------------------------------------

TEST(RegfileDelay, MonotoneInPortsAndRegisters)
{
    RegfileDelayModel m(Process::um0_18);
    EXPECT_GT(m.totalPs(120, 16, 8), m.totalPs(120, 8, 4));
    EXPECT_GT(m.totalPs(120, 8, 4), m.totalPs(120, 4, 2));
    EXPECT_GT(m.totalPs(240, 8, 4), m.totalPs(120, 8, 4));
    EXPECT_GT(m.totalPs(120, 8, 4), m.totalPs(80, 8, 4));
}

TEST(RegfileDelay, ClusteringSpeedsEachCopy)
{
    // Section 5.4: multiple register file copies have fewer ports
    // each, "making the access time of the register file faster".
    for (Process p : allProcesses()) {
        RegfileDelayModel m(p);
        double mono = m.machinePs(8);  // 16R + 8W ports
        double cluster = m.machinePs(4); // 8R + 4W ports
        EXPECT_LT(cluster, mono * 0.9) << technology(p).name;
    }
}

TEST(RegfileDelay, ComponentsPositiveAndSumToTotal)
{
    RegfileDelayModel m(Process::um0_18);
    RegfileDelay d = m.delay(120, 16, 8);
    EXPECT_GT(d.decode, 0.0);
    EXPECT_GT(d.wordline, 0.0);
    EXPECT_GT(d.bitline, 0.0);
    EXPECT_GT(d.senseamp, 0.0);
    EXPECT_NEAR(d.total(),
                d.decode + d.wordline + d.bitline + d.senseamp, 1e-9);
}

TEST(RegfileDelay, ComparableToOtherRamStructuresAtDesignPoint)
{
    // An 8-way machine's 24-port file is a big RAM: slower than the
    // rename map table, same order as the window logic. It can be
    // pipelined, so it does not bound the clock (Section 2.1).
    RegfileDelayModel rf(Process::um0_18);
    double t = rf.machinePs(8);
    EXPECT_GT(t, 400.0);
    EXPECT_LT(t, 800.0);
}

TEST(RegfileDelay, ScalesWithTechnology)
{
    RegfileDelayModel m18(Process::um0_18), m8(Process::um0_8);
    double r = m8.machinePs(8) / m18.machinePs(8);
    EXPECT_GT(r, 2.5);
    EXPECT_LT(r, 4.5); // wire terms scale slower than logic
}

TEST(RegfileDelayDeathTest, RejectsBadParameters)
{
    RegfileDelayModel m(Process::um0_18);
    EXPECT_EXIT(m.delay(4, 2, 1), ::testing::ExitedWithCode(1),
                "registers");
    EXPECT_EXIT(m.delay(120, 0, 1), ::testing::ExitedWithCode(1),
                "port");
    EXPECT_EXIT(m.delay(120, 60, 10), ::testing::ExitedWithCode(1),
                "port");
}

// ---- cache ------------------------------------------------------------------

TEST(CacheDelay, Table3CacheFitsTheMachineCycle)
{
    // 32KB/2-way/32B at 0.18um must fit under the 8-way machine's
    // clock, consistent with Table 3's 1-cycle hit latency.
    CacheDelayModel cm(Process::um0_18);
    ClockEstimator est(Process::um0_18);
    ClockConfig cfg;
    cfg.issue_width = 8;
    cfg.window_size = 64;
    EXPECT_LT(cm.totalPs(32 * 1024, 2, 32),
              est.delays(cfg).criticalPs());
}

TEST(CacheDelay, MonotoneInSize)
{
    CacheDelayModel cm(Process::um0_18);
    double prev = 0.0;
    for (uint32_t kb : {8u, 16u, 32u, 64u, 128u, 256u}) {
        double t = cm.totalPs(kb * 1024, 2, 32);
        EXPECT_GT(t, prev) << kb;
        prev = t;
    }
}

TEST(CacheDelay, AssociativityCostsTagAndMux)
{
    CacheDelayModel cm(Process::um0_18);
    double dm = cm.totalPs(32 * 1024, 1, 32);
    double a2 = cm.totalPs(32 * 1024, 2, 32);
    double a4 = cm.totalPs(32 * 1024, 4, 32);
    EXPECT_LT(dm, a2);
    EXPECT_LT(a2, a4);
}

TEST(CacheDelay, ComponentsSumToTotal)
{
    CacheDelayModel cm(Process::um0_18);
    CacheDelay d = cm.delay(32 * 1024, 2, 32);
    EXPECT_NEAR(d.total(),
                d.decode + d.wordline + d.bitline + d.senseamp +
                    d.tag_compare,
                1e-9);
    EXPECT_GT(d.tag_compare, 0.0);
}

TEST(CacheDelay, ScalesWithTechnology)
{
    CacheDelayModel c18(Process::um0_18), c8(Process::um0_8);
    EXPECT_GT(c8.totalPs(32 * 1024, 2, 32),
              2.0 * c18.totalPs(32 * 1024, 2, 32));
}

TEST(FullReport, CoversEveryModeledStructure)
{
    ClockEstimator est(Process::um0_18);
    ClockConfig cfg;
    auto report = est.fullReport(cfg);
    ASSERT_EQ(report.size(), 6u);
    // Atomic (non-pipelinable) entries: wakeup, select, bypass.
    int atomic = 0;
    for (const auto &e : report) {
        EXPECT_GT(e.ps, 0.0) << e.name;
        atomic += !e.pipelinable;
    }
    EXPECT_EQ(atomic, 3);
    // Window wakeup named for the window org, reservation table for
    // the FIFO org.
    EXPECT_EQ(report[1].name, "window wakeup");
    ClockConfig dep;
    dep.org = IssueOrganization::DependenceFifos;
    auto dep_report = est.fullReport(dep);
    EXPECT_EQ(dep_report[1].name, "reservation table");
}

TEST(FullReport, MatchesStageDelays)
{
    ClockEstimator est(Process::um0_18);
    ClockConfig cfg;
    cfg.issue_width = 4;
    cfg.window_size = 32;
    StageDelays d = est.delays(cfg);
    auto report = est.fullReport(cfg);
    EXPECT_DOUBLE_EQ(report[0].ps, d.rename);
    EXPECT_DOUBLE_EQ(report[1].ps + report[2].ps, d.window());
    EXPECT_DOUBLE_EQ(report[3].ps, d.bypass);
}

TEST(CacheDelayDeathTest, RejectsBadGeometry)
{
    CacheDelayModel cm(Process::um0_18);
    EXPECT_EXIT(cm.delay(3000, 2, 32), ::testing::ExitedWithCode(1),
                "powers");
    EXPECT_EXIT(cm.delay(32 * 1024, 0, 32),
                ::testing::ExitedWithCode(1), "associativity");
    EXPECT_EXIT(cm.delay(64, 4, 32), ::testing::ExitedWithCode(1),
                "size");
}

// ---- transistor-count estimates ----------------------------------------------

TEST(AreaModel, DependenceLogicSmallerAndGapWidens)
{
    using cesp::vlsi::AreaModel;
    uint64_t w4 = AreaModel::windowIssueLogic(32, 4);
    uint64_t d4 = AreaModel::dependenceIssueLogic(4, 8, 80, 4);
    uint64_t w8 = AreaModel::windowIssueLogic(64, 8);
    uint64_t d8 = AreaModel::dependenceIssueLogic(8, 8, 128, 8);
    EXPECT_LT(d4, w4);
    EXPECT_LT(d8, w8);
    double r4 = static_cast<double>(w4) / static_cast<double>(d4);
    double r8 = static_cast<double>(w8) / static_cast<double>(d8);
    EXPECT_GT(r8, r4); // the CAM's quadratic comparator growth
}

TEST(AreaModel, CamGrowsWithWindowAndWidth)
{
    using cesp::vlsi::AreaModel;
    EXPECT_GT(AreaModel::wakeupCam(64, 8), AreaModel::wakeupCam(32, 8));
    EXPECT_GT(AreaModel::wakeupCam(64, 8), AreaModel::wakeupCam(64, 4));
    EXPECT_GT(AreaModel::selectTree(128), AreaModel::selectTree(32));
    EXPECT_GT(AreaModel::reservationTable(128, 8),
              AreaModel::reservationTable(80, 4));
}

TEST(AreaModelDeathTest, RejectsBadShapes)
{
    using cesp::vlsi::AreaModel;
    EXPECT_EXIT(AreaModel::wakeupCam(0, 4),
                ::testing::ExitedWithCode(1), "wakeup");
    EXPECT_EXIT(AreaModel::selectTree(1),
                ::testing::ExitedWithCode(1), "select");
    EXPECT_EXIT(AreaModel::fifoBuffers(0, 8),
                ::testing::ExitedWithCode(1), "FIFO");
}
