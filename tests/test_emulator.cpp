/**
 * @file
 * Unit tests for the functional emulator: per-opcode semantics,
 * memory behaviour, control flow, console output, and trace capture.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "func/emulator.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::func;

namespace {

/** Run a snippet and return the emulator for state inspection. */
Emulator
runSnippet(const std::string &body, uint64_t max = 100000)
{
    assembler::Program p =
        assembler::assembleOrDie("main:\n" + body + "\n halt\n");
    Emulator emu(p);
    emu.run(max);
    return emu;
}

} // namespace

TEST(Emulator, ArithmeticOps)
{
    Emulator e = runSnippet(R"(
        li t0, 7
        li t1, -3
        add s0, t0, t1      # 4
        sub s1, t0, t1      # 10
        mul s2, t0, t1      # -21
        div s3, t0, t1      # -2 (trunc toward zero)
        rem s4, t0, t1      # 1
        mulh s5, t0, t1     # high word of -21 = -1
)");
    EXPECT_EQ(e.intReg(16), 4u);
    EXPECT_EQ(e.intReg(17), 10u);
    EXPECT_EQ(e.intReg(18), static_cast<uint32_t>(-21));
    EXPECT_EQ(e.intReg(19), static_cast<uint32_t>(-2));
    EXPECT_EQ(e.intReg(20), 1u);
    EXPECT_EQ(e.intReg(21), 0xffffffffu);
}

TEST(Emulator, LogicAndShifts)
{
    Emulator e = runSnippet(R"(
        li t0, 0xf0f0
        li t1, 0x0ff0
        and s0, t0, t1
        or  s1, t0, t1
        xor s2, t0, t1
        nor s3, t0, t1
        li  t2, 0x80000000
        srai s4, t2, 4
        srli s5, t2, 4
        slli s6, t1, 4
        li  t3, 36          # shift amounts mask to 5 bits
        sllv s7, t1, t3
)");
    EXPECT_EQ(e.intReg(16), 0x00f0u);
    EXPECT_EQ(e.intReg(17), 0xfff0u);
    EXPECT_EQ(e.intReg(18), 0xff00u);
    EXPECT_EQ(e.intReg(19), 0xffff000fu);
    EXPECT_EQ(e.intReg(20), 0xf8000000u);
    EXPECT_EQ(e.intReg(21), 0x08000000u);
    EXPECT_EQ(e.intReg(22), 0xff00u);
    EXPECT_EQ(e.intReg(23), 0xff00u); // shift amount 36 masks to 4
}

TEST(Emulator, Comparisons)
{
    Emulator e = runSnippet(R"(
        li t0, -1
        li t1, 1
        slt  s0, t0, t1     # signed: -1 < 1 -> 1
        sltu s1, t0, t1     # unsigned: 0xffffffff < 1 -> 0
        slti s2, t0, 0      # 1
        sltiu s3, t1, 2     # 1
)");
    EXPECT_EQ(e.intReg(16), 1u);
    EXPECT_EQ(e.intReg(17), 0u);
    EXPECT_EQ(e.intReg(18), 1u);
    EXPECT_EQ(e.intReg(19), 1u);
}

TEST(Emulator, ZeroRegisterIsImmutable)
{
    Emulator e = runSnippet(R"(
        li t0, 5
        add zero, t0, t0
        addi zero, zero, 99
        move s0, zero
)");
    EXPECT_EQ(e.intReg(0), 0u);
    EXPECT_EQ(e.intReg(16), 0u);
}

TEST(Emulator, DivideByZeroFaultsToZero)
{
    Emulator e = runSnippet(R"(
        li t0, 5
        li t1, 0
        div s0, t0, t1
        rem s1, t0, t1
)");
    EXPECT_EQ(e.intReg(16), 0u);
    EXPECT_EQ(e.intReg(17), 0u);
    EXPECT_EQ(e.faults(), 2u);
}

TEST(Emulator, LoadsAndStoresAllSizes)
{
    Emulator e = runSnippet(R"(
        la  s0, buf
        li  t0, 0x12345678
        sw  t0, 0(s0)
        lw  s1, 0(s0)
        lh  s2, 0(s0)       # 0x5678 sign-extended (positive)
        lhu s3, 2(s0)       # 0x1234
        lb  s4, 3(s0)       # 0x12
        lbu s5, 0(s0)       # 0x78
        li  t1, -2
        sh  t1, 8(s0)
        lh  s6, 8(s0)       # -2
        lhu s7, 8(s0)       # 0xfffe
        .data
buf:    .space 16
        .text
)");
    EXPECT_EQ(e.intReg(17), 0x12345678u);
    EXPECT_EQ(e.intReg(18), 0x5678u);
    EXPECT_EQ(e.intReg(19), 0x1234u);
    EXPECT_EQ(e.intReg(20), 0x12u);
    EXPECT_EQ(e.intReg(21), 0x78u);
    EXPECT_EQ(e.intReg(22), static_cast<uint32_t>(-2));
    EXPECT_EQ(e.intReg(23), 0xfffeu);
}

TEST(Emulator, SignExtendingByteLoad)
{
    Emulator e = runSnippet(R"(
        la s0, b
        lb s1, 0(s0)
        lbu s2, 0(s0)
        .data
b:      .byte 0x80
        .text
)");
    EXPECT_EQ(e.intReg(17), 0xffffff80u);
    EXPECT_EQ(e.intReg(18), 0x80u);
}

TEST(Emulator, BranchesAllConditions)
{
    Emulator e = runSnippet(R"(
        li s0, 0
        li t0, -1
        li t1, 1
        beq t0, t0, l1
        j bad
l1:     addi s0, s0, 1
        bne t0, t1, l2
        j bad
l2:     addi s0, s0, 1
        blt t0, t1, l3
        j bad
l3:     addi s0, s0, 1
        bge t1, t0, l4
        j bad
l4:     addi s0, s0, 1
        bltu t1, t0, l5     # unsigned: 1 < 0xffffffff
        j bad
l5:     addi s0, s0, 1
        bgeu t0, t1, l6
        j bad
l6:     addi s0, s0, 1
        j done
bad:    li s0, -1
done:   nop
)");
    EXPECT_EQ(e.intReg(16), 6u);
}

TEST(Emulator, CallAndReturn)
{
    Emulator e = runSnippet(R"(
        li a0, 6
        jal square
        move s0, v0         # 36
        li a0, 9
        la t0, square
        jalr ra, t0
        move s1, v0         # 81
        j after
square: mul v0, a0, a0
        jr ra
after:  nop
)");
    EXPECT_EQ(e.intReg(16), 36u);
    EXPECT_EQ(e.intReg(17), 81u);
}

TEST(Emulator, FloatingPoint)
{
    Emulator e = runSnippet(R"(
        li t0, 0x40400000   # 3.0f
        li t1, 0x40000000   # 2.0f
        fmvi f1, t0
        fmvi f2, t1
        fadd f3, f1, f2     # 5.0
        fsub f4, f1, f2     # 1.0
        fmul f5, f1, f2     # 6.0
        fdiv f6, f1, f2     # 1.5
        fcmplt s0, f2, f1   # 1
        fcmplt s1, f1, f2   # 0
        la  t2, fbuf
        fsw f6, 0(t2)
        flw f7, 0(t2)
        .data
fbuf:   .space 8
        .text
)");
    EXPECT_FLOAT_EQ(e.fpReg(3), 5.0f);
    EXPECT_FLOAT_EQ(e.fpReg(4), 1.0f);
    EXPECT_FLOAT_EQ(e.fpReg(5), 6.0f);
    EXPECT_FLOAT_EQ(e.fpReg(6), 1.5f);
    EXPECT_FLOAT_EQ(e.fpReg(7), 1.5f);
    EXPECT_EQ(e.intReg(16), 1u);
    EXPECT_EQ(e.intReg(17), 0u);
}

TEST(Emulator, ConsoleOutput)
{
    Emulator e = runSnippet(R"(
        li a0, 'h'
        putc a0
        li a0, 'i'
        putc a0
)");
    EXPECT_EQ(e.console(), "hi");
}

TEST(Emulator, InstructionLimitStopsRunaway)
{
    assembler::Program p =
        assembler::assembleOrDie("main: j main\n");
    Emulator emu(p);
    ExecResult r = emu.run(1000);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.instructions, 1000u);
}

TEST(Emulator, StackPointerInitialized)
{
    Emulator e = runSnippet(R"(
        move s0, sp
        addi sp, sp, -16
        sw s0, 0(sp)
        lw s1, 0(sp)
)");
    EXPECT_EQ(e.intReg(16), assembler::kStackTop);
    EXPECT_EQ(e.intReg(17), assembler::kStackTop);
}

TEST(Emulator, TraceCaptureMatchesExecution)
{
    assembler::Program p = assembler::assembleOrDie(R"(
main:   li  t0, 3
        la  s0, buf
        sw  t0, 4(s0)
        lw  t1, 4(s0)
        beq t0, t1, ok
        nop
ok:     halt
        .data
buf:    .space 16
)");
    Emulator emu(p);
    trace::TraceBuffer buf;
    emu.run(1000, &buf);
    ASSERT_EQ(buf.size(), 7u); // li, la(2), sw, lw, beq, halt
    const trace::TraceOp &sw_op = buf[3];
    EXPECT_TRUE(sw_op.isStore());
    EXPECT_EQ(sw_op.mem_addr, assembler::kDataBase + 4);
    EXPECT_EQ(sw_op.mem_size, 4);
    const trace::TraceOp &lw_op = buf[4];
    EXPECT_TRUE(lw_op.isLoad());
    EXPECT_EQ(lw_op.mem_addr, assembler::kDataBase + 4);
    EXPECT_GT(lw_op.dst, 0);
    const trace::TraceOp &br = buf[5];
    EXPECT_TRUE(br.isCondBranch());
    EXPECT_TRUE(br.taken);
    EXPECT_EQ(br.next_pc, br.pc + 8);
    // pcs are sequential where no branch intervenes.
    EXPECT_EQ(buf[1].pc, buf[0].pc + 4);
}

TEST(Emulator, TraceNextPcThroughJumps)
{
    assembler::Program p = assembler::assembleOrDie(R"(
main:   jal f
        halt
f:      jr ra
)");
    Emulator emu(p);
    trace::TraceBuffer buf;
    emu.run(1000, &buf);
    ASSERT_EQ(buf.size(), 3u);
    EXPECT_EQ(buf[0].next_pc, buf[0].pc + 8); // to f
    EXPECT_EQ(buf[1].next_pc, buf[0].pc + 4); // jr back to halt
    EXPECT_TRUE(buf[0].taken);
    EXPECT_TRUE(buf[1].taken);
}

TEST(Memory, UnmappedReadsZeroWritesAllocate)
{
    Memory m;
    EXPECT_EQ(m.read32(0x5000), 0u);
    EXPECT_EQ(m.residentPages(), 0u);
    m.write32(0x5000, 42);
    EXPECT_EQ(m.read32(0x5000), 42u);
    EXPECT_EQ(m.residentPages(), 1u);
}

TEST(Memory, CrossPageAccesses)
{
    Memory m;
    uint32_t boundary = 2 * Memory::kPageSize - 2;
    m.write32(boundary, 0xa1b2c3d4u);
    EXPECT_EQ(m.read32(boundary), 0xa1b2c3d4u);
    EXPECT_EQ(m.read16(boundary), 0xc3d4u);
    EXPECT_EQ(m.read16(boundary + 2), 0xa1b2u);
    EXPECT_EQ(m.residentPages(), 2u);
}

TEST(Memory, LittleEndianLayout)
{
    Memory m;
    m.write32(0x100, 0x11223344u);
    EXPECT_EQ(m.read8(0x100), 0x44u);
    EXPECT_EQ(m.read8(0x103), 0x11u);
}

TEST(Emulator, UnalignedAccessesCounted)
{
    Emulator e = runSnippet(R"(
        la  s0, buf
        li  t0, 7
        sw  t0, 1(s0)       # unaligned word store
        lw  t1, 1(s0)       # unaligned word load
        lh  t2, 3(s0)       # unaligned half load
        lw  t3, 4(s0)       # aligned
        lb  t4, 5(s0)       # bytes are never unaligned
        .data
buf:    .space 16
        .text
)");
    EXPECT_EQ(e.unalignedAccesses(), 3u);
    EXPECT_EQ(e.intReg(9), 7u); // the unaligned round trip works
}

TEST(Emulator, WorkloadKernelsAreAligned)
{
    // The benchmark kernels must be clean for MIPS-era hardware.
    for (const auto &w : cesp::workloads::allWorkloads()) {
        assembler::Program p = assembler::assembleOrDie(w.source);
        Emulator emu(p);
        emu.run(w.max_instructions);
        EXPECT_EQ(emu.unalignedAccesses(), 0u) << w.name;
    }
}
