/**
 * @file
 * Timing tests for the pipeline: hand-built traces with analytically
 * known schedules (dependence chains, issue/fetch/retire bounds,
 * cache hit/miss latencies, store-address gating, forwarding,
 * misprediction stalls, cluster bypass timing, structural stalls).
 */

#include <gtest/gtest.h>

#include <map>

#include "trace/synthetic.hpp"
#include "uarch/pipeline.hpp"

using namespace cesp;
using namespace cesp::uarch;
using trace::TraceBuffer;
using trace::TraceOp;

namespace {

/** Builds traces with auto-incrementing pcs. */
class TraceBuilder
{
  public:
    TraceOp &
    add()
    {
        TraceOp t;
        t.pc = pc_;
        pc_ += 4;
        t.next_pc = pc_;
        buf_.append(t);
        return last();
    }

    TraceOp &
    alu(int dst, int src1 = -1, int src2 = -1)
    {
        TraceOp &t = add();
        t.op = isa::Opcode::ADD;
        t.cls = isa::OpClass::IntAlu;
        t.dst = static_cast<int8_t>(dst);
        t.src1 = static_cast<int8_t>(src1);
        t.src2 = static_cast<int8_t>(src2);
        return t;
    }

    TraceOp &
    load(int dst, uint32_t addr, int base = -1)
    {
        TraceOp &t = add();
        t.op = isa::Opcode::LW;
        t.cls = isa::OpClass::Load;
        t.dst = static_cast<int8_t>(dst);
        t.src1 = static_cast<int8_t>(base);
        t.mem_addr = addr;
        t.mem_size = 4;
        return t;
    }

    TraceOp &
    store(uint32_t addr, int base = -1, int data = -1)
    {
        TraceOp &t = add();
        t.op = isa::Opcode::SW;
        t.cls = isa::OpClass::Store;
        t.src1 = static_cast<int8_t>(base);
        t.src2 = static_cast<int8_t>(data);
        t.mem_addr = addr;
        t.mem_size = 4;
        return t;
    }

    TraceOp &
    branch(bool taken, int src1 = -1)
    {
        TraceOp &t = add();
        t.op = isa::Opcode::BNE;
        t.cls = isa::OpClass::BranchCond;
        t.src1 = static_cast<int8_t>(src1);
        t.taken = taken;
        if (taken)
            t.next_pc = t.pc + 64;
        pc_ = t.next_pc;
        return t;
    }

    TraceBuffer &buf() { return buf_; }

  private:
    TraceBuffer buf_;
    TraceOp &
    last()
    {
        return const_cast<TraceOp &>(buf_[buf_.size() - 1]);
    }
    uint32_t pc_ = 0x1000;
};

SimConfig
windowCfg()
{
    SimConfig c;
    c.name = "test-window";
    return c;
}

SimConfig
fifoCfg()
{
    SimConfig c;
    c.name = "test-fifo";
    c.style = IssueBufferStyle::Fifos;
    c.steering = SteeringPolicy::DependenceFifo;
    return c;
}

/** Run and capture per-seq issue cycles. */
SimStats
runWithIssueCycles(const SimConfig &cfg, TraceBuffer &buf,
                   std::map<uint64_t, uint64_t> &issue_cycles)
{
    Pipeline p(cfg, buf);
    p.setIssueObserver([&](const DynInst &d) {
        issue_cycles[d.seq] = d.issue_cycle;
    });
    return p.run();
}

} // namespace

TEST(Pipeline, EmptyTraceTerminates)
{
    TraceBuffer empty;
    SimStats s = simulate(windowCfg(), empty);
    EXPECT_EQ(s.committed(), 0u);
    EXPECT_LT(s.cycles(), 5u);
}

TEST(Pipeline, SerialChainIssuesBackToBack)
{
    TraceBuilder tb;
    const int n = 64;
    tb.alu(1);
    for (int i = 1; i < n; ++i)
        tb.alu(1, 1); // each reads the previous result
    std::map<uint64_t, uint64_t> issue;
    SimStats s = runWithIssueCycles(windowCfg(), tb.buf(), issue);
    EXPECT_EQ(s.committed(), static_cast<uint64_t>(n));
    // Dependent single-cycle ops issue in consecutive cycles (the
    // atomic wakeup+select property of Section 4.5).
    for (int i = 1; i < n; ++i)
        EXPECT_EQ(issue[static_cast<uint64_t>(i)],
                  issue[static_cast<uint64_t>(i - 1)] + 1)
            << i;
    EXPECT_NEAR(s.ipc(), 1.0, 0.15);
}

TEST(Pipeline, IndependentOpsSaturateMachineWidth)
{
    TraceBuilder tb;
    const int n = 800;
    for (int i = 0; i < n; ++i)
        tb.alu(1 + (i % 24));
    SimStats s = simulate(windowCfg(), tb.buf());
    EXPECT_EQ(s.committed(), static_cast<uint64_t>(n));
    EXPECT_GT(s.ipc(), 7.0); // 8-wide minus fill
}

TEST(Pipeline, IssueWidthBoundsIpc)
{
    TraceBuilder tb;
    for (int i = 0; i < 800; ++i)
        tb.alu(1 + (i % 24));
    SimConfig c = windowCfg();
    c.issue_width = 4;
    SimStats s = simulate(c, tb.buf());
    EXPECT_LE(s.ipc(), 4.0 + 1e-9);
    EXPECT_GT(s.ipc(), 3.6);
}

TEST(Pipeline, FuCountBoundsIpc)
{
    TraceBuilder tb;
    for (int i = 0; i < 800; ++i)
        tb.alu(1 + (i % 24));
    SimConfig c = windowCfg();
    c.fus_per_cluster = 2;
    SimStats s = simulate(c, tb.buf());
    EXPECT_LE(s.ipc(), 2.0 + 1e-9);
    EXPECT_GT(s.ipc(), 1.8);
}

TEST(Pipeline, RetireWidthBoundsIpc)
{
    TraceBuilder tb;
    for (int i = 0; i < 800; ++i)
        tb.alu(1 + (i % 24));
    SimConfig c = windowCfg();
    c.retire_width = 3;
    SimStats s = simulate(c, tb.buf());
    EXPECT_LE(s.ipc(), 3.0 + 1e-9);
    EXPECT_GT(s.ipc(), 2.7);
}

TEST(Pipeline, FetchWidthBoundsIpc)
{
    TraceBuilder tb;
    for (int i = 0; i < 800; ++i)
        tb.alu(1 + (i % 24));
    SimConfig c = windowCfg();
    c.fetch_width = 5;
    SimStats s = simulate(c, tb.buf());
    EXPECT_LE(s.ipc(), 5.0 + 1e-9);
    EXPECT_GT(s.ipc(), 4.5);
}

TEST(Pipeline, CacheHitLoadLatencyIsOneCycle)
{
    TraceBuilder tb;
    tb.load(1, 0x2000);        // cold miss warms the line
    const int n = 32;
    for (int i = 0; i < n; ++i)
        tb.load(1, 0x2000, 1); // dependent hits, 1 cycle apart
    std::map<uint64_t, uint64_t> issue;
    SimStats s = runWithIssueCycles(windowCfg(), tb.buf(), issue);
    EXPECT_EQ(s.dcache_misses(), 1u);
    for (int i = 2; i <= n; ++i)
        EXPECT_EQ(issue[static_cast<uint64_t>(i)],
                  issue[static_cast<uint64_t>(i - 1)] + 1)
            << i;
}

TEST(Pipeline, CacheMissCostsSixCycles)
{
    TraceBuilder tb;
    const int n = 32;
    // Dependent loads to distinct lines: every access cold-misses.
    for (int i = 0; i < n; ++i)
        tb.load(1, 0x10000 + static_cast<uint32_t>(i) * 4096,
                i == 0 ? -1 : 1);
    std::map<uint64_t, uint64_t> issue;
    SimStats s = runWithIssueCycles(windowCfg(), tb.buf(), issue);
    EXPECT_EQ(s.dcache_misses(), static_cast<uint64_t>(n));
    for (int i = 1; i < n; ++i)
        EXPECT_EQ(issue[static_cast<uint64_t>(i)],
                  issue[static_cast<uint64_t>(i - 1)] + 6)
            << i;
    EXPECT_LT(s.ipc(), 0.25);
}

TEST(Pipeline, StoreToLoadForwardingAvoidsCacheLatency)
{
    TraceBuilder tb;
    tb.alu(2);                 // produce the store data
    tb.store(0x9000, -1, 2);   // store (line not cached)
    tb.load(1, 0x9000);        // forwarded: no 6-cycle miss
    const int n = 16;
    for (int i = 0; i < n; ++i)
        tb.alu(1, 1);
    std::map<uint64_t, uint64_t> issue;
    SimStats s = runWithIssueCycles(windowCfg(), tb.buf(), issue);
    EXPECT_GE(s.store_forwards(), 1u);
    // The load's dependent issues one cycle after the load.
    EXPECT_EQ(issue[3], issue[2] + 1);
}

TEST(Pipeline, LoadWaitsForOlderStoreAddress)
{
    // A store whose address depends on a long serial chain gates a
    // younger (independent) load.
    TraceBuilder tb;
    const int chain = 20;
    tb.alu(5);
    for (int i = 1; i < chain; ++i)
        tb.alu(5, 5);
    tb.store(0x4000, 5, -1);   // address from the chain
    tb.load(1, 0x8000);        // different address, but must wait
    std::map<uint64_t, uint64_t> issue;
    runWithIssueCycles(windowCfg(), tb.buf(), issue);
    uint64_t store_seq = chain;
    uint64_t load_seq = chain + 1;
    EXPECT_GE(issue[load_seq], issue[store_seq]);
}

TEST(Pipeline, MispredictedBranchStallsFetch)
{
    // Fresh gshare counters predict weakly not-taken; a taken branch
    // on first encounter mispredicts.
    TraceBuilder tb1;
    for (int i = 0; i < 16; ++i)
        tb1.alu(1 + i % 8);
    tb1.branch(false); // correctly predicted
    for (int i = 0; i < 16; ++i)
        tb1.alu(1 + i % 8);
    SimStats ok = simulate(windowCfg(), tb1.buf());
    EXPECT_EQ(ok.mispredicts(), 0u);

    TraceBuilder tb2;
    for (int i = 0; i < 16; ++i)
        tb2.alu(1 + i % 8);
    tb2.branch(true); // mispredicted
    for (int i = 0; i < 16; ++i)
        tb2.alu(1 + i % 8);
    SimStats bad = simulate(windowCfg(), tb2.buf());
    EXPECT_EQ(bad.mispredicts(), 1u);
    EXPECT_EQ(bad.cond_branches(), 1u);
    // The refill penalty shows up as extra cycles.
    EXPECT_GE(bad.cycles(), ok.cycles() + 3);
}

TEST(Pipeline, MispredictResolutionWaitsForBranchOperand)
{
    // The branch depends on a serial chain: recovery cannot begin
    // until the chain produces the condition.
    TraceBuilder tb;
    const int chain = 24;
    tb.alu(5);
    for (int i = 1; i < chain; ++i)
        tb.alu(5, 5);
    tb.branch(true, 5);
    for (int i = 0; i < 8; ++i)
        tb.alu(1);
    std::map<uint64_t, uint64_t> issue;
    SimStats s = runWithIssueCycles(windowCfg(), tb.buf(), issue);
    EXPECT_EQ(s.mispredicts(), 1u);
    // Post-branch instructions issue only after the branch resolves.
    EXPECT_GT(issue[chain + 1], issue[chain]);
    // cycles ~ chain + refill, far above the no-dependence case.
    EXPECT_GE(s.cycles(), static_cast<uint64_t>(chain + 6));
}

TEST(Pipeline, WindowFullCausesDispatchStalls)
{
    TraceBuilder tb;
    // A long-latency head-of-window chain backs the window up.
    for (int i = 0; i < 64; ++i)
        tb.load(1, 0x10000 + static_cast<uint32_t>(i) * 4096,
                i == 0 ? -1 : 1);
    for (int i = 0; i < 200; ++i)
        tb.alu(2 + i % 8);
    SimConfig c = windowCfg();
    c.window_size = 8;
    SimStats s = simulate(c, tb.buf());
    EXPECT_GT(s.dispatch_stall_buffer(), 0u);
}

TEST(Pipeline, RobLimitCausesDispatchStalls)
{
    TraceBuilder tb;
    for (int i = 0; i < 64; ++i)
        tb.load(1, 0x10000 + static_cast<uint32_t>(i) * 4096,
                i == 0 ? -1 : 1);
    SimConfig c = windowCfg();
    c.max_inflight = 16;
    c.window_size = 16;
    SimStats s = simulate(c, tb.buf());
    EXPECT_GT(s.dispatch_stall_rob(), 0u);
}

TEST(Pipeline, PhysRegExhaustionCausesDispatchStalls)
{
    TraceBuilder tb;
    // Many in-flight destinations behind a serialized miss chain.
    for (int i = 0; i < 64; ++i)
        tb.load(1, 0x10000 + static_cast<uint32_t>(i) * 4096,
                i == 0 ? -1 : 1);
    for (int i = 0; i < 100; ++i)
        tb.alu(2 + i % 8);
    SimConfig c = windowCfg();
    c.phys_int_regs = 40; // only 8 renames in flight
    SimStats s = simulate(c, tb.buf());
    EXPECT_GT(s.dispatch_stall_regs(), 0u);
}

TEST(Pipeline, LsPortsLimitLoadIssue)
{
    TraceBuilder tb;
    // Independent loads to the same warm line.
    tb.load(31, 0x2000);
    for (int i = 0; i < 400; ++i)
        tb.load(1 + (i % 24), 0x2000);
    SimConfig c = windowCfg();
    c.ls_ports = 2;
    SimStats s = simulate(c, tb.buf());
    EXPECT_LE(s.ipc(), 2.0 + 0.01);
    SimConfig c4 = windowCfg(); // default 4 ports
    SimStats s4 = simulate(c4, tb.buf());
    EXPECT_GT(s4.ipc(), s.ipc() * 1.5);
}

TEST(Pipeline, FifoMachineSerialChainAlsoBackToBack)
{
    TraceBuilder tb;
    const int n = 64;
    tb.alu(1);
    for (int i = 1; i < n; ++i)
        tb.alu(1, 1);
    std::map<uint64_t, uint64_t> issue;
    SimStats s = runWithIssueCycles(fifoCfg(), tb.buf(), issue);
    EXPECT_EQ(s.committed(), static_cast<uint64_t>(n));
    for (int i = 1; i < n; ++i)
        EXPECT_EQ(issue[static_cast<uint64_t>(i)],
                  issue[static_cast<uint64_t>(i - 1)] + 1)
            << i;
}

TEST(Pipeline, FifoMachineRunsParallelChains)
{
    // Four interleaved serial chains: the FIFO machine extracts the
    // same ILP as the window machine (they land in separate FIFOs).
    TraceBuilder tb;
    const int rounds = 100;
    for (int r = 0; r < rounds; ++r)
        for (int c = 0; c < 4; ++c)
            tb.alu(1 + c, r == 0 ? -1 : 1 + c);
    SimStats sw = simulate(windowCfg(), tb.buf());
    SimStats sf = simulate(fifoCfg(), tb.buf());
    EXPECT_NEAR(sf.ipc(), sw.ipc(), 0.3);
    EXPECT_GT(sf.ipc(), 3.0);
}

TEST(Pipeline, FifoIssuesOnlyFromHeads)
{
    // In one FIFO, a ready instruction behind a stalled head must
    // wait; the window machine can issue it immediately.
    TraceBuilder tb;
    tb.load(1, 0x30000);  // miss at the head of a chain
    tb.alu(2, 1);         // dependent on the load -> same FIFO
    tb.alu(3, 2);         // dependent -> same FIFO
    SimConfig f = fifoCfg();
    std::map<uint64_t, uint64_t> issue;
    runWithIssueCycles(f, tb.buf(), issue);
    EXPECT_GE(issue[1], issue[0] + 6); // waits for the miss
    EXPECT_EQ(issue[2], issue[1] + 1);
}

TEST(Pipeline, ClusteredInterClusterBypassCounted)
{
    // Five chains fill cluster 0's four FIFOs and spill into cluster
    // 1; a consumer of chains 1 and 5 must receive one operand over
    // the inter-cluster bypass.
    TraceBuilder tb;
    for (int c = 0; c < 5; ++c)
        for (int i = 0; i < 3; ++i)
            tb.alu(1 + c, i == 0 ? -1 : 1 + c);
    tb.alu(10, 1, 5);
    SimConfig cfg = fifoCfg();
    cfg.num_clusters = 2;
    cfg.fifos_per_cluster = 4;
    cfg.fus_per_cluster = 4;
    SimStats s = simulate(cfg, tb.buf());
    EXPECT_GE(s.intercluster_bypasses(), 1u);
    EXPECT_GT(s.issued_per_cluster(0), 0u);
    EXPECT_GT(s.issued_per_cluster(1), 0u);
}

TEST(Pipeline, InterClusterLatencySlowsCrossClusterConsumer)
{
    // Producer in cluster 1 (forced by filling cluster 0), consumer
    // steered to cluster 0: issue gap is 1 + inter_cluster_extra.
    auto run_with = [](int extra) {
        TraceBuilder tb;
        for (int c = 0; c < 5; ++c)
            for (int i = 0; i < 3; ++i)
                tb.alu(1 + c, i == 0 ? -1 : 1 + c);
        tb.alu(10, 1, 5);
        SimConfig cfg;
        cfg.name = "xclust";
        cfg.style = IssueBufferStyle::Fifos;
        cfg.steering = SteeringPolicy::DependenceFifo;
        cfg.num_clusters = 2;
        cfg.fifos_per_cluster = 4;
        cfg.fus_per_cluster = 4;
        cfg.inter_cluster_extra = extra;
        std::map<uint64_t, uint64_t> issue;
        runWithIssueCycles(cfg, tb.buf(), issue);
        return issue.at(15); // consumer's issue cycle
    };
    EXPECT_EQ(run_with(3), run_with(1) + 2);
}

TEST(Pipeline, DeterministicAcrossRuns)
{
    trace::SyntheticParams sp;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 20000);
    SimStats a = simulate(windowCfg(), buf);
    SimStats b = simulate(windowCfg(), buf);
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.committed(), b.committed());
    EXPECT_EQ(a.mispredicts(), b.mispredicts());
    EXPECT_EQ(a.dcache_misses(), b.dcache_misses());
}

TEST(Pipeline, HaltStopsFetchEarly)
{
    TraceBuilder tb;
    for (int i = 0; i < 8; ++i)
        tb.alu(1 + i);
    TraceOp &h = tb.add();
    h.op = isa::Opcode::HALT;
    h.cls = isa::OpClass::Halt;
    for (int i = 0; i < 8; ++i)
        tb.alu(1 + i); // beyond the halt: never fetched
    SimStats s = simulate(windowCfg(), tb.buf());
    EXPECT_EQ(s.committed(), 9u);
}

TEST(Pipeline, MaxInstructionCapRespected)
{
    TraceBuilder tb;
    for (int i = 0; i < 100; ++i)
        tb.alu(1 + i % 8);
    SimStats s = simulate(windowCfg(), tb.buf(), 40);
    EXPECT_LE(s.committed(), 48u); // cap checked at fetch granularity
    EXPECT_GE(s.committed(), 40u);
}

TEST(Pipeline, StatsAccountingConsistent)
{
    trace::SyntheticParams sp;
    trace::TraceBuffer buf = trace::generateSynthetic(sp, 10000);
    SimStats s = simulate(windowCfg(), buf);
    EXPECT_EQ(s.committed(), s.issued());
    EXPECT_EQ(s.committed(), s.dispatched());
    EXPECT_EQ(s.committed(), s.fetched());
    // Read through a const view: unconfigured clusters have no
    // registry row and must read as zero.
    const SimStats &cs = s;
    uint64_t per_cluster = 0;
    for (int c = 0; c < kMaxClusters; ++c)
        per_cluster += cs.issued_per_cluster(c);
    EXPECT_EQ(per_cluster, cs.issued());
}

TEST(PipelineDeathTest, RunIsSingleUse)
{
    TraceBuilder tb;
    tb.alu(1);
    Pipeline p(windowCfg(), tb.buf());
    p.run();
    EXPECT_DEATH(p.run(), "single-use");
}

TEST(PipelineDeathTest, InvalidConfigFatal)
{
    TraceBuffer buf;
    SimConfig c;
    c.num_clusters = 2; // clustered without steering
    EXPECT_EXIT(Pipeline(c, buf), ::testing::ExitedWithCode(1),
                "steering");
}
