/**
 * @file
 * Unit tests for the data-cache timing model: hit/miss behaviour,
 * LRU replacement, write-back/write-allocate policy, and the Table 3
 * geometry.
 */

#include <gtest/gtest.h>

#include "mem/cache.hpp"

using namespace cesp;
using namespace cesp::mem;

namespace {

uarch::CacheConfig
table3()
{
    return uarch::CacheConfig{}; // 32KB, 2-way, 32B, 1/6 cycles
}

} // namespace

TEST(Cache, GeometryMatchesTable3)
{
    Cache c(table3());
    // 32KB / 32B lines / 2 ways = 512 sets.
    EXPECT_EQ(c.numSets(), 512u);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(table3());
    auto a1 = c.access(0x1000, false);
    EXPECT_FALSE(a1.hit);
    EXPECT_EQ(a1.latency, 6);
    auto a2 = c.access(0x1000, false);
    EXPECT_TRUE(a2.hit);
    EXPECT_EQ(a2.latency, 1);
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SpatialLocalityWithinLine)
{
    Cache c(table3());
    c.access(0x2000, false);
    // Same 32-byte line.
    EXPECT_TRUE(c.access(0x201c, false).hit);
    // Next line misses.
    EXPECT_FALSE(c.access(0x2020, false).hit);
}

TEST(Cache, TwoWayAssociativityHoldsTwoConflictingLines)
{
    Cache c(table3());
    // Two addresses mapping to the same set: stride = sets * line =
    // 512 * 32 = 16384.
    uint32_t a = 0x10000, b = a + 16384, d = a + 2 * 16384;
    c.access(a, false);
    c.access(b, false);
    EXPECT_TRUE(c.access(a, false).hit);
    EXPECT_TRUE(c.access(b, false).hit);
    // A third conflicting line evicts the LRU (a was touched more
    // recently than b after the hits above... order: a,b hits -> b
    // most recent; insert d -> evicts a? No: a hit then b hit, so a
    // is LRU).
    c.access(d, false);
    EXPECT_FALSE(c.access(a, false).hit); // a was evicted
}

TEST(Cache, LruReplacementOrder)
{
    Cache c(table3());
    uint32_t s = 16384;
    c.access(0x0, false);     // way0 = A
    c.access(s, false);       // way1 = B
    c.access(0x0, false);     // touch A: B is LRU
    c.access(2 * s, false);   // C evicts B
    EXPECT_TRUE(c.access(0x0, false).hit);
    EXPECT_TRUE(c.access(2 * s, false).hit);
    EXPECT_FALSE(c.access(s, false).hit);
}

TEST(Cache, WriteAllocateAndWriteBack)
{
    Cache c(table3());
    // Store miss allocates the line dirty.
    auto a1 = c.access(0x3000, true);
    EXPECT_FALSE(a1.hit);
    EXPECT_FALSE(a1.writeback);
    EXPECT_TRUE(c.access(0x3000, false).hit);

    // Evicting the dirty line produces a writeback.
    uint32_t s = 16384;
    c.access(0x3000 + s, false);
    auto a2 = c.access(0x3000 + 2 * s, false);
    (void)a2;
    auto a3 = c.access(0x3000 + 3 * s, false);
    // One of the two evictions hit the dirty line.
    EXPECT_EQ(c.writebacks(), 1u);
    (void)a3;
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c(table3());
    uint32_t s = 16384;
    c.access(0x0, false);
    c.access(s, false);
    c.access(2 * s, false); // evicts clean line
    EXPECT_EQ(c.writebacks(), 0u);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache c(table3());
    EXPECT_FALSE(c.probe(0x4000));
    c.access(0x4000, false);
    EXPECT_TRUE(c.probe(0x4000));
    EXPECT_EQ(c.accesses(), 1u); // probe not counted
}

TEST(Cache, FlushInvalidatesLines)
{
    Cache c(table3());
    c.access(0x5000, false);
    EXPECT_TRUE(c.probe(0x5000));
    c.flush();
    EXPECT_FALSE(c.probe(0x5000));
    EXPECT_EQ(c.misses(), 1u); // stats survive flush
}

TEST(Cache, MissRate)
{
    Cache c(table3());
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x0, false);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.25);
}

TEST(Cache, WorkingSetBeyondCapacityThrashes)
{
    uarch::CacheConfig small = table3();
    small.size_bytes = 1024;
    small.line_bytes = 32;
    small.associativity = 2;
    Cache c(small);
    // Stream over 4KB repeatedly: every access to a new line misses
    // once the set is overcommitted.
    for (int pass = 0; pass < 4; ++pass)
        for (uint32_t a = 0; a < 4096; a += 32)
            c.access(a, false);
    EXPECT_GT(c.missRate(), 0.9);
}

TEST(Cache, DirectMappedConfig)
{
    uarch::CacheConfig dm = table3();
    dm.associativity = 1;
    Cache c(dm);
    uint32_t s = 1024 * 32; // sets*line = 32KB/32 lines... = 32768
    c.access(0x0, false);
    c.access(s, false); // conflicts immediately
    EXPECT_FALSE(c.access(0x0, false).hit);
}

TEST(CacheDeathTest, RejectsBadGeometry)
{
    uarch::CacheConfig bad = table3();
    bad.line_bytes = 24;
    EXPECT_EXIT(Cache{bad}, ::testing::ExitedWithCode(1), "power");
    uarch::CacheConfig bad2 = table3();
    bad2.associativity = 0;
    EXPECT_EXIT(Cache{bad2}, ::testing::ExitedWithCode(1),
                "associativity");
}
