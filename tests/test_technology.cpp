/**
 * @file
 * Unit tests for the technology parameters and wire delay model.
 */

#include <gtest/gtest.h>

#include "vlsi/technology.hpp"

using namespace cesp::vlsi;

TEST(Technology, ThreeCalibratedProcesses)
{
    EXPECT_EQ(allProcesses().size(), 3u);
    EXPECT_DOUBLE_EQ(technology(Process::um0_8).feature_um, 0.8);
    EXPECT_DOUBLE_EQ(technology(Process::um0_35).feature_um, 0.35);
    EXPECT_DOUBLE_EQ(technology(Process::um0_18).feature_um, 0.18);
}

TEST(Technology, LambdaIsHalfFeature)
{
    for (Process p : allProcesses()) {
        const Technology &t = technology(p);
        EXPECT_DOUBLE_EQ(t.lambda_um, t.feature_um / 2.0);
    }
}

TEST(Technology, WireDelayMatchesTable1InEveryProcess)
{
    // 20500-lambda result wire = 184.9 ps regardless of process
    // (the paper's constant-wire-delay scaling model).
    for (Process p : allProcesses())
        EXPECT_NEAR(technology(p).wireDelayPs(20500.0), 184.9, 0.5)
            << technology(p).name;
}

TEST(Technology, WireDelayIsQuadraticInLength)
{
    const Technology &t = technology(Process::um0_18);
    double d1 = t.wireDelayPs(10000.0);
    double d2 = t.wireDelayPs(20000.0);
    EXPECT_NEAR(d2 / d1, 4.0, 1e-9);
}

TEST(Technology, LogicScaleRelative018)
{
    EXPECT_DOUBLE_EQ(technology(Process::um0_18).logic_scale, 1.0);
    EXPECT_NEAR(technology(Process::um0_35).logic_scale,
                0.35 / 0.18, 1e-12);
    EXPECT_NEAR(technology(Process::um0_8).logic_scale, 0.8 / 0.18,
                1e-12);
}

TEST(ScaledTechnology, MatchesCalibratedAt018)
{
    Technology t = makeScaledTechnology(0.18);
    EXPECT_NEAR(t.wireDelayPs(20500.0),
                technology(Process::um0_18).wireDelayPs(20500.0),
                1e-9);
}

TEST(ScaledTechnology, PreservesConstantWireDelayPerLambda)
{
    // Extrapolation keeps the scaling model: same lambda length,
    // same delay.
    Technology t13 = makeScaledTechnology(0.13);
    Technology t09 = makeScaledTechnology(0.09);
    EXPECT_NEAR(t13.wireDelayPs(20500.0), 184.9, 0.5);
    EXPECT_NEAR(t09.wireDelayPs(20500.0), 184.9, 0.5);
}

TEST(ScaledTechnology, LogicScaleTracksFeature)
{
    Technology t = makeScaledTechnology(0.09);
    EXPECT_NEAR(t.logic_scale, 0.5, 1e-12);
}

TEST(ScaledTechnologyDeathTest, RejectsNonPositiveFeature)
{
    EXPECT_EXIT(makeScaledTechnology(0.0),
                ::testing::ExitedWithCode(1), "positive");
    EXPECT_EXIT(makeScaledTechnology(-1.0),
                ::testing::ExitedWithCode(1), "positive");
}
