/**
 * @file
 * Quickstart: write a few lines of PJ-RISC assembly, run it through
 * the functional emulator, and compare the window-based and
 * dependence-based machines on its trace — the whole public API in
 * one page, including the standard metrics rendering (statTable
 * over the run's registry).
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "func/emulator.hpp"
#include "trace/trace.hpp"

using namespace cesp;

// A dot-product over 2048 elements with a strided initialization:
// enough work for the pipelines to reach steady state.
static const char *kProgram = R"ASM(
        .data
va:     .space 8192
vb:     .space 8192
        .text
main:   la   s0, va
        la   s1, vb
        li   t0, 0
        li   t9, 2048
init:   slli t1, t0, 2
        add  t2, s0, t1
        add  t3, s1, t1
        addi t4, t0, 3
        slli t5, t0, 1
        addi t5, t5, 7
        sw   t4, 0(t2)
        sw   t5, 0(t3)
        addi t0, t0, 1
        blt  t0, t9, init
        li   t0, 0
        li   s2, 0
dot:    slli t1, t0, 2
        add  t2, s0, t1
        add  t3, s1, t1
        lw   t4, 0(t2)
        lw   t5, 0(t3)
        mul  t6, t4, t5
        add  s2, s2, t6
        addi t0, t0, 1
        blt  t0, t9, dot
        halt
)ASM";

int
main()
{
    // 1. Functional execution + trace capture.
    trace::TraceBuffer buf;
    func::ExecResult r = func::runProgram(kProgram, 1000000, &buf);
    std::printf("functional: %llu instructions, halted=%d\n",
                (unsigned long long)r.instructions, r.halted);

    // 2. Timing simulation on two machine organizations.
    core::Machine window(core::baseline8Way());
    core::Machine fifos(core::dependence8x8());

    uarch::SimStats sw = window.runTrace(buf);
    uarch::SimStats sf = fifos.runTrace(buf);

    // 3. Every run's statistics live in a self-describing registry;
    // statTable renders it, group().toJson()/toCsv() export it.
    statTable(sw.group()).print();
    statTable(sf.group()).print();

    std::printf("window machine : IPC %.3f (%llu cycles)\n", sw.ipc(),
                (unsigned long long)sw.cycles());
    std::printf("fifo machine   : IPC %.3f (%llu cycles)\n", sf.ipc(),
                (unsigned long long)sf.cycles());
    std::printf("dependence-based IPC is %.1f%% of the window "
                "machine's\n", 100.0 * sf.ipc() / sw.ipc());
    return 0;
}
