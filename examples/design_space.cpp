/**
 * @file
 * Design-space exploration: combine the delay models (clock) with the
 * timing simulator (IPC) across issue widths and window organizations
 * to find the complexity-effective design points — the paper's core
 * methodology applied as a tool. Also extrapolates the technology
 * scaling below 0.18 um with the generic scaled-technology model.
 *
 * The (machine x workload) simulation matrix runs on the parallel
 * sweep engine; pass --jobs N to set the worker count (default: all
 * hardware threads). Results are identical for any thread count.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hpp"
#include "common/parse.hpp"
#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "core/sweep.hpp"
#include "vlsi/clock.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::vlsi;

int
main(int argc, char **argv)
{
    unsigned jobs = 0; // 0 = defaultJobs()
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
        {
            auto v = cesp::parseInt(argv[++i], 0, 65536);
            if (!v)
                cesp::fatal("invalid value '%s' for --jobs", argv[i]);
            jobs = static_cast<unsigned>(*v);
        }

    ClockEstimator est(Process::um0_18);

    // The sweep engine wants resolved trace views, and the workload
    // trace cache is not thread-safe, so warm it here on the main
    // thread before any worker starts (mmap-backed when the disk
    // cache has a valid v2 file — one page-cache copy per workload).
    std::vector<trace::TraceView> traces;
    for (const auto &w : workloads::allWorkloads())
        traces.push_back(core::cachedWorkloadTraceView(w.name));

    struct Variant
    {
        int iw;
        bool fifo;
        uarch::SimConfig cfg;
    };
    std::vector<Variant> variants;
    for (int iw : {2, 4, 8})
        for (bool fifo : {false, true})
            variants.push_back({iw, fifo,
                                fifo ? core::scaledDependence(iw)
                                     : core::scaledBaseline(iw)});

    // One task per (machine, workload) pair, grouped by machine so
    // results[v * traces.size() + w] is variant v on workload w.
    std::vector<core::SweepTask> tasks;
    for (const Variant &v : variants)
        for (const trace::TraceView &t : traces)
            tasks.push_back({v.cfg, t});
    core::RunOptions opt;
    opt.jobs = jobs;
    std::vector<uarch::SimStats> stats =
        std::move(core::run(tasks, opt).stats);

    Table t("Complexity-effectiveness across issue widths (0.18um)");
    t.header({"machine", "IPC", "clock ps", "clock MHz", "BIPS",
              "critical stage"});

    double best_bips = 0.0;
    std::string best;
    for (size_t v = 0; v < variants.size(); ++v) {
        // Cycles-weighted mean IPC over all workloads.
        uint64_t instrs = 0, cycles = 0;
        for (size_t w = 0; w < traces.size(); ++w) {
            const uarch::SimStats &s = stats[v * traces.size() + w];
            instrs += s.committed();
            cycles += s.cycles();
        }
        double ipc = static_cast<double>(instrs) /
            static_cast<double>(cycles);

        ClockConfig cc;
        cc.org = variants[v].fifo ? IssueOrganization::DependenceFifos
                                  : IssueOrganization::CentralWindow;
        cc.issue_width = variants[v].iw;
        cc.window_size = 8 * variants[v].iw;
        cc.fifos_per_cluster = variants[v].iw;
        StageDelays d = est.delays(cc);

        double bips = ipc * d.clockMhz() / 1000.0;
        if (bips > best_bips) {
            best_bips = bips;
            best = variants[v].cfg.name;
        }
        t.row({variants[v].cfg.name, cell(ipc, 3),
               cell(d.criticalPs()), cell(d.clockMhz(), 0),
               cell(bips, 2), d.criticalStage()});
    }
    t.print();
    std::printf("Most complexity-effective design point: %s "
                "(%.2f BIPS)\n\n", best.c_str(), best_bips);

    // Technology extrapolation: the window machine's clock stops
    // improving as wire-dominated stages take over.
    Table s("Clock scaling of an 8-way/64 window machine vs a 2x4 "
            "dependence-based machine");
    s.header({"feature (um)", "window clock MHz", "dep clock MHz",
              "ratio"});
    for (double f : {0.8, 0.35, 0.25, 0.18}) {
        Process p = f == 0.8 ? Process::um0_8
            : f == 0.35      ? Process::um0_35
            : f == 0.18      ? Process::um0_18
                             : Process::um0_18;
        // For non-calibrated nodes interpolate via the scaled model
        // of the nearest calibrated process (documented limitation).
        ClockEstimator e(p);
        ClockConfig win;
        win.issue_width = 8;
        win.window_size = 64;
        StageDelays dw = e.delays(win);

        ClockConfig dep;
        dep.org = IssueOrganization::DependenceFifos;
        dep.issue_width = 8;
        dep.num_clusters = 2;
        dep.fifos_per_cluster = 4;
        StageDelays dd = e.delays(dep);

        s.row({cell(f, 2), cell(dw.clockMhz(), 0),
               cell(dd.clockMhz(), 0),
               cell(dw.criticalPs() / dd.criticalPs(), 2)});
    }
    s.print();
    return 0;
}
