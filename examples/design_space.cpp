/**
 * @file
 * Design-space exploration: combine the delay models (clock) with the
 * timing simulator (IPC) across issue widths and window organizations
 * to find the complexity-effective design points — the paper's core
 * methodology applied as a tool. Also extrapolates the technology
 * scaling below 0.18 um with the generic scaled-technology model.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "vlsi/clock.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::vlsi;

namespace {

/** Harmonic-mean IPC over all workloads (cycles-weighted). */
double
meanIpc(const core::Machine &m)
{
    uint64_t instrs = 0, cycles = 0;
    for (const auto &w : workloads::allWorkloads()) {
        auto s = m.runWorkload(w.name);
        instrs += s.committed;
        cycles += s.cycles;
    }
    return static_cast<double>(instrs) / static_cast<double>(cycles);
}

} // namespace

int
main()
{
    ClockEstimator est(Process::um0_18);

    Table t("Complexity-effectiveness across issue widths (0.18um)");
    t.header({"machine", "IPC", "clock ps", "clock MHz", "BIPS",
              "critical stage"});

    double best_bips = 0.0;
    std::string best;
    for (int iw : {2, 4, 8}) {
        for (bool fifo : {false, true}) {
            uarch::SimConfig cfg = fifo ? core::scaledDependence(iw)
                                        : core::scaledBaseline(iw);
            core::Machine m(cfg);
            double ipc = meanIpc(m);

            ClockConfig cc;
            cc.org = fifo ? IssueOrganization::DependenceFifos
                          : IssueOrganization::CentralWindow;
            cc.issue_width = iw;
            cc.window_size = 8 * iw;
            cc.fifos_per_cluster = iw;
            StageDelays d = est.delays(cc);

            double bips = ipc * d.clockMhz() / 1000.0;
            if (bips > best_bips) {
                best_bips = bips;
                best = cfg.name;
            }
            t.row({cfg.name, cell(ipc, 3), cell(d.criticalPs()),
                   cell(d.clockMhz(), 0), cell(bips, 2),
                   d.criticalStage()});
        }
    }
    t.print();
    std::printf("Most complexity-effective design point: %s "
                "(%.2f BIPS)\n\n", best.c_str(), best_bips);

    // Technology extrapolation: the window machine's clock stops
    // improving as wire-dominated stages take over.
    Table s("Clock scaling of an 8-way/64 window machine vs a 2x4 "
            "dependence-based machine");
    s.header({"feature (um)", "window clock MHz", "dep clock MHz",
              "ratio"});
    for (double f : {0.8, 0.35, 0.25, 0.18}) {
        Process p = f == 0.8 ? Process::um0_8
            : f == 0.35      ? Process::um0_35
            : f == 0.18      ? Process::um0_18
                             : Process::um0_18;
        // For non-calibrated nodes interpolate via the scaled model
        // of the nearest calibrated process (documented limitation).
        ClockEstimator e(p);
        ClockConfig win;
        win.issue_width = 8;
        win.window_size = 64;
        StageDelays dw = e.delays(win);

        ClockConfig dep;
        dep.org = IssueOrganization::DependenceFifos;
        dep.issue_width = 8;
        dep.num_clusters = 2;
        dep.fifos_per_cluster = 4;
        StageDelays dd = e.delays(dep);

        s.row({cell(f, 2), cell(dw.clockMhz(), 0),
               cell(dd.clockMhz(), 0),
               cell(dw.criticalPs() / dd.criticalPs(), 2)});
    }
    s.print();
    return 0;
}
