/**
 * @file
 * Steering lab: a Figure 12-style visualization of the dependence-
 * based steering heuristic. Runs a short code fragment through the
 * dependence-based machine and prints, per dynamic instruction, the
 * FIFO it was steered to and the cycles at which it dispatched and
 * issued — showing chains of dependent instructions lining up in the
 * same FIFO and independent chains going to different FIFOs.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "core/presets.hpp"
#include "func/emulator.hpp"
#include "isa/disasm.hpp"
#include "uarch/pipeline.hpp"

using namespace cesp;

// A fragment in the spirit of the paper's Figure 12: interleaved
// dependence chains (an address computation chain, a counter chain,
// and independent loads).
static const char *kFragment = R"ASM(
        .data
tbl:    .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
cnt:    .word 0
        .text
main:   la   s0, tbl
        li   s1, 0          # loop counter
        li   s2, 0          # sum chain
        li   s3, 1          # product chain
loop:   slli t0, s1, 2      # chain A: index -> address -> load
        add  t1, s0, t0
        lw   t2, 0(t1)
        add  s2, s2, t2     # chain B: sum += value
        slli t3, t2, 1      # chain C: independent transform
        addi t4, t3, 5
        mul  s3, s3, t4     # chain D: product
        addi s1, s1, 1      # counter chain
        slti t5, s1, 16
        bnez t5, loop
        la   t6, cnt
        sw   s2, 0(t6)
        halt
)ASM";

int
main()
{
    trace::TraceBuffer buf;
    func::runProgram(kFragment, 100000, &buf);

    uarch::SimConfig cfg = core::dependence8x8();
    uarch::Pipeline pipe(cfg, buf);

    struct Event
    {
        uarch::DynInst inst;
        uint64_t issue = 0;
    };
    std::vector<Event> events;
    std::map<uint64_t, size_t> by_seq;

    pipe.setDispatchObserver([&](const uarch::DynInst &d) {
        by_seq[d.seq] = events.size();
        events.push_back({d, 0});
    });
    pipe.setIssueObserver([&](const uarch::DynInst &d) {
        events[by_seq[d.seq]].issue = d.issue_cycle;
    });

    uarch::SimStats stats = pipe.run();

    std::printf("Dependence-based steering of %zu dynamic "
                "instructions (8 FIFOs x 8 entries):\n\n",
                events.size());
    std::printf("%5s  %4s  %8s  %6s  %-28s\n", "seq", "fifo",
                "dispatch", "issue", "instruction");
    size_t shown = 0;
    for (const Event &e : events) {
        if (shown++ >= 40) {
            std::printf("  ... (%zu more)\n", events.size() - shown + 1);
            break;
        }
        uint32_t raw = 0; // reconstruct text from the trace op
        (void)raw;
        std::printf("%5llu  %4d  %8llu  %6llu  pc=0x%08x %s\n",
                    (unsigned long long)e.inst.seq, e.inst.fifo,
                    (unsigned long long)e.inst.dispatch_cycle,
                    (unsigned long long)e.issue, e.inst.op.pc,
                    isa::opInfo(e.inst.op.op).mnemonic);
    }

    std::printf("\nIPC %.3f over %llu cycles\n", stats.ipc(),
                (unsigned long long)stats.cycles());
    std::puts("Dependent instructions (e.g. the slli/add/lw address "
              "chain) share a FIFO; independent chains occupy "
              "separate FIFOs and issue in parallel.");
    return 0;
}
