/**
 * @file
 * Complexity report: print the delay of every modeled structure for
 * a machine configuration across the three technologies — the
 * Section 4.5 "summary of delays and pipeline issues" as a tool.
 * Structures the paper calls pipelinable are marked; the atomic ones
 * (wakeup+select, bypass) are the clock's real masters.
 */

#include <cstdio>

#include "common/table.hpp"
#include "vlsi/clock.hpp"
#include "vlsi/rename_cam.hpp"

using namespace cesp;
using namespace cesp::vlsi;

namespace {

void
report(const char *title, const ClockConfig &cfg)
{
    Table t(title);
    t.header({"structure", "0.8um (ps)", "0.35um (ps)", "0.18um (ps)",
              "pipelinable"});
    // Collect per-technology reports and merge rows.
    std::vector<std::vector<ClockEstimator::StructureDelay>> reports;
    for (Process p : allProcesses())
        reports.push_back(ClockEstimator(p).fullReport(cfg));
    for (size_t i = 0; i < reports[0].size(); ++i) {
        t.row({reports[0][i].name, cell(reports[0][i].ps),
               cell(reports[1][i].ps), cell(reports[2][i].ps),
               reports[0][i].pipelinable ? "yes" : "no (atomic)"});
    }
    t.print();

    for (Process p : allProcesses()) {
        StageDelays d = ClockEstimator(p).delays(cfg);
        std::printf("  %s clock: %.1f ps (%.0f MHz), %s-limited\n",
                    technology(p).name.c_str(), d.criticalPs(),
                    d.clockMhz(), d.criticalStage().c_str());
    }
    std::puts("");
}

} // namespace

int
main()
{
    ClockConfig window;
    window.issue_width = 8;
    window.window_size = 64;
    report("8-way, 64-entry window machine", window);

    ClockConfig dep;
    dep.org = IssueOrganization::DependenceFifos;
    dep.issue_width = 8;
    dep.num_clusters = 2;
    dep.fifos_per_cluster = 4;
    report("2x4-way clustered dependence-based machine", dep);

    // Side notes the paper makes in Section 4.1.
    RenameDelayModel rename(Process::um0_18);
    RenameCamDelayModel cam(Process::um0_18);
    Table n("Rename side notes (0.18um)");
    n.header({"quantity", "4-way", "8-way", "16-way"});
    n.row({"RAM map table (ps)", cell(rename.totalPs(4)),
           cell(rename.totalPs(8)), cell(rename.totalPs(16))});
    n.row({"CAM scheme, 120 regs (ps)", cell(cam.totalPs(4, 120)),
           cell(cam.totalPs(8, 120)), cell(cam.totalPs(16, 120))});
    n.row({"dependence check (ps)",
           cell(rename.dependenceCheckPs(4)),
           cell(rename.dependenceCheckPs(8)),
           cell(rename.dependenceCheckPs(16))});
    n.row({"check hidden behind table?",
           rename.dependenceCheckHidden(4) ? "yes" : "no",
           rename.dependenceCheckHidden(8) ? "yes" : "no",
           rename.dependenceCheckHidden(16) ? "yes" : "no"});
    n.print();
    std::puts("The dependence check hides behind the map table for "
              "the paper's 2/4/8-wide groups and emerges at 16 wide "
              "(Section 4.1.1).");
    return 0;
}
