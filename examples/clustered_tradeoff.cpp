/**
 * @file
 * Clustered-machine tradeoff study: sweep the inter-cluster bypass
 * latency and compare the steering policies' tolerance — extending
 * the paper's Section 5.6 comparison to slower interconnects (the
 * paper's "two or more cycles in future technologies").
 *
 * The 17-machine x 7-workload matrix runs on the parallel sweep
 * engine; pass --jobs N to set the worker count (default: all
 * hardware threads). Results are identical for any thread count.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hpp"
#include "common/parse.hpp"
#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "core/sweep.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

int
main(int argc, char **argv)
{
    unsigned jobs = 0; // 0 = defaultJobs()
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
        {
            auto v = parseInt(argv[++i], 0, 65536);
            if (!v)
                fatal("invalid value '%s' for --jobs", argv[i]);
            jobs = static_cast<unsigned>(*v);
        }

    // Resolve the workload traces on the main thread (the cache is
    // not thread-safe), then build the full machine list: the ideal
    // 1-cluster reference plus every organization at every bypass
    // latency.
    std::vector<trace::TraceView> traces;
    for (const auto &w : workloads::allWorkloads())
        traces.push_back(cachedWorkloadTraceView(w.name));

    std::vector<uarch::SimConfig> machines = {baseline8Way()};
    for (auto maker : {clusteredDependence2x4, clusteredWindows2x4,
                       clusteredExecDriven2x4, clusteredRandom2x4}) {
        for (int extra : {1, 2, 3, 4}) {
            uarch::SimConfig cfg = maker();
            cfg.inter_cluster_extra = extra;
            machines.push_back(cfg);
        }
    }

    std::vector<SweepTask> tasks;
    for (const uarch::SimConfig &cfg : machines)
        for (const trace::TraceView &t : traces)
            tasks.push_back({cfg, t});
    RunOptions opt;
    opt.jobs = jobs;
    std::vector<uarch::SimStats> stats =
        std::move(run(tasks, opt).stats);

    // Instruction-weighted mean IPC of machine m over all workloads:
    // merge the per-run registries and read the recomputed derived
    // metric (total committed over total cycles).
    auto meanIpc = [&](size_t m) {
        auto first = stats.begin() +
            static_cast<ptrdiff_t>(m * traces.size());
        std::vector<uarch::SimStats> runs(
            first, first + static_cast<ptrdiff_t>(traces.size()));
        return mergedStats(runs).value("ipc");
    };

    std::printf("ideal 1-cluster 8-way IPC: %.3f\n\n", meanIpc(0));

    Table t("IPC vs inter-cluster bypass latency (extra cycles)");
    t.header({"organization", "+1 (paper)", "+2", "+3", "+4"});
    size_t m = 1;
    for (int org = 0; org < 4; ++org) {
        std::vector<std::string> row = {machines[m].name};
        for (int extra = 0; extra < 4; ++extra)
            row.push_back(cell(meanIpc(m++), 3));
        t.row(row);
    }
    t.print();
    std::puts("Dependence-aware steering (FIFO or window) degrades "
              "gracefully as the interconnect slows; random steering "
              "collapses — the paper's motivation for grouping "
              "dependent instructions.");
    return 0;
}
