/**
 * @file
 * Clustered-machine tradeoff study: sweep the inter-cluster bypass
 * latency and compare the steering policies' tolerance — extending
 * the paper's Section 5.6 comparison to slower interconnects (the
 * paper's "two or more cycles in future technologies").
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "workloads/workloads.hpp"

using namespace cesp;
using namespace cesp::core;

namespace {

double
meanIpc(const uarch::SimConfig &cfg)
{
    Machine m(cfg);
    uint64_t instrs = 0, cycles = 0;
    for (const auto &w : workloads::allWorkloads()) {
        auto s = m.runWorkload(w.name);
        instrs += s.committed;
        cycles += s.cycles;
    }
    return static_cast<double>(instrs) / static_cast<double>(cycles);
}

} // namespace

int
main()
{
    double ideal = meanIpc(baseline8Way());
    std::printf("ideal 1-cluster 8-way IPC: %.3f\n\n", ideal);

    Table t("IPC vs inter-cluster bypass latency (extra cycles)");
    t.header({"organization", "+1 (paper)", "+2", "+3", "+4"});
    for (auto maker : {clusteredDependence2x4, clusteredWindows2x4,
                       clusteredExecDriven2x4, clusteredRandom2x4}) {
        uarch::SimConfig base_cfg = maker();
        std::vector<std::string> row = {base_cfg.name};
        for (int extra : {1, 2, 3, 4}) {
            uarch::SimConfig cfg = base_cfg;
            cfg.inter_cluster_extra = extra;
            row.push_back(cell(meanIpc(cfg), 3));
        }
        t.row(row);
    }
    t.print();
    std::puts("Dependence-aware steering (FIFO or window) degrades "
              "gracefully as the interconnect slows; random steering "
              "collapses — the paper's motivation for grouping "
              "dependent instructions.");
    return 0;
}
