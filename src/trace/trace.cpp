/**
 * @file
 * Trace utilities.
 */

#include "trace/trace.hpp"

#include "common/logging.hpp"

namespace cesp::trace {

TraceView
TraceView::slice(size_t offset, size_t n) const
{
    if (offset > count || n > count - offset)
        fatal("TraceView::slice: window [%zu, %zu) outside a %zu-"
              "record trace", offset, offset + n, count);
    return {records + offset, n};
}

TraceMix
computeMix(const TraceBuffer &buf)
{
    TraceMix m;
    m.total = buf.size();
    for (const TraceOp &op : buf.ops()) {
        switch (op.cls) {
          case isa::OpClass::Load:
            ++m.loads;
            break;
          case isa::OpClass::Store:
            ++m.stores;
            break;
          case isa::OpClass::BranchCond:
            ++m.cond_branches;
            break;
          case isa::OpClass::BranchUncond:
          case isa::OpClass::BranchInd:
            ++m.uncond;
            break;
          case isa::OpClass::IntAlu:
            ++m.int_alu;
            break;
          default:
            ++m.other;
            break;
        }
    }
    return m;
}

} // namespace cesp::trace
