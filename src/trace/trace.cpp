/**
 * @file
 * Trace utilities.
 */

#include "trace/trace.hpp"

namespace cesp::trace {

TraceMix
computeMix(const TraceBuffer &buf)
{
    TraceMix m;
    m.total = buf.size();
    for (const TraceOp &op : buf.ops()) {
        switch (op.cls) {
          case isa::OpClass::Load:
            ++m.loads;
            break;
          case isa::OpClass::Store:
            ++m.stores;
            break;
          case isa::OpClass::BranchCond:
            ++m.cond_branches;
            break;
          case isa::OpClass::BranchUncond:
          case isa::OpClass::BranchInd:
            ++m.uncond;
            break;
          case isa::OpClass::IntAlu:
            ++m.int_alu;
            break;
          default:
            ++m.other;
            break;
        }
    }
    return m;
}

} // namespace cesp::trace
