/**
 * @file
 * Implementation of the memory-mapped trace source.
 */

#include "trace/mmap_source.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>

#include "common/logging.hpp"

namespace cesp::trace {

namespace {

constexpr char kMagicV1[8] = {'C', 'E', 'S', 'P', 'T', 'R', 'C', '1'};

TraceIoResult
fail(TraceIoStatus status, std::string detail)
{
    return {status, std::move(detail)};
}

/**
 * close() that never leaks and never double-closes. On Linux the
 * descriptor is released even when close() fails with EINTR (POSIX
 * leaves the state unspecified); retrying the close would race a
 * concurrent open() that reused the slot and could shut someone
 * else's file. So EINTR is accepted silently, and any other failure
 * is reported but not retried — either way the fd is gone.
 */
void
closeFd(int fd, const std::string &path)
{
    if (::close(fd) != 0 && errno != EINTR)
        warn("close(%s): %s", path.c_str(), std::strerror(errno));
}

/**
 * munmap() with failure reporting. A failing munmap means the
 * (base, length) pair does not describe a mapping we own — an
 * accounting bug — and the address space it should have released is
 * lost; surfacing it beats diagnosing a mysterious ENOMEM hours into
 * a sweep.
 */
void
unmapChecked(void *base, size_t bytes, const std::string &path)
{
    if (::munmap(base, bytes) != 0)
        warn("munmap(%s, %zu bytes): %s — address space leaked",
             path.c_str(), bytes, std::strerror(errno));
}

} // namespace

void
MmapTraceSource::reset()
{
    if (map_base_)
        unmapChecked(map_base_, map_bytes_, path_);
    map_base_ = nullptr;
    map_bytes_ = 0;
    records_ = nullptr;
    count_ = 0;
    path_.clear();
}

TraceIoResult
MmapTraceSource::open(const std::string &path)
{
    reset();

    if constexpr (std::endian::native != std::endian::little) {
        // The zero-copy contract is "the bytes on disk are the
        // records in memory", which only holds on little-endian
        // hosts; big-endian callers must use the buffered loader.
        return fail(TraceIoStatus::Unsupported,
                    path + ": zero-copy mmap requires little-endian");
    }

    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return fail(TraceIoStatus::OpenFailed,
                    path + ": cannot open for mapping");

    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        closeFd(fd, path);
        return fail(TraceIoStatus::OpenFailed, path + ": fstat failed");
    }
    size_t file_bytes = static_cast<size_t>(st.st_size);
    if (file_bytes == 0) {
        closeFd(fd, path);
        // Zero length is a torn create, not a truncated trace — and
        // mmap of length 0 is EINVAL anyway, so it must be rejected
        // before the map attempt.
        return fail(TraceIoStatus::EmptyFile,
                    path + ": zero-length file");
    }
    if (file_bytes < kTraceV2HeaderBytes) {
        closeFd(fd, path);
        // A file too short even for a v1 header has no magic to
        // trust; report truncation either way.
        return fail(TraceIoStatus::ShortRead,
                    path + ": file shorter than a header");
    }

    // MAP_POPULATE prefaults the whole range in one kernel pass —
    // the CRC verification walks every page immediately anyway, and
    // batched faulting is much cheaper than 4 KB-at-a-time minor
    // faults. It is advisory; fall back silently where unsupported.
#ifdef MAP_POPULATE
    constexpr int kMapFlags = MAP_PRIVATE | MAP_POPULATE;
#else
    constexpr int kMapFlags = MAP_PRIVATE;
#endif
    void *base = ::mmap(nullptr, file_bytes, PROT_READ, kMapFlags,
                        fd, 0);
#ifdef MAP_POPULATE
    if (base == MAP_FAILED)
        base = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE,
                      fd, 0);
#endif
    closeFd(fd, path); // the mapping keeps its own reference
    if (base == MAP_FAILED)
        return fail(TraceIoStatus::MmapFailed,
                    path + ": mmap failed");

    const uint8_t *bytes = static_cast<const uint8_t *>(base);
    auto reject = [&](TraceIoResult r) {
        unmapChecked(base, file_bytes, path);
        return r;
    };

    if (std::memcmp(bytes, kMagicV1, sizeof(kMagicV1)) == 0)
        return reject(fail(TraceIoStatus::LegacyVersion,
                           path + ": v1 file (convert to v2 to mmap)"));

    uint64_t count = 0;
    uint32_t crc = 0;
    TraceIoResult hdr =
        detail::parseV2Header(bytes, path, count, crc);
    if (!hdr.ok())
        return reject(hdr);

    // Compare counts, not byte products: a fabricated huge header
    // count must not overflow its way into matching the file size.
    uint64_t payload_bytes = file_bytes - kTraceV2HeaderBytes;
    if (payload_bytes % kTraceRecordBytes != 0 ||
        count != payload_bytes / kTraceRecordBytes)
        return reject(fail(
            TraceIoStatus::CountMismatch,
            path + ": " + std::to_string(file_bytes) +
                " bytes does not match header count " +
                std::to_string(count)));

    TraceIoResult payload = detail::verifyV2Payload(
        bytes + kTraceV2HeaderBytes, count, crc, path);
    if (!payload.ok())
        return reject(payload);

    map_base_ = base;
    map_bytes_ = file_bytes;
    records_ = reinterpret_cast<const TraceOp *>(
        bytes + kTraceV2HeaderBytes);
    count_ = static_cast<size_t>(count);
    path_ = path;
    return traceIoOk();
}

} // namespace cesp::trace
