/**
 * @file
 * Stochastic synthetic trace generator.
 *
 * Produces dynamic instruction streams with controllable instruction
 * mix, register-dependence distance, branch behaviour, and memory
 * locality — used for parameter sweeps and property tests where a
 * workload with a *known* statistical character is more useful than a
 * real kernel (e.g. "long dependence chains stress the FIFO steering",
 * "independent instructions expose issue-width limits").
 */

#ifndef CESP_TRACE_SYNTHETIC_HPP
#define CESP_TRACE_SYNTHETIC_HPP

#include "common/rng.hpp"
#include "trace/trace.hpp"

namespace cesp::trace {

/** Knobs for the synthetic generator. */
struct SyntheticParams
{
    uint64_t seed = 1;

    // Instruction mix (remaining fraction is integer ALU).
    double load_frac = 0.22;
    double store_frac = 0.12;
    double branch_frac = 0.16;

    /**
     * Register dependence: each source reads the destination of the
     * k-th previous result-producing instruction, where k is
     * geometric with this mean. Mean 1 produces serial chains; large
     * means produce highly parallel code.
     */
    double mean_dep_distance = 6.0;

    /** Probability a second source operand exists. */
    double two_src_frac = 0.6;

    /** Taken probability for conditional branches. */
    double taken_frac = 0.6;

    /**
     * Fraction of conditional branches whose outcome is random
     * (the rest strictly alternate with their static pc, which a
     * history predictor learns); controls the misprediction rate.
     */
    double noisy_branch_frac = 0.15;

    /** Data working-set size in bytes (cache behaviour knob). */
    uint32_t working_set = 16 * 1024;

    /** Mean basic-block length between branches, instructions. */
    double mean_block = 6.0;
};

/** Replayable synthetic trace source. */
class SyntheticTrace : public TraceSource
{
  public:
    SyntheticTrace(const SyntheticParams &params, uint64_t length);

    bool next(TraceOp &out) override;
    void rewind() override;

    uint64_t length() const { return length_; }

  private:
    void regenerate();
    TraceOp make();

    SyntheticParams params_;
    uint64_t length_;
    uint64_t produced_ = 0;
    Rng rng_;
    uint32_t pc_ = 0x00010000;
    // Ring of the most recent architectural destination registers,
    // used to realize dependence distances.
    static constexpr int kRing = 64;
    int recent_dst_[kRing] = {};
    int ring_pos_ = 0;
    int next_reg_ = 1;
    uint64_t branch_seq_ = 0;
};

/** Generate a full buffer (convenience for tests/benches). */
TraceBuffer generateSynthetic(const SyntheticParams &params,
                              uint64_t length);

} // namespace cesp::trace

#endif // CESP_TRACE_SYNTHETIC_HPP
