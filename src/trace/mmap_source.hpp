/**
 * @file
 * Zero-copy trace source over a memory-mapped v2 trace file.
 *
 * A v2 file's payload is TraceOp's in-memory layout verbatim, so
 * once the header and CRC check out the mapping itself is the record
 * array: no decode pass, no private TraceBuffer, no per-record copy.
 * Every process that maps the same cached workload trace shares one
 * page-cache copy — N sweep workers in N processes read the same
 * physical pages, where the buffered loader gave each process its
 * own tens-of-MB decoded vector.
 *
 * Integrity: open() refuses to serve a file whose magic, record
 * size, count-vs-file-size, CRC-32, or record contents are wrong,
 * with a distinct TraceIoStatus for each, so a torn or corrupted
 * cache file can never reach the simulator; callers fall back to
 * regeneration (see core::cachedWorkloadTrace).
 *
 * Concurrency: the mapping is read-only and MAP_PRIVATE; any number
 * of TraceCursors from any number of threads may walk view()
 * concurrently. The source must outlive every cursor and view taken
 * from it.
 */

#ifndef CESP_TRACE_MMAP_SOURCE_HPP
#define CESP_TRACE_MMAP_SOURCE_HPP

#include <string>
#include <utility>

#include "trace/tracefile.hpp"

namespace cesp::trace {

/** A v2 trace file served in place from a read-only mapping. */
class MmapTraceSource
{
  public:
    MmapTraceSource() = default;
    ~MmapTraceSource() { reset(); }

    MmapTraceSource(MmapTraceSource &&other) noexcept
    {
        swap(other);
    }

    MmapTraceSource &
    operator=(MmapTraceSource &&other) noexcept
    {
        if (this != &other) {
            reset();
            swap(other);
        }
        return *this;
    }

    MmapTraceSource(const MmapTraceSource &) = delete;
    MmapTraceSource &operator=(const MmapTraceSource &) = delete;

    /**
     * Map and validate @p path, replacing any current mapping. On
     * failure the source is left empty and the result says exactly
     * what was wrong (LegacyVersion for a valid-magic v1 file, which
     * callers may convert or load through the buffered reader).
     */
    TraceIoResult open(const std::string &path);

    /** Unmap; views and cursors into this source become invalid. */
    void reset();

    bool mapped() const { return map_base_ != nullptr; }
    size_t size() const { return count_; }
    const std::string &path() const { return path_; }

    /** The records, served directly from the page cache. */
    TraceView view() const { return {records_, count_}; }
    /*implicit*/ operator TraceView() const { return view(); }

    /** A private cursor over the mapping (caller owns position). */
    TraceCursor cursor() const { return TraceCursor(view()); }

  private:
    void
    swap(MmapTraceSource &other) noexcept
    {
        std::swap(records_, other.records_);
        std::swap(count_, other.count_);
        std::swap(map_base_, other.map_base_);
        std::swap(map_bytes_, other.map_bytes_);
        std::swap(path_, other.path_);
    }

    const TraceOp *records_ = nullptr;
    size_t count_ = 0;
    void *map_base_ = nullptr;
    size_t map_bytes_ = 0;
    std::string path_;
};

} // namespace cesp::trace

#endif // CESP_TRACE_MMAP_SOURCE_HPP
