/**
 * @file
 * Binary trace file I/O. Traces regenerate deterministically from the
 * workload kernels, but emulating a million instructions per
 * (process, workload) pair adds up across the test and bench
 * binaries; a versioned on-disk format lets harnesses share captured
 * traces (see core::cachedWorkloadTrace's disk cache).
 *
 * Format: 16-byte header (magic "CESPTRC1", record count), then one
 * packed 20-byte little-endian record per dynamic instruction.
 */

#ifndef CESP_TRACE_TRACEFILE_HPP
#define CESP_TRACE_TRACEFILE_HPP

#include <string>

#include "trace/trace.hpp"

namespace cesp::trace {

/** Write a trace to @p path; false on I/O error. */
bool saveTrace(const TraceBuffer &buf, const std::string &path);

/**
 * Read a trace from @p path into @p out (replacing its contents);
 * false if the file is missing, truncated, or version-mismatched.
 */
bool loadTrace(const std::string &path, TraceBuffer &out);

} // namespace cesp::trace

#endif // CESP_TRACE_TRACEFILE_HPP
