/**
 * @file
 * Binary trace file I/O. Traces regenerate deterministically from the
 * workload kernels, but emulating a million instructions per
 * (process, workload) pair adds up across the test and bench
 * binaries; a versioned on-disk format lets harnesses share captured
 * traces (see core::cachedWorkloadTrace's disk cache).
 *
 * Two format versions exist:
 *
 *  - v1 ("CESPTRC1"): 16-byte header (magic, record count), then one
 *    packed 20-byte little-endian record per dynamic instruction.
 *    Read-only legacy format; no checksum.
 *  - v2 ("CESPTRC2"): 32-byte header (magic, record count, record
 *    size, CRC-32 of the payload), then the payload — TraceOp's
 *    in-memory layout verbatim, 20 bytes per record. Because the
 *    file layout IS the memory layout, a v2 file can be
 *    memory-mapped and served with zero decode and zero copy (see
 *    MmapTraceSource); the CRC lets every reader prove the payload
 *    intact before a simulation consumes it.
 *
 * All I/O reports failures as a TraceIoResult instead of a bare
 * bool: short writes, a failed flush or close (the way a full disk
 * actually surfaces), bad magic, a bad checksum, and a count/size
 * mismatch are distinct outcomes, so callers can log what happened
 * and fall back to regeneration.
 */

#ifndef CESP_TRACE_TRACEFILE_HPP
#define CESP_TRACE_TRACEFILE_HPP

#include <cstdint>
#include <string>

#include "trace/trace.hpp"

namespace cesp::trace {

/** Why a trace file operation failed (Ok when it didn't). */
enum class TraceIoStatus
{
    Ok,
    OpenFailed,     //!< cannot open the file at all
    ShortWrite,     //!< fwrite wrote fewer bytes than asked
    FlushFailed,    //!< fflush reported an error
    CloseFailed,    //!< fclose reported an error (buffered data lost)
    ShortRead,      //!< file ends before header/payload does
    EmptyFile,      //!< zero-length file (torn create, not a trace)
    BadMagic,       //!< not a cesp trace file
    LegacyVersion,  //!< valid v1 file where v2 was required (mmap)
    BadRecordSize,  //!< v2 header's record size is not ours
    CountMismatch,  //!< header count disagrees with the file size
    CrcMismatch,    //!< payload bytes fail the header checksum
    BadRecord,      //!< a record decodes to an impossible instruction
    MmapFailed,     //!< the mmap syscall itself failed
    Unsupported,    //!< zero-copy I/O unavailable on this platform
};

/** Human-readable name of a status (stable, for logs and tests). */
const char *traceIoStatusName(TraceIoStatus s);

/** Outcome of a trace file operation: a status plus logged detail. */
struct TraceIoResult
{
    TraceIoStatus status = TraceIoStatus::Ok;
    std::string detail; //!< path and specifics, for the caller's log

    bool ok() const { return status == TraceIoStatus::Ok; }
    explicit operator bool() const { return ok(); }
};

/** Success-constructing helper. */
inline TraceIoResult
traceIoOk()
{
    return {};
}

/** On-disk sizes, shared by the writer, reader, and mmap source. */
constexpr size_t kTraceV2HeaderBytes = 32;
constexpr size_t kTraceRecordBytes = 20;

/**
 * Write a trace to @p path in format v2. The data is flushed and the
 * stream closed before success is reported, so a TraceIoResult with
 * ok() set means every byte reached the OS — a full disk surfaces as
 * ShortWrite, FlushFailed, or CloseFailed, never as silent success.
 */
TraceIoResult saveTrace(const TraceBuffer &buf,
                        const std::string &path);

/**
 * Read a trace from @p path into @p out (replacing its contents).
 * Accepts v1 and v2 files; v2 payloads are checksum-verified. On
 * failure @p out is untouched.
 */
TraceIoResult loadTrace(const std::string &path, TraceBuffer &out);

/**
 * Write a trace in the legacy v1 format. Kept for the v1-vs-v2
 * round-trip tests and for producing inputs to `cesp-trace convert`;
 * new code should write v2 via saveTrace.
 */
TraceIoResult saveTraceV1(const TraceBuffer &buf,
                          const std::string &path);

namespace detail {

/**
 * Validate a v2 header (magic, record size) and extract the record
 * count and payload CRC. Shared by the buffered reader and the mmap
 * source.
 */
TraceIoResult parseV2Header(const uint8_t *header,
                            const std::string &path,
                            uint64_t &count_out, uint32_t &crc_out);

/**
 * Verify @p count records of raw v2 payload: CRC against the header
 * value, then enum-range validity of every record.
 */
TraceIoResult verifyV2Payload(const uint8_t *payload, uint64_t count,
                              uint32_t expect_crc,
                              const std::string &path);

} // namespace detail

} // namespace cesp::trace

#endif // CESP_TRACE_TRACEFILE_HPP
