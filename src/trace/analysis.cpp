/**
 * @file
 * Implementation of the trace analysis.
 */

#include "trace/analysis.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/logging.hpp"

namespace cesp::trace {

ScheduleResult
dataflowSchedule(const TraceBuffer &buf, const ScheduleLimits &limits)
{
    const size_t n = buf.size();
    ScheduleResult r;
    r.instructions = n;
    if (n == 0)
        return r;

    // Issue cycle of the most recent producer of each register.
    std::vector<uint64_t> reg_time(isa::kNumArchRegs, 0);
    // Latest store issue time per word address.
    std::unordered_map<uint32_t, uint64_t> store_time;
    // Issue cycles of all instructions (for the window constraint).
    std::vector<uint64_t> t(n, 0);
    // Instructions issued per cycle (for the width constraint).
    std::vector<uint32_t> per_cycle;

    uint64_t max_cycle = 0;
    for (size_t i = 0; i < n; ++i) {
        const TraceOp &op = buf[i];
        uint64_t ready = 0;
        if (op.src1 > 0)
            ready = std::max(ready, reg_time[op.src1]);
        if (op.src2 > 0)
            ready = std::max(ready, reg_time[op.src2]);
        if (limits.memory_deps && op.isLoad()) {
            auto it = store_time.find(op.mem_addr & ~3u);
            if (it != store_time.end())
                ready = std::max(ready, it->second);
        }
        uint64_t cycle = ready + 1;

        if (limits.window > 0 &&
            i >= static_cast<size_t>(limits.window))
            cycle = std::max(
                cycle, t[i - static_cast<size_t>(limits.window)] + 1);

        if (limits.issue_width > 0) {
            // Find the first cycle at or after `cycle` with a free
            // issue slot.
            if (per_cycle.size() <= cycle + 1)
                per_cycle.resize(2 * (cycle + 1), 0);
            while (per_cycle[cycle] >=
                   static_cast<uint32_t>(limits.issue_width)) {
                ++cycle;
                if (per_cycle.size() <= cycle + 1)
                    per_cycle.resize(2 * (cycle + 1), 0);
            }
            ++per_cycle[cycle];
        }

        t[i] = cycle;
        max_cycle = std::max(max_cycle, cycle);
        if (op.hasDst())
            reg_time[op.dst] = cycle;
        if (limits.memory_deps && op.isStore())
            store_time[op.mem_addr & ~3u] = cycle;
    }

    r.cycles = max_cycle;
    r.ipc = static_cast<double>(n) / static_cast<double>(max_cycle);
    return r;
}

DependenceStats
analyzeDependences(const TraceBuffer &buf)
{
    DependenceStats stats;
    const size_t n = buf.size();
    stats.instructions = n;
    if (n == 0)
        return stats;

    std::vector<int64_t> producer(isa::kNumArchRegs, -1);
    std::vector<uint64_t> chain(isa::kNumArchRegs, 0);
    uint64_t independent = 0;
    uint64_t adjacent = 0;
    uint64_t longest = 0;

    for (size_t i = 0; i < n; ++i) {
        const TraceOp &op = buf[i];
        int64_t nearest = -1;
        uint64_t depth = 0;
        for (int src : {static_cast<int>(op.src1),
                        static_cast<int>(op.src2)}) {
            if (src <= 0)
                continue;
            int64_t p = producer[static_cast<size_t>(src)];
            if (p >= 0) {
                stats.distance.add(
                    static_cast<double>(static_cast<int64_t>(i) - p));
                nearest = std::max(nearest, p);
                depth = std::max(depth,
                                 chain[static_cast<size_t>(src)]);
            }
        }
        if (nearest < 0)
            ++independent;
        else if (nearest == static_cast<int64_t>(i) - 1)
            ++adjacent;

        if (op.hasDst()) {
            producer[op.dst] = static_cast<int64_t>(i);
            chain[op.dst] = depth + 1;
            longest = std::max(longest, depth + 1);
        }
    }

    stats.independent_frac =
        static_cast<double>(independent) / static_cast<double>(n);
    stats.adjacent_frac =
        static_cast<double>(adjacent) / static_cast<double>(n);
    stats.critical_path = longest;
    return stats;
}

} // namespace cesp::trace
