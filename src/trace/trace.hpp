/**
 * @file
 * Dynamic instruction trace: the interface between the functional
 * emulator (or the synthetic generator) and the timing simulator.
 * The paper's methodology is trace-driven cycle simulation (a modified
 * SimpleScalar); TraceOp carries exactly what that style of simulator
 * needs per dynamic instruction: operand registers, memory address,
 * and the actual control-flow outcome.
 */

#ifndef CESP_TRACE_TRACE_HPP
#define CESP_TRACE_TRACE_HPP

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "isa/isa.hpp"

namespace cesp::trace {

/** One dynamic instruction. */
struct TraceOp
{
    uint32_t pc = 0;
    uint32_t next_pc = 0;   //!< actual successor (branch outcome)
    uint32_t mem_addr = 0;  //!< effective address for loads/stores
    isa::Opcode op = isa::Opcode::NOP;
    isa::OpClass cls = isa::OpClass::Nop;
    int8_t dst = -1;        //!< flat arch register, -1/0 = none
    int8_t src1 = -1;
    int8_t src2 = -1;
    uint8_t mem_size = 0;   //!< access size in bytes (loads/stores)
    bool taken = false;     //!< branch outcome (true for taken)
    uint8_t pad = 0;        //!< explicit zero so the record has no
                            //!< indeterminate bytes (v2 files CRC the
                            //!< raw in-memory layout)

    bool
    hasDst() const
    {
        return dst > 0; // integer r0 never creates a dependence
    }

    bool isLoad() const { return cls == isa::OpClass::Load; }
    bool isStore() const { return cls == isa::OpClass::Store; }

    bool
    isCondBranch() const
    {
        return cls == isa::OpClass::BranchCond;
    }
};

// The v2 trace file format stores TraceOp's in-memory layout
// verbatim (one 20-byte record per dynamic instruction), so reading
// is a pointer cast instead of a decode pass. Pin the layout here:
// if a field is added or reordered, these fire and the format
// version must be bumped.
static_assert(sizeof(TraceOp) == 20, "trace record layout changed");
static_assert(std::is_trivially_copyable_v<TraceOp>,
              "trace records must be raw-copyable");
static_assert(offsetof(TraceOp, pc) == 0 &&
              offsetof(TraceOp, next_pc) == 4 &&
              offsetof(TraceOp, mem_addr) == 8 &&
              offsetof(TraceOp, op) == 12 &&
              offsetof(TraceOp, cls) == 13 &&
              offsetof(TraceOp, dst) == 14 &&
              offsetof(TraceOp, src1) == 15 &&
              offsetof(TraceOp, src2) == 16 &&
              offsetof(TraceOp, mem_size) == 17 &&
              offsetof(TraceOp, taken) == 18 &&
              offsetof(TraceOp, pad) == 19,
              "trace record layout changed");

/** Consumer interface for dynamic instructions. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void append(const TraceOp &op) = 0;
};

/** Producer interface for the timing simulator. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Fetch the next dynamic instruction; false at end of trace. */
    virtual bool next(TraceOp &out) = 0;

    /** Restart from the beginning (used to replay across configs). */
    virtual void rewind() = 0;
};

/** In-memory trace: both a sink and a replayable source. */
class TraceBuffer : public TraceSink, public TraceSource
{
  public:
    void
    append(const TraceOp &op) override
    {
        ops_.push_back(op);
    }

    bool
    next(TraceOp &out) override
    {
        if (pos_ >= ops_.size())
            return false;
        out = ops_[pos_++];
        return true;
    }

    void rewind() override { pos_ = 0; }

    /** Replace the contents wholesale (bulk-load path: file I/O
     *  reads records straight into a vector, no append loop). */
    void
    assign(std::vector<TraceOp> ops)
    {
        ops_ = std::move(ops);
        pos_ = 0;
    }

    size_t size() const { return ops_.size(); }
    bool empty() const { return ops_.empty(); }
    const TraceOp &operator[](size_t i) const { return ops_[i]; }
    const std::vector<TraceOp> &ops() const { return ops_; }

  private:
    std::vector<TraceOp> ops_;
    size_t pos_ = 0;
};

/**
 * Non-owning view of a contiguous run of trace records. This is the
 * common currency between the two shared-trace storage kinds — a
 * TraceBuffer's vector and an MmapTraceSource's file mapping — and
 * what the sweep runner passes around: a view is two words, freely
 * copyable, and many simulations can read through one concurrently.
 * The storage behind the view must stay alive (and must not
 * reallocate: don't append to a TraceBuffer while views of it are
 * live) for as long as the view is used.
 */
struct TraceView
{
    const TraceOp *records = nullptr;
    size_t count = 0;

    TraceView() = default;
    TraceView(const TraceOp *r, size_t n) : records(r), count(n) {}
    /*implicit*/ TraceView(const TraceBuffer &buf)
        : records(buf.ops().data()), count(buf.size())
    {
    }

    bool empty() const { return count == 0; }
    const TraceOp &operator[](size_t i) const { return records[i]; }

    /**
     * The contiguous window of @p n records starting at @p offset —
     * the zero-copy currency of trace sharding: a shard's window is
     * a view into the same storage, so splitting a trace K ways
     * allocates nothing. Fatal if the window reaches past the end.
     */
    TraceView slice(size_t offset, size_t n) const;
};

/**
 * Read-only cursor over records someone else owns. A TraceBuffer is
 * itself a TraceSource, but its cursor is part of the buffer, so two
 * simulations cannot share one buffer concurrently. Each TraceCursor
 * carries its own position and only reads the underlying storage —
 * any number of cursors may walk the same view from different
 * threads, which is what the sweep runner does.
 */
class TraceCursor : public TraceSource
{
  public:
    explicit TraceCursor(TraceView view) : view_(view) {}

    bool
    next(TraceOp &out) override
    {
        if (pos_ >= view_.count)
            return false;
        out = view_[pos_++];
        return true;
    }

    void rewind() override { pos_ = 0; }

    /** Jump to record @p pos; positions at or past the end make the
     *  next next() return false (an exhausted cursor, not an error). */
    void seek(size_t pos) { pos_ = pos; }

    /** Index of the record the next next() returns. */
    size_t position() const { return pos_; }

    /** The records this cursor walks. */
    TraceView view() const { return view_; }

  private:
    TraceView view_;
    size_t pos_ = 0;
};

/** Summary statistics of a trace (used by tests and reports). */
struct TraceMix
{
    uint64_t total = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t cond_branches = 0;
    uint64_t uncond = 0;
    uint64_t int_alu = 0;
    uint64_t other = 0;

    double
    frac(uint64_t n) const
    {
        return total ? static_cast<double>(n) /
            static_cast<double>(total) : 0.0;
    }
};

/** Classify every op in a buffer. */
TraceMix computeMix(const TraceBuffer &buf);

} // namespace cesp::trace

#endif // CESP_TRACE_TRACE_HPP
