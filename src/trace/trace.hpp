/**
 * @file
 * Dynamic instruction trace: the interface between the functional
 * emulator (or the synthetic generator) and the timing simulator.
 * The paper's methodology is trace-driven cycle simulation (a modified
 * SimpleScalar); TraceOp carries exactly what that style of simulator
 * needs per dynamic instruction: operand registers, memory address,
 * and the actual control-flow outcome.
 */

#ifndef CESP_TRACE_TRACE_HPP
#define CESP_TRACE_TRACE_HPP

#include <cstdint>
#include <vector>

#include "isa/isa.hpp"

namespace cesp::trace {

/** One dynamic instruction. */
struct TraceOp
{
    uint32_t pc = 0;
    uint32_t next_pc = 0;   //!< actual successor (branch outcome)
    uint32_t mem_addr = 0;  //!< effective address for loads/stores
    isa::Opcode op = isa::Opcode::NOP;
    isa::OpClass cls = isa::OpClass::Nop;
    int8_t dst = -1;        //!< flat arch register, -1/0 = none
    int8_t src1 = -1;
    int8_t src2 = -1;
    uint8_t mem_size = 0;   //!< access size in bytes (loads/stores)
    bool taken = false;     //!< branch outcome (true for taken)

    bool
    hasDst() const
    {
        return dst > 0; // integer r0 never creates a dependence
    }

    bool isLoad() const { return cls == isa::OpClass::Load; }
    bool isStore() const { return cls == isa::OpClass::Store; }

    bool
    isCondBranch() const
    {
        return cls == isa::OpClass::BranchCond;
    }
};

/** Consumer interface for dynamic instructions. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void append(const TraceOp &op) = 0;
};

/** Producer interface for the timing simulator. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Fetch the next dynamic instruction; false at end of trace. */
    virtual bool next(TraceOp &out) = 0;

    /** Restart from the beginning (used to replay across configs). */
    virtual void rewind() = 0;
};

/** In-memory trace: both a sink and a replayable source. */
class TraceBuffer : public TraceSink, public TraceSource
{
  public:
    void
    append(const TraceOp &op) override
    {
        ops_.push_back(op);
    }

    bool
    next(TraceOp &out) override
    {
        if (pos_ >= ops_.size())
            return false;
        out = ops_[pos_++];
        return true;
    }

    void rewind() override { pos_ = 0; }

    size_t size() const { return ops_.size(); }
    bool empty() const { return ops_.empty(); }
    const TraceOp &operator[](size_t i) const { return ops_[i]; }
    const std::vector<TraceOp> &ops() const { return ops_; }

  private:
    std::vector<TraceOp> ops_;
    size_t pos_ = 0;
};

/**
 * Read-only cursor over a TraceBuffer someone else owns. A
 * TraceBuffer is itself a TraceSource, but its cursor is part of the
 * buffer, so two simulations cannot share one buffer concurrently.
 * Each TraceCursor carries its own position and only reads the
 * underlying storage — any number of cursors may walk the same
 * buffer from different threads, which is what the sweep runner
 * does.
 */
class TraceCursor : public TraceSource
{
  public:
    explicit TraceCursor(const TraceBuffer &buf) : buf_(buf) {}

    bool
    next(TraceOp &out) override
    {
        if (pos_ >= buf_.size())
            return false;
        out = buf_[pos_++];
        return true;
    }

    void rewind() override { pos_ = 0; }

  private:
    const TraceBuffer &buf_;
    size_t pos_ = 0;
};

/** Summary statistics of a trace (used by tests and reports). */
struct TraceMix
{
    uint64_t total = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t cond_branches = 0;
    uint64_t uncond = 0;
    uint64_t int_alu = 0;
    uint64_t other = 0;

    double
    frac(uint64_t n) const
    {
        return total ? static_cast<double>(n) /
            static_cast<double>(total) : 0.0;
    }
};

/** Classify every op in a buffer. */
TraceMix computeMix(const TraceBuffer &buf);

} // namespace cesp::trace

#endif // CESP_TRACE_TRACE_HPP
