/**
 * @file
 * Implementation of the synthetic trace generator.
 */

#include "trace/synthetic.hpp"

#include <cmath>
#include <unordered_map>

#include "common/logging.hpp"

namespace cesp::trace {

namespace {

/** Per-branch-site outcome pattern state. */
std::unordered_map<uint32_t, uint32_t> &
siteCounters()
{
    thread_local std::unordered_map<uint32_t, uint32_t> counters;
    return counters;
}

} // namespace

SyntheticTrace::SyntheticTrace(const SyntheticParams &params,
                               uint64_t length)
    : params_(params), length_(length), rng_(params.seed)
{
    if (params.load_frac + params.store_frac + params.branch_frac >=
        1.0)
        fatal("synthetic trace: instruction-mix fractions sum to >= 1");
    if (params.mean_dep_distance < 1.0)
        fatal("synthetic trace: mean dependence distance must be >= 1");
    regenerate();
}

void
SyntheticTrace::regenerate()
{
    produced_ = 0;
    rng_ = Rng(params_.seed);
    pc_ = 0x00010000;
    ring_pos_ = 0;
    next_reg_ = 1;
    branch_seq_ = 0;
    for (int i = 0; i < kRing; ++i)
        recent_dst_[i] = 1;
    siteCounters().clear();
}

void
SyntheticTrace::rewind()
{
    regenerate();
}

bool
SyntheticTrace::next(TraceOp &out)
{
    if (produced_ >= length_)
        return false;
    out = make();
    ++produced_;
    return true;
}

TraceOp
SyntheticTrace::make()
{
    TraceOp t;
    t.pc = pc_;
    uint32_t next = pc_ + 4;

    // Pick a source register at the configured dependence distance.
    auto dep_src = [&]() -> int8_t {
        double u = rng_.uniform();
        if (u <= 0.0)
            u = 1e-12;
        int k = 1 + static_cast<int>(
            -(params_.mean_dep_distance - 1.0) * std::log(u));
        if (k > kRing)
            k = kRing;
        int idx = (ring_pos_ - k % kRing + kRing) % kRing;
        return static_cast<int8_t>(recent_dst_[idx]);
    };
    auto alloc_dst = [&]() -> int8_t {
        int r = next_reg_;
        next_reg_ = next_reg_ == 30 ? 1 : next_reg_ + 1;
        recent_dst_[ring_pos_] = r;
        ring_pos_ = (ring_pos_ + 1) % kRing;
        return static_cast<int8_t>(r);
    };
    auto mem_addr = [&]() -> uint32_t {
        uint32_t ws = params_.working_set & ~3u;
        if (ws < 64)
            ws = 64;
        return 0x10000000u + (static_cast<uint32_t>(
            rng_.below(ws / 4)) * 4u);
    };

    double u = rng_.uniform();
    if (u < params_.load_frac) {
        t.op = isa::Opcode::LW;
        t.cls = isa::OpClass::Load;
        t.src1 = dep_src();
        t.dst = alloc_dst();
        t.mem_addr = mem_addr();
        t.mem_size = 4;
    } else if (u < params_.load_frac + params_.store_frac) {
        t.op = isa::Opcode::SW;
        t.cls = isa::OpClass::Store;
        t.src1 = dep_src();
        t.src2 = dep_src();
        t.mem_addr = mem_addr();
        t.mem_size = 4;
    } else if (u < params_.load_frac + params_.store_frac +
               params_.branch_frac) {
        t.op = isa::Opcode::BNE;
        t.cls = isa::OpClass::BranchCond;
        t.src1 = dep_src();
        if (rng_.chance(params_.two_src_frac))
            t.src2 = dep_src();
        ++branch_seq_;
        // Patterned sites repeat a short taken/not-taken sequence a
        // history predictor can learn; noisy sites flip randomly.
        uint32_t &count = siteCounters()[t.pc];
        bool noisy =
            (t.pc * 2654435761u >> 16) % 1000 <
            static_cast<uint32_t>(params_.noisy_branch_frac * 1000);
        if (noisy) {
            t.taken = rng_.chance(params_.taken_frac);
        } else {
            uint32_t period = 2 + ((t.pc >> 4) % 6);
            t.taken = (count % period) != 0;
        }
        ++count;
        if (t.taken) {
            // Loop-like control: mostly short backward jumps, with
            // occasional forward skips.
            uint32_t blk = static_cast<uint32_t>(
                1 + rng_.below(static_cast<uint64_t>(
                    params_.mean_block * 2.0)));
            if (rng_.chance(0.8)) {
                uint32_t back = blk * 16;
                next = t.pc >= 0x00010000u + back ? t.pc - back
                                                  : 0x00010000u;
            } else {
                next = t.pc + 4 + blk * 16;
            }
        }
    } else {
        t.op = isa::Opcode::ADD;
        t.cls = isa::OpClass::IntAlu;
        t.src1 = dep_src();
        if (rng_.chance(params_.two_src_frac))
            t.src2 = dep_src();
        t.dst = alloc_dst();
    }

    t.next_pc = next;
    pc_ = next;
    return t;
}

TraceBuffer
generateSynthetic(const SyntheticParams &params, uint64_t length)
{
    TraceBuffer buf;
    SyntheticTrace src(params, length);
    TraceOp op;
    while (src.next(op))
        buf.append(op);
    return buf;
}

} // namespace cesp::trace
