/**
 * @file
 * Implementation of the binary trace file formats (v1 read/write,
 * v2 read/write, shared v2 validation used by MmapTraceSource).
 */

#include "trace/tracefile.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/crc32.hpp"
#include "common/logging.hpp"

namespace cesp::trace {

namespace {

constexpr char kMagicV1[8] = {'C', 'E', 'S', 'P', 'T', 'R', 'C', '1'};
constexpr char kMagicV2[8] = {'C', 'E', 'S', 'P', 'T', 'R', 'C', '2'};
constexpr bool kLittleEndian =
    std::endian::native == std::endian::little;

void
put32(uint8_t *p, uint32_t v)
{
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
    p[2] = static_cast<uint8_t>(v >> 16);
    p[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t
get32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
        (static_cast<uint32_t>(p[1]) << 8) |
        (static_cast<uint32_t>(p[2]) << 16) |
        (static_cast<uint32_t>(p[3]) << 24);
}

void
put64(uint8_t *p, uint64_t v)
{
    put32(p, static_cast<uint32_t>(v));
    put32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint64_t
get64(const uint8_t *p)
{
    return get32(p) | (static_cast<uint64_t>(get32(p + 4)) << 32);
}

/**
 * True if the record's enum bytes are in range. The CRC proves a v2
 * payload holds the bytes the writer produced, but a writer bug (or
 * a file from a future opcode set) could still smuggle an impossible
 * instruction into the simulator; this is the last gate.
 */
bool
recordValid(const uint8_t *p)
{
    return p[12] < static_cast<uint8_t>(isa::Opcode::NUM_OPCODES) &&
        p[13] <= static_cast<uint8_t>(isa::OpClass::Nop);
}

void
pack(const TraceOp &op, uint8_t *p)
{
    put32(p, op.pc);
    put32(p + 4, op.next_pc);
    put32(p + 8, op.mem_addr);
    p[12] = static_cast<uint8_t>(op.op);
    p[13] = static_cast<uint8_t>(op.cls);
    p[14] = static_cast<uint8_t>(op.dst);
    p[15] = static_cast<uint8_t>(op.src1);
    p[16] = static_cast<uint8_t>(op.src2);
    p[17] = op.mem_size;
    p[18] = op.taken ? 1 : 0;
    p[19] = 0;
}

bool
unpack(const uint8_t *p, TraceOp &op)
{
    if (!recordValid(p))
        return false;
    op.pc = get32(p);
    op.next_pc = get32(p + 4);
    op.mem_addr = get32(p + 8);
    op.op = static_cast<isa::Opcode>(p[12]);
    op.cls = static_cast<isa::OpClass>(p[13]);
    op.dst = static_cast<int8_t>(p[14]);
    op.src1 = static_cast<int8_t>(p[15]);
    op.src2 = static_cast<int8_t>(p[16]);
    op.mem_size = p[17];
    op.taken = p[18] != 0;
    op.pad = 0;
    return true;
}

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

TraceIoResult
fail(TraceIoStatus status, std::string detail)
{
    return {status, std::move(detail)};
}

/**
 * Flush and close a stream we wrote, reporting the failure mode:
 * this is where a full disk finally surfaces when every fwrite
 * landed in stdio's buffer.
 */
TraceIoResult
finishWrite(std::FILE *f, const std::string &path)
{
    if (std::fflush(f) != 0) {
        std::fclose(f);
        return fail(TraceIoStatus::FlushFailed,
                    path + ": fflush failed");
    }
    if (std::fclose(f) != 0)
        return fail(TraceIoStatus::CloseFailed,
                    path + ": fclose failed");
    return traceIoOk();
}

/** Serialize the trace as v2 payload bytes (big-endian hosts only). */
std::vector<uint8_t>
packPayload(const TraceBuffer &buf)
{
    std::vector<uint8_t> bytes(buf.size() * kTraceRecordBytes);
    for (size_t i = 0; i < buf.size(); ++i)
        pack(buf[i], bytes.data() + i * kTraceRecordBytes);
    return bytes;
}

TraceIoResult
loadTraceV1(std::FILE *f, const uint8_t *header,
            const std::string &path, TraceBuffer &out)
{
    uint64_t count = get64(header + 8);

    TraceBuffer result;
    std::vector<uint8_t> block(kTraceRecordBytes * 4096);
    uint64_t remaining = count;
    while (remaining > 0) {
        size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(4096, remaining));
        if (std::fread(block.data(), kTraceRecordBytes, chunk, f) !=
            chunk)
            return fail(TraceIoStatus::ShortRead,
                        path + ": v1 payload truncated");
        for (size_t j = 0; j < chunk; ++j) {
            TraceOp op;
            if (!unpack(block.data() + j * kTraceRecordBytes, op))
                return fail(TraceIoStatus::BadRecord,
                            path + ": v1 record out of range");
            result.append(op);
        }
        remaining -= chunk;
    }
    if (std::fgetc(f) != EOF)
        return fail(TraceIoStatus::CountMismatch,
                    path + ": bytes beyond the v1 record count");
    out = std::move(result);
    out.rewind();
    return traceIoOk();
}

TraceIoResult
loadTraceV2(std::FILE *f, const uint8_t *header,
            const std::string &path, TraceBuffer &out)
{
    uint64_t count = 0;
    uint32_t crc = 0;
    TraceIoResult hdr = detail::parseV2Header(header, path, count,
                                              crc);
    if (!hdr.ok())
        return hdr;

    // Bound the allocation by the actual file size before trusting
    // the header's count: a fabricated huge count must surface as a
    // truncated-payload failure, not a bad_alloc.
    long here = std::ftell(f);
    if (here >= 0 && std::fseek(f, 0, SEEK_END) == 0) {
        long end = std::ftell(f);
        std::fseek(f, here, SEEK_SET);
        uint64_t avail = end > here
            ? static_cast<uint64_t>(end - here) : 0;
        if (count > avail / kTraceRecordBytes)
            return fail(TraceIoStatus::ShortRead,
                        path + ": v2 payload truncated");
    }

    std::vector<TraceOp> records(count);
    size_t payload_bytes = count * kTraceRecordBytes;
    if (count &&
        std::fread(records.data(), 1, payload_bytes, f) !=
            payload_bytes)
        return fail(TraceIoStatus::ShortRead,
                    path + ": v2 payload truncated");
    if (std::fgetc(f) != EOF)
        return fail(TraceIoStatus::CountMismatch,
                    path + ": bytes beyond the v2 record count");

    if constexpr (kLittleEndian) {
        TraceIoResult ok = detail::verifyV2Payload(
            reinterpret_cast<const uint8_t *>(records.data()), count,
            crc, path);
        if (!ok.ok())
            return ok;
    } else {
        // The file bytes are the little-endian layout; checksum them
        // as read, then decode each record into native order.
        const uint8_t *raw =
            reinterpret_cast<const uint8_t *>(records.data());
        TraceIoResult ok =
            detail::verifyV2Payload(raw, count, crc, path);
        if (!ok.ok())
            return ok;
        std::vector<uint8_t> bytes(raw, raw + payload_bytes);
        for (size_t i = 0; i < count; ++i)
            unpack(bytes.data() + i * kTraceRecordBytes, records[i]);
    }

    TraceBuffer result;
    result.assign(std::move(records));
    out = std::move(result);
    out.rewind();
    return traceIoOk();
}

} // namespace

namespace detail {

TraceIoResult
parseV2Header(const uint8_t *header, const std::string &path,
              uint64_t &count_out, uint32_t &crc_out)
{
    if (std::memcmp(header, kMagicV2, sizeof(kMagicV2)) != 0)
        return fail(TraceIoStatus::BadMagic, path + ": not a v2 header");
    uint32_t record_bytes = get32(header + 16);
    if (record_bytes != kTraceRecordBytes)
        return fail(TraceIoStatus::BadRecordSize,
                    path + ": record size " +
                        std::to_string(record_bytes) + " != " +
                        std::to_string(kTraceRecordBytes));
    count_out = get64(header + 8);
    crc_out = get32(header + 20);
    return traceIoOk();
}

TraceIoResult
verifyV2Payload(const uint8_t *payload, uint64_t count,
                uint32_t expect_crc, const std::string &path)
{
    // Checksum and record validation interleave in blocks small
    // enough to stay cache-resident, so a multi-hundred-MB payload
    // streams from memory once, not twice. The chained-seed CRC of
    // the blocks equals the one-shot CRC of the whole payload.
    constexpr uint64_t kBlockRecords = 8192; // 160 KB per block
    uint32_t actual = 0;
    uint64_t bad_record = UINT64_MAX;
    for (uint64_t base = 0; base < count; base += kBlockRecords) {
        uint64_t n = std::min(kBlockRecords, count - base);
        actual = crc32(payload + base * kTraceRecordBytes,
                       n * kTraceRecordBytes, actual);
        if (bad_record != UINT64_MAX)
            continue;
        for (uint64_t i = base; i < base + n; ++i) {
            if (!recordValid(payload + i * kTraceRecordBytes)) {
                bad_record = i;
                break;
            }
        }
    }
    // The CRC verdict comes first: if the bytes aren't the writer's
    // bytes, a "record out of range" would blame the wrong layer.
    if (actual != expect_crc)
        return fail(TraceIoStatus::CrcMismatch,
                    path + ": payload CRC " + strprintf("%08x", actual) +
                        " != header CRC " +
                        strprintf("%08x", expect_crc));
    if (bad_record != UINT64_MAX)
        return fail(TraceIoStatus::BadRecord,
                    path + ": record " + std::to_string(bad_record) +
                        " out of range");
    return traceIoOk();
}

} // namespace detail

const char *
traceIoStatusName(TraceIoStatus s)
{
    switch (s) {
      case TraceIoStatus::Ok: return "ok";
      case TraceIoStatus::OpenFailed: return "open-failed";
      case TraceIoStatus::ShortWrite: return "short-write";
      case TraceIoStatus::FlushFailed: return "flush-failed";
      case TraceIoStatus::CloseFailed: return "close-failed";
      case TraceIoStatus::ShortRead: return "short-read";
      case TraceIoStatus::EmptyFile: return "empty-file";
      case TraceIoStatus::BadMagic: return "bad-magic";
      case TraceIoStatus::LegacyVersion: return "legacy-version";
      case TraceIoStatus::BadRecordSize: return "bad-record-size";
      case TraceIoStatus::CountMismatch: return "count-mismatch";
      case TraceIoStatus::CrcMismatch: return "crc-mismatch";
      case TraceIoStatus::BadRecord: return "bad-record";
      case TraceIoStatus::MmapFailed: return "mmap-failed";
      case TraceIoStatus::Unsupported: return "unsupported";
    }
    return "unknown";
}

TraceIoResult
saveTrace(const TraceBuffer &buf, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return fail(TraceIoStatus::OpenFailed,
                    path + ": cannot open for writing");

    const uint8_t *payload;
    std::vector<uint8_t> packed;
    size_t payload_bytes = buf.size() * kTraceRecordBytes;
    if constexpr (kLittleEndian) {
        // The in-memory records are the file payload; no serialize
        // pass at all.
        payload = reinterpret_cast<const uint8_t *>(buf.ops().data());
    } else {
        packed = packPayload(buf);
        payload = packed.data();
    }

    uint8_t header[kTraceV2HeaderBytes] = {};
    std::memcpy(header, kMagicV2, sizeof(kMagicV2));
    put64(header + 8, buf.size());
    put32(header + 16, kTraceRecordBytes);
    put32(header + 20, crc32(payload, payload_bytes));

    if (std::fwrite(header, 1, sizeof(header), f) != sizeof(header) ||
        (payload_bytes &&
         std::fwrite(payload, 1, payload_bytes, f) != payload_bytes)) {
        std::fclose(f);
        return fail(TraceIoStatus::ShortWrite,
                    path + ": short write");
    }
    return finishWrite(f, path);
}

TraceIoResult
saveTraceV1(const TraceBuffer &buf, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return fail(TraceIoStatus::OpenFailed,
                    path + ": cannot open for writing");

    uint8_t header[16] = {};
    std::memcpy(header, kMagicV1, sizeof(kMagicV1));
    put64(header + 8, buf.size());
    if (std::fwrite(header, 1, sizeof(header), f) != sizeof(header)) {
        std::fclose(f);
        return fail(TraceIoStatus::ShortWrite, path + ": short write");
    }

    std::vector<uint8_t> block(kTraceRecordBytes * 4096);
    size_t i = 0;
    while (i < buf.size()) {
        size_t chunk = std::min<size_t>(4096, buf.size() - i);
        for (size_t j = 0; j < chunk; ++j)
            pack(buf[i + j], block.data() + j * kTraceRecordBytes);
        if (std::fwrite(block.data(), kTraceRecordBytes, chunk, f) !=
            chunk) {
            std::fclose(f);
            return fail(TraceIoStatus::ShortWrite,
                        path + ": short write");
        }
        i += chunk;
    }
    return finishWrite(f, path);
}

TraceIoResult
loadTrace(const std::string &path, TraceBuffer &out)
{
    std::unique_ptr<std::FILE, FileCloser> f(
        std::fopen(path.c_str(), "rb"));
    if (!f)
        return fail(TraceIoStatus::OpenFailed,
                    path + ": cannot open for reading");

    // Both versions' headers begin with the 8-byte magic and an
    // 8-byte record count; read the first 16 bytes to dispatch, then
    // the rest of the v2 header if needed.
    uint8_t header[kTraceV2HeaderBytes];
    size_t got = std::fread(header, 1, 16, f.get());
    if (got == 0 && std::feof(f.get()))
        // The classic torn-create artifact (open(O_CREAT), then a
        // crash before any write): no magic, no payload, nothing to
        // diagnose as "truncated" — its own status so cache fallback
        // logs say what actually happened.
        return fail(TraceIoStatus::EmptyFile,
                    path + ": zero-length file");
    if (got != 16)
        return fail(TraceIoStatus::ShortRead,
                    path + ": header truncated");
    if (std::memcmp(header, kMagicV1, sizeof(kMagicV1)) == 0)
        return loadTraceV1(f.get(), header, path, out);
    if (std::memcmp(header, kMagicV2, sizeof(kMagicV2)) != 0)
        return fail(TraceIoStatus::BadMagic,
                    path + ": unrecognized magic");
    if (std::fread(header + 16, 1, kTraceV2HeaderBytes - 16,
                   f.get()) != kTraceV2HeaderBytes - 16)
        return fail(TraceIoStatus::ShortRead,
                    path + ": v2 header truncated");
    return loadTraceV2(f.get(), header, path, out);
}

} // namespace cesp::trace
