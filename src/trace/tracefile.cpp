/**
 * @file
 * Implementation of the binary trace file format.
 */

#include "trace/tracefile.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace cesp::trace {

namespace {

constexpr char kMagic[8] = {'C', 'E', 'S', 'P', 'T', 'R', 'C', '1'};
constexpr size_t kRecordBytes = 20;

void
put32(uint8_t *p, uint32_t v)
{
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
    p[2] = static_cast<uint8_t>(v >> 16);
    p[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t
get32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
        (static_cast<uint32_t>(p[1]) << 8) |
        (static_cast<uint32_t>(p[2]) << 16) |
        (static_cast<uint32_t>(p[3]) << 24);
}

void
pack(const TraceOp &op, uint8_t *p)
{
    put32(p, op.pc);
    put32(p + 4, op.next_pc);
    put32(p + 8, op.mem_addr);
    p[12] = static_cast<uint8_t>(op.op);
    p[13] = static_cast<uint8_t>(op.cls);
    p[14] = static_cast<uint8_t>(op.dst);
    p[15] = static_cast<uint8_t>(op.src1);
    p[16] = static_cast<uint8_t>(op.src2);
    p[17] = op.mem_size;
    p[18] = op.taken ? 1 : 0;
    p[19] = 0;
}

bool
unpack(const uint8_t *p, TraceOp &op)
{
    op.pc = get32(p);
    op.next_pc = get32(p + 4);
    op.mem_addr = get32(p + 8);
    if (p[12] >= static_cast<uint8_t>(isa::Opcode::NUM_OPCODES))
        return false;
    op.op = static_cast<isa::Opcode>(p[12]);
    op.cls = static_cast<isa::OpClass>(p[13]);
    op.dst = static_cast<int8_t>(p[14]);
    op.src1 = static_cast<int8_t>(p[15]);
    op.src2 = static_cast<int8_t>(p[16]);
    op.mem_size = p[17];
    op.taken = p[18] != 0;
    return true;
}

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

} // namespace

bool
saveTrace(const TraceBuffer &buf, const std::string &path)
{
    std::unique_ptr<std::FILE, FileCloser> f(
        std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;

    uint8_t header[16] = {};
    std::memcpy(header, kMagic, sizeof(kMagic));
    put32(header + 8, static_cast<uint32_t>(buf.size()));
    put32(header + 12, static_cast<uint32_t>(buf.size() >> 32));
    if (std::fwrite(header, 1, sizeof(header), f.get()) !=
        sizeof(header))
        return false;

    std::vector<uint8_t> block(kRecordBytes * 4096);
    size_t i = 0;
    while (i < buf.size()) {
        size_t chunk = std::min<size_t>(4096, buf.size() - i);
        for (size_t j = 0; j < chunk; ++j)
            pack(buf[i + j], block.data() + j * kRecordBytes);
        if (std::fwrite(block.data(), kRecordBytes, chunk, f.get()) !=
            chunk)
            return false;
        i += chunk;
    }
    return true;
}

bool
loadTrace(const std::string &path, TraceBuffer &out)
{
    std::unique_ptr<std::FILE, FileCloser> f(
        std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;

    uint8_t header[16];
    if (std::fread(header, 1, sizeof(header), f.get()) !=
        sizeof(header))
        return false;
    if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0)
        return false;
    uint64_t count = get32(header + 8) |
        (static_cast<uint64_t>(get32(header + 12)) << 32);

    TraceBuffer result;
    std::vector<uint8_t> block(kRecordBytes * 4096);
    uint64_t remaining = count;
    while (remaining > 0) {
        size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(4096, remaining));
        if (std::fread(block.data(), kRecordBytes, chunk, f.get()) !=
            chunk)
            return false;
        for (size_t j = 0; j < chunk; ++j) {
            TraceOp op;
            if (!unpack(block.data() + j * kRecordBytes, op))
                return false;
            result.append(op);
        }
        remaining -= chunk;
    }
    out = std::move(result);
    out.rewind();
    return true;
}

} // namespace cesp::trace
