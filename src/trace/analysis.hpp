/**
 * @file
 * Trace analysis: dataflow ILP limits and dependence statistics.
 *
 * The paper's premise is that "a larger window is required for
 * finding more independent instructions to take advantage of wider
 * issue" (Section 4.2.2). This module measures that directly on a
 * trace: the dataflow (infinite-machine) IPC, the IPC under a finite
 * window and issue width with everything else perfect, and the
 * register dependence-distance distribution that the steering
 * heuristic exploits.
 */

#ifndef CESP_TRACE_ANALYSIS_HPP
#define CESP_TRACE_ANALYSIS_HPP

#include "common/stats.hpp"
#include "trace/trace.hpp"

namespace cesp::trace {

/** Constraints for the idealized dataflow schedule. */
struct ScheduleLimits
{
    /**
     * Instructions simultaneously in flight (0 = unbounded). With a
     * window of W, instruction i cannot issue before instruction
     * i - W has issued (in-order dispatch into the window).
     */
    int window = 0;
    /** Instructions issued per cycle (0 = unbounded). */
    int issue_width = 0;
    /**
     * Honor memory dependences: a load may not issue before the
     * latest earlier store to the same word.
     */
    bool memory_deps = true;
};

/** Result of an idealized schedule. */
struct ScheduleResult
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;       //!< critical-path length in cycles
    double ipc = 0.0;
};

/**
 * Schedule the trace on an idealized machine: unit latency, perfect
 * branch prediction and caches, full bypassing — only data
 * dependences and the given limits constrain issue.
 */
ScheduleResult dataflowSchedule(const TraceBuffer &buf,
                                const ScheduleLimits &limits = {});

/** Register dependence statistics of a trace. */
struct DependenceStats
{
    uint64_t instructions = 0;
    /** Distances (in dynamic instructions) to each source producer. */
    Sample distance;
    /** Fraction of instructions with no in-trace register producer. */
    double independent_frac = 0.0;
    /**
     * Fraction whose *nearest* producer is the immediately preceding
     * instruction (steered directly behind it by the heuristic).
     */
    double adjacent_frac = 0.0;
    /** Length of the longest register dependence chain (ops). */
    uint64_t critical_path = 0;
};

/** Compute register dependence statistics. */
DependenceStats analyzeDependences(const TraceBuffer &buf);

} // namespace cesp::trace

#endif // CESP_TRACE_ANALYSIS_HPP
