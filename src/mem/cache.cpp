/**
 * @file
 * Implementation of the cache timing model.
 */

#include "mem/cache.hpp"

#include "common/logging.hpp"

namespace cesp::mem {

namespace {

uint32_t
log2Exact(uint32_t v, const char *what)
{
    if (!v || (v & (v - 1)))
        fatal("cache: %s (%u) must be a power of two", what, v);
    uint32_t l = 0;
    while ((1u << l) < v)
        ++l;
    return l;
}

} // namespace

Cache::Cache(const uarch::CacheConfig &cfg) : cfg_(cfg)
{
    if (cfg.associativity < 1)
        fatal("cache: associativity %d < 1", cfg.associativity);
    set_shift_ = log2Exact(cfg.line_bytes, "line size");
    uint32_t lines_total = cfg.size_bytes / cfg.line_bytes;
    if (lines_total % static_cast<uint32_t>(cfg.associativity))
        fatal("cache: size/line/assoc mismatch");
    num_sets_ = lines_total / static_cast<uint32_t>(cfg.associativity);
    log2Exact(num_sets_, "set count");
    lines_.assign(static_cast<size_t>(num_sets_) *
                      static_cast<size_t>(cfg.associativity),
                  Line{});
}

uint32_t
Cache::setIndex(uint32_t addr) const
{
    return (addr >> set_shift_) & (num_sets_ - 1);
}

uint32_t
Cache::tagOf(uint32_t addr) const
{
    return addr >> set_shift_;
}

bool
Cache::probe(uint32_t addr) const
{
    uint32_t set = setIndex(addr);
    uint32_t tag = tagOf(addr);
    const Line *base =
        &lines_[static_cast<size_t>(set) *
                static_cast<size_t>(cfg_.associativity)];
    for (int w = 0; w < cfg_.associativity; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

Cache::Access
Cache::access(uint32_t addr, bool is_store)
{
    ++accesses_;
    ++stamp_;
    uint32_t set = setIndex(addr);
    uint32_t tag = tagOf(addr);
    Line *base = &lines_[static_cast<size_t>(set) *
                         static_cast<size_t>(cfg_.associativity)];

    for (int w = 0; w < cfg_.associativity; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lru = stamp_;
            if (is_store)
                l.dirty = true;
            return {true, false, cfg_.hit_latency};
        }
    }

    // Miss: allocate (write-allocate) into the LRU way.
    ++misses_;
    Line *victim = &base[0];
    for (int w = 1; w < cfg_.associativity; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru && victim->valid)
            victim = &base[w];
    }
    bool wb = victim->valid && victim->dirty;
    if (wb)
        ++writebacks_;
    victim->valid = true;
    victim->dirty = is_store;
    victim->tag = tag;
    victim->lru = stamp_;
    return {false, wb, cfg_.miss_latency};
}

void
Cache::flush()
{
    for (Line &l : lines_)
        l = Line{};
    stamp_ = 0;
}

} // namespace cesp::mem
