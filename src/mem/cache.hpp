/**
 * @file
 * Set-associative data cache timing model. Table 3 configuration:
 * 32 KB, 2-way set associative, 32-byte lines, write-back with
 * write-allocate, 1-cycle hit, 6-cycle miss. The model tracks tags,
 * LRU state and dirty bits only (data values come from the functional
 * trace), and reports per-access latency plus hit/miss/writeback
 * statistics.
 */

#ifndef CESP_MEM_CACHE_HPP
#define CESP_MEM_CACHE_HPP

#include <cstdint>
#include <vector>

#include "uarch/config.hpp"

namespace cesp::mem {

/** Timing-only set-associative cache. */
class Cache
{
  public:
    explicit Cache(const uarch::CacheConfig &cfg);

    /** Result of one access. */
    struct Access
    {
        bool hit;
        bool writeback; //!< a dirty victim was evicted
        int latency;    //!< cycles to data (hit or miss latency)
    };

    /**
     * Perform a load (@p is_store false) or store (@p is_store true)
     * access, updating tags/LRU/dirty state.
     */
    Access access(uint32_t addr, bool is_store);

    /** Probe without updating any state. */
    bool probe(uint32_t addr) const;

    /** Invalidate all lines and reset LRU (not the statistics). */
    void flush();

    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }
    uint64_t writebacks() const { return writebacks_; }

    double
    missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) /
            static_cast<double>(accesses_) : 0.0;
    }

    uint32_t numSets() const { return num_sets_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        uint32_t tag = 0;
        uint64_t lru = 0; //!< last-use stamp
    };

    uint32_t setIndex(uint32_t addr) const;
    uint32_t tagOf(uint32_t addr) const;

    uarch::CacheConfig cfg_;
    uint32_t num_sets_;
    uint32_t set_shift_;  //!< log2(line_bytes)
    std::vector<Line> lines_; //!< num_sets x assoc
    uint64_t stamp_ = 0;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
    uint64_t writebacks_ = 0;
};

} // namespace cesp::mem

#endif // CESP_MEM_CACHE_HPP
