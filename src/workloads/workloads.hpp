/**
 * @file
 * The benchmark workloads.
 *
 * The paper evaluates seven SPEC'95 integer benchmarks (compress, gcc,
 * go, li, m88ksim, perl, vortex) with their training inputs. SPEC
 * sources cannot be redistributed, so each workload here is a
 * hand-written PJ-RISC assembly kernel built around the benchmark's
 * dominant computational pattern:
 *
 *   compress  - LZW compression: hash-probe dictionary over a
 *               repetitive byte stream (serial hash chains).
 *   gcc       - lexer/parser front end: character-class jump tables,
 *               token hashing (irregular, branchy).
 *   go        - recursive board-position search with pruning
 *               (recursion, data-dependent branches).
 *   li        - list interpreter: cons-cell allocation and pointer-
 *               chasing list traversals (long dependence chains).
 *   m88ksim   - instruction-set simulator main loop: fetch, field
 *               decode, dispatch table, simulated register file.
 *   perl      - string hashing and hash-table association processing.
 *   vortex    - object database: record copies, index insertion and
 *               lookup (memory-rich, highly parallel).
 *
 * Each kernel generates its own input data (deterministic LCG),
 * computes a checksum, prints it via PUTC, and halts; the checksum
 * makes functional correctness testable and guards against silent
 * emulator regressions.
 */

#ifndef CESP_WORKLOADS_WORKLOADS_HPP
#define CESP_WORKLOADS_WORKLOADS_HPP

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace cesp::workloads {

/** A registered benchmark kernel. */
struct Workload
{
    std::string name;          //!< e.g. "compress"
    std::string description;
    const char *source;        //!< PJ-RISC assembly text
    uint64_t max_instructions; //!< emulation bound (safety)
    std::string expected_console; //!< golden checksum output
};

/** All seven workloads, in the paper's figure order. */
const std::vector<Workload> &allWorkloads();

/**
 * Additional workloads beyond the paper's seven (not part of the
 * figure reproductions): "tomcatv", an FP stencil kernel exercising
 * the floating-point register class, and "ijpeg", the eighth
 * SPECint95 benchmark (high-ILP block transforms) that the paper's
 * evaluation omitted.
 */
const std::vector<Workload> &extraWorkloads();

/** Look up one workload by name (fatal if unknown). */
const Workload &workload(const std::string &name);

/**
 * Execute a workload on the functional emulator and return its
 * dynamic trace. Fatal if the kernel does not halt within its
 * instruction bound or its checksum does not match the golden value.
 */
trace::TraceBuffer traceOf(const Workload &w);

/** Names only, for harness iteration. */
std::vector<std::string> workloadNames();

} // namespace cesp::workloads

#endif // CESP_WORKLOADS_WORKLOADS_HPP
