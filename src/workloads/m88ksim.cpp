/**
 * @file
 * "m88ksim" workload: the main loop of an instruction-set simulator —
 * fetch a synthetic target instruction word, extract its fields with
 * shifts and masks, dispatch through a handler jump table, and update
 * a simulated register file and data memory. SPEC'95 124.m88ksim is
 * this loop; the field decodes are mutually independent, giving the
 * high ILP that makes m88ksim the paper's most cluster-sensitive
 * benchmark (~12% degradation from 2-cycle inter-cluster bypasses).
 */

#include "workloads/workloads.hpp"

namespace cesp::workloads {

const char *kM88ksimSource = R"ASM(
# ISA-simulator kernel.
#   target program : 2048 random 26-bit instruction words
#                    fields: op[25:23] rd[22:18] rs[17:13] rt[12:8]
#                    imm[7:0]
#   simulated state: 32-word register file, 1024-word data memory
#   run            : 30000 simulated instructions, wrapping pc
#   output         : rotate-add checksum of the final register file

        .data
prog:   .space 8192             # 2048 words
sregs:  .space 128              # simulated register file
dmem:   .space 4096             # simulated data memory
jtab2:  .word opadd, opsub, opand, opxor, opaddi, opload, opstore, opbr

        .text
main:
        # ---- generate the target program --------------------------
        la   s0, prog
        li   s3, 31415
        li   t4, 1103515245
        li   t5, 12345
        li   t6, 0
        li   t9, 2048
pg:     mul  s3, s3, t4
        add  s3, s3, t5
        srli t0, s3, 6
        slli t1, t6, 2
        add  t1, s0, t1
        sw   t0, 0(t1)
        addi t6, t6, 1
        blt  t6, t9, pg

        # ---- initialize the simulated register file ---------------
        la   s4, sregs
        li   t6, 0
        li   t9, 32
        li   t7, 40503
ri:     mul  t0, t6, t7
        andi t0, t0, 65535
        slli t1, t6, 2
        add  t1, s4, t1
        sw   t0, 0(t1)
        addi t6, t6, 1
        blt  t6, t9, ri

        # ---- simulator main loop ----------------------------------
        la   s7, prog
        la   s6, dmem
        la   s3, jtab2
        li   s1, 0              # simulated pc
        li   s2, 0              # simulated instruction count
siml:   slli t0, s1, 2
        add  t0, s7, t0
        lw   t1, 0(t0)          # fetch target word
        srli t2, t1, 23
        andi t2, t2, 7          # op
        srli t3, t1, 18
        andi t3, t3, 31         # rd
        srli t4, t1, 13
        andi t4, t4, 31         # rs
        srli t5, t1, 8
        andi t5, t5, 31         # rt
        andi t6, t1, 255        # imm
        slli t2, t2, 2
        add  t2, s3, t2
        lw   t2, 0(t2)          # handler address
        slli t7, t4, 2
        add  t7, s4, t7
        lw   t7, 0(t7)          # a = reg[rs]
        slli t8, t5, 2
        add  t8, s4, t8
        lw   t8, 0(t8)          # b = reg[rt]
        jr   t2

opadd:  add  t0, t7, t8
        j    wb
opsub:  sub  t0, t7, t8
        j    wb
opand:  and  t0, t7, t8
        j    wb
opxor:  xor  t0, t7, t8
        j    wb
opaddi: add  t0, t7, t6
        j    wb
opload: add  t0, t7, t6
        andi t0, t0, 1023
        slli t0, t0, 2
        add  t0, s6, t0
        lw   t0, 0(t0)
        j    wb
opstore:add  t0, t7, t6
        andi t0, t0, 1023
        slli t0, t0, 2
        add  t0, s6, t0
        sw   t8, 0(t0)
        j    nextpc
opbr:   beqz t7, nextpc         # taken when reg[rs] != 0
        andi t0, t6, 15
        addi t0, t0, -8         # pc-relative displacement -8..7
        add  s1, s1, t0
        j    bumped
wb:     slli t1, t3, 2
        add  t1, s4, t1
        sw   t0, 0(t1)          # reg[rd] = result
nextpc: addi s1, s1, 1
bumped: andi s1, s1, 2047
        addi s2, s2, 1
        li   t0, 30000
        blt  s2, t0, siml

        # ---- fold the simulated register file ---------------------
        li   s2, 0
        li   t6, 0
        li   t9, 32
fold:   slli t0, t6, 2
        add  t0, s4, t0
        lw   t1, 0(t0)
        slli t2, s2, 1
        srli t3, s2, 31
        or   s2, t2, t3
        add  s2, s2, t1
        addi t6, t6, 1
        blt  t6, t9, fold

        # ---- print checksum as 8 hex digits ----------------------
        li   s1, 8
        li   t2, 10
phex:   srli t0, s2, 28
        slli s2, s2, 4
        blt  t0, t2, pdig
        addi a0, t0, 87
        j    pput
pdig:   addi a0, t0, 48
pput:   putc a0
        addi s1, s1, -1
        bnez s1, phex
        halt
)ASM";

const char *kM88ksimGolden = "e4925a52";

} // namespace cesp::workloads
