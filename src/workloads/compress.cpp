/**
 * @file
 * "compress" workload: LZW compression over a self-generated,
 * repetitive byte stream, using an open-addressing hash dictionary —
 * the dominant loop of SPEC'95 129.compress. The hash-probe recurrence
 * (code -> hash -> probe -> next code) produces the serial dependence
 * chains that make compress sensitive to issue latency and slow
 * bypasses.
 */

#include "workloads/workloads.hpp"

namespace cesp::workloads {

const char *kCompressSource = R"ASM(
# LZW compression kernel.
#   input : 8192 bytes, LCG-generated with 78% repeat probability
#           over a 16-symbol alphabet (compressible, like text)
#   dict  : 4096-entry open hash, 12 bytes per entry
#           (prefix code, appended char, assigned code)
#   output: rotate-add checksum of emitted codes, printed in hex

        .data
inbuf:  .space 8192
dict:   .space 49152            # 4096 * 12

        .text
main:
        # ---- generate input --------------------------------------
        la   s0, inbuf
        li   s1, 8192           # N
        li   s3, 12345          # LCG state
        li   t4, 1103515245
        li   t5, 12345
        li   t6, 0              # i
        li   t7, 0              # previous byte
gen:    mul  s3, s3, t4
        add  s3, s3, t5
        srli t0, s3, 16
        andi t1, t0, 255
        sltiu t2, t1, 200       # 200/256 = repeat previous symbol
        beqz t2, gennew
        move t3, t7
        j    genst
gennew: andi t3, t0, 15         # new symbol from 16-wide alphabet
genst:  add  t8, s0, t6
        sb   t3, 0(t8)
        move t7, t3
        addi t6, t6, 1
        blt  t6, s1, gen

        # ---- LZW compression -------------------------------------
        la   s4, dict
        li   s5, 256            # next_code
        li   s2, 0              # checksum
        lbu  s6, 0(s0)          # w = input[0]
        li   t6, 1              # i
lzw:    add  t8, s0, t6
        lbu  s7, 0(t8)          # c = input[i]
        slli t0, s6, 5
        xor  t0, t0, s7
        andi t7, t0, 4095       # h = ((w << 5) ^ c) & 4095
probe:  slli t1, t7, 3
        slli t2, t7, 2
        add  t1, t1, t2
        add  t1, s4, t1         # entry = &dict[h]
        lw   t2, 8(t1)          # entry->code
        beqz t2, miss
        lw   t3, 0(t1)          # entry->prefix
        bne  t3, s6, nexth
        lw   t4, 4(t1)          # entry->char
        bne  t4, s7, nexth
        move s6, t2             # hit: w = entry->code
        j    adv
nexth:  addi t7, t7, 1
        andi t7, t7, 4095
        j    probe
miss:   # emit w into the checksum: sum = rot1(sum) + w
        slli t3, s2, 1
        srli t4, s2, 31
        or   s2, t3, t4
        add  s2, s2, s6
        # dict[h] = { w, c, next_code++ }
        sw   s6, 0(t1)
        sw   s7, 4(t1)
        sw   s5, 8(t1)
        addi s5, s5, 1
        # dictionary nearly full: CLEAR (like compress's block reset)
        li   t0, 3328
        bne  s5, t0, nomclr
        la   t1, dict
        li   t2, 4096
clr:    sw   zero, 8(t1)
        addi t1, t1, 12
        addi t2, t2, -1
        bnez t2, clr
        li   s5, 256
nomclr: move s6, s7             # w = c
adv:    addi t6, t6, 1
        blt  t6, s1, lzw

        add  s2, s2, s5         # fold final next_code into checksum

        # ---- print checksum as 8 hex digits ----------------------
        li   s1, 8
        li   t2, 10
phex:   srli t0, s2, 28
        slli s2, s2, 4
        blt  t0, t2, pdig
        addi a0, t0, 87         # 'a' - 10
        j    pput
pdig:   addi a0, t0, 48         # '0'
pput:   putc a0
        addi s1, s1, -1
        bnez s1, phex
        halt
)ASM";

const char *kCompressGolden = "3a900ffc";

} // namespace cesp::workloads
