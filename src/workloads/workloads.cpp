/**
 * @file
 * Workload registry and trace capture.
 */

#include "workloads/workloads.hpp"

#include "common/logging.hpp"
#include "func/emulator.hpp"

namespace cesp::workloads {

// Kernel sources and golden outputs, defined in the per-benchmark
// translation units.
extern const char *kCompressSource;
extern const char *kCompressGolden;
extern const char *kGccSource;
extern const char *kGccGolden;
extern const char *kGoSource;
extern const char *kGoGolden;
extern const char *kLiSource;
extern const char *kLiGolden;
extern const char *kM88ksimSource;
extern const char *kM88ksimGolden;
extern const char *kPerlSource;
extern const char *kPerlGolden;
extern const char *kVortexSource;
extern const char *kVortexGolden;
extern const char *kTomcatvSource;
extern const char *kTomcatvGolden;
extern const char *kIjpegSource;
extern const char *kIjpegGolden;

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> all = {
        {"compress", "LZW compression with hash-probe dictionary",
         kCompressSource, 4000000, kCompressGolden},
        {"gcc", "lexer with character-class dispatch and token hashing",
         kGccSource, 4000000, kGccGolden},
        {"go", "recursive board search with pruning",
         kGoSource, 4000000, kGoGolden},
        {"li", "cons-cell list interpreter (pointer chasing)",
         kLiSource, 4000000, kLiGolden},
        {"m88ksim", "instruction-set simulator dispatch loop",
         kM88ksimSource, 4000000, kM88ksimGolden},
        {"perl", "string hashing and associative arrays",
         kPerlSource, 4000000, kPerlGolden},
        {"vortex", "object database record copies and index lookups",
         kVortexSource, 4000000, kVortexGolden},
    };
    return all;
}

const std::vector<Workload> &
extraWorkloads()
{
    static const std::vector<Workload> extra = {
        {"tomcatv", "single-precision Jacobi stencil (FP pipeline)",
         kTomcatvSource, 4000000, kTomcatvGolden},
        {"ijpeg", "8x8 block transforms and quantization (high ILP)",
         kIjpegSource, 4000000, kIjpegGolden},
    };
    return extra;
}

const Workload &
workload(const std::string &name)
{
    for (const Workload &w : allWorkloads())
        if (w.name == name)
            return w;
    for (const Workload &w : extraWorkloads())
        if (w.name == name)
            return w;
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        names.push_back(w.name);
    return names;
}

trace::TraceBuffer
traceOf(const Workload &w)
{
    trace::TraceBuffer buf;
    func::ExecResult r =
        func::runProgram(w.source, w.max_instructions, &buf);
    if (!r.halted)
        fatal("workload %s did not halt within %llu instructions",
              w.name.c_str(),
              static_cast<unsigned long long>(w.max_instructions));
    if (!w.expected_console.empty() &&
        r.console != w.expected_console)
        fatal("workload %s checksum mismatch: got '%s', want '%s'",
              w.name.c_str(), r.console.c_str(),
              w.expected_console.c_str());
    return buf;
}

} // namespace cesp::workloads
