/**
 * @file
 * "perl" workload: associative-array processing — polynomial string
 * hashing, chained hash-table lookup with full string compares, and
 * insertion-or-increment, over a pool of generated words. This is the
 * hash/string core that dominates SPEC'95 134.perl's interpreter.
 */

#include "workloads/workloads.hpp"

namespace cesp::workloads {

const char *kPerlSource = R"ASM(
# Associative-array kernel.
#   pool   : 600 words of 4-11 lowercase chars (length-prefixed,
#            16-byte stride)
#   table  : 512 chained buckets; nodes {next, strptr, count}
#   ops    : 8000 lookup-or-insert operations over LCG-chosen words
#   output : rotate-add checksum over final counts, printed in hex

        .data
pool:   .space 12288
htab:   .space 2048             # 512 chain heads
nodes:  .space 65536            # bump-allocated chain nodes

        .text
main:
        # ---- generate the word pool ------------------------------
        la   s0, pool
        li   s3, 24680
        li   t4, 1103515245
        li   t5, 12345
        li   t6, 0
        li   t9, 600
sg:     mul  s3, s3, t4
        add  s3, s3, t5
        srli t0, s3, 16
        andi t1, t0, 7
        addi t1, t1, 4          # length 4..11
        slli t2, t6, 4
        add  t2, s0, t2
        sb   t1, 0(t2)
        li   t7, 0
sg2:    mul  s3, s3, t4
        add  s3, s3, t5
        srli t0, s3, 18
        li   t8, 26
        rem  t0, t0, t8
        addi t0, t0, 97
        addi t8, t2, 1
        add  t8, t8, t7
        sb   t0, 0(t8)
        addi t7, t7, 1
        blt  t7, t1, sg2
        addi t6, t6, 1
        blt  t6, t9, sg

        # ---- associative-array operations --------------------------
        la   s4, htab
        la   s5, nodes
        li   s2, 0              # checksum
        li   s6, 0              # op counter
oploop: mul  s3, s3, t4
        add  s3, s3, t5
        srli t0, s3, 14
        li   t1, 600
        rem  t0, t0, t1
        slli t0, t0, 4
        add  s7, s0, t0         # chosen word
        lbu  t1, 0(s7)          # its length
        li   t2, 0              # h
        li   t3, 0
hl:     add  t6, s7, t3
        lbu  t7, 1(t6)
        slli t8, t2, 5
        sub  t2, t8, t2         # h = h * 31 + c
        add  t2, t2, t7
        addi t3, t3, 1
        blt  t3, t1, hl
        andi t2, t2, 511
        slli t2, t2, 2
        add  t2, s4, t2         # bucket
        lw   t3, 0(t2)
chain:  beqz t3, insert
        lw   t6, 4(t3)          # candidate word
        lbu  t7, 0(s7)
        lbu  t8, 0(t6)
        bne  t7, t8, cnext      # lengths differ
        li   t0, 0
cmp:    bge  t0, t7, match
        add  t1, s7, t0
        lbu  t1, 1(t1)
        add  t8, t6, t0
        lbu  t8, 1(t8)
        bne  t1, t8, cnext
        addi t0, t0, 1
        j    cmp
match:  lw   t0, 8(t3)          # count++
        addi t0, t0, 1
        sw   t0, 8(t3)
        j    opnext
cnext:  lw   t3, 0(t3)
        j    chain
insert: lw   t0, 0(t2)          # node = {head, word, 1}
        sw   t0, 0(s5)
        sw   s7, 4(s5)
        li   t0, 1
        sw   t0, 8(s5)
        sw   s5, 0(t2)
        addi s5, s5, 12
opnext: addi s6, s6, 1
        li   t0, 8000
        blt  s6, t0, oploop

        # ---- fold all chain counts --------------------------------
        li   t6, 0
        li   t9, 512
fold:   slli t0, t6, 2
        add  t0, s4, t0
        lw   t1, 0(t0)
fch:    beqz t1, fnext
        lw   t2, 8(t1)
        slli t3, s2, 1
        srli t7, s2, 31
        or   s2, t3, t7
        add  s2, s2, t2
        lw   t1, 0(t1)
        j    fch
fnext:  addi t6, t6, 1
        blt  t6, t9, fold

        # ---- print checksum as 8 hex digits ----------------------
        li   s1, 8
        li   t2, 10
phex:   srli t0, s2, 28
        slli s2, s2, 4
        blt  t0, t2, pdig
        addi a0, t0, 87
        j    pput
pdig:   addi a0, t0, 48
pput:   putc a0
        addi s1, s1, -1
        bnez s1, phex
        halt
)ASM";

const char *kPerlGolden = "5979616c";

} // namespace cesp::workloads
