/**
 * @file
 * "go" workload: recursive game-tree search over an 8x8 board with
 * alpha-beta pruning and a positional leaf evaluator — the shape of
 * SPEC'95 099.go's move generation/selection: deep recursion,
 * data-dependent branches that defeat history predictors, and
 * byte-array board accesses.
 */

#include "workloads/workloads.hpp"

namespace cesp::workloads {

const char *kGoSource = R"ASM(
# Board-search kernel.
#   board : 64 cells, ~half empty, stones of two colors (LCG)
#   search: depth-3 negamax, up to 4 candidate moves per node chosen
#           by strided probing, alpha-beta pruning
#   output: rotate-add checksum over 40 root search scores

        .data
board:  .space 64

        .text
main:
        la   s0, board
        # ---- generate the board ----------------------------------
        li   s3, 55555
        li   t4, 1103515245
        li   t5, 12345
        li   t6, 0
        li   t9, 64
bgen:   mul  s3, s3, t4
        add  s3, s3, t5
        srli t0, s3, 20
        andi t1, t0, 3
        sltiu t2, t1, 2         # half the cells are empty
        beqz t2, bg1
        li   t3, 0
        j    bgst
bg1:    addi t3, t1, -1         # stone color 1 or 2
bgst:   add  t7, s0, t6
        sb   t3, 0(t7)
        addi t6, t6, 1
        blt  t6, t9, bgen

        # ---- repeated root searches on an evolving board ---------
        li   s2, 0              # checksum
        li   s7, 0              # iteration
gloop:  li   a0, 3              # depth
        li   a1, -1000000       # alpha
        li   a2, 1000000        # beta
        jal  search
        slli t0, s2, 1
        srli t1, s2, 31
        or   s2, t0, t1
        add  s2, s2, v0
        li   t0, 11             # play a stone, changing the position
        mul  t0, s7, t0
        addi t0, t0, 3
        andi t0, t0, 63
        add  t1, s0, t0
        andi t2, v0, 1
        addi t2, t2, 1
        sb   t2, 0(t1)
        addi s7, s7, 1
        li   t3, 40
        blt  s7, t3, gloop

        # ---- print checksum as 8 hex digits ----------------------
        li   s1, 8
        li   t2, 10
phex:   srli t0, s2, 28
        slli s2, s2, 4
        blt  t0, t2, pdig
        addi a0, t0, 87
        j    pput
pdig:   addi a0, t0, 48
pput:   putc a0
        addi s1, s1, -1
        bnez s1, phex
        halt

# ---- int search(depth a0, alpha a1, beta a2) -> v0 ---------------
search:
        addi sp, sp, -32
        sw   ra, 0(sp)
        sw   s1, 4(sp)
        sw   s2, 8(sp)
        sw   s3, 12(sp)
        sw   s4, 16(sp)
        sw   s5, 20(sp)
        sw   s6, 24(sp)
        move s1, a0             # depth
        move s2, a1             # alpha
        move s3, a2             # beta
        bnez s1, srec
        jal  eval               # leaf
        j    sret
srec:   li   s4, -1000000       # best
        li   s5, 0              # probe index
        li   s6, 0              # moves tried
sprob:  li   t0, 16
        bge  s5, t0, sdone
        li   t1, 13             # pos = (j*13 + depth*16 + 5) & 63
        mul  t0, s5, t1
        slli t2, s1, 4
        add  t0, t0, t2
        addi t0, t0, 5
        andi t0, t0, 63
        add  t1, s0, t0
        lbu  t2, 0(t1)
        bnez t2, snext          # cell occupied
        li   t3, 4
        bge  s6, t3, sdone      # candidate limit
        addi s6, s6, 1
        andi t3, s1, 1          # player = (depth & 1) + 1
        addi t3, t3, 1
        sb   t3, 0(t1)          # place stone
        sw   t0, 28(sp)
        addi a0, s1, -1         # score = -search(d-1, -beta, -alpha)
        neg  a1, s3
        neg  a2, s2
        jal  search
        neg  v0, v0
        lw   t0, 28(sp)         # undo move
        add  t1, s0, t0
        sb   zero, 0(t1)
        ble  v0, s4, sna
        move s4, v0
sna:    ble  s4, s2, snb
        move s2, s4
snb:    blt  s2, s3, snext
        j    sdone              # alpha >= beta: prune
snext:  addi s5, s5, 1
        j    sprob
sdone:  bnez s6, shave
        jal  eval               # no legal probe: static eval
        j    sret
shave:  move v0, s4
sret:   lw   ra, 0(sp)
        lw   s1, 4(sp)
        lw   s2, 8(sp)
        lw   s3, 12(sp)
        lw   s4, 16(sp)
        lw   s5, 20(sp)
        lw   s6, 24(sp)
        addi sp, sp, 32
        jr   ra

# ---- int eval() -> v0: positional score of the board --------------
eval:   li   v0, 0
        li   t0, 0
        li   t6, 64
ev1:    add  t1, s0, t0
        lbu  t2, 0(t1)
        beqz t2, ev2
        andi t3, t0, 7          # column weight 1..8
        addi t3, t3, 1
        li   t4, 1
        bne  t2, t4, evm
        add  v0, v0, t3
        j    ev2
evm:    sub  v0, v0, t3
ev2:    addi t0, t0, 1
        blt  t0, t6, ev1
        jr   ra
)ASM";

const char *kGoGolden = "f4a80387";

} // namespace cesp::workloads
