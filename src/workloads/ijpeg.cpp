/**
 * @file
 * "ijpeg" workload (extra, beyond the paper's seven): integer image
 * compression — separable 8x8 butterfly transforms over image blocks
 * followed by shift quantization, the computational core of SPEC'95
 * 132.ijpeg (which the paper's evaluation omitted). Dense independent
 * integer arithmetic with regular control: the highest-ILP integer
 * kernel in the suite, useful for width/cluster sweeps.
 */

#include "workloads/workloads.hpp"

namespace cesp::workloads {

const char *kIjpegSource = R"ASM(
# Block-transform kernel.
#   image  : 64x64 bytes (gradient + LCG noise), regenerated per pass
#   blocks : 64 8x8 blocks; rows then columns through a 3-stage
#            butterfly (Haar/DCT-lite), then shift quantization
#   passes : 8 images
#   output : rotate-add checksum of quantized coefficients, in hex

        .data
img:    .space 4096
blk:    .space 128              # 8x8 halfwords

        .text
main:
        la   s0, img
        la   s1, blk
        li   s2, 0              # checksum
        li   s3, 192837         # LCG
        li   s7, 0              # image counter

imgl:   # ---- generate one image ----------------------------------
        li   t4, 1103515245
        li   t5, 12345
        li   t6, 0
        li   t9, 4096
igen:   mul  s3, s3, t4
        add  s3, s3, t5
        srli t0, s3, 16
        andi t0, t0, 31         # noise
        andi t1, t6, 63         # smooth gradient term
        srli t2, t6, 6
        add  t1, t1, t2
        andi t1, t1, 31
        add  t0, t0, t1
        add  t2, s0, t6
        sb   t0, 0(t2)
        addi t6, t6, 1
        blt  t6, t9, igen

        # ---- transform all 64 blocks -------------------------------
        li   s4, 0              # block row
brow:   li   s5, 0              # block col
bcol:   # base = img + (s4*8)*64 + s5*8
        slli t9, s4, 9
        slli t0, s5, 3
        add  t9, t9, t0
        add  t9, s0, t9

        li   a1, 0              # row pass
rowl:   slli t0, a1, 6
        add  a2, t9, t0         # &row
        lbu  t0, 0(a2)
        lbu  t1, 1(a2)
        lbu  t2, 2(a2)
        lbu  t3, 3(a2)
        lbu  t4, 4(a2)
        lbu  t5, 5(a2)
        lbu  t6, 6(a2)
        lbu  t7, 7(a2)
        # stage 1 butterflies
        add  t8, t0, t7
        sub  t7, t0, t7
        move t0, t8
        add  t8, t1, t6
        sub  t6, t1, t6
        move t1, t8
        add  t8, t2, t5
        sub  t5, t2, t5
        move t2, t8
        add  t8, t3, t4
        sub  t4, t3, t4
        move t3, t8
        # stage 2 on sums
        add  t8, t0, t3
        sub  t3, t0, t3
        move t0, t8
        add  t8, t1, t2
        sub  t2, t1, t2
        move t1, t8
        # stage 3
        add  t8, t0, t1
        sub  t1, t0, t1
        move t0, t8
        # store coefficients to blk + r*16
        slli a3, a1, 4
        add  a3, s1, a3
        sh   t0, 0(a3)
        sh   t1, 2(a3)
        sh   t3, 4(a3)
        sh   t2, 6(a3)
        sh   t7, 8(a3)
        sh   t6, 10(a3)
        sh   t5, 12(a3)
        sh   t4, 14(a3)
        addi a1, a1, 1
        li   t8, 8
        blt  a1, t8, rowl

        li   a1, 0              # column pass + quantize
coll:   slli t0, a1, 1
        add  a2, s1, t0         # &col
        lh   t0, 0(a2)
        lh   t1, 16(a2)
        lh   t2, 32(a2)
        lh   t3, 48(a2)
        lh   t4, 64(a2)
        lh   t5, 80(a2)
        lh   t6, 96(a2)
        lh   t7, 112(a2)
        add  t8, t0, t7
        sub  t7, t0, t7
        move t0, t8
        add  t8, t1, t6
        sub  t6, t1, t6
        move t1, t8
        add  t8, t2, t5
        sub  t5, t2, t5
        move t2, t8
        add  t8, t3, t4
        sub  t4, t3, t4
        move t3, t8
        add  t8, t0, t3
        sub  t3, t0, t3
        move t0, t8
        add  t8, t1, t2
        sub  t2, t1, t2
        move t1, t8
        add  t8, t0, t1
        sub  t1, t0, t1
        move t0, t8
        # quantize (shift per frequency band) and fold into checksum
        srai t1, t1, 1
        srai t2, t2, 1
        srai t3, t3, 2
        srai t4, t4, 2
        srai t5, t5, 3
        srai t6, t6, 3
        srai t7, t7, 3
        add  t8, t0, t1
        add  t8, t8, t2
        add  t8, t8, t3
        add  t8, t8, t4
        add  t8, t8, t5
        add  t8, t8, t6
        add  t8, t8, t7
        slli t0, s2, 1
        srli t1, s2, 31
        or   s2, t0, t1
        add  s2, s2, t8
        addi a1, a1, 1
        li   t8, 8
        blt  a1, t8, coll

        addi s5, s5, 1
        li   t0, 8
        blt  s5, t0, bcol
        addi s4, s4, 1
        blt  s4, t0, brow

        addi s7, s7, 1
        li   t0, 8
        blt  s7, t0, imgl

        # ---- print checksum as 8 hex digits ----------------------
        li   s1, 8
        li   t2, 10
phex:   srli t0, s2, 28
        slli s2, s2, 4
        blt  t0, t2, pdig
        addi a0, t0, 87
        j    pput
pdig:   addi a0, t0, 48
pput:   putc a0
        addi s1, s1, -1
        bnez s1, phex
        halt
)ASM";

const char *kIjpegGolden = "0f97edf9";

} // namespace cesp::workloads
