/**
 * @file
 * "tomcatv" workload (extra, beyond the paper's seven): a SPECfp95-
 * style single-precision Jacobi stencil over a 64x64 grid. The
 * integer benchmarks barely touch the floating-point register class;
 * this kernel drives the FP pipeline end to end — FP loads/stores,
 * adds and multiplies, and the second rename class (Table 3's 120 FP
 * physical registers).
 */

#include "workloads/workloads.hpp"

namespace cesp::workloads {

const char *kTomcatvSource = R"ASM(
# FP stencil kernel.
#   grid  : 64x64 single-precision cells in [1.0, 2.0), built from
#           bit patterns (0x3f800000 | mantissa bits)
#   sweep : 6 Jacobi iterations, new = 0.25*(N+S+E+W), in-place
#           red-black style (even cells then odd cells)
#   output: rotate-add checksum of the final grid's bit patterns

        .data
grid:   .space 16384            # 64*64*4

        .text
main:
        # ---- build the grid --------------------------------------
        la   s0, grid
        li   s3, 424242         # LCG
        li   t4, 1103515245
        li   t5, 12345
        li   t6, 0
        li   t9, 4096
        li   t8, 8388607        # 23-bit mantissa mask
ginit:  mul  s3, s3, t4
        add  s3, s3, t5
        srli t0, s3, 9
        and  t0, t0, t8
        lui  t1, 0x3f80         # exponent for [1.0, 2.0)
        or   t0, t0, t1
        slli t2, t6, 2
        add  t2, s0, t2
        sw   t0, 0(t2)
        addi t6, t6, 1
        blt  t6, t9, ginit

        # 0.25f in f10
        lui  t0, 0x3e80
        fmvi f10, t0

        # ---- Jacobi sweeps ----------------------------------------
        li   s7, 0              # iteration
sweep:  li   s1, 1              # row 1..62
rowl:   li   s2, 1              # col 1..62
coll:   slli t0, s1, 6          # idx = row*64 + col
        add  t0, t0, s2
        slli t0, t0, 2
        add  t1, s0, t0         # &grid[row][col]
        flw  f1, -4(t1)         # west
        flw  f2, 4(t1)          # east
        flw  f3, -256(t1)       # north
        flw  f4, 256(t1)        # south
        fadd f5, f1, f2
        fadd f6, f3, f4
        fadd f5, f5, f6
        fmul f7, f5, f10        # * 0.25
        fsw  f7, 0(t1)
        addi s2, s2, 1
        li   t7, 63
        blt  s2, t7, coll
        addi s1, s1, 1
        blt  s1, t7, rowl
        addi s7, s7, 1
        li   t7, 6
        blt  s7, t7, sweep

        # ---- checksum the final grid bits -------------------------
        li   s2, 0
        li   t6, 0
        li   t9, 4096
fold:   slli t0, t6, 2
        add  t0, s0, t0
        lw   t1, 0(t0)
        slli t2, s2, 1
        srli t3, s2, 31
        or   s2, t2, t3
        add  s2, s2, t1
        addi t6, t6, 1
        blt  t6, t9, fold

        # ---- print checksum as 8 hex digits ----------------------
        li   s1, 8
        li   t2, 10
phex:   srli t0, s2, 28
        slli s2, s2, 4
        blt  t0, t2, pdig
        addi a0, t0, 87
        j    pput
pdig:   addi a0, t0, 48
pput:   putc a0
        addi s1, s1, -1
        bnez s1, phex
        halt
)ASM";

const char *kTomcatvGolden = "94a00185";

} // namespace cesp::workloads
