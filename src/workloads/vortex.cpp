/**
 * @file
 * "vortex" workload: an object-database kernel — unrolled 64-byte
 * record copies into an object store, hashed index maintenance, and
 * lookups that touch every field of the fetched record. SPEC'95
 * 147.vortex is dominated by this memory-rich, highly parallel
 * pattern, which is why it posts the highest IPC of the suite.
 */

#include "workloads/workloads.hpp"

namespace cesp::workloads {

const char *kVortexSource = R"ASM(
# Object-database kernel.
#   store  : 1024 records of 16 words
#   index  : 2048-entry hashed key -> record map
#   ops    : 9000 operations, 25% inserts (record copy + index
#            update), 75% lookups (index probe + 16-field fold)
#   output : checksum over lookups, printed in hex

        .data
templ:  .space 64
store:  .space 65536            # 1024 * 64
index:  .space 8192             # 2048 words

        .text
main:
        # ---- template record --------------------------------------
        la   s0, templ
        li   s3, 13579
        li   t4, 1103515245
        li   t5, 12345
        li   t6, 0
        li   t9, 16
tg:     mul  s3, s3, t4
        add  s3, s3, t5
        srli t0, s3, 12
        slli t1, t6, 2
        add  t1, s0, t1
        sw   t0, 0(t1)
        addi t6, t6, 1
        blt  t6, t9, tg

        # ---- operation loop ---------------------------------------
        la   s4, store
        la   s5, index
        li   s2, 0              # checksum
        li   s6, 0              # op count
        li   s7, 0              # inserted count
vloop:  mul  s3, s3, t4
        add  s3, s3, t5
        srli t0, s3, 10
        andi t1, t0, 3
        bnez t1, vlook

        andi t2, s7, 1023       # ---- insert: copy template --------
        slli t3, t2, 6
        add  t3, s4, t3
        lw   t6, 0(s0)
        lw   t7, 4(s0)
        lw   t8, 8(s0)
        lw   t9, 12(s0)
        sw   t6, 0(t3)
        sw   t7, 4(t3)
        sw   t8, 8(t3)
        sw   t9, 12(t3)
        lw   t6, 16(s0)
        lw   t7, 20(s0)
        lw   t8, 24(s0)
        lw   t9, 28(s0)
        sw   t6, 16(t3)
        sw   t7, 20(t3)
        sw   t8, 24(t3)
        sw   t9, 28(t3)
        lw   t6, 32(s0)
        lw   t7, 36(s0)
        lw   t8, 40(s0)
        lw   t9, 44(s0)
        sw   t6, 32(t3)
        sw   t7, 36(t3)
        sw   t8, 40(t3)
        sw   t9, 44(t3)
        lw   t6, 48(s0)
        lw   t7, 52(s0)
        lw   t8, 56(s0)
        lw   t9, 60(s0)
        sw   t6, 48(t3)
        sw   t7, 52(t3)
        sw   t8, 56(t3)
        sw   t9, 60(t3)
        andi t6, t2, 15         # mutate one field with the op key
        slli t6, t6, 2
        add  t6, t3, t6
        sw   t0, 0(t6)
        li   t7, 40503          # index[hash(key)] = recno + 1
        mul  t6, t0, t7
        srli t6, t6, 4
        andi t6, t6, 2047
        slli t6, t6, 2
        add  t6, s5, t6
        addi t7, t2, 1
        sw   t7, 0(t6)
        addi s7, s7, 1
        j    vnext

vlook:  li   t7, 40503          # ---- lookup -----------------------
        mul  t6, t0, t7
        srli t6, t6, 4
        andi t6, t6, 2047
        slli t6, t6, 2
        add  t6, s5, t6
        lw   t2, 0(t6)
        beqz t2, vmiss
        addi t2, t2, -1
        slli t3, t2, 6
        add  t3, s4, t3
        lw   t6, 0(t3)          # fold all 16 record fields
        lw   t7, 4(t3)
        lw   t8, 8(t3)
        lw   t9, 12(t3)
        add  t6, t6, t7
        add  t8, t8, t9
        add  t6, t6, t8
        lw   t7, 16(t3)
        lw   t8, 20(t3)
        lw   t9, 24(t3)
        add  t6, t6, t7
        add  t8, t8, t9
        add  t6, t6, t8
        lw   t7, 28(t3)
        lw   t8, 32(t3)
        lw   t9, 36(t3)
        add  t6, t6, t7
        add  t8, t8, t9
        add  t6, t6, t8
        lw   t7, 40(t3)
        lw   t8, 44(t3)
        lw   t9, 48(t3)
        add  t6, t6, t7
        add  t8, t8, t9
        add  t6, t6, t8
        lw   t7, 52(t3)
        lw   t8, 56(t3)
        lw   t9, 60(t3)
        add  t6, t6, t7
        add  t8, t8, t9
        add  t6, t6, t8
        add  s2, s2, t6
        j    vnext
vmiss:  andi t0, t0, 255
        add  s2, s2, t0
vnext:  addi s6, s6, 1
        li   t0, 9000
        blt  s6, t0, vloop

        # ---- print checksum as 8 hex digits ----------------------
        li   s1, 8
        li   t2, 10
phex:   srli t0, s2, 28
        slli s2, s2, 4
        blt  t0, t2, pdig
        addi a0, t0, 87
        j    pput
pdig:   addi a0, t0, 48
pput:   putc a0
        addi s1, s1, -1
        bnez s1, phex
        halt
)ASM";

const char *kVortexGolden = "6996257f";

} // namespace cesp::workloads
