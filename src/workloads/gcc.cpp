/**
 * @file
 * "gcc" workload: a compiler front-end kernel — character-class
 * lookup, jump-table token dispatch, identifier hashing into a symbol
 * table, and numeric-literal scanning over self-generated source
 * text. SPEC'95 126.gcc spends much of its time in exactly this kind
 * of irregular, branchy, table-driven code.
 */

#include "workloads/workloads.hpp"

namespace cesp::workloads {

const char *kGccSource = R"ASM(
# Lexer kernel.
#   input  : 12288 bytes of LCG-generated pseudo source text
#   tables : 256-byte character-class table, 6-entry handler jump
#            table, 1024-entry symbol hash table
#   output : rotate-add checksum over tokens, printed in hex

        .data
src:    .space 12288
ctab:   .space 256
jtab:   .word hspace, hletter, hdigit, hpunct, hop, hother
symtab: .space 4096             # 1024 words
plist:  .byte 44, 59, 40, 41, 123, 125, 46
olist:  .byte 43, 45, 42, 47, 61, 60, 62

        .text
main:
        # ---- build the class table -------------------------------
        la   s0, ctab
        li   t0, 0
        li   t9, 256
        li   t2, 5              # default class: other
ctl:    add  t1, s0, t0
        sb   t2, 0(t1)
        addi t0, t0, 1
        blt  t0, t9, ctl
        li   t2, 0              # whitespace
        sb   t2, 32(s0)
        sb   t2, 10(s0)
        li   t0, 97             # letters a-z
        li   t9, 123
        li   t2, 1
ltl:    add  t1, s0, t0
        sb   t2, 0(t1)
        addi t0, t0, 1
        blt  t0, t9, ltl
        li   t0, 48             # digits 0-9
        li   t9, 58
        li   t2, 2
dtl:    add  t1, s0, t0
        sb   t2, 0(t1)
        addi t0, t0, 1
        blt  t0, t9, dtl
        li   t2, 3              # punctuation , ; ( ) { } .
        sb   t2, 44(s0)
        sb   t2, 59(s0)
        sb   t2, 40(s0)
        sb   t2, 41(s0)
        sb   t2, 123(s0)
        sb   t2, 125(s0)
        sb   t2, 46(s0)
        li   t2, 4              # operators + - * / = < >
        sb   t2, 43(s0)
        sb   t2, 45(s0)
        sb   t2, 42(s0)
        sb   t2, 47(s0)
        sb   t2, 61(s0)
        sb   t2, 60(s0)
        sb   t2, 62(s0)

        # ---- generate the source text -----------------------------
        la   s4, src
        li   s5, 12288
        li   s3, 98765
        li   t4, 1103515245
        li   t5, 12345
        li   t6, 0
igen:   mul  s3, s3, t4
        add  s3, s3, t5
        srli t0, s3, 18
        andi t1, t0, 63
        sltiu t2, t1, 10        # 10/64 whitespace
        beqz t2, ig1
        li   t3, 32
        j    igst
ig1:    sltiu t2, t1, 40        # 30/64 letters
        beqz t2, ig2
        addi t3, t1, -10
        li   t7, 26
        rem  t3, t3, t7
        addi t3, t3, 97
        j    igst
ig2:    sltiu t2, t1, 50        # 10/64 digits
        beqz t2, ig3
        addi t3, t1, -40
        addi t3, t3, 48
        j    igst
ig3:    sltiu t2, t1, 57        # 7/64 punctuation
        beqz t2, ig4
        addi t3, t1, -50
        la   t7, plist
        add  t7, t7, t3
        lbu  t3, 0(t7)
        j    igst
ig4:    addi t3, t1, -57        # 7/64 operators
        la   t7, olist
        add  t7, t7, t3
        lbu  t3, 0(t7)
igst:   add  t7, s4, t6
        sb   t3, 0(t7)
        addi t6, t6, 1
        blt  t6, s5, igen

        # ---- lex -----------------------------------------------
        la   s1, src
        la   s5, src+12288
        li   s2, 0              # checksum
        li   s6, 0              # token count
        la   t9, jtab
lex:    bgeu s1, s5, ldone
        lbu  t0, 0(s1)
        add  t1, s0, t0
        lbu  t2, 0(t1)          # class
        slli t3, t2, 2
        add  t3, t9, t3
        lw   t3, 0(t3)
        jr   t3                 # dispatch

hspace: addi s1, s1, 1
        j    lex

hletter:li   t4, 0              # identifier hash
hl1:    lbu  t0, 0(s1)
        add  t1, s0, t0
        lbu  t2, 0(t1)
        addi t5, t2, -1         # letter or digit continues the ident
        sltiu t5, t5, 2
        beqz t5, hl2
        slli t6, t4, 5
        sub  t4, t6, t4         # h = h * 31 + c
        add  t4, t4, t0
        addi s1, s1, 1
        bltu s1, s5, hl1
hl2:    andi t5, t4, 1023       # symbol-table insert
        slli t5, t5, 2
        la   t6, symtab
        add  t6, t6, t5
        lw   t7, 0(t6)
        add  t7, t7, t4
        sw   t7, 0(t6)
        addi s6, s6, 1
        slli t0, s2, 1
        srli t1, s2, 31
        or   s2, t0, t1
        add  s2, s2, t4
        j    lex

hdigit: li   t4, 0              # numeric literal value
hd1:    lbu  t0, 0(s1)
        addi t5, t0, -48
        sltiu t5, t5, 10
        beqz t5, hd2
        li   t6, 10
        mul  t4, t4, t6
        addi t7, t0, -48
        add  t4, t4, t7
        addi s1, s1, 1
        bltu s1, s5, hd1
hd2:    add  s2, s2, t4
        addi s6, s6, 1
        j    lex

hpunct: addi s2, s2, 3
        addi s6, s6, 1
        addi s1, s1, 1
        j    lex

hop:    addi s2, s2, 5
        addi s6, s6, 1
        addi s1, s1, 1
        bgeu s1, s5, lex
        lbu  t0, 0(s1)          # lookahead for compound operator
        li   t1, 61
        bne  t0, t1, lex
        addi s2, s2, 7
        addi s1, s1, 1
        j    lex

hother: addi s1, s1, 1
        j    lex

ldone:  la   t0, symtab         # fold symbol table into checksum
        li   t1, 1024
sf:     lw   t2, 0(t0)
        add  s2, s2, t2
        addi t0, t0, 4
        addi t1, t1, -1
        bnez t1, sf
        add  s2, s2, s6

        # ---- print checksum as 8 hex digits ----------------------
        li   s1, 8
        li   t2, 10
phex:   srli t0, s2, 28
        slli s2, s2, 4
        blt  t0, t2, pdig
        addi a0, t0, 87
        j    pput
pdig:   addi a0, t0, 48
pput:   putc a0
        addi s1, s1, -1
        bnez s1, phex
        halt
)ASM";

const char *kGccGolden = "15034a6d";

} // namespace cesp::workloads
