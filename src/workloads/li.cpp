/**
 * @file
 * "li" workload: cons-cell list processing — allocation, in-place
 * map, filtered reduction, and list reversal over a linked heap.
 * SPEC'95 130.li (xlisp) is dominated by exactly this pointer-chasing
 * pattern; the cdr-chain loads form the longest serial dependence
 * chains of the suite, which makes li the stress case for in-order
 * FIFO issue (the paper's largest dependence-based degradation, ~8%,
 * is on li).
 */

#include "workloads/workloads.hpp"

namespace cesp::workloads {

const char *kLiSource = R"ASM(
# List-interpreter kernel.
#   heap  : bump-allocated cons cells (car, cdr), 8 bytes each
#   list  : 400 integers
#   rounds: 120 alternating passes
#             - in-place map      car = (3*car + 1) & 4095
#             - filtered sum      sum of odd cars
#             - every 8th round   rebuild the list reversed (allocates)
#   output: rotate-add checksum of the sums, printed in hex

        .data
heap:   .space 262144

        .text
main:
        la   s0, heap           # bump allocator
        li   s3, 77777          # LCG
        li   t4, 1103515245
        li   t5, 12345
        li   s1, 0              # list head (0 = nil)
        li   t6, 0
        li   t9, 400
bld:    mul  s3, s3, t4
        add  s3, s3, t5
        srli t0, s3, 16
        andi t0, t0, 4095
        sw   t0, 0(s0)          # car
        sw   s1, 4(s0)          # cdr = old head
        move s1, s0
        addi s0, s0, 8
        addi t6, t6, 1
        blt  t6, t9, bld

        li   s2, 0              # checksum
        li   s7, 0              # round
round:  andi t0, s7, 7
        beqz t0, rrev
        andi t1, s7, 1
        beqz t1, rmap

        move t2, s1             # ---- filtered sum ----
        li   t3, 0
sum1:   beqz t2, sumd
        lw   t0, 0(t2)
        andi t1, t0, 1
        beqz t1, sum2
        add  t3, t3, t0
sum2:   lw   t2, 4(t2)          # chase the cdr chain
        j    sum1
sumd:   slli t0, s2, 1
        srli t1, s2, 31
        or   s2, t0, t1
        add  s2, s2, t3
        j    rnext

rmap:   move t2, s1             # ---- in-place map ----
map1:   beqz t2, rnext
        lw   t0, 0(t2)
        slli t1, t0, 1
        add  t0, t0, t1
        addi t0, t0, 1
        andi t0, t0, 4095
        sw   t0, 0(t2)
        lw   t2, 4(t2)
        j    map1

rrev:   move t2, s1             # ---- reversed copy (allocates) ----
        li   t3, 0
rev1:   beqz t2, revd
        lw   t0, 0(t2)
        sw   t0, 0(s0)
        sw   t3, 4(s0)
        move t3, s0
        addi s0, s0, 8
        lw   t2, 4(t2)
        j    rev1
revd:   move s1, t3

rnext:  addi s7, s7, 1
        li   t0, 120
        blt  s7, t0, round

        # ---- print checksum as 8 hex digits ----------------------
        li   s1, 8
        li   t2, 10
phex:   srli t0, s2, 28
        slli s2, s2, 4
        blt  t0, t2, pdig
        addi a0, t0, 87
        j    pput
pdig:   addi a0, t0, 48
pput:   putc a0
        addi s1, s1, -1
        bnez s1, phex
        halt
)ASM";

const char *kLiGolden = "ff2da144";

} // namespace cesp::workloads
