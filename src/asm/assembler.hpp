/**
 * @file
 * Two-pass assembler for PJ-RISC assembly.
 *
 * Syntax (MIPS-flavored):
 *
 *   # comment, or ; comment
 *           .text
 *   main:   addi  sp, sp, -16
 *           lw    t0, 8(sp)
 *           beq   t0, zero, done
 *   loop:   addiu ... (unknown mnemonics are errors)
 *           j     loop
 *   done:   halt
 *           .data
 *   buf:    .space 1024
 *   tbl:    .word  1, 2, 3, label
 *   msg:    .asciiz "hello"
 *           .align 4
 *
 * Registers: r0..r31, $0..$31, MIPS aliases (zero, at, v0.., a0..,
 * t0.., s0.., gp, sp, fp, ra), and f0..f31.
 *
 * Pseudo-instructions: li, la, move, not, neg, b, beqz, bnez, bgt,
 * ble, bgtu, bleu, subi. `li`/`la` expand to lui+ori (or a single
 * addi when the value fits in 16 signed bits and is known in pass 1).
 */

#ifndef CESP_ASM_ASSEMBLER_HPP
#define CESP_ASM_ASSEMBLER_HPP

#include <string>

#include "asm/program.hpp"

namespace cesp::assembler {

/** Result of an assembly run. */
struct AssembleResult
{
    bool ok = false;
    Program program;
    std::string error; //!< first diagnostic when !ok ("line N: ...")
};

/**
 * Assemble a full source string. Never exits on user errors; failures
 * are reported through the result.
 */
AssembleResult assemble(const std::string &source);

/**
 * Assemble, treating any diagnostic as fatal (convenience for
 * embedded, known-good workload sources).
 */
Program assembleOrDie(const std::string &source,
                      const std::string &what = "assembly");

} // namespace cesp::assembler

#endif // CESP_ASM_ASSEMBLER_HPP
