/**
 * @file
 * Implementation of the two-pass assembler.
 */

#include "asm/assembler.hpp"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <vector>

#include "common/logging.hpp"
#include "isa/isa.hpp"

namespace cesp::assembler {

using isa::Opcode;

namespace {

/** One parsed source statement. */
struct Statement
{
    int line = 0;
    std::string label;          //!< optional "name:" prefix
    std::string mnemonic;       //!< instruction or ".directive"
    std::vector<std::string> operands;
    std::string string_arg;     //!< for .asciiz
    bool in_text = true;        //!< section at this statement
    uint32_t addr = 0;          //!< assigned in pass 1
};

/** Thrown internally to carry diagnostics to the driver. */
struct AsmError
{
    int line;
    std::string msg;
};

[[noreturn]] void
err(int line, const std::string &msg)
{
    throw AsmError{line, msg};
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
        c == '.' || c == '$';
}

/** Parse an integer literal: decimal, 0x hex, or 'c' char. */
std::optional<int64_t>
parseIntLiteral(const std::string &tok)
{
    if (tok.empty())
        return std::nullopt;
    if (tok.size() >= 3 && tok.front() == '\'' && tok.back() == '\'') {
        if (tok.size() == 3)
            return static_cast<int64_t>(tok[1]);
        if (tok.size() == 4 && tok[1] == '\\') {
            switch (tok[2]) {
              case 'n': return 10;
              case 't': return 9;
              case '0': return 0;
              case '\\': return 92;
              default: return std::nullopt;
            }
        }
        return std::nullopt;
    }
    const char *s = tok.c_str();
    char *end = nullptr;
    long long v = std::strtoll(s, &end, 0);
    if (end == s || *end != '\0')
        return std::nullopt;
    return v;
}

/** Split "name+off" / "name-off" into base symbol and offset. */
void
splitSymExpr(const std::string &tok, std::string &sym, int64_t &off)
{
    sym = tok;
    off = 0;
    for (size_t i = 1; i < tok.size(); ++i) {
        if (tok[i] == '+' || tok[i] == '-') {
            auto rest = parseIntLiteral(tok.substr(i + 1));
            if (!rest)
                return;
            sym = tok.substr(0, i);
            off = tok[i] == '+' ? *rest : -*rest;
            return;
        }
    }
}

/** Tokenize one line into an optional Statement. */
std::optional<Statement>
parseLine(const std::string &raw, int line_no)
{
    // Strip comments. '#' and ';' start comments outside of quotes.
    std::string line;
    bool in_quote = false;
    for (char c : raw) {
        if (c == '"')
            in_quote = !in_quote;
        if (!in_quote && (c == '#' || c == ';'))
            break;
        line += c;
    }

    Statement st;
    st.line = line_no;
    size_t i = 0;
    auto skip_ws = [&] {
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
    };

    skip_ws();
    if (i >= line.size())
        return std::nullopt;

    // Optional label.
    size_t j = i;
    while (j < line.size() && isIdentChar(line[j]))
        ++j;
    if (j < line.size() && line[j] == ':' && j > i) {
        st.label = line.substr(i, j - i);
        i = j + 1;
        skip_ws();
    }

    if (i >= line.size())
        return st; // label-only line

    // Mnemonic or directive.
    j = i;
    while (j < line.size() && isIdentChar(line[j]))
        ++j;
    if (j == i)
        err(line_no, "expected mnemonic, found '" +
            line.substr(i, 1) + "'");
    st.mnemonic = line.substr(i, j - i);
    for (char &c : st.mnemonic)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    i = j;
    skip_ws();

    // .asciiz keeps the raw quoted string.
    if (st.mnemonic == ".asciiz" || st.mnemonic == ".ascii") {
        if (i >= line.size() || line[i] != '"')
            err(line_no, st.mnemonic + " expects a quoted string");
        ++i;
        std::string s;
        while (i < line.size() && line[i] != '"') {
            char c = line[i++];
            if (c == '\\' && i < line.size()) {
                char e = line[i++];
                switch (e) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case '0': c = '\0'; break;
                  case '\\': c = '\\'; break;
                  case '"': c = '"'; break;
                  default:
                    err(line_no, "bad escape in string");
                }
            }
            s += c;
        }
        if (i >= line.size())
            err(line_no, "unterminated string");
        st.string_arg = s;
        return st;
    }

    // Comma-separated operands; "imm(reg)" stays one token.
    while (i < line.size()) {
        skip_ws();
        if (i >= line.size())
            break;
        size_t start = i;
        int paren = 0;
        while (i < line.size() && (line[i] != ',' || paren > 0)) {
            if (line[i] == '(')
                ++paren;
            else if (line[i] == ')')
                --paren;
            ++i;
        }
        std::string tok = line.substr(start, i - start);
        while (!tok.empty() &&
               std::isspace(static_cast<unsigned char>(tok.back())))
            tok.pop_back();
        if (tok.empty())
            err(line_no, "empty operand");
        st.operands.push_back(tok);
        if (i < line.size() && line[i] == ',')
            ++i;
    }
    return st;
}

/** The assembler state machine shared by the two passes. */
class Assembler
{
  public:
    explicit Assembler(const std::string &source)
    {
        int line_no = 0;
        size_t pos = 0;
        bool in_text = true;
        while (pos <= source.size()) {
            size_t nl = source.find('\n', pos);
            std::string line = source.substr(
                pos, nl == std::string::npos ? std::string::npos
                                             : nl - pos);
            ++line_no;
            auto st = parseLine(line, line_no);
            if (st) {
                if (st->mnemonic == ".text") {
                    in_text = true;
                } else if (st->mnemonic == ".data") {
                    in_text = false;
                } else {
                    st->in_text = in_text;
                    stmts_.push_back(*st);
                }
            }
            if (nl == std::string::npos)
                break;
            pos = nl + 1;
        }
    }

    Program
    run()
    {
        passOne();
        passTwo();
        Program p;
        p.symbols = symbols_;
        p.segments[kTextBase] = std::move(text_);
        if (!data_.empty())
            p.segments[kDataBase] = std::move(data_);
        auto it = symbols_.find("main");
        p.entry = it != symbols_.end() ? it->second : kTextBase;
        return p;
    }

  private:
    std::vector<Statement> stmts_;
    std::map<std::string, uint32_t> symbols_;
    std::vector<uint8_t> text_, data_;
    bool emitting_ = false; //!< pass 2 writes bytes

    // --- pass drivers ---------------------------------------------------

    void
    passOne()
    {
        for (auto &st : stmts_) {
            st.addr = here(st.in_text);
            if (!st.label.empty()) {
                if (symbols_.count(st.label))
                    err(st.line, "duplicate label '" + st.label + "'");
                symbols_[st.label] = st.addr;
            }
            if (!st.mnemonic.empty())
                process(st);
        }
    }

    void
    passTwo()
    {
        text_.clear();
        data_.clear();
        emitting_ = true;
        for (auto &st : stmts_) {
            if (st.mnemonic.empty())
                continue;
            uint32_t want = st.addr;
            if (here(st.in_text) != want)
                err(st.line, "phase error (pass size mismatch)");
            process(st);
        }
    }

    // --- location counters ----------------------------------------------

    std::vector<uint8_t> &
    section(bool in_text)
    {
        return in_text ? text_ : data_;
    }

    uint32_t
    here(bool in_text)
    {
        return (in_text ? kTextBase : kDataBase) +
            static_cast<uint32_t>(section(in_text).size());
    }

    void
    emitBytes(bool in_text, const void *src, size_t n)
    {
        auto &sec = section(in_text);
        const auto *p = static_cast<const uint8_t *>(src);
        sec.insert(sec.end(), p, p + n);
    }

    void
    emitWord(bool in_text, uint32_t w)
    {
        uint8_t b[4] = {
            static_cast<uint8_t>(w),
            static_cast<uint8_t>(w >> 8),
            static_cast<uint8_t>(w >> 16),
            static_cast<uint8_t>(w >> 24),
        };
        emitBytes(in_text, b, 4);
    }

    void
    skipBytes(bool in_text, size_t n)
    {
        auto &sec = section(in_text);
        sec.insert(sec.end(), n, 0);
    }

    // --- operand helpers --------------------------------------------------

    int
    reg(const Statement &st, size_t idx)
    {
        if (idx >= st.operands.size())
            err(st.line, "missing register operand");
        int r = isa::parseRegister(st.operands[idx]);
        if (r == isa::kNoReg)
            err(st.line, "bad register '" + st.operands[idx] + "'");
        return r;
    }

    /** Value of an integer-or-symbol expression (pass 2 only). */
    int64_t
    value(const Statement &st, const std::string &tok)
    {
        if (auto v = parseIntLiteral(tok))
            return *v;
        std::string sym;
        int64_t off;
        splitSymExpr(tok, sym, off);
        auto it = symbols_.find(sym);
        if (it == symbols_.end()) {
            if (!emitting_)
                return 0; // sizes never depend on symbol values
            err(st.line, "undefined symbol '" + sym + "'");
        }
        return static_cast<int64_t>(it->second) + off;
    }

    int64_t
    immOperand(const Statement &st, size_t idx)
    {
        if (idx >= st.operands.size())
            err(st.line, "missing immediate operand");
        return value(st, st.operands[idx]);
    }

    /** "imm(reg)" or "sym(reg)" or bare "sym" (reg = zero). */
    void
    memOperand(const Statement &st, size_t idx, int &base,
               int32_t &offset)
    {
        if (idx >= st.operands.size())
            err(st.line, "missing memory operand");
        const std::string &tok = st.operands[idx];
        size_t open = tok.find('(');
        if (open == std::string::npos) {
            base = 0;
            offset = static_cast<int32_t>(value(st, tok));
            return;
        }
        size_t close = tok.find(')', open);
        if (close == std::string::npos)
            err(st.line, "bad memory operand '" + tok + "'");
        std::string off_part = tok.substr(0, open);
        std::string reg_part = tok.substr(open + 1, close - open - 1);
        base = isa::parseRegister(reg_part);
        if (base == isa::kNoReg)
            err(st.line, "bad base register '" + reg_part + "'");
        offset = off_part.empty()
            ? 0 : static_cast<int32_t>(value(st, off_part));
    }

    uint16_t
    checkImm16(const Statement &st, int64_t v, bool is_signed)
    {
        if (is_signed) {
            if (v < -32768 || v > 32767)
                err(st.line, "immediate out of signed 16-bit range");
        } else {
            if (v < 0 || v > 65535)
                err(st.line, "immediate out of unsigned 16-bit range");
        }
        return static_cast<uint16_t>(v & 0xffff);
    }

    uint16_t
    branchOffset(const Statement &st, size_t idx)
    {
        int64_t target = immOperand(st, idx);
        if (!emitting_)
            return 0;
        int64_t delta = target - (static_cast<int64_t>(here(true)) + 4);
        if (delta & 3)
            err(st.line, "misaligned branch target");
        int64_t words = delta / 4;
        if (words < -32768 || words > 32767)
            err(st.line, "branch target out of range");
        return static_cast<uint16_t>(words & 0xffff);
    }

    void
    instr(const Statement &st, uint32_t word)
    {
        if (!st.in_text)
            err(st.line, "instruction outside .text");
        if (emitting_)
            emitWord(true, word);
        else
            skipBytes(true, 4);
    }

    // --- statement processing ---------------------------------------------

    void
    process(const Statement &st)
    {
        if (st.mnemonic[0] == '.') {
            directive(st);
            return;
        }
        if (pseudo(st))
            return;

        Opcode op;
        if (!isa::opcodeFromMnemonic(st.mnemonic, op))
            err(st.line, "unknown mnemonic '" + st.mnemonic + "'");
        const isa::OpInfo &info = isa::opInfo(op);

        switch (op) {
          case Opcode::NOP: case Opcode::HALT:
            instr(st, isa::encodeNone(op));
            return;
          case Opcode::PUTC:
            instr(st, isa::encodeR(op, 0, reg(st, 0), 0));
            return;
          case Opcode::JR:
            instr(st, isa::encodeR(op, 0, reg(st, 0), 0));
            return;
          case Opcode::JALR:
            instr(st, isa::encodeR(op, reg(st, 0), reg(st, 1), 0));
            return;
          case Opcode::J: case Opcode::JAL: {
            int64_t target = immOperand(st, 0);
            if (emitting_ && (target < 0 || target > 0x0fffffff))
                err(st.line, "jump target out of range");
            instr(st, isa::encodeJ(
                      op, static_cast<uint32_t>(target) & 0x0ffffffcu));
            return;
          }
          case Opcode::LUI: {
            int64_t v = immOperand(st, 1);
            instr(st, isa::encodeI(op, reg(st, 0), 0,
                                   checkImm16(st, v, false)));
            return;
          }
          case Opcode::FMVI:
            instr(st, isa::encodeR(op, reg(st, 0), reg(st, 1), 0));
            return;
          default:
            break;
        }

        switch (info.format) {
          case isa::Format::R:
            instr(st, isa::encodeR(op, reg(st, 0), reg(st, 1),
                                   reg(st, 2)));
            return;
          case isa::Format::I:
            switch (info.cls) {
              case isa::OpClass::Load: {
                int base;
                int32_t off;
                memOperand(st, 1, base, off);
                instr(st, isa::encodeI(op, reg(st, 0), base,
                                       checkImm16(st, off, true)));
                return;
              }
              case isa::OpClass::Store: {
                int base;
                int32_t off;
                memOperand(st, 1, base, off);
                instr(st, isa::encodeI(op, reg(st, 0), base,
                                       checkImm16(st, off, true)));
                return;
              }
              case isa::OpClass::BranchCond:
                instr(st, isa::encodeI(op, reg(st, 1), reg(st, 0),
                                       branchOffset(st, 2)));
                return;
              default: {
                // ALU immediate: op rt, rs, imm
                int64_t v = immOperand(st, 2);
                instr(st, isa::encodeI(op, reg(st, 0), reg(st, 1),
                                       checkImm16(st, v,
                                                  info.imm_signed)));
                return;
              }
            }
          default:
            err(st.line, "cannot assemble '" + st.mnemonic + "'");
        }
    }

    /** Expand pseudo-instructions; true if the mnemonic was one. */
    bool
    pseudo(const Statement &st)
    {
        const std::string &m = st.mnemonic;
        auto emitI = [&](Opcode op, int rt, int rs, uint16_t imm) {
            instr(st, isa::encodeI(op, rt, rs, imm));
        };
        auto emitR = [&](Opcode op, int rd, int rs, int rt) {
            instr(st, isa::encodeR(op, rd, rs, rt));
        };

        if (m == "li") {
            int rd = reg(st, 0);
            if (st.operands.size() < 2)
                err(st.line, "li needs a value");
            auto lit = parseIntLiteral(st.operands[1]);
            if (!lit)
                err(st.line, "li needs an integer literal (use la "
                    "for symbols)");
            int64_t v = *lit;
            if (v < -2147483648LL || v > 4294967295LL)
                err(st.line, "li value out of 32-bit range");
            uint32_t u = static_cast<uint32_t>(v);
            if (v >= -32768 && v <= 32767) {
                emitI(Opcode::ADDI, rd, 0,
                      static_cast<uint16_t>(u & 0xffff));
            } else if ((u >> 16) == 0) {
                emitI(Opcode::ORI, rd, 0, static_cast<uint16_t>(u));
            } else {
                emitI(Opcode::LUI, rd, 0,
                      static_cast<uint16_t>(u >> 16));
                if ((u & 0xffff) != 0)
                    emitI(Opcode::ORI, rd, rd,
                          static_cast<uint16_t>(u & 0xffff));
            }
            return true;
        }
        if (m == "la") {
            int rd = reg(st, 0);
            int64_t v = immOperand(st, 1);
            uint32_t u = static_cast<uint32_t>(v);
            // Always two instructions so pass-1 sizing is stable.
            emitI(Opcode::LUI, rd, 0, static_cast<uint16_t>(u >> 16));
            emitI(Opcode::ORI, rd, rd,
                  static_cast<uint16_t>(u & 0xffff));
            return true;
        }
        if (m == "move") {
            emitR(Opcode::ADD, reg(st, 0), reg(st, 1), 0);
            return true;
        }
        if (m == "not") {
            emitR(Opcode::NOR, reg(st, 0), reg(st, 1), 0);
            return true;
        }
        if (m == "neg") {
            emitR(Opcode::SUB, reg(st, 0), 0, reg(st, 1));
            return true;
        }
        if (m == "subi") {
            int64_t v = immOperand(st, 2);
            emitI(Opcode::ADDI, reg(st, 0), reg(st, 1),
                  checkImm16(st, -v, true));
            return true;
        }
        if (m == "b") {
            int64_t target = immOperand(st, 0);
            if (emitting_ && (target < 0 || target > 0x0fffffff))
                err(st.line, "branch target out of range");
            instr(st, isa::encodeJ(Opcode::J,
                      static_cast<uint32_t>(target) & 0x0ffffffcu));
            return true;
        }
        if (m == "beqz" || m == "bnez") {
            Statement copy = st;
            copy.mnemonic = m == "beqz" ? "beq" : "bne";
            copy.operands = {st.operands.at(0), "zero",
                             st.operands.at(1)};
            process(copy);
            return true;
        }
        if (m == "bgt" || m == "ble" || m == "bgtu" || m == "bleu") {
            Statement copy = st;
            copy.mnemonic = (m == "bgt") ? "blt"
                : (m == "ble") ? "bge"
                : (m == "bgtu") ? "bltu" : "bgeu";
            if (st.operands.size() < 3)
                err(st.line, m + " needs 3 operands");
            copy.operands = {st.operands[1], st.operands[0],
                             st.operands[2]};
            process(copy);
            return true;
        }
        return false;
    }

    void
    directive(const Statement &st)
    {
        const std::string &m = st.mnemonic;
        bool t = st.in_text;
        if (m == ".word") {
            for (const auto &tok : st.operands) {
                uint32_t v = static_cast<uint32_t>(value(st, tok));
                if (emitting_)
                    emitWord(t, v);
                else
                    skipBytes(t, 4);
            }
        } else if (m == ".half") {
            for (const auto &tok : st.operands) {
                uint16_t v = static_cast<uint16_t>(value(st, tok));
                if (emitting_)
                    emitBytes(t, &v, 2);
                else
                    skipBytes(t, 2);
            }
        } else if (m == ".byte") {
            for (const auto &tok : st.operands) {
                uint8_t v = static_cast<uint8_t>(value(st, tok));
                if (emitting_)
                    emitBytes(t, &v, 1);
                else
                    skipBytes(t, 1);
            }
        } else if (m == ".asciiz" || m == ".ascii") {
            size_t n = st.string_arg.size() + (m == ".asciiz" ? 1 : 0);
            if (emitting_)
                emitBytes(t, st.string_arg.c_str(), n);
            else
                skipBytes(t, n);
        } else if (m == ".space") {
            int64_t n = immOperand(st, 0);
            if (n < 0 || n > (64 << 20))
                err(st.line, ".space size out of range");
            skipBytes(t, static_cast<size_t>(n));
        } else if (m == ".align") {
            int64_t a = immOperand(st, 0);
            if (a < 1 || a > 4096 || (a & (a - 1)))
                err(st.line, ".align expects a power of two");
            uint32_t cur = here(t);
            uint32_t pad = (static_cast<uint32_t>(a) -
                            (cur % static_cast<uint32_t>(a))) %
                static_cast<uint32_t>(a);
            skipBytes(t, pad);
        } else if (m == ".globl" || m == ".global" || m == ".ent" ||
                   m == ".end") {
            // accepted and ignored
        } else {
            err(st.line, "unknown directive '" + m + "'");
        }
    }
};

} // namespace

AssembleResult
assemble(const std::string &source)
{
    AssembleResult r;
    try {
        Assembler a(source);
        r.program = a.run();
        r.ok = true;
    } catch (const AsmError &e) {
        r.ok = false;
        r.error = strprintf("line %d: %s", e.line, e.msg.c_str());
    }
    return r;
}

Program
assembleOrDie(const std::string &source, const std::string &what)
{
    AssembleResult r = assemble(source);
    if (!r.ok)
        fatal("%s: %s", what.c_str(), r.error.c_str());
    return std::move(r.program);
}

} // namespace cesp::assembler
