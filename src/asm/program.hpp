/**
 * @file
 * Loadable program image produced by the assembler and consumed by
 * the functional emulator: byte segments at fixed base addresses, an
 * entry point, and the resolved symbol table.
 */

#ifndef CESP_ASM_PROGRAM_HPP
#define CESP_ASM_PROGRAM_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cesp::assembler {

/** Default section base addresses (MIPS-like memory map). */
constexpr uint32_t kTextBase = 0x00010000;
constexpr uint32_t kDataBase = 0x10000000;
constexpr uint32_t kStackTop = 0x7ffffff0;

/** A loadable program image. */
struct Program
{
    /** Entry pc (address of the "main" label, else start of .text). */
    uint32_t entry = kTextBase;

    /** Segment base address -> raw bytes. */
    std::map<uint32_t, std::vector<uint8_t>> segments;

    /** Resolved label addresses. */
    std::map<std::string, uint32_t> symbols;

    /** Total bytes across all segments. */
    size_t
    totalBytes() const
    {
        size_t n = 0;
        for (const auto &kv : segments)
            n += kv.second.size();
        return n;
    }
};

} // namespace cesp::assembler

#endif // CESP_ASM_PROGRAM_HPP
