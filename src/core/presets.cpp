/**
 * @file
 * Preset machine configurations.
 */

#include "core/presets.hpp"

#include "common/logging.hpp"

namespace cesp::core {

using uarch::IssueBufferStyle;
using uarch::SimConfig;
using uarch::SteeringPolicy;

SimConfig
baseline8Way()
{
    SimConfig c;
    c.name = "1-cluster.1window";
    return c; // Table 3 defaults
}

SimConfig
dependence8x8()
{
    SimConfig c;
    c.name = "1-cluster.fifos.dispatch_steer";
    c.style = IssueBufferStyle::Fifos;
    c.steering = SteeringPolicy::DependenceFifo;
    c.fifos_per_cluster = 8;
    c.fifo_depth = 8;
    return c;
}

SimConfig
clusteredDependence2x4()
{
    SimConfig c;
    c.name = "2-cluster.fifos.dispatch_steer";
    c.style = IssueBufferStyle::Fifos;
    c.steering = SteeringPolicy::DependenceFifo;
    c.num_clusters = 2;
    c.fifos_per_cluster = 4;
    c.fifo_depth = 8;
    c.fus_per_cluster = 4;
    return c;
}

SimConfig
clusteredWindows2x4()
{
    SimConfig c;
    c.name = "2-cluster.windows.dispatch_steer";
    c.style = IssueBufferStyle::PerClusterWindow;
    c.steering = SteeringPolicy::WindowFifo;
    c.num_clusters = 2;
    c.window_size = 32;
    c.concept_fifos_per_cluster = 8;
    c.concept_fifo_depth = 4;
    c.fus_per_cluster = 4;
    return c;
}

SimConfig
clusteredExecDriven2x4()
{
    SimConfig c;
    c.name = "2-cluster.1window.exec_steer";
    c.style = IssueBufferStyle::CentralWindow;
    c.steering = SteeringPolicy::ExecutionDriven;
    c.num_clusters = 2;
    c.window_size = 64;
    c.fus_per_cluster = 4;
    return c;
}

SimConfig
clusteredRandom2x4()
{
    SimConfig c;
    c.name = "2-cluster.windows.random_steer";
    c.style = IssueBufferStyle::PerClusterWindow;
    c.steering = SteeringPolicy::Random;
    c.num_clusters = 2;
    c.window_size = 32;
    c.fus_per_cluster = 4;
    return c;
}

std::vector<SimConfig>
figure17Configs()
{
    return {
        baseline8Way(),
        clusteredDependence2x4(),
        clusteredWindows2x4(),
        clusteredExecDriven2x4(),
        clusteredRandom2x4(),
    };
}

SimConfig
scaledBaseline(int issue_width)
{
    if (issue_width < 1 || issue_width > 16)
        fatal("scaledBaseline: issue width %d outside [1, 16]",
              issue_width);
    SimConfig c = baseline8Way();
    c.name = "window." + std::to_string(issue_width) + "way";
    c.fetch_width = issue_width;
    c.rename_width = issue_width;
    c.issue_width = issue_width;
    c.retire_width = 2 * issue_width;
    c.window_size = 8 * issue_width;
    c.fus_per_cluster = issue_width;
    c.max_inflight = 16 * issue_width;
    return c;
}

SimConfig
baseline16Way()
{
    SimConfig c = scaledBaseline(16);
    c.name = "1-cluster.1window.16way";
    c.ls_ports = 8;
    return c;
}

SimConfig
clusteredDependence4x4()
{
    SimConfig c = baseline16Way();
    c.name = "4-cluster.fifos.dispatch_steer.16way";
    c.style = IssueBufferStyle::Fifos;
    c.steering = SteeringPolicy::DependenceFifo;
    c.num_clusters = 4;
    c.fifos_per_cluster = 4;
    c.fifo_depth = 8;
    c.fus_per_cluster = 4;
    return c;
}

SimConfig
scaledDependence(int issue_width)
{
    SimConfig c = scaledBaseline(issue_width);
    c.name = "fifos." + std::to_string(issue_width) + "way";
    c.style = IssueBufferStyle::Fifos;
    c.steering = SteeringPolicy::DependenceFifo;
    c.fifos_per_cluster = issue_width;
    c.fifo_depth = 8;
    return c;
}

} // namespace cesp::core
