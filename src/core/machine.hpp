/**
 * @file
 * The top-level facade: configure a machine, point it at a workload
 * (named benchmark, assembly source, or prebuilt trace), and get
 * statistics back. This is the API the examples and benches use.
 */

#ifndef CESP_CORE_MACHINE_HPP
#define CESP_CORE_MACHINE_HPP

#include <string>

#include "trace/trace.hpp"
#include "uarch/config.hpp"
#include "uarch/pipeline.hpp"

namespace cesp::core {

/**
 * A configured machine. Each run constructs a fresh Pipeline, so a
 * Machine can be reused across workloads.
 */
class Machine
{
  public:
    explicit Machine(uarch::SimConfig cfg);

    /** Simulate one of the registered benchmark workloads. */
    uarch::SimStats runWorkload(const std::string &name) const;

    /**
     * Assemble and functionally execute @p source, then simulate the
     * resulting trace.
     */
    uarch::SimStats runProgram(const std::string &source,
                               uint64_t max_instructions = 10000000)
        const;

    /** Simulate a caller-provided trace. */
    uarch::SimStats runTrace(trace::TraceSource &src) const;

    const uarch::SimConfig &config() const { return cfg_; }

  private:
    uarch::SimConfig cfg_;
};

/**
 * Process-wide cache of workload traces: generating a trace runs the
 * functional emulator, so harnesses comparing many configurations
 * over the same benchmarks reuse one copy per workload.
 *
 * Backing storage depends on the cross-process disk cache
 * (CESP_TRACE_CACHE; see DESIGN.md §6). When a valid v2 file is on
 * disk the entry is served by an MmapTraceSource — records come
 * straight from the page cache, shared with every other process
 * mapping the same file, with zero decode. When the disk cache is
 * disabled, missing, or fails integrity checks (each failure is
 * logged with its distinct cause), the trace regenerates into a
 * private buffer and — where possible — is republished to disk and
 * remapped. Not thread-safe: resolve views on the calling thread
 * before handing them to sweep workers (the view stays valid until
 * clearTraceCache()).
 */
trace::TraceView cachedWorkloadTraceView(const std::string &name);

/**
 * Legacy buffer-ref accessor. If the cache entry is mmap-backed,
 * this materializes a private TraceBuffer copy on first use — prefer
 * cachedWorkloadTraceView, which is zero-copy in that case.
 */
trace::TraceBuffer &cachedWorkloadTrace(const std::string &name);

/** Drop all cached traces and mappings (frees tens of MB);
 *  invalidates every view previously returned. */
void clearTraceCache();

} // namespace cesp::core

#endif // CESP_CORE_MACHINE_HPP
