/**
 * @file
 * Implementation of the machine facade.
 */

#include "core/machine.hpp"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>

#include "common/logging.hpp"
#include "func/emulator.hpp"
#include "trace/mmap_source.hpp"
#include "trace/tracefile.hpp"
#include "workloads/workloads.hpp"

namespace cesp::core {

Machine::Machine(uarch::SimConfig cfg) : cfg_(std::move(cfg))
{
    cfg_.validate();
}

uarch::SimStats
Machine::runWorkload(const std::string &name) const
{
    // A cursor over the cached view works for both backings and
    // leaves the shared storage's position untouched.
    trace::TraceCursor cursor(cachedWorkloadTraceView(name));
    return runTrace(cursor);
}

uarch::SimStats
Machine::runProgram(const std::string &source,
                    uint64_t max_instructions) const
{
    trace::TraceBuffer buf;
    func::runProgram(source, max_instructions, &buf);
    return runTrace(buf);
}

uarch::SimStats
Machine::runTrace(trace::TraceSource &src) const
{
    return uarch::simulate(cfg_, src);
}

namespace {

/**
 * One cached workload trace. Exactly one backing is primary: an
 * mmap-backed entry has a live MmapTraceSource and (lazily, only if
 * the legacy buffer-ref API is used) a materialized buffer copy; a
 * buffer-backed entry owns its records outright.
 */
struct CachedTrace
{
    trace::TraceBuffer buf;
    std::unique_ptr<trace::MmapTraceSource> mmap;
    trace::TraceView view;
};

std::map<std::string, CachedTrace> &
traceCache()
{
    static std::map<std::string, CachedTrace> cache;
    return cache;
}

/** FNV-1a hash of the kernel source (cache invalidation key). */
uint64_t
sourceHash(const char *s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (; *s; ++s) {
        h ^= static_cast<uint8_t>(*s);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/**
 * Directory for the cross-process trace cache, or empty if disabled
 * (CESP_TRACE_CACHE=off). Default: <tmp>/cesp-traces.
 */
std::filesystem::path
diskCacheDir()
{
    const char *env = std::getenv("CESP_TRACE_CACHE");
    if (env && std::string(env) == "off")
        return {};
    std::error_code ec;
    std::filesystem::path dir = env && *env
        ? std::filesystem::path(env)
        : std::filesystem::temp_directory_path(ec) / "cesp-traces";
    if (ec)
        return {};
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return {};
    return dir;
}

/**
 * Write @p buf to the cache file via write-then-rename (so parallel
 * harnesses never observe a half-written file), propagating any
 * write/flush/close failure. On failure the temporary is removed and
 * the published file is untouched.
 */
bool
publishTrace(const trace::TraceBuffer &buf,
             const std::filesystem::path &file)
{
    std::filesystem::path tmp =
        file.string() + strprintf(".%d.tmp", getpid());
    trace::TraceIoResult saved = trace::saveTrace(buf, tmp.string());
    std::error_code ec;
    if (!saved.ok()) {
        warn("trace cache: not publishing %s: %s (%s)",
             file.string().c_str(),
             trace::traceIoStatusName(saved.status),
             saved.detail.c_str());
        std::filesystem::remove(tmp, ec);
        return false;
    }
    std::filesystem::rename(tmp, file, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

/**
 * Resolve a workload's trace: mmap the disk cache's v2 file when it
 * verifies, upgrade a v1 file in place, and otherwise regenerate
 * (logging why the cached file was rejected) and republish.
 */
CachedTrace
obtainTrace(const workloads::Workload &w)
{
    CachedTrace entry;
    std::filesystem::path dir = diskCacheDir();
    std::filesystem::path file;
    if (!dir.empty()) {
        file = dir / strprintf("%s-%016llx.trc", w.name.c_str(),
                               static_cast<unsigned long long>(
                                   sourceHash(w.source)));
        auto mmap = std::make_unique<trace::MmapTraceSource>();
        trace::TraceIoResult opened = mmap->open(file.string());
        if (opened.ok()) {
            entry.view = mmap->view();
            entry.mmap = std::move(mmap);
            return entry;
        }
        if (opened.status == trace::TraceIoStatus::LegacyVersion) {
            // A valid v1 file: decode it once, republish as v2, and
            // serve the mapping so later processes share pages.
            trace::TraceBuffer upgraded;
            trace::TraceIoResult loaded =
                trace::loadTrace(file.string(), upgraded);
            if (loaded.ok()) {
                inform("trace cache: upgrading %s to v2",
                       file.string().c_str());
                if (publishTrace(upgraded, file) &&
                    mmap->open(file.string()).ok()) {
                    entry.view = mmap->view();
                    entry.mmap = std::move(mmap);
                    return entry;
                }
                entry.buf = std::move(upgraded);
                entry.view = entry.buf;
                return entry;
            }
            warn("trace cache: %s: %s (%s); regenerating",
                 file.string().c_str(),
                 trace::traceIoStatusName(loaded.status),
                 loaded.detail.c_str());
        } else if (opened.status != trace::TraceIoStatus::OpenFailed) {
            // Missing file is the normal cold-cache case and stays
            // quiet; anything else is a corrupt or foreign file and
            // says exactly what was wrong before we fall back.
            warn("trace cache: %s: %s (%s); regenerating",
                 file.string().c_str(),
                 trace::traceIoStatusName(opened.status),
                 opened.detail.c_str());
        }
    }

    trace::TraceBuffer buf = workloads::traceOf(w);

    if (!file.empty() && publishTrace(buf, file)) {
        // Prefer serving the published file: the mapping's pages are
        // shared with every other process simulating this workload.
        auto mmap = std::make_unique<trace::MmapTraceSource>();
        if (mmap->open(file.string()).ok()) {
            entry.view = mmap->view();
            entry.mmap = std::move(mmap);
            return entry;
        }
    }
    entry.buf = std::move(buf);
    entry.view = entry.buf;
    return entry;
}

CachedTrace &
cacheEntry(const std::string &name)
{
    auto &cache = traceCache();
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name,
                          obtainTrace(workloads::workload(name)))
                 .first;
    }
    return it->second;
}

} // namespace

trace::TraceView
cachedWorkloadTraceView(const std::string &name)
{
    return cacheEntry(name).view;
}

trace::TraceBuffer &
cachedWorkloadTrace(const std::string &name)
{
    CachedTrace &entry = cacheEntry(name);
    if (entry.mmap && entry.buf.empty() && entry.mmap->size()) {
        // Legacy API against an mmap-backed entry: materialize a
        // private copy once. The entry's view stays on the mapping.
        std::vector<trace::TraceOp> ops(
            entry.view.records, entry.view.records + entry.view.count);
        entry.buf.assign(std::move(ops));
    }
    return entry.buf;
}

void
clearTraceCache()
{
    traceCache().clear();
}

} // namespace cesp::core
