/**
 * @file
 * Implementation of the machine facade.
 */

#include "core/machine.hpp"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <map>

#include "common/logging.hpp"
#include "func/emulator.hpp"
#include "trace/tracefile.hpp"
#include "workloads/workloads.hpp"

namespace cesp::core {

Machine::Machine(uarch::SimConfig cfg) : cfg_(std::move(cfg))
{
    cfg_.validate();
}

uarch::SimStats
Machine::runWorkload(const std::string &name) const
{
    return runTrace(cachedWorkloadTrace(name));
}

uarch::SimStats
Machine::runProgram(const std::string &source,
                    uint64_t max_instructions) const
{
    trace::TraceBuffer buf;
    func::runProgram(source, max_instructions, &buf);
    return runTrace(buf);
}

uarch::SimStats
Machine::runTrace(trace::TraceSource &src) const
{
    return uarch::simulate(cfg_, src);
}

namespace {

std::map<std::string, trace::TraceBuffer> &
traceCache()
{
    static std::map<std::string, trace::TraceBuffer> cache;
    return cache;
}

/** FNV-1a hash of the kernel source (cache invalidation key). */
uint64_t
sourceHash(const char *s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (; *s; ++s) {
        h ^= static_cast<uint8_t>(*s);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/**
 * Directory for the cross-process trace cache, or empty if disabled
 * (CESP_TRACE_CACHE=off). Default: <tmp>/cesp-traces.
 */
std::filesystem::path
diskCacheDir()
{
    const char *env = std::getenv("CESP_TRACE_CACHE");
    if (env && std::string(env) == "off")
        return {};
    std::error_code ec;
    std::filesystem::path dir = env && *env
        ? std::filesystem::path(env)
        : std::filesystem::temp_directory_path(ec) / "cesp-traces";
    if (ec)
        return {};
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return {};
    return dir;
}

/** Load from / save to the disk cache; regenerate on any miss. */
trace::TraceBuffer
obtainTrace(const workloads::Workload &w)
{
    std::filesystem::path dir = diskCacheDir();
    std::filesystem::path file;
    if (!dir.empty()) {
        file = dir / strprintf("%s-%016llx.trc", w.name.c_str(),
                               static_cast<unsigned long long>(
                                   sourceHash(w.source)));
        trace::TraceBuffer cached;
        if (trace::loadTrace(file.string(), cached))
            return cached;
    }

    trace::TraceBuffer buf = workloads::traceOf(w);

    if (!file.empty()) {
        // Write-then-rename keeps parallel harnesses from reading a
        // half-written file.
        std::filesystem::path tmp =
            file.string() + strprintf(".%d.tmp", getpid());
        if (trace::saveTrace(buf, tmp.string())) {
            std::error_code ec;
            std::filesystem::rename(tmp, file, ec);
            if (ec)
                std::filesystem::remove(tmp, ec);
        }
    }
    return buf;
}

} // namespace

trace::TraceBuffer &
cachedWorkloadTrace(const std::string &name)
{
    auto &cache = traceCache();
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name,
                          obtainTrace(workloads::workload(name)))
                 .first;
    }
    return it->second;
}

void
clearTraceCache()
{
    traceCache().clear();
}

} // namespace cesp::core
