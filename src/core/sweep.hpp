/**
 * @file
 * Parallel sweep runner: simulate many configurations over shared
 * traces across a pool of worker threads. Design-space exploration
 * is embarrassingly parallel — every (configuration, trace) pair is
 * an independent simulation — so the harnesses that used to loop
 * serially (design_space, clustered_tradeoff, cesp-sim sweeps) hand
 * their task lists to runSweep instead.
 *
 * Determinism: results are indexed by task position and each
 * simulation is a pure function of its (config, trace) pair, so the
 * output is bit-identical for any thread count, including 1. The
 * simulator holds no mutable global state (verified by the
 * tsan-labeled sweep test); the one process-wide cache in the
 * library, core::cachedWorkloadTrace, is NOT thread-safe and must be
 * resolved on the calling thread before the sweep starts — which is
 * natural, since SweepTask wants the resolved buffer pointer anyway.
 */

#ifndef CESP_CORE_SWEEP_HPP
#define CESP_CORE_SWEEP_HPP

#include <functional>
#include <vector>

#include "trace/trace.hpp"
#include "uarch/config.hpp"
#include "uarch/pipeline.hpp"

namespace cesp::core {

/** One simulation in a sweep. The trace is shared, not owned, and
 *  must outlive the runSweep call; workers read it through private
 *  TraceCursors. A TraceView converts implicitly from a TraceBuffer
 *  and from an MmapTraceSource, so tasks can mix buffer-backed and
 *  mmap-backed traces freely. warmup discards the stats of the
 *  leading instructions (see Pipeline::run): the machine state warms
 *  up over them, measurement starts when the warmup-th commits. */
struct SweepTask
{
    uarch::SimConfig cfg;
    trace::TraceView trace;
    uint64_t warmup = 0;
};

/** Worker count used when jobs == 0: the hardware concurrency, or 1
 *  if the runtime cannot report it. */
unsigned defaultJobs();

/**
 * Options for core::run, the single entrypoint that replaced the
 * runSweep / runSharded / runShardedBatch trio. Defaults reproduce a
 * plain parallel sweep; shards/warmup select sharded execution, and
 * the callbacks stream results out as workers finish.
 */
struct RunOptions
{
    /** Worker threads; 0 = defaultJobs(), 1 = inline on the caller. */
    unsigned jobs = 0;
    /** Split every task's trace into this many contiguous measured
     *  windows (see planShards). Values <= 1 combined with warmup ==
     *  0 run each task monolithically. */
    unsigned shards = 1;
    /** Per-shard state-warming prefix, in trace records. Applies
     *  only to sharded execution (shards > 1 or warmup > 0), where it
     *  overrides any SweepTask::warmup, matching the old
     *  runShardedBatch contract. Unsharded runs honour the per-task
     *  warmup instead. */
    uint64_t warmup = 0;
    /** Emit a StatSnapshot every this-many measured commits of each
     *  simulation (0 = off; requires on_snapshot). */
    uint64_t sample_every = 0;

    // Completion callbacks. All of them run on whichever worker
    // thread finished the work (or on the caller when jobs <= 1), in
    // completion order, and therefore must be thread-safe; the
    // task/shard indices carried by each call — not arrival order —
    // identify the result. A callback that throws aborts the run
    // like a simulation failure: first exception wins, the pool
    // drains, and core::run rethrows on the caller.

    /** One task finished: its merged (sharded) or whole-run group,
     *  labelled with the task's configuration name. */
    std::function<void(size_t task, const StatGroup &stats)> on_result;
    /** One simulation finished: the task's only run (shard == 0 when
     *  unsharded) or one measured shard window. */
    std::function<void(size_t task, size_t shard,
                       const uarch::SimStats &stats)>
        on_shard;
    /** One interval snapshot (see uarch::StatSnapshot). */
    std::function<void(size_t task, size_t shard,
                       const uarch::StatSnapshot &snap)>
        on_snapshot;

    /** When false, RunResult comes back empty and results exist only
     *  as callback invocations — the O(1)-memory mode that lets a
     *  million-point sweep stream to disk. (Sharded runs still
     *  buffer each task's in-flight shard stats until the task
     *  completes.) */
    bool collect_results = true;
};

/** What core::run produced (empty when !RunOptions::collect_results). */
struct RunResult
{
    /** Every simulation in plan order: one entry per task when
     *  unsharded, the flattened task-major shard windows when
     *  sharded. */
    std::vector<uarch::SimStats> stats;
    /** One group per task, in task order, labelled with the task's
     *  configuration name: the run's own stats, or the mergedStats
     *  of its shards. */
    std::vector<StatGroup> groups;
};

/**
 * Simulate every task and return the statistics in task order — the
 * one run entrypoint. Tasks are distributed round-robin over
 * per-worker deques; a worker that drains its own deque steals from
 * the back of its neighbors', so uneven task lengths (a 16-way
 * machine next to a 2-way one) still load-balance. Results are
 * deterministic (bit-identical) for any jobs count.
 *
 * With shards > 1 or warmup > 0, every task's trace is split via
 * planShards and the whole expansion runs as one flat task list on
 * the pool (shards of different tasks load-balance against each
 * other), then merges per task — see ShardedRun for the measurement
 * contract.
 *
 * If a simulation (or callback) throws, the first exception is
 * captured, the remaining tasks are drained without running, all
 * workers join, and the exception is rethrown on the calling thread
 * — a worker-side throw never reaches std::terminate.
 */
RunResult run(const std::vector<SweepTask> &tasks,
              const RunOptions &options = {});

/** @deprecated Thin wrapper over core::run; use it directly. */
[[deprecated("use core::run(tasks, RunOptions)")]]
std::vector<uarch::SimStats> runSweep(const std::vector<SweepTask> &tasks,
                                      unsigned jobs = 0);

/** @deprecated Thin wrapper over core::run; use it directly. */
[[deprecated("use core::run(tasks, RunOptions)")]]
std::vector<uarch::SimStats>
runSweep(const std::vector<uarch::SimConfig> &configs,
         trace::TraceView trace, unsigned jobs = 0);

/**
 * Merge per-run statistics into one aggregate StatGroup: counters
 * add, samples and histograms combine, derived metrics recompute
 * over the merged operands. All results must share a schema (same
 * machine organization, in particular the same cluster count);
 * mismatches are fatal. Empty input yields a default-constructed
 * single-cluster group with every counter zero.
 *
 * Because counter merge is integer addition, the merge of N
 * per-worker groups is exactly the single-threaded accumulation —
 * the property the metrics test suite checks across runSweep worker
 * counts.
 */
StatGroup mergedStats(const std::vector<uarch::SimStats> &results);

/**
 * One window of a sharded trace run. The shard simulates records
 * [begin, end) of the trace; the first `warmup` of them only warm
 * the machine state (their stats are discarded), so the measured
 * window is [begin + warmup, end).
 *
 * No cooldown suffix follows the window: commit is in-order, so a
 * measured instruction's commit cycle depends only on itself and
 * older instructions — simulating records past `end` could not
 * change the measured cycle count (verified empirically while
 * tuning the convergence suite). The only sharding bias is cold
 * machine state at `begin`, which the warmup prefix addresses.
 */
struct ShardSpec
{
    size_t begin;    //!< first record simulated (start of warmup)
    size_t end;      //!< one past the last record simulated
    uint64_t warmup; //!< leading records excluded from the stats
};

/**
 * Split a trace of @p record_count records into @p shards contiguous
 * measured windows (sizes differ by at most one record, in order, no
 * gaps or overlap), each preceded by up to @p warmup records of
 * state-warming prefix drawn from the records just before the
 * window. Shard 0 has no prefix (nothing precedes it) and windows
 * near the start get what is available — warmup is clamped, never an
 * error. Degenerate inputs clamp deterministically: shards == 0
 * plans like 1; more shards than records plans one shard per record;
 * an empty trace plans a single empty shard.
 */
std::vector<ShardSpec> planShards(size_t record_count,
                                  unsigned shards, uint64_t warmup);

/** Per-shard stats plus their merge, from runSharded. */
struct ShardedRun
{
    std::vector<uarch::SimStats> shards; //!< measured, in trace order
    StatGroup merged; //!< mergedStats over the shards
};

/**
 * Simulate one (configuration, trace) pair as K parallel shard
 * windows on the runSweep pool and merge the measured stats. The
 * merged group's derived IPC is total committed over total (summed)
 * shard cycles — the sampled-simulation estimate of the monolithic
 * IPC; the accuracy gap shrinks as warmup grows (see the
 * test_shard convergence suite and bench/shard_accuracy). Merged
 * committed is exact for any K and warmup (the measured windows
 * partition the trace); warmup records are simulated by two shards,
 * but only ever measured by one.
 *
 * With shards == 1 and warmup == 0 the single shard is the whole
 * trace and its stats are bit-identical (StatGroup::sameValues) to a
 * monolithic uarch::simulate of the same pair.
 *
 * @deprecated Thin wrapper over core::run; use it directly.
 */
[[deprecated("use core::run(tasks, RunOptions{.shards=, .warmup=})")]]
ShardedRun runSharded(const uarch::SimConfig &cfg,
                      trace::TraceView trace, unsigned shards,
                      uint64_t warmup, unsigned jobs = 0);

/**
 * Shard every (configuration, trace) pair of @p pairs K ways and run
 * the whole expansion as one flat task list on the pool, then merge
 * per pair. Returns one merged StatGroup per input pair, in order,
 * labelled with the pair's configuration name. Any warmup already on
 * a pair is ignored; @p warmup applies to every shard.
 *
 * @deprecated Thin wrapper over core::run; use it directly.
 */
[[deprecated("use core::run(tasks, RunOptions{.shards=, .warmup=})")]]
std::vector<StatGroup>
runShardedBatch(const std::vector<SweepTask> &pairs, unsigned shards,
                uint64_t warmup, unsigned jobs = 0);

namespace detail {

/**
 * Test-only fault injection: when non-null, called with each task's
 * index just before that task simulates (on the worker thread that
 * runs it). The exception-propagation tests use this to make a
 * specific task throw; production code leaves it null.
 */
extern void (*sweep_task_hook)(size_t task_index);

} // namespace detail

} // namespace cesp::core

#endif // CESP_CORE_SWEEP_HPP
