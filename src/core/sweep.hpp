/**
 * @file
 * Parallel sweep runner: simulate many configurations over shared
 * traces across a pool of worker threads. Design-space exploration
 * is embarrassingly parallel — every (configuration, trace) pair is
 * an independent simulation — so the harnesses that used to loop
 * serially (design_space, clustered_tradeoff, cesp-sim sweeps) hand
 * their task lists to runSweep instead.
 *
 * Determinism: results are indexed by task position and each
 * simulation is a pure function of its (config, trace) pair, so the
 * output is bit-identical for any thread count, including 1. The
 * simulator holds no mutable global state (verified by the
 * tsan-labeled sweep test); the one process-wide cache in the
 * library, core::cachedWorkloadTrace, is NOT thread-safe and must be
 * resolved on the calling thread before the sweep starts — which is
 * natural, since SweepTask wants the resolved buffer pointer anyway.
 */

#ifndef CESP_CORE_SWEEP_HPP
#define CESP_CORE_SWEEP_HPP

#include <vector>

#include "trace/trace.hpp"
#include "uarch/config.hpp"
#include "uarch/pipeline.hpp"

namespace cesp::core {

/** One simulation in a sweep. The trace is shared, not owned, and
 *  must outlive the runSweep call; workers read it through private
 *  TraceCursors. A TraceView converts implicitly from a TraceBuffer
 *  and from an MmapTraceSource, so tasks can mix buffer-backed and
 *  mmap-backed traces freely. */
struct SweepTask
{
    uarch::SimConfig cfg;
    trace::TraceView trace;
};

/** Worker count used when jobs == 0: the hardware concurrency, or 1
 *  if the runtime cannot report it. */
unsigned defaultJobs();

/**
 * Simulate every task and return the statistics in task order.
 * Tasks are distributed round-robin over per-worker deques; a worker
 * that drains its own deque steals from the back of its neighbors',
 * so uneven task lengths (a 16-way machine next to a 2-way one)
 * still load-balance. jobs == 0 means defaultJobs(), jobs == 1 runs
 * inline on the calling thread.
 *
 * If a simulation throws, the first exception (in discovery order)
 * is captured, the remaining tasks are drained without running, all
 * workers join, and the exception is rethrown on the calling thread
 * — a worker-side throw never reaches std::terminate.
 */
std::vector<uarch::SimStats> runSweep(const std::vector<SweepTask> &tasks,
                                      unsigned jobs = 0);

/** Convenience: every configuration over one shared trace. */
std::vector<uarch::SimStats>
runSweep(const std::vector<uarch::SimConfig> &configs,
         trace::TraceView trace, unsigned jobs = 0);

/**
 * Merge per-run statistics into one aggregate StatGroup: counters
 * add, samples and histograms combine, derived metrics recompute
 * over the merged operands. All results must share a schema (same
 * machine organization, in particular the same cluster count);
 * mismatches are fatal. Empty input yields a default-constructed
 * single-cluster group with every counter zero.
 *
 * Because counter merge is integer addition, the merge of N
 * per-worker groups is exactly the single-threaded accumulation —
 * the property the metrics test suite checks across runSweep worker
 * counts.
 */
StatGroup mergedStats(const std::vector<uarch::SimStats> &results);

namespace detail {

/**
 * Test-only fault injection: when non-null, called with each task's
 * index just before that task simulates (on the worker thread that
 * runs it). The exception-propagation tests use this to make a
 * specific task throw; production code leaves it null.
 */
extern void (*sweep_task_hook)(size_t task_index);

} // namespace detail

} // namespace cesp::core

#endif // CESP_CORE_SWEEP_HPP
