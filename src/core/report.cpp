/**
 * @file
 * Implementation of the Section 5.5 speedup study.
 */

#include "core/report.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "core/machine.hpp"
#include "core/presets.hpp"
#include "vlsi/clock.hpp"
#include "workloads/workloads.hpp"

namespace cesp::core {

StatGroup
SpeedupStudy::toGroup() const
{
    StatGroup g("cesp.speedup_study",
                vlsi::technology(tech).name +
                    " dep-based 2x4 vs window 8-way");
    g.addGauge("clock_ratio", "ratio",
               "dependence-based clock over window-based clock",
               clock_ratio);
    g.addGauge("mean_speedup", "ratio",
               "arithmetic mean of per-workload overall speedups",
               mean_speedup);
    g.addGauge("mean_ipc_ratio", "ratio",
               "arithmetic mean of per-workload IPC ratios",
               mean_ipc_ratio);
    for (const SpeedupEntry &e : entries) {
        g.addGauge(e.workload + ".ipc_window", "ipc",
                   "IPC on the 8-way 64-entry window machine",
                   e.ipc_window);
        g.addGauge(e.workload + ".ipc_dep", "ipc",
                   "IPC on the 2x4 clustered dependence machine",
                   e.ipc_dep);
        g.addGauge(e.workload + ".ipc_ratio", "ratio",
                   "dep-based IPC over window-based IPC",
                   e.ipcRatio());
        g.addGauge(e.workload + ".speedup", "ratio",
                   "IPC ratio times clock ratio", e.speedup);
    }
    return g;
}

SpeedupStudy
runSpeedupStudy(vlsi::Process tech)
{
    SpeedupStudy study;
    study.tech = tech;

    vlsi::ClockEstimator clock(tech);
    // Section 5.5: the dep-based machine clocks at least as fast as a
    // machine with half the width and half the window.
    study.clock_ratio = clock.dependenceClockRatio(8, 64);

    Machine window(baseline8Way());
    Machine dep(clusteredDependence2x4());

    double speedup_sum = 0.0;
    double ratio_sum = 0.0;
    for (const auto &w : workloads::allWorkloads()) {
        SpeedupEntry e;
        e.workload = w.name;
        e.ipc_window = window.runWorkload(w.name).ipc();
        e.ipc_dep = dep.runWorkload(w.name).ipc();
        e.clock_ratio = study.clock_ratio;
        e.speedup = e.ipcRatio() * e.clock_ratio;
        speedup_sum += e.speedup;
        ratio_sum += e.ipcRatio();
        study.entries.push_back(e);
    }
    size_t n = study.entries.size();
    study.mean_speedup = n ? speedup_sum / static_cast<double>(n) : 0.0;
    study.mean_ipc_ratio = n ? ratio_sum / static_cast<double>(n) : 0.0;
    return study;
}

namespace {

/** Count the entries StatGroup::diff flags (one per line). */
size_t
countDiffLines(const std::string &diff)
{
    size_t n = 0;
    for (char c : diff)
        if (c == '\n')
            ++n;
    return n;
}

} // namespace

CompareResult
compareGroups(const std::vector<StatGroup> &before,
              const std::vector<StatGroup> &after,
              const CompareOptions &opt)
{
    CompareResult res;
    if (before.size() != after.size()) {
        res.schema_ok = false;
        res.error = strprintf(
            "run counts differ: %zu vs %zu groups",
            before.size(), after.size());
    }
    size_t n = std::min(before.size(), after.size());
    for (size_t i = 0; i < n; ++i) {
        const StatGroup &a = before[i];
        const StatGroup &b = after[i];
        CompareEntry e;
        e.label = !b.label().empty() ? b.label() : a.label();
        e.schema_note = a.schemaDiff(b);
        if (!e.schema_note.empty()) {
            res.schema_ok = false;
            res.entries.push_back(std::move(e));
            continue;
        }
        e.differing = countDiffLines(a.diff(b));
        const StatEntry *ma = a.find(opt.metric);
        if (!ma || (ma->kind != StatKind::Counter &&
                    ma->kind != StatKind::Gauge &&
                    ma->kind != StatKind::Derived)) {
            res.schema_ok = false;
            e.schema_note = strprintf(
                "no scalar metric '%s'", opt.metric.c_str());
            res.entries.push_back(std::move(e));
            continue;
        }
        e.before = a.value(opt.metric);
        e.after = b.value(opt.metric);
        e.delta = e.after - e.before;
        e.rel = e.before != 0.0 ? e.delta / e.before : 0.0;
        e.regressed = opt.lower_is_better
            ? e.after > e.before * (1.0 + opt.threshold)
            : e.after < e.before * (1.0 - opt.threshold);
        res.regressed = res.regressed || e.regressed;
        res.entries.push_back(std::move(e));
    }
    return res;
}

} // namespace cesp::core
