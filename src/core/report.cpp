/**
 * @file
 * Implementation of the Section 5.5 speedup study.
 */

#include "core/report.hpp"

#include "core/machine.hpp"
#include "core/presets.hpp"
#include "vlsi/clock.hpp"
#include "workloads/workloads.hpp"

namespace cesp::core {

StatGroup
SpeedupStudy::toGroup() const
{
    StatGroup g("cesp.speedup_study",
                vlsi::technology(tech).name +
                    " dep-based 2x4 vs window 8-way");
    g.addGauge("clock_ratio", "ratio",
               "dependence-based clock over window-based clock",
               clock_ratio);
    g.addGauge("mean_speedup", "ratio",
               "arithmetic mean of per-workload overall speedups",
               mean_speedup);
    g.addGauge("mean_ipc_ratio", "ratio",
               "arithmetic mean of per-workload IPC ratios",
               mean_ipc_ratio);
    for (const SpeedupEntry &e : entries) {
        g.addGauge(e.workload + ".ipc_window", "ipc",
                   "IPC on the 8-way 64-entry window machine",
                   e.ipc_window);
        g.addGauge(e.workload + ".ipc_dep", "ipc",
                   "IPC on the 2x4 clustered dependence machine",
                   e.ipc_dep);
        g.addGauge(e.workload + ".ipc_ratio", "ratio",
                   "dep-based IPC over window-based IPC",
                   e.ipcRatio());
        g.addGauge(e.workload + ".speedup", "ratio",
                   "IPC ratio times clock ratio", e.speedup);
    }
    return g;
}

SpeedupStudy
runSpeedupStudy(vlsi::Process tech)
{
    SpeedupStudy study;
    study.tech = tech;

    vlsi::ClockEstimator clock(tech);
    // Section 5.5: the dep-based machine clocks at least as fast as a
    // machine with half the width and half the window.
    study.clock_ratio = clock.dependenceClockRatio(8, 64);

    Machine window(baseline8Way());
    Machine dep(clusteredDependence2x4());

    double speedup_sum = 0.0;
    double ratio_sum = 0.0;
    for (const auto &w : workloads::allWorkloads()) {
        SpeedupEntry e;
        e.workload = w.name;
        e.ipc_window = window.runWorkload(w.name).ipc();
        e.ipc_dep = dep.runWorkload(w.name).ipc();
        e.clock_ratio = study.clock_ratio;
        e.speedup = e.ipcRatio() * e.clock_ratio;
        speedup_sum += e.speedup;
        ratio_sum += e.ipcRatio();
        study.entries.push_back(e);
    }
    size_t n = study.entries.size();
    study.mean_speedup = n ? speedup_sum / static_cast<double>(n) : 0.0;
    study.mean_ipc_ratio = n ? ratio_sum / static_cast<double>(n) : 0.0;
    return study;
}

} // namespace cesp::core
