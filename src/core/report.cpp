/**
 * @file
 * Implementation of the Section 5.5 speedup study.
 */

#include "core/report.hpp"

#include "core/machine.hpp"
#include "core/presets.hpp"
#include "vlsi/clock.hpp"
#include "workloads/workloads.hpp"

namespace cesp::core {

SpeedupStudy
runSpeedupStudy(vlsi::Process tech)
{
    SpeedupStudy study;
    study.tech = tech;

    vlsi::ClockEstimator clock(tech);
    // Section 5.5: the dep-based machine clocks at least as fast as a
    // machine with half the width and half the window.
    study.clock_ratio = clock.dependenceClockRatio(8, 64);

    Machine window(baseline8Way());
    Machine dep(clusteredDependence2x4());

    double speedup_sum = 0.0;
    double ratio_sum = 0.0;
    for (const auto &w : workloads::allWorkloads()) {
        SpeedupEntry e;
        e.workload = w.name;
        e.ipc_window = window.runWorkload(w.name).ipc();
        e.ipc_dep = dep.runWorkload(w.name).ipc();
        e.clock_ratio = study.clock_ratio;
        e.speedup = e.ipcRatio() * e.clock_ratio;
        speedup_sum += e.speedup;
        ratio_sum += e.ipcRatio();
        study.entries.push_back(e);
    }
    size_t n = study.entries.size();
    study.mean_speedup = n ? speedup_sum / static_cast<double>(n) : 0.0;
    study.mean_ipc_ratio = n ? ratio_sum / static_cast<double>(n) : 0.0;
    return study;
}

} // namespace cesp::core
