/**
 * @file
 * Work-stealing implementation of the sweep runner.
 */

#include "core/sweep.hpp"

#include <atomic>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/logging.hpp"

namespace cesp::core {

namespace {

/**
 * A worker's task deque. The owner pops from the front (its
 * round-robin share, in task order); thieves pop from the back, so
 * owner and thieves contend on opposite ends and the owner keeps the
 * cache-warm early tasks. A plain mutex per deque is enough here:
 * tasks are whole simulations (milliseconds to seconds), so queue
 * operations are nowhere near the critical path.
 */
struct WorkerQueue
{
    std::mutex mu;
    std::deque<size_t> tasks;

    bool
    popOwn(size_t &out)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (tasks.empty())
            return false;
        out = tasks.front();
        tasks.pop_front();
        return true;
    }

    bool
    steal(size_t &out)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (tasks.empty())
            return false;
        out = tasks.back();
        tasks.pop_back();
        return true;
    }
};

/** Internal observation hooks threaded through the worker pool. */
struct PoolHooks
{
    /** Called after a task's stats are final (inside the worker's
     *  try: a throwing hook aborts the run like a failing task). */
    std::function<void(size_t, const uarch::SimStats &)> on_done;
    uint64_t sample_every = 0;
    std::function<void(size_t, const uarch::StatSnapshot &)>
        on_snapshot;
};

void
runTask(const SweepTask &t, size_t index, uarch::SimStats &out,
        const PoolHooks &hooks)
{
    if (detail::sweep_task_hook)
        detail::sweep_task_hook(index);
    trace::TraceCursor cursor(t.trace);
    uarch::RunLimits limits;
    limits.warmup = t.warmup;
    if (hooks.sample_every && hooks.on_snapshot) {
        limits.sample_every = hooks.sample_every;
        limits.sampler = [&](const uarch::StatSnapshot &s) {
            hooks.on_snapshot(index, s);
        };
    }
    out = uarch::simulate(t.cfg, cursor, limits);
}

/**
 * The work-stealing pool all run modes share. Results land in
 * @p results by task index; a null @p results discards each task's
 * stats after on_done sees them (the streaming O(1)-memory mode).
 */
void
runPool(const std::vector<SweepTask> &tasks, unsigned jobs,
        std::vector<uarch::SimStats> *results, const PoolHooks &hooks)
{
    for (const SweepTask &t : tasks) {
        if (!t.trace.records && t.trace.count)
            panic("core::run: task with null trace");
        t.cfg.validate();
    }

    if (results)
        results->resize(tasks.size());
    if (jobs == 0)
        jobs = defaultJobs();
    if (jobs > tasks.size())
        jobs = static_cast<unsigned>(tasks.size());

    auto runOne = [&](size_t idx) {
        uarch::SimStats local;
        uarch::SimStats &slot = results ? (*results)[idx] : local;
        runTask(tasks[idx], idx, slot, hooks);
        if (hooks.on_done)
            hooks.on_done(idx, slot);
    };

    if (jobs <= 1) {
        for (size_t i = 0; i < tasks.size(); ++i)
            runOne(i);
        return;
    }

    // All work is known up front, so the deques are filled before any
    // worker starts and never refilled: a worker that finds every
    // deque empty is done. Round-robin seeding spreads neighboring
    // (similar-cost) tasks across workers.
    std::vector<std::unique_ptr<WorkerQueue>> queues;
    queues.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w)
        queues.push_back(std::make_unique<WorkerQueue>());
    for (size_t i = 0; i < tasks.size(); ++i)
        queues[i % jobs]->tasks.push_back(i);

    // A throw inside a worker must not unwind off the thread (that
    // is std::terminate): the first exception is captured, every
    // worker keeps draining its deques without simulating — so the
    // pool winds down promptly instead of finishing hours of doomed
    // work — and the caller rethrows after the join.
    std::atomic<bool> failed{false};
    std::mutex err_mu;
    std::exception_ptr first_error;

    auto worker = [&](unsigned self) {
        auto run = [&](size_t idx) {
            if (failed.load(std::memory_order_relaxed))
                return;
            try {
                runOne(idx);
            } catch (...) {
                std::lock_guard<std::mutex> lock(err_mu);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        };
        size_t idx;
        for (;;) {
            if (queues[self]->popOwn(idx)) {
                run(idx);
                continue;
            }
            bool stole = false;
            for (unsigned off = 1; off < jobs && !stole; ++off)
                stole = queues[(self + off) % jobs]->steal(idx);
            if (!stole)
                return;
            run(idx);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w)
        pool.emplace_back(worker, w);
    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace

namespace detail {

void (*sweep_task_hook)(size_t task_index) = nullptr;

} // namespace detail

unsigned
defaultJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

RunResult
run(const std::vector<SweepTask> &tasks, const RunOptions &opt)
{
    RunResult r;
    const bool sharded = opt.shards > 1 || opt.warmup > 0;
    PoolHooks hooks;
    hooks.sample_every = opt.sample_every;

    if (!sharded) {
        if (opt.on_snapshot)
            hooks.on_snapshot = [&](size_t task,
                                    const uarch::StatSnapshot &s) {
                opt.on_snapshot(task, 0, s);
            };
        if (opt.on_result || opt.on_shard)
            hooks.on_done = [&](size_t task,
                                const uarch::SimStats &s) {
                if (opt.on_shard)
                    opt.on_shard(task, 0, s);
                if (opt.on_result) {
                    StatGroup g = s.group();
                    g.label() = tasks[task].cfg.name;
                    opt.on_result(task, g);
                }
            };
        runPool(tasks, opt.jobs,
                opt.collect_results ? &r.stats : nullptr, hooks);
        if (opt.collect_results) {
            r.groups.reserve(tasks.size());
            for (size_t i = 0; i < tasks.size(); ++i) {
                r.groups.push_back(r.stats[i].group());
                r.groups.back().label() = tasks[i].cfg.name;
            }
        }
        return r;
    }

    // Sharded: expand every task via planShards into one flat list so
    // shards of different tasks load-balance against each other.
    struct FlatRef
    {
        size_t task;
        size_t shard;
    };
    std::vector<SweepTask> flat;
    std::vector<FlatRef> ref;
    std::vector<size_t> first(tasks.size() + 1, 0);
    for (size_t p = 0; p < tasks.size(); ++p) {
        std::vector<ShardSpec> plan =
            planShards(tasks[p].trace.count, opt.shards, opt.warmup);
        for (size_t s = 0; s < plan.size(); ++s) {
            flat.push_back({tasks[p].cfg,
                            tasks[p].trace.slice(
                                plan[s].begin,
                                plan[s].end - plan[s].begin),
                            plan[s].warmup});
            ref.push_back({p, s});
        }
        first[p + 1] = flat.size();
    }

    if (opt.collect_results)
        r.groups.assign(tasks.size(), StatGroup());
    // In streaming mode each task's in-flight shard stats live in a
    // per-task buffer released as soon as the task merges.
    std::vector<std::vector<uarch::SimStats>> shard_buf;
    if (!opt.collect_results) {
        shard_buf.resize(tasks.size());
        for (size_t p = 0; p < tasks.size(); ++p)
            shard_buf[p].resize(first[p + 1] - first[p]);
    }
    std::vector<std::atomic<size_t>> remaining(tasks.size());
    for (size_t p = 0; p < tasks.size(); ++p)
        remaining[p].store(first[p + 1] - first[p],
                           std::memory_order_relaxed);

    if (opt.on_snapshot)
        hooks.on_snapshot = [&](size_t flat_idx,
                                const uarch::StatSnapshot &s) {
            opt.on_snapshot(ref[flat_idx].task, ref[flat_idx].shard,
                            s);
        };
    hooks.on_done = [&](size_t flat_idx, const uarch::SimStats &s) {
        const FlatRef &fr = ref[flat_idx];
        if (opt.on_shard)
            opt.on_shard(fr.task, fr.shard, s);
        if (!opt.collect_results)
            shard_buf[fr.task][fr.shard] = s;
        // acq_rel: the worker that decrements to zero must observe
        // every other worker's writes to this task's shard slots.
        if (remaining[fr.task].fetch_sub(
                1, std::memory_order_acq_rel) != 1)
            return;
        StatGroup g;
        if (opt.collect_results) {
            std::vector<uarch::SimStats> slice(
                r.stats.begin() +
                    static_cast<ptrdiff_t>(first[fr.task]),
                r.stats.begin() +
                    static_cast<ptrdiff_t>(first[fr.task + 1]));
            g = mergedStats(slice);
        } else {
            g = mergedStats(shard_buf[fr.task]);
            std::vector<uarch::SimStats>().swap(shard_buf[fr.task]);
        }
        g.label() = tasks[fr.task].cfg.name;
        if (opt.on_result)
            opt.on_result(fr.task, g);
        if (opt.collect_results)
            r.groups[fr.task] = std::move(g);
    };

    runPool(flat, opt.jobs, opt.collect_results ? &r.stats : nullptr,
            hooks);
    return r;
}

std::vector<uarch::SimStats>
runSweep(const std::vector<SweepTask> &tasks, unsigned jobs)
{
    RunOptions opt;
    opt.jobs = jobs;
    return run(tasks, opt).stats;
}

StatGroup
mergedStats(const std::vector<uarch::SimStats> &results)
{
    if (results.empty())
        return uarch::SimStats().group();
    StatGroup merged = results.front().group();
    merged.label() = "merged over " +
                     std::to_string(results.size()) + " runs";
    for (size_t i = 1; i < results.size(); ++i)
        merged.merge(results[i].group());
    return merged;
}

std::vector<uarch::SimStats>
runSweep(const std::vector<uarch::SimConfig> &configs,
         trace::TraceView trace, unsigned jobs)
{
    std::vector<SweepTask> tasks;
    tasks.reserve(configs.size());
    for (const uarch::SimConfig &cfg : configs)
        tasks.push_back({cfg, trace});
    RunOptions opt;
    opt.jobs = jobs;
    return run(tasks, opt).stats;
}

std::vector<ShardSpec>
planShards(size_t record_count, unsigned shards, uint64_t warmup)
{
    size_t k = shards ? shards : 1;
    if (record_count && k > record_count)
        k = record_count;
    if (!record_count)
        k = 1;

    // Even contiguous split without multiplication overflow: the
    // first (count % k) windows get one extra record.
    size_t base = record_count / k;
    size_t extra = record_count % k;

    std::vector<ShardSpec> plan;
    plan.reserve(k);
    size_t begin = 0;
    for (size_t i = 0; i < k; ++i) {
        size_t len = base + (i < extra ? 1 : 0);
        size_t end = begin + len;
        size_t w = static_cast<size_t>(
            warmup < begin ? warmup : begin);
        plan.push_back({begin - w, end, w});
        begin = end;
    }
    return plan;
}

ShardedRun
runSharded(const uarch::SimConfig &cfg, trace::TraceView trace,
           unsigned shards, uint64_t warmup, unsigned jobs)
{
    RunOptions opt;
    opt.jobs = jobs;
    opt.shards = shards;
    opt.warmup = warmup;
    RunResult r = run({{cfg, trace}}, opt);
    ShardedRun sharded;
    sharded.shards = std::move(r.stats);
    // Keep the historical aggregate label ("merged over N runs")
    // rather than the task-labelled group core::run builds.
    sharded.merged = mergedStats(sharded.shards);
    return sharded;
}

std::vector<StatGroup>
runShardedBatch(const std::vector<SweepTask> &pairs, unsigned shards,
                uint64_t warmup, unsigned jobs)
{
    RunOptions opt;
    opt.jobs = jobs;
    opt.shards = shards;
    opt.warmup = warmup;
    return run(pairs, opt).groups;
}

} // namespace cesp::core
