/**
 * @file
 * Work-stealing implementation of the sweep runner.
 */

#include "core/sweep.hpp"

#include <atomic>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/logging.hpp"

namespace cesp::core {

namespace {

/**
 * A worker's task deque. The owner pops from the front (its
 * round-robin share, in task order); thieves pop from the back, so
 * owner and thieves contend on opposite ends and the owner keeps the
 * cache-warm early tasks. A plain mutex per deque is enough here:
 * tasks are whole simulations (milliseconds to seconds), so queue
 * operations are nowhere near the critical path.
 */
struct WorkerQueue
{
    std::mutex mu;
    std::deque<size_t> tasks;

    bool
    popOwn(size_t &out)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (tasks.empty())
            return false;
        out = tasks.front();
        tasks.pop_front();
        return true;
    }

    bool
    steal(size_t &out)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (tasks.empty())
            return false;
        out = tasks.back();
        tasks.pop_back();
        return true;
    }
};

void
runTask(const SweepTask &t, size_t index, uarch::SimStats &out)
{
    if (detail::sweep_task_hook)
        detail::sweep_task_hook(index);
    trace::TraceCursor cursor(t.trace);
    out = uarch::simulate(t.cfg, cursor, UINT64_MAX, t.warmup);
}

} // namespace

namespace detail {

void (*sweep_task_hook)(size_t task_index) = nullptr;

} // namespace detail

unsigned
defaultJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

std::vector<uarch::SimStats>
runSweep(const std::vector<SweepTask> &tasks, unsigned jobs)
{
    for (const SweepTask &t : tasks) {
        if (!t.trace.records && t.trace.count)
            panic("runSweep: task with null trace");
        t.cfg.validate();
    }

    std::vector<uarch::SimStats> results(tasks.size());
    if (jobs == 0)
        jobs = defaultJobs();
    if (jobs > tasks.size())
        jobs = static_cast<unsigned>(tasks.size());

    if (jobs <= 1) {
        for (size_t i = 0; i < tasks.size(); ++i)
            runTask(tasks[i], i, results[i]);
        return results;
    }

    // All work is known up front, so the deques are filled before any
    // worker starts and never refilled: a worker that finds every
    // deque empty is done. Round-robin seeding spreads neighboring
    // (similar-cost) tasks across workers.
    std::vector<std::unique_ptr<WorkerQueue>> queues;
    queues.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w)
        queues.push_back(std::make_unique<WorkerQueue>());
    for (size_t i = 0; i < tasks.size(); ++i)
        queues[i % jobs]->tasks.push_back(i);

    // A throw inside a worker must not unwind off the thread (that
    // is std::terminate): the first exception is captured, every
    // worker keeps draining its deques without simulating — so the
    // pool winds down promptly instead of finishing hours of doomed
    // work — and the caller rethrows after the join.
    std::atomic<bool> failed{false};
    std::mutex err_mu;
    std::exception_ptr first_error;

    auto worker = [&](unsigned self) {
        auto run = [&](size_t idx) {
            if (failed.load(std::memory_order_relaxed))
                return;
            try {
                runTask(tasks[idx], idx, results[idx]);
            } catch (...) {
                std::lock_guard<std::mutex> lock(err_mu);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        };
        size_t idx;
        for (;;) {
            if (queues[self]->popOwn(idx)) {
                run(idx);
                continue;
            }
            bool stole = false;
            for (unsigned off = 1; off < jobs && !stole; ++off)
                stole = queues[(self + off) % jobs]->steal(idx);
            if (!stole)
                return;
            run(idx);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w)
        pool.emplace_back(worker, w);
    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

StatGroup
mergedStats(const std::vector<uarch::SimStats> &results)
{
    if (results.empty())
        return uarch::SimStats().group();
    StatGroup merged = results.front().group();
    merged.label() = "merged over " +
                     std::to_string(results.size()) + " runs";
    for (size_t i = 1; i < results.size(); ++i)
        merged.merge(results[i].group());
    return merged;
}

std::vector<uarch::SimStats>
runSweep(const std::vector<uarch::SimConfig> &configs,
         trace::TraceView trace, unsigned jobs)
{
    std::vector<SweepTask> tasks;
    tasks.reserve(configs.size());
    for (const uarch::SimConfig &cfg : configs)
        tasks.push_back({cfg, trace});
    return runSweep(tasks, jobs);
}

std::vector<ShardSpec>
planShards(size_t record_count, unsigned shards, uint64_t warmup)
{
    size_t k = shards ? shards : 1;
    if (record_count && k > record_count)
        k = record_count;
    if (!record_count)
        k = 1;

    // Even contiguous split without multiplication overflow: the
    // first (count % k) windows get one extra record.
    size_t base = record_count / k;
    size_t extra = record_count % k;

    std::vector<ShardSpec> plan;
    plan.reserve(k);
    size_t begin = 0;
    for (size_t i = 0; i < k; ++i) {
        size_t len = base + (i < extra ? 1 : 0);
        size_t end = begin + len;
        size_t w = static_cast<size_t>(
            warmup < begin ? warmup : begin);
        plan.push_back({begin - w, end, w});
        begin = end;
    }
    return plan;
}

ShardedRun
runSharded(const uarch::SimConfig &cfg, trace::TraceView trace,
           unsigned shards, uint64_t warmup, unsigned jobs)
{
    std::vector<ShardSpec> plan =
        planShards(trace.count, shards, warmup);
    std::vector<SweepTask> tasks;
    tasks.reserve(plan.size());
    for (const ShardSpec &s : plan)
        tasks.push_back(
            {cfg, trace.slice(s.begin, s.end - s.begin), s.warmup});
    ShardedRun run;
    run.shards = runSweep(tasks, jobs);
    run.merged = mergedStats(run.shards);
    return run;
}

std::vector<StatGroup>
runShardedBatch(const std::vector<SweepTask> &pairs, unsigned shards,
                uint64_t warmup, unsigned jobs)
{
    std::vector<SweepTask> tasks;
    std::vector<size_t> first(pairs.size() + 1, 0);
    for (size_t p = 0; p < pairs.size(); ++p) {
        for (const ShardSpec &s :
             planShards(pairs[p].trace.count, shards, warmup))
            tasks.push_back({pairs[p].cfg,
                             pairs[p].trace.slice(s.begin,
                                                  s.end - s.begin),
                             s.warmup});
        first[p + 1] = tasks.size();
    }

    std::vector<uarch::SimStats> stats = runSweep(tasks, jobs);

    std::vector<StatGroup> merged;
    merged.reserve(pairs.size());
    for (size_t p = 0; p < pairs.size(); ++p) {
        std::vector<uarch::SimStats> slice(
            stats.begin() + static_cast<ptrdiff_t>(first[p]),
            stats.begin() + static_cast<ptrdiff_t>(first[p + 1]));
        StatGroup g = mergedStats(slice);
        g.label() = pairs[p].cfg.name;
        merged.push_back(std::move(g));
    }
    return merged;
}

} // namespace cesp::core
