/**
 * @file
 * Named machine configurations for every organization evaluated in
 * the paper (Figures 13, 15, 17), all sharing the Table 3 baseline
 * parameters.
 */

#ifndef CESP_CORE_PRESETS_HPP
#define CESP_CORE_PRESETS_HPP

#include <vector>

#include "uarch/config.hpp"

namespace cesp::core {

/**
 * Baseline 8-way superscalar: single cluster, 64-entry flexible
 * window, single-cycle bypass everywhere (Figure 13 baseline; the
 * "ideal" 1-cluster machine of Figure 17).
 */
uarch::SimConfig baseline8Way();

/**
 * Dependence-based 8-way, unclustered: eight 8-entry FIFOs with the
 * Section 5.1 steering heuristic (Figure 13).
 */
uarch::SimConfig dependence8x8();

/**
 * Clustered dependence-based 2x4-way: two clusters of four FIFOs and
 * four FUs each, 1-cycle local / 2-cycle inter-cluster bypass
 * (Figures 14, 15; Figure 17 "2-cluster FIFOs dispatch-steer").
 */
uarch::SimConfig clusteredDependence2x4();

/**
 * Two 32-entry flexible windows with dispatch-driven steering over
 * conceptual FIFOs (8 FIFOs of 4 slots per window; Section 5.6.2).
 */
uarch::SimConfig clusteredWindows2x4();

/**
 * Central 64-entry window with execution-driven steering between two
 * clusters (Section 5.6.1).
 */
uarch::SimConfig clusteredExecDriven2x4();

/**
 * Two 32-entry windows with random steering (Section 5.6.3).
 */
uarch::SimConfig clusteredRandom2x4();

/** The five Figure 17 organizations, in the figure's legend order. */
std::vector<uarch::SimConfig> figure17Configs();

/**
 * Scale a preset to a different total issue width (2/4/8/16) keeping
 * the paper's proportions (window = 8 * width, FIFO count = width).
 * Used by design-space sweeps.
 */
uarch::SimConfig scaledBaseline(int issue_width);
uarch::SimConfig scaledDependence(int issue_width);

/**
 * The paper's future-machine direction (Section 5.4: "the real
 * advantage ... is for building machines with issue widths greater
 * than four"): a 16-wide machine as one 128-entry window versus four
 * 4-way dependence-based clusters.
 */
uarch::SimConfig baseline16Way();
uarch::SimConfig clusteredDependence4x4();

} // namespace cesp::core

#endif // CESP_CORE_PRESETS_HPP
