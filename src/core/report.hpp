/**
 * @file
 * Combined complexity-effectiveness analysis (paper Section 5.5):
 * join the cycle-level IPC results from the timing simulator with the
 * clock estimate from the VLSI delay models to compute the overall
 * speedup of the clustered dependence-based machine over the
 * window-based machine.
 */

#ifndef CESP_CORE_REPORT_HPP
#define CESP_CORE_REPORT_HPP

#include <string>
#include <vector>

#include "uarch/pipeline.hpp"
#include "vlsi/technology.hpp"

namespace cesp::core {

/** Per-workload entry of the Section 5.5 study. */
struct SpeedupEntry
{
    std::string workload;
    double ipc_window;  //!< 8-way, 64-entry window machine
    double ipc_dep;     //!< 2x4-way clustered dependence-based
    double clock_ratio; //!< dep-based clock / window clock (>1)
    double speedup;     //!< (ipc_dep/ipc_window) * clock_ratio

    double
    ipcRatio() const
    {
        return ipc_window > 0.0 ? ipc_dep / ipc_window : 0.0;
    }
};

/** Full study result. */
struct SpeedupStudy
{
    vlsi::Process tech;
    double clock_ratio;
    std::vector<SpeedupEntry> entries;
    double mean_speedup;     //!< arithmetic mean over workloads
    double mean_ipc_ratio;

    /**
     * Export the study as a metrics group: the clock ratio and means
     * as gauges, then per-workload speedup/IPC-ratio gauges named
     * `<workload>.speedup` etc. Renders through statTable and
     * exports through StatGroup::toJson like any simulator group.
     */
    StatGroup toGroup() const;
};

/**
 * Run the Section 5.5 study: simulate every registered workload on
 * the window-based and clustered dependence-based machines, compute
 * the clock ratio for @p tech from the delay models, and combine.
 */
SpeedupStudy runSpeedupStudy(vlsi::Process tech);

// ---------------------------------------------------------------------
// Cross-run comparison (the cesp-sim --compare CI perf gate)

/** How compareGroups judges a regression. */
struct CompareOptions
{
    /** Scalar metric gating the comparison (counter, gauge, or
     *  derived name). */
    std::string metric = "ipc";
    /** Relative tolerance as a fraction (0.02 = 2%): |after| may
     *  fall below before * (1 - threshold) without flagging. */
    double threshold = 0.0;
    /** Direction of improvement for the metric (false: higher is
     *  better, the IPC default). */
    bool lower_is_better = false;
};

/** One before/after pair of the comparison. */
struct CompareEntry
{
    std::string label;     //!< after-group label (or before's)
    double before = 0.0;   //!< gating metric in the "a" group
    double after = 0.0;    //!< gating metric in the "b" group
    double delta = 0.0;    //!< after - before
    double rel = 0.0;      //!< delta / before (0 when before == 0)
    bool regressed = false;
    size_t differing = 0;  //!< entries flagged by StatGroup::diff
    std::string schema_note; //!< schemaDiff text; empty when schemas match
};

/** Verdict of compareGroups. */
struct CompareResult
{
    std::vector<CompareEntry> entries; //!< positional pairs
    bool regressed = false; //!< any entry regressed
    bool schema_ok = true;  //!< all pairs share a schema + metric
    std::string error;      //!< set when the inputs cannot be paired
};

/**
 * Compare two exported result sets pairwise by position (run i of
 * sweep A against run i of sweep B). Schemas are checked via
 * StatGroup::schemaDiff and value differences counted via diff();
 * the gating metric regresses when it worsens by more than the
 * threshold in the configured direction. A missing metric or schema
 * mismatch clears schema_ok but still reports the remaining pairs.
 */
CompareResult compareGroups(const std::vector<StatGroup> &before,
                            const std::vector<StatGroup> &after,
                            const CompareOptions &options = {});

} // namespace cesp::core

#endif // CESP_CORE_REPORT_HPP
