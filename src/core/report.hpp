/**
 * @file
 * Combined complexity-effectiveness analysis (paper Section 5.5):
 * join the cycle-level IPC results from the timing simulator with the
 * clock estimate from the VLSI delay models to compute the overall
 * speedup of the clustered dependence-based machine over the
 * window-based machine.
 */

#ifndef CESP_CORE_REPORT_HPP
#define CESP_CORE_REPORT_HPP

#include <string>
#include <vector>

#include "uarch/pipeline.hpp"
#include "vlsi/technology.hpp"

namespace cesp::core {

/** Per-workload entry of the Section 5.5 study. */
struct SpeedupEntry
{
    std::string workload;
    double ipc_window;  //!< 8-way, 64-entry window machine
    double ipc_dep;     //!< 2x4-way clustered dependence-based
    double clock_ratio; //!< dep-based clock / window clock (>1)
    double speedup;     //!< (ipc_dep/ipc_window) * clock_ratio

    double
    ipcRatio() const
    {
        return ipc_window > 0.0 ? ipc_dep / ipc_window : 0.0;
    }
};

/** Full study result. */
struct SpeedupStudy
{
    vlsi::Process tech;
    double clock_ratio;
    std::vector<SpeedupEntry> entries;
    double mean_speedup;     //!< arithmetic mean over workloads
    double mean_ipc_ratio;

    /**
     * Export the study as a metrics group: the clock ratio and means
     * as gauges, then per-workload speedup/IPC-ratio gauges named
     * `<workload>.speedup` etc. Renders through statTable and
     * exports through StatGroup::toJson like any simulator group.
     */
    StatGroup toGroup() const;
};

/**
 * Run the Section 5.5 study: simulate every registered workload on
 * the window-based and clustered dependence-based machines, compute
 * the clock ratio for @p tech from the delay models, and combine.
 */
SpeedupStudy runSpeedupStudy(vlsi::Process tech);

} // namespace cesp::core

#endif // CESP_CORE_REPORT_HPP
