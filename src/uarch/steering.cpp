/**
 * @file
 * Implementation of the steering policies.
 */

#include "uarch/steering.hpp"

#include "common/logging.hpp"

namespace cesp::uarch {

Steering::Steering(const SimConfig &cfg, FifoSet *fifos,
                   std::vector<IssueWindow> *windows)
    : cfg_(cfg), fifos_(fifos), windows_(windows),
      rng_(cfg.random_seed)
{
    switch (cfg.steering) {
      case SteeringPolicy::DependenceFifo:
      case SteeringPolicy::WindowFifo:
        if (!fifos_)
            panic("steering: policy needs a FIFO set");
        break;
      case SteeringPolicy::Random:
        if (!windows_)
            panic("steering: random policy needs windows");
        break;
      default:
        break;
    }
}

bool
Steering::clusterHasSpace(int cluster) const
{
    // Only window-backed organizations can run out of per-cluster
    // buffer space independently of the FIFO occupancy.
    if (cfg_.style != IssueBufferStyle::PerClusterWindow || !windows_)
        return true;
    return !(*windows_)[static_cast<size_t>(cluster)].full();
}

int
Steering::suitableFifo(int preg, const RenameState &rename,
                       uint64_t now, const RobLookup &rob) const
{
    if (preg < 0)
        return -1;
    const PhysReg &pr = rename.preg(preg);
    if (!pr.outstanding(now))
        return -1; // value computed: not an outstanding operand
    if (pr.producer_seq == kNoSeq)
        return -1;
    const DynInst &producer = rob(pr.producer_seq);
    int f = producer.fifo;
    if (f < 0)
        return -1;
    // "No instruction behind the source" = producer is the tail; an
    // already-issued producer is no longer in the FIFO and fails this
    // test, falling through to a new FIFO.
    if (!fifos_->isTail(f, pr.producer_seq))
        return -1;
    if (fifos_->full(f))
        return -1;
    if (!clusterHasSpace(fifos_->clusterOf(f)))
        return -1;
    return f;
}

SteerDecision
Steering::dependenceSteer(const DynInst &inst,
                          const RenameState &rename, uint64_t now,
                          const RobLookup &rob)
{
    auto outstanding = [&](int preg) {
        return preg >= 0 && rename.preg(preg).outstanding(now);
    };
    bool left_out = outstanding(inst.src1_preg);
    bool right_out = outstanding(inst.src2_preg);

    SteerKind kind = SteerKind::NewFifo;
    int f = -1;
    if (left_out) {
        f = suitableFifo(inst.src1_preg, rename, now, rob);
        if (f >= 0)
            kind = SteerKind::ChainLeft;
    }
    if (f < 0 && right_out) {
        f = suitableFifo(inst.src2_preg, rename, now, rob);
        if (f >= 0)
            kind = SteerKind::ChainRight;
    }
    if (f < 0) {
        kind = SteerKind::NewFifo;
        f = fifos_->allocate(
            [this](int c) { return clusterHasSpace(c); });
    }
    if (f < 0)
        return {}; // no free FIFO anywhere: stall dispatch

    SteerDecision d;
    d.ok = true;
    d.fifo = f;
    d.cluster = fifos_->clusterOf(f);
    d.kind = kind;
    return d;
}

SteerDecision
Steering::randomSteer()
{
    int n = cfg_.num_clusters;
    int c = static_cast<int>(rng_.below(static_cast<uint64_t>(n)));
    if (!clusterHasSpace(c)) {
        // Fall back to any cluster with room (Section 5.6.3: "if the
        // window for the selected cluster is full, the instruction is
        // inserted into the other cluster").
        int found = -1;
        for (int step = 1; step < n; ++step) {
            int alt = (c + step) % n;
            if (clusterHasSpace(alt)) {
                found = alt;
                break;
            }
        }
        if (found < 0)
            return {};
        c = found;
    }
    SteerDecision d;
    d.ok = true;
    d.cluster = c;
    d.kind = SteerKind::Window;
    return d;
}

SteerDecision
Steering::decide(const DynInst &inst, const RenameState &rename,
                 uint64_t now, const RobLookup &rob)
{
    switch (cfg_.steering) {
      case SteeringPolicy::DependenceFifo:
      case SteeringPolicy::WindowFifo:
        return dependenceSteer(inst, rename, now, rob);
      case SteeringPolicy::Random:
        return randomSteer();
      case SteeringPolicy::None:
      case SteeringPolicy::ExecutionDriven: {
        // Central window; cluster chosen at issue (or fixed at 0).
        SteerDecision d;
        d.ok = true;
        d.cluster =
            cfg_.steering == SteeringPolicy::None ? 0 : -1;
        d.kind = SteerKind::Window;
        return d;
      }
    }
    panic("steering: unknown policy");
}

} // namespace cesp::uarch
