/**
 * @file
 * Implementation of the timing pipeline.
 */

#include "uarch/pipeline.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace cesp::uarch {

SimStats::SimStats(int num_clusters)
    : num_clusters_(std::clamp(num_clusters, 1, kMaxClusters)),
      group_("sim")
{
    // Registration order is the enum order in pipeline.hpp AND the
    // export order: every metric below appears in reports, JSON, and
    // CSV exactly once, exactly here.
    group_.addCounter("cycles", "cycles", "Simulated clock cycles");
    group_.addCounter("fetched", "instructions",
                      "Instructions fetched (including wrong-path "
                      "stall shadows)");
    group_.addCounter("dispatched", "instructions",
                      "Instructions renamed, steered, and inserted "
                      "into the issue buffering");
    group_.addCounter("issued", "instructions",
                      "Instructions issued to functional units");
    group_.addCounter("committed", "instructions",
                      "Instructions retired in program order");
    group_.addCounter("cond_branches", "instructions",
                      "Conditional branches fetched");
    group_.addCounter("mispredicts", "instructions",
                      "Conditional branches mispredicted");
    group_.addCounter("loads", "instructions", "Loads committed");
    group_.addCounter("stores", "instructions", "Stores committed");
    group_.addCounter("store_forwards", "instructions",
                      "Loads satisfied by store-queue forwarding");
    group_.addCounter("dcache_accesses", "accesses",
                      "L1 data-cache accesses");
    group_.addCounter("dcache_misses", "accesses",
                      "L1 data-cache misses");
    group_.addCounter("l2_accesses", "accesses",
                      "L2 cache accesses (0 when no L2 configured)");
    group_.addCounter("l2_misses", "accesses", "L2 cache misses");
    group_.addCounter("intercluster_bypasses", "instructions",
                      "Committed instructions that used an "
                      "inter-cluster bypass (Sec. 5.6.4)");
    group_.addCounter("steer_new_fifo", "instructions",
                      "Steering: started a new FIFO (Sec. 5.1)");
    group_.addCounter("steer_chain_left", "instructions",
                      "Steering: chained behind the left source");
    group_.addCounter("steer_chain_right", "instructions",
                      "Steering: chained behind the right source");
    group_.addCounter("dispatch_stall_buffer", "cycles",
                      "Dispatch stalled: window/FIFO full");
    group_.addCounter("dispatch_stall_regs", "cycles",
                      "Dispatch stalled: no free physical register");
    group_.addCounter("dispatch_stall_rob", "cycles",
                      "Dispatch stalled: in-flight limit reached");
    for (int c = 0; c < num_clusters_; ++c)
        group_.addCounter(
            strprintf("issued_cluster%d", c), "instructions",
            strprintf("Instructions issued on cluster %d", c));
    // Growable: sized by the largest occupancy actually seen, so a
    // 2x4 FIFO machine exports ~9 buckets while a 128-entry window
    // machine grows to ~129 — no per-organization sizing constant.
    group_.addHistogram("buffer_occupancy", "entries",
                        "Per-cycle occupancy of the issue buffering "
                        "(window/FIFOs)", 32, 1.0,
                        /*growable=*/true);
    group_.addHistogram("issue_sizes", "instructions",
                        "Instructions issued per cycle", 17, 1.0);
    group_.addDerived("ipc", "inst/cycle",
                      "Committed instructions per cycle", "committed",
                      "cycles");
    group_.addDerived("mispredict_rate", "fraction",
                      "Mispredicted fraction of conditional branches",
                      "mispredicts", "cond_branches");
    group_.addDerived("intercluster_pct", "%",
                      "Committed instructions bypassing between "
                      "clusters (Sec. 5.6.4)", "intercluster_bypasses",
                      "committed", 100.0);
    group_.addDerived("dcache_miss_rate", "fraction",
                      "L1 data-cache miss rate", "dcache_misses",
                      "dcache_accesses");
    group_.addDerived("l2_miss_rate", "fraction",
                      "L2 cache miss rate", "l2_misses",
                      "l2_accesses");
}

Pipeline::Pipeline(const SimConfig &cfg, trace::TraceSource &src)
    : cfg_(cfg), src_(src), bpred_(bpred::makePredictor(cfg.bpred)),
      dcache_(cfg.dcache), rename_(cfg),
      select_rng_(cfg.random_seed ^ 0x5e1ec7ULL),
      stats_(cfg.num_clusters)
{
    cfg_.validate();
    stats_.config_name() = cfg_.name;

    // Random selection shuffles the entire buffer and in-order issue
    // stalls on unready instructions — both are defined over the full
    // candidate list, so they keep the reference scan.
    event_driven_ =
        cfg_.issue_model == IssueModel::EventDriven &&
        !cfg_.in_order_issue &&
        cfg_.select_policy != SelectPolicy::Random;
    slot_keyed_ = cfg_.style == IssueBufferStyle::CentralWindow &&
        !cfg_.window_compaction;
    calendars_.resize(static_cast<size_t>(cfg_.num_clusters));

    switch (cfg_.style) {
      case IssueBufferStyle::CentralWindow:
        windows_.emplace_back(cfg_.window_size,
                              cfg_.window_compaction
                                  ? WindowOrder::AgeCompacted
                                  : WindowOrder::SlotPriority);
        break;
      case IssueBufferStyle::PerClusterWindow:
        for (int c = 0; c < cfg_.num_clusters; ++c)
            windows_.emplace_back(cfg_.window_size);
        break;
      case IssueBufferStyle::Fifos:
        fifos_ = std::make_unique<FifoSet>(cfg_.num_clusters,
                                           cfg_.fifos_per_cluster,
                                           cfg_.fifo_depth);
        break;
    }
    if (cfg_.steering == SteeringPolicy::WindowFifo)
        fifos_ = std::make_unique<FifoSet>(
            cfg_.num_clusters, cfg_.concept_fifos_per_cluster,
            cfg_.concept_fifo_depth);

    steering_ = std::make_unique<Steering>(
        cfg_, fifos_.get(), windows_.empty() ? nullptr : &windows_);

    if (cfg_.l2.enabled) {
        CacheConfig l2c;
        l2c.size_bytes = cfg_.l2.size_bytes;
        l2c.associativity = cfg_.l2.associativity;
        l2c.line_bytes = cfg_.l2.line_bytes;
        l2c.hit_latency = cfg_.dcache.miss_latency;
        l2c.miss_latency = cfg_.l2.memory_latency;
        l2_ = std::make_unique<mem::Cache>(l2c);
    }

    rob_.assign(static_cast<size_t>(cfg_.max_inflight), DynInst{});
}

DynInst &
Pipeline::rob(uint64_t seq)
{
    if (seq < rob_head_ || seq >= rob_tail_)
        panic("rob: seq %llu outside [%llu, %llu)",
              (unsigned long long)seq, (unsigned long long)rob_head_,
              (unsigned long long)rob_tail_);
    return rob_[seq % rob_.size()];
}

const DynInst &
Pipeline::rob(uint64_t seq) const
{
    return const_cast<Pipeline *>(this)->rob(seq);
}

bool
Pipeline::robFull() const
{
    return robSize() >= rob_.size();
}

uint64_t
Pipeline::srcReadyCycle(const DynInst &inst, int cluster) const
{
    uint64_t r = 0;
    if (inst.src1_preg >= 0)
        r = std::max(r, rename_.preg(inst.src1_preg)
                            .ready_cycle[cluster]);
    if (inst.src2_preg >= 0)
        r = std::max(r, rename_.preg(inst.src2_preg)
                            .ready_cycle[cluster]);
    return r;
}

bool
Pipeline::srcsReady(const DynInst &inst, int cluster) const
{
    return srcReadyCycle(inst, cluster) <= now_;
}

int
Pipeline::fuClassOf(isa::OpClass cls)
{
    if (isa::isMem(cls))
        return 1;
    if (isa::isControl(cls))
        return 2;
    return 0;
}

bool
Pipeline::fuAvailable(int cluster, isa::OpClass cls,
                      const FuUsage &usage) const
{
    if (cfg_.fu_mix.symmetric())
        return usage.total[cluster] < cfg_.fus_per_cluster;
    int t = fuClassOf(cls);
    int limit = t == 0 ? cfg_.fu_mix.alu
        : t == 1      ? cfg_.fu_mix.mem
                      : cfg_.fu_mix.branch;
    return usage.typed[cluster][t] < limit;
}

void
Pipeline::consumeFu(int cluster, isa::OpClass cls, FuUsage &usage)
{
    ++usage.total[cluster];
    ++usage.typed[cluster][fuClassOf(cls)];
}

int
Pipeline::bypassHops(int from, int to) const
{
    if (from == to)
        return 0;
    if (cfg_.interconnect == ClusterInterconnect::Broadcast)
        return 1;
    // Ring: values forwarded hop by hop (PEWs-style, Section 5.6.2).
    int n = cfg_.num_clusters;
    int d = from > to ? from - to : to - from;
    return std::min(d, n - d);
}

int
Pipeline::chooseExecCluster(const DynInst &inst, isa::OpClass cls,
                            const FuUsage &usage) const
{
    // Section 5.6.1: assign to the cluster that provides the source
    // values first (given a free functional unit); both-ready ties go
    // to cluster 0.
    int best = -1;
    uint64_t best_ready = kNeverCycle;
    for (int c = 0; c < cfg_.num_clusters; ++c) {
        if (!fuAvailable(c, cls, usage))
            continue;
        uint64_t r = srcReadyCycle(inst, c);
        if (r > now_)
            continue;
        if (r < best_ready) {
            best_ready = r;
            best = c;
        }
    }
    return best;
}

int
Pipeline::loadLatency(DynInst &inst)
{
    if (stq_.forwardFrom(inst.seq, inst.op.mem_addr,
                         inst.op.mem_size)) {
        ++stats_.store_forwards();
        return cfg_.dcache.hit_latency;
    }
    mem::Cache::Access l1 = dcache_.access(inst.op.mem_addr, false);
    if (l1.hit || !l2_)
        return l1.latency;
    // L1 miss with an L2 behind it: the L2 hit costs the Table 3
    // miss latency; an L2 miss goes all the way to memory.
    return l2_->access(inst.op.mem_addr, false).latency;
}

void
Pipeline::removeFromBuffer(DynInst &inst)
{
    switch (cfg_.style) {
      case IssueBufferStyle::CentralWindow:
        windows_[0].remove(inst.seq);
        break;
      case IssueBufferStyle::PerClusterWindow:
        windows_[static_cast<size_t>(inst.cluster)].remove(inst.seq);
        if (cfg_.steering == SteeringPolicy::WindowFifo)
            fifos_->remove(inst.fifo, inst.seq);
        break;
      case IssueBufferStyle::Fifos:
        if (fifos_->head(inst.fifo) != inst.seq)
            panic("issue from non-head of fifo %d", inst.fifo);
        fifos_->popHead(inst.fifo);
        break;
    }
    inst.in_buffer = false;
}

void
Pipeline::completeIssue(DynInst &inst, int cluster, int latency)
{
    inst.cluster = cluster;
    inst.issued = true;
    inst.issue_cycle = now_;
    inst.complete_cycle = now_ + static_cast<uint64_t>(latency);

    // Inter-cluster bypass accounting (Section 5.6.4): an operand
    // that was produced in the other cluster and is not yet readable
    // from this cluster's register file arrived over the slow bypass.
    if (cfg_.num_clusters > 1) {
        for (int p : {inst.src1_preg, inst.src2_preg}) {
            if (p < 0)
                continue;
            const PhysReg &pr = rename_.preg(p);
            if (pr.producing_cluster != cluster &&
                now_ < pr.rf_visible[cluster]) {
                ++stats_.intercluster_bypasses();
                break;
            }
        }
    }

    if (event_driven_)
        readyErase(readyKey(inst), inst.seq);

    if (inst.dst_preg >= 0) {
        PhysReg &pr = rename_.preg(inst.dst_preg);
        pr.computed_cycle = inst.complete_cycle;
        pr.producing_cluster = cluster;
        // A pipelined wakeup+select loop (Figure 10) delays every
        // dependent issue by its extra stages; incomplete local
        // bypassing delays even same-cluster consumers.
        uint64_t select_extra =
            static_cast<uint64_t>(cfg_.wakeup_select_stages - 1);
        for (int c = 0; c < cfg_.num_clusters; ++c) {
            int hops = bypassHops(cluster, c);
            uint64_t rc = inst.complete_cycle + select_extra +
                (hops == 0
                     ? static_cast<uint64_t>(cfg_.local_bypass_extra)
                     : static_cast<uint64_t>(hops) *
                           static_cast<uint64_t>(
                               cfg_.inter_cluster_extra));
            pr.ready_cycle[c] = rc;
            pr.rf_visible[c] =
                rc + static_cast<uint64_t>(cfg_.regfile_extra);
        }
        pr.scheduled = true;
        if (event_driven_) {
            for (uint64_t w : pr.waiters) {
                DynInst &d = rob(w);
                if (--d.pending_srcs == 0)
                    scheduleReady(d, now_ + 1);
            }
            pr.waiters.clear();
        }
    }

    if (inst.op.isStore())
        stq_.markIssued(inst.seq);

    if (inst.mispredicted && inst.seq == blocking_branch_) {
        blocking_branch_ = kNoSeq;
        fetch_resume_ = inst.complete_cycle;
    }

    removeFromBuffer(inst);
    // An issued FIFO head exposes its successor to selection; if the
    // successor's sources are already scheduled, its earlier wakeup
    // event fired while it was buried and was dropped, so re-arm it.
    if (event_driven_ && cfg_.style == IssueBufferStyle::Fifos &&
        !fifos_->empty(inst.fifo)) {
        DynInst &h = rob(fifos_->head(inst.fifo));
        if (h.pending_srcs == 0)
            scheduleReady(h, now_ + 1);
    }
    ++stats_.issued();
    ++stats_.issued_per_cluster(cluster);
    if (on_issue_)
        on_issue_(inst);
}

bool
Pipeline::tryIssueOne(DynInst &inst, int &global_issued,
                      FuUsage &usage)
{
    if (inst.issued || inst.dispatch_cycle >= now_)
        return false;

    int cluster = inst.cluster;
    if (cluster < 0) {
        cluster = chooseExecCluster(inst, inst.op.cls, usage);
        if (cluster < 0)
            return false;
    } else {
        if (!fuAvailable(cluster, inst.op.cls, usage))
            return false;
        if (!srcsReady(inst, cluster))
            return false;
    }

    int latency = cfg_.fu_latency;
    if (inst.op.isLoad()) {
        if (ls_ports_used_ >= cfg_.ls_ports)
            return false;
        if (stq_.olderStoreUnissued(inst.seq))
            return false;
        ++ls_ports_used_;
        latency = loadLatency(inst);
    }

    completeIssue(inst, cluster, latency);
    consumeFu(cluster, inst.op.cls, usage);
    ++global_issued;
    return true;
}

void
Pipeline::doIssue()
{
    if (event_driven_)
        doIssueEvent();
    else
        doIssueScan();
}

void
Pipeline::readyInsert(uint64_t key, uint64_t seq)
{
    std::pair<uint64_t, uint64_t> v{key, seq};
    auto it = std::lower_bound(ready_.begin(), ready_.end(), v);
    if (it == ready_.end() || *it != v)
        ready_.insert(it, v); // duplicate events fire once
}

void
Pipeline::readyErase(uint64_t key, uint64_t seq)
{
    std::pair<uint64_t, uint64_t> v{key, seq};
    auto it = std::lower_bound(ready_.begin(), ready_.end(), v);
    if (it != ready_.end() && *it == v)
        ready_.erase(it);
}

uint64_t
Pipeline::readyKey(const DynInst &inst) const
{
    // Slot-priority central windows select by slot position, not age.
    return slot_keyed_ ? static_cast<uint64_t>(inst.wslot) : inst.seq;
}

uint64_t
Pipeline::instReadyCycle(const DynInst &inst) const
{
    if (inst.cluster >= 0)
        return srcReadyCycle(inst, inst.cluster);
    // Unassigned cluster (execution-driven steering): the instruction
    // becomes selectable when any cluster can provide its sources.
    uint64_t best = kNeverCycle;
    for (int c = 0; c < cfg_.num_clusters; ++c)
        best = std::min(best, srcReadyCycle(inst, c));
    return best;
}

void
Pipeline::scheduleReady(DynInst &inst, uint64_t earliest)
{
    uint64_t wake = std::max(instReadyCycle(inst), earliest);
    inst.wake_cycle = wake;
    size_t c = inst.cluster >= 0 ? static_cast<size_t>(inst.cluster)
                                 : 0;
    calendars_[c].schedule(wake, inst.seq);
}

void
Pipeline::wireDispatchEvents(DynInst &inst)
{
    int pending = 0;
    for (int p : {inst.src1_preg, inst.src2_preg}) {
        if (p < 0)
            continue;
        PhysReg &pr = rename_.preg(p);
        if (pr.scheduled)
            continue;
        pr.waiters.push_back(inst.seq);
        ++pending;
    }
    inst.pending_srcs = static_cast<int8_t>(pending);
    // All sources scheduled: the wakeup cycle is already final. (For
    // the FIFO style this instruction necessarily opened a new FIFO —
    // chaining requires an unissued producer — so it is a head.)
    if (pending == 0)
        scheduleReady(inst, now_ + 1);
}

void
Pipeline::drainWakeups()
{
    event_scratch_.clear();
    for (auto &cal : calendars_)
        cal.popDue(now_, event_scratch_);
    for (uint64_t s : event_scratch_) {
        if (s < rob_head_ || s >= rob_tail_)
            continue; // committed; stale duplicate event
        DynInst &d = rob_[s % rob_.size()];
        if (d.seq != s || !d.in_buffer || d.issued)
            continue; // slot reused or already issued
        if (cfg_.style == IssueBufferStyle::Fifos &&
            fifos_->head(d.fifo) != s)
            continue; // buried in a FIFO; re-armed on head change
        readyInsert(readyKey(d), s);
    }
}

void
Pipeline::doIssueEvent()
{
    drainWakeups();

    stats_.buffer_occupancy().add(static_cast<double>(bufferedCount()));

    // Iterate the ready set in place: the only mutation issuing can
    // make is erasing the entry just issued, and wakeups it schedules
    // land at now_ + 1, so the candidates seen are exactly the
    // cycle-start snapshot (matching the scan path's fixed list).
    int global_issued = 0;
    FuUsage usage;
    if (cfg_.select_policy == SelectPolicy::YoungestFirst) {
        size_t i = ready_.size();
        while (i > 0 && global_issued < cfg_.issue_width) {
            --i;
            // an issue erases ready_[i]; indices below are unmoved
            tryIssueOne(rob(ready_[i].second), global_issued, usage);
        }
    } else {
        size_t i = 0;
        while (i < ready_.size() &&
               global_issued < cfg_.issue_width) {
            size_t before = ready_.size();
            tryIssueOne(rob(ready_[i].second), global_issued, usage);
            if (ready_.size() == before)
                ++i; // kept; an issue shifts the next entry into i
        }
    }
    stats_.issue_sizes().add(static_cast<double>(global_issued));
}

void
Pipeline::maybeSkipIdle()
{
    if (!event_driven_ || !ready_.empty())
        return;
    if (trace_done_ && fetch_q_.empty() && robSize() == 0)
        return; // fully drained; the run loop is about to exit

    // Fetch must be unable to deliver this cycle.
    bool fetch_blocked = trace_done_ ||
        blocking_branch_ != kNoSeq || now_ < fetch_resume_ ||
        static_cast<int>(fetch_q_.size()) >= cfg_.fetch_queue;
    if (!fetch_blocked)
        return;
    // Dispatch must be a no-op without touching stall counters.
    if (!fetch_q_.empty() && fetch_q_.front().frontend_exit <= now_)
        return;
    // Commit must not be due (an issued ROB head bounds the jump
    // below; an unissued head is woken by a calendar event).
    uint64_t target = kNeverCycle;
    for (const auto &cal : calendars_)
        target = std::min(target, cal.nextEventCycle());
    if (robSize() > 0) {
        const DynInst &head = rob(rob_head_);
        if (head.issued)
            target = std::min(target, head.complete_cycle);
    }
    if (!fetch_q_.empty())
        target = std::min(target, fetch_q_.front().frontend_exit);
    if (!trace_done_ && blocking_branch_ == kNoSeq &&
        now_ < fetch_resume_)
        target = std::min(target, fetch_resume_);
    if (target == kNeverCycle || target <= now_)
        return;

    // Cycles [now_, target) do nothing but sample per-cycle stats.
    uint64_t skipped = target - now_;
    stats_.buffer_occupancy().add(static_cast<double>(bufferedCount()),
                                skipped);
    stats_.issue_sizes().add(0.0, skipped);
    now_ = target;
}

void
Pipeline::doIssueScan()
{
    // Gather this cycle's selection candidates, oldest first.
    std::vector<uint64_t> candidates;
    switch (cfg_.style) {
      case IssueBufferStyle::CentralWindow:
        candidates = windows_[0].entries();
        break;
      case IssueBufferStyle::PerClusterWindow: {
        for (const auto &w : windows_)
            candidates.insert(candidates.end(), w.entries().begin(),
                              w.entries().end());
        std::sort(candidates.begin(), candidates.end());
        break;
      }
      case IssueBufferStyle::Fifos:
        candidates = fifos_->headSeqs();
        std::sort(candidates.begin(), candidates.end());
        break;
    }

    // Selection-policy ordering (Section 4.3; default oldest-first).
    switch (cfg_.select_policy) {
      case SelectPolicy::OldestFirst:
        break; // already ascending
      case SelectPolicy::YoungestFirst:
        std::reverse(candidates.begin(), candidates.end());
        break;
      case SelectPolicy::Random:
        for (size_t i = candidates.size(); i > 1; --i)
            std::swap(candidates[i - 1],
                      candidates[select_rng_.below(i)]);
        break;
    }

    stats_.buffer_occupancy().add(static_cast<double>(bufferedCount()));

    int global_issued = 0;
    FuUsage usage;
    for (uint64_t seq : candidates) {
        if (global_issued >= cfg_.issue_width)
            break;
        bool issued_this = tryIssueOne(rob(seq), global_issued, usage);
        // A strictly in-order pipeline stops at the first stalled
        // instruction (no selection among younger ready ones).
        if (!issued_this && cfg_.in_order_issue)
            break;
    }
    stats_.issue_sizes().add(static_cast<double>(global_issued));
}

size_t
Pipeline::bufferedCount() const
{
    size_t n = 0;
    for (const auto &w : windows_)
        n += static_cast<size_t>(w.size());
    if (cfg_.style == IssueBufferStyle::Fifos && fifos_)
        n += fifos_->totalEntries();
    return n;
}

void
Pipeline::doCommit()
{
    for (int n = 0; n < cfg_.retire_width && robSize() > 0; ++n) {
        DynInst &head = rob(rob_head_);
        if (!head.readyToCommit(now_))
            break;
        if (head.op.isStore()) {
            if (ls_ports_used_ >= cfg_.ls_ports)
                break; // no cache port this cycle; retry next cycle
            ++ls_ports_used_;
            mem::Cache::Access l1 =
                dcache_.access(head.op.mem_addr, true);
            if (!l1.hit && l2_)
                l2_->access(head.op.mem_addr, true);
            stq_.commit(head.seq);
            ++stats_.stores();
        } else if (head.op.isLoad()) {
            ++stats_.loads();
        }
        if (head.old_preg >= 0)
            rename_.release(head.old_preg);
        ++stats_.committed();
        ++rob_head_;
        // The warmup boundary is commit-precise: the moment the
        // warmup-th instruction retires, measurement begins —
        // younger instructions committing in this same cycle are
        // measured.
        if (warmup_pending_ &&
            stats_.committed() == warmup_target_)
            beginMeasurement();
        // Sampling covers the measured region only; warmup-phase
        // commits tick toward the boundary, not toward a snapshot.
        if (sample_every_ && !warmup_pending_ &&
            stats_.committed() == next_sample_)
            emitSnapshot();
    }
}

void
Pipeline::beginMeasurement()
{
    warmup_pending_ = false;
    measure_start_cycle_ = now_;
    dcache_acc_base_ = dcache_.accesses();
    dcache_miss_base_ = dcache_.misses();
    if (l2_) {
        l2_acc_base_ = l2_->accesses();
        l2_miss_base_ = l2_->misses();
    }
    stats_.group().reset();
    next_sample_ = sample_every_;
    sample_index_ = 0;
    have_sample_prev_ = false;
}

void
Pipeline::emitSnapshot()
{
    // Copy the stats and apply the same cycle/cache rebasing the end
    // of run() performs, so each snapshot is a self-consistent
    // mid-run view of the measured region. The live registry is
    // never written: final stats are bit-identical with sampling on
    // or off.
    SimStats s = stats_;
    s.cycles() = now_ - measure_start_cycle_;
    s.dcache_accesses() = dcache_.accesses() - dcache_acc_base_;
    s.dcache_misses() = dcache_.misses() - dcache_miss_base_;
    if (l2_) {
        s.l2_accesses() = l2_->accesses() - l2_acc_base_;
        s.l2_misses() = l2_->misses() - l2_miss_base_;
    }
    StatSnapshot snap;
    snap.index = sample_index_++;
    snap.committed = s.committed();
    snap.cycles = s.cycles();
    snap.cumulative = s.group();
    snap.delta = have_sample_prev_
        ? snap.cumulative.deltaSince(sample_prev_)
        : snap.cumulative;
    sample_prev_ = snap.cumulative;
    have_sample_prev_ = true;
    next_sample_ += sample_every_;
    sampler_(snap);
}

void
Pipeline::doDispatch()
{
    for (int n = 0; n < cfg_.rename_width; ++n) {
        if (fetch_q_.empty())
            return;
        DynInst &front = fetch_q_.front();
        if (front.frontend_exit > now_)
            return;
        if (robFull()) {
            ++stats_.dispatch_stall_rob();
            return;
        }

        DynInst inst = front;
        const trace::TraceOp &op = inst.op;

        // Resolve sources against the current map (before the
        // destination is renamed: src may equal dst).
        inst.src1_preg =
            op.src1 > 0 ? rename_.mapOf(op.src1) : -1;
        inst.src2_preg =
            op.src2 > 0 ? rename_.mapOf(op.src2) : -1;

        if (op.hasDst() && !rename_.hasFreeFor(op.dst)) {
            ++stats_.dispatch_stall_regs();
            return;
        }

        // Central-window capacity check (steering handles the rest).
        if (cfg_.style == IssueBufferStyle::CentralWindow &&
            windows_[0].full()) {
            ++stats_.dispatch_stall_buffer();
            return;
        }

        SteerDecision d = steering_->decide(
            inst, rename_, now_,
            [this](uint64_t s) -> const DynInst & { return rob(s); });
        if (!d.ok) {
            ++stats_.dispatch_stall_buffer();
            return;
        }
        inst.cluster = d.cluster;
        inst.fifo = d.fifo;
        switch (d.kind) {
          case SteerKind::NewFifo:
            ++stats_.steer_new_fifo();
            break;
          case SteerKind::ChainLeft:
            ++stats_.steer_chain_left();
            break;
          case SteerKind::ChainRight:
            ++stats_.steer_chain_right();
            break;
          default:
            break;
        }

        if (op.hasDst()) {
            auto r = rename_.rename(op.dst, inst.seq);
            inst.dst_preg = r.preg;
            inst.old_preg = r.old_preg;
        }

        // Insert into the issue buffering.
        switch (cfg_.style) {
          case IssueBufferStyle::CentralWindow:
            inst.wslot =
                static_cast<int16_t>(windows_[0].insert(inst.seq));
            break;
          case IssueBufferStyle::PerClusterWindow:
            windows_[static_cast<size_t>(inst.cluster)].insert(
                inst.seq);
            if (cfg_.steering == SteeringPolicy::WindowFifo)
                fifos_->push(inst.fifo, inst.seq);
            break;
          case IssueBufferStyle::Fifos:
            fifos_->push(inst.fifo, inst.seq);
            break;
        }

        if (op.isStore())
            stq_.dispatch(inst.seq, op.mem_addr, op.mem_size);

        inst.dispatch_cycle = now_;
        inst.in_buffer = true;
        rob_[inst.seq % rob_.size()] = inst;
        rob_tail_ = inst.seq + 1;
        if (event_driven_)
            wireDispatchEvents(rob_[inst.seq % rob_.size()]);
        fetch_q_.pop_front();
        ++stats_.dispatched();
        if (on_dispatch_)
            on_dispatch_(rob_[inst.seq % rob_.size()]);
    }
}

void
Pipeline::doFetch()
{
    if (trace_done_)
        return;
    if (blocking_branch_ != kNoSeq || now_ < fetch_resume_)
        return;

    for (int n = 0; n < cfg_.fetch_width; ++n) {
        if (static_cast<int>(fetch_q_.size()) >= cfg_.fetch_queue)
            return;

        trace::TraceOp op;
        if (!src_.next(op)) {
            trace_done_ = true;
            return;
        }

        DynInst di;
        di.op = op;
        di.seq = next_seq_++;
        di.frontend_exit =
            now_ + static_cast<uint64_t>(cfg_.frontend_latency);
        ++stats_.fetched();
        ++fetched_total_;

        if (op.isCondBranch()) {
            ++stats_.cond_branches();
            bool pred = cfg_.bpred.perfect ? op.taken
                                           : bpred_->predict(op.pc);
            bpred_->record(pred, op.taken);
            bpred_->update(op.pc, op.taken);
            if (pred != op.taken) {
                ++stats_.mispredicts();
                di.mispredicted = true;
                blocking_branch_ = di.seq;
                fetch_q_.push_back(di);
                return; // delivery stalls until the branch executes
            }
        }

        fetch_q_.push_back(di);

        if (op.cls == isa::OpClass::Halt) {
            trace_done_ = true;
            return;
        }
    }
}

SimStats
Pipeline::run(const RunLimits &limits)
{
    if (now_ != 0)
        panic("Pipeline::run is single-use; construct a new Pipeline");
    src_.rewind();
    warmup_target_ = limits.warmup;
    warmup_pending_ = limits.warmup > 0;
    sampler_ = limits.sampler;
    sample_every_ = sampler_ ? limits.sample_every : 0;
    next_sample_ = sample_every_;

    uint64_t last_progress_cycle = 0;
    uint64_t last_committed = 0;

    while (!(trace_done_ && fetch_q_.empty() && robSize() == 0)) {
        ls_ports_used_ = 0;
        doCommit();
        doIssue();
        doDispatch();
        if (fetched_total_ >= limits.max_instructions)
            trace_done_ = true;
        doFetch();
        ++now_;

        if (stats_.committed() != last_committed) {
            last_committed = stats_.committed();
            last_progress_cycle = now_;
        } else if (now_ - last_progress_cycle > 100000) {
            panic("pipeline deadlock: no commit in 100000 cycles "
                  "(config %s, cycle %llu, rob %zu)",
                  cfg_.name.c_str(), (unsigned long long)now_,
                  robSize());
        }
        maybeSkipIdle();
    }

    // A run shorter than its warmup has an empty measured region:
    // reset at drain so the caller sees zeros, not warmup noise.
    if (warmup_pending_)
        beginMeasurement();

    stats_.cycles() = now_ - measure_start_cycle_;
    stats_.dcache_accesses() = dcache_.accesses() - dcache_acc_base_;
    stats_.dcache_misses() = dcache_.misses() - dcache_miss_base_;
    if (l2_) {
        stats_.l2_accesses() = l2_->accesses() - l2_acc_base_;
        stats_.l2_misses() = l2_->misses() - l2_miss_base_;
    }
    return stats_;
}

SimStats
Pipeline::run(uint64_t max_instructions, uint64_t warmup_instructions)
{
    RunLimits limits;
    limits.max_instructions = max_instructions;
    limits.warmup = warmup_instructions;
    return run(limits);
}

SimStats
simulate(const SimConfig &cfg, trace::TraceSource &src,
         uint64_t max_instructions, uint64_t warmup_instructions)
{
    RunLimits limits;
    limits.max_instructions = max_instructions;
    limits.warmup = warmup_instructions;
    return simulate(cfg, src, limits);
}

SimStats
simulate(const SimConfig &cfg, trace::TraceSource &src,
         const RunLimits &limits)
{
    Pipeline p(cfg, src);
    return p.run(limits);
}

} // namespace cesp::uarch
