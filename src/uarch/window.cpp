/**
 * @file
 * Implementation of the issue window.
 */

#include "uarch/window.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace cesp::uarch {

IssueWindow::IssueWindow(int capacity, WindowOrder order)
    : capacity_(capacity), order_(order)
{
    if (capacity < 1)
        panic("IssueWindow: capacity %d < 1", capacity);
    if (order_ == WindowOrder::SlotPriority)
        slots_.assign(static_cast<size_t>(capacity), kEmptySlot);
    else
        compacted_.reserve(static_cast<size_t>(capacity));
}

int
IssueWindow::insert(uint64_t seq)
{
    if (full())
        panic("IssueWindow: insert into full window");
    int slot = -1;
    if (order_ == WindowOrder::AgeCompacted) {
        if (!compacted_.empty() && compacted_.back() >= seq)
            panic("IssueWindow: out-of-order insert");
        compacted_.push_back(seq);
    } else {
        // Lowest free slot: freed slots are reused out of age order.
        auto it = std::find(slots_.begin(), slots_.end(), kEmptySlot);
        if (it == slots_.end())
            panic("IssueWindow: no free slot despite size check");
        *it = seq;
        slot = static_cast<int>(it - slots_.begin());
    }
    ++size_;
    return slot;
}

void
IssueWindow::remove(uint64_t seq)
{
    if (order_ == WindowOrder::AgeCompacted) {
        auto it = std::lower_bound(compacted_.begin(),
                                   compacted_.end(), seq);
        if (it == compacted_.end() || *it != seq)
            panic("IssueWindow: remove of absent instruction");
        compacted_.erase(it);
    } else {
        auto it = std::find(slots_.begin(), slots_.end(), seq);
        if (it == slots_.end())
            panic("IssueWindow: remove of absent instruction");
        *it = kEmptySlot;
    }
    --size_;
}

const std::vector<uint64_t> &
IssueWindow::entries() const
{
    if (order_ == WindowOrder::AgeCompacted)
        return compacted_;
    scratch_.clear();
    for (uint64_t s : slots_)
        if (s != kEmptySlot)
            scratch_.push_back(s);
    return scratch_;
}

void
IssueWindow::clear()
{
    compacted_.clear();
    if (order_ == WindowOrder::SlotPriority)
        slots_.assign(static_cast<size_t>(capacity_), kEmptySlot);
    size_ = 0;
}

} // namespace cesp::uarch
