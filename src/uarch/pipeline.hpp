/**
 * @file
 * The trace-driven out-of-order timing simulator: the Figure 1 / 11
 * pipeline (fetch, decode, rename/steer, wakeup/select, execute,
 * d-cache access, writeback/bypass, commit) with all the Table 3
 * machine parameters, the dependence-based FIFO organization of
 * Section 5, and the clustered variants of Section 5.6.
 *
 * Simulation is cycle-driven. Each cycle processes commit, issue
 * (wakeup/select), dispatch (rename + steer + buffer insert), and
 * fetch, in that order, using per-physical-register ready timestamps
 * so dependent single-cycle operations issue in back-to-back cycles.
 * Recovery is the standard trace-driven model: a mispredicted
 * conditional branch stalls instruction delivery until it executes.
 *
 * Ready instructions are discovered with an event calendar rather
 * than a per-cycle scan of the whole buffer (IssueModel::EventDriven,
 * the default): issuing an instruction schedules wakeup events for
 * its dependents at the exact cycle their operands become usable, the
 * select stage draws from a maintained ready set ordered by selection
 * priority, and provably idle cycle stretches are skipped in one
 * jump. The per-cycle scan survives as IssueModel::LegacyScan; the
 * two are cycle- and statistic-exact against each other (enforced by
 * tests/test_event_sched.cpp).
 */

#ifndef CESP_UARCH_PIPELINE_HPP
#define CESP_UARCH_PIPELINE_HPP

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "bpred/bpred.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "common/rng.hpp"
#include "mem/cache.hpp"
#include "trace/trace.hpp"
#include "uarch/config.hpp"
#include "uarch/dyninst.hpp"
#include "uarch/fifos.hpp"
#include "uarch/lsq.hpp"
#include "uarch/rename.hpp"
#include "uarch/steering.hpp"
#include "uarch/wakeup.hpp"
#include "uarch/window.hpp"

namespace cesp::uarch {

/**
 * End-of-run statistics, backed by a self-describing metrics registry
 * (cesp::StatGroup): every counter, derived ratio, and histogram is
 * registered once with a unit and description, which gives reports,
 * JSON/CSV exports, merges, and whole-stats comparisons a single
 * source of truth. The original field API survives as same-named thin
 * accessors (`s.cycles()` where `s.cycles` used to be), all O(1)
 * lookups into the registry's storage.
 *
 * Per-cluster counters are registered only for the configured cluster
 * count, so reports and exports never show phantom always-zero
 * clusters.
 */
class SimStats
{
  public:
    explicit SimStats(int num_clusters = 1);

    // --- thin accessors preserving the original field API ---
    std::string &config_name() { return group_.label(); }
    const std::string &config_name() const { return group_.label(); }

    uint64_t &cycles() { return group_.counterAt(kCycles); }
    uint64_t cycles() const { return group_.counterAt(kCycles); }
    uint64_t &fetched() { return group_.counterAt(kFetched); }
    uint64_t fetched() const { return group_.counterAt(kFetched); }
    uint64_t &dispatched() { return group_.counterAt(kDispatched); }
    uint64_t dispatched() const { return group_.counterAt(kDispatched); }
    uint64_t &issued() { return group_.counterAt(kIssued); }
    uint64_t issued() const { return group_.counterAt(kIssued); }
    uint64_t &committed() { return group_.counterAt(kCommitted); }
    uint64_t committed() const { return group_.counterAt(kCommitted); }

    uint64_t &cond_branches() { return group_.counterAt(kCondBranches); }
    uint64_t cond_branches() const
    {
        return group_.counterAt(kCondBranches);
    }
    uint64_t &mispredicts() { return group_.counterAt(kMispredicts); }
    uint64_t mispredicts() const
    {
        return group_.counterAt(kMispredicts);
    }

    uint64_t &loads() { return group_.counterAt(kLoads); }
    uint64_t loads() const { return group_.counterAt(kLoads); }
    uint64_t &stores() { return group_.counterAt(kStores); }
    uint64_t stores() const { return group_.counterAt(kStores); }
    uint64_t &store_forwards()
    {
        return group_.counterAt(kStoreForwards);
    }
    uint64_t store_forwards() const
    {
        return group_.counterAt(kStoreForwards);
    }
    uint64_t &dcache_accesses()
    {
        return group_.counterAt(kDcacheAccesses);
    }
    uint64_t dcache_accesses() const
    {
        return group_.counterAt(kDcacheAccesses);
    }
    uint64_t &dcache_misses()
    {
        return group_.counterAt(kDcacheMisses);
    }
    uint64_t dcache_misses() const
    {
        return group_.counterAt(kDcacheMisses);
    }
    uint64_t &l2_accesses() { return group_.counterAt(kL2Accesses); }
    uint64_t l2_accesses() const
    {
        return group_.counterAt(kL2Accesses);
    }
    uint64_t &l2_misses() { return group_.counterAt(kL2Misses); }
    uint64_t l2_misses() const { return group_.counterAt(kL2Misses); }

    /** Committed instructions that used an inter-cluster bypass. */
    uint64_t &intercluster_bypasses()
    {
        return group_.counterAt(kInterclusterBypasses);
    }
    uint64_t intercluster_bypasses() const
    {
        return group_.counterAt(kInterclusterBypasses);
    }

    /** Section 5.1 steering-case counters (FIFO organizations). */
    uint64_t &steer_new_fifo() { return group_.counterAt(kSteerNew); }
    uint64_t steer_new_fifo() const
    {
        return group_.counterAt(kSteerNew);
    }
    uint64_t &steer_chain_left()
    {
        return group_.counterAt(kSteerLeft);
    }
    uint64_t steer_chain_left() const
    {
        return group_.counterAt(kSteerLeft);
    }
    uint64_t &steer_chain_right()
    {
        return group_.counterAt(kSteerRight);
    }
    uint64_t steer_chain_right() const
    {
        return group_.counterAt(kSteerRight);
    }

    uint64_t &dispatch_stall_buffer() //!< window/FIFO full cycles
    {
        return group_.counterAt(kStallBuffer);
    }
    uint64_t dispatch_stall_buffer() const
    {
        return group_.counterAt(kStallBuffer);
    }
    uint64_t &dispatch_stall_regs() //!< no free physical register
    {
        return group_.counterAt(kStallRegs);
    }
    uint64_t dispatch_stall_regs() const
    {
        return group_.counterAt(kStallRegs);
    }
    uint64_t &dispatch_stall_rob() //!< in-flight limit reached
    {
        return group_.counterAt(kStallRob);
    }
    uint64_t dispatch_stall_rob() const
    {
        return group_.counterAt(kStallRob);
    }

    /** Clusters this run was configured with (registry rows exist
     *  only for these). */
    int numClusters() const { return num_clusters_; }

    /** Issue count of cluster @p c; c must be < numClusters(). */
    uint64_t &
    issued_per_cluster(int c)
    {
        return group_.counterAt(kNumScalarCounters +
                                static_cast<size_t>(c));
    }
    /** Issue count of cluster @p c (0 for unconfigured clusters). */
    uint64_t
    issued_per_cluster(int c) const
    {
        if (c < 0 || c >= num_clusters_)
            return 0;
        return group_.counterAt(kNumScalarCounters +
                                static_cast<size_t>(c));
    }

    /** Per-cycle occupancy of the issue buffering (window/FIFOs). */
    Histogram &buffer_occupancy()
    {
        return group_.histogramAt(kOccupancyHist);
    }
    const Histogram &buffer_occupancy() const
    {
        return group_.histogramAt(kOccupancyHist);
    }
    /** Instructions issued per cycle. */
    Histogram &issue_sizes()
    {
        return group_.histogramAt(kIssueSizeHist);
    }
    const Histogram &issue_sizes() const
    {
        return group_.histogramAt(kIssueSizeHist);
    }

    double ipc() const { return group_.derivedAt(kIpc); }
    double mispredictRate() const
    {
        return group_.derivedAt(kMispredictRate);
    }
    /** Section 5.6.4 metric, in percent of committed instructions. */
    double interClusterPct() const
    {
        return group_.derivedAt(kInterClusterPct);
    }
    double dcacheMissRate() const
    {
        return group_.derivedAt(kDcacheMissRate);
    }

    /** The backing registry: export, merge, compare, visit. */
    StatGroup &group() { return group_; }
    const StatGroup &group() const { return group_; }

  private:
    /** Storage indices of the scalar counters, in registration
     *  order; per-cluster issue counters follow at
     *  kNumScalarCounters + c. */
    enum ScalarCounter : size_t
    {
        kCycles,
        kFetched,
        kDispatched,
        kIssued,
        kCommitted,
        kCondBranches,
        kMispredicts,
        kLoads,
        kStores,
        kStoreForwards,
        kDcacheAccesses,
        kDcacheMisses,
        kL2Accesses,
        kL2Misses,
        kInterclusterBypasses,
        kSteerNew,
        kSteerLeft,
        kSteerRight,
        kStallBuffer,
        kStallRegs,
        kStallRob,
        kNumScalarCounters,
    };
    enum DerivedId : size_t
    {
        kIpc,
        kMispredictRate,
        kInterClusterPct,
        kDcacheMissRate,
        kL2MissRate,
    };
    enum HistId : size_t
    {
        kOccupancyHist,
        kIssueSizeHist,
    };

    int num_clusters_ = 1;
    StatGroup group_;
};

/**
 * One point of the statistics time series emitted by interval
 * sampling (RunLimits::sample_every): the registry state after every
 * N measured commits, both cumulative and as the change since the
 * previous snapshot.
 */
struct StatSnapshot
{
    uint64_t index = 0;     //!< 0-based interval number
    uint64_t committed = 0; //!< measured commits so far (cumulative)
    uint64_t cycles = 0;    //!< measured cycles so far (cumulative)
    /** Registry totals since the measurement boundary, with cycle
     *  and cache counters rebased exactly as at end of run. */
    StatGroup cumulative;
    /** cumulative.deltaSince(previous snapshot); equals cumulative
     *  for the first interval. Sample min/max stay cumulative (see
     *  StatGroup::deltaSince). */
    StatGroup delta;
};

/**
 * Limits and observation hooks for one Pipeline::run. Replaces the
 * old positional (max_instructions, warmup_instructions) signature
 * so new knobs — like the sampler — compose without argument-order
 * traps.
 */
struct RunLimits
{
    /** Stop fetching after this many instructions (warmup included). */
    uint64_t max_instructions = UINT64_MAX;
    /**
     * Discard the measurement prefix: the machine state (branch
     * predictor, caches, rename map, in-flight instructions) warms
     * up normally, but when the warmup-th instruction commits the
     * statistics registry is reset (StatGroup::reset()) and
     * cycle/cache accounting rebases, so the returned stats cover
     * only the instructions committed after the boundary. This is
     * the measurement contract trace sharding depends on
     * (core::run with shards): a shard simulates its warmup prefix
     * for state only and reports its measured window. With warmup 0
     * the behaviour (and every stat bit) is unchanged. If the run
     * drains before the warmup target commits, the measured region
     * is empty and every counter is zero.
     *
     * A measured window needs no cooldown suffix: commit is
     * in-order, so an instruction's commit cycle depends only on
     * itself and older instructions — appending records after the
     * window cannot change its cycle count (verified empirically
     * while tuning the sharded convergence suite). The only sharding
     * bias is cold machine state, which the warmup prefix addresses.
     */
    uint64_t warmup = 0;
    /** When > 0 (and a sampler is set), invoke the sampler with a
     *  StatSnapshot every this-many measured commits. Sampling only
     *  reads simulator state: final stats are bit-identical with
     *  sampling on or off. No snapshot is emitted for a trailing
     *  partial interval — the end-of-run stats cover it. */
    uint64_t sample_every = 0;
    /** Snapshot consumer; called synchronously on the simulating
     *  thread. */
    std::function<void(const StatSnapshot &)> sampler;
};

/** The timing simulator. */
class Pipeline
{
  public:
    /**
     * @param cfg machine configuration (validated here)
     * @param src trace source; rewound at the start of run()
     */
    Pipeline(const SimConfig &cfg, trace::TraceSource &src);

    /**
     * Simulate until the trace ends (or limits.max_instructions have
     * been fetched) and the machine drains. Returns the statistics;
     * see RunLimits for the warmup and sampling contracts.
     */
    SimStats run(const RunLimits &limits);
    /** Run to completion with default limits. */
    SimStats run() { return run(RunLimits{}); }
    [[deprecated("use run(const RunLimits&)")]]
    SimStats run(uint64_t max_instructions,
                 uint64_t warmup_instructions = 0);

    const SimConfig &config() const { return cfg_; }

    /** Callback observing per-instruction pipeline events. */
    using InstObserver = std::function<void(const DynInst &)>;

    /** Observe every instruction as it is dispatched (post-steer). */
    void
    setDispatchObserver(InstObserver f)
    {
        on_dispatch_ = std::move(f);
    }

    /** Observe every instruction as it issues. */
    void
    setIssueObserver(InstObserver f)
    {
        on_issue_ = std::move(f);
    }

  private:
    void doCommit();
    void doIssue();
    void doIssueScan();  //!< reference per-cycle candidate scan
    void doIssueEvent(); //!< event-calendar issue (default)
    void doDispatch();
    void doFetch();

    /** Per-cycle functional unit occupancy. */
    struct FuUsage
    {
        int total[kMaxClusters] = {};
        int typed[kMaxClusters][3] = {}; //!< [cluster][fu class]
    };

    /** Unit class an op class executes on (0 alu, 1 mem, 2 branch). */
    static int fuClassOf(isa::OpClass cls);

    bool fuAvailable(int cluster, isa::OpClass cls,
                     const FuUsage &usage) const;
    void consumeFu(int cluster, isa::OpClass cls, FuUsage &usage);

    bool tryIssueOne(DynInst &inst, int &global_issued,
                     FuUsage &usage);
    bool srcsReady(const DynInst &inst, int cluster) const;
    size_t bufferedCount() const;
    uint64_t srcReadyCycle(const DynInst &inst, int cluster) const;
    int chooseExecCluster(const DynInst &inst, isa::OpClass cls,
                          const FuUsage &usage) const;
    /** Result-forwarding hops from cluster @p from to @p to. */
    int bypassHops(int from, int to) const;
    void completeIssue(DynInst &inst, int cluster, int latency);
    void removeFromBuffer(DynInst &inst);
    int loadLatency(DynInst &inst);

    // Event-driven wakeup machinery (no-ops under LegacyScan).
    /** Register source waiters / schedule the first wakeup event. */
    void wireDispatchEvents(DynInst &inst);
    /** Earliest cycle @p inst's sources are all ready (its cluster,
     *  or the best cluster when unassigned). Sources must all be
     *  scheduled. */
    uint64_t instReadyCycle(const DynInst &inst) const;
    /** Push a wakeup event at max(sources-ready, @p earliest). */
    void scheduleReady(DynInst &inst, uint64_t earliest);
    /** Move fired events into the ready set. */
    void drainWakeups();
    /** Ready-set ordering key (slot for slot-priority, else age). */
    uint64_t readyKey(const DynInst &inst) const;
    /** Jump over cycles that provably perform no work. */
    void maybeSkipIdle();

    /** Cross the warmup boundary: reset the stats registry and
     *  rebase cycle and cache accounting at the current commit. */
    void beginMeasurement();

    /** Emit one interval snapshot (cumulative + delta) to the
     *  sampler. Reads state only; never perturbs the simulation. */
    void emitSnapshot();

    DynInst &rob(uint64_t seq);
    const DynInst &rob(uint64_t seq) const;
    size_t robSize() const { return rob_tail_ - rob_head_; }
    bool robFull() const;

    SimConfig cfg_;
    trace::TraceSource &src_;

    std::unique_ptr<bpred::BranchPredictor> bpred_;
    mem::Cache dcache_;
    std::unique_ptr<mem::Cache> l2_; //!< optional second level
    RenameState rename_;
    std::unique_ptr<FifoSet> fifos_;
    std::vector<IssueWindow> windows_;
    std::unique_ptr<Steering> steering_;
    StoreQueue stq_;

    std::vector<DynInst> rob_;   //!< ring buffer, slot = seq % size
    uint64_t rob_head_ = 0;      //!< oldest in-flight seq
    uint64_t rob_tail_ = 0;      //!< next seq to dispatch

    std::deque<DynInst> fetch_q_; //!< fetched, awaiting rename
    uint64_t next_seq_ = 0;
    bool trace_done_ = false;

    // Warmup measurement boundary (see run()). fetched_total_ counts
    // every fetched instruction across the whole run — the registry's
    // "fetched" counter rebases at the boundary, but the
    // max_instructions bound must not.
    bool warmup_pending_ = false;
    uint64_t warmup_target_ = 0;
    uint64_t measure_start_cycle_ = 0;
    uint64_t fetched_total_ = 0;
    uint64_t dcache_acc_base_ = 0, dcache_miss_base_ = 0;
    uint64_t l2_acc_base_ = 0, l2_miss_base_ = 0;

    // Interval sampling (see RunLimits). next_sample_ is the measured
    // commit count that triggers the next snapshot; the boundary
    // reset restarts the series.
    uint64_t sample_every_ = 0;
    uint64_t next_sample_ = 0;
    uint64_t sample_index_ = 0;
    bool have_sample_prev_ = false;
    StatGroup sample_prev_;
    std::function<void(const StatSnapshot &)> sampler_;

    uint64_t now_ = 0;
    uint64_t fetch_resume_ = 0;      //!< fetch stalled until this cycle
    uint64_t blocking_branch_ = kNoSeq; //!< unresolved mispredict

    int ls_ports_used_ = 0; //!< per-cycle cache-port counter
    Rng select_rng_{0};     //!< for SelectPolicy::Random

    // Event-driven issue state.
    bool event_driven_ = false; //!< resolved issue model for this run
    bool slot_keyed_ = false;   //!< ready set ordered by window slot
    std::vector<WakeupCalendar> calendars_; //!< one per cluster
    /** Buffered instructions with all sources ready, sorted by
     *  selection priority: (key, seq). A flat vector: it stays small
     *  (bounded by the issue buffering) and is copied every cycle, so
     *  contiguity beats node-based sets. */
    std::vector<std::pair<uint64_t, uint64_t>> ready_;
    void readyInsert(uint64_t key, uint64_t seq);
    void readyErase(uint64_t key, uint64_t seq);
    std::vector<uint64_t> event_scratch_; //!< drained events, reused

    InstObserver on_dispatch_;
    InstObserver on_issue_;

    SimStats stats_;
};

/** Convenience: build, run, and return statistics. */
SimStats simulate(const SimConfig &cfg, trace::TraceSource &src,
                  uint64_t max_instructions = UINT64_MAX,
                  uint64_t warmup_instructions = 0);

/** Convenience: build, run with @p limits, and return statistics. */
SimStats simulate(const SimConfig &cfg, trace::TraceSource &src,
                  const RunLimits &limits);

} // namespace cesp::uarch

#endif // CESP_UARCH_PIPELINE_HPP
