/**
 * @file
 * The trace-driven out-of-order timing simulator: the Figure 1 / 11
 * pipeline (fetch, decode, rename/steer, wakeup/select, execute,
 * d-cache access, writeback/bypass, commit) with all the Table 3
 * machine parameters, the dependence-based FIFO organization of
 * Section 5, and the clustered variants of Section 5.6.
 *
 * Simulation is cycle-driven. Each cycle processes commit, issue
 * (wakeup/select), dispatch (rename + steer + buffer insert), and
 * fetch, in that order, using per-physical-register ready timestamps
 * so dependent single-cycle operations issue in back-to-back cycles.
 * Recovery is the standard trace-driven model: a mispredicted
 * conditional branch stalls instruction delivery until it executes.
 *
 * Ready instructions are discovered with an event calendar rather
 * than a per-cycle scan of the whole buffer (IssueModel::EventDriven,
 * the default): issuing an instruction schedules wakeup events for
 * its dependents at the exact cycle their operands become usable, the
 * select stage draws from a maintained ready set ordered by selection
 * priority, and provably idle cycle stretches are skipped in one
 * jump. The per-cycle scan survives as IssueModel::LegacyScan; the
 * two are cycle- and statistic-exact against each other (enforced by
 * tests/test_event_sched.cpp).
 */

#ifndef CESP_UARCH_PIPELINE_HPP
#define CESP_UARCH_PIPELINE_HPP

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "bpred/bpred.hpp"
#include "common/stats.hpp"
#include "common/rng.hpp"
#include "mem/cache.hpp"
#include "trace/trace.hpp"
#include "uarch/config.hpp"
#include "uarch/dyninst.hpp"
#include "uarch/fifos.hpp"
#include "uarch/lsq.hpp"
#include "uarch/rename.hpp"
#include "uarch/steering.hpp"
#include "uarch/wakeup.hpp"
#include "uarch/window.hpp"

namespace cesp::uarch {

/** End-of-run statistics. */
struct SimStats
{
    std::string config_name;

    uint64_t cycles = 0;
    uint64_t fetched = 0;
    uint64_t dispatched = 0;
    uint64_t issued = 0;
    uint64_t committed = 0;

    uint64_t cond_branches = 0;
    uint64_t mispredicts = 0;

    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t store_forwards = 0;
    uint64_t dcache_accesses = 0;
    uint64_t dcache_misses = 0;
    uint64_t l2_accesses = 0;
    uint64_t l2_misses = 0;

    /** Committed instructions that used an inter-cluster bypass. */
    uint64_t intercluster_bypasses = 0;

    /** Section 5.1 steering-case counters (FIFO organizations). */
    uint64_t steer_new_fifo = 0;
    uint64_t steer_chain_left = 0;
    uint64_t steer_chain_right = 0;

    uint64_t dispatch_stall_buffer = 0; //!< window/FIFO full cycles
    uint64_t dispatch_stall_regs = 0;   //!< no free physical register
    uint64_t dispatch_stall_rob = 0;    //!< in-flight limit reached

    uint64_t issued_per_cluster[kMaxClusters] = {};

    /** Per-cycle occupancy of the issue buffering (window/FIFOs). */
    Histogram buffer_occupancy{160, 1.0};
    /** Instructions issued per cycle. */
    Histogram issue_sizes{17, 1.0};

    double
    ipc() const
    {
        return cycles ? static_cast<double>(committed) /
            static_cast<double>(cycles) : 0.0;
    }

    double
    mispredictRate() const
    {
        return cond_branches ? static_cast<double>(mispredicts) /
            static_cast<double>(cond_branches) : 0.0;
    }

    /** Section 5.6.4 metric, in percent of committed instructions. */
    double
    interClusterPct() const
    {
        return committed ? 100.0 *
            static_cast<double>(intercluster_bypasses) /
            static_cast<double>(committed) : 0.0;
    }

    double
    dcacheMissRate() const
    {
        return dcache_accesses ? static_cast<double>(dcache_misses) /
            static_cast<double>(dcache_accesses) : 0.0;
    }
};

/** The timing simulator. */
class Pipeline
{
  public:
    /**
     * @param cfg machine configuration (validated here)
     * @param src trace source; rewound at the start of run()
     */
    Pipeline(const SimConfig &cfg, trace::TraceSource &src);

    /**
     * Simulate until the trace ends (or @p max_instructions have been
     * fetched) and the machine drains. Returns the statistics.
     */
    SimStats run(uint64_t max_instructions = UINT64_MAX);

    const SimConfig &config() const { return cfg_; }

    /** Callback observing per-instruction pipeline events. */
    using InstObserver = std::function<void(const DynInst &)>;

    /** Observe every instruction as it is dispatched (post-steer). */
    void
    setDispatchObserver(InstObserver f)
    {
        on_dispatch_ = std::move(f);
    }

    /** Observe every instruction as it issues. */
    void
    setIssueObserver(InstObserver f)
    {
        on_issue_ = std::move(f);
    }

  private:
    void doCommit();
    void doIssue();
    void doIssueScan();  //!< reference per-cycle candidate scan
    void doIssueEvent(); //!< event-calendar issue (default)
    void doDispatch();
    void doFetch();

    /** Per-cycle functional unit occupancy. */
    struct FuUsage
    {
        int total[kMaxClusters] = {};
        int typed[kMaxClusters][3] = {}; //!< [cluster][fu class]
    };

    /** Unit class an op class executes on (0 alu, 1 mem, 2 branch). */
    static int fuClassOf(isa::OpClass cls);

    bool fuAvailable(int cluster, isa::OpClass cls,
                     const FuUsage &usage) const;
    void consumeFu(int cluster, isa::OpClass cls, FuUsage &usage);

    bool tryIssueOne(DynInst &inst, int &global_issued,
                     FuUsage &usage);
    bool srcsReady(const DynInst &inst, int cluster) const;
    size_t bufferedCount() const;
    uint64_t srcReadyCycle(const DynInst &inst, int cluster) const;
    int chooseExecCluster(const DynInst &inst, isa::OpClass cls,
                          const FuUsage &usage) const;
    /** Result-forwarding hops from cluster @p from to @p to. */
    int bypassHops(int from, int to) const;
    void completeIssue(DynInst &inst, int cluster, int latency);
    void removeFromBuffer(DynInst &inst);
    int loadLatency(DynInst &inst);

    // Event-driven wakeup machinery (no-ops under LegacyScan).
    /** Register source waiters / schedule the first wakeup event. */
    void wireDispatchEvents(DynInst &inst);
    /** Earliest cycle @p inst's sources are all ready (its cluster,
     *  or the best cluster when unassigned). Sources must all be
     *  scheduled. */
    uint64_t instReadyCycle(const DynInst &inst) const;
    /** Push a wakeup event at max(sources-ready, @p earliest). */
    void scheduleReady(DynInst &inst, uint64_t earliest);
    /** Move fired events into the ready set. */
    void drainWakeups();
    /** Ready-set ordering key (slot for slot-priority, else age). */
    uint64_t readyKey(const DynInst &inst) const;
    /** Jump over cycles that provably perform no work. */
    void maybeSkipIdle();

    DynInst &rob(uint64_t seq);
    const DynInst &rob(uint64_t seq) const;
    size_t robSize() const { return rob_tail_ - rob_head_; }
    bool robFull() const;

    SimConfig cfg_;
    trace::TraceSource &src_;

    std::unique_ptr<bpred::BranchPredictor> bpred_;
    mem::Cache dcache_;
    std::unique_ptr<mem::Cache> l2_; //!< optional second level
    RenameState rename_;
    std::unique_ptr<FifoSet> fifos_;
    std::vector<IssueWindow> windows_;
    std::unique_ptr<Steering> steering_;
    StoreQueue stq_;

    std::vector<DynInst> rob_;   //!< ring buffer, slot = seq % size
    uint64_t rob_head_ = 0;      //!< oldest in-flight seq
    uint64_t rob_tail_ = 0;      //!< next seq to dispatch

    std::deque<DynInst> fetch_q_; //!< fetched, awaiting rename
    uint64_t next_seq_ = 0;
    bool trace_done_ = false;

    uint64_t now_ = 0;
    uint64_t fetch_resume_ = 0;      //!< fetch stalled until this cycle
    uint64_t blocking_branch_ = kNoSeq; //!< unresolved mispredict

    int ls_ports_used_ = 0; //!< per-cycle cache-port counter
    Rng select_rng_{0};     //!< for SelectPolicy::Random

    // Event-driven issue state.
    bool event_driven_ = false; //!< resolved issue model for this run
    bool slot_keyed_ = false;   //!< ready set ordered by window slot
    std::vector<WakeupCalendar> calendars_; //!< one per cluster
    /** Buffered instructions with all sources ready, sorted by
     *  selection priority: (key, seq). A flat vector: it stays small
     *  (bounded by the issue buffering) and is copied every cycle, so
     *  contiguity beats node-based sets. */
    std::vector<std::pair<uint64_t, uint64_t>> ready_;
    void readyInsert(uint64_t key, uint64_t seq);
    void readyErase(uint64_t key, uint64_t seq);
    std::vector<uint64_t> event_scratch_; //!< drained events, reused

    InstObserver on_dispatch_;
    InstObserver on_issue_;

    SimStats stats_;
};

/** Convenience: build, run, and return statistics. */
SimStats simulate(const SimConfig &cfg, trace::TraceSource &src,
                  uint64_t max_instructions = UINT64_MAX);

} // namespace cesp::uarch

#endif // CESP_UARCH_PIPELINE_HPP
