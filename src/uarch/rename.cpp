/**
 * @file
 * Implementation of the rename state.
 */

#include "uarch/rename.hpp"

#include "common/logging.hpp"

namespace cesp::uarch {

RenameState::RenameState(const SimConfig &cfg)
    : phys_int_(cfg.phys_int_regs)
{
    pregs_.assign(
        static_cast<size_t>(cfg.phys_int_regs + cfg.phys_fp_regs),
        PhysReg{});
    map_.assign(isa::kNumArchRegs, -1);

    // Architectural integer register i starts mapped to physical i;
    // fp register i to physical phys_int_ + i. The remainder of each
    // class seeds the free lists.
    for (int i = 0; i < isa::kNumIntRegs; ++i)
        map_[i] = i;
    for (int i = 0; i < isa::kNumFpRegs; ++i)
        map_[isa::kFpRegBase + i] = phys_int_ + i;
    for (int p = isa::kNumIntRegs; p < cfg.phys_int_regs; ++p)
        free_int_.push_back(p);
    for (int p = isa::kNumFpRegs; p < cfg.phys_fp_regs; ++p)
        free_fp_.push_back(phys_int_ + p);
}

bool
RenameState::hasFreeFor(int arch_dst) const
{
    return arch_dst >= isa::kFpRegBase ? !free_fp_.empty()
                                       : !free_int_.empty();
}

RenameState::Renamed
RenameState::rename(int arch_dst, uint64_t seq)
{
    if (arch_dst <= 0 || arch_dst >= isa::kNumArchRegs)
        panic("rename: bad destination register %d", arch_dst);
    auto &pool =
        arch_dst >= isa::kFpRegBase ? free_fp_ : free_int_;
    if (pool.empty())
        panic("rename: no free register (caller must check)");
    int p = pool.front();
    pool.pop_front();

    // Reset in place (not via struct assignment) so the waiter
    // vector's capacity survives reallocation churn.
    PhysReg &pr = pregs_[static_cast<size_t>(p)];
    pr.computed_cycle = kNeverCycle;
    pr.producer_seq = seq;
    pr.producing_cluster = 0;
    pr.scheduled = false;
    pr.waiters.clear();
    for (int c = 0; c < kMaxClusters; ++c) {
        pr.ready_cycle[c] = kNeverCycle;
        pr.rf_visible[c] = kNeverCycle;
    }

    int old = map_[arch_dst];
    map_[arch_dst] = p;
    return {p, old};
}

void
RenameState::release(int preg)
{
    if (preg < 0 || preg >= numPregs())
        panic("release: bad physical register %d", preg);
    if (isFpPreg(preg))
        free_fp_.push_back(preg);
    else
        free_int_.push_back(preg);
}

} // namespace cesp::uarch
