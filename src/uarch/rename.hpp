/**
 * @file
 * Register rename state: architectural-to-physical map table, per-
 * class free lists, and per-physical-register scheduling state. This
 * is the timing-side counterpart of the rename logic modeled in
 * Section 4.1 of the paper (the RAM scheme): the map table is indexed
 * by architectural register, a free physical register is allocated
 * per destination, and the previous mapping is released when the
 * renaming instruction commits.
 *
 * Each physical register also carries the cross-cluster result timing
 * used by the issue logic: the cycle at which a consumer in each
 * cluster may issue using the value (1-cycle local bypass, +1 cycle
 * per Section 5.4 for the other cluster) and the cycle at which the
 * value is readable from each cluster's register file (used to tell
 * bypassed operands from register-file reads, Section 5.6.4).
 */

#ifndef CESP_UARCH_RENAME_HPP
#define CESP_UARCH_RENAME_HPP

#include <deque>
#include <vector>

#include "isa/isa.hpp"
#include "uarch/config.hpp"
#include "uarch/dyninst.hpp"

namespace cesp::uarch {

/** Scheduling state of one physical register. */
struct PhysReg
{
    /** Earliest cycle a consumer in cluster c may issue. */
    uint64_t ready_cycle[kMaxClusters] = {};
    /** Cycle the value is readable from cluster c's register file. */
    uint64_t rf_visible[kMaxClusters] = {};
    /** Cycle the value is computed (kNeverCycle until scheduled). */
    uint64_t computed_cycle = 0;
    uint64_t producer_seq = kNoSeq; //!< renaming instruction
    int producing_cluster = 0;
    /**
     * True once ready_cycle/rf_visible are final: the producer has
     * issued (or the register is a live-in with no in-flight
     * producer). Until then, dispatched consumers register in
     * waiters and are woken when the producer issues — the
     * event-driven replacement for broadcasting every result tag to
     * every window entry each cycle.
     */
    bool scheduled = true;
    /** Buffered consumers awaiting this value's schedule (seqs). */
    std::vector<uint64_t> waiters;

    bool
    readyFor(int cluster, uint64_t now) const
    {
        return ready_cycle[cluster] <= now;
    }

    /** Value not yet computed as of @p now (outstanding operand). */
    bool
    outstanding(uint64_t now) const
    {
        return computed_cycle > now;
    }
};

/** Map table + free lists + physical register file state. */
class RenameState
{
  public:
    explicit RenameState(const SimConfig &cfg);

    /** Physical register currently mapped to an architectural one. */
    int
    mapOf(int arch_reg) const
    {
        return map_[arch_reg];
    }

    /** Is a free physical register available for this destination? */
    bool hasFreeFor(int arch_dst) const;

    /** Free physical registers remaining in the integer class. */
    size_t freeIntRegs() const { return free_int_.size(); }
    size_t freeFpRegs() const { return free_fp_.size(); }

    /**
     * Rename a destination: allocates a new physical register, updates
     * the map, and returns {new_preg, old_preg}. The caller frees
     * old_preg when the instruction commits.
     */
    struct Renamed
    {
        int preg;
        int old_preg;
    };
    Renamed rename(int arch_dst, uint64_t seq);

    /** Return a physical register to its free list (at commit). */
    void release(int preg);

    PhysReg &preg(int id) { return pregs_[static_cast<size_t>(id)]; }

    const PhysReg &
    preg(int id) const
    {
        return pregs_[static_cast<size_t>(id)];
    }

    int numPregs() const { return static_cast<int>(pregs_.size()); }

  private:
    bool isFpPreg(int preg) const { return preg >= phys_int_; }

    int phys_int_;
    std::vector<PhysReg> pregs_;       //!< int then fp
    std::vector<int> map_;             //!< arch (flat 0..63) -> preg
    std::deque<int> free_int_, free_fp_;
};

} // namespace cesp::uarch

#endif // CESP_UARCH_RENAME_HPP
