/**
 * @file
 * Per-dynamic-instruction state carried through the timing pipeline.
 */

#ifndef CESP_UARCH_DYNINST_HPP
#define CESP_UARCH_DYNINST_HPP

#include <cstdint>

#include "trace/trace.hpp"

namespace cesp::uarch {

/** Sentinel cycle meaning "not yet scheduled". */
constexpr uint64_t kNeverCycle = UINT64_MAX / 2;

/** Sentinel sequence number. */
constexpr uint64_t kNoSeq = UINT64_MAX;

/** One in-flight dynamic instruction. */
struct DynInst
{
    trace::TraceOp op;
    uint64_t seq = kNoSeq;     //!< program order, from 0

    // Renamed operands (physical register ids; -1 = none).
    int dst_preg = -1;
    int src1_preg = -1;
    int src2_preg = -1;
    int old_preg = -1;         //!< previous mapping, freed at commit

    int cluster = -1;          //!< execution cluster (-1 = unassigned)
    int fifo = -1;             //!< FIFO id (real or conceptual)

    uint64_t frontend_exit = 0;  //!< earliest rename cycle
    uint64_t dispatch_cycle = kNeverCycle;
    uint64_t issue_cycle = kNeverCycle;
    uint64_t complete_cycle = kNeverCycle;

    // Event-driven wakeup state (maintained by the pipeline when the
    // event calendar is active; unused by the reference scan path).
    /** Cycle all sources are ready (valid once pending_srcs == 0). */
    uint64_t wake_cycle = kNeverCycle;
    /** Source registers whose producer has not been scheduled yet. */
    int8_t pending_srcs = 0;
    /** Slot index in a slot-priority central window (-1 otherwise). */
    int16_t wslot = -1;

    bool in_buffer = false;    //!< waiting in window/FIFO
    bool issued = false;
    bool mispredicted = false; //!< conditional branch, wrong direction

    bool
    readyToCommit(uint64_t now) const
    {
        return issued && complete_cycle <= now;
    }
};

} // namespace cesp::uarch

#endif // CESP_UARCH_DYNINST_HPP
