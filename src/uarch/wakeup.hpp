/**
 * @file
 * Ready-event calendar for the event-driven issue model.
 *
 * The broadcast-wakeup hardware the paper analyzes (Section 4.2)
 * compares every result tag against every waiting operand every
 * cycle; a software model that mirrors it re-scans the whole window
 * per cycle. The calendar inverts that: when an instruction's
 * completion time becomes known at issue, a wakeup event for each
 * dependent is pushed at the exact cycle the value becomes usable
 * (wakeup+select depth, local bypass, and inter-cluster hops are all
 * folded into that cycle by the pipeline), and the select stage only
 * ever looks at instructions whose event has fired.
 *
 * Storage is a bucketed ring keyed by cycle for near events (the
 * common case: latencies of a few cycles) with an ordered map
 * overflow for events beyond the ring horizon (long memory latencies,
 * extreme bypass configurations). Cycles are popped monotonically;
 * the pipeline pops every cycle it simulates, including the target
 * cycle of an idle-cycle jump.
 */

#ifndef CESP_UARCH_WAKEUP_HPP
#define CESP_UARCH_WAKEUP_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "common/logging.hpp"
#include "uarch/dyninst.hpp"

namespace cesp::uarch {

/** Per-cluster bucketed queue of wakeup events keyed by cycle. */
class WakeupCalendar
{
  public:
    WakeupCalendar() : ring_(kHorizon) {}

    bool empty() const { return count_ == 0; }

    /**
     * Schedule instruction @p seq to become selectable at @p cycle.
     * Events may only be scheduled at or beyond the next unpopped
     * cycle (the pipeline never needs to wake anything in the past).
     * Duplicate events for one instruction are permitted; the
     * pipeline's ready set deduplicates on fire.
     */
    void
    schedule(uint64_t cycle, uint64_t seq)
    {
        if (cycle < cursor_)
            panic("WakeupCalendar: event at cycle %llu behind cursor "
                  "%llu", (unsigned long long)cycle,
                  (unsigned long long)cursor_);
        if (cycle - cursor_ < kHorizon) {
            Bucket &b = ring_[cycle & (kHorizon - 1)];
            if (b.cycle != cycle) {
                b.cycle = cycle;
                b.seqs.clear();
            }
            b.seqs.push_back(seq);
        } else {
            far_[cycle].push_back(seq);
        }
        ++count_;
    }

    /**
     * Append every event due at or before @p now to @p out and
     * advance the pop cursor to @p now + 1. Cycles between the last
     * pop and @p now are drained in order (after an idle-cycle jump
     * they are empty by construction).
     */
    void
    popDue(uint64_t now, std::vector<uint64_t> &out)
    {
        if (count_ != 0) {
            for (uint64_t c = cursor_; c <= now && count_ != 0; ++c) {
                Bucket &b = ring_[c & (kHorizon - 1)];
                if (b.cycle != c || b.seqs.empty())
                    continue;
                out.insert(out.end(), b.seqs.begin(), b.seqs.end());
                count_ -= b.seqs.size();
                b.seqs.clear();
            }
            while (!far_.empty() && far_.begin()->first <= now) {
                auto &seqs = far_.begin()->second;
                out.insert(out.end(), seqs.begin(), seqs.end());
                count_ -= seqs.size();
                far_.erase(far_.begin());
            }
        }
        cursor_ = now + 1;
    }

    /**
     * Cycle of the earliest pending event, or kNeverCycle if none.
     * Used by the idle-cycle skip to bound how far the clock may
     * jump.
     */
    uint64_t
    nextEventCycle() const
    {
        if (count_ == 0)
            return kNeverCycle;
        // A far event can precede every ring event once the cursor
        // has advanced close to it, so the ring scan must stop at the
        // far minimum rather than shadow it.
        uint64_t best =
            far_.empty() ? kNeverCycle : far_.begin()->first;
        for (uint64_t c = cursor_; c < cursor_ + kHorizon && c < best;
             ++c) {
            const Bucket &b = ring_[c & (kHorizon - 1)];
            if (b.cycle == c && !b.seqs.empty())
                return c;
        }
        return best;
    }

  private:
    /** Ring span in cycles; must be a power of two. */
    static constexpr uint64_t kHorizon = 64;

    struct Bucket
    {
        uint64_t cycle = UINT64_MAX; //!< tag: which cycle seqs is for
        std::vector<uint64_t> seqs;
    };

    std::vector<Bucket> ring_;
    /** Events at cycles beyond the ring horizon, keyed by cycle. */
    std::map<uint64_t, std::vector<uint64_t>> far_;
    uint64_t cursor_ = 0; //!< next cycle popDue has not yet drained
    uint64_t count_ = 0;  //!< pending events across ring and far
};

} // namespace cesp::uarch

#endif // CESP_UARCH_WAKEUP_HPP
