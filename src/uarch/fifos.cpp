/**
 * @file
 * Implementation of the FIFO set.
 */

#include "uarch/fifos.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace cesp::uarch {

FifoSet::FifoSet(int num_clusters, int per_cluster, int depth)
    : num_clusters_(num_clusters), per_cluster_(per_cluster),
      depth_(depth)
{
    if (num_clusters < 1 || per_cluster < 1 || depth < 1)
        panic("FifoSet: bad shape %dx%dx%d", num_clusters, per_cluster,
              depth);
    fifos_.assign(
        static_cast<size_t>(num_clusters) *
            static_cast<size_t>(per_cluster),
        Fifo{});
    free_.assign(static_cast<size_t>(num_clusters), {});
    clear();
}

void
FifoSet::clear()
{
    for (auto &f : fifos_) {
        f.entries.clear();
        f.allocated = false;
    }
    for (int c = 0; c < num_clusters_; ++c) {
        free_[static_cast<size_t>(c)].clear();
        for (int i = 0; i < per_cluster_; ++i)
            free_[static_cast<size_t>(c)].push_back(
                c * per_cluster_ + i);
    }
    current_cluster_ = 0;
    total_entries_ = 0;
}

const FifoSet::Fifo &
FifoSet::at(int fifo) const
{
    if (fifo < 0 || fifo >= numFifos())
        panic("FifoSet: bad fifo id %d", fifo);
    return fifos_[static_cast<size_t>(fifo)];
}

FifoSet::Fifo &
FifoSet::at(int fifo)
{
    return const_cast<Fifo &>(
        static_cast<const FifoSet *>(this)->at(fifo));
}

int
FifoSet::clusterOf(int fifo) const
{
    at(fifo); // bounds check
    return fifo / per_cluster_;
}

uint64_t
FifoSet::head(int fifo) const
{
    const Fifo &f = at(fifo);
    if (f.entries.empty())
        panic("FifoSet: head of empty fifo %d", fifo);
    return f.entries.front();
}

bool
FifoSet::isTail(int fifo, uint64_t seq) const
{
    const Fifo &f = at(fifo);
    return !f.entries.empty() && f.entries.back() == seq;
}

void
FifoSet::push(int fifo, uint64_t seq)
{
    Fifo &f = at(fifo);
    if (!f.allocated)
        panic("FifoSet: push to unallocated fifo %d", fifo);
    if (static_cast<int>(f.entries.size()) >= depth_)
        panic("FifoSet: push to full fifo %d", fifo);
    if (!f.entries.empty() && f.entries.back() >= seq)
        panic("FifoSet: out-of-order push (fifo %d)", fifo);
    f.entries.push_back(seq);
    ++total_entries_;
}

void
FifoSet::recycle(int fifo)
{
    Fifo &f = at(fifo);
    f.allocated = false;
    free_[static_cast<size_t>(clusterOf(fifo))].push_back(fifo);
}

void
FifoSet::popHead(int fifo)
{
    Fifo &f = at(fifo);
    if (f.entries.empty())
        panic("FifoSet: pop of empty fifo %d", fifo);
    f.entries.pop_front();
    --total_entries_;
    if (f.entries.empty())
        recycle(fifo);
}

void
FifoSet::remove(int fifo, uint64_t seq)
{
    Fifo &f = at(fifo);
    auto it = std::find(f.entries.begin(), f.entries.end(), seq);
    if (it == f.entries.end())
        panic("FifoSet: remove of absent seq from fifo %d", fifo);
    f.entries.erase(it);
    --total_entries_;
    if (f.entries.empty())
        recycle(fifo);
}

int
FifoSet::allocate(const std::function<bool(int)> &cluster_ok)
{
    // Two-free-list policy: stay on the current cluster while it has
    // free FIFOs, then move on (Section 5.5).
    for (int step = 0; step < num_clusters_; ++step) {
        int c = (current_cluster_ + step) % num_clusters_;
        auto &pool = free_[static_cast<size_t>(c)];
        if (pool.empty() || !cluster_ok(c))
            continue;
        current_cluster_ = c;
        int id = pool.front();
        pool.pop_front();
        Fifo &f = at(id);
        f.allocated = true;
        f.entries.clear();
        return id;
    }
    return -1;
}

std::vector<uint64_t>
FifoSet::headSeqs() const
{
    std::vector<uint64_t> heads;
    for (const auto &f : fifos_)
        if (!f.entries.empty())
            heads.push_back(f.entries.front());
    return heads;
}

int
FifoSet::freeCount(int cluster) const
{
    if (cluster < 0 || cluster >= num_clusters_)
        panic("FifoSet: bad cluster %d", cluster);
    return static_cast<int>(free_[static_cast<size_t>(cluster)].size());
}

} // namespace cesp::uarch
