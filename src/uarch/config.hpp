/**
 * @file
 * Timing-simulator configuration. Defaults follow Table 3 of the
 * paper (the baseline simulation model) exactly; the issue-buffer
 * style and steering policy select among the organizations evaluated
 * in Section 5 (Figures 13, 15, 17).
 */

#ifndef CESP_UARCH_CONFIG_HPP
#define CESP_UARCH_CONFIG_HPP

#include <cstdint>
#include <string>

namespace cesp::uarch {

/** Maximum clusters supported by the engine. */
constexpr int kMaxClusters = 4;

/** Organization of the issue buffering. */
enum class IssueBufferStyle
{
    CentralWindow,    //!< one flexible window shared by all clusters
    PerClusterWindow, //!< one flexible window per cluster
    Fifos,            //!< in-order FIFOs per cluster (dependence-based)
};

/** Instruction-to-cluster/FIFO steering policy. */
enum class SteeringPolicy
{
    None,            //!< single cluster, central window
    DependenceFifo,  //!< Section 5.1 heuristic onto real FIFOs
    WindowFifo,      //!< Section 5.6.2: conceptual FIFOs over windows
    ExecutionDriven, //!< Section 5.6.1: cluster chosen at issue
    Random,          //!< Section 5.6.3: random cluster at dispatch
};

/** Data-cache parameters (Table 3 defaults). */
struct CacheConfig
{
    uint32_t size_bytes = 32 * 1024;
    int associativity = 2;
    uint32_t line_bytes = 32;
    int hit_latency = 1;
    int miss_latency = 6;
};

/**
 * Optional second-level cache (an extension beyond Table 3's flat
 * 6-cycle miss). When enabled, an L1 miss that hits in the L2 costs
 * the Table 3 miss latency; an L2 miss goes to memory.
 */
struct L2Config
{
    bool enabled = false;
    uint32_t size_bytes = 256 * 1024;
    int associativity = 4;
    uint32_t line_bytes = 32;
    int memory_latency = 24; //!< L1-to-data cycles on an L2 miss
};

/** Direction predictor family. */
enum class BpredKind
{
    Gshare,      //!< McFarling gshare (Table 3)
    Bimodal,     //!< per-pc 2-bit counters
    AlwaysTaken,
    NeverTaken,
};

/** Branch predictor parameters (Table 3 defaults). */
struct BpredConfig
{
    BpredKind kind = BpredKind::Gshare;
    int history_bits = 12;    //!< gshare global history length
    int counter_bits = 2;     //!< saturating counter width
    int table_entries = 4096; //!< 4K counters
    bool perfect = false;     //!< oracle conditional prediction
};

/**
 * How the simulator finds ready instructions each cycle. Both models
 * are observationally identical (cycle- and statistic-exact); the
 * knob exists so tests and benchmarks can compare them.
 *
 *  - EventDriven (default): a ready-event calendar. When an
 *    instruction issues, its completion time is known, so a wakeup
 *    event is pushed for each dependent at the exact cycle its value
 *    becomes usable in the dependent's cluster; selection draws from
 *    a maintained ready set. Idle stretches (fetch blocked, nothing
 *    ready) are skipped in one jump to the next event. Machines
 *    using SelectPolicy::Random or in-order issue fall back to the
 *    scan model internally: random selection shuffles the entire
 *    buffer (not just the ready set) and in-order issue stalls on
 *    the oldest *unready* instruction, so both are defined in terms
 *    of the full per-cycle candidate list.
 *  - LegacyScan: re-scan every buffered instruction every cycle,
 *    mirroring the broadcast-wakeup hardware of Section 4.2. Kept as
 *    the reference for equivalence tests and benchmarks.
 */
enum class IssueModel
{
    EventDriven,
    LegacyScan,
};

/**
 * Order in which ready instructions are considered by the selection
 * logic. The paper adopts position-based (oldest-first) selection
 * from the HP PA-8000 and cites Butler and Patt's finding that
 * overall performance is largely independent of the policy
 * (Section 4.3) — the alternatives exist to reproduce that claim.
 */
enum class SelectPolicy
{
    OldestFirst,
    YoungestFirst,
    Random,
};

/**
 * Inter-cluster result interconnect. The paper assumes a broadcast
 * (every other cluster sees a result after one extra cycle); Kemp and
 * Franklin's PEWs, discussed in Section 5.6.2, moves values over a
 * ring, where latency grows with hop distance — the Ring option
 * models that comparison for machines with more than two clusters.
 */
enum class ClusterInterconnect
{
    Broadcast, //!< uniform inter_cluster_extra to every cluster
    Ring,      //!< inter_cluster_extra per ring hop
};

/**
 * Functional-unit mix per cluster. Table 3 uses symmetric units (any
 * instruction on any unit); a non-symmetric mix adds per-class
 * structural hazards (integer/branch ops on ALUs, memory ops on
 * load/store units).
 */
struct FuMix
{
    int alu = 0;    //!< units for integer/FP computation
    int mem = 0;    //!< address-generation units for loads/stores
    int branch = 0; //!< branch-resolution units

    /** All zero = symmetric pool of fus_per_cluster units. */
    bool
    symmetric() const
    {
        return alu == 0 && mem == 0 && branch == 0;
    }

    int total() const { return alu + mem + branch; }
};

/** Full machine configuration. */
struct SimConfig
{
    std::string name = "baseline-8way";

    // Widths (Table 3).
    int fetch_width = 8;
    int rename_width = 8;
    int issue_width = 8;   //!< machine-wide per-cycle issue limit
    int retire_width = 16;
    int max_inflight = 128;

    // Issue buffering.
    IssueBufferStyle style = IssueBufferStyle::CentralWindow;
    SteeringPolicy steering = SteeringPolicy::None;
    /**
     * Flexible window entries: the total size for CentralWindow, the
     * per-cluster size for PerClusterWindow.
     */
    int window_size = 64;
    int fifos_per_cluster = 8; //!< Fifos style
    int fifo_depth = 8;
    /** Conceptual FIFO shape used by WindowFifo steering. */
    int concept_fifos_per_cluster = 8;
    int concept_fifo_depth = 4;

    // Execution resources.
    int num_clusters = 1;
    int fus_per_cluster = 8;  //!< symmetric functional units
    /** Typed unit mix per cluster (all zero = symmetric, Table 3). */
    FuMix fu_mix;
    int ls_ports = 4;         //!< cache load/store ports (machine-wide)
    int fu_latency = 1;       //!< Table 3: all units 1 cycle
    /** Result interconnect between clusters. */
    ClusterInterconnect interconnect = ClusterInterconnect::Broadcast;

    // Cluster bypass timing (Section 5.4): results are usable in the
    // producing cluster after fu_latency and in other clusters after
    // fu_latency + inter_cluster_extra.
    int inter_cluster_extra = 1;
    /**
     * Extra cycles before a result is usable even in its own cluster
     * (0 = fully bypassed). Models removing same-cycle bypass paths
     * (Section 4.5's discussion of incomplete bypassing, after Ahuja
     * et al.).
     */
    int local_bypass_extra = 0;
    /**
     * Depth of the wakeup+select loop in pipeline stages. 1 (the
     * paper's atomic operation) lets dependent instructions issue in
     * consecutive cycles; S > 1 inserts S-1 bubbles between
     * dependent issues (Figure 10).
     */
    int wakeup_select_stages = 1;
    /** Selection order among ready instructions. */
    SelectPolicy select_policy = SelectPolicy::OldestFirst;
    /** Ready-instruction discovery model (identical results). */
    IssueModel issue_model = IssueModel::EventDriven;
    /**
     * Compact the central window on issue so position priority stays
     * age-ordered (Section 4.3.1). When false, dispatch reuses freed
     * slots and priority is by slot position only.
     */
    bool window_compaction = true;
    /**
     * Issue strictly in program order (a "speed demon" pipeline,
     * Section 1): an instruction issues only after every older
     * instruction has issued, eliminating the wakeup/select CAM
     * entirely. Central-window, single-cluster machines only.
     */
    bool in_order_issue = false;
    /**
     * Cycles after a value's first bypass availability until it can
     * be read from a cluster's register file (used to classify
     * operands as bypassed vs read-from-RF for the Figure 17 stat).
     */
    int regfile_extra = 1;

    // Register file (Table 3: 120 int / 120 fp physical registers).
    int phys_int_regs = 120;
    int phys_fp_regs = 120;

    // Front end: cycles from fetch to rename-ready (decode depth).
    int frontend_latency = 2;
    /** Fetch buffer capacity (instructions). */
    int fetch_queue = 24;

    CacheConfig dcache;
    L2Config l2;
    BpredConfig bpred;

    uint64_t random_seed = 12345; //!< for Random steering

    /** Sanity-check parameter consistency; fatal on bad configs. */
    void validate() const;

    /** Total FIFO entries across the machine (Fifos style). */
    int
    totalFifoEntries() const
    {
        return num_clusters * fifos_per_cluster * fifo_depth;
    }
};

} // namespace cesp::uarch

#endif // CESP_UARCH_CONFIG_HPP
