/**
 * @file
 * Store queue supporting the paper's load issue rule (Table 3: "loads
 * may execute when all prior store addresses are known") and
 * store-to-load forwarding. Stores enter at dispatch; their address
 * becomes known to the hardware when they issue; they leave at commit.
 */

#ifndef CESP_UARCH_LSQ_HPP
#define CESP_UARCH_LSQ_HPP

#include <cstdint>
#include <deque>
#include <optional>
#include <set>

namespace cesp::uarch {

/** In-flight store tracking. */
class StoreQueue
{
  public:
    /** A store enters the queue at dispatch (program order).
     *  @p size is the access width in bytes (0 is treated as 1). */
    void dispatch(uint64_t seq, uint32_t addr, uint8_t size = 4);

    /** The store's address becomes known when it issues. */
    void markIssued(uint64_t seq);

    /** The store leaves the queue at commit. */
    void commit(uint64_t seq);

    /**
     * True if any store older than @p load_seq has not yet issued,
     * i.e. the load may not execute yet.
     */
    bool olderStoreUnissued(uint64_t load_seq) const;

    /**
     * Youngest issued store older than @p load_seq whose bytes fully
     * cover the load's [@p addr, @p addr + @p size); nullopt if none
     * (the load goes to the cache). The youngest *overlapping* store
     * decides the outcome: if it only partially covers the load (a
     * 1-byte store vs a 4-byte load, say) or has not issued, nothing
     * forwards — an older covering store would supply bytes the
     * overlapping store has since made stale.
     */
    std::optional<uint64_t> forwardFrom(uint64_t load_seq,
                                        uint32_t addr,
                                        uint8_t size = 4) const;

    size_t size() const { return stores_.size(); }
    void clear();

  private:
    struct Store
    {
        uint64_t seq;
        uint32_t addr;
        uint8_t size;
        bool issued = false;
    };

    std::deque<Store> stores_;       //!< program order (by seq)
    std::set<uint64_t> unissued_;    //!< seqs of unissued stores
};

} // namespace cesp::uarch

#endif // CESP_UARCH_LSQ_HPP
