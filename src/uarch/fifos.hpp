/**
 * @file
 * The FIFO set of the dependence-based microarchitecture (Section 5).
 *
 * A fixed pool of in-order FIFOs is divided among the clusters. Free
 * FIFOs live in per-cluster free pools; allocation follows the paper's
 * two-free-list policy (Section 5.5): requests are satisfied from the
 * *current* cluster's pool, and only when it is empty does the other
 * pool become current — keeping dynamically-adjacent instructions in
 * the same cluster. A FIFO returns to its cluster's pool when its last
 * instruction leaves (Section 5.1).
 *
 * The same structure doubles as the *conceptual* FIFOs of the
 * two-window dispatch-steering organization (Section 5.6.2), where
 * instructions may leave from any position (flexible issue), so
 * removal from the middle is supported alongside head pops.
 */

#ifndef CESP_UARCH_FIFOS_HPP
#define CESP_UARCH_FIFOS_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "uarch/dyninst.hpp"

namespace cesp::uarch {

/** A pool of per-cluster instruction FIFOs with free-list management. */
class FifoSet
{
  public:
    /**
     * @param num_clusters clusters sharing the pool
     * @param per_cluster FIFOs belonging to each cluster
     * @param depth maximum entries per FIFO
     */
    FifoSet(int num_clusters, int per_cluster, int depth);

    int numFifos() const { return static_cast<int>(fifos_.size()); }
    int depth() const { return depth_; }
    int clusterOf(int fifo) const;

    bool empty(int fifo) const { return at(fifo).entries.empty(); }

    bool
    full(int fifo) const
    {
        return static_cast<int>(at(fifo).entries.size()) >= depth_;
    }

    /** True if the FIFO is currently allocated (holds instructions). */
    bool allocated(int fifo) const { return at(fifo).allocated; }

    /** Oldest instruction in the FIFO (must be non-empty). */
    uint64_t head(int fifo) const;

    /** True if @p seq is present and is the newest entry. */
    bool isTail(int fifo, uint64_t seq) const;

    /** Append an instruction (FIFO must be allocated and not full). */
    void push(int fifo, uint64_t seq);

    /**
     * Remove the head (in-order issue). If the FIFO becomes empty it
     * is recycled to its cluster's free pool.
     */
    void popHead(int fifo);

    /**
     * Remove @p seq from any position (conceptual-FIFO mode).
     * Recycles the FIFO when it empties.
     */
    void remove(int fifo, uint64_t seq);

    /**
     * Allocate a free FIFO using the two-free-list policy. Clusters
     * for which @p cluster_ok returns false are skipped (used to
     * avoid clusters whose issue window is full). Returns the FIFO id
     * or -1 if none is available.
     */
    int allocate(const std::function<bool(int)> &cluster_ok);

    /** Allocate with no cluster restriction. */
    int
    allocate()
    {
        return allocate([](int) { return true; });
    }

    /** Ids of the current head instructions across allocated FIFOs. */
    std::vector<uint64_t> headSeqs() const;

    /** Instructions buffered across all FIFOs (O(1), maintained). */
    size_t totalEntries() const { return total_entries_; }

    /** Entries of one FIFO, oldest first (for tests / visualizers). */
    const std::deque<uint64_t> &
    contents(int fifo) const
    {
        return at(fifo).entries;
    }

    int freeCount(int cluster) const;

    /** Reset to the all-free state. */
    void clear();

  private:
    struct Fifo
    {
        std::deque<uint64_t> entries;
        bool allocated = false;
    };

    const Fifo &at(int fifo) const;
    Fifo &at(int fifo);
    void recycle(int fifo);

    int num_clusters_;
    int per_cluster_;
    int depth_;
    int current_cluster_ = 0; //!< two-free-list "current" pointer
    size_t total_entries_ = 0; //!< buffered instructions, all FIFOs
    std::vector<Fifo> fifos_;
    std::vector<std::deque<int>> free_; //!< per-cluster free pools
};

} // namespace cesp::uarch

#endif // CESP_UARCH_FIFOS_HPP
