/**
 * @file
 * Flexible issue window: a capacity-bounded set of waiting
 * instructions from which ready instructions may issue from any
 * position. Two organizations (paper Section 4.3.1):
 *
 *  - AgeCompacted: the window compacts toward the high-priority end
 *    every time instructions issue, so position priority equals age
 *    (oldest-first) — the policy the paper adopts from the HP
 *    PA-8000.
 *  - SlotPriority: no compaction. Dispatch fills the lowest free
 *    slot and priority is by slot position, so after issues create
 *    holes, priority is no longer strictly age order. The paper
 *    conjectures such a "restricted form of compacting" performs the
 *    same; bench/abl_window_compaction checks it.
 */

#ifndef CESP_UARCH_WINDOW_HPP
#define CESP_UARCH_WINDOW_HPP

#include <cstdint>
#include <vector>

namespace cesp::uarch {

/** Window priority organization. */
enum class WindowOrder
{
    AgeCompacted, //!< priority == age (compaction on issue)
    SlotPriority, //!< priority == slot index (no compaction)
};

/** Flexible issue window. */
class IssueWindow
{
  public:
    explicit IssueWindow(int capacity,
                         WindowOrder order = WindowOrder::AgeCompacted);

    int capacity() const { return capacity_; }
    int size() const { return size_; }
    bool full() const { return size_ >= capacity_; }
    bool empty() const { return size_ == 0; }
    WindowOrder order() const { return order_; }

    /**
     * Insert a dispatched instruction (must be youngest so far).
     * Returns the slot index that determines the instruction's
     * selection priority for SlotPriority windows, -1 for
     * AgeCompacted windows (whose priority is age, i.e. seq).
     */
    int insert(uint64_t seq);

    /** Remove an issued instruction. */
    void remove(uint64_t seq);

    /**
     * Waiting instructions in selection-priority order: ascending
     * age for AgeCompacted, slot order for SlotPriority.
     */
    const std::vector<uint64_t> &entries() const;

    void clear();

  private:
    static constexpr uint64_t kEmptySlot = UINT64_MAX;

    int capacity_;
    WindowOrder order_;
    int size_ = 0;
    std::vector<uint64_t> slots_;           //!< SlotPriority storage
    std::vector<uint64_t> compacted_;       //!< AgeCompacted storage
    mutable std::vector<uint64_t> scratch_; //!< entries() cache
};

} // namespace cesp::uarch

#endif // CESP_UARCH_WINDOW_HPP
