/**
 * @file
 * Implementation of the store queue.
 */

#include "uarch/lsq.hpp"

#include "common/logging.hpp"

namespace cesp::uarch {

void
StoreQueue::dispatch(uint64_t seq, uint32_t addr, uint8_t size)
{
    if (!stores_.empty() && stores_.back().seq >= seq)
        panic("StoreQueue: out-of-order dispatch");
    stores_.push_back({seq, addr, size ? size : uint8_t{1}, false});
    unissued_.insert(seq);
}

void
StoreQueue::markIssued(uint64_t seq)
{
    auto n = unissued_.erase(seq);
    if (!n)
        panic("StoreQueue: issue of unknown store");
    for (Store &s : stores_) {
        if (s.seq == seq) {
            s.issued = true;
            return;
        }
    }
    panic("StoreQueue: issued store not in queue");
}

void
StoreQueue::commit(uint64_t seq)
{
    if (stores_.empty() || stores_.front().seq != seq)
        panic("StoreQueue: out-of-order commit");
    if (!stores_.front().issued)
        panic("StoreQueue: commit of unissued store");
    stores_.pop_front();
}

bool
StoreQueue::olderStoreUnissued(uint64_t load_seq) const
{
    return !unissued_.empty() && *unissued_.begin() < load_seq;
}

std::optional<uint64_t>
StoreQueue::forwardFrom(uint64_t load_seq, uint32_t addr,
                        uint8_t size) const
{
    // 64-bit ends so a store at the top of the address space does
    // not wrap to "covers everything".
    uint64_t lo = addr;
    uint64_t hi = lo + (size ? size : 1);
    for (auto it = stores_.rbegin(); it != stores_.rend(); ++it) {
        if (it->seq >= load_seq)
            continue;
        uint64_t s_lo = it->addr;
        uint64_t s_hi = s_lo + it->size;
        if (s_hi <= lo || hi <= s_lo)
            continue; // disjoint — keep scanning older stores
        // The youngest overlapping store decides: forward only if it
        // fully covers the load and has issued. Anything less (a
        // partial overlap, or data not yet available) means an older
        // store cannot supply the load either — some of its bytes
        // are stale — so the load must go to the cache.
        if (it->issued && s_lo <= lo && hi <= s_hi)
            return it->seq;
        return std::nullopt;
    }
    return std::nullopt;
}

void
StoreQueue::clear()
{
    stores_.clear();
    unissued_.clear();
}

} // namespace cesp::uarch
