/**
 * @file
 * Implementation of the store queue.
 */

#include "uarch/lsq.hpp"

#include "common/logging.hpp"

namespace cesp::uarch {

void
StoreQueue::dispatch(uint64_t seq, uint32_t addr)
{
    if (!stores_.empty() && stores_.back().seq >= seq)
        panic("StoreQueue: out-of-order dispatch");
    stores_.push_back({seq, addr, false});
    unissued_.insert(seq);
}

void
StoreQueue::markIssued(uint64_t seq)
{
    auto n = unissued_.erase(seq);
    if (!n)
        panic("StoreQueue: issue of unknown store");
    for (Store &s : stores_) {
        if (s.seq == seq) {
            s.issued = true;
            return;
        }
    }
    panic("StoreQueue: issued store not in queue");
}

void
StoreQueue::commit(uint64_t seq)
{
    if (stores_.empty() || stores_.front().seq != seq)
        panic("StoreQueue: out-of-order commit");
    if (!stores_.front().issued)
        panic("StoreQueue: commit of unissued store");
    stores_.pop_front();
}

bool
StoreQueue::olderStoreUnissued(uint64_t load_seq) const
{
    return !unissued_.empty() && *unissued_.begin() < load_seq;
}

std::optional<uint64_t>
StoreQueue::forwardFrom(uint64_t load_seq, uint32_t addr) const
{
    uint32_t word = addr & ~3u;
    for (auto it = stores_.rbegin(); it != stores_.rend(); ++it) {
        if (it->seq >= load_seq)
            continue;
        if (it->issued && (it->addr & ~3u) == word)
            return it->seq;
    }
    return std::nullopt;
}

void
StoreQueue::clear()
{
    stores_.clear();
    unissued_.clear();
}

} // namespace cesp::uarch
