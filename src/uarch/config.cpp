/**
 * @file
 * Configuration validation.
 */

#include "uarch/config.hpp"

#include "common/logging.hpp"

namespace cesp::uarch {

void
SimConfig::validate() const
{
    if (num_clusters < 1 || num_clusters > kMaxClusters)
        fatal("%s: num_clusters %d outside [1, %d]", name.c_str(),
              num_clusters, kMaxClusters);
    if (fetch_width < 1 || rename_width < 1 || issue_width < 1 ||
        retire_width < 1)
        fatal("%s: pipeline widths must be positive", name.c_str());
    if (max_inflight < 1)
        fatal("%s: max_inflight must be positive", name.c_str());
    if (style == IssueBufferStyle::Fifos &&
        (fifos_per_cluster < 1 || fifo_depth < 1))
        fatal("%s: FIFO shape %dx%d invalid", name.c_str(),
              fifos_per_cluster, fifo_depth);
    if (style != IssueBufferStyle::Fifos && window_size < 1)
        fatal("%s: window_size must be positive", name.c_str());
    if (fus_per_cluster < 1 || ls_ports < 1)
        fatal("%s: execution resources must be positive",
              name.c_str());
    if (!fu_mix.symmetric() &&
        (fu_mix.alu < 1 || fu_mix.mem < 1 || fu_mix.branch < 1))
        fatal("%s: a typed FU mix needs at least one unit of each "
              "class", name.c_str());
    if (inter_cluster_extra < 0 || regfile_extra < 0 ||
        local_bypass_extra < 0)
        fatal("%s: bypass timing must be non-negative", name.c_str());
    if (wakeup_select_stages < 1)
        fatal("%s: wakeup_select_stages must be >= 1", name.c_str());
    if (phys_int_regs < 33 || phys_fp_regs < 33)
        fatal("%s: need more physical than architectural registers",
              name.c_str());
    if (l2.enabled && l2.memory_latency < dcache.miss_latency)
        fatal("%s: memory latency below the L2 hit latency",
              name.c_str());
    if (frontend_latency < 0 || fetch_queue < fetch_width)
        fatal("%s: bad front-end shape", name.c_str());

    bool steering_ok = false;
    switch (steering) {
      case SteeringPolicy::None:
        steering_ok = style == IssueBufferStyle::CentralWindow;
        break;
      case SteeringPolicy::DependenceFifo:
        steering_ok = style == IssueBufferStyle::Fifos;
        break;
      case SteeringPolicy::WindowFifo:
      case SteeringPolicy::Random:
        steering_ok = style == IssueBufferStyle::PerClusterWindow;
        break;
      case SteeringPolicy::ExecutionDriven:
        steering_ok = style == IssueBufferStyle::CentralWindow &&
            num_clusters > 1;
        break;
    }
    if (!steering_ok)
        fatal("%s: steering policy %d incompatible with issue-buffer "
              "style %d", name.c_str(), static_cast<int>(steering),
              static_cast<int>(style));
    if (in_order_issue &&
        (style != IssueBufferStyle::CentralWindow ||
         num_clusters != 1))
        fatal("%s: in-order issue is modeled for single-cluster "
              "central-window machines only", name.c_str());
    if (in_order_issue && select_policy != SelectPolicy::OldestFirst)
        fatal("%s: in-order issue requires oldest-first selection",
              name.c_str());
    if (!window_compaction && style != IssueBufferStyle::CentralWindow)
        fatal("%s: slot-priority windows are only modeled for the "
              "central-window organization", name.c_str());
    if (num_clusters > 1 && steering == SteeringPolicy::None)
        fatal("%s: clustered machines need a steering policy",
              name.c_str());
}

} // namespace cesp::uarch
