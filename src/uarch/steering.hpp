/**
 * @file
 * Dispatch-time instruction steering policies (paper Sections 5.1,
 * 5.5, 5.6).
 *
 *  - DependenceFifo: the Section 5.1 heuristic. An instruction whose
 *    operands are all available gets a new FIFO from the free pool; an
 *    instruction waiting on one outstanding operand is placed directly
 *    behind its producer if the producer is the tail of its FIFO (and
 *    the FIFO has room), else in a new FIFO; with two outstanding
 *    operands the left operand is tried first, then the right. If no
 *    empty FIFO is available the front end stalls. Clustered machines
 *    allocate from per-cluster free pools with the two-free-list
 *    "current pool" policy of Section 5.5.
 *  - WindowFifo (Section 5.6.2): the same heuristic applied to
 *    *conceptual* FIFOs overlaid on per-cluster flexible windows;
 *    clusters whose window is full are skipped.
 *  - Random (Section 5.6.3): uniformly random cluster, falling back
 *    to the other cluster when the chosen window is full.
 */

#ifndef CESP_UARCH_STEERING_HPP
#define CESP_UARCH_STEERING_HPP

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "uarch/config.hpp"
#include "uarch/dyninst.hpp"
#include "uarch/fifos.hpp"
#include "uarch/rename.hpp"
#include "uarch/window.hpp"

namespace cesp::uarch {

/** Callback giving steering read access to in-flight instructions. */
using RobLookup = std::function<const DynInst &(uint64_t seq)>;

/** Which Section 5.1 case fired (for statistics). */
enum class SteerKind
{
    NewFifo,    //!< operands available, or no suitable producer FIFO
    ChainLeft,  //!< appended behind the left operand's producer
    ChainRight, //!< appended behind the right operand's producer
    Window,     //!< window organization (no FIFO involved)
    Stall,      //!< no structural room anywhere
};

/** Where dispatch decided to put an instruction. */
struct SteerDecision
{
    bool ok = false;  //!< false = structural stall, retry next cycle
    int cluster = -1;
    int fifo = -1;    //!< real or conceptual FIFO id (-1 if none)
    SteerKind kind = SteerKind::Stall;
};

/** Dispatch-time steering engine. */
class Steering
{
  public:
    /**
     * @param cfg machine configuration (policy, shapes)
     * @param fifos FIFO set (real for Fifos style, conceptual for
     *        WindowFifo; unused for Random), may be null
     * @param windows per-cluster windows (null for Fifos style)
     */
    Steering(const SimConfig &cfg, FifoSet *fifos,
             std::vector<IssueWindow> *windows);

    /**
     * Decide placement for @p inst (whose source physical registers
     * are already resolved). @p now is the current cycle; @p rob
     * resolves producer sequence numbers.
     */
    SteerDecision decide(const DynInst &inst, const RenameState &rename,
                         uint64_t now, const RobLookup &rob);

  private:
    SteerDecision dependenceSteer(const DynInst &inst,
                                  const RenameState &rename,
                                  uint64_t now, const RobLookup &rob);
    SteerDecision randomSteer();

    /** FIFO behind @p preg's producer if usable, else -1. */
    int suitableFifo(int preg, const RenameState &rename, uint64_t now,
                     const RobLookup &rob) const;

    bool clusterHasSpace(int cluster) const;

    const SimConfig &cfg_;
    FifoSet *fifos_;
    std::vector<IssueWindow> *windows_;
    Rng rng_;
};

} // namespace cesp::uarch

#endif // CESP_UARCH_STEERING_HPP
