/**
 * @file
 * Fixed-width ASCII table printer used by every bench harness to emit
 * the rows/series of the paper's tables and figures in a uniform,
 * machine-greppable format.
 */

#ifndef CESP_COMMON_TABLE_HPP
#define CESP_COMMON_TABLE_HPP

#include <cstdio>
#include <string>
#include <vector>

namespace cesp {

/**
 * Column-aligned table. Add a header row, then data rows of strings
 * (use cell() helpers for numbers), then print().
 */
class Table
{
  public:
    explicit Table(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render to a string (title, rule, header, rule, rows, rule). */
    std::string render() const;

    /** Render and write to the given stream (default stdout). */
    void print(std::FILE *out = stdout) const;

    size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimals. */
std::string cell(double v, int decimals = 1);

/** Format an integer. */
std::string cell(int64_t v);
std::string cell(uint64_t v);
std::string cell(int v);

class StatGroup;

/**
 * Render a metrics registry (common/metrics.hpp) as a
 * metric/value/unit table: one row per counter, gauge, and derived
 * metric, and a summary row (mean, total, out-of-range counts) per
 * sample and histogram.
 */
Table statTable(const StatGroup &g);

/**
 * One bucket-level table per registered histogram (only non-empty
 * buckets, with a percent-of-samples column), for verbose reports.
 */
std::vector<Table> histogramTables(const StatGroup &g);

} // namespace cesp

#endif // CESP_COMMON_TABLE_HPP
