/**
 * @file
 * Implementation of checked integer parsing.
 */

#include "common/parse.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace cesp {

std::optional<long long>
parseInt(const std::string &s, long long min, long long max)
{
    if (s.empty() || std::isspace(static_cast<unsigned char>(s[0])))
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno == ERANGE || end != s.c_str() + s.size())
        return std::nullopt;
    if (v < min || v > max)
        return std::nullopt;
    return v;
}

} // namespace cesp
