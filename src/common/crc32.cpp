/**
 * @file
 * CRC-32C: hardware path via the SSE4.2 crc32 instruction when the
 * CPU has it, slice-by-8 table path otherwise. Both maintain the
 * same inverted running state, so checksums chain across either.
 */

#include "common/crc32.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#include <nmmintrin.h>
#define CESP_CRC32_HW 1
#endif

namespace cesp {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u; // CRC-32C 0x1EDC6F41, reflected

/** 8 x 256 lookup tables, built once at first use. */
struct Crc32Tables
{
    uint32_t t[8][256];

    Crc32Tables()
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c >> 1) ^ (kPoly & (~(c & 1u) + 1u));
            t[0][i] = c;
        }
        for (uint32_t i = 0; i < 256; ++i)
            for (int s = 1; s < 8; ++s)
                t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xffu];
    }
};

const Crc32Tables &
tables()
{
    static const Crc32Tables tab;
    return tab;
}

/** Software slice-by-8, on the inverted state. */
uint32_t
crcUpdateSw(uint32_t c, const uint8_t *p, size_t len)
{
    const Crc32Tables &tab = tables();

    // Process 8 bytes per step; the tables fold each byte's
    // contribution forward so the eight lookups are independent.
    while (len >= 8) {
        uint32_t lo = c ^ (static_cast<uint32_t>(p[0]) |
                           (static_cast<uint32_t>(p[1]) << 8) |
                           (static_cast<uint32_t>(p[2]) << 16) |
                           (static_cast<uint32_t>(p[3]) << 24));
        c = tab.t[7][lo & 0xffu] ^ tab.t[6][(lo >> 8) & 0xffu] ^
            tab.t[5][(lo >> 16) & 0xffu] ^ tab.t[4][lo >> 24] ^
            tab.t[3][p[4]] ^ tab.t[2][p[5]] ^ tab.t[1][p[6]] ^
            tab.t[0][p[7]];
        p += 8;
        len -= 8;
    }
    while (len--)
        c = (c >> 8) ^ tab.t[0][(c ^ *p++) & 0xffu];
    return c;
}

#ifdef CESP_CRC32_HW

__attribute__((target("sse4.2"))) uint32_t
crcUpdateHw(uint32_t c, const uint8_t *p, size_t len)
{
    uint64_t c64 = c;
    // Align to 8 bytes so the main loop's loads are aligned.
    while (len && (reinterpret_cast<uintptr_t>(p) & 7u)) {
        c64 = _mm_crc32_u8(static_cast<uint32_t>(c64), *p++);
        --len;
    }
    while (len >= 8) {
        uint64_t v;
        __builtin_memcpy(&v, p, 8);
        c64 = _mm_crc32_u64(c64, v);
        p += 8;
        len -= 8;
    }
    while (len--)
        c64 = _mm_crc32_u8(static_cast<uint32_t>(c64), *p++);
    return static_cast<uint32_t>(c64);
}

/**
 * Three crc32q chains interleaved in one loop. The instruction has
 * 3-cycle latency but 1-per-cycle throughput, so one chain is
 * latency-bound at 8 bytes per 3 cycles; three independent chains
 * fill the pipeline. @p stream_bytes must be a multiple of 8; the
 * finals are post-inverted CRCs of the three consecutive
 * stream_bytes-sized thirds of @p p (the first continuing from
 * @p init_a, the others fresh), for crcCombine to merge.
 */
__attribute__((target("sse4.2"))) void
crcHwTriple(const uint8_t *p, size_t stream_bytes, uint32_t init_a,
            uint32_t *fa, uint32_t *fb, uint32_t *fc)
{
    uint64_t a = init_a;
    uint64_t b = 0xFFFFFFFFu;
    uint64_t c = 0xFFFFFFFFu;
    const uint8_t *pb = p + stream_bytes;
    const uint8_t *pc = pb + stream_bytes;
    for (size_t i = 0; i < stream_bytes; i += 8) {
        uint64_t va, vb, vc;
        __builtin_memcpy(&va, p + i, 8);
        __builtin_memcpy(&vb, pb + i, 8);
        __builtin_memcpy(&vc, pc + i, 8);
        a = _mm_crc32_u64(a, va);
        b = _mm_crc32_u64(b, vb);
        c = _mm_crc32_u64(c, vc);
    }
    *fa = ~static_cast<uint32_t>(a);
    *fb = ~static_cast<uint32_t>(b);
    *fc = ~static_cast<uint32_t>(c);
}

bool
haveHwCrc()
{
    static const bool have = __builtin_cpu_supports("sse4.2");
    return have;
}

/** GF(2) matrix-vector product: each set bit of vec selects a row. */
uint32_t
gf2MatrixTimes(const uint32_t *mat, uint32_t vec)
{
    uint32_t sum = 0;
    while (vec) {
        if (vec & 1)
            sum ^= *mat;
        vec >>= 1;
        ++mat;
    }
    return sum;
}

void
gf2MatrixSquare(uint32_t *sq, const uint32_t *mat)
{
    for (int n = 0; n < 32; ++n)
        sq[n] = gf2MatrixTimes(mat, mat[n]);
}

/**
 * The linear operator that advances a final CRC over @p len zero
 * bytes — zlib's crc32_combine() with the per-bit matrix
 * applications composed into one 32x32 matrix, so a cached operator
 * turns each combine into a single matrix-vector product. Built by
 * the same square-and-multiply ladder zlib runs per combine.
 */
struct CrcShiftOperator
{
    uint64_t len = 0;
    bool valid = false;
    uint32_t mat[32];

    void
    build(uint64_t len2)
    {
        len = len2;
        valid = true;
        for (int n = 0; n < 32; ++n)
            mat[n] = 1u << n; // identity
        if (len2 == 0)
            return;
        uint32_t even[32], odd[32];
        odd[0] = kPoly; // matrix for one zero bit
        for (int n = 1; n < 32; ++n)
            odd[n] = 1u << (n - 1);
        gf2MatrixSquare(even, odd); // two bits
        gf2MatrixSquare(odd, even); // four bits
        bool use_even = true;
        while (true) {
            gf2MatrixSquare(use_even ? even : odd,
                            use_even ? odd : even);
            if (len2 & 1)
                compose(use_even ? even : odd);
            len2 >>= 1;
            if (len2 == 0)
                break;
            use_even = !use_even;
        }
    }

    /** mat = step * mat. */
    void
    compose(const uint32_t *step)
    {
        uint32_t next[32];
        for (int n = 0; n < 32; ++n)
            next[n] = gf2MatrixTimes(step, mat[n]);
        for (int n = 0; n < 32; ++n)
            mat[n] = next[n];
    }

    uint32_t
    apply(uint32_t crc) const
    {
        return gf2MatrixTimes(mat, crc);
    }
};

/**
 * CRC of the concatenation A||B from the CRCs of the parts (crc2
 * computed with seed 0). Two cached operators cover the verify
 * loop's access pattern — a run of equal-sized blocks plus one
 * shorter final block — so rebuilds are rare.
 */
uint32_t
crcCombine(uint32_t crc1, uint32_t crc2, uint64_t len2)
{
    static thread_local CrcShiftOperator ops[2];
    static thread_local int next_slot = 0;
    CrcShiftOperator *op = nullptr;
    for (auto &cand : ops)
        if (cand.valid && cand.len == len2)
            op = &cand;
    if (!op) {
        op = &ops[next_slot];
        next_slot ^= 1;
        op->build(len2);
    }
    return op->apply(crc1) ^ crc2;
}

/** Below this, one chain plus combine overhead beats three. */
constexpr size_t kTripleThreshold = 3 * 8192;

#endif // CESP_CRC32_HW

} // namespace

uint32_t
crc32(const void *data, size_t len, uint32_t seed)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint32_t c = ~seed;
#ifdef CESP_CRC32_HW
    if (haveHwCrc()) {
        if (len >= kTripleThreshold) {
            size_t sl = (len / 24) * 8;
            uint32_t fa, fb, fc;
            crcHwTriple(p, sl, c, &fa, &fb, &fc);
            uint32_t comb = crcCombine(fa, fb, sl);
            comb = crcCombine(comb, fc, sl);
            return ~crcUpdateHw(~comb, p + 3 * sl, len - 3 * sl);
        }
        return ~crcUpdateHw(c, p, len);
    }
#endif
    return ~crcUpdateSw(c, p, len);
}

namespace detail {

uint32_t
crc32Portable(const void *data, size_t len, uint32_t seed)
{
    return ~crcUpdateSw(~seed, static_cast<const uint8_t *>(data),
                        len);
}

} // namespace detail

} // namespace cesp
