/**
 * @file
 * Deterministic pseudo-random number generator used everywhere a random
 * choice is needed (synthetic traces, random steering, workload data).
 * A fixed algorithm (xorshift64*) keeps simulation results reproducible
 * across platforms and standard-library versions.
 */

#ifndef CESP_COMMON_RNG_HPP
#define CESP_COMMON_RNG_HPP

#include <cstdint>

namespace cesp {

/** xorshift64* PRNG with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // splitmix64 scramble so that small seeds produce good states.
        uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        state_ = z ^ (z >> 31);
        if (state_ == 0)
            state_ = 0x2545f4914f6cdd1dULL;
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    uint64_t state_;
};

} // namespace cesp

#endif // CESP_COMMON_RNG_HPP
