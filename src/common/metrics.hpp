/**
 * @file
 * Self-describing metrics registry. A StatGroup is an ordered
 * collection of named, documented metrics — counters, gauges,
 * derived ratios, samples, and histograms — that supports reset,
 * merge (for combining per-worker results), visitation, and lossless
 * export to JSON and CSV. The simulator's SimStats, the sweep
 * engine's aggregates, and the CLI/bench `--json`/`--csv` modes are
 * all built on it: registering a metric once gives it a place in
 * every report, export, and comparison.
 *
 * Exported documents are schema-versioned (kStatsSchemaVersion) and
 * keep registration order, so exports are stable and diffable across
 * runs. StatGroup::fromJson parses the emitted JSON back into an
 * equal group (sameSchema + sameValues), making every experiment
 * record round-trippable.
 */

#ifndef CESP_COMMON_METRICS_HPP
#define CESP_COMMON_METRICS_HPP

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"

namespace cesp {

/** Version stamped into (and checked when parsing) every export. */
constexpr int kStatsSchemaVersion = 1;

/** Identifier written in the "schema" field of a group document. */
constexpr const char *kStatsSchemaName = "cesp.statgroup";

/** Identifier written in every JSON-lines stream record. */
constexpr const char *kStatsStreamSchemaName = "cesp.statgroup.jsonl";

/** What a registered metric is and how it merges. */
enum class StatKind
{
    Counter,   //!< uint64_t, accumulated; merge adds
    Gauge,     //!< double point value (e.g. a clock estimate); merge adds
    Derived,   //!< scale * num / den over two counters; never stored
    Sample,    //!< running count/sum/min/max; merge combines
    Histogram, //!< fixed-width buckets + under/overflow; merge adds
};

/** Lowercase name used in exports ("counter", "gauge", ...). */
const char *statKindName(StatKind k);

/** Metadata and storage slot of one registered metric. */
struct StatEntry
{
    std::string name; //!< unique within the group; export key
    std::string unit; //!< human-readable unit ("cycles", "%", ...)
    std::string desc; //!< one-line description
    StatKind kind;
    size_t store; //!< index into the group's per-kind storage

    // Derived only: operand counter names and resolved storage slots.
    std::string num, den;
    size_t num_store = 0, den_store = 0;
    double scale = 1.0;
};

/** Typed callbacks for StatGroup::visit. Override what you need. */
struct StatVisitor
{
    virtual ~StatVisitor() = default;
    virtual void counter(const StatEntry &, uint64_t) {}
    virtual void gauge(const StatEntry &, double) {}
    virtual void derived(const StatEntry &, double) {}
    virtual void sample(const StatEntry &, const Sample &) {}
    virtual void histogram(const StatEntry &, const Histogram &) {}
};

/**
 * Minimal streaming JSON writer (objects, arrays, scalars) shared by
 * StatGroup::toJson and the harnesses that compose multi-group
 * documents. Doubles are written with enough digits to round-trip
 * exactly; strings are escaped per RFC 8259. A negative indent
 * selects compact mode: no newlines or indentation, for one-line
 * JSON-lines records.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(int indent = 2) : indent_(indent) {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();
    /** Key of the next value (inside an object). */
    void key(std::string_view k);
    void value(std::string_view s);
    void value(const char *s) { value(std::string_view(s)); }
    void value(double v);
    void value(uint64_t v);
    void value(int v) { value(static_cast<uint64_t>(v)); }
    void value(bool v);

    /** The finished document (call after the last end*()). */
    std::string str() const { return out_; }

  private:
    void separate(); //!< comma/newline/indent before a new element
    std::string out_;
    int indent_;
    int depth_ = 0;
    bool need_comma_ = false;
    bool after_key_ = false;
};

/**
 * The registry. Metrics are registered once (name, unit, description)
 * and addressed either by the storage index returned at registration
 * (O(1), used by hot accessors) or by name. Registration order is the
 * export order and never changes afterwards.
 */
class StatGroup
{
  public:
    StatGroup() = default;
    /** @param name  what this group measures (export "group" field)
     *  @param label instance label, e.g. a configuration name */
    explicit StatGroup(std::string name, std::string label = "");

    // ---- registration (returns the per-kind storage index) ----
    size_t addCounter(std::string name, std::string unit,
                      std::string desc, uint64_t value = 0);
    size_t addGauge(std::string name, std::string unit,
                    std::string desc, double value = 0.0);
    /** value = scale * counter(num) / counter(den); 0 when the
     *  denominator is 0. Both operands must already be registered. */
    size_t addDerived(std::string name, std::string unit,
                      std::string desc, std::string num,
                      std::string den, double scale = 1.0);
    size_t addSample(std::string name, std::string unit,
                     std::string desc);
    /** @p growable histograms auto-range (see Histogram); @p buckets
     *  is then only the initial shape. */
    size_t addHistogram(std::string name, std::string unit,
                        std::string desc, size_t buckets, double width,
                        bool growable = false);

    // ---- identity ----
    const std::string &name() const { return name_; }
    std::string &label() { return label_; }
    const std::string &label() const { return label_; }

    // ---- indexed access (hot paths) ----
    uint64_t &counterAt(size_t i) { return counters_[i]; }
    uint64_t counterAt(size_t i) const { return counters_[i]; }
    double &gaugeAt(size_t i) { return gauges_[i]; }
    double gaugeAt(size_t i) const { return gauges_[i]; }
    Sample &sampleAt(size_t i) { return samples_[i]; }
    const Sample &sampleAt(size_t i) const { return samples_[i]; }
    Histogram &histogramAt(size_t i) { return histograms_[i]; }
    const Histogram &histogramAt(size_t i) const
    {
        return histograms_[i];
    }
    /** Evaluate derived metric @p i (storage order). */
    double derivedAt(size_t i) const;

    size_t counters() const { return counters_.size(); }
    size_t histograms() const { return histograms_.size(); }

    // ---- named access ----
    const std::vector<StatEntry> &entries() const { return entries_; }
    /** nullptr when no metric has that name. */
    const StatEntry *find(std::string_view name) const;
    /** Counter value by name; fatal if absent or not a counter. */
    uint64_t counter(std::string_view name) const;
    /** Scalar value of a counter, gauge, or derived metric by name;
     *  fatal if absent or a distribution. */
    double value(std::string_view name) const;

    // ---- whole-group operations ----
    /** Zero every metric; registration is preserved. */
    void reset();
    /** Accumulate @p other into this group, entry by entry. The two
     *  schemas (names, kinds, shapes) must match; fatal otherwise. */
    void merge(const StatGroup &other);
    /** Same metrics in the same order with the same shapes. */
    bool sameSchema(const StatGroup &other) const;
    /** Why the schemas differ: names the first differing entry (its
     *  position, names, kinds, or histogram shape) rather than just
     *  voting no. Empty string when the schemas match. */
    std::string schemaDiff(const StatGroup &other) const;
    /** sameSchema and every stored value equal. */
    bool sameValues(const StatGroup &other) const;
    /**
     * The change accumulated since @p prev, an earlier snapshot of
     * this group: counters, gauges, sample count/sum, and histogram
     * buckets subtract; derived metrics recompute over the delta
     * counters. Sample min/max are NOT invertible, so the delta keeps
     * the cumulative extremes. Schemas must match (fatal otherwise)
     * and every monotonic value must be >= its value in @p prev.
     */
    StatGroup deltaSince(const StatGroup &prev) const;
    /** Human-readable list of differing entries (for test output). */
    std::string diff(const StatGroup &other) const;
    /** Call the kind-matching visitor method for every entry. */
    void visit(StatVisitor &v) const;

    // ---- export / import ----
    /** Write this group as one JSON object into @p w. */
    void writeJson(JsonWriter &w) const;
    /** Complete schema-versioned JSON document. */
    std::string toJson(int indent = 2) const;
    /** CSV: a header comment, then one row per scalar metric;
     *  samples and histograms are flattened to dotted names. */
    std::string toCsv() const;
    /**
     * Parse a document produced by toJson back into @p out (the
     * group is rebuilt from scratch: schema and values). Returns
     * false and sets @p error on malformed input or a schema-version
     * mismatch.
     */
    static bool fromJson(const std::string &text, StatGroup &out,
                         std::string *error);

  private:
    size_t addEntry(StatKind kind, std::string name, std::string unit,
                    std::string desc);

    std::string name_ = "stats";
    std::string label_;
    std::vector<StatEntry> entries_;
    std::vector<uint64_t> counters_;
    std::vector<double> gauges_;
    std::vector<Sample> samples_;
    std::vector<Histogram> histograms_;
    size_t derived_count_ = 0; //!< derived metrics have no storage
};

/**
 * Multi-group document ("cesp.statgroup.list"): every run's group
 * under "groups" plus any aggregate/summary groups under "merged".
 * Used by the CLI sweep modes and the bench harnesses' --json.
 */
std::string statGroupListJson(const std::vector<StatGroup> &groups,
                              const std::vector<StatGroup> &merged);

/** Concatenated per-group CSV blocks separated by blank lines. */
std::string statGroupListCsv(const std::vector<StatGroup> &groups);

/**
 * Write @p text to @p path, with "-" meaning stdout. Returns false
 * (and sets @p error) on any I/O failure.
 */
bool writeTextOutput(const std::string &path, const std::string &text,
                     std::string *error);

// ---------------------------------------------------------------------
// JSON-lines streaming ("cesp.statgroup.jsonl")

/**
 * Identity of one stream record: what finished (a whole run, one
 * shard of a run, an interval snapshot, or a merged aggregate) and
 * where it belongs in the experiment. Negative indices are omitted
 * from the record.
 */
struct StatStreamMeta
{
    std::string kind = "run"; //!< "run", "shard", "snapshot", "merged"
    int64_t task = -1;        //!< task index within the sweep
    int64_t shard = -1;       //!< shard window within the task
    int64_t interval = -1;    //!< snapshot interval within the run
};

/**
 * Appends one compact, self-describing JSON record per line to a file
 * ("-" = stdout). append() is thread-safe: sweep workers call it as
 * runs finish, so a million-point sweep streams results in O(1)
 * memory instead of buffering a cesp.statgroup.list document.
 * Records carry a monotonic "seq" assigned under the lock; consumers
 * order by the task/shard/interval indices, not by arrival.
 */
class StatStreamWriter
{
  public:
    explicit StatStreamWriter(const std::string &path);
    ~StatStreamWriter();
    StatStreamWriter(const StatStreamWriter &) = delete;
    StatStreamWriter &operator=(const StatStreamWriter &) = delete;

    bool ok() const { return file_ != nullptr && !failed_; }
    const std::string &error() const { return error_; }

    /** Write one record; @p delta (optional) is the per-interval
     *  change emitted alongside a cumulative snapshot. Returns false
     *  after any I/O failure (the stream stays failed). */
    bool append(const StatStreamMeta &meta, const StatGroup &stats,
                const StatGroup *delta = nullptr);

  private:
    std::FILE *file_ = nullptr;
    bool owns_file_ = false;
    bool failed_ = false;
    std::string error_;
    std::string path_;
    uint64_t seq_ = 0;
    std::mutex mu_;
};

/** One parsed stream record (indices are -1 when absent). */
struct StatStreamRecord
{
    uint64_t seq = 0;
    std::string kind;
    int64_t task = -1;
    int64_t shard = -1;
    int64_t interval = -1;
    StatGroup stats;
    bool has_delta = false;
    StatGroup delta;
};

/**
 * Parse a JSON-lines stream produced by StatStreamWriter. Blank lines
 * are skipped; any malformed line fails the whole read. Records are
 * returned in file order.
 */
bool readStatStream(const std::string &text,
                    std::vector<StatStreamRecord> &out,
                    std::string *error);

/**
 * Load StatGroups from any export this stack produces: a single
 * "cesp.statgroup" document, a "cesp.statgroup.list" document (its
 * "groups", or "merged" when groups is empty), or a
 * "cesp.statgroup.jsonl" stream. Stream records are filtered to the
 * most aggregated kind present ("run", else "merged", else "shard",
 * else "snapshot" cumulatives) and ordered by their task index, so
 * two streams of the same sweep compare positionally regardless of
 * worker arrival order. Returns false and sets @p error on I/O or
 * parse failure.
 */
bool loadStatGroups(const std::string &path,
                    std::vector<StatGroup> &out, std::string *error);

} // namespace cesp

#endif // CESP_COMMON_METRICS_HPP
