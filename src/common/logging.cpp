/**
 * @file
 * Implementation of the logging helpers.
 */

#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace cesp {

namespace {

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
emit(const char *tag, const char *fmt, va_list ap)
{
    std::string msg = vstrprintf(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

} // namespace cesp
