/**
 * @file
 * Status and error reporting helpers, following the gem5 convention:
 * fatal() for user errors (bad configuration, malformed input),
 * panic() for internal invariant violations (simulator bugs), and
 * warn()/inform() for non-fatal notices.
 */

#ifndef CESP_COMMON_LOGGING_HPP
#define CESP_COMMON_LOGGING_HPP

#include <cstdarg>
#include <string>

namespace cesp {

/**
 * Report an unrecoverable user-level error (bad config, bad input)
 * and exit(1). Printf-style formatting.
 */
[[noreturn]] void fatal(const char *fmt, ...);

/**
 * Report an internal invariant violation (a cesp bug) and abort().
 * Printf-style formatting.
 */
[[noreturn]] void panic(const char *fmt, ...);

/** Report a suspicious but survivable condition to stderr. */
void warn(const char *fmt, ...);

/** Report an informational message to stderr. */
void inform(const char *fmt, ...);

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...);

} // namespace cesp

#endif // CESP_COMMON_LOGGING_HPP
