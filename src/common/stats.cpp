/**
 * @file
 * Implementation of statistics helpers.
 */

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hpp"

namespace cesp {

void
Sample::merge(const Sample &o)
{
    if (!o.count_)
        return;
    if (!count_) {
        *this = o;
        return;
    }
    sum_ += o.sum_;
    count_ += o.count_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
}

void
Sample::restore(uint64_t count, double sum, double min, double max)
{
    count_ = count;
    sum_ = sum;
    min_ = min;
    max_ = max;
}

bool
Sample::operator==(const Sample &o) const
{
    return count_ == o.count_ && sum_ == o.sum_ && min_ == o.min_ &&
        max_ == o.max_;
}

double
Histogram::mean() const
{
    uint64_t in_range = inRange();
    if (!in_range)
        return 0.0;
    double s = 0.0;
    for (size_t i = 0; i < counts_.size(); ++i)
        s += (static_cast<double>(i) + 0.5) * width_ *
            static_cast<double>(counts_[i]);
    return s / static_cast<double>(in_range);
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = underflow_ = overflow_ = 0;
}

void
Histogram::merge(const Histogram &o)
{
    if (o.counts_.size() != counts_.size() || o.width_ != width_)
        fatal("Histogram::merge: shape mismatch (%zu x %g vs %zu x %g)",
              counts_.size(), width_, o.counts_.size(), o.width_);
    for (size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += o.counts_[i];
    total_ += o.total_;
    underflow_ += o.underflow_;
    overflow_ += o.overflow_;
}

void
Histogram::restore(std::vector<uint64_t> counts, uint64_t underflow,
                   uint64_t overflow)
{
    if (counts.size() != counts_.size())
        fatal("Histogram::restore: %zu counts for a %zu-bucket "
              "histogram", counts.size(), counts_.size());
    counts_ = std::move(counts);
    underflow_ = underflow;
    overflow_ = overflow;
    total_ = std::accumulate(counts_.begin(), counts_.end(),
                             underflow_ + overflow_);
}

bool
Histogram::operator==(const Histogram &o) const
{
    return width_ == o.width_ && counts_ == o.counts_ &&
        total_ == o.total_ && underflow_ == o.underflow_ &&
        overflow_ == o.overflow_;
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += std::log(v);
    return std::exp(s / static_cast<double>(values.size()));
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

} // namespace cesp
