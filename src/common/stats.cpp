/**
 * @file
 * Implementation of statistics helpers.
 */

#include "common/stats.hpp"

#include <cmath>

namespace cesp {

double
Histogram::mean() const
{
    if (!total_)
        return 0.0;
    double s = 0.0;
    for (size_t i = 0; i < counts_.size(); ++i)
        s += (static_cast<double>(i) + 0.5) * width_ *
            static_cast<double>(counts_[i]);
    return s / static_cast<double>(total_);
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += std::log(v);
    return std::exp(s / static_cast<double>(values.size()));
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

} // namespace cesp
