/**
 * @file
 * Implementation of statistics helpers.
 */

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hpp"

namespace cesp {

void
Sample::merge(const Sample &o)
{
    if (!o.count_)
        return;
    if (!count_) {
        *this = o;
        return;
    }
    sum_ += o.sum_;
    count_ += o.count_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
}

void
Sample::restore(uint64_t count, double sum, double min, double max)
{
    count_ = count;
    sum_ = sum;
    min_ = min;
    max_ = max;
}

bool
Sample::operator==(const Sample &o) const
{
    return count_ == o.count_ && sum_ == o.sum_ && min_ == o.min_ &&
        max_ == o.max_;
}

double
Histogram::mean() const
{
    uint64_t in_range = inRange();
    if (!in_range)
        return 0.0;
    double s = 0.0;
    for (size_t i = 0; i < counts_.size(); ++i)
        s += (static_cast<double>(i) + 0.5) * width_ *
            static_cast<double>(counts_[i]);
    return s / static_cast<double>(in_range);
}

void
Histogram::reset()
{
    counts_.assign(base_buckets_, 0);
    total_ = underflow_ = overflow_ = 0;
}

void
Histogram::grow(size_t buckets)
{
    if (buckets <= counts_.size())
        return;
    // Reserve geometrically so a slowly rising sample stream grows in
    // O(log n) reallocations, but keep the logical size exactly
    // max-seen-bucket + 1 so the export shape is order-independent.
    if (buckets > counts_.capacity())
        counts_.reserve(std::max(buckets, counts_.capacity() * 2));
    counts_.resize(buckets, 0);
}

void
Histogram::merge(const Histogram &o)
{
    if (o.width_ != width_ || o.growable_ != growable_ ||
        (!growable_ && o.counts_.size() != counts_.size()))
        fatal("Histogram::merge: shape mismatch (%zu x %g%s vs %zu x "
              "%g%s)",
              counts_.size(), width_, growable_ ? " growable" : "",
              o.counts_.size(), o.width_,
              o.growable_ ? " growable" : "");
    grow(o.counts_.size());
    for (size_t i = 0; i < o.counts_.size(); ++i)
        counts_[i] += o.counts_[i];
    total_ += o.total_;
    underflow_ += o.underflow_;
    overflow_ += o.overflow_;
}

void
Histogram::subtract(const Histogram &prev)
{
    if (prev.width_ != width_ || prev.growable_ != growable_ ||
        prev.counts_.size() > counts_.size())
        fatal("Histogram::subtract: %zu x %g is not an earlier "
              "snapshot of %zu x %g",
              prev.counts_.size(), prev.width_, counts_.size(), width_);
    for (size_t i = 0; i < prev.counts_.size(); ++i) {
        if (prev.counts_[i] > counts_[i])
            fatal("Histogram::subtract: bucket %zu decreased "
                  "(%llu -> %llu)",
                  i, static_cast<unsigned long long>(prev.counts_[i]),
                  static_cast<unsigned long long>(counts_[i]));
        counts_[i] -= prev.counts_[i];
    }
    if (prev.total_ > total_ || prev.underflow_ > underflow_ ||
        prev.overflow_ > overflow_)
        fatal("Histogram::subtract: totals decreased since snapshot");
    total_ -= prev.total_;
    underflow_ -= prev.underflow_;
    overflow_ -= prev.overflow_;
}

void
Histogram::restore(std::vector<uint64_t> counts, uint64_t underflow,
                   uint64_t overflow)
{
    if (!growable_ && counts.size() != counts_.size())
        fatal("Histogram::restore: %zu counts for a %zu-bucket "
              "histogram", counts.size(), counts_.size());
    counts_ = std::move(counts);
    underflow_ = underflow;
    overflow_ = overflow;
    total_ = std::accumulate(counts_.begin(), counts_.end(),
                             underflow_ + overflow_);
}

bool
Histogram::operator==(const Histogram &o) const
{
    if (width_ != o.width_ || growable_ != o.growable_ ||
        total_ != o.total_ || underflow_ != o.underflow_ ||
        overflow_ != o.overflow_)
        return false;
    // Compare bucket-wise with missing trailing buckets as zero, so a
    // reset-then-refilled histogram equals a fresh one with the same
    // samples even if their array sizes differ.
    size_t n = std::max(counts_.size(), o.counts_.size());
    for (size_t i = 0; i < n; ++i) {
        uint64_t a = i < counts_.size() ? counts_[i] : 0;
        uint64_t b = i < o.counts_.size() ? o.counts_[i] : 0;
        if (a != b)
            return false;
    }
    return true;
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += std::log(v);
    return std::exp(s / static_cast<double>(values.size()));
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

} // namespace cesp
