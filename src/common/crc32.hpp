/**
 * @file
 * CRC-32C (Castagnoli, polynomial 0x1EDC6F41) over byte buffers. Used
 * by the v2 trace file format to detect payload corruption before a
 * simulation consumes a cached trace. Castagnoli rather than the
 * IEEE 802.3 polynomial because x86 has carried a crc32 instruction
 * for it since SSE4.2: the hardware path (runtime-dispatched, with a
 * slice-by-8 software fallback) checksums at several GB/s, so
 * verifying a memory-mapped trace at open time costs a small fraction
 * of what record-by-record decoding did.
 */

#ifndef CESP_COMMON_CRC32_HPP
#define CESP_COMMON_CRC32_HPP

#include <cstddef>
#include <cstdint>

namespace cesp {

/**
 * CRC-32C of @p len bytes at @p data, continuing from @p seed (pass 0
 * to start a new checksum; chain calls to checksum discontiguous
 * buffers).
 */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

namespace detail {

/**
 * The table-driven fallback, always available regardless of CPU.
 * Exposed so tests can prove the hardware path computes the same
 * function; everything else should call crc32().
 */
uint32_t crc32Portable(const void *data, size_t len,
                       uint32_t seed = 0);

} // namespace detail

} // namespace cesp

#endif // CESP_COMMON_CRC32_HPP
