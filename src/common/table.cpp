/**
 * @file
 * Implementation of the ASCII table printer.
 */

#include "common/table.hpp"

#include "common/logging.hpp"
#include "common/metrics.hpp"

#include <algorithm>
#include <cctype>

namespace cesp {

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    // Compute column widths across header and all rows.
    size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());
    std::vector<size_t> width(ncols, 0);
    auto widen = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    size_t total = 0;
    for (size_t w : width)
        total += w + 2;

    auto fmt_row = [&](const std::vector<std::string> &r) {
        std::string s;
        for (size_t i = 0; i < ncols; ++i) {
            const std::string &c = i < r.size() ? r[i] : std::string();
            // Right-align numeric-looking cells, left-align the rest.
            bool numeric = !c.empty() &&
                (std::isdigit(static_cast<unsigned char>(c[0])) ||
                 c[0] == '-' || c[0] == '+');
            if (numeric && i > 0) {
                s += std::string(width[i] - c.size(), ' ') + c;
            } else {
                s += c + std::string(width[i] - c.size(), ' ');
            }
            s += "  ";
        }
        while (!s.empty() && s.back() == ' ')
            s.pop_back();
        s += '\n';
        return s;
    };

    std::string rule(total, '-');
    rule += '\n';

    std::string out;
    if (!title_.empty())
        out += title_ + '\n';
    out += rule;
    if (!header_.empty()) {
        out += fmt_row(header_);
        out += rule;
    }
    for (const auto &r : rows_)
        out += fmt_row(r);
    out += rule;
    return out;
}

void
Table::print(std::FILE *out) const
{
    std::string s = render();
    std::fwrite(s.data(), 1, s.size(), out);
}

std::string
cell(double v, int decimals)
{
    return strprintf("%.*f", decimals, v);
}

std::string
cell(int64_t v)
{
    return strprintf("%lld", static_cast<long long>(v));
}

std::string
cell(uint64_t v)
{
    return strprintf("%llu", static_cast<unsigned long long>(v));
}

std::string
cell(int v)
{
    return cell(static_cast<int64_t>(v));
}

namespace {

/** Builds the metric/value/unit rows of statTable. */
struct TableVisitor : StatVisitor
{
    Table &t;
    explicit TableVisitor(Table &t) : t(t) {}

    void
    counter(const StatEntry &e, uint64_t v) override
    {
        t.row({e.name, cell(v), e.unit});
    }

    void
    gauge(const StatEntry &e, double v) override
    {
        t.row({e.name, cell(v, 3), e.unit});
    }

    void
    derived(const StatEntry &e, double v) override
    {
        t.row({e.name, cell(v, 3), e.unit});
    }

    void
    sample(const StatEntry &e, const Sample &s) override
    {
        t.row({e.name,
               strprintf("mean %.2f [%g, %g] n=%llu", s.mean(),
                         s.min(), s.max(),
                         static_cast<unsigned long long>(s.count())),
               e.unit});
    }

    void
    histogram(const StatEntry &e, const Histogram &h) override
    {
        std::string v = strprintf(
            "mean %.1f over %llu samples", h.mean(),
            static_cast<unsigned long long>(h.total()));
        if (h.underflow() || h.overflow())
            v += strprintf(" (%llu under, %llu over)",
                           static_cast<unsigned long long>(
                               h.underflow()),
                           static_cast<unsigned long long>(
                               h.overflow()));
        t.row({e.name, v, e.unit});
    }
};

} // namespace

Table
statTable(const StatGroup &g)
{
    std::string title = g.name();
    if (!g.label().empty())
        title += ": " + g.label();
    Table t(title);
    t.header({"metric", "value", "unit"});
    TableVisitor v(t);
    g.visit(v);
    return t;
}

std::vector<Table>
histogramTables(const StatGroup &g)
{
    struct HistVisitor : StatVisitor
    {
        std::vector<Table> tables;

        void
        histogram(const StatEntry &e, const Histogram &h) override
        {
            Table t(e.name + " (" + e.unit + ")");
            t.header({"bucket", "count", "%"});
            if (h.underflow())
                t.row({"< 0", cell(h.underflow()),
                       cell(100.0 * static_cast<double>(h.underflow()) /
                            static_cast<double>(h.total()))});
            for (size_t i = 0; i < h.buckets(); ++i) {
                if (!h.bucket(i))
                    continue;
                t.row({cell(static_cast<double>(i) * h.width(),
                            h.width() == 1.0 ? 0 : 2),
                       cell(h.bucket(i)), cell(100.0 * h.fraction(i))});
            }
            if (h.overflow())
                t.row({strprintf(">= %g",
                                 h.width() *
                                     static_cast<double>(h.buckets())),
                       cell(h.overflow()),
                       cell(100.0 * static_cast<double>(h.overflow()) /
                            static_cast<double>(h.total()))});
            tables.push_back(std::move(t));
        }
    } v;
    g.visit(v);
    return v.tables;
}

} // namespace cesp
