/**
 * @file
 * Implementation of the ASCII table printer.
 */

#include "common/table.hpp"

#include "common/logging.hpp"

#include <algorithm>
#include <cctype>

namespace cesp {

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    // Compute column widths across header and all rows.
    size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());
    std::vector<size_t> width(ncols, 0);
    auto widen = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    size_t total = 0;
    for (size_t w : width)
        total += w + 2;

    auto fmt_row = [&](const std::vector<std::string> &r) {
        std::string s;
        for (size_t i = 0; i < ncols; ++i) {
            const std::string &c = i < r.size() ? r[i] : std::string();
            // Right-align numeric-looking cells, left-align the rest.
            bool numeric = !c.empty() &&
                (std::isdigit(static_cast<unsigned char>(c[0])) ||
                 c[0] == '-' || c[0] == '+');
            if (numeric && i > 0) {
                s += std::string(width[i] - c.size(), ' ') + c;
            } else {
                s += c + std::string(width[i] - c.size(), ' ');
            }
            s += "  ";
        }
        while (!s.empty() && s.back() == ' ')
            s.pop_back();
        s += '\n';
        return s;
    };

    std::string rule(total, '-');
    rule += '\n';

    std::string out;
    if (!title_.empty())
        out += title_ + '\n';
    out += rule;
    if (!header_.empty()) {
        out += fmt_row(header_);
        out += rule;
    }
    for (const auto &r : rows_)
        out += fmt_row(r);
    out += rule;
    return out;
}

void
Table::print(std::FILE *out) const
{
    std::string s = render();
    std::fwrite(s.data(), 1, s.size(), out);
}

std::string
cell(double v, int decimals)
{
    return strprintf("%.*f", decimals, v);
}

std::string
cell(int64_t v)
{
    return strprintf("%lld", static_cast<long long>(v));
}

std::string
cell(uint64_t v)
{
    return strprintf("%llu", static_cast<unsigned long long>(v));
}

std::string
cell(int v)
{
    return cell(static_cast<int64_t>(v));
}

} // namespace cesp
