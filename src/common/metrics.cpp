/**
 * @file
 * Implementation of the metrics registry and its JSON/CSV codecs.
 */

#include "common/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hpp"

namespace cesp {

const char *
statKindName(StatKind k)
{
    switch (k) {
    case StatKind::Counter:
        return "counter";
    case StatKind::Gauge:
        return "gauge";
    case StatKind::Derived:
        return "derived";
    case StatKind::Sample:
        return "sample";
    case StatKind::Histogram:
        return "histogram";
    }
    return "?";
}

namespace {

/** Escape @p s per RFC 8259 and wrap it in quotes. */
std::string
jsonString(std::string_view s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
    return out;
}

/** Shortest decimal form that parses back to exactly @p v. */
std::string
jsonDouble(double v)
{
    if (!std::isfinite(v))
        return "null"; // stats never produce these; null parses as 0
    for (int prec = 15; prec <= 17; ++prec) {
        std::string s = strprintf("%.*g", prec, v);
        if (std::strtod(s.c_str(), nullptr) == v)
            return s;
    }
    return strprintf("%.17g", v);
}

} // namespace

// ---------------------------------------------------------------------
// JsonWriter

void
JsonWriter::separate()
{
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (need_comma_)
        out_ += ',';
    if (depth_ > 0 && indent_ >= 0) {
        out_ += '\n';
        out_.append(static_cast<size_t>(depth_ * indent_), ' ');
    }
}

void
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    ++depth_;
    need_comma_ = false;
}

void
JsonWriter::endObject()
{
    --depth_;
    if (indent_ >= 0) {
        out_ += '\n';
        out_.append(static_cast<size_t>(depth_ * indent_), ' ');
    }
    out_ += '}';
    need_comma_ = true;
}

void
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    ++depth_;
    need_comma_ = false;
}

void
JsonWriter::endArray()
{
    --depth_;
    if (indent_ >= 0) {
        out_ += '\n';
        out_.append(static_cast<size_t>(depth_ * indent_), ' ');
    }
    out_ += ']';
    need_comma_ = true;
}

void
JsonWriter::key(std::string_view k)
{
    separate();
    out_ += jsonString(k);
    out_ += indent_ >= 0 ? ": " : ":";
    after_key_ = true;
}

void
JsonWriter::value(std::string_view s)
{
    separate();
    out_ += jsonString(s);
    need_comma_ = true;
}

void
JsonWriter::value(double v)
{
    separate();
    out_ += jsonDouble(v);
    need_comma_ = true;
}

void
JsonWriter::value(uint64_t v)
{
    separate();
    out_ += strprintf("%llu", static_cast<unsigned long long>(v));
    need_comma_ = true;
}

void
JsonWriter::value(bool v)
{
    separate();
    out_ += v ? "true" : "false";
    need_comma_ = true;
}

// ---------------------------------------------------------------------
// StatGroup: registration and access

StatGroup::StatGroup(std::string name, std::string label)
    : name_(std::move(name)), label_(std::move(label))
{
}

size_t
StatGroup::addEntry(StatKind kind, std::string name, std::string unit,
                    std::string desc)
{
    if (find(name))
        panic("StatGroup '%s': duplicate metric '%s'", name_.c_str(),
              name.c_str());
    StatEntry e;
    e.name = std::move(name);
    e.unit = std::move(unit);
    e.desc = std::move(desc);
    e.kind = kind;
    entries_.push_back(std::move(e));
    return entries_.size() - 1;
}

size_t
StatGroup::addCounter(std::string name, std::string unit,
                      std::string desc, uint64_t value)
{
    size_t i = addEntry(StatKind::Counter, std::move(name),
                        std::move(unit), std::move(desc));
    entries_[i].store = counters_.size();
    counters_.push_back(value);
    return entries_[i].store;
}

size_t
StatGroup::addGauge(std::string name, std::string unit,
                    std::string desc, double value)
{
    size_t i = addEntry(StatKind::Gauge, std::move(name),
                        std::move(unit), std::move(desc));
    entries_[i].store = gauges_.size();
    gauges_.push_back(value);
    return entries_[i].store;
}

size_t
StatGroup::addDerived(std::string name, std::string unit,
                      std::string desc, std::string num,
                      std::string den, double scale)
{
    const StatEntry *n = find(num);
    const StatEntry *d = find(den);
    if (!n || n->kind != StatKind::Counter || !d ||
        d->kind != StatKind::Counter)
        panic("StatGroup '%s': derived '%s' needs counters '%s' and "
              "'%s' registered first", name_.c_str(), name.c_str(),
              num.c_str(), den.c_str());
    size_t num_store = n->store;
    size_t den_store = d->store;
    size_t i = addEntry(StatKind::Derived, std::move(name),
                        std::move(unit), std::move(desc));
    StatEntry &e = entries_[i];
    e.store = derived_count_++;
    e.num = std::move(num);
    e.den = std::move(den);
    e.num_store = num_store;
    e.den_store = den_store;
    e.scale = scale;
    return e.store;
}

size_t
StatGroup::addSample(std::string name, std::string unit,
                     std::string desc)
{
    size_t i = addEntry(StatKind::Sample, std::move(name),
                        std::move(unit), std::move(desc));
    entries_[i].store = samples_.size();
    samples_.emplace_back();
    return entries_[i].store;
}

size_t
StatGroup::addHistogram(std::string name, std::string unit,
                        std::string desc, size_t buckets, double width,
                        bool growable)
{
    size_t i = addEntry(StatKind::Histogram, std::move(name),
                        std::move(unit), std::move(desc));
    entries_[i].store = histograms_.size();
    histograms_.emplace_back(buckets, width, growable);
    return entries_[i].store;
}

double
StatGroup::derivedAt(size_t i) const
{
    for (const StatEntry &e : entries_) {
        if (e.kind == StatKind::Derived && e.store == i) {
            uint64_t den = counters_[e.den_store];
            return den ? e.scale *
                    static_cast<double>(counters_[e.num_store]) /
                    static_cast<double>(den)
                       : 0.0;
        }
    }
    panic("StatGroup '%s': no derived metric #%zu", name_.c_str(), i);
}

const StatEntry *
StatGroup::find(std::string_view name) const
{
    for (const StatEntry &e : entries_)
        if (e.name == name)
            return &e;
    return nullptr;
}

uint64_t
StatGroup::counter(std::string_view name) const
{
    const StatEntry *e = find(name);
    if (!e || e->kind != StatKind::Counter)
        fatal("StatGroup '%s': no counter '%.*s'", name_.c_str(),
              static_cast<int>(name.size()), name.data());
    return counters_[e->store];
}

double
StatGroup::value(std::string_view name) const
{
    const StatEntry *e = find(name);
    if (!e)
        fatal("StatGroup '%s': no metric '%.*s'", name_.c_str(),
              static_cast<int>(name.size()), name.data());
    switch (e->kind) {
    case StatKind::Counter:
        return static_cast<double>(counters_[e->store]);
    case StatKind::Gauge:
        return gauges_[e->store];
    case StatKind::Derived:
        return derivedAt(e->store);
    default:
        fatal("StatGroup '%s': '%s' is a %s, not a scalar",
              name_.c_str(), e->name.c_str(), statKindName(e->kind));
    }
}

// ---------------------------------------------------------------------
// StatGroup: whole-group operations

void
StatGroup::reset()
{
    for (uint64_t &c : counters_)
        c = 0;
    for (double &g : gauges_)
        g = 0.0;
    for (Sample &s : samples_)
        s.reset();
    for (Histogram &h : histograms_)
        h.reset();
}

std::string
StatGroup::schemaDiff(const StatGroup &other) const
{
    if (entries_.size() != other.entries_.size())
        return strprintf("entry count %zu vs %zu", entries_.size(),
                         other.entries_.size());
    for (size_t i = 0; i < entries_.size(); ++i) {
        const StatEntry &a = entries_[i];
        const StatEntry &b = other.entries_[i];
        if (a.name != b.name)
            return strprintf("entry %zu: '%s' vs '%s'", i,
                             a.name.c_str(), b.name.c_str());
        if (a.kind != b.kind || a.store != b.store)
            return strprintf("entry %zu ('%s'): %s vs %s", i,
                             a.name.c_str(), statKindName(a.kind),
                             statKindName(b.kind));
        if (a.kind == StatKind::Derived &&
            (a.num != b.num || a.den != b.den || a.scale != b.scale))
            return strprintf("entry %zu ('%s'): derived operands "
                             "differ (%s/%s vs %s/%s)", i,
                             a.name.c_str(), a.num.c_str(),
                             a.den.c_str(), b.num.c_str(),
                             b.den.c_str());
        if (a.kind == StatKind::Histogram) {
            const Histogram &ha = histograms_[a.store];
            const Histogram &hb = other.histograms_[b.store];
            if (ha.growable() != hb.growable())
                return strprintf("entry %zu ('%s'): growable vs "
                                 "fixed histogram", i, a.name.c_str());
            // Growable histograms size themselves from the samples;
            // differing bucket counts are a value difference there,
            // not a schema one.
            if ((!ha.growable() && ha.buckets() != hb.buckets()) ||
                ha.width() != hb.width())
                return strprintf("entry %zu ('%s'): histogram shape "
                                 "%zu x %g vs %zu x %g", i,
                                 a.name.c_str(), ha.buckets(),
                                 ha.width(), hb.buckets(),
                                 hb.width());
        }
    }
    return "";
}

bool
StatGroup::sameSchema(const StatGroup &other) const
{
    return schemaDiff(other).empty();
}

void
StatGroup::merge(const StatGroup &other)
{
    std::string why = schemaDiff(other);
    if (!why.empty())
        fatal("StatGroup::merge: schema mismatch between '%s' and "
              "'%s': %s", name_.c_str(), other.name_.c_str(),
              why.c_str());
    for (size_t i = 0; i < counters_.size(); ++i)
        counters_[i] += other.counters_[i];
    for (size_t i = 0; i < gauges_.size(); ++i)
        gauges_[i] += other.gauges_[i];
    for (size_t i = 0; i < samples_.size(); ++i)
        samples_[i].merge(other.samples_[i]);
    for (size_t i = 0; i < histograms_.size(); ++i)
        histograms_[i].merge(other.histograms_[i]);
}

StatGroup
StatGroup::deltaSince(const StatGroup &prev) const
{
    std::string why = schemaDiff(prev);
    if (!why.empty())
        fatal("StatGroup::deltaSince: schema mismatch between '%s' "
              "and '%s': %s", name_.c_str(), prev.name_.c_str(),
              why.c_str());
    StatGroup d = *this;
    for (size_t i = 0; i < d.counters_.size(); ++i) {
        if (prev.counters_[i] > d.counters_[i])
            fatal("StatGroup::deltaSince: counter #%zu decreased "
                  "since the snapshot", i);
        d.counters_[i] -= prev.counters_[i];
    }
    for (size_t i = 0; i < d.gauges_.size(); ++i)
        d.gauges_[i] -= prev.gauges_[i];
    for (size_t i = 0; i < d.samples_.size(); ++i) {
        const Sample &now = samples_[i];
        const Sample &was = prev.samples_[i];
        if (was.count() > now.count())
            fatal("StatGroup::deltaSince: sample #%zu count "
                  "decreased since the snapshot", i);
        // min/max stay cumulative: the extremes of only the new
        // samples are not recoverable from two running accumulators.
        d.samples_[i].restore(now.count() - was.count(),
                              now.sum() - was.sum(), now.min(),
                              now.max());
    }
    for (size_t i = 0; i < d.histograms_.size(); ++i)
        d.histograms_[i].subtract(prev.histograms_[i]);
    return d;
}

bool
StatGroup::sameValues(const StatGroup &other) const
{
    return sameSchema(other) && counters_ == other.counters_ &&
        gauges_ == other.gauges_ && samples_ == other.samples_ &&
        histograms_ == other.histograms_;
}

std::string
StatGroup::diff(const StatGroup &other) const
{
    if (!sameSchema(other))
        return "schema mismatch";
    std::string out;
    for (const StatEntry &e : entries_) {
        switch (e.kind) {
        case StatKind::Counter:
            if (counters_[e.store] != other.counters_[e.store])
                out += strprintf(
                    "%s: %llu vs %llu\n", e.name.c_str(),
                    static_cast<unsigned long long>(counters_[e.store]),
                    static_cast<unsigned long long>(
                        other.counters_[e.store]));
            break;
        case StatKind::Gauge:
            if (gauges_[e.store] != other.gauges_[e.store])
                out += strprintf("%s: %g vs %g\n", e.name.c_str(),
                                 gauges_[e.store],
                                 other.gauges_[e.store]);
            break;
        case StatKind::Derived:
            break; // follows its operands
        case StatKind::Sample:
            if (!(samples_[e.store] == other.samples_[e.store]))
                out += strprintf("%s: sample differs\n",
                                 e.name.c_str());
            break;
        case StatKind::Histogram: {
            const Histogram &a = histograms_[e.store];
            const Histogram &b = other.histograms_[e.store];
            if (!(a == b)) {
                out += strprintf("%s: histogram differs:",
                                 e.name.c_str());
                size_t n = std::max(a.buckets(), b.buckets());
                for (size_t i = 0; i < n; ++i) {
                    uint64_t av = i < a.buckets() ? a.bucket(i) : 0;
                    uint64_t bv = i < b.buckets() ? b.bucket(i) : 0;
                    if (av != bv)
                        out += strprintf(
                            " [%zu]=%llu/%llu", i,
                            static_cast<unsigned long long>(av),
                            static_cast<unsigned long long>(bv));
                }
                if (a.underflow() != b.underflow() ||
                    a.overflow() != b.overflow())
                    out += strprintf(
                        " under/over=%llu,%llu vs %llu,%llu",
                        static_cast<unsigned long long>(a.underflow()),
                        static_cast<unsigned long long>(a.overflow()),
                        static_cast<unsigned long long>(b.underflow()),
                        static_cast<unsigned long long>(b.overflow()));
                out += '\n';
            }
            break;
        }
        }
    }
    return out;
}

void
StatGroup::visit(StatVisitor &v) const
{
    for (const StatEntry &e : entries_) {
        switch (e.kind) {
        case StatKind::Counter:
            v.counter(e, counters_[e.store]);
            break;
        case StatKind::Gauge:
            v.gauge(e, gauges_[e.store]);
            break;
        case StatKind::Derived:
            v.derived(e, derivedAt(e.store));
            break;
        case StatKind::Sample:
            v.sample(e, samples_[e.store]);
            break;
        case StatKind::Histogram:
            v.histogram(e, histograms_[e.store]);
            break;
        }
    }
}

// ---------------------------------------------------------------------
// StatGroup: JSON / CSV export

void
StatGroup::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.key("schema");
    w.value(kStatsSchemaName);
    w.key("schema_version");
    w.value(kStatsSchemaVersion);
    w.key("group");
    w.value(name_);
    w.key("label");
    w.value(label_);
    w.key("metrics");
    w.beginArray();
    for (const StatEntry &e : entries_) {
        w.beginObject();
        w.key("name");
        w.value(e.name);
        w.key("kind");
        w.value(statKindName(e.kind));
        w.key("unit");
        w.value(e.unit);
        w.key("desc");
        w.value(e.desc);
        switch (e.kind) {
        case StatKind::Counter:
            w.key("value");
            w.value(counters_[e.store]);
            break;
        case StatKind::Gauge:
            w.key("value");
            w.value(gauges_[e.store]);
            break;
        case StatKind::Derived:
            w.key("num");
            w.value(e.num);
            w.key("den");
            w.value(e.den);
            w.key("scale");
            w.value(e.scale);
            w.key("value");
            w.value(derivedAt(e.store));
            break;
        case StatKind::Sample: {
            const Sample &s = samples_[e.store];
            w.key("count");
            w.value(s.count());
            w.key("sum");
            w.value(s.sum());
            w.key("min");
            w.value(s.min());
            w.key("max");
            w.value(s.max());
            break;
        }
        case StatKind::Histogram: {
            const Histogram &h = histograms_[e.store];
            w.key("width");
            w.value(h.width());
            // Absent means fixed-shape, keeping PR3-era documents
            // parseable and byte-stable.
            if (h.growable()) {
                w.key("growable");
                w.value(true);
            }
            w.key("total");
            w.value(h.total());
            w.key("underflow");
            w.value(h.underflow());
            w.key("overflow");
            w.value(h.overflow());
            w.key("counts");
            w.beginArray();
            for (size_t i = 0; i < h.buckets(); ++i)
                w.value(h.bucket(i));
            w.endArray();
            break;
        }
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

std::string
StatGroup::toJson(int indent) const
{
    JsonWriter w(indent);
    writeJson(w);
    return w.str() + "\n";
}

namespace {

/** Quote a CSV field if it contains a delimiter, quote, or newline. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
StatGroup::toCsv() const
{
    std::string out = strprintf(
        "# %s schema_version=%d group=%s label=%s\n", kStatsSchemaName,
        kStatsSchemaVersion, csvField(name_).c_str(),
        csvField(label_).c_str());
    out += "metric,kind,unit,value,description\n";
    auto row = [&](const std::string &name, StatKind kind,
                   const std::string &unit, const std::string &value,
                   const std::string &desc) {
        out += csvField(name) + ',' + statKindName(kind) + ',' +
            csvField(unit) + ',' + value + ',' + csvField(desc) + '\n';
    };
    for (const StatEntry &e : entries_) {
        switch (e.kind) {
        case StatKind::Counter:
            row(e.name, e.kind, e.unit,
                strprintf("%llu", static_cast<unsigned long long>(
                                      counters_[e.store])),
                e.desc);
            break;
        case StatKind::Gauge:
            row(e.name, e.kind, e.unit, jsonDouble(gauges_[e.store]),
                e.desc);
            break;
        case StatKind::Derived:
            row(e.name, e.kind, e.unit,
                jsonDouble(derivedAt(e.store)), e.desc);
            break;
        case StatKind::Sample: {
            const Sample &s = samples_[e.store];
            row(e.name + ".count", e.kind, "samples",
                strprintf("%llu",
                          static_cast<unsigned long long>(s.count())),
                e.desc);
            row(e.name + ".sum", e.kind, e.unit, jsonDouble(s.sum()),
                "");
            row(e.name + ".min", e.kind, e.unit, jsonDouble(s.min()),
                "");
            row(e.name + ".max", e.kind, e.unit, jsonDouble(s.max()),
                "");
            break;
        }
        case StatKind::Histogram: {
            const Histogram &h = histograms_[e.store];
            row(e.name + ".buckets", e.kind, "",
                strprintf("%zu", h.buckets()), e.desc);
            row(e.name + ".width", e.kind, e.unit,
                jsonDouble(h.width()), "");
            row(e.name + ".total", e.kind, "samples",
                strprintf("%llu",
                          static_cast<unsigned long long>(h.total())),
                "");
            row(e.name + ".underflow", e.kind, "samples",
                strprintf("%llu", static_cast<unsigned long long>(
                                      h.underflow())),
                "");
            row(e.name + ".overflow", e.kind, "samples",
                strprintf("%llu", static_cast<unsigned long long>(
                                      h.overflow())),
                "");
            // Zero buckets are omitted; absence means zero (the
            // bucket count above makes this lossless).
            for (size_t i = 0; i < h.buckets(); ++i)
                if (h.bucket(i))
                    row(strprintf("%s[%zu]", e.name.c_str(), i),
                        e.kind, "samples",
                        strprintf("%llu",
                                  static_cast<unsigned long long>(
                                      h.bucket(i))),
                        "");
            break;
        }
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// JSON parsing (the subset toJson emits)

namespace {

/** A parsed JSON value. Numbers keep their raw spelling so counter
 *  values above 2^53 survive the round trip exactly. */
struct JVal
{
    enum Type { Null, Bool, Num, Str, Arr, Obj } type = Null;
    bool boolean = false;
    std::string raw; // Num: token; Str: decoded text
    std::vector<JVal> arr;
    std::vector<std::pair<std::string, JVal>> obj;

    const JVal *
    get(const std::string &key) const
    {
        for (const auto &kv : obj)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }

    double
    toDouble() const
    {
        return type == Num ? std::strtod(raw.c_str(), nullptr) : 0.0;
    }

    uint64_t
    toU64() const
    {
        return type == Num
            ? std::strtoull(raw.c_str(), nullptr, 10)
            : 0;
    }
};

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : s_(text), error_(error)
    {
    }

    bool
    parse(JVal &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != s_.size())
            return fail("trailing characters");
        return true;
    }

  private:
    bool
    fail(const char *msg)
    {
        if (error_ && error_->empty())
            *error_ = strprintf("JSON parse error at offset %zu: %s",
                                pos_, msg);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word, JVal &out, JVal::Type type, bool b)
    {
        size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0)
            return fail("bad literal");
        pos_ += n;
        out.type = type;
        out.boolean = b;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                return fail("bad escape");
            char e = s_[pos_++];
            switch (e) {
            case '"':
            case '\\':
            case '/':
                out += e;
                break;
            case 'n':
                out += '\n';
                break;
            case 't':
                out += '\t';
                break;
            case 'r':
                out += '\r';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'u': {
                if (pos_ + 4 > s_.size())
                    return fail("bad \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // The writer only emits \u00XX control characters.
                out += static_cast<char>(code & 0xff);
                break;
            }
            default:
                return fail("bad escape");
            }
        }
        if (pos_ >= s_.size())
            return fail("unterminated string");
        ++pos_; // closing quote
        return true;
    }

    bool
    parseValue(JVal &out)
    {
        skipWs();
        if (pos_ >= s_.size())
            return fail("unexpected end");
        char c = s_[pos_];
        if (c == '{') {
            ++pos_;
            out.type = JVal::Obj;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (pos_ >= s_.size() || s_[pos_++] != ':')
                    return fail("expected ':'");
                JVal v;
                if (!parseValue(v))
                    return false;
                out.obj.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (pos_ >= s_.size())
                    return fail("unterminated object");
                if (s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (s_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos_;
            out.type = JVal::Arr;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                JVal v;
                if (!parseValue(v))
                    return false;
                out.arr.push_back(std::move(v));
                skipWs();
                if (pos_ >= s_.size())
                    return fail("unterminated array");
                if (s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (s_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.type = JVal::Str;
            return parseString(out.raw);
        }
        if (c == 't')
            return literal("true", out, JVal::Bool, true);
        if (c == 'f')
            return literal("false", out, JVal::Bool, false);
        if (c == 'n')
            return literal("null", out, JVal::Null, false);
        // Number token.
        size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            return fail("unexpected character");
        out.type = JVal::Num;
        out.raw = s_.substr(start, pos_ - start);
        return true;
    }

    const std::string &s_;
    size_t pos_ = 0;
    std::string *error_;
};

bool
parseFail(std::string *error, const char *fmt, const char *a = "")
{
    if (error && error->empty())
        *error = strprintf(fmt, a);
    return false;
}

/**
 * Rebuild a StatGroup from an already-parsed "cesp.statgroup" object.
 * Shared by fromJson (whole-document), the list-document loader, and
 * the JSON-lines reader, which all embed the same group layout.
 */
bool
groupFromJval(const JVal &root, StatGroup &out, std::string *error)
{
    if (root.type != JVal::Obj)
        return parseFail(error, "top level is not an object");
    const JVal *schema = root.get("schema");
    if (!schema || schema->type != JVal::Str ||
        schema->raw != kStatsSchemaName)
        return parseFail(error, "missing or foreign \"schema\" field");
    const JVal *version = root.get("schema_version");
    if (!version || version->type != JVal::Num ||
        version->toU64() != static_cast<uint64_t>(kStatsSchemaVersion))
        return parseFail(error, "unsupported schema_version");
    const JVal *group = root.get("group");
    const JVal *label = root.get("label");
    const JVal *metrics = root.get("metrics");
    if (!group || group->type != JVal::Str || !label ||
        label->type != JVal::Str || !metrics ||
        metrics->type != JVal::Arr)
        return parseFail(error, "missing group/label/metrics");

    StatGroup g(group->raw, label->raw);
    for (const JVal &m : metrics->arr) {
        if (m.type != JVal::Obj)
            return parseFail(error, "metric is not an object");
        const JVal *name = m.get("name");
        const JVal *kind = m.get("kind");
        const JVal *unit = m.get("unit");
        const JVal *desc = m.get("desc");
        if (!name || name->type != JVal::Str || !kind ||
            kind->type != JVal::Str || !unit || !desc)
            return parseFail(error, "metric missing name/kind");
        const std::string &k = kind->raw;
        if (g.find(name->raw))
            return parseFail(error, "duplicate metric '%s'",
                             name->raw.c_str());
        if (k == "counter") {
            const JVal *v = m.get("value");
            if (!v || v->type != JVal::Num)
                return parseFail(error, "counter '%s' has no value",
                                 name->raw.c_str());
            g.addCounter(name->raw, unit->raw, desc->raw, v->toU64());
        } else if (k == "gauge") {
            const JVal *v = m.get("value");
            if (!v)
                return parseFail(error, "gauge '%s' has no value",
                                 name->raw.c_str());
            g.addGauge(name->raw, unit->raw, desc->raw, v->toDouble());
        } else if (k == "derived") {
            const JVal *num = m.get("num");
            const JVal *den = m.get("den");
            const JVal *scale = m.get("scale");
            if (!num || num->type != JVal::Str || !den ||
                den->type != JVal::Str || !scale)
                return parseFail(error, "derived '%s' misses operands",
                                 name->raw.c_str());
            if (!g.find(num->raw) || !g.find(den->raw))
                return parseFail(error,
                                 "derived '%s' references unknown "
                                 "counters", name->raw.c_str());
            g.addDerived(name->raw, unit->raw, desc->raw, num->raw,
                         den->raw, scale->toDouble());
        } else if (k == "sample") {
            const JVal *count = m.get("count");
            const JVal *sum = m.get("sum");
            const JVal *mn = m.get("min");
            const JVal *mx = m.get("max");
            if (!count || !sum || !mn || !mx)
                return parseFail(error, "sample '%s' misses parts",
                                 name->raw.c_str());
            size_t i = g.addSample(name->raw, unit->raw, desc->raw);
            g.sampleAt(i).restore(count->toU64(), sum->toDouble(),
                                  mn->toDouble(), mx->toDouble());
        } else if (k == "histogram") {
            const JVal *width = m.get("width");
            const JVal *under = m.get("underflow");
            const JVal *over = m.get("overflow");
            const JVal *counts = m.get("counts");
            const JVal *growable = m.get("growable");
            if (!width || !under || !over || !counts ||
                counts->type != JVal::Arr)
                return parseFail(error, "histogram '%s' misses parts",
                                 name->raw.c_str());
            std::vector<uint64_t> buckets;
            buckets.reserve(counts->arr.size());
            for (const JVal &b : counts->arr)
                buckets.push_back(b.toU64());
            size_t i = g.addHistogram(name->raw, unit->raw, desc->raw,
                                      buckets.size(),
                                      width->toDouble(),
                                      growable && growable->boolean);
            g.histogramAt(i).restore(std::move(buckets),
                                     under->toU64(), over->toU64());
        } else {
            return parseFail(error, "unknown metric kind '%s'",
                             k.c_str());
        }
    }
    out = std::move(g);
    return true;
}

} // namespace

bool
StatGroup::fromJson(const std::string &text, StatGroup &out,
                    std::string *error)
{
    if (error)
        error->clear();
    JVal root;
    JsonParser p(text, error);
    if (!p.parse(root))
        return false;
    return groupFromJval(root, out, error);
}

std::string
statGroupListJson(const std::vector<StatGroup> &groups,
                  const std::vector<StatGroup> &merged)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema");
    w.value("cesp.statgroup.list");
    w.key("schema_version");
    w.value(kStatsSchemaVersion);
    w.key("groups");
    w.beginArray();
    for (const StatGroup &g : groups)
        g.writeJson(w);
    w.endArray();
    w.key("merged");
    w.beginArray();
    for (const StatGroup &g : merged)
        g.writeJson(w);
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

std::string
statGroupListCsv(const std::vector<StatGroup> &groups)
{
    std::string out;
    for (const StatGroup &g : groups) {
        if (!out.empty())
            out += "\n";
        out += g.toCsv();
    }
    return out;
}

// ---------------------------------------------------------------------
// JSON-lines streaming

StatStreamWriter::StatStreamWriter(const std::string &path)
    : path_(path)
{
    if (path == "-") {
        file_ = stdout;
        owns_file_ = false;
        return;
    }
    file_ = std::fopen(path.c_str(), "w");
    owns_file_ = true;
    if (!file_) {
        failed_ = true;
        error_ = strprintf("cannot open '%s' for writing",
                           path.c_str());
    }
}

StatStreamWriter::~StatStreamWriter()
{
    if (file_ && owns_file_)
        std::fclose(file_);
}

bool
StatStreamWriter::append(const StatStreamMeta &meta,
                         const StatGroup &stats, const StatGroup *delta)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!file_ || failed_)
        return false;
    JsonWriter w(-1);
    w.beginObject();
    w.key("schema");
    w.value(kStatsStreamSchemaName);
    w.key("schema_version");
    w.value(kStatsSchemaVersion);
    w.key("seq");
    w.value(seq_++);
    w.key("kind");
    w.value(meta.kind);
    if (meta.task >= 0) {
        w.key("task");
        w.value(static_cast<uint64_t>(meta.task));
    }
    if (meta.shard >= 0) {
        w.key("shard");
        w.value(static_cast<uint64_t>(meta.shard));
    }
    if (meta.interval >= 0) {
        w.key("interval");
        w.value(static_cast<uint64_t>(meta.interval));
    }
    w.key("stats");
    stats.writeJson(w);
    if (delta) {
        w.key("delta");
        delta->writeJson(w);
    }
    w.endObject();
    std::string line = w.str();
    line += '\n';
    // Write + flush per record so a consumer tailing the file (or a
    // crash mid-sweep) sees every finished run.
    if (std::fwrite(line.data(), 1, line.size(), file_) !=
            line.size() ||
        std::fflush(file_) != 0) {
        failed_ = true;
        error_ = strprintf("short write to '%s'", path_.c_str());
        return false;
    }
    return true;
}

bool
readStatStream(const std::string &text,
               std::vector<StatStreamRecord> &out, std::string *error)
{
    if (error)
        error->clear();
    out.clear();
    size_t pos = 0;
    size_t lineno = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        std::string line_err;
        JVal root;
        JsonParser p(line, &line_err);
        if (!p.parse(root) || root.type != JVal::Obj) {
            if (error)
                *error = strprintf("line %zu: %s", lineno,
                                   line_err.empty()
                                       ? "not a JSON object"
                                       : line_err.c_str());
            return false;
        }
        const JVal *schema = root.get("schema");
        const JVal *version = root.get("schema_version");
        const JVal *kind = root.get("kind");
        const JVal *stats = root.get("stats");
        if (!schema || schema->type != JVal::Str ||
            schema->raw != kStatsStreamSchemaName || !version ||
            version->toU64() !=
                static_cast<uint64_t>(kStatsSchemaVersion) ||
            !kind || kind->type != JVal::Str || !stats) {
            if (error)
                *error = strprintf(
                    "line %zu: not a %s record", lineno,
                    kStatsStreamSchemaName);
            return false;
        }
        StatStreamRecord rec;
        if (const JVal *seq = root.get("seq"))
            rec.seq = seq->toU64();
        rec.kind = kind->raw;
        if (const JVal *task = root.get("task"))
            rec.task = static_cast<int64_t>(task->toU64());
        if (const JVal *shard = root.get("shard"))
            rec.shard = static_cast<int64_t>(shard->toU64());
        if (const JVal *interval = root.get("interval"))
            rec.interval = static_cast<int64_t>(interval->toU64());
        std::string group_err;
        if (!groupFromJval(*stats, rec.stats, &group_err)) {
            if (error)
                *error = strprintf("line %zu: stats: %s", lineno,
                                   group_err.c_str());
            return false;
        }
        if (const JVal *delta = root.get("delta")) {
            if (!groupFromJval(*delta, rec.delta, &group_err)) {
                if (error)
                    *error = strprintf("line %zu: delta: %s", lineno,
                                       group_err.c_str());
                return false;
            }
            rec.has_delta = true;
        }
        out.push_back(std::move(rec));
    }
    return true;
}

namespace {

bool
readTextInput(const std::string &path, std::string &out,
              std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (error)
            *error = strprintf("cannot open '%s'", path.c_str());
        return false;
    }
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    bool ok = !std::ferror(f);
    std::fclose(f);
    if (!ok && error)
        *error = strprintf("read error on '%s'", path.c_str());
    return ok;
}

/** Pick the most aggregated record kind present in a stream. */
const char *
preferredStreamKind(const std::vector<StatStreamRecord> &recs)
{
    for (const char *kind : {"run", "merged", "shard", "snapshot"})
        for (const StatStreamRecord &r : recs)
            if (r.kind == kind)
                return kind;
    return "";
}

} // namespace

bool
loadStatGroups(const std::string &path, std::vector<StatGroup> &out,
               std::string *error)
{
    if (error)
        error->clear();
    out.clear();
    std::string text;
    if (!readTextInput(path, text, error))
        return false;

    // A whole-text parse distinguishes the single-document formats
    // from a multi-line stream (which fails with trailing content).
    std::string doc_err;
    JVal root;
    JsonParser p(text, &doc_err);
    if (p.parse(root) && root.type == JVal::Obj) {
        const JVal *schema = root.get("schema");
        std::string name =
            schema && schema->type == JVal::Str ? schema->raw : "";
        if (name == kStatsSchemaName) {
            StatGroup g;
            if (!groupFromJval(root, g, error))
                return false;
            out.push_back(std::move(g));
            return true;
        }
        if (name == "cesp.statgroup.list") {
            const JVal *groups = root.get("groups");
            const JVal *merged = root.get("merged");
            const JVal *use =
                groups && !groups->arr.empty() ? groups : merged;
            if (!use || use->type != JVal::Arr) {
                if (error)
                    *error = strprintf(
                        "'%s': list document has no groups",
                        path.c_str());
                return false;
            }
            for (const JVal &gj : use->arr) {
                StatGroup g;
                if (!groupFromJval(gj, g, error))
                    return false;
                out.push_back(std::move(g));
            }
            return true;
        }
        if (name != kStatsStreamSchemaName) {
            if (error)
                *error = strprintf(
                    "'%s': unrecognised schema '%s'", path.c_str(),
                    name.c_str());
            return false;
        }
        // A one-record stream parses as a single object; fall
        // through to the stream reader.
    }

    std::vector<StatStreamRecord> recs;
    if (!readStatStream(text, recs, error)) {
        if (error)
            *error = strprintf("'%s': %s", path.c_str(),
                               error->c_str());
        return false;
    }
    std::string kind = preferredStreamKind(recs);
    std::vector<const StatStreamRecord *> picked;
    for (const StatStreamRecord &r : recs)
        if (r.kind == kind)
            picked.push_back(&r);
    // Workers append in completion order; comparisons pair by
    // position, so order by the indices stamped into the records.
    std::stable_sort(picked.begin(), picked.end(),
                     [](const StatStreamRecord *a,
                        const StatStreamRecord *b) {
                         if (a->task != b->task)
                             return a->task < b->task;
                         if (a->shard != b->shard)
                             return a->shard < b->shard;
                         return a->interval < b->interval;
                     });
    for (const StatStreamRecord *r : picked)
        out.push_back(r->stats);
    if (out.empty()) {
        if (error)
            *error = strprintf("'%s': no stat records", path.c_str());
        return false;
    }
    return true;
}

bool
writeTextOutput(const std::string &path, const std::string &text,
                std::string *error)
{
    if (path == "-") {
        std::fwrite(text.data(), 1, text.size(), stdout);
        std::fflush(stdout);
        return true;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        if (error)
            *error = strprintf("cannot open '%s' for writing",
                               path.c_str());
        return false;
    }
    bool ok = std::fwrite(text.data(), 1, text.size(), f) ==
        text.size();
    ok = std::fflush(f) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok && error)
        *error = strprintf("short write to '%s'", path.c_str());
    return ok;
}

} // namespace cesp
