/**
 * @file
 * Small statistics accumulators: scalar counters, ratios, running
 * mean/min/max, and fixed-bucket histograms. These back the simulator
 * statistics (IPC, misprediction rate, bypass frequency, occupancy
 * distributions) reported by the bench harnesses.
 */

#ifndef CESP_COMMON_STATS_HPP
#define CESP_COMMON_STATS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace cesp {

/** Running mean / min / max / count of a sampled quantity. */
class Sample
{
  public:
    void
    add(double v)
    {
        sum_ += v;
        count_ += 1;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (count_ == 1 || v > max_)
            max_ = v;
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = max_ = 0.0;
    }

  private:
    double sum_ = 0.0;
    uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-width bucket histogram over [0, buckets*width). */
class Histogram
{
  public:
    Histogram(size_t buckets, double width)
        : counts_(buckets, 0), width_(width)
    {
    }

    void
    add(double v)
    {
        add(v, 1);
    }

    /**
     * Record @p n identical samples at once. Used by the timing
     * simulator's idle-cycle skip, which must account for every
     * skipped cycle's per-cycle samples in bulk so skipping is
     * observationally identical to stepping cycle by cycle.
     */
    void
    add(double v, uint64_t n)
    {
        size_t b = v < 0 ? 0 : static_cast<size_t>(v / width_);
        if (b >= counts_.size())
            b = counts_.size() - 1;
        counts_[b] += n;
        total_ += n;
    }

    uint64_t bucket(size_t i) const { return counts_[i]; }
    size_t buckets() const { return counts_.size(); }
    uint64_t total() const { return total_; }

    /** Fraction of samples in bucket i (0 if empty histogram). */
    double
    fraction(size_t i) const
    {
        return total_ ? static_cast<double>(counts_[i]) / total_ : 0.0;
    }

    /** Mean of the bucket midpoints weighted by counts. */
    double mean() const;

  private:
    std::vector<uint64_t> counts_;
    double width_;
    uint64_t total_ = 0;
};

/** Geometric mean of a series of strictly positive values. */
double geometricMean(const std::vector<double> &values);

/** Arithmetic mean; 0 for an empty series. */
double arithmeticMean(const std::vector<double> &values);

} // namespace cesp

#endif // CESP_COMMON_STATS_HPP
