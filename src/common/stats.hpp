/**
 * @file
 * Small statistics accumulators: scalar counters, ratios, running
 * mean/min/max, and fixed-bucket histograms. These back the simulator
 * statistics (IPC, misprediction rate, bypass frequency, occupancy
 * distributions) reported by the bench harnesses, and are the value
 * types registered in a cesp::StatGroup (common/metrics.hpp).
 */

#ifndef CESP_COMMON_STATS_HPP
#define CESP_COMMON_STATS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace cesp {

/** Running mean / min / max / count of a sampled quantity. */
class Sample
{
  public:
    void
    add(double v)
    {
        sum_ += v;
        count_ += 1;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (count_ == 1 || v > max_)
            max_ = v;
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = max_ = 0.0;
    }

    /** Combine with another accumulator, as if every sample added to
     *  @p o had been added here. */
    void merge(const Sample &o);

    /** Restore from exported parts (used by StatGroup::fromJson). */
    void restore(uint64_t count, double sum, double min, double max);

    bool operator==(const Sample &o) const;

  private:
    double sum_ = 0.0;
    uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width bucket histogram over [0, buckets*width). Out-of-range
 * samples are NOT folded into the edge buckets: they are counted in
 * dedicated underflow (v < 0) and overflow (v >= buckets*width)
 * counters, so a clamped sample is visible in reports and exports
 * instead of silently corrupting the top bucket. total() counts every
 * sample, in range or not.
 *
 * A growable histogram auto-ranges instead of overflowing: a sample
 * past the last bucket grows the bucket array (amortized, capacity
 * doubling) so no non-negative sample is ever lost to the overflow
 * counter. The logical bucket count is exactly max-seen-bucket + 1 —
 * a function of the samples, not of their order — so two growable
 * histograms fed the same samples in any order compare equal and
 * export identically. reset() shrinks back to the constructed size.
 */
class Histogram
{
  public:
    Histogram(size_t buckets, double width, bool growable = false)
        : counts_(buckets, 0), width_(width), base_buckets_(buckets),
          growable_(growable)
    {
    }

    void
    add(double v)
    {
        add(v, 1);
    }

    /**
     * Record @p n identical samples at once. Used by the timing
     * simulator's idle-cycle skip, which must account for every
     * skipped cycle's per-cycle samples in bulk so skipping is
     * observationally identical to stepping cycle by cycle.
     */
    void
    add(double v, uint64_t n)
    {
        total_ += n;
        if (v < 0) {
            underflow_ += n;
            return;
        }
        size_t b = static_cast<size_t>(v / width_);
        if (b >= counts_.size()) {
            if (!growable_) {
                overflow_ += n;
                return;
            }
            grow(b + 1);
        }
        counts_[b] += n;
    }

    uint64_t bucket(size_t i) const { return counts_[i]; }
    size_t buckets() const { return counts_.size(); }
    double width() const { return width_; }
    bool growable() const { return growable_; }
    uint64_t total() const { return total_; }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    /** Samples that landed in a bucket (total minus out-of-range). */
    uint64_t inRange() const { return total_ - underflow_ - overflow_; }

    /** Fraction of ALL samples in bucket i (0 if empty histogram).
     *  Fractions sum to < 1 when any sample was out of range. */
    double
    fraction(size_t i) const
    {
        return total_ ? static_cast<double>(counts_[i]) / total_ : 0.0;
    }

    /** Mean of the bucket midpoints weighted by counts, over the
     *  in-range samples only. */
    double mean() const;

    void reset();

    /** Add another histogram's counts. Width and growability must
     *  match; fatal otherwise. Fixed histograms additionally require
     *  equal bucket counts, while growable ones grow to the larger
     *  shape, so merging differently-grown histograms stays exact. */
    void merge(const Histogram &o);

    /** Subtract an earlier snapshot of this histogram, leaving the
     *  samples recorded since. @p prev must have the same width and
     *  growability and be bucket-wise <= *this; fatal otherwise. */
    void subtract(const Histogram &prev);

    /** Restore from exported parts (used by StatGroup::fromJson).
     *  Recomputes total as in-range + underflow + overflow. A
     *  growable histogram accepts any count-vector size; a fixed one
     *  requires an exact shape match. */
    void restore(std::vector<uint64_t> counts, uint64_t underflow,
                 uint64_t overflow);

    /** Value equality over logical content: width, growability,
     *  out-of-range counters, and bucket-wise counts with missing
     *  trailing buckets treated as zero. */
    bool operator==(const Histogram &o) const;

  private:
    void grow(size_t buckets);

    std::vector<uint64_t> counts_;
    double width_;
    size_t base_buckets_;
    bool growable_ = false;
    uint64_t total_ = 0;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
};

/** Geometric mean of a series of strictly positive values. */
double geometricMean(const std::vector<double> &values);

/** Arithmetic mean; 0 for an empty series. */
double arithmeticMean(const std::vector<double> &values);

} // namespace cesp

#endif // CESP_COMMON_STATS_HPP
