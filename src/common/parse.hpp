/**
 * @file
 * Checked string-to-number parsing for the command-line tools.
 * std::atoi silently maps typos ("x4", "4x", "") to 0, which for
 * flags like --jobs means "use a nonsense value without a word of
 * complaint"; parseInt instead accepts exactly one base-10 integer
 * spanning the whole string and reports anything else as a failure
 * the caller can turn into a usage error.
 */

#ifndef CESP_COMMON_PARSE_HPP
#define CESP_COMMON_PARSE_HPP

#include <cstdint>
#include <optional>
#include <string>

namespace cesp {

/**
 * Parse @p s as a base-10 integer in [@p min, @p max]. The entire
 * string must be consumed: leading/trailing whitespace, trailing
 * junk ("4x"), empty strings, and out-of-range values (including
 * values that overflow long long) all return nullopt.
 */
std::optional<long long> parseInt(const std::string &s,
                                  long long min, long long max);

} // namespace cesp

#endif // CESP_COMMON_PARSE_HPP
