/**
 * @file
 * The PJ-RISC instruction set.
 *
 * A small MIPS-flavored 32-bit RISC ISA built for this reproduction:
 * the paper's simulator executed MIPS SPEC'95 binaries (the Figure 12
 * example is MIPS assembly), so the workload kernels are written in a
 * comparable load/store ISA. 32 integer registers (r0 wired to zero),
 * 32 floating-point registers, 32-bit address space, word-aligned
 * fixed 32-bit instructions.
 *
 * Encoding (big fields first):
 *   [31:26] opcode
 *   R-type: [25:21] rs, [20:16] rt, [15:11] rd
 *   I-type: [25:21] rs, [20:16] rt, [15:0] imm16 (sign- or zero-ext)
 *   J-type: [25:0] word target within the current 256 MB segment
 */

#ifndef CESP_ISA_ISA_HPP
#define CESP_ISA_ISA_HPP

#include <cstdint>
#include <string>

namespace cesp::isa {

/** Number of architectural registers in each class. */
constexpr int kNumIntRegs = 32;
constexpr int kNumFpRegs = 32;

/**
 * Flat architectural register numbering used by traces and rename:
 * integer registers are 0..31, floating-point registers are 32..63.
 */
constexpr int kFpRegBase = 32;
constexpr int kNumArchRegs = kNumIntRegs + kNumFpRegs;

/** Sentinel for "no register operand". */
constexpr int kNoReg = -1;

/** Primary opcodes (flat 6-bit space). */
enum class Opcode : uint8_t
{
    // R-type integer ALU: rd <- rs OP rt
    ADD, SUB, AND, OR, XOR, NOR, SLT, SLTU,
    SLLV, SRLV, SRAV,
    MUL, MULH, DIV, REM,
    // I-type integer ALU: rt <- rs OP imm
    ADDI, ANDI, ORI, XORI, SLTI, SLTIU, LUI,
    SLLI, SRLI, SRAI,
    // Loads/stores: rt <- mem[rs + imm] / mem[rs + imm] <- rt
    LW, LH, LHU, LB, LBU,
    SW, SH, SB,
    // Conditional branches: compare rs, rt; target pc+4+imm*4
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    // Unconditional control
    J, JAL,       // J-type
    JR, JALR,     // R-type: jump to rs; JALR: rd <- return address
    // Floating point (single precision; f-registers)
    FADD, FSUB, FMUL, FDIV,  // R-type on f-regs
    FLW, FSW,                // I-type: f-reg <- mem[rs+imm]
    FMVI,                    // f[rt] <- bits of r[rs]
    FCMPLT,                  // r[rd] <- f[rs] < f[rt]
    // System
    NOP, HALT,
    PUTC,   // write low byte of r[rs] to the console
    NUM_OPCODES,
};

/** Encoding format of an opcode. */
enum class Format : uint8_t { R, I, J, None };

/**
 * Operation class used by the timing simulator to choose functional
 * units, latencies, and control behaviour.
 */
enum class OpClass : uint8_t
{
    IntAlu,      //!< single-cycle integer operation
    IntMul,      //!< integer multiply
    IntDiv,      //!< integer divide/remainder
    FpAlu,       //!< floating-point add/sub/compare/move
    FpMul,       //!< floating-point multiply
    FpDiv,       //!< floating-point divide
    Load,        //!< memory read
    Store,       //!< memory write
    BranchCond,  //!< conditional branch (predicted by the bpred)
    BranchUncond,//!< direct jump / call (predicted perfectly)
    BranchInd,   //!< indirect jump / return (predicted perfectly)
    Syscall,     //!< PUTC etc.
    Halt,        //!< simulation end marker
    Nop,
};

/** Static description of one opcode. */
struct OpInfo
{
    Opcode op;
    const char *mnemonic;
    Format format;
    OpClass cls;
    bool imm_signed;   //!< I-type: sign-extend (vs zero-extend) imm
    bool writes_dst;   //!< produces a register result
};

/** Look up the static descriptor for an opcode. */
const OpInfo &opInfo(Opcode op);

/** Look up an opcode by mnemonic; returns false if unknown. */
bool opcodeFromMnemonic(const std::string &mnemonic, Opcode &out);

/** True if the op class is any kind of control transfer. */
bool isControl(OpClass cls);

/** True if the op class executes on the load/store (cache) ports. */
bool isMem(OpClass cls);

/** Conventional integer register names (r0 -> "zero", r31 -> "ra"). */
const char *intRegName(int reg);

/**
 * Parse a register token: "r5"/"f5", numeric or alias ("sp", "ra",
 * "t0", ...). Returns flat register number or kNoReg on failure.
 */
int parseRegister(const std::string &token);

/** Flat register number -> printable name. */
std::string regName(int flat_reg);

// --- Encoding helpers ---------------------------------------------------

/** Encode an R-type instruction. */
uint32_t encodeR(Opcode op, int rd, int rs, int rt);

/** Encode an I-type instruction (imm is the low 16 bits). */
uint32_t encodeI(Opcode op, int rt, int rs, uint16_t imm);

/** Encode a J-type instruction with a byte target address. */
uint32_t encodeJ(Opcode op, uint32_t target_addr);

/** Encode opcode-only instructions (NOP, HALT). */
uint32_t encodeNone(Opcode op);

} // namespace cesp::isa

#endif // CESP_ISA_ISA_HPP
