/**
 * @file
 * Instruction decoder: raw 32-bit word -> operand-level description
 * (opcode, class, source/destination flat register numbers, immediate,
 * jump target). Both the functional emulator and the trace capture use
 * the same decode, so the timing simulator sees exactly the operands
 * the emulator used.
 */

#ifndef CESP_ISA_DECODE_HPP
#define CESP_ISA_DECODE_HPP

#include <cstdint>

#include "isa/isa.hpp"

namespace cesp::isa {

/** Fully decoded instruction. */
struct Decoded
{
    Opcode op = Opcode::NOP;
    OpClass cls = OpClass::Nop;
    Format format = Format::None;
    int dst = kNoReg;   //!< flat destination register (kNoReg if none)
    int src1 = kNoReg;  //!< flat first source (kNoReg if none)
    int src2 = kNoReg;  //!< flat second source (kNoReg if none)
    int32_t imm = 0;    //!< sign/zero-extended immediate (I-type)
    uint32_t jtarget = 0; //!< absolute byte target (J-type, low 28 bits)

    bool hasDst() const { return dst != kNoReg && dst != 0; }
};

/**
 * Decode a raw instruction word.
 *
 * Destinations that are the integer zero register are reported as
 * written (dst = 0) so the emulator can discard the result uniformly;
 * the timing simulator treats dst 0 as no destination.
 */
Decoded decode(uint32_t raw);

/** True if the raw word holds a valid opcode field. */
bool isValidEncoding(uint32_t raw);

} // namespace cesp::isa

#endif // CESP_ISA_DECODE_HPP
