/**
 * @file
 * Static opcode metadata, register naming, and encoding helpers.
 */

#include "isa/isa.hpp"

#include <array>
#include <cctype>
#include <unordered_map>

#include "common/logging.hpp"

namespace cesp::isa {

namespace {

constexpr int kNum = static_cast<int>(Opcode::NUM_OPCODES);

const std::array<OpInfo, kNum> kOpTable = {{
    {Opcode::ADD, "add", Format::R, OpClass::IntAlu, false, true},
    {Opcode::SUB, "sub", Format::R, OpClass::IntAlu, false, true},
    {Opcode::AND, "and", Format::R, OpClass::IntAlu, false, true},
    {Opcode::OR, "or", Format::R, OpClass::IntAlu, false, true},
    {Opcode::XOR, "xor", Format::R, OpClass::IntAlu, false, true},
    {Opcode::NOR, "nor", Format::R, OpClass::IntAlu, false, true},
    {Opcode::SLT, "slt", Format::R, OpClass::IntAlu, false, true},
    {Opcode::SLTU, "sltu", Format::R, OpClass::IntAlu, false, true},
    {Opcode::SLLV, "sllv", Format::R, OpClass::IntAlu, false, true},
    {Opcode::SRLV, "srlv", Format::R, OpClass::IntAlu, false, true},
    {Opcode::SRAV, "srav", Format::R, OpClass::IntAlu, false, true},
    {Opcode::MUL, "mul", Format::R, OpClass::IntMul, false, true},
    {Opcode::MULH, "mulh", Format::R, OpClass::IntMul, false, true},
    {Opcode::DIV, "div", Format::R, OpClass::IntDiv, false, true},
    {Opcode::REM, "rem", Format::R, OpClass::IntDiv, false, true},
    {Opcode::ADDI, "addi", Format::I, OpClass::IntAlu, true, true},
    {Opcode::ANDI, "andi", Format::I, OpClass::IntAlu, false, true},
    {Opcode::ORI, "ori", Format::I, OpClass::IntAlu, false, true},
    {Opcode::XORI, "xori", Format::I, OpClass::IntAlu, false, true},
    {Opcode::SLTI, "slti", Format::I, OpClass::IntAlu, true, true},
    {Opcode::SLTIU, "sltiu", Format::I, OpClass::IntAlu, true, true},
    {Opcode::LUI, "lui", Format::I, OpClass::IntAlu, false, true},
    {Opcode::SLLI, "slli", Format::I, OpClass::IntAlu, false, true},
    {Opcode::SRLI, "srli", Format::I, OpClass::IntAlu, false, true},
    {Opcode::SRAI, "srai", Format::I, OpClass::IntAlu, false, true},
    {Opcode::LW, "lw", Format::I, OpClass::Load, true, true},
    {Opcode::LH, "lh", Format::I, OpClass::Load, true, true},
    {Opcode::LHU, "lhu", Format::I, OpClass::Load, true, true},
    {Opcode::LB, "lb", Format::I, OpClass::Load, true, true},
    {Opcode::LBU, "lbu", Format::I, OpClass::Load, true, true},
    {Opcode::SW, "sw", Format::I, OpClass::Store, true, false},
    {Opcode::SH, "sh", Format::I, OpClass::Store, true, false},
    {Opcode::SB, "sb", Format::I, OpClass::Store, true, false},
    {Opcode::BEQ, "beq", Format::I, OpClass::BranchCond, true, false},
    {Opcode::BNE, "bne", Format::I, OpClass::BranchCond, true, false},
    {Opcode::BLT, "blt", Format::I, OpClass::BranchCond, true, false},
    {Opcode::BGE, "bge", Format::I, OpClass::BranchCond, true, false},
    {Opcode::BLTU, "bltu", Format::I, OpClass::BranchCond, true, false},
    {Opcode::BGEU, "bgeu", Format::I, OpClass::BranchCond, true, false},
    {Opcode::J, "j", Format::J, OpClass::BranchUncond, false, false},
    {Opcode::JAL, "jal", Format::J, OpClass::BranchUncond, false, true},
    {Opcode::JR, "jr", Format::R, OpClass::BranchInd, false, false},
    {Opcode::JALR, "jalr", Format::R, OpClass::BranchInd, false, true},
    {Opcode::FADD, "fadd", Format::R, OpClass::FpAlu, false, true},
    {Opcode::FSUB, "fsub", Format::R, OpClass::FpAlu, false, true},
    {Opcode::FMUL, "fmul", Format::R, OpClass::FpMul, false, true},
    {Opcode::FDIV, "fdiv", Format::R, OpClass::FpDiv, false, true},
    {Opcode::FLW, "flw", Format::I, OpClass::Load, true, true},
    {Opcode::FSW, "fsw", Format::I, OpClass::Store, true, false},
    {Opcode::FMVI, "fmvi", Format::R, OpClass::FpAlu, false, true},
    {Opcode::FCMPLT, "fcmplt", Format::R, OpClass::FpAlu, false, true},
    {Opcode::NOP, "nop", Format::None, OpClass::Nop, false, false},
    {Opcode::HALT, "halt", Format::None, OpClass::Halt, false, false},
    {Opcode::PUTC, "putc", Format::R, OpClass::Syscall, false, false},
}};

const char *const kIntRegNames[kNumIntRegs] = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
};

std::unordered_map<std::string, Opcode>
buildMnemonicMap()
{
    std::unordered_map<std::string, Opcode> m;
    for (const auto &info : kOpTable)
        m.emplace(info.mnemonic, info.op);
    return m;
}

std::unordered_map<std::string, int>
buildRegMap()
{
    std::unordered_map<std::string, int> m;
    for (int i = 0; i < kNumIntRegs; ++i) {
        m.emplace(kIntRegNames[i], i);
        m.emplace("r" + std::to_string(i), i);
        m.emplace("$" + std::to_string(i), i);
    }
    for (int i = 0; i < kNumFpRegs; ++i)
        m.emplace("f" + std::to_string(i), kFpRegBase + i);
    return m;
}

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    int idx = static_cast<int>(op);
    if (idx < 0 || idx >= kNum)
        panic("opInfo: bad opcode %d", idx);
    const OpInfo &info = kOpTable[static_cast<size_t>(idx)];
    if (info.op != op)
        panic("opInfo: table out of order at %d", idx);
    return info;
}

bool
opcodeFromMnemonic(const std::string &mnemonic, Opcode &out)
{
    static const auto map = buildMnemonicMap();
    auto it = map.find(mnemonic);
    if (it == map.end())
        return false;
    out = it->second;
    return true;
}

bool
isControl(OpClass cls)
{
    return cls == OpClass::BranchCond || cls == OpClass::BranchUncond ||
        cls == OpClass::BranchInd;
}

bool
isMem(OpClass cls)
{
    return cls == OpClass::Load || cls == OpClass::Store;
}

const char *
intRegName(int reg)
{
    if (reg < 0 || reg >= kNumIntRegs)
        panic("intRegName: bad register %d", reg);
    return kIntRegNames[reg];
}

int
parseRegister(const std::string &token)
{
    static const auto map = buildRegMap();
    auto it = map.find(token);
    return it == map.end() ? kNoReg : it->second;
}

std::string
regName(int flat_reg)
{
    if (flat_reg >= 0 && flat_reg < kNumIntRegs)
        return intRegName(flat_reg);
    if (flat_reg >= kFpRegBase && flat_reg < kNumArchRegs)
        return "f" + std::to_string(flat_reg - kFpRegBase);
    return "<bad:" + std::to_string(flat_reg) + ">";
}

namespace {

uint32_t
opBits(Opcode op)
{
    return static_cast<uint32_t>(op) << 26;
}

uint32_t
regField(int reg)
{
    // Strip the FP base: the format tells the decoder which class the
    // field refers to.
    int r = reg >= kFpRegBase ? reg - kFpRegBase : reg;
    if (r < 0 || r >= 32)
        panic("encode: bad register %d", reg);
    return static_cast<uint32_t>(r);
}

} // namespace

uint32_t
encodeR(Opcode op, int rd, int rs, int rt)
{
    return opBits(op) | (regField(rs) << 21) | (regField(rt) << 16) |
        (regField(rd) << 11);
}

uint32_t
encodeI(Opcode op, int rt, int rs, uint16_t imm)
{
    return opBits(op) | (regField(rs) << 21) | (regField(rt) << 16) |
        imm;
}

uint32_t
encodeJ(Opcode op, uint32_t target_addr)
{
    if (target_addr & 3u)
        panic("encodeJ: misaligned target 0x%x", target_addr);
    return opBits(op) | ((target_addr >> 2) & 0x03ffffffu);
}

uint32_t
encodeNone(Opcode op)
{
    return opBits(op);
}

} // namespace cesp::isa
