/**
 * @file
 * Disassembler: decoded instruction -> assembly text. Used by the
 * steering-visualization example, debug dumps, and tests (round-trip
 * against the assembler).
 */

#ifndef CESP_ISA_DISASM_HPP
#define CESP_ISA_DISASM_HPP

#include <cstdint>
#include <string>

#include "isa/decode.hpp"

namespace cesp::isa {

/**
 * Render an instruction as assembly text. @p pc is used to print
 * absolute branch targets.
 */
std::string disassemble(const Decoded &d, uint32_t pc);

/** Convenience overload: decode then disassemble. */
std::string disassemble(uint32_t raw, uint32_t pc);

} // namespace cesp::isa

#endif // CESP_ISA_DISASM_HPP
