/**
 * @file
 * Implementation of the instruction decoder.
 */

#include "isa/decode.hpp"

namespace cesp::isa {

namespace {

int
fpReg(uint32_t field)
{
    return kFpRegBase + static_cast<int>(field);
}

} // namespace

bool
isValidEncoding(uint32_t raw)
{
    return (raw >> 26) < static_cast<uint32_t>(Opcode::NUM_OPCODES);
}

Decoded
decode(uint32_t raw)
{
    Decoded d;
    uint32_t opfield = raw >> 26;
    if (opfield >= static_cast<uint32_t>(Opcode::NUM_OPCODES)) {
        // Treat garbage as NOP; the emulator separately faults on
        // fetching from unmapped memory, so this only matters for
        // deliberately-malformed inputs.
        return d;
    }
    d.op = static_cast<Opcode>(opfield);
    const OpInfo &info = opInfo(d.op);
    d.cls = info.cls;
    d.format = info.format;

    int rs = static_cast<int>((raw >> 21) & 31);
    int rt = static_cast<int>((raw >> 16) & 31);
    int rd = static_cast<int>((raw >> 11) & 31);
    uint16_t imm16 = static_cast<uint16_t>(raw & 0xffff);
    d.imm = info.imm_signed ? static_cast<int32_t>(
                static_cast<int16_t>(imm16))
                            : static_cast<int32_t>(imm16);
    d.jtarget = (raw & 0x03ffffffu) << 2;

    switch (d.op) {
      // R-type integer: rd <- rs OP rt
      case Opcode::ADD: case Opcode::SUB: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::NOR:
      case Opcode::SLT: case Opcode::SLTU: case Opcode::SLLV:
      case Opcode::SRLV: case Opcode::SRAV: case Opcode::MUL:
      case Opcode::MULH: case Opcode::DIV: case Opcode::REM:
        d.dst = rd;
        d.src1 = rs;
        d.src2 = rt;
        break;
      // I-type integer: rt <- rs OP imm
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SLTI: case Opcode::SLTIU:
      case Opcode::SLLI: case Opcode::SRLI: case Opcode::SRAI:
        d.dst = rt;
        d.src1 = rs;
        break;
      case Opcode::LUI:
        d.dst = rt;
        break;
      // Loads: rt <- mem[rs + imm]
      case Opcode::LW: case Opcode::LH: case Opcode::LHU:
      case Opcode::LB: case Opcode::LBU:
        d.dst = rt;
        d.src1 = rs;
        break;
      case Opcode::FLW:
        d.dst = fpReg(static_cast<uint32_t>(rt));
        d.src1 = rs;
        break;
      // Stores: mem[rs + imm] <- rt
      case Opcode::SW: case Opcode::SH: case Opcode::SB:
        d.src1 = rs;
        d.src2 = rt;
        break;
      case Opcode::FSW:
        d.src1 = rs;
        d.src2 = fpReg(static_cast<uint32_t>(rt));
        break;
      // Branches: compare rs, rt
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
        d.src1 = rs;
        d.src2 = rt;
        break;
      case Opcode::J:
        break;
      case Opcode::JAL:
        d.dst = 31; // link register
        break;
      case Opcode::JR:
        d.src1 = rs;
        break;
      case Opcode::JALR:
        d.dst = rd;
        d.src1 = rs;
        break;
      // FP R-type: fd <- fs OP ft
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
      case Opcode::FDIV:
        d.dst = fpReg(static_cast<uint32_t>(rd));
        d.src1 = fpReg(static_cast<uint32_t>(rs));
        d.src2 = fpReg(static_cast<uint32_t>(rt));
        break;
      case Opcode::FMVI:
        d.dst = fpReg(static_cast<uint32_t>(rd));
        d.src1 = rs;
        break;
      case Opcode::FCMPLT:
        d.dst = rd;
        d.src1 = fpReg(static_cast<uint32_t>(rs));
        d.src2 = fpReg(static_cast<uint32_t>(rt));
        break;
      case Opcode::PUTC:
        d.src1 = rs;
        break;
      case Opcode::NOP: case Opcode::HALT:
        break;
      case Opcode::NUM_OPCODES:
        break;
    }
    return d;
}

} // namespace cesp::isa
