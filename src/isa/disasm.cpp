/**
 * @file
 * Implementation of the disassembler.
 */

#include "isa/disasm.hpp"

#include "common/logging.hpp"

namespace cesp::isa {

std::string
disassemble(const Decoded &d, uint32_t pc)
{
    const OpInfo &info = opInfo(d.op);
    const char *m = info.mnemonic;
    switch (d.format) {
      case Format::None:
        return m;
      case Format::R:
        switch (d.op) {
          case Opcode::JR:
            return strprintf("%s %s", m, regName(d.src1).c_str());
          case Opcode::JALR:
            return strprintf("%s %s, %s", m, regName(d.dst).c_str(),
                             regName(d.src1).c_str());
          case Opcode::PUTC:
            return strprintf("%s %s", m, regName(d.src1).c_str());
          case Opcode::FMVI:
            return strprintf("%s %s, %s", m, regName(d.dst).c_str(),
                             regName(d.src1).c_str());
          default:
            return strprintf("%s %s, %s, %s", m,
                             regName(d.dst).c_str(),
                             regName(d.src1).c_str(),
                             regName(d.src2).c_str());
        }
      case Format::I:
        switch (d.cls) {
          case OpClass::Load:
            return strprintf("%s %s, %d(%s)", m,
                             regName(d.dst).c_str(), d.imm,
                             regName(d.src1).c_str());
          case OpClass::Store:
            return strprintf("%s %s, %d(%s)", m,
                             regName(d.src2).c_str(), d.imm,
                             regName(d.src1).c_str());
          case OpClass::BranchCond:
            return strprintf("%s %s, %s, 0x%x", m,
                             regName(d.src1).c_str(),
                             regName(d.src2).c_str(),
                             pc + 4 + static_cast<uint32_t>(d.imm) * 4);
          default:
            if (d.op == Opcode::LUI)
                return strprintf("%s %s, %d", m,
                                 regName(d.dst).c_str(), d.imm);
            return strprintf("%s %s, %s, %d", m,
                             regName(d.dst).c_str(),
                             regName(d.src1).c_str(), d.imm);
        }
      case Format::J:
        return strprintf("%s 0x%x", m,
                         (pc & 0xf0000000u) | d.jtarget);
    }
    return "<?>";
}

std::string
disassemble(uint32_t raw, uint32_t pc)
{
    return disassemble(decode(raw), pc);
}

} // namespace cesp::isa
