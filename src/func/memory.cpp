/**
 * @file
 * Implementation of the sparse memory.
 */

#include "func/memory.hpp"

namespace cesp::func {

const Memory::Page *
Memory::findPage(uint32_t addr) const
{
    uint32_t key = addr >> kPageBits;
    if (key == last_key_ && last_page_)
        return last_page_;
    auto it = pages_.find(key);
    if (it == pages_.end())
        return nullptr;
    last_key_ = key;
    last_page_ = &it->second;
    return last_page_;
}

Memory::Page &
Memory::touchPage(uint32_t addr)
{
    uint32_t key = addr >> kPageBits;
    auto it = pages_.find(key);
    if (it == pages_.end()) {
        it = pages_.emplace(key, Page{}).first;
        // The lookaside may now dangle after a rehash.
        last_key_ = 0xffffffff;
        last_page_ = nullptr;
    }
    return it->second;
}

uint8_t
Memory::read8(uint32_t addr) const
{
    const Page *p = findPage(addr);
    return p ? (*p)[addr & (kPageSize - 1)] : 0;
}

uint16_t
Memory::read16(uint32_t addr) const
{
    return static_cast<uint16_t>(read8(addr)) |
        static_cast<uint16_t>(static_cast<uint16_t>(read8(addr + 1))
                              << 8);
}

uint32_t
Memory::read32(uint32_t addr) const
{
    // Fast path for the common aligned in-page case.
    if ((addr & 3) == 0) {
        const Page *p = findPage(addr);
        if (!p)
            return 0;
        uint32_t off = addr & (kPageSize - 1);
        return static_cast<uint32_t>((*p)[off]) |
            (static_cast<uint32_t>((*p)[off + 1]) << 8) |
            (static_cast<uint32_t>((*p)[off + 2]) << 16) |
            (static_cast<uint32_t>((*p)[off + 3]) << 24);
    }
    return static_cast<uint32_t>(read16(addr)) |
        (static_cast<uint32_t>(read16(addr + 2)) << 16);
}

void
Memory::write8(uint32_t addr, uint8_t v)
{
    touchPage(addr)[addr & (kPageSize - 1)] = v;
}

void
Memory::write16(uint32_t addr, uint16_t v)
{
    write8(addr, static_cast<uint8_t>(v));
    write8(addr + 1, static_cast<uint8_t>(v >> 8));
}

void
Memory::write32(uint32_t addr, uint32_t v)
{
    if ((addr & 3) == 0) {
        Page &p = touchPage(addr);
        uint32_t off = addr & (kPageSize - 1);
        p[off] = static_cast<uint8_t>(v);
        p[off + 1] = static_cast<uint8_t>(v >> 8);
        p[off + 2] = static_cast<uint8_t>(v >> 16);
        p[off + 3] = static_cast<uint8_t>(v >> 24);
        return;
    }
    write16(addr, static_cast<uint16_t>(v));
    write16(addr + 2, static_cast<uint16_t>(v >> 16));
}

void
Memory::loadProgram(const assembler::Program &p)
{
    for (const auto &[base, bytes] : p.segments)
        for (size_t i = 0; i < bytes.size(); ++i)
            write8(base + static_cast<uint32_t>(i), bytes[i]);
}

} // namespace cesp::func
