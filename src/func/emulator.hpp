/**
 * @file
 * Functional emulator for PJ-RISC: architecturally executes a program
 * and optionally captures the dynamic instruction trace that drives
 * the timing simulator. This substitutes for the paper's use of
 * SimpleScalar's functional front end over SPEC'95 binaries.
 */

#ifndef CESP_FUNC_EMULATOR_HPP
#define CESP_FUNC_EMULATOR_HPP

#include <cstdint>
#include <string>

#include "asm/program.hpp"
#include "func/memory.hpp"
#include "trace/trace.hpp"

namespace cesp::func {

/** Outcome of an emulation run. */
struct ExecResult
{
    uint64_t instructions = 0; //!< dynamic instructions executed
    bool halted = false;       //!< reached HALT (vs instruction limit)
    std::string console;       //!< bytes written via PUTC
    uint64_t faults = 0;       //!< div-by-zero etc. (result forced 0)
    uint64_t unaligned = 0;    //!< misaligned half/word accesses
};

/** Architectural machine state + executor. */
class Emulator
{
  public:
    explicit Emulator(const assembler::Program &program);

    /**
     * Execute up to @p max_instructions. If @p sink is non-null every
     * retired instruction is appended to it.
     */
    ExecResult run(uint64_t max_instructions,
                   trace::TraceSink *sink = nullptr);

    /** Execute a single instruction; false once halted. */
    bool step(trace::TraceSink *sink = nullptr);

    uint32_t pc() const { return pc_; }
    uint32_t intReg(int r) const { return regs_[r]; }
    float fpReg(int r) const { return fregs_[r]; }
    void setIntReg(int r, uint32_t v);
    const Memory &memory() const { return mem_; }
    Memory &memory() { return mem_; }
    bool halted() const { return halted_; }
    const std::string &console() const { return console_; }
    uint64_t instructions() const { return icount_; }
    uint64_t faults() const { return faults_; }
    /** Misaligned half/word memory accesses (allowed, but counted). */
    uint64_t unalignedAccesses() const { return unaligned_; }

  private:
    Memory mem_;
    uint32_t regs_[isa::kNumIntRegs] = {};
    float fregs_[isa::kNumFpRegs] = {};
    uint32_t pc_;
    bool halted_ = false;
    std::string console_;
    uint64_t icount_ = 0;
    uint64_t faults_ = 0;
    uint64_t unaligned_ = 0;
};

/**
 * Convenience: assemble a source string, run it to completion (bounded
 * by @p max_instructions), and capture the trace into @p buf if
 * non-null. Fatal on assembly errors.
 */
ExecResult runProgram(const std::string &source,
                      uint64_t max_instructions,
                      trace::TraceBuffer *buf = nullptr);

} // namespace cesp::func

#endif // CESP_FUNC_EMULATOR_HPP
