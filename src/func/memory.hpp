/**
 * @file
 * Sparse paged memory for the functional emulator. Pages are allocated
 * on first write; reads of unmapped memory return zero (BSS-like
 * semantics), so workloads do not need to reserve every byte they
 * touch. Little-endian, 32-bit address space.
 */

#ifndef CESP_FUNC_MEMORY_HPP
#define CESP_FUNC_MEMORY_HPP

#include <array>
#include <cstdint>
#include <unordered_map>

#include "asm/program.hpp"

namespace cesp::func {

/** Sparse 32-bit byte-addressable memory. */
class Memory
{
  public:
    static constexpr uint32_t kPageBits = 12;
    static constexpr uint32_t kPageSize = 1u << kPageBits;

    uint8_t read8(uint32_t addr) const;
    uint16_t read16(uint32_t addr) const;
    uint32_t read32(uint32_t addr) const;

    void write8(uint32_t addr, uint8_t v);
    void write16(uint32_t addr, uint16_t v);
    void write32(uint32_t addr, uint32_t v);

    /** Copy a program image's segments into memory. */
    void loadProgram(const assembler::Program &p);

    /** Number of resident pages (for tests / stats). */
    size_t residentPages() const { return pages_.size(); }

  private:
    using Page = std::array<uint8_t, kPageSize>;

    const Page *findPage(uint32_t addr) const;
    Page &touchPage(uint32_t addr);

    std::unordered_map<uint32_t, Page> pages_;
    /// One-entry lookaside for the hot page on reads.
    mutable uint32_t last_key_ = 0xffffffff;
    mutable const Page *last_page_ = nullptr;
};

} // namespace cesp::func

#endif // CESP_FUNC_MEMORY_HPP
