/**
 * @file
 * Implementation of the functional emulator.
 */

#include "func/emulator.hpp"

#include <bit>
#include <cstring>

#include "asm/assembler.hpp"
#include "common/logging.hpp"
#include "isa/decode.hpp"

namespace cesp::func {

using isa::Opcode;
using isa::OpClass;

Emulator::Emulator(const assembler::Program &program)
    : pc_(program.entry)
{
    mem_.loadProgram(program);
    regs_[29] = assembler::kStackTop; // sp
    regs_[31] = 0;                    // ra: returning to 0 is an error
}

void
Emulator::setIntReg(int r, uint32_t v)
{
    if (r < 0 || r >= isa::kNumIntRegs)
        panic("setIntReg: bad register %d", r);
    if (r != 0)
        regs_[r] = v;
}

bool
Emulator::step(trace::TraceSink *sink)
{
    if (halted_)
        return false;

    uint32_t raw = mem_.read32(pc_);
    isa::Decoded d = isa::decode(raw);

    trace::TraceOp t;
    t.pc = pc_;
    t.op = d.op;
    t.cls = d.cls;
    t.dst = static_cast<int8_t>(d.dst);
    t.src1 = static_cast<int8_t>(d.src1);
    t.src2 = static_cast<int8_t>(d.src2);

    uint32_t next = pc_ + 4;

    auto ir = [&](int reg) { return regs_[reg]; };
    auto fr = [&](int flat) { return fregs_[flat - isa::kFpRegBase]; };
    auto set_i = [&](uint32_t v) {
        if (d.dst > 0 && d.dst < isa::kNumIntRegs)
            regs_[d.dst] = v;
    };
    auto set_f = [&](float v) {
        fregs_[d.dst - isa::kFpRegBase] = v;
    };
    auto branch = [&](bool cond) {
        t.taken = cond;
        if (cond)
            next = pc_ + 4 + static_cast<uint32_t>(d.imm) * 4;
    };
    auto ea = [&] {
        uint32_t a = ir(d.src1) + static_cast<uint32_t>(d.imm);
        t.mem_addr = a;
        // PJ-RISC permits unaligned accesses but real MIPS-era
        // hardware traps; count them so tests can flag kernels that
        // would not have run on the paper's machines.
        uint32_t size = 0;
        switch (d.op) {
          case Opcode::LW: case Opcode::SW: case Opcode::FLW:
          case Opcode::FSW:
            size = 4;
            break;
          case Opcode::LH: case Opcode::LHU: case Opcode::SH:
            size = 2;
            break;
          default:
            break;
        }
        if (size > 1 && (a & (size - 1)))
            ++unaligned_;
        return a;
    };

    switch (d.op) {
      case Opcode::ADD: set_i(ir(d.src1) + ir(d.src2)); break;
      case Opcode::SUB: set_i(ir(d.src1) - ir(d.src2)); break;
      case Opcode::AND: set_i(ir(d.src1) & ir(d.src2)); break;
      case Opcode::OR: set_i(ir(d.src1) | ir(d.src2)); break;
      case Opcode::XOR: set_i(ir(d.src1) ^ ir(d.src2)); break;
      case Opcode::NOR: set_i(~(ir(d.src1) | ir(d.src2))); break;
      case Opcode::SLT:
        set_i(static_cast<int32_t>(ir(d.src1)) <
              static_cast<int32_t>(ir(d.src2)) ? 1 : 0);
        break;
      case Opcode::SLTU:
        set_i(ir(d.src1) < ir(d.src2) ? 1 : 0);
        break;
      case Opcode::SLLV: set_i(ir(d.src1) << (ir(d.src2) & 31)); break;
      case Opcode::SRLV: set_i(ir(d.src1) >> (ir(d.src2) & 31)); break;
      case Opcode::SRAV:
        set_i(static_cast<uint32_t>(
            static_cast<int32_t>(ir(d.src1)) >> (ir(d.src2) & 31)));
        break;
      case Opcode::MUL:
        set_i(static_cast<uint32_t>(
            static_cast<int64_t>(static_cast<int32_t>(ir(d.src1))) *
            static_cast<int32_t>(ir(d.src2))));
        break;
      case Opcode::MULH:
        set_i(static_cast<uint32_t>(
            (static_cast<int64_t>(static_cast<int32_t>(ir(d.src1))) *
             static_cast<int32_t>(ir(d.src2))) >> 32));
        break;
      case Opcode::DIV: {
        int32_t a = static_cast<int32_t>(ir(d.src1));
        int32_t b = static_cast<int32_t>(ir(d.src2));
        if (b == 0 || (a == INT32_MIN && b == -1)) {
            ++faults_;
            set_i(0);
        } else {
            set_i(static_cast<uint32_t>(a / b));
        }
        break;
      }
      case Opcode::REM: {
        int32_t a = static_cast<int32_t>(ir(d.src1));
        int32_t b = static_cast<int32_t>(ir(d.src2));
        if (b == 0 || (a == INT32_MIN && b == -1)) {
            ++faults_;
            set_i(0);
        } else {
            set_i(static_cast<uint32_t>(a % b));
        }
        break;
      }
      case Opcode::ADDI:
        set_i(ir(d.src1) + static_cast<uint32_t>(d.imm));
        break;
      case Opcode::ANDI:
        set_i(ir(d.src1) & static_cast<uint32_t>(d.imm));
        break;
      case Opcode::ORI:
        set_i(ir(d.src1) | static_cast<uint32_t>(d.imm));
        break;
      case Opcode::XORI:
        set_i(ir(d.src1) ^ static_cast<uint32_t>(d.imm));
        break;
      case Opcode::SLTI:
        set_i(static_cast<int32_t>(ir(d.src1)) < d.imm ? 1 : 0);
        break;
      case Opcode::SLTIU:
        set_i(ir(d.src1) < static_cast<uint32_t>(d.imm) ? 1 : 0);
        break;
      case Opcode::LUI:
        set_i(static_cast<uint32_t>(d.imm) << 16);
        break;
      case Opcode::SLLI: set_i(ir(d.src1) << (d.imm & 31)); break;
      case Opcode::SRLI: set_i(ir(d.src1) >> (d.imm & 31)); break;
      case Opcode::SRAI:
        set_i(static_cast<uint32_t>(
            static_cast<int32_t>(ir(d.src1)) >> (d.imm & 31)));
        break;
      case Opcode::LW:
        t.mem_size = 4;
        set_i(mem_.read32(ea()));
        break;
      case Opcode::LH:
        t.mem_size = 2;
        set_i(static_cast<uint32_t>(static_cast<int32_t>(
            static_cast<int16_t>(mem_.read16(ea())))));
        break;
      case Opcode::LHU:
        t.mem_size = 2;
        set_i(mem_.read16(ea()));
        break;
      case Opcode::LB:
        t.mem_size = 1;
        set_i(static_cast<uint32_t>(static_cast<int32_t>(
            static_cast<int8_t>(mem_.read8(ea())))));
        break;
      case Opcode::LBU:
        t.mem_size = 1;
        set_i(mem_.read8(ea()));
        break;
      case Opcode::SW:
        t.mem_size = 4;
        mem_.write32(ea(), ir(d.src2));
        break;
      case Opcode::SH:
        t.mem_size = 2;
        mem_.write16(ea(), static_cast<uint16_t>(ir(d.src2)));
        break;
      case Opcode::SB:
        t.mem_size = 1;
        mem_.write8(ea(), static_cast<uint8_t>(ir(d.src2)));
        break;
      case Opcode::BEQ: branch(ir(d.src1) == ir(d.src2)); break;
      case Opcode::BNE: branch(ir(d.src1) != ir(d.src2)); break;
      case Opcode::BLT:
        branch(static_cast<int32_t>(ir(d.src1)) <
               static_cast<int32_t>(ir(d.src2)));
        break;
      case Opcode::BGE:
        branch(static_cast<int32_t>(ir(d.src1)) >=
               static_cast<int32_t>(ir(d.src2)));
        break;
      case Opcode::BLTU: branch(ir(d.src1) < ir(d.src2)); break;
      case Opcode::BGEU: branch(ir(d.src1) >= ir(d.src2)); break;
      case Opcode::J:
        t.taken = true;
        next = (pc_ & 0xf0000000u) | d.jtarget;
        break;
      case Opcode::JAL:
        t.taken = true;
        regs_[31] = pc_ + 4;
        next = (pc_ & 0xf0000000u) | d.jtarget;
        break;
      case Opcode::JR:
        t.taken = true;
        next = ir(d.src1);
        break;
      case Opcode::JALR:
        t.taken = true;
        next = ir(d.src1);
        set_i(pc_ + 4);
        break;
      case Opcode::FADD: set_f(fr(d.src1) + fr(d.src2)); break;
      case Opcode::FSUB: set_f(fr(d.src1) - fr(d.src2)); break;
      case Opcode::FMUL: set_f(fr(d.src1) * fr(d.src2)); break;
      case Opcode::FDIV: set_f(fr(d.src1) / fr(d.src2)); break;
      case Opcode::FLW: {
        t.mem_size = 4;
        uint32_t bits = mem_.read32(ea());
        set_f(std::bit_cast<float>(bits));
        break;
      }
      case Opcode::FSW: {
        t.mem_size = 4;
        float v = fr(d.src2);
        mem_.write32(ea(), std::bit_cast<uint32_t>(v));
        break;
      }
      case Opcode::FMVI:
        set_f(std::bit_cast<float>(ir(d.src1)));
        break;
      case Opcode::FCMPLT:
        set_i(fr(d.src1) < fr(d.src2) ? 1 : 0);
        break;
      case Opcode::PUTC:
        console_ += static_cast<char>(ir(d.src1) & 0xff);
        break;
      case Opcode::NOP:
        break;
      case Opcode::HALT:
        halted_ = true;
        break;
      case Opcode::NUM_OPCODES:
        break;
    }

    regs_[0] = 0;
    t.next_pc = next;
    pc_ = next;
    ++icount_;
    if (sink)
        sink->append(t);
    return !halted_;
}

ExecResult
Emulator::run(uint64_t max_instructions, trace::TraceSink *sink)
{
    uint64_t start = icount_;
    while (!halted_ && icount_ - start < max_instructions)
        step(sink);
    ExecResult r;
    r.instructions = icount_ - start;
    r.halted = halted_;
    r.console = console_;
    r.faults = faults_;
    r.unaligned = unaligned_;
    return r;
}

ExecResult
runProgram(const std::string &source, uint64_t max_instructions,
           trace::TraceBuffer *buf)
{
    assembler::Program p = assembler::assembleOrDie(source);
    Emulator emu(p);
    return emu.run(max_instructions, buf);
}

} // namespace cesp::func
