/**
 * @file
 * Branch direction predictors. The paper's simulator (Table 3) uses
 * McFarling's gshare with 4K 2-bit counters and 12 bits of global
 * history, with unconditional control predicted perfectly; that
 * perfect treatment is handled by the pipeline (only conditional
 * branches consult the predictor).
 */

#ifndef CESP_BPRED_BPRED_HPP
#define CESP_BPRED_BPRED_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "uarch/config.hpp"

namespace cesp::bpred {

/** Direction predictor interface. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the conditional branch at @p pc. */
    virtual bool predict(uint32_t pc) = 0;

    /** Train with the actual outcome (called after predict). */
    virtual void update(uint32_t pc, bool taken) = 0;

    uint64_t lookups() const { return lookups_; }
    uint64_t mispredicts() const { return mispredicts_; }

    /** Record one predicted/actual pair for accuracy accounting. */
    void
    record(bool predicted, bool actual)
    {
        ++lookups_;
        if (predicted != actual)
            ++mispredicts_;
    }

    double
    accuracy() const
    {
        return lookups_
            ? 1.0 - static_cast<double>(mispredicts_) /
                static_cast<double>(lookups_)
            : 1.0;
    }

  protected:
    uint64_t lookups_ = 0;
    uint64_t mispredicts_ = 0;
};

/**
 * McFarling gshare: global history XOR pc indexes a table of
 * saturating counters.
 */
class Gshare : public BranchPredictor
{
  public:
    explicit Gshare(const uarch::BpredConfig &cfg);

    bool predict(uint32_t pc) override;
    void update(uint32_t pc, bool taken) override;

  private:
    uint32_t index(uint32_t pc) const;

    std::vector<uint8_t> counters_;
    uint32_t history_ = 0;
    uint32_t history_mask_;
    uint32_t index_mask_;
    uint8_t counter_max_;
    uint8_t counter_init_;
};

/** Two-bit bimodal predictor (no history), for comparison studies. */
class Bimodal : public BranchPredictor
{
  public:
    explicit Bimodal(int table_entries);

    bool predict(uint32_t pc) override;
    void update(uint32_t pc, bool taken) override;

  private:
    std::vector<uint8_t> counters_;
    uint32_t index_mask_;
};

/** Static always/never-taken predictor. */
class StaticTaken : public BranchPredictor
{
  public:
    explicit StaticTaken(bool taken) : taken_(taken) {}

    bool predict(uint32_t) override { return taken_; }
    void update(uint32_t, bool) override {}

  private:
    bool taken_;
};

/** Build the predictor described by a BpredConfig (gshare family). */
std::unique_ptr<BranchPredictor>
makePredictor(const uarch::BpredConfig &cfg);

} // namespace cesp::bpred

#endif // CESP_BPRED_BPRED_HPP
