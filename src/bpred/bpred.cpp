/**
 * @file
 * Branch predictor implementations.
 */

#include "bpred/bpred.hpp"

#include "common/logging.hpp"

namespace cesp::bpred {

namespace {

bool
isPow2(uint32_t v)
{
    return v && !(v & (v - 1));
}

} // namespace

Gshare::Gshare(const uarch::BpredConfig &cfg)
{
    if (!isPow2(static_cast<uint32_t>(cfg.table_entries)))
        fatal("gshare: table entries %d not a power of two",
              cfg.table_entries);
    if (cfg.history_bits < 0 || cfg.history_bits > 30)
        fatal("gshare: history bits %d out of range", cfg.history_bits);
    if (cfg.counter_bits < 1 || cfg.counter_bits > 7)
        fatal("gshare: counter bits %d out of range", cfg.counter_bits);
    index_mask_ = static_cast<uint32_t>(cfg.table_entries) - 1;
    history_mask_ = cfg.history_bits >= 31
        ? 0xffffffffu : ((1u << cfg.history_bits) - 1);
    counter_max_ =
        static_cast<uint8_t>((1u << cfg.counter_bits) - 1);
    // Weakly not-taken start.
    counter_init_ = static_cast<uint8_t>(counter_max_ / 2);
    counters_.assign(static_cast<size_t>(cfg.table_entries),
                     counter_init_);
}

uint32_t
Gshare::index(uint32_t pc) const
{
    return ((pc >> 2) ^ history_) & index_mask_;
}

bool
Gshare::predict(uint32_t pc)
{
    return counters_[index(pc)] > counter_max_ / 2;
}

void
Gshare::update(uint32_t pc, bool taken)
{
    uint8_t &c = counters_[index(pc)];
    if (taken && c < counter_max_)
        ++c;
    else if (!taken && c > 0)
        --c;
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
}

Bimodal::Bimodal(int table_entries)
{
    if (!isPow2(static_cast<uint32_t>(table_entries)))
        fatal("bimodal: table entries %d not a power of two",
              table_entries);
    index_mask_ = static_cast<uint32_t>(table_entries) - 1;
    counters_.assign(static_cast<size_t>(table_entries), 1);
}

bool
Bimodal::predict(uint32_t pc)
{
    return counters_[(pc >> 2) & index_mask_] > 1;
}

void
Bimodal::update(uint32_t pc, bool taken)
{
    uint8_t &c = counters_[(pc >> 2) & index_mask_];
    if (taken && c < 3)
        ++c;
    else if (!taken && c > 0)
        --c;
}

std::unique_ptr<BranchPredictor>
makePredictor(const uarch::BpredConfig &cfg)
{
    switch (cfg.kind) {
      case uarch::BpredKind::Gshare:
        return std::make_unique<Gshare>(cfg);
      case uarch::BpredKind::Bimodal:
        return std::make_unique<Bimodal>(cfg.table_entries);
      case uarch::BpredKind::AlwaysTaken:
        return std::make_unique<StaticTaken>(true);
      case uarch::BpredKind::NeverTaken:
        return std::make_unique<StaticTaken>(false);
    }
    fatal("unknown branch predictor kind %d",
          static_cast<int>(cfg.kind));
}

} // namespace cesp::bpred
