/**
 * @file
 * Implementation of the cache access-time model.
 */

#include "vlsi/cache_delay.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace cesp::vlsi {

namespace {

// 0.18 um base coefficients (ps).
constexpr double kDecodeBase = 80.0;
constexpr double kDecodePerLog2Row = 18.0;
constexpr double kWordlineBase = 60.0;
constexpr double kWordlinePerBit = 0.35;
constexpr double kBitlineBase = 100.0;
constexpr double kBitlinePerRow = 0.45;
constexpr double kSense = 90.0;
constexpr double kTagBase = 60.0;
constexpr double kTagPerWay = 20.0;
constexpr int kMaxRows = 256;

bool
isPow2(uint32_t v)
{
    return v && !(v & (v - 1));
}

} // namespace

CacheDelayModel::CacheDelayModel(Process p) : process_(p)
{
    switch (p) {
      case Process::um0_8:
        logic_scale_ = 0.8 / 0.18;
        wire_scale_ = 2.9;
        break;
      case Process::um0_35:
        logic_scale_ = 0.35 / 0.18;
        wire_scale_ = 1.75;
        break;
      case Process::um0_18:
        logic_scale_ = 1.0;
        wire_scale_ = 1.0;
        break;
      default:
        panic("unknown process id %d", static_cast<int>(p));
    }
}

CacheDelay
CacheDelayModel::delay(uint32_t size_bytes, int associativity,
                       uint32_t line_bytes) const
{
    if (!isPow2(size_bytes) || !isPow2(line_bytes))
        fatal("cache delay model: size and line must be powers of "
              "two");
    if (associativity < 1 || associativity > 32)
        fatal("cache delay model: associativity %d outside [1, 32]",
              associativity);
    uint32_t line_total = line_bytes *
        static_cast<uint32_t>(associativity);
    if (size_bytes < line_total || size_bytes > (16u << 20))
        fatal("cache delay model: size %u out of range", size_bytes);

    uint32_t sets = size_bytes / line_total;
    uint32_t rows = sets < kMaxRows ? sets : kMaxRows;
    // Folding sets into wider rows keeps the bitlines short, like
    // the array-partitioning parameters of Wilton & Jouppi.
    double row_bits = static_cast<double>(line_total) * 8.0 *
        (static_cast<double>(sets) / rows);

    CacheDelay d;
    d.decode = logic_scale_ *
        (kDecodeBase + kDecodePerLog2Row * std::log2(
            static_cast<double>(rows)));
    d.wordline = logic_scale_ * kWordlineBase +
        wire_scale_ * kWordlinePerBit * row_bits;
    d.bitline = logic_scale_ * kBitlineBase +
        wire_scale_ * kBitlinePerRow * rows;
    d.senseamp = logic_scale_ * kSense;
    d.tag_compare = logic_scale_ *
        (kTagBase + kTagPerWay * associativity);
    return d;
}

} // namespace cesp::vlsi
