/**
 * @file
 * Calibrated technology parameters.
 *
 * The metal RC values are calibrated against Table 1 of the paper: a
 * 20500-lambda result wire must have a distributed-RC delay of
 * 184.9 ps in every technology (constant-wire-delay scaling model).
 * With metal capacitance held at 0.275 fF/um, that fixes the metal
 * resistance per micron for each process. The resulting values
 * (0.02 / 0.10 / 0.40 ohm per um for 0.8 / 0.35 / 0.18 um) are in line
 * with mid-90s process reports.
 */

#include "vlsi/technology.hpp"

#include "common/logging.hpp"

namespace cesp::vlsi {

namespace {

const Technology kTech0_8 = {
    Process::um0_8, "0.8um",
    0.8,        // feature_um
    0.4,        // lambda_um
    0.0199989,  // r_metal_ohm_um
    0.275,      // c_metal_ff_um
    0.8 / 0.18, // logic_scale
};

const Technology kTech0_35 = {
    Process::um0_35, "0.35um",
    0.35,
    0.175,
    0.104484,
    0.275,
    0.35 / 0.18,
};

const Technology kTech0_18 = {
    Process::um0_18, "0.18um",
    0.18,
    0.09,
    0.395040,
    0.275,
    1.0,
};

} // namespace

const std::vector<Process> &
allProcesses()
{
    static const std::vector<Process> all = {
        Process::um0_8, Process::um0_35, Process::um0_18,
    };
    return all;
}

double
Technology::wireDelayPs(double length_lambda) const
{
    double len_um = lambdaToUm(length_lambda);
    // 0.5 * R [ohm/um] * C [fF/um] * L^2 [um^2] -> femtoseconds; the
    // fF supplies the 1e-15, so multiply by 1e-3 to get picoseconds.
    return 0.5 * r_metal_ohm_um * c_metal_ff_um * len_um * len_um * 1e-3;
}

const Technology &
technology(Process p)
{
    switch (p) {
      case Process::um0_8:
        return kTech0_8;
      case Process::um0_35:
        return kTech0_35;
      case Process::um0_18:
        return kTech0_18;
    }
    panic("unknown process id %d", static_cast<int>(p));
}

Technology
makeScaledTechnology(double feature_um)
{
    if (feature_um <= 0.0)
        fatal("feature size must be positive, got %f", feature_um);
    Technology t = kTech0_18;
    double ratio = feature_um / t.feature_um;
    t.name = strprintf("%.3gum", feature_um);
    t.feature_um = feature_um;
    t.lambda_um = feature_um / 2.0;
    // Constant wire-delay-per-lambda scaling: R per um rises as the
    // cross-section shrinks (1/ratio^2); C per um is constant.
    t.r_metal_ohm_um = kTech0_18.r_metal_ohm_um / (ratio * ratio);
    t.logic_scale = ratio;
    return t;
}

} // namespace cesp::vlsi
