/**
 * @file
 * Register file access-time model (paper Section 2.1, after Farkas,
 * Jouppi, and Chow, "Register File Design Considerations in
 * Dynamically Scheduled Processors", HPCA 1996).
 *
 * The paper excludes the register file from its critical-structure
 * study because it can be pipelined, but leans on its port scaling
 * twice: the physical register file of an IW-wide machine needs
 * ~3*IW ports (two reads, one write per instruction), and clustering
 * halves the port count per copy, "making the access time of the
 * register file faster" (Section 5.4). This model quantifies that:
 *
 *   Tregfile = Tdecode + Twordline + Tbitline + Tsenseamp
 *
 * where the storage cell grows linearly with the port count in both
 * dimensions (one wordline per port, one bitline pair per port), so
 * wordline/bitline wire lengths grow with ports and with the number
 * of registers. Calibrated at 0.18 um to sit between the rename map
 * table (a smaller RAM) and the wakeup CAM for the paper's design
 * points, with the Farkas-style superlinear port dependence.
 */

#ifndef CESP_VLSI_REGFILE_DELAY_HPP
#define CESP_VLSI_REGFILE_DELAY_HPP

#include "vlsi/technology.hpp"

namespace cesp::vlsi {

/** Component breakdown of a register file read, in ps. */
struct RegfileDelay
{
    double decode;
    double wordline;
    double bitline;
    double senseamp;

    double
    total() const
    {
        return decode + wordline + bitline + senseamp;
    }
};

/** Calibrated register file access-time model for one technology. */
class RegfileDelayModel
{
  public:
    explicit RegfileDelayModel(Process p);

    /**
     * Access delay for a file of @p num_regs registers with
     * @p read_ports read and @p write_ports write ports.
     */
    RegfileDelay delay(int num_regs, int read_ports,
                       int write_ports) const;

    double
    totalPs(int num_regs, int read_ports, int write_ports) const
    {
        return delay(num_regs, read_ports, write_ports).total();
    }

    /**
     * Convenience: the file of an IW-wide machine (2*IW read ports,
     * IW write ports, Table 3's 120 registers by default).
     */
    double
    machinePs(int issue_width, int num_regs = 120) const
    {
        return totalPs(num_regs, 2 * issue_width, issue_width);
    }

    Process process() const { return process_; }

  private:
    Process process_;
    double logic_scale_;
    double wire_scale_;
};

} // namespace cesp::vlsi

#endif // CESP_VLSI_REGFILE_DELAY_HPP
