/**
 * @file
 * Implementation of the transistor-count estimates.
 */

#include "vlsi/area.hpp"

#include "common/logging.hpp"

namespace cesp::vlsi {

namespace {

constexpr uint64_t kSramCell = 6;      // 6T cell
constexpr uint64_t kPortCost = 2;      // extra access pair per port
constexpr uint64_t kCamBitCell = 10;   // storage + XOR pulldown
constexpr uint64_t kArbiterCell = 16;  // 4-in priority arbiter
constexpr uint64_t kTagDriver = 40;    // per tag-bus bit driver

uint64_t
ramBits(uint64_t bits, int ports)
{
    return bits * (kSramCell +
                   kPortCost * static_cast<uint64_t>(ports));
}

uint64_t
arbiterCells(int leaves)
{
    // A 4-ary tree over `leaves` requesters.
    uint64_t cells = 0;
    int level = leaves;
    while (level > 1) {
        level = (level + 3) / 4;
        cells += static_cast<uint64_t>(level);
    }
    return cells;
}

} // namespace

uint64_t
AreaModel::wakeupCam(int window_size, int issue_width)
{
    if (window_size < 1 || issue_width < 1)
        fatal("area model: bad wakeup shape %dx%d", window_size,
              issue_width);
    uint64_t w = static_cast<uint64_t>(window_size);
    uint64_t iw = static_cast<uint64_t>(issue_width);
    // Two operand tags per entry, each compared against IW result
    // tags: kTagBits comparator bits per (entry, tag, port).
    uint64_t comparators = w * 2 * iw * kTagBits * kCamBitCell;
    // Entry payload RAM with one write (dispatch) and one read
    // (issue) port.
    uint64_t payload = w * ramBits(kEntryPayloadBits, 2);
    // Tag bus drivers: IW buses of kTagBits.
    uint64_t drivers = iw * kTagBits * kTagDriver;
    return comparators + payload + drivers;
}

uint64_t
AreaModel::selectTree(int window_size)
{
    if (window_size < 2)
        fatal("area model: select tree needs >= 2 requesters");
    return arbiterCells(window_size) * kArbiterCell * 4;
}

uint64_t
AreaModel::reservationTable(int phys_regs, int issue_width)
{
    if (phys_regs < 1 || issue_width < 1)
        fatal("area model: bad reservation shape");
    // One bit per register; 2*IW read ports (two operands per
    // instruction at the FIFO heads) + IW write ports.
    return ramBits(static_cast<uint64_t>(phys_regs),
                   3 * issue_width);
}

uint64_t
AreaModel::fifoBuffers(int num_fifos, int depth)
{
    if (num_fifos < 1 || depth < 1)
        fatal("area model: bad FIFO shape %dx%d", num_fifos, depth);
    uint64_t entries = static_cast<uint64_t>(num_fifos) *
        static_cast<uint64_t>(depth);
    // Payload RAM (1W + 1R port) plus head/tail pointer registers
    // and the free-list bookkeeping (~64T per FIFO).
    return entries * ramBits(kEntryPayloadBits, 2) +
        static_cast<uint64_t>(num_fifos) * 64;
}

} // namespace cesp::vlsi
