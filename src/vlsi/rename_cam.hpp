/**
 * @file
 * CAM-scheme register rename delay model (paper Section 4.1.1).
 *
 * The alternative to the RAM map table: a content-addressable memory
 * with one entry per *physical* register (HAL SPARC64, DEC 21264).
 * Renaming matches the logical register designator against every
 * entry, so the delay grows with the physical register count — which
 * itself grows with issue width. The paper found the two schemes
 * comparable for its design space but the CAM less scalable, and
 * focused on the RAM scheme; this model reproduces that comparison:
 *
 *   Tcam = Ttagdrive(P, IW) + Ttagmatch(IW) + Tread(IW, P)
 *
 * calibrated at 0.18 um so that a 4-way/80-register CAM is within
 * ~10% of the 4-way RAM delay, an 8-way/128-register CAM is ~6%
 * *slower* than the 8-way RAM, and doubling the physical registers
 * visibly hurts the CAM while leaving the RAM untouched.
 */

#ifndef CESP_VLSI_RENAME_CAM_HPP
#define CESP_VLSI_RENAME_CAM_HPP

#include "vlsi/technology.hpp"

namespace cesp::vlsi {

/** Component breakdown of the CAM rename critical path, in ps. */
struct RenameCamDelay
{
    double tag_drive; //!< logical designator broadcast over P entries
    double tag_match; //!< per-entry comparators
    double read;      //!< matched entry drives the physical designator

    double
    total() const
    {
        return tag_drive + tag_match + read;
    }
};

/** Calibrated CAM rename delay model for one technology. */
class RenameCamDelayModel
{
  public:
    explicit RenameCamDelayModel(Process p);

    /**
     * Delay for renaming @p issue_width instructions against a CAM
     * of @p phys_regs entries.
     */
    RenameCamDelay delay(int issue_width, int phys_regs) const;

    double
    totalPs(int issue_width, int phys_regs) const
    {
        return delay(issue_width, phys_regs).total();
    }

    Process process() const { return process_; }

  private:
    Process process_;
    double scale_; //!< technology scaling relative to 0.18 um
};

} // namespace cesp::vlsi

#endif // CESP_VLSI_RENAME_CAM_HPP
