/**
 * @file
 * Cache access-time model (paper Section 2.1, after Wada et al. and
 * Wilton & Jouppi's enhanced cache access/cycle time model).
 *
 * The paper excludes caches from its critical-structure study because
 * their delay "has been considered elsewhere" and they can be
 * pipelined; this model closes the loop so the clock estimator can
 * confirm that the Table 3 data cache (32 KB, 2-way, 32 B lines) fits
 * the cycle implied by the window/bypass-limited clock.
 *
 * Single-array model with bounded row count: the data array holds
 * min(sets, 256) rows of line*assoc*(sets/rows) bits; access time
 * decomposes into decoder, wordline (grows with the row width),
 * bitline (grows with the row count), sense amplifier, and the
 * tag-compare + way-select path (grows with associativity).
 * Calibrated at 0.18 um so the Table 3 cache comes in just under the
 * ~1.06 ns cycle of the 8-way machine — consistent with its 1-cycle
 * hit latency.
 */

#ifndef CESP_VLSI_CACHE_DELAY_HPP
#define CESP_VLSI_CACHE_DELAY_HPP

#include <cstdint>

#include "vlsi/technology.hpp"

namespace cesp::vlsi {

/** Component breakdown of a cache read hit, in ps. */
struct CacheDelay
{
    double decode;
    double wordline;
    double bitline;
    double senseamp;
    double tag_compare; //!< tag read/compare + way select/mux drive

    double
    total() const
    {
        return decode + wordline + bitline + senseamp + tag_compare;
    }
};

/** Calibrated cache access-time model for one technology. */
class CacheDelayModel
{
  public:
    explicit CacheDelayModel(Process p);

    /**
     * Access delay for a cache of @p size_bytes with @p associativity
     * ways and @p line_bytes lines.
     */
    CacheDelay delay(uint32_t size_bytes, int associativity,
                     uint32_t line_bytes) const;

    double
    totalPs(uint32_t size_bytes, int associativity,
            uint32_t line_bytes) const
    {
        return delay(size_bytes, associativity, line_bytes).total();
    }

    Process process() const { return process_; }

  private:
    Process process_;
    double logic_scale_;
    double wire_scale_;
};

} // namespace cesp::vlsi

#endif // CESP_VLSI_CACHE_DELAY_HPP
