/**
 * @file
 * Selection logic delay model (paper Section 4.3, Figure 8).
 *
 * Selection is a tree of 4-input arbiter cells (the optimal fan-in the
 * paper found, matching the MIPS R10000): request signals propagate to
 * the root, the root grants, and the grant propagates back down. The
 * delay is therefore
 *
 *   Tselect = (L - 1) * Treq + Troot + (L - 1) * Tgrant,
 *   L = ceil(log4(window size)),
 *
 * (Section 4.3.2: c0 + c1*log4(WS)). All components are logic delays
 * and scale with feature size. The plateau of ceil(log4) makes the
 * 32- and 64-entry delays equal, and the 16->32 and 64->128 increases
 * less than 100% because the root delay is window-size independent
 * (Section 4.3.3).
 *
 * Per-technology arbiter delays are calibrated jointly with the wakeup
 * model so that Table 2's wakeup+select column is reproduced exactly:
 * 2903.7/3369.4 ps (0.8 um), 1248.4/1484.8 ps (0.35 um), and
 * 578.0/724.0 ps (0.18 um) for {4-way, 32} / {8-way, 64}.
 */

#ifndef CESP_VLSI_SELECT_DELAY_HPP
#define CESP_VLSI_SELECT_DELAY_HPP

#include "vlsi/technology.hpp"

namespace cesp::vlsi {

/** Component breakdown of the selection critical path, in ps. */
struct SelectDelay
{
    double request_prop; //!< request propagation to the root
    double root;         //!< root arbiter cell
    double grant_prop;   //!< grant propagation back down

    double
    total() const
    {
        return request_prop + root + grant_prop;
    }
};

/** Calibrated selection delay model for one technology. */
class SelectDelayModel
{
  public:
    explicit SelectDelayModel(Process p);

    /** Number of arbiter levels: ceil(log4(window_size)), >= 1. */
    static int levels(int window_size);

    /**
     * Delay breakdown for selecting one instruction out of a window
     * of the given size (>= 2). The paper's model assumes one
     * functional unit is being scheduled; stacked selection for
     * multiple units is handled by the clock estimator.
     */
    SelectDelay delay(int window_size) const;

    /** Total selection delay in ps. */
    double
    totalPs(int window_size) const
    {
        return delay(window_size).total();
    }

    /**
     * Selection delay when @p num_units functional units of the same
     * type are scheduled (Section 4.3.1 points to [15] for the
     * multi-unit modification): grant decisions cascade, adding one
     * root-cell delay per doubling of the unit count.
     */
    double
    totalPs(int window_size, int num_units) const
    {
        double extra = 0.0;
        for (int n = 1; n < num_units; n *= 2)
            extra += t_root_;
        return totalPs(window_size) + extra;
    }

    Process process() const { return process_; }

  private:
    Process process_;
    double t_req_;   //!< per-level request propagation, ps
    double t_grant_; //!< per-level grant propagation, ps
    double t_root_;  //!< root cell delay, ps
};

} // namespace cesp::vlsi

#endif // CESP_VLSI_SELECT_DELAY_HPP
